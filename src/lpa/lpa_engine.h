#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "util/thread_pool.h"

namespace xdgp::lpa {

/// Spinner-style weighted label propagation (Martella et al., "Spinner:
/// Scalable Graph Partitioning in the Cloud") over the same
/// core::PartitionedRuntime substrate as the paper's greedy engine — the
/// successor algorithm the repo's head-to-head benches compare against.
///
/// Per iteration, every vertex scores each *active* label l held by a
/// neighbour:
///
///   score(v, l) = |N(v) ∩ P(l)| / deg(v)
///               − lpaBalanceFactor · load(l) / capacity(l)
///
/// (loads and capacities in the configured balance mode's units). The first
/// term is the normalized neighbour-label affinity; the second penalises
/// crowded partitions, which is what keeps plain label propagation from
/// collapsing everything into one giant part. A vertex desires the argmax
/// label, ties broken by the stateless per-(iteration, vertex) draw, and the
/// move is worth executing only when the best score beats its current
/// label's score by more than lpaScoreEpsilon — convergence is
/// score-improvement quiescence (ConvergenceTracker sees zero-migration
/// iterations), not label stability.
///
/// Migration dampening is probabilistic, as in Spinner: a desiring vertex
/// executes its move only when the willingness draw admits it this
/// iteration, so the assignment relaxes instead of oscillating. Decisions
/// are a pure function of the iteration-start snapshot plus stateless draws,
/// so any thread count reproduces the identical run for a given seed (the
/// same invariant the greedy engine's parallel decision phase relies on).
///
/// Elastic k is native here (the reason this engine exists):
///  - growPartitions(n) appends n empty partitions; their penalty term is
///    minimal (zero load), so propagation pulls boundary vertices into them
///    over the following iterations.
///  - shrinkPartitions(ids) retires partitions in place. Retired labels are
///    never candidates and their capacity is forced to 0; their now
///    *displaced* vertices bypass both the score-improvement test and the
///    willingness gate (they must leave), draining onto active partitions
///    under the per-iteration migration budget. Active capacities re-derive
///    from the active count (CapacityModel::rescaleActive), so in vertex
///    balance mode the survivors always have room and the drain terminates;
///    in edge-balance mode a single vertex whose degree exceeds every
///    partition's remaining headroom can stay displaced — the known
///    limitation of per-unit capacity admission.
///
/// Unlike the greedy engine there is no frontier: the balance penalty
/// depends on global loads, so any migration anywhere can flip a remote
/// vertex's argmax. Every iteration is a full scan (parallelised over
/// options.threads).
class LpaEngine final : public core::Engine {
 public:
  /// Takes ownership of the graph; `initial` must assign every alive vertex
  /// to a partition in [0, options.k) (PartitionedRuntime validates).
  LpaEngine(graph::DynamicGraph g, metrics::Assignment initial,
            core::AdaptiveOptions options);

  /// Runs one iteration; returns the number of executed migrations.
  std::size_t step() override;

  /// Applies a batch of structural updates and re-arms convergence tracking.
  std::size_t applyUpdates(const std::vector<graph::UpdateEvent>& events) override;

  /// Re-provisions every *active* capacity to capacityFactor headroom over
  /// the current total load; retired capacities stay 0.
  void rescaleCapacity() override;

  /// Appends `n` fresh empty partitions, provisions them via rescaleActive,
  /// and re-arms convergence (the new labels re-open adaptation). Returns
  /// the new k.
  std::size_t growPartitions(std::size_t n) override;

  /// Retires the given partitions (validated atomically by the runtime),
  /// zeroes their capacities, re-provisions the survivors from the active
  /// count, and re-arms convergence. The retired partitions' vertices drain
  /// over subsequent step()s. Returns the new activeK().
  std::size_t shrinkPartitions(std::span<const graph::PartitionId> ids) override;

  /// Checkpoint restore: re-retires the checkpointed partition set on a
  /// freshly constructed engine. Call before restoreCheckpoint(), which then
  /// overwrites the capacities wholesale (including the retired zeros).
  void restoreRetired(std::span<const graph::PartitionId> ids) override;

  [[nodiscard]] core::EngineKind kind() const noexcept override {
    return core::EngineKind::kLpa;
  }

  /// Vertices currently assigned to a retired partition, i.e. still awaiting
  /// drain after a shrink. O(idBound) scan — diagnostic, not per-iteration.
  [[nodiscard]] std::size_t displacedCount() const noexcept;

  /// Heap footprint of the runtime substrate plus this engine's scratch.
  [[nodiscard]] core::MemoryReport memoryReport() const noexcept override;

 private:
  /// Decision phase: fills desires_ (kNoPartition = stay) for every alive
  /// vertex in [0, idBound) from the iteration-start snapshot.
  void evaluateDecisions();

  /// Admission for one vertex, serial in id order: willingness and the
  /// score-improvement verdict were already folded into desires_ for
  /// settled vertices; displaced vertices bypass both and fall back to the
  /// roomiest active partition when their desired label has no headroom.
  void admit(graph::VertexId v, bool edgeBalance);

  /// Active capacities from the live active set (retired forced to 0).
  void rescaleActive();

  std::vector<graph::PartitionId> desires_;
  std::vector<std::pair<graph::VertexId, graph::PartitionId>> pendingMoves_;
  /// Units already committed to each partition by this iteration's admitted
  /// moves — admission tests load + pending ≤ capacity so one iteration
  /// cannot overshoot a target it can see filling up.
  std::vector<std::size_t> pendingLoad_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace xdgp::lpa
