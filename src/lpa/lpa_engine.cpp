#include "lpa/lpa_engine.h"

#include <algorithm>
#include <limits>

#include "core/adaptive_engine.h"
#include "util/timer.h"

namespace xdgp::lpa {

LpaEngine::LpaEngine(graph::DynamicGraph g, metrics::Assignment initial,
                     core::AdaptiveOptions options)
    : Engine(std::move(g), std::move(initial), options) {}

namespace {

/// Per-task scratch for the parallel decision phase: neighbour-label counts
/// over the full partition id space, reset between vertices via the touched
/// list (O(distinct labels), not O(k)).
struct Scorer {
  explicit Scorer(std::size_t k) : counts(k, 0) {}
  std::vector<std::size_t> counts;
  std::vector<graph::PartitionId> touched;
  std::vector<graph::PartitionId> ties;
};

}  // namespace

void LpaEngine::evaluateDecisions() {
  const graph::DynamicGraph& g = graph();
  const std::size_t bound = g.idBound();
  desires_.assign(bound, graph::kNoPartition);

  const bool edgeBalance = options_.balanceMode == core::BalanceMode::kEdges;
  const std::vector<std::size_t>& loads =
      edgeBalance ? state().degreeLoads() : state().loads();
  const double factor = options_.lpaBalanceFactor;
  const double epsilon = options_.lpaScoreEpsilon;

  // Balance penalty of label l at the iteration-start snapshot. Retired
  // labels never reach this (they are filtered as candidates, and a
  // displaced vertex never scores its own retired label).
  const auto penalty = [this, &loads, factor](graph::PartitionId l) {
    return factor * static_cast<double>(loads[l]) /
           static_cast<double>(capacity_.capacity(l));
  };

  const auto evaluateOne = [this, &g, &penalty, epsilon](graph::VertexId v,
                                                         Scorer& scorer) {
    const std::span<const graph::VertexId> nbrs = g.neighbors(v);
    if (nbrs.empty()) return;  // nothing attracts it; displaced handled at admit
    for (const graph::VertexId nbr : nbrs) {
      const graph::PartitionId p = state().partitionOf(nbr);
      if (scorer.counts[p]++ == 0) scorer.touched.push_back(p);
    }
    const double invDeg = 1.0 / static_cast<double>(nbrs.size());
    const graph::PartitionId current = state().partitionOf(v);

    double bestScore = -std::numeric_limits<double>::infinity();
    scorer.ties.clear();
    for (const graph::PartitionId l : scorer.touched) {
      if (l == current || !runtime_.isActive(l)) continue;
      const double score =
          static_cast<double>(scorer.counts[l]) * invDeg - penalty(l);
      if (score > bestScore) {
        bestScore = score;
        scorer.ties.clear();
        scorer.ties.push_back(l);
      } else if (score == bestScore) {
        scorer.ties.push_back(l);
      }
    }

    graph::PartitionId desire = graph::kNoPartition;
    if (!scorer.ties.empty()) {
      const graph::PartitionId pick =
          scorer.ties[draws_.tieBreak(iteration_, v) % scorer.ties.size()];
      if (!runtime_.isActive(current)) {
        // Displaced: must leave its retired label — any active target beats
        // staying, no improvement test.
        desire = pick;
      } else {
        const double currentScore =
            static_cast<double>(scorer.counts[current]) * invDeg -
            penalty(current);
        if (bestScore > currentScore + epsilon) desire = pick;
      }
    }
    desires_[v] = desire;

    for (const graph::PartitionId l : scorer.touched) scorer.counts[l] = 0;
    scorer.touched.clear();
  };

  const auto evaluateRange = [&g, &evaluateOne](std::size_t begin,
                                                std::size_t end, Scorer& scorer) {
    for (auto v = static_cast<graph::VertexId>(begin); v < end; ++v) {
      if (!g.hasVertex(v)) continue;
      evaluateOne(v, scorer);
    }
  };

  if (options_.threads <= 1) {
    Scorer scorer(k());
    evaluateRange(0, bound, scorer);
    return;
  }
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  const std::size_t chunks = options_.threads * 4;
  const std::size_t step = (bound + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < bound; begin += step) {
    const std::size_t end = std::min(bound, begin + step);
    pool_->submit([this, begin, end, &evaluateRange] {
      Scorer scorer(k());  // per-task scratch
      evaluateRange(begin, end, scorer);
    });
  }
  pool_->wait();
}

void LpaEngine::admit(graph::VertexId v, bool edgeBalance) {
  const graph::PartitionId current = state().partitionOf(v);
  const bool displaced = !runtime_.isActive(current);
  graph::PartitionId target = desires_[v];
  if (!displaced) {
    // Settled vertex: the score-improvement verdict is already in desires_;
    // the willingness draw is Spinner's migration dampening.
    if (target == graph::kNoPartition) return;
    if (!draws_.willing(iteration_, v)) return;
  }
  const std::size_t units = edgeBalance ? graph().degree(v) : 1;
  const auto fits = [this, units](graph::PartitionId p) {
    return state().load(p) + pendingLoad_[p] + units <= capacity_.capacity(p);
  };
  if (displaced && (target == graph::kNoPartition || !fits(target))) {
    // Drain fallback: the roomiest active partition that can hold it (ties
    // to the lowest id). The desired label may be full, or the vertex may
    // have no active neighbour labels at all (e.g. zero degree).
    graph::PartitionId best = graph::kNoPartition;
    std::size_t bestRoom = 0;
    for (std::size_t p = 0; p < k(); ++p) {
      if (!runtime_.isActive(static_cast<graph::PartitionId>(p))) continue;
      const std::size_t used = state().load(p) + pendingLoad_[p];
      const std::size_t room =
          used >= capacity_.capacity(p) ? 0 : capacity_.capacity(p) - used;
      if (room >= units && room > bestRoom) {
        bestRoom = room;
        best = static_cast<graph::PartitionId>(p);
      }
    }
    if (best == graph::kNoPartition) return;  // no headroom: retry next iteration
    target = best;
  } else if (!fits(target)) {
    return;  // full this iteration; the desire is re-derived next scan
  }
  pendingLoad_[target] += units;
  pendingMoves_.emplace_back(v, target);
}

std::size_t LpaEngine::step() {
  const util::WallTimer timer;
  ++iteration_;
  const bool edgeBalance = options_.balanceMode == core::BalanceMode::kEdges;
  pendingMoves_.clear();
  pendingLoad_.assign(k(), 0);

  // Decision phase: pure function of the iteration-start snapshot.
  evaluateDecisions();

  // Admission phase, serial in id order: capacity consumption is first-come,
  // and the optional budget caps this iteration's migration bill. Displaced
  // vertices (on retired partitions) admit first — under a tight budget the
  // settled movers' ordinary churn must never starve the drain, or a shrink
  // could strand vertices on retired partitions indefinitely.
  const std::size_t budget = options_.lpaMigrationBudget;
  const std::size_t bound = graph().idBound();
  const auto admitPass = [this, budget, bound, edgeBalance](bool wantDisplaced) {
    for (graph::VertexId v = 0; v < bound; ++v) {
      if (budget > 0 && pendingMoves_.size() >= budget) break;
      if (!graph().hasVertex(v)) continue;
      const bool displaced = !runtime_.isActive(state().partitionOf(v));
      if (displaced != wantDisplaced) continue;
      admit(v, edgeBalance);
    }
  };
  if (runtime_.activeK() < k()) admitPass(true);  // only after a shrink
  admitPass(false);

  // Synchronous application: all admitted moves saw the iteration-start
  // assignment and land together (BSP).
  for (const auto& [v, target] : pendingMoves_) runtime_.executeMove(v, target);

  const std::size_t migrations = pendingMoves_.size();
  tracker_.record(migrations);
  if (migrations > 0) lastActive_ = iteration_;
  if (options_.recordSeries) {
    series_.add({iteration_, state().cutEdges(), migrations, timer.seconds()});
  }
  return migrations;
}

std::size_t LpaEngine::applyUpdates(const std::vector<graph::UpdateEvent>& events) {
  // No per-vertex caches to maintain: every iteration is a full scan, so the
  // default hooks suffice.
  core::PartitionedRuntime::MutationHooks hooks;
  return runtime_.applyEvents(events, hooks, &tracker_);
}

void LpaEngine::rescaleActive() {
  capacity_.rescaleActive(runtime_.totalLoadUnits(options_.balanceMode),
                          options_.capacityFactor, runtime_.activeMask(),
                          runtime_.activeK());
}

void LpaEngine::rescaleCapacity() { rescaleActive(); }

std::size_t LpaEngine::growPartitions(std::size_t n) {
  if (n == 0) return k();
  const std::size_t oldK = k();
  runtime_.growPartitions(n);
  capacity_.addPartitions(n);
  rescaleActive();

  // Seed the new partitions, as Spinner does on elasticity events: label
  // propagation only ever scores labels its neighbours hold, so an empty
  // partition would never attract a single vertex. Each alive vertex jumps
  // to a uniformly chosen new partition with probability n / k' (the new
  // partitions' fair share), gated by capacity; propagation then refines
  // the seeded boundary over the following iterations. The draw is the
  // stateless per-(iteration, vertex) hash, so seeding is reproducible and
  // thread-count invariant like every other decision.
  const bool edgeBalance = options_.balanceMode == core::BalanceMode::kEdges;
  const std::size_t newK = k();
  const std::size_t bound = graph().idBound();
  for (graph::VertexId v = 0; v < bound; ++v) {
    if (!graph().hasVertex(v)) continue;
    const std::uint32_t r = draws_.tieBreak(iteration_, v);
    if (r % newK >= n) continue;
    const auto target =
        static_cast<graph::PartitionId>(oldK + (r / newK) % n);
    const std::size_t units = edgeBalance ? graph().degree(v) : 1;
    if (state().load(target) + units > capacity_.capacity(target)) continue;
    runtime_.executeMove(v, target);
  }

  tracker_.reset();  // fresh labels re-open adaptation
  return k();
}

std::size_t LpaEngine::shrinkPartitions(std::span<const graph::PartitionId> ids) {
  runtime_.retirePartitions(ids);  // validates atomically; throws on bad ids
  rescaleActive();  // zeroes retired capacities, grows survivors for the drain
  tracker_.reset();
  return activeK();
}

void LpaEngine::restoreRetired(std::span<const graph::PartitionId> ids) {
  if (ids.empty()) return;
  // Capacities are not re-derived here: restoreCheckpoint() follows and
  // overwrites them wholesale with the checkpointed values (retired = 0).
  runtime_.retirePartitions(ids);
}

std::size_t LpaEngine::displacedCount() const noexcept {
  std::size_t displaced = 0;
  graph().forEachVertex([this, &displaced](graph::VertexId v) {
    if (!runtime_.isActive(state().partitionOf(v))) ++displaced;
  });
  return displaced;
}

core::MemoryReport LpaEngine::memoryReport() const noexcept {
  core::MemoryReport report = runtime_.memoryReport();
  report.engineBytes =
      desires_.capacity() * sizeof(graph::PartitionId) +
      pendingMoves_.capacity() * sizeof(pendingMoves_[0]) +
      pendingLoad_.capacity() * sizeof(std::size_t) +
      series_.points().capacity() * sizeof(metrics::IterationPoint);
  return report;
}

}  // namespace xdgp::lpa

namespace xdgp::core {

std::unique_ptr<Engine> makeEngine(graph::DynamicGraph g,
                                   metrics::Assignment initial,
                                   const AdaptiveOptions& options) {
  if (options.engine == EngineKind::kLpa) {
    return std::make_unique<lpa::LpaEngine>(std::move(g), std::move(initial),
                                            options);
  }
  return std::make_unique<AdaptiveEngine>(std::move(g), std::move(initial),
                                          options);
}

}  // namespace xdgp::core
