#pragma once

#include "epartition/edge_partitioner.h"

namespace xdgp::epartition {

/// One HDRF placement decision for edge (u, v) given the replica sets and
/// edge loads accumulated in `assignment` so far: maximises
///     C_REP(p) + λ · C_BAL(p)
/// where C_REP rewards partitions already holding a replica of u or v —
/// weighted so the *lower*-degree endpoint dominates, i.e. the high-degree
/// endpoint is the one that gets replicated — and C_BAL rewards lightly
/// loaded partitions. Partitions at `cap` edges are skipped (there is
/// always a feasible one while total assigned < k·cap); ties break to the
/// lighter then lower-indexed partition, keeping the rule deterministic.
/// `degU`/`degV` are whatever degree estimate the caller streams with
/// (HDRF proper uses partial degrees observed so far).
///
/// Shared between HdrfPartitioner and the streaming tail of SNE.
[[nodiscard]] graph::PartitionId hdrfChoose(const EdgeAssignment& assignment,
                                            graph::VertexId u, graph::VertexId v,
                                            double degU, double degV,
                                            double lambda, std::size_t cap);

/// HDRF — highest-degree replicated first (Petroni et al., CIKM 2015).
///
/// A one-pass streaming partitioner that keeps *low*-degree vertices whole
/// and replicates the hubs: for each edge it prefers partitions that
/// already hold the edge's endpoints, discounted so the contribution of the
/// high-degree endpoint counts less (its replicas are cheap relative to its
/// degree), plus a load-balance term weighted by λ. Degrees are the partial
/// counts observed so far in the stream, as in the original algorithm — no
/// global pass needed. λ trades replication for balance: λ → 0 is pure
/// greedy co-location, large λ approaches round-robin. On top of the soft
/// C_BAL term this implementation enforces the request's hard balance cap,
/// so the registry promises respectsBalanceCap.
class HdrfPartitioner final : public EdgePartitioner {
 public:
  using EdgePartitioner::partition;

  /// λ defaults to the literature's customary 1.1 (mild balance pressure).
  explicit HdrfPartitioner(double lambda = 1.1) : lambda_(lambda) {}

  [[nodiscard]] std::string name() const override { return "HDRF"; }

  [[nodiscard]] double lambda() const noexcept { return lambda_; }

  [[nodiscard]] EdgeAssignment partition(
      const EdgePartitionRequest& request) const override;

 private:
  double lambda_;
};

}  // namespace xdgp::epartition
