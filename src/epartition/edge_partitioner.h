#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "epartition/edge_assignment.h"
#include "graph/csr.h"
#include "util/rng.h"

namespace xdgp::epartition {

/// Per-partition *edge* capacity: the balance cap a bounded edge
/// partitioner may not exceed, ceil(balanceFactor * |E| / k) and at least 1.
/// Mirrors partition::makeCapacities for vertices (same ceil-with-epsilon
/// guard against floating-point dust on exact products).
[[nodiscard]] std::size_t edgeCapacity(std::size_t numEdges, std::size_t k,
                                       double balanceFactor);

/// Everything an edge-partitioning strategy needs for one run, mirroring
/// partition::PartitionRequest — future knobs extend this struct instead of
/// rippling through every implementation's signature.
struct EdgePartitionRequest {
  const graph::CsrGraph& csr;  ///< load-time snapshot being partitioned
  std::size_t k = 8;           ///< number of partitions
  /// Edge-balance headroom: strategies whose registry metadata promises
  /// `respectsBalanceCap` keep every partition's edge load within
  /// edgeCapacity(|E|, k, balanceFactor). 1.05 is the customary cap of the
  /// HDRF/NE literature (edge counts within 5% of the average).
  double balanceFactor = 1.05;
  util::Rng& rng;              ///< seeded stream for stochastic strategies
};

/// Strategy interface for edge partitioning: assigns every edge of the
/// snapshot to one of k partitions.
///
/// Implementations must return an assignment that (a) covers every edge of
/// the request's graph exactly once and (b) uses only partitions [0, k).
/// Strategies whose registry metadata promises `respectsBalanceCap` must
/// keep every edge load within edgeCapacity(|E|, k, balanceFactor); HSH and
/// DBH hash and therefore only balance statistically. The registry-driven
/// suite in tests/epartition_test.cpp enforces these properties for every
/// registered strategy.
class EdgePartitioner {
 public:
  virtual ~EdgePartitioner() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual EdgeAssignment partition(
      const EdgePartitionRequest& request) const = 0;

  /// Convenience wrapper building the request in place. Derived classes
  /// re-expose it with `using EdgePartitioner::partition;`.
  [[nodiscard]] EdgeAssignment partition(const graph::CsrGraph& g, std::size_t k,
                                         double balanceFactor,
                                         util::Rng& rng) const {
    return partition(EdgePartitionRequest{g, k, balanceFactor, rng});
  }
};

/// HSH — uncoordinated random edge assignment: each edge hashes to a
/// partition independently of everything else. The replication-factor
/// worst case every published strategy is measured against (a vertex of
/// degree d lands in ~min(k, d) partitions), and the edge-side analogue of
/// the vertex registry's HSH baseline.
class HashEdgePartitioner final : public EdgePartitioner {
 public:
  using EdgePartitioner::partition;

  [[nodiscard]] std::string name() const override { return "HSH"; }

  [[nodiscard]] EdgeAssignment partition(
      const EdgePartitionRequest& request) const override;
};

}  // namespace xdgp::epartition
