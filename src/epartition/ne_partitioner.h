#pragma once

#include <cstddef>

#include "epartition/edge_partitioner.h"

namespace xdgp::epartition {

/// NE — neighbour expansion (Zhang et al., KDD 2017, "Graph Edge
/// Partitioning via Neighborhood Heuristic").
///
/// Fills partitions one at a time by growing a core set C and its boundary
/// S: repeatedly promote the boundary vertex with the fewest unassigned
/// neighbours *outside* C ∪ S into the core, pull its neighbours onto the
/// boundary, and claim every unassigned edge that falls inside C ∪ S. Edges
/// claimed this way share endpoints by construction, so each partition is a
/// dense neighbourhood and vertices straddle few partitions — the best
/// replication factors of the published offline heuristics. Per-partition
/// caps adapt to the unassigned remainder (ceil(balanceFactor · U / (k −
/// p))), which keeps every load within edgeCapacity(|E|, k, balanceFactor);
/// the last partition sweeps what is left, which the adaptive caps bound by
/// the same limit. Entirely deterministic: boundary and seed ties break to
/// the lower vertex id.
class NePartitioner final : public EdgePartitioner {
 public:
  using EdgePartitioner::partition;

  [[nodiscard]] std::string name() const override { return "NE"; }

  [[nodiscard]] EdgeAssignment partition(
      const EdgePartitionRequest& request) const override;
};

/// SNE — streaming neighbour expansion under a memory budget (Appendix B of
/// the NE paper, adapted): only the first `maxBufferedEdges` edges of the
/// stream are buffered and partitioned by the NE expansion (growing all k
/// cores from the sample); every edge past the budget is placed one at a
/// time by the HDRF rule against the replica sets those cores established,
/// under the same hard balance cap. budget = 0 (the default) means 2·|V|
/// buffered edges, the CacheSize = 2|V| configuration of the paper's
/// evaluation. Sits between HDRF and NE in replication factor while keeping
/// memory proportional to the budget, not to |E|.
class SnePartitioner final : public EdgePartitioner {
 public:
  using EdgePartitioner::partition;

  explicit SnePartitioner(std::size_t maxBufferedEdges = 0)
      : maxBufferedEdges_(maxBufferedEdges) {}

  [[nodiscard]] std::string name() const override { return "SNE"; }

  [[nodiscard]] std::size_t maxBufferedEdges() const noexcept {
    return maxBufferedEdges_;
  }

  [[nodiscard]] EdgeAssignment partition(
      const EdgePartitionRequest& request) const override;

 private:
  std::size_t maxBufferedEdges_;
};

}  // namespace xdgp::epartition
