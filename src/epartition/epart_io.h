#pragma once

#include <string>

#include "epartition/edge_assignment.h"

namespace xdgp::epartition {

/// Persists an edge assignment as "u v partition" lines under a
/// "# k idBound" header — the edge-side sibling of
/// partition::writeAssignment, so an edge partitioning computed once can be
/// re-inspected (xdgp_cli --cmd=emetrics) or seed a later experiment.
/// Throws std::runtime_error on IO failure.
void writeEdgeAssignment(const EdgeAssignment& assignment,
                         const std::string& path);

/// Reads the writeEdgeAssignment format, rebuilding the replica sets as the
/// edges stream back in. Throws std::runtime_error on IO failure, a missing
/// or malformed header, malformed lines, or out-of-range ids.
[[nodiscard]] EdgeAssignment readEdgeAssignment(const std::string& path);

}  // namespace xdgp::epartition
