#include "epartition/dbh_partitioner.h"

namespace xdgp::epartition {

EdgeAssignment DbhPartitioner::partition(
    const EdgePartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  EdgeAssignment assignment(g.idBound(), request.k);
  const std::uint64_t salt = request.rng.next64();
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    const std::size_t du = g.degree(u);
    const std::size_t dv = g.degree(v);
    // Hash the endpoint with the smaller degree; u < v canonically, so the
    // tie goes to the lower id.
    const graph::VertexId anchor = du <= dv ? u : v;
    const std::uint64_t hash =
        util::Rng::splitmix64(static_cast<std::uint64_t>(anchor) ^ salt);
    assignment.assign({u, v},
                      static_cast<graph::PartitionId>(hash % request.k));
  });
  return assignment;
}

}  // namespace xdgp::epartition
