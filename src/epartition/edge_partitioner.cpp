#include "epartition/edge_partitioner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xdgp::epartition {

std::size_t edgeCapacity(std::size_t numEdges, std::size_t k,
                         double balanceFactor) {
  if (k == 0) throw std::invalid_argument("edgeCapacity: k must be positive");
  const double balanced = static_cast<double>(numEdges) / static_cast<double>(k);
  const auto cap =
      static_cast<std::size_t>(std::ceil(balanced * balanceFactor - 1e-9));
  return std::max<std::size_t>(cap, 1);
}

EdgeAssignment HashEdgePartitioner::partition(
    const EdgePartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  EdgeAssignment assignment(g.idBound(), request.k);
  // One salt per run: the same seed replays the same placement, different
  // seeds re-deal every edge.
  const std::uint64_t salt = request.rng.next64();
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
    const std::uint64_t hash = util::Rng::splitmix64(key ^ salt);
    assignment.assign({u, v},
                      static_cast<graph::PartitionId>(hash % request.k));
  });
  return assignment;
}

}  // namespace xdgp::epartition
