#include "epartition/hdrf_partitioner.h"

#include <algorithm>
#include <vector>

namespace xdgp::epartition {

graph::PartitionId hdrfChoose(const EdgeAssignment& assignment,
                              graph::VertexId u, graph::VertexId v, double degU,
                              double degV, double lambda, std::size_t cap) {
  const std::vector<std::size_t>& loads = assignment.edgeLoads();
  const auto [minIt, maxIt] = std::minmax_element(loads.begin(), loads.end());
  const double minLoad = static_cast<double>(*minIt);
  const double maxLoad = static_cast<double>(*maxIt);
  // θ weights the replica reward toward the lower-degree endpoint: with
  // θ(u) = d(u)/(d(u)+d(v)), a partition holding the *low*-degree endpoint
  // scores nearly 2 while one holding only the hub scores nearly 1 — so the
  // hub is the endpoint that ends up replicated ("highest degree replicated
  // first").
  const double total = degU + degV;
  const double thetaU = total > 0.0 ? degU / total : 0.5;
  const double thetaV = 1.0 - thetaU;

  graph::PartitionId best = graph::kNoPartition;
  double bestScore = 0.0;
  for (graph::PartitionId p = 0; p < assignment.k(); ++p) {
    if (loads[p] >= cap) continue;
    double rep = 0.0;
    if (assignment.hasReplica(u, p)) rep += 1.0 + (1.0 - thetaU);
    if (assignment.hasReplica(v, p)) rep += 1.0 + (1.0 - thetaV);
    const double bal =
        (maxLoad - static_cast<double>(loads[p])) / (1.0 + maxLoad - minLoad);
    const double score = rep + lambda * bal;
    if (best == graph::kNoPartition || score > bestScore ||
        (score == bestScore && loads[p] < loads[best])) {
      best = p;
      bestScore = score;
    }
  }
  return best;
}

EdgeAssignment HdrfPartitioner::partition(
    const EdgePartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  EdgeAssignment assignment(g.idBound(), request.k);
  const std::size_t cap =
      edgeCapacity(g.numEdges(), request.k, request.balanceFactor);
  // Partial degrees: how often each vertex has been seen so far in the
  // stream, per the original HDRF (no global degree pass).
  std::vector<std::uint32_t> partial(g.idBound(), 0);
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    ++partial[u];
    ++partial[v];
    const graph::PartitionId p =
        hdrfChoose(assignment, u, v, partial[u], partial[v], lambda_, cap);
    assignment.assign({u, v}, p);
  });
  return assignment;
}

}  // namespace xdgp::epartition
