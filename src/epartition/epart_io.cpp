#include "epartition/epart_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xdgp::epartition {

void writeEdgeAssignment(const EdgeAssignment& assignment,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("writeEdgeAssignment: cannot open " + path);
  }
  out << "# " << assignment.k() << ' ' << assignment.idBound() << '\n';
  for (std::size_t i = 0; i < assignment.numEdges(); ++i) {
    const graph::Edge& e = assignment.edges()[i];
    out << e.u << ' ' << e.v << ' ' << assignment.parts()[i] << '\n';
  }
  if (!out) {
    throw std::runtime_error("writeEdgeAssignment: write failed for " + path);
  }
}

EdgeAssignment readEdgeAssignment(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readEdgeAssignment: cannot open " + path);
  std::string line;
  std::size_t k = 0;
  std::size_t idBound = 0;
  // The header must come first: the replica bitmap is sized from it.
  while (std::getline(in, line) && line.empty()) {
  }
  if (line.empty() || line[0] != '#') {
    throw std::runtime_error("readEdgeAssignment: missing header in " + path);
  }
  {
    std::istringstream hs(line.substr(1));
    if (!(hs >> k >> idBound) || k == 0) {
      throw std::runtime_error("readEdgeAssignment: bad header in " + path);
    }
  }
  EdgeAssignment assignment(idBound, k);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    graph::VertexId u = 0;
    graph::VertexId v = 0;
    graph::PartitionId p = 0;
    if (!(ls >> u >> v >> p)) {
      throw std::runtime_error("readEdgeAssignment: malformed line in " + path +
                               ": " + line);
    }
    try {
      assignment.assign({u, v}, p);
    } catch (const std::invalid_argument& error) {
      throw std::runtime_error("readEdgeAssignment: " + path + ": " +
                               error.what());
    }
  }
  return assignment;
}

}  // namespace xdgp::epartition
