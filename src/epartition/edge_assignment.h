#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "metrics/cuts.h"

namespace xdgp::epartition {

/// An edge partitioning (vertex-cut) of a graph: every edge belongs to
/// exactly one of k partitions, and a vertex is *replicated* into every
/// partition that owns at least one of its edges.
///
/// This is the dual of the vertex partitioning the rest of the system
/// (src/partition, the adaptive engine) produces: there a vertex lives in
/// one place and an edge may straddle two (an edge cut); here an edge lives
/// in one place and a vertex may straddle many (a vertex cut). On power-law
/// graphs — the paper's TWEET/CDR inputs — cutting the few huge hubs into
/// replicas is dramatically cheaper than cutting the many edges that touch
/// them, which is why the vertex-cut literature (PowerGraph, DBH, HDRF, NE)
/// reports replication factor where the edge-cut literature reports cut
/// ratio.
///
/// The class maintains the derived replica sets incrementally as edges are
/// assigned, so streaming strategies (HDRF's "is v already replicated on
/// p?" test) get O(1) membership queries, and the consistency property test
/// can recompute the sets independently and compare.
class EdgeAssignment {
 public:
  EdgeAssignment() = default;

  /// An empty assignment over dense ids [0, idBound) and partitions [0, k).
  /// Throws std::invalid_argument when k == 0.
  EdgeAssignment(std::size_t idBound, std::size_t k);

  /// Appends edge `e` (canonicalised to u <= v) with owner `p`. Throws
  /// std::invalid_argument on p >= k or an endpoint >= idBound. Callers are
  /// expected to present each edge once; duplicates are not detected here
  /// (the property suite checks coverage against the source graph).
  void assign(graph::Edge e, graph::PartitionId p);

  /// The edge partitioning a *vertex* partitioning induces: every edge
  /// follows its canonical first endpoint (u of u <= v). This is the bridge
  /// that lets the bench report replication factor for the HSH vertex
  /// baseline next to the native edge strategies: the replica set of v
  /// becomes {partition(v)} ∪ {partition(u) : u a lower-id neighbour}.
  /// Unassigned endpoints (kNoPartition) are skipped.
  [[nodiscard]] static EdgeAssignment fromVertexAssignment(
      const graph::CsrGraph& g, const metrics::Assignment& assignment,
      std::size_t k);

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t idBound() const noexcept { return idBound_; }
  [[nodiscard]] std::size_t numEdges() const noexcept { return edges_.size(); }

  /// Edges in assignment order, parallel to parts().
  [[nodiscard]] const std::vector<graph::Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::vector<graph::PartitionId>& parts() const noexcept {
    return parts_;
  }

  /// Edges owned by each partition (size k).
  [[nodiscard]] const std::vector<std::size_t>& edgeLoads() const noexcept {
    return edgeLoads_;
  }

  /// True when v already has a replica (>= 1 owned edge) on p.
  [[nodiscard]] bool hasReplica(graph::VertexId v,
                                graph::PartitionId p) const noexcept {
    return (bits_[static_cast<std::size_t>(v) * words_ + p / 64] >>
            (p % 64)) & 1u;
  }

  /// |A(v)|: the number of partitions holding a replica of v.
  [[nodiscard]] std::size_t replicaCount(graph::VertexId v) const noexcept {
    return replicaCounts_[v];
  }

  /// Σ_v |A(v)| over all vertices.
  [[nodiscard]] std::size_t totalReplicas() const noexcept {
    return totalReplicas_;
  }

  /// Vertices with at least one replica (i.e. at least one incident edge
  /// assigned) — the denominator of the replication factor.
  [[nodiscard]] std::size_t coveredVertices() const noexcept {
    return coveredVertices_;
  }

  /// A(v) as a sorted partition list.
  [[nodiscard]] std::vector<graph::PartitionId> replicaSet(
      graph::VertexId v) const;

  /// Vertex copies hosted by each partition (size k): Σ_v [p ∈ A(v)].
  [[nodiscard]] std::vector<std::size_t> copyLoads() const;

 private:
  std::size_t idBound_ = 0;
  std::size_t k_ = 0;
  std::size_t words_ = 0;  ///< 64-bit words per vertex in bits_
  std::vector<graph::Edge> edges_;
  std::vector<graph::PartitionId> parts_;
  std::vector<std::size_t> edgeLoads_;
  std::vector<std::uint64_t> bits_;          ///< idBound_ * words_ replica bitmap
  std::vector<std::uint32_t> replicaCounts_; ///< per vertex
  std::size_t totalReplicas_ = 0;
  std::size_t coveredVertices_ = 0;
};

}  // namespace xdgp::epartition
