#pragma once

#include "epartition/edge_partitioner.h"

namespace xdgp::epartition {

/// DBH — degree-based hashing (Xie et al., NIPS 2014, "Distributed
/// Power-Law Graph Computing: Theoretical and Empirical Analysis").
///
/// Each edge hashes on its *lower-degree* endpoint instead of on the edge
/// itself: hub edges follow their low-degree neighbours, so a degree-10⁵
/// celebrity is replicated only where its followers land rather than in
/// ~min(k, 10⁵) partitions. On power-law graphs this provably tightens the
/// expected replication factor versus uniform edge hashing while staying a
/// one-pass, coordination-free hash — the cheapest step up from HSH.
/// Balance stays statistical (it is still hashing); ties in degree break to
/// the lower vertex id so a seed fully determines the placement.
class DbhPartitioner final : public EdgePartitioner {
 public:
  using EdgePartitioner::partition;

  [[nodiscard]] std::string name() const override { return "DBH"; }

  [[nodiscard]] EdgeAssignment partition(
      const EdgePartitionRequest& request) const override;
};

}  // namespace xdgp::epartition
