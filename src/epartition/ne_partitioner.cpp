#include "epartition/ne_partitioner.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "epartition/hdrf_partitioner.h"

namespace xdgp::epartition {

namespace {

/// The neighbour-expansion engine NE and SNE share: owns an edge subset
/// (all edges for NE, the buffered prefix for SNE), the per-vertex incident
/// lists over that subset, and the core/boundary machinery of one
/// partition-filling pass. Both heaps are lazy: entries are pushed on every
/// score change and validated against the current score on pop, so stale
/// entries cost one pop instead of a decrease-key structure.
class Expander {
 public:
  Expander(std::size_t idBound, std::vector<graph::Edge> edges,
           EdgeAssignment& sink)
      : edges_(std::move(edges)),
        sink_(sink),
        assigned_(edges_.size(), 0),
        unassignedDeg_(idBound, 0),
        setEpoch_(idBound, 0),
        coreEpoch_(idBound, 0),
        extDeg_(idBound, 0) {
    unassignedTotal_ = edges_.size();
    std::vector<std::size_t> offsets(idBound + 1, 0);
    for (const graph::Edge& e : edges_) {
      ++offsets[e.u + 1];
      ++offsets[e.v + 1];
      ++unassignedDeg_[e.u];
      ++unassignedDeg_[e.v];
    }
    for (std::size_t v = 0; v < idBound; ++v) offsets[v + 1] += offsets[v];
    incOff_ = offsets;  // offsets[] is consumed as a cursor below
    incEdge_.resize(edges_.size() * 2);
    for (std::uint32_t e = 0; e < edges_.size(); ++e) {
      incEdge_[offsets[edges_[e].u]++] = e;
      incEdge_[offsets[edges_[e].v]++] = e;
    }
    for (graph::VertexId v = 0; v < idBound; ++v) {
      if (unassignedDeg_[v] > 0) seedHeap_.emplace(unassignedDeg_[v], v);
    }
  }

  [[nodiscard]] std::size_t unassigned() const noexcept {
    return unassignedTotal_;
  }

  /// Grows partition `p` until it owns `cap` of this expander's edges (or
  /// the edges run out). Expansion invariant: while the pass is below cap,
  /// every unassigned edge has at least one endpoint outside C ∪ S, because
  /// a vertex entering the set immediately claims its edges into the set.
  void fill(graph::PartitionId p, std::size_t cap) {
    ++epoch_;
    part_ = p;
    cap_ = cap;
    count_ = 0;
    boundaryHeap_ = {};
    while (count_ < cap_ && unassignedTotal_ > 0) {
      const graph::VertexId x = popBoundary();
      if (x == graph::kInvalidVertex) {
        // Boundary exhausted (fresh pass or the component ran dry): restart
        // from the unassigned vertex with the fewest unassigned edges.
        addToBoundary(popSeed());
        continue;
      }
      coreEpoch_[x] = epoch_;
      for (std::size_t i = incOff_[x]; i < incOff_[x + 1]; ++i) {
        if (count_ >= cap_) break;
        const std::uint32_t e = incEdge_[i];
        if (assigned_[e]) continue;
        const graph::VertexId y = otherEnd(e, x);
        if (setEpoch_[y] != epoch_) addToBoundary(y);
      }
    }
  }

  /// Hands every still-unassigned edge to `p` — the final-partition sweep.
  void sweepRemainder(graph::PartitionId p) {
    for (std::uint32_t e = 0; e < edges_.size(); ++e) {
      if (!assigned_[e]) assignEdge(e, p);
    }
  }

  /// Visits every still-unassigned edge without assigning it — SNE hands
  /// these stragglers to its streaming rule instead of a fixed partition.
  template <typename Fn>
  void forEachUnassigned(Fn&& fn) const {
    for (std::uint32_t e = 0; e < edges_.size(); ++e) {
      if (!assigned_[e]) fn(edges_[e]);
    }
  }

 private:
  [[nodiscard]] graph::VertexId otherEnd(std::uint32_t e,
                                         graph::VertexId v) const noexcept {
    return edges_[e].u == v ? edges_[e].v : edges_[e].u;
  }

  void assignEdge(std::uint32_t e, graph::PartitionId p) {
    assigned_[e] = 1;
    --unassignedTotal_;
    sink_.assign(edges_[e], p);
    for (const graph::VertexId v : {edges_[e].u, edges_[e].v}) {
      if (--unassignedDeg_[v] > 0) seedHeap_.emplace(unassignedDeg_[v], v);
    }
  }

  /// Pulls y into C ∪ S: claims every unassigned edge from y into the set
  /// (the AllocEdges step), fixes the ext-degrees those claims invalidate,
  /// then scores y itself.
  void addToBoundary(graph::VertexId y) {
    setEpoch_[y] = epoch_;
    for (std::size_t i = incOff_[y]; i < incOff_[y + 1]; ++i) {
      const std::uint32_t e = incEdge_[i];
      if (assigned_[e]) continue;
      const graph::VertexId z = otherEnd(e, y);
      if (setEpoch_[z] != epoch_) continue;
      assignEdge(e, part_);
      ++count_;
      // z counted y as an external neighbour until now.
      if (coreEpoch_[z] != epoch_ && extDeg_[z] > 0) {
        boundaryHeap_.emplace(--extDeg_[z], z);
      }
      if (count_ >= cap_) return;
    }
    std::uint32_t ext = 0;
    for (std::size_t i = incOff_[y]; i < incOff_[y + 1]; ++i) {
      const std::uint32_t e = incEdge_[i];
      if (!assigned_[e] && setEpoch_[otherEnd(e, y)] != epoch_) ++ext;
    }
    extDeg_[y] = ext;
    boundaryHeap_.emplace(ext, y);
  }

  [[nodiscard]] graph::VertexId popBoundary() {
    while (!boundaryHeap_.empty()) {
      const auto [score, v] = boundaryHeap_.top();
      boundaryHeap_.pop();
      if (setEpoch_[v] == epoch_ && coreEpoch_[v] != epoch_ &&
          extDeg_[v] == score) {
        return v;
      }
    }
    return graph::kInvalidVertex;
  }

  /// Valid while unassignedTotal_ > 0: the expansion invariant guarantees
  /// some unassigned edge endpoint sits outside the set, and every
  /// unassigned-degree change pushed a fresh heap entry, so the rebuild
  /// fallback is unreachable in practice but keeps the contract airtight.
  [[nodiscard]] graph::VertexId popSeed() {
    for (;;) {
      while (!seedHeap_.empty()) {
        const auto [deg, v] = seedHeap_.top();
        seedHeap_.pop();
        if (unassignedDeg_[v] == deg && deg > 0 && setEpoch_[v] != epoch_) {
          return v;
        }
      }
      for (graph::VertexId v = 0; v < unassignedDeg_.size(); ++v) {
        if (unassignedDeg_[v] > 0 && setEpoch_[v] != epoch_) {
          seedHeap_.emplace(unassignedDeg_[v], v);
        }
      }
    }
  }

  using HeapEntry = std::pair<std::uint32_t, graph::VertexId>;
  using MinHeap =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

  std::vector<graph::Edge> edges_;
  EdgeAssignment& sink_;
  std::vector<std::uint8_t> assigned_;
  std::vector<std::uint32_t> unassignedDeg_;
  std::size_t unassignedTotal_ = 0;
  std::vector<std::size_t> incOff_;
  std::vector<std::uint32_t> incEdge_;

  std::uint32_t epoch_ = 0;  ///< current pass; stamps setEpoch_/coreEpoch_
  std::vector<std::uint32_t> setEpoch_;   ///< v ∈ C ∪ S this pass
  std::vector<std::uint32_t> coreEpoch_;  ///< v ∈ C this pass
  std::vector<std::uint32_t> extDeg_;     ///< |unassigned edges leaving C ∪ S|
  MinHeap boundaryHeap_;
  MinHeap seedHeap_;
  graph::PartitionId part_ = 0;
  std::size_t cap_ = 0;
  std::size_t count_ = 0;
};

std::vector<graph::Edge> collectEdges(const graph::CsrGraph& g,
                                      std::size_t limit) {
  std::vector<graph::Edge> edges;
  edges.reserve(std::min(limit, g.numEdges()));
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    if (edges.size() < limit) edges.push_back({u, v});
  });
  return edges;
}

}  // namespace

EdgeAssignment NePartitioner::partition(
    const EdgePartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  EdgeAssignment assignment(g.idBound(), request.k);
  Expander expander(g.idBound(), collectEdges(g, g.numEdges()), assignment);
  // Adaptive caps: each partition takes balanceFactor headroom over the
  // *remaining* per-partition share. The share is non-increasing in p, so
  // every cap (and the final sweep) stays within the global
  // edgeCapacity(|E|, k, balanceFactor) bound the registry promises.
  for (graph::PartitionId p = 0; p + 1 < request.k; ++p) {
    expander.fill(p, edgeCapacity(expander.unassigned(), request.k - p,
                                  request.balanceFactor));
  }
  expander.sweepRemainder(static_cast<graph::PartitionId>(request.k - 1));
  return assignment;
}

EdgeAssignment SnePartitioner::partition(
    const EdgePartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  EdgeAssignment assignment(g.idBound(), request.k);
  const std::size_t budget =
      maxBufferedEdges_ > 0
          ? maxBufferedEdges_
          : std::max<std::size_t>(2 * g.numVertices(), request.k);
  const std::size_t globalCap =
      edgeCapacity(g.numEdges(), request.k, request.balanceFactor);

  const auto streamEdge = [&](graph::VertexId u, graph::VertexId v) {
    const graph::PartitionId p =
        hdrfChoose(assignment, u, v, static_cast<double>(g.degree(u)),
                   static_cast<double>(g.degree(v)), 1.1, globalCap);
    assignment.assign({u, v}, p);
  };

  // Phase 1: grow all k cores from the buffered prefix, caps scaled to the
  // buffer so every partition gets a neighbourhood to anchor phase 2.
  Expander expander(g.idBound(), collectEdges(g, budget), assignment);
  for (graph::PartitionId p = 0; p < request.k; ++p) {
    const std::size_t cap = std::min(
        edgeCapacity(expander.unassigned(), request.k - p,
                     request.balanceFactor),
        globalCap - std::min(globalCap, assignment.edgeLoads()[p]));
    expander.fill(p, cap);
  }
  // Buffered stragglers (only possible when a cap above clamped to the
  // global bound) fall through to the streaming rule.
  expander.forEachUnassigned(
      [&](const graph::Edge& e) { streamEdge(e.u, e.v); });

  // Phase 2: everything past the budget streams one edge at a time against
  // the replica sets the cores established. Degrees are exact (the CSR is
  // in hand); only edge storage is budget-bounded.
  std::size_t index = 0;
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    if (index++ < budget) return;
    streamEdge(u, v);
  });
  return assignment;
}

}  // namespace xdgp::epartition
