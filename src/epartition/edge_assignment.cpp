#include "epartition/edge_assignment.h"

#include <stdexcept>
#include <string>

namespace xdgp::epartition {

EdgeAssignment::EdgeAssignment(std::size_t idBound, std::size_t k)
    : idBound_(idBound), k_(k), words_((k + 63) / 64) {
  if (k == 0) {
    throw std::invalid_argument("EdgeAssignment: k must be positive");
  }
  edgeLoads_.assign(k_, 0);
  bits_.assign(idBound_ * words_, 0);
  replicaCounts_.assign(idBound_, 0);
}

void EdgeAssignment::assign(graph::Edge e, graph::PartitionId p) {
  e = e.canonical();
  if (p >= k_) {
    throw std::invalid_argument("EdgeAssignment: partition " + std::to_string(p) +
                                " out of range (k=" + std::to_string(k_) + ")");
  }
  if (e.v >= idBound_) {
    throw std::invalid_argument("EdgeAssignment: endpoint " + std::to_string(e.v) +
                                " out of range (idBound=" +
                                std::to_string(idBound_) + ")");
  }
  edges_.push_back(e);
  parts_.push_back(p);
  ++edgeLoads_[p];
  for (const graph::VertexId v : {e.u, e.v}) {
    std::uint64_t& word = bits_[static_cast<std::size_t>(v) * words_ + p / 64];
    const std::uint64_t mask = 1ULL << (p % 64);
    if ((word & mask) == 0) {
      word |= mask;
      if (replicaCounts_[v]++ == 0) ++coveredVertices_;
      ++totalReplicas_;
    }
  }
}

EdgeAssignment EdgeAssignment::fromVertexAssignment(
    const graph::CsrGraph& g, const metrics::Assignment& assignment,
    std::size_t k) {
  EdgeAssignment result(g.idBound(), k);
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    const graph::PartitionId p =
        u < assignment.size() ? assignment[u] : graph::kNoPartition;
    if (p != graph::kNoPartition) result.assign({u, v}, p);
  });
  return result;
}

std::vector<graph::PartitionId> EdgeAssignment::replicaSet(
    graph::VertexId v) const {
  std::vector<graph::PartitionId> set;
  set.reserve(replicaCounts_[v]);
  for (graph::PartitionId p = 0; p < k_; ++p) {
    if (hasReplica(v, p)) set.push_back(p);
  }
  return set;
}

std::vector<std::size_t> EdgeAssignment::copyLoads() const {
  std::vector<std::size_t> loads(k_, 0);
  for (graph::VertexId v = 0; v < idBound_; ++v) {
    for (graph::PartitionId p = 0; p < k_; ++p) {
      if (hasReplica(v, p)) ++loads[p];
    }
  }
  return loads;
}

}  // namespace xdgp::epartition
