#pragma once

#include <cstddef>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/update_stream.h"
#include "util/rng.h"

namespace xdgp::gen {

/// Parameters of the Leskovec forest-fire growth model used by the paper to
/// "mimic dynamic changes" of its static graphs (§4.1) and to inject the
/// Fig. 7b load peak (+10 % vertices, +30 % edges, all at once).
struct ForestFireParams {
  /// Forward burning probability; each burned vertex ignites
  /// Geometric(forward) of its unburned neighbours, so the fire is a
  /// branching process with mean offspring forward/(1−forward). The default
  /// keeps it subcritical at ~0.67, giving a mean burned set of ~3 — the
  /// Fig. 7b ratio of +30 % edges for +10 % vertices on a 3-connected mesh.
  double forward = 0.40;
  /// Hard cap on vertices burned per new arrival (keeps the heavy tail of
  /// the fire from consuming the graph; Leskovec's implementation does the
  /// same via burn-in limits).
  std::size_t maxBurn = 16;
};

/// Grows `g` by `newVertices` arrivals following the forest-fire process:
/// every new vertex picks a random ambassador, links to it, and links to
/// every vertex reached by the fire spreading from the ambassador.
///
/// The graph is mutated in place; the returned events (AddVertex + AddEdge,
/// all stamped with `timestamp`) are the stream form consumed by the
/// engine's mutation ingestion — "simultaneous creation of all the new
/// vertices", the paper's worst case.
std::vector<graph::UpdateEvent> forestFireExtension(graph::DynamicGraph& g,
                                                    std::size_t newVertices,
                                                    const ForestFireParams& params,
                                                    util::Rng& rng,
                                                    double timestamp = 0.0);

}  // namespace xdgp::gen
