#include "gen/cdr_stream.h"

#include <algorithm>
#include <cmath>

#include "gen/powerlaw_cluster.h"

namespace xdgp::gen {

namespace {
using graph::UpdateEvent;
using graph::VertexId;
}  // namespace

CdrStreamGenerator::CdrStreamGenerator(CdrStreamParams params, util::Rng rng)
    : params_(params), rng_(rng) {
  // Warm-up month: the subscriber base with reciprocated social ties and
  // the paper's average degree (10.1) and mild power-law skew.
  const auto targetEdges = static_cast<std::size_t>(
      static_cast<double>(params_.initialSubscribers) * params_.meanDegree / 2.0);
  graph_ = powerlawClusterTarget(params_.initialSubscribers, targetEdges,
                                 /*p=*/0.35, rng_);
}

VertexId CdrStreamGenerator::sampleSubscriber() {
  // Rejection-sample an alive vertex; the id space stays compact because
  // removals recycle ids, so a handful of draws suffice.
  for (int attempts = 0; attempts < 64; ++attempts) {
    const auto id = static_cast<VertexId>(rng_.index(graph_.idBound()));
    if (graph_.hasVertex(id)) return id;
  }
  return graph_.vertices().front();  // degenerate fallback (near-empty graph)
}

void CdrStreamGenerator::addTie(VertexId u, CdrWeek& out, double timestamp) {
  VertexId target = graph::kInvalidVertex;
  if (rng_.bernoulli(params_.triadicBias) && graph_.degree(u) > 0) {
    // Friend-of-friend call: pick a random neighbour, then one of theirs.
    const auto nbrs = graph_.neighbors(u);
    const VertexId via = nbrs[rng_.index(nbrs.size())];
    const auto second = graph_.neighbors(via);
    if (!second.empty()) {
      const VertexId cand = second[rng_.index(second.size())];
      if (cand != u && !graph_.hasEdge(u, cand)) target = cand;
    }
  }
  if (target == graph::kInvalidVertex) {
    const VertexId cand = sampleSubscriber();
    if (cand == u || graph_.hasEdge(u, cand)) return;
    target = cand;
  }
  if (graph_.addEdge(u, target)) {
    out.events.push_back(UpdateEvent::addEdge(u, target, timestamp));
    ++out.edgesAdded;
  }
}

CdrWeek CdrStreamGenerator::nextWeek() {
  CdrWeek out;
  out.index = week_;
  const double base = static_cast<double>(week_);
  const std::size_t population = graph_.numVertices();
  const std::size_t edgesBefore = graph_.numEdges();

  // 1) Deletions: subscribers inactive for over a week leave the graph.
  auto alive = graph_.vertices();
  rng_.shuffle(alive);
  const auto removeCount = static_cast<std::size_t>(
      std::llround(static_cast<double>(population) * params_.weeklyRemoveRate));
  for (std::size_t i = 0; i < removeCount && i < alive.size(); ++i) {
    const VertexId victim = alive[i];
    out.edgesRemoved += graph_.degree(victim);
    graph_.removeVertex(victim);
    out.events.push_back(
        UpdateEvent::removeVertex(victim, base + 0.25 * rng_.uniform()));
    ++out.verticesRemoved;
  }

  // 2) Additions: new subscribers join and place their first calls.
  const auto addCount = static_cast<std::size_t>(
      std::llround(static_cast<double>(population) * params_.weeklyAddRate));
  for (std::size_t i = 0; i < addCount; ++i) {
    const double t = base + 0.25 + 0.5 * rng_.uniform();
    const VertexId fresh = graph_.addVertex();
    out.events.push_back(UpdateEvent::addVertex(fresh, t));
    ++out.verticesAdded;
    // First call to an established subscriber, then friend-of-friend ties.
    const std::size_t ties = 2 + rng_.below(4);  // 2..5 initial contacts
    for (std::size_t k = 0; k < ties; ++k) addTie(fresh, out, t);
  }

  // 3) Ongoing call activity replaces ties lost to churn, keeping the mean
  //    degree stable the way a steady call mix does.
  const std::size_t edgesNow = graph_.numEdges();
  if (edgesNow < edgesBefore) {
    const std::size_t deficit = edgesBefore - edgesNow;
    for (std::size_t k = 0; k < deficit; ++k) {
      addTie(sampleSubscriber(), out, base + 0.75 + 0.25 * rng_.uniform());
    }
  }

  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const UpdateEvent& a, const UpdateEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
  ++week_;
  return out;
}

}  // namespace xdgp::gen
