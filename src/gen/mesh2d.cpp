#include "gen/mesh2d.h"

#include <cmath>

namespace xdgp::gen {

graph::DynamicGraph mesh2d(std::size_t nx, std::size_t ny) {
  graph::DynamicGraph g(nx * ny);
  const auto id = [nx](std::size_t x, std::size_t y) {
    return static_cast<graph::VertexId>(y * nx + x);
  };
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) g.addEdge(id(x, y), id(x + 1, y));
      if (y + 1 < ny) g.addEdge(id(x, y), id(x, y + 1));
      if (x + 1 < nx && y + 1 < ny) g.addEdge(id(x, y), id(x + 1, y + 1));
    }
  }
  return g;
}

graph::DynamicGraph mesh2dApprox(std::size_t n) {
  auto side = static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(n))));
  if (side == 0) side = 1;
  const std::size_t ny = (n + side - 1) / side;
  return mesh2d(side, ny);
}

}  // namespace xdgp::gen
