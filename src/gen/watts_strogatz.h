#pragma once

#include <cstddef>

#include "graph/dynamic_graph.h"
#include "util/rng.h"

namespace xdgp::gen {

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k` nearest neighbours (k even), with every edge rewired
/// to a random endpoint with probability `beta`.
///
/// beta = 0 is a pure ring (ideal for the partitioner: contiguous arcs cut
/// only 2k edges); beta = 1 approaches a random graph (nothing to exploit).
/// Sweeping beta exposes exactly how partition quality tracks the amount of
/// locality in the graph — a useful test family beyond the paper's two.
graph::DynamicGraph wattsStrogatz(std::size_t n, std::size_t k, double beta,
                                  util::Rng& rng);

}  // namespace xdgp::gen
