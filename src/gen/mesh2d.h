#pragma once

#include <cstddef>

#include "graph/dynamic_graph.h"

namespace xdgp::gen {

/// 2-D triangulated grid: nx × ny lattice with one diagonal per cell, giving
/// the bounded-degree (<= 6) structure of 2-D finite-element meshes.
///
/// Edge count: (nx−1)·ny + nx·(ny−1) + (nx−1)·(ny−1).
///
/// This is the offline substitute for the Walshaw-archive meshes `3elt`
/// (4 720 V / 13 722 E) and `4elt` (15 606 V / 45 878 E) used in Table 1 /
/// Fig. 5: same graph family (planar triangulation, average degree ~5.8),
/// sizes matched by mesh2dApprox(). See docs/DESIGN.md §2.
graph::DynamicGraph mesh2d(std::size_t nx, std::size_t ny);

/// Triangulated grid with ~n vertices (near-square aspect).
graph::DynamicGraph mesh2dApprox(std::size_t n);

}  // namespace xdgp::gen
