#pragma once

#include <cstddef>

#include "graph/dynamic_graph.h"
#include "util/rng.h"

namespace xdgp::gen {

/// Holme–Kim power-law graph with tunable clustering — the generator behind
/// the paper's `plc*` datasets ("generated with networkX, using its power law
/// degree distribution and approximate average clustering", §4.1; Holme &
/// Kim 2002). Faithful port of networkx.powerlaw_cluster_graph(n, m, p):
///
///  - start with m isolated vertices;
///  - every new vertex attaches m edges: the first by preferential
///    attachment, each subsequent one with probability p to a random
///    neighbour of the previous target (triad formation, the clustering
///    knob), otherwise again by preferential attachment;
///  - duplicate edges are dropped, so |E| lands slightly under (n−m)·m,
///    exactly as in Table 1 (plc1000: 9 879 < 990·10).
///
/// The paper sets the intended average degree D = log|V| (=> m ≈ D/2 in
/// base-2: plc1000 m=10, plc10000 m=13, plc50000 m=25) and p = 0.1.
graph::DynamicGraph powerlawCluster(std::size_t n, std::size_t m, double p,
                                    util::Rng& rng);

/// Variant that hits a target edge count by mixing per-vertex attachment
/// counts floor(mExact)/ceil(mExact). Used to match the real-graph stand-ins
/// (wikivote-like, epinion-like) whose |E|/|V| is fractional.
graph::DynamicGraph powerlawClusterTarget(std::size_t n, std::size_t targetEdges,
                                          double p, util::Rng& rng);

}  // namespace xdgp::gen
