#pragma once

#include <cstddef>

#include "graph/dynamic_graph.h"
#include "util/rng.h"

namespace xdgp::gen {

/// R-MAT / Kronecker-style recursive-matrix generator (Chakrabarti, Zhan &
/// Faloutsos 2004) — the other standard synthetic family in partitioning
/// evaluations (Graph500 uses it). Each edge recursively descends into one
/// of four adjacency-matrix quadrants with probabilities (a, b, c, d).
///
/// The defaults (0.57, 0.19, 0.19, 0.05) are the Graph500 parameters and
/// yield skewed degrees with community-like self-similarity. Self-loops and
/// duplicates are re-drawn so the edge count is exact.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
  std::size_t scale = 10;        ///< 2^scale vertices
  std::size_t edgeFactor = 8;    ///< edges = edgeFactor * 2^scale
};

graph::DynamicGraph rmat(const RmatParams& params, util::Rng& rng);

}  // namespace xdgp::gen
