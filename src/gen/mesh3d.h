#pragma once

#include <cstddef>

#include "graph/dynamic_graph.h"

namespace xdgp::gen {

/// 3-D regular cubic lattice: the paper's synthetic FEM family, "modelling
/// the electric connections between heart cells" (§4.1, ten Tusscher model).
///
/// Vertices are lattice points of an nx × ny × nz box; each vertex connects
/// to its 6-neighbourhood. Edge count is exactly
///   (nx−1)·ny·nz + nx·(ny−1)·nz + nx·ny·(nz−1),
/// which reproduces Table 1 exactly:
///   1e4     = mesh3d(10, 10, 100)  -> 10 000 V, 27 900 E
///   64kcube = mesh3d(40, 40, 40)   -> 64 000 V, 187 200 E
///   1e6     = mesh3d(100, 100, 100)-> 1 000 000 V, 2 970 000 E
graph::DynamicGraph mesh3d(std::size_t nx, std::size_t ny, std::size_t nz);

/// Vertex id of lattice point (x, y, z) in the mesh3d id scheme.
[[nodiscard]] constexpr graph::VertexId mesh3dId(std::size_t nx, std::size_t ny,
                                                 std::size_t x, std::size_t y,
                                                 std::size_t z) noexcept {
  return static_cast<graph::VertexId>((z * ny + y) * nx + x);
}

/// Near-cubic box with ~n vertices: side = round(cbrt(n)); used by the
/// Fig. 6 scalability sweep where the paper grows meshes 1 000 -> 300 000.
graph::DynamicGraph mesh3dApprox(std::size_t n);

}  // namespace xdgp::gen
