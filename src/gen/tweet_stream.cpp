#include "gen/tweet_stream.h"

#include <algorithm>
#include <cmath>

namespace xdgp::gen {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

namespace {

std::vector<double> zipfCdf(std::size_t n, double exponent) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf[r] = total;
  }
  for (auto& c : cdf) c /= total;
  return cdf;
}

}  // namespace

TweetStreamGenerator::TweetStreamGenerator(TweetStreamParams params, util::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.communitySize == 0) params_.communitySize = 1;
  // Rank 0 is the most-mentioned account, globally and within each circle.
  cumulativePopularity_ = zipfCdf(params_.users, params_.zipfExponent);
  communityPopularity_ =
      zipfCdf(std::min(params_.communitySize, params_.users), params_.zipfExponent);
}

double TweetStreamGenerator::rateAt(double hourOfDay) const noexcept {
  // Two-harmonic diurnal profile: trough near 04:00, main peak near 20:00
  // with an afternoon shoulder — the shape of the paper's Fig. 8 red line.
  const double h = std::fmod(hourOfDay, 24.0);
  const double main = std::cos(2.0 * kPi * (h - 20.0) / 24.0);
  const double shoulder = 0.35 * std::cos(4.0 * kPi * (h - 14.0) / 24.0);
  const double shape = 1.0 + 0.75 * main + shoulder * 0.3;
  return std::max(0.1, params_.meanRate * shape);
}

graph::VertexId TweetStreamGenerator::samplePopular() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cumulativePopularity_.begin(),
                                   cumulativePopularity_.end(), u);
  return static_cast<graph::VertexId>(
      std::distance(cumulativePopularity_.begin(), it));
}

graph::VertexId TweetStreamGenerator::sampleInCommunity(graph::VertexId author) {
  const std::size_t community = author / params_.communitySize;
  const std::size_t base = community * params_.communitySize;
  const std::size_t size =
      std::min(params_.communitySize, params_.users - base);
  const double u = rng_.uniform();
  const auto it = std::lower_bound(communityPopularity_.begin(),
                                   communityPopularity_.begin() +
                                       static_cast<std::ptrdiff_t>(size),
                                   u);
  const auto rank = static_cast<std::size_t>(
      std::distance(communityPopularity_.begin(), it));
  return static_cast<graph::VertexId>(base + std::min(rank, size - 1));
}

std::vector<graph::UpdateEvent> TweetStreamGenerator::generate() {
  std::vector<graph::UpdateEvent> events;
  events.reserve(expectedEvents());
  const double durationSec = params_.hours * 3600.0;
  double t = 0.0;
  while (t < durationSec) {
    const double hourOfDay = params_.startHour + t / 3600.0;
    const double rate = rateAt(hourOfDay);
    // Thinned Poisson process: exponential inter-arrival at the local rate.
    const double gap = -std::log(1.0 - rng_.uniform()) / rate;
    t += gap;
    if (t >= durationSec) break;
    // Authors are drawn uniformly (everyone tweets); the mention lands in
    // the author's social circle most of the time, otherwise on a global
    // celebrity — both with Zipf popularity.
    const auto author = static_cast<graph::VertexId>(rng_.index(params_.users));
    const graph::VertexId mentioned = rng_.bernoulli(params_.withinCommunityProb)
                                          ? sampleInCommunity(author)
                                          : samplePopular();
    if (author == mentioned) continue;
    events.push_back(graph::UpdateEvent::addEdge(author, mentioned, t));
  }
  return events;
}

std::size_t TweetStreamGenerator::expectedEvents() const noexcept {
  return static_cast<std::size_t>(params_.meanRate * params_.hours * 3600.0);
}

}  // namespace xdgp::gen
