#include "gen/forest_fire.h"

#include <deque>
#include <unordered_set>

namespace xdgp::gen {

namespace {
using graph::UpdateEvent;
using graph::VertexId;
}  // namespace

std::vector<UpdateEvent> forestFireExtension(graph::DynamicGraph& g,
                                             std::size_t newVertices,
                                             const ForestFireParams& params,
                                             util::Rng& rng, double timestamp) {
  std::vector<UpdateEvent> events;
  events.reserve(newVertices * 4);
  std::vector<VertexId> population = g.vertices();
  if (population.empty()) return events;
  population.reserve(population.size() + newVertices);

  for (std::size_t i = 0; i < newVertices; ++i) {
    const VertexId ambassador = population[rng.index(population.size())];
    const VertexId fresh = g.addVertex();
    events.push_back(UpdateEvent::addVertex(fresh, timestamp));

    // Spread the fire breadth-first from the ambassador.
    std::unordered_set<VertexId> burned{ambassador};
    std::deque<VertexId> frontier{ambassador};
    while (!frontier.empty() && burned.size() < params.maxBurn) {
      const VertexId at = frontier.front();
      frontier.pop_front();
      const std::uint32_t toBurn = rng.geometric(params.forward);
      std::uint32_t burnedHere = 0;
      for (const VertexId nbr : g.neighbors(at)) {
        if (burnedHere >= toBurn || burned.size() >= params.maxBurn) break;
        if (nbr == fresh || burned.count(nbr)) continue;
        burned.insert(nbr);
        frontier.push_back(nbr);
        ++burnedHere;
      }
    }
    for (const VertexId victim : burned) {
      if (g.addEdge(fresh, victim)) {
        events.push_back(UpdateEvent::addEdge(fresh, victim, timestamp));
      }
    }
    population.push_back(fresh);
  }
  return events;
}

}  // namespace xdgp::gen
