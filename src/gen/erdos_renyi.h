#pragma once

#include <cstddef>

#include "graph/dynamic_graph.h"
#include "util/rng.h"

namespace xdgp::gen {

/// G(n, M): exactly `edges` distinct uniform random edges over n vertices.
/// Used by tests as the unstructured control case (no locality to exploit,
/// so partitioning quality should stay near the random baseline).
graph::DynamicGraph erdosRenyi(std::size_t n, std::size_t edges, util::Rng& rng);

}  // namespace xdgp::gen
