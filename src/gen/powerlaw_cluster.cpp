#include "gen/powerlaw_cluster.h"

#include <algorithm>
#include <vector>

namespace xdgp::gen {

namespace {

using graph::VertexId;

/// networkX _random_subset: sample `count` *distinct* elements from `pool`
/// with degree-proportional repetition semantics (pool holds one entry per
/// incident edge endpoint). A flat insertion-ordered vector with a linear
/// dedup scan: count is m (<= ~25 even at 10M vertices), where the scan
/// beats a hash set's allocation per call — and unlike the unordered_set it
/// replaced, the result order no longer depends on the standard library's
/// hash iteration, only on the seed.
std::vector<VertexId> randomSubset(const std::vector<VertexId>& pool,
                                   std::size_t count, util::Rng& rng) {
  std::vector<VertexId> chosen;
  chosen.reserve(count);
  while (chosen.size() < count) {
    const VertexId candidate = pool[rng.index(pool.size())];
    if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
      chosen.push_back(candidate);
    }
  }
  return chosen;
}

graph::DynamicGraph holmeKim(std::size_t n, const std::vector<std::size_t>& mPerVertex,
                             std::size_t mMax, double p, util::Rng& rng) {
  graph::DynamicGraph g(n);
  // repeated_nodes: one entry per edge endpoint => preferential attachment.
  std::vector<VertexId> repeated;
  repeated.reserve(2 * n * mMax);
  for (std::size_t i = 0; i < mMax; ++i) repeated.push_back(static_cast<VertexId>(i));

  for (std::size_t source = mMax; source < n; ++source) {
    const std::size_t m = mPerVertex[source];
    const auto src = static_cast<VertexId>(source);
    auto possibleTargets = randomSubset(repeated, m, rng);
    VertexId target = possibleTargets.back();
    possibleTargets.pop_back();
    g.addEdge(src, target);
    repeated.push_back(target);
    std::size_t count = 1;
    while (count < m) {
      bool didTriad = false;
      if (rng.bernoulli(p)) {
        // Triad formation: close a triangle through the previous target.
        std::vector<VertexId> neighborhood;
        for (const VertexId nbr : g.neighbors(target)) {
          if (nbr != src && !g.hasEdge(src, nbr)) neighborhood.push_back(nbr);
        }
        if (!neighborhood.empty()) {
          const VertexId nbr = neighborhood[rng.index(neighborhood.size())];
          g.addEdge(src, nbr);
          repeated.push_back(nbr);
          ++count;
          didTriad = true;
        }
      }
      if (!didTriad) {
        target = possibleTargets.back();
        possibleTargets.pop_back();
        g.addEdge(src, target);  // may be a duplicate: dropped, like networkX
        repeated.push_back(target);
        ++count;
      }
    }
    for (std::size_t i = 0; i < m; ++i) repeated.push_back(src);
  }
  return g;
}

}  // namespace

graph::DynamicGraph powerlawCluster(std::size_t n, std::size_t m, double p,
                                    util::Rng& rng) {
  if (m < 1 || m >= n) m = std::max<std::size_t>(1, std::min(m, n > 1 ? n - 1 : 1));
  return holmeKim(n, std::vector<std::size_t>(n, m), m, p, rng);
}

graph::DynamicGraph powerlawClusterTarget(std::size_t n, std::size_t targetEdges,
                                          double p, util::Rng& rng) {
  const double mExact =
      static_cast<double>(targetEdges) / static_cast<double>(n > 0 ? n : 1);
  const auto mLo = static_cast<std::size_t>(mExact);
  const std::size_t mHi = mLo + 1;
  const double hiShare = mExact - static_cast<double>(mLo);
  std::vector<std::size_t> mPerVertex(n, mLo);
  for (std::size_t v = 0; v < n; ++v) {
    if (rng.bernoulli(hiShare)) mPerVertex[v] = mHi;
  }
  const std::size_t mMax = std::max<std::size_t>(1, mHi);
  for (auto& m : mPerVertex) m = std::max<std::size_t>(1, m);
  return holmeKim(n, mPerVertex, mMax, p, rng);
}

}  // namespace xdgp::gen
