#pragma once

#include <cstddef>
#include <vector>

#include "graph/update_stream.h"
#include "util/rng.h"

namespace xdgp::gen {

/// Synthetic stand-in for the paper's Twitter Streaming API feed (§4.3,
/// Fig. 8: London, Friday 5 Oct 2012). Produces a time-stamped stream of
/// mention edges "author -> mentioned" with:
///
///  - a diurnal rate profile (trough ~04:00, evening peak ~20:00) spanning
///    the paper's observed 10–45 tweets/s band, scaled by `meanRate`;
///  - community structure: London users mostly mention people in their own
///    social circle (`withinCommunityProb`), the locality that makes a
///    real mention graph partitionable at all;
///  - Zipf-like mention popularity both within communities and across them
///    (a small set of celebrity accounts receives most global mentions),
///    yielding the power-law degree distribution the paper describes.
///
/// The substitution preserves the Fig. 8 comparison because both systems
/// (static hash vs adaptive) are driven by the *same* stream; see docs/DESIGN.md.
struct TweetStreamParams {
  std::size_t users = 50'000;    ///< user universe (paper: London-area users)
  double meanRate = 15.0;        ///< tweets/second averaged over the day
  double hours = 24.0;           ///< stream duration
  double zipfExponent = 1.0;     ///< popularity skew for mention targets
  double startHour = 0.0;        ///< local time at stream start
  std::size_t communitySize = 130;      ///< users per social circle
  double withinCommunityProb = 0.85;    ///< share of in-circle mentions
};

class TweetStreamGenerator {
 public:
  TweetStreamGenerator(TweetStreamParams params, util::Rng rng);

  /// Diurnal tweets-per-second rate at local hour-of-day h in [0, 24).
  [[nodiscard]] double rateAt(double hourOfDay) const noexcept;

  /// Generates the full stream: AddEdge events with timestamps in seconds
  /// from stream start. Self-mentions are skipped.
  [[nodiscard]] std::vector<graph::UpdateEvent> generate();

  /// Expected event count (integral of the rate profile).
  [[nodiscard]] std::size_t expectedEvents() const noexcept;

 private:
  graph::VertexId samplePopular();
  graph::VertexId sampleInCommunity(graph::VertexId author);

  TweetStreamParams params_;
  util::Rng rng_;
  std::vector<double> cumulativePopularity_;  ///< global celebrity CDF
  std::vector<double> communityPopularity_;   ///< within-circle rank CDF
};

}  // namespace xdgp::gen
