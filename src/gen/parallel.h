#pragma once

#include <cstddef>
#include <cstdint>

#include "gen/rmat.h"
#include "graph/dynamic_graph.h"

namespace xdgp::gen {

/// Parallel, deterministic construction for the scale-relevant families.
///
/// Every generator here follows one scheme: the work range (vertices or edge
/// indices) is cut into fixed-size chunks — the chunk grid never depends on
/// the thread count — and each chunk's edges are a pure function of
/// (seed, item index) through stateless per-item RNG streams (the
/// core/draws.h pattern). Chunks are concatenated in index order and
/// bulk-loaded via DynamicGraph::fromEdges, so the resulting graph is
/// bit-identical at any thread count: threads only decide who computes a
/// chunk, never what it contains (tests/gen_test.cpp locksteps
/// threads ∈ {1, 2, 8}).
///
/// These are the 10M-vertex scale pass work-horses; the serial generators
/// (mesh3d, powerlawCluster, erdosRenyi, rmat) remain the paper-faithful
/// reference for the figure reproductions at their original sizes.
///
/// `threads = 0` means std::thread::hardware_concurrency().

/// Resolves a thread-count argument: 0 => hardware concurrency, floor 1.
[[nodiscard]] std::size_t resolveThreads(std::size_t threads) noexcept;

/// The mesh3d lattice (identical vertex/edge set to gen::mesh3d — no RNG),
/// built chunk-parallel over the id range with batched ingest.
[[nodiscard]] graph::DynamicGraph mesh3dParallel(std::size_t nx, std::size_t ny,
                                                 std::size_t nz,
                                                 std::size_t threads = 0);

/// mesh3dApprox's near-cubic box, through the parallel path.
[[nodiscard]] graph::DynamicGraph mesh3dApproxParallel(std::size_t n,
                                                       std::size_t threads = 0);

/// Erdős–Rényi by stateless ball-dropping: exactly `targetEdges` endpoint
/// pairs are drawn (pair i a pure function of (seed, i)); self-loops and
/// collisions are dropped at ingest, so |E| lands slightly under the target
/// (the collision mass is ~|E|²/n² — negligible for sparse graphs). The
/// serial gen::erdosRenyi redraw loop stays the exact-count reference.
[[nodiscard]] graph::DynamicGraph erdosRenyiParallel(std::size_t n,
                                                     std::size_t targetEdges,
                                                     std::uint64_t seed,
                                                     std::size_t threads = 0);

/// R-MAT with stateless per-edge-index quadrant descent. Unlike the serial
/// gen::rmat (which re-draws duplicates until the count is exact), dropped
/// self-loops/duplicates simply shrink |E| below edgeFactor · 2^scale — at
/// Graph500 skew that is a few percent.
[[nodiscard]] graph::DynamicGraph rmatParallel(const RmatParams& params,
                                               std::uint64_t seed,
                                               std::size_t threads = 0);

/// Scale-oriented power-law family with tunable clustering: the random-copy
/// model (Kumar et al. 2000), whose attachment step — copy a uniformly
/// chosen earlier vertex's edge target with probability 1/2 — reproduces
/// preferential attachment's k^-3 tail without the serial Holme–Kim pool.
/// Vertex v creates min(v, m) out-edges; out-slot j of v resolves its target
/// by a stateless recursion that only ever descends to smaller vertex ids,
/// so any thread can recompute any earlier vertex's edges on the fly.
/// With probability `p` a slot instead closes a triangle through the
/// previous slot's target (the Holme–Kim triad step), which raises the
/// clustering coefficient exactly like the serial generator's knob.
/// Duplicate targets are dropped at ingest, so |E| lands slightly under
/// n·m — the same slack Table 1 shows for the networkX graphs.
[[nodiscard]] graph::DynamicGraph powerlawClusterParallel(std::size_t n,
                                                          std::size_t m, double p,
                                                          std::uint64_t seed,
                                                          std::size_t threads = 0);

}  // namespace xdgp::gen
