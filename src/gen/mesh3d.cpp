#include "gen/mesh3d.h"

#include <cmath>

namespace xdgp::gen {

graph::DynamicGraph mesh3d(std::size_t nx, std::size_t ny, std::size_t nz) {
  graph::DynamicGraph g(nx * ny * nz);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const auto id = mesh3dId(nx, ny, x, y, z);
        if (x + 1 < nx) g.addEdge(id, mesh3dId(nx, ny, x + 1, y, z));
        if (y + 1 < ny) g.addEdge(id, mesh3dId(nx, ny, x, y + 1, z));
        if (z + 1 < nz) g.addEdge(id, mesh3dId(nx, ny, x, y, z + 1));
      }
    }
  }
  return g;
}

graph::DynamicGraph mesh3dApprox(std::size_t n) {
  auto side = static_cast<std::size_t>(std::llround(std::cbrt(static_cast<double>(n))));
  if (side == 0) side = 1;
  // Stretch the last axis to land as close to n as possible.
  const std::size_t nz = (n + side * side - 1) / (side * side);
  return mesh3d(side, side, nz);
}

}  // namespace xdgp::gen
