#include "gen/dataset_catalog.h"

#include <stdexcept>

#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"

namespace xdgp::gen {

namespace {

std::vector<DatasetSpec> buildCatalog() {
  std::vector<DatasetSpec> specs;

  specs.push_back({"1e4", "FEM", "synth", 10'000, 27'900, 10'000, false,
                   [](util::Rng&) { return mesh3d(10, 10, 100); }});
  specs.push_back({"64kcube", "FEM", "synth", 64'000, 187'200, 64'000, false,
                   [](util::Rng&) { return mesh3d(40, 40, 40); }});
  specs.push_back({"1e6", "FEM", "synth", 1'000'000, 2'970'000, 1'000'000, false,
                   [](util::Rng&) { return mesh3d(100, 100, 100); }});
  // Paper scale: 10^8 vertices (3 TB in the authors' cluster RAM). Default
  // generation is a 125^3 mesh; the generator itself scales to any size.
  specs.push_back({"1e8", "FEM", "synth (scaled default)", 100'000'000,
                   297'000'000, 1'953'125, false,
                   [](util::Rng&) { return mesh3d(125, 125, 125); }});
  specs.push_back({"3elt", "FEM", "synth substitute for Walshaw [34]", 4'720,
                   13'722, 4'720, true,
                   [](util::Rng&) { return mesh2dApprox(4'720); }});
  specs.push_back({"4elt", "FEM", "synth substitute for Walshaw [34]", 15'606,
                   45'878, 15'606, true,
                   [](util::Rng&) { return mesh2dApprox(15'606); }});
  specs.push_back({"plc1000", "pwlaw", "synth", 1'000, 9'879, 1'000, false,
                   [](util::Rng& rng) { return powerlawCluster(1'000, 10, 0.1, rng); }});
  specs.push_back(
      {"plc10000", "pwlaw", "synth", 10'000, 129'774, 10'000, false,
       [](util::Rng& rng) { return powerlawCluster(10'000, 13, 0.1, rng); }});
  specs.push_back(
      {"plc50000", "pwlaw", "synth", 50'000, 1'249'061, 50'000, false,
       [](util::Rng& rng) { return powerlawCluster(50'000, 25, 0.1, rng); }});
  specs.push_back({"wikivote", "pwlaw", "synth substitute for SNAP [19]", 7'115,
                   103'689, 7'115, true, [](util::Rng& rng) {
                     return powerlawClusterTarget(7'115, 103'689, 0.1, rng);
                   }});
  specs.push_back({"epinion", "pwlaw", "synth substitute for SNAP [30]", 75'879,
                   508'837, 75'879, true, [](util::Rng& rng) {
                     return powerlawClusterTarget(75'879, 508'837, 0.1, rng);
                   }});
  // Paper scale: 1 M vertices / 41.2 M edges. Default generation keeps the
  // vertex count but a scaled edge budget fit for one machine.
  specs.push_back({"uk-2007-05-u", "pwlaw", "synth substitute for LAW [2] (scaled default)",
                   1'000'000, 41'247'159, 100'000, true, [](util::Rng& rng) {
                     return powerlawClusterTarget(100'000, 4'124'715, 0.1, rng);
                   }});
  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& datasetCatalog() {
  static const std::vector<DatasetSpec> catalog = buildCatalog();
  return catalog;
}

const DatasetSpec& datasetByName(const std::string& name) {
  for (const DatasetSpec& spec : datasetCatalog()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("datasetByName: unknown dataset " + name);
}

}  // namespace xdgp::gen
