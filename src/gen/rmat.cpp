#include "gen/rmat.h"

namespace xdgp::gen {

graph::DynamicGraph rmat(const RmatParams& params, util::Rng& rng) {
  const std::size_t n = std::size_t{1} << params.scale;
  const std::size_t targetEdges = params.edgeFactor * n;
  graph::DynamicGraph g(n);

  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  std::size_t attempts = 0;
  const std::size_t maxAttempts = targetEdges * 64;  // duplicates re-drawn
  while (g.numEdges() < targetEdges && attempts++ < maxAttempts) {
    std::size_t rowLo = 0, rowHi = n, colLo = 0, colHi = n;
    for (std::size_t level = 0; level < params.scale; ++level) {
      const double u = rng.uniform();
      const std::size_t rowMid = (rowLo + rowHi) / 2;
      const std::size_t colMid = (colLo + colHi) / 2;
      if (u < params.a) {            // top-left
        rowHi = rowMid;
        colHi = colMid;
      } else if (u < ab) {           // top-right
        rowHi = rowMid;
        colLo = colMid;
      } else if (u < abc) {          // bottom-left
        rowLo = rowMid;
        colHi = colMid;
      } else {                       // bottom-right
        rowLo = rowMid;
        colLo = colMid;
      }
    }
    g.addEdge(static_cast<graph::VertexId>(rowLo),
              static_cast<graph::VertexId>(colLo));
  }
  return g;
}

}  // namespace xdgp::gen
