#include "gen/parallel.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "gen/mesh3d.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace xdgp::gen {

namespace {

using graph::Edge;
using graph::VertexId;

/// Fixed chunk granularity. Chunks are the unit of determinism: their
/// boundaries must never depend on the thread count, only on the item count.
constexpr std::size_t kChunkItems = std::size_t{1} << 16;

/// Stateless (seed, a, b) -> 64-bit draw, the core/draws.h mixing chain.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                  std::uint64_t b = 0) noexcept {
  std::uint64_t x = seed ^ salt;
  x = util::Rng::splitmix64(x + 0x9e3779b97f4a7c15ULL * (a + 1));
  x = util::Rng::splitmix64(x ^ (0xff51afd7ed558ccdULL * (b + 1)));
  return x;
}

/// Runs fill(lo, hi, out) over [0, items) in kChunkItems-sized chunks,
/// fanned out across `threads` workers, and concatenates the per-chunk edge
/// vectors in chunk order. Each chunk's content is a pure function of its
/// range, so the concatenation is thread-count-invariant.
template <typename FillFn>
std::vector<Edge> generateChunked(std::size_t items, std::size_t threads,
                                  FillFn&& fill) {
  const std::size_t numChunks = (items + kChunkItems - 1) / kChunkItems;
  std::vector<std::vector<Edge>> chunks(numChunks);
  const auto runChunk = [&](std::size_t c) {
    const std::size_t lo = c * kChunkItems;
    const std::size_t hi = std::min(items, lo + kChunkItems);
    fill(lo, hi, chunks[c]);
  };
  if (threads <= 1 || numChunks <= 1) {
    for (std::size_t c = 0; c < numChunks; ++c) runChunk(c);
  } else {
    util::ThreadPool pool(threads);
    pool.parallelFor(numChunks, runChunk);
  }
  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  std::vector<Edge> edges;
  edges.reserve(total);
  for (auto& chunk : chunks) {
    edges.insert(edges.end(), chunk.begin(), chunk.end());
    // Release eagerly: at 100M+ edges, holding both the chunks and the
    // concatenation doubles the transient footprint.
    std::vector<Edge>().swap(chunk);
  }
  return edges;
}

// --------------------------------------------------------- power-law copy

constexpr std::size_t kMaxCopyDepth = 64;  ///< belt over the proven descent

/// Out-slot count of vertex v in the copy model.
std::size_t outSlots(VertexId v, std::size_t m) noexcept {
  return std::min<std::size_t>(v, m);
}

/// Target of out-slot j of vertex v — a pure function of (seed, m, p, v, j).
/// Descends strictly to smaller vertex ids (a copy target w < v; the triad
/// pivot t < v), so the recursion provably terminates; the depth cap is a
/// deterministic backstop only.
VertexId slotTarget(std::uint64_t seed, std::size_t m, double p, VertexId v,
                    std::size_t j, std::size_t depth = 0) {
  util::Rng rng(mix(seed, 0x8f1b5a2cd9e47301ULL, v, j));
  // Triad step (Holme–Kim clustering knob): close a triangle through the
  // previous slot's target t by attaching to one of t's own out-edges. Only
  // odd slots may triad — the even slot below is then always a pure copy
  // step, so triad hops cannot chain within a vertex. (Unrestricted chaining
  // turns high p into a descending hub walk: degree mass concentrates on the
  // lowest ids and the wedge count grows faster than the triangles, which
  // *lowers* transitivity as p rises.)
  if (j % 2 == 1 && depth < kMaxCopyDepth && rng.bernoulli(p)) {
    const VertexId t = slotTarget(seed, m, p, v, j - 1, depth + 1);
    if (t >= 1) {
      // Close through one of t's own even slots — pure copy steps, so the
      // hop count stays bounded across vertices too.
      const std::size_t evenSlots = (outSlots(t, m) + 1) / 2;
      const std::size_t jt = 2 * rng.index(evenSlots);
      return slotTarget(seed, m, p, t, jt, depth + 1);
    }
  }
  // Random-copy preferential attachment: pick an earlier vertex w; keep it
  // with probability 1/2, otherwise adopt the target of one of w's slots.
  const auto w = static_cast<VertexId>(rng.index(v));
  if (w == 0 || depth >= kMaxCopyDepth || rng.bernoulli(0.5)) return w;
  const std::size_t jw = rng.index(outSlots(w, m));
  return slotTarget(seed, m, p, w, jw, depth + 1);
}

}  // namespace

std::size_t resolveThreads(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

graph::DynamicGraph mesh3dParallel(std::size_t nx, std::size_t ny, std::size_t nz,
                                   std::size_t threads) {
  const std::size_t n = nx * ny * nz;
  auto edges = generateChunked(
      n, resolveThreads(threads),
      [&](std::size_t lo, std::size_t hi, std::vector<Edge>& out) {
        out.reserve(3 * (hi - lo));
        for (std::size_t id = lo; id < hi; ++id) {
          const std::size_t x = id % nx;
          const std::size_t y = (id / nx) % ny;
          const std::size_t z = id / (nx * ny);
          const auto u = static_cast<VertexId>(id);
          if (x + 1 < nx) out.push_back({u, mesh3dId(nx, ny, x + 1, y, z)});
          if (y + 1 < ny) out.push_back({u, mesh3dId(nx, ny, x, y + 1, z)});
          if (z + 1 < nz) out.push_back({u, mesh3dId(nx, ny, x, y, z + 1)});
        }
      });
  return graph::DynamicGraph::fromEdges(n, edges);
}

graph::DynamicGraph mesh3dApproxParallel(std::size_t n, std::size_t threads) {
  auto side =
      static_cast<std::size_t>(std::llround(std::cbrt(static_cast<double>(n))));
  if (side == 0) side = 1;
  const std::size_t nz = (n + side * side - 1) / (side * side);
  return mesh3dParallel(side, side, nz, threads);
}

graph::DynamicGraph erdosRenyiParallel(std::size_t n, std::size_t targetEdges,
                                       std::uint64_t seed, std::size_t threads) {
  if (n < 2) return graph::DynamicGraph(n);
  const std::size_t maxEdges = n * (n - 1) / 2;
  const std::size_t target = std::min(targetEdges, maxEdges);
  auto edges = generateChunked(
      target, resolveThreads(threads),
      [&](std::size_t lo, std::size_t hi, std::vector<Edge>& out) {
        out.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          util::Rng rng(mix(seed, 0xa24baed4963ee407ULL, i));
          const auto u = static_cast<VertexId>(rng.index(n));
          const auto v = static_cast<VertexId>(rng.index(n));
          if (u != v) out.push_back({u, v});
        }
      });
  return graph::DynamicGraph::fromEdges(n, edges);
}

graph::DynamicGraph rmatParallel(const RmatParams& params, std::uint64_t seed,
                                 std::size_t threads) {
  const std::size_t n = std::size_t{1} << params.scale;
  const std::size_t target = params.edgeFactor * n;
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  auto edges = generateChunked(
      target, resolveThreads(threads),
      [&](std::size_t lo, std::size_t hi, std::vector<Edge>& out) {
        out.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          util::Rng rng(mix(seed, 0xc3d6512fe93a70b5ULL, i));
          std::size_t rowLo = 0, rowHi = n, colLo = 0, colHi = n;
          for (std::size_t level = 0; level < params.scale; ++level) {
            const double u = rng.uniform();
            const std::size_t rowMid = (rowLo + rowHi) / 2;
            const std::size_t colMid = (colLo + colHi) / 2;
            if (u < params.a) {
              rowHi = rowMid;
              colHi = colMid;
            } else if (u < ab) {
              rowHi = rowMid;
              colLo = colMid;
            } else if (u < abc) {
              rowLo = rowMid;
              colHi = colMid;
            } else {
              rowLo = rowMid;
              colLo = colMid;
            }
          }
          if (rowLo != colLo) {
            out.push_back({static_cast<VertexId>(rowLo),
                           static_cast<VertexId>(colLo)});
          }
        }
      });
  return graph::DynamicGraph::fromEdges(n, edges);
}

graph::DynamicGraph powerlawClusterParallel(std::size_t n, std::size_t m, double p,
                                            std::uint64_t seed,
                                            std::size_t threads) {
  if (n == 0) return graph::DynamicGraph(0);
  m = std::max<std::size_t>(1, std::min(m, n > 1 ? n - 1 : 1));
  auto edges = generateChunked(
      n, resolveThreads(threads),
      [&](std::size_t lo, std::size_t hi, std::vector<Edge>& out) {
        out.reserve(m * (hi - lo));
        for (std::size_t id = std::max<std::size_t>(lo, 1); id < hi; ++id) {
          const auto v = static_cast<VertexId>(id);
          const std::size_t slots = outSlots(v, m);
          for (std::size_t j = 0; j < slots; ++j) {
            out.push_back({v, slotTarget(seed, m, p, v, j)});
          }
        }
      });
  return graph::DynamicGraph::fromEdges(n, edges);
}

}  // namespace xdgp::gen
