#include "gen/erdos_renyi.h"

#include <algorithm>

namespace xdgp::gen {

graph::DynamicGraph erdosRenyi(std::size_t n, std::size_t edges, util::Rng& rng) {
  graph::DynamicGraph g(n);
  if (n < 2) return g;
  const std::size_t maxEdges = n * (n - 1) / 2;
  const std::size_t target = std::min(edges, maxEdges);
  while (g.numEdges() < target) {
    const auto u = static_cast<graph::VertexId>(rng.index(n));
    const auto v = static_cast<graph::VertexId>(rng.index(n));
    if (u != v) g.addEdge(u, v);
  }
  return g;
}

}  // namespace xdgp::gen
