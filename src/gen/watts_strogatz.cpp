#include "gen/watts_strogatz.h"

namespace xdgp::gen {

graph::DynamicGraph wattsStrogatz(std::size_t n, std::size_t k, double beta,
                                  util::Rng& rng) {
  graph::DynamicGraph g(n);
  if (n < 2) return g;
  const std::size_t half = std::max<std::size_t>(1, k / 2);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= half; ++j) {
      const auto u = static_cast<graph::VertexId>(v);
      auto w = static_cast<graph::VertexId>((v + j) % n);
      if (rng.bernoulli(beta)) {
        // Rewire the far endpoint uniformly; retry on collisions so the
        // degree budget is preserved.
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto candidate = static_cast<graph::VertexId>(rng.index(n));
          if (candidate != u && !g.hasEdge(u, candidate)) {
            w = candidate;
            break;
          }
        }
      }
      g.addEdge(u, w);
    }
  }
  return g;
}

}  // namespace xdgp::gen
