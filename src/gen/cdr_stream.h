#pragma once

#include <cstddef>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/update_stream.h"
#include "util/rng.h"

namespace xdgp::gen {

/// Synthetic stand-in for the paper's one-month anonymised European mobile
/// operator CDR dataset (§4.1/§4.3, Fig. 9): a call-interaction graph with
///
///  - an initial subscriber base with power-law-ish social structure
///    (reciprocated ties, triadic closure),
///  - weekly churn matching the paper exactly: 8 % vertex additions and 4 %
///    deletions per week ("the dataset yielded weekly addition/deletion
///    rates of 8 and 4%"),
///  - call edges added as subscribers interact (new ties favour
///    friends-of-friends) and removed when inactive for more than one week.
///
/// Scaled from the paper's 21 M subscribers to a laptop-size universe; the
/// Fig. 9 metrics (weekly cut ratio, relative iteration time) depend on the
/// churn *rates*, which are preserved. See docs/DESIGN.md §2.
struct CdrStreamParams {
  std::size_t initialSubscribers = 20'000;
  double meanDegree = 10.1;       ///< paper: average of 10.1 network neighbours
  double weeklyAddRate = 0.08;    ///< paper: 8 % weekly vertex additions
  double weeklyRemoveRate = 0.04; ///< paper: 4 % weekly vertex deletions
  double triadicBias = 0.6;       ///< share of new ties that close triangles
  std::size_t weeks = 4;          ///< one month of data
};

/// Output of one simulated week.
struct CdrWeek {
  std::size_t index = 0;
  std::vector<graph::UpdateEvent> events;
  std::size_t verticesAdded = 0;
  std::size_t verticesRemoved = 0;
  std::size_t edgesAdded = 0;
  std::size_t edgesRemoved = 0;
};

class CdrStreamGenerator {
 public:
  CdrStreamGenerator(CdrStreamParams params, util::Rng rng);

  /// The subscriber graph as of the start of week 0 (ties from the warm-up
  /// period); the engine loads this before streaming begins.
  [[nodiscard]] const graph::DynamicGraph& initialGraph() const noexcept {
    return graph_;
  }

  /// Advances the simulation by one week and returns its change batch.
  /// Timestamps are fractional weeks.
  [[nodiscard]] CdrWeek nextWeek();

  [[nodiscard]] std::size_t weeksGenerated() const noexcept { return week_; }
  [[nodiscard]] const CdrStreamParams& params() const noexcept { return params_; }

 private:
  graph::VertexId sampleSubscriber();
  void addTie(graph::VertexId u, CdrWeek& out, double timestamp);

  CdrStreamParams params_;
  util::Rng rng_;
  graph::DynamicGraph graph_;
  std::size_t week_ = 0;
};

}  // namespace xdgp::gen
