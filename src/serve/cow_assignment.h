#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "graph/types.h"
#include "metrics/cuts.h"

namespace xdgp::serve {

/// Chunked copy-on-write view of a per-vertex assignment: the id space is
/// split into fixed 1024-entry chunks, each held by shared_ptr, so
/// successive snapshots share every chunk whose vertices did not move and
/// copy only the touched ones. A flat raw-pointer table keeps the read path
/// at two dependent loads — `flat_[v >> 10][v & 1023]` — with no shared_ptr
/// traffic per query.
///
/// Out-of-range ids (and dead ids, which the live assignment parks on
/// graph::kNoPartition) read as kNoPartition, exactly like the dense-vector
/// snapshot this type replaced.
class CowAssignment {
 public:
  static constexpr std::size_t kChunkBits = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  using Chunk = std::array<graph::PartitionId, kChunkSize>;

  CowAssignment() = default;

  /// Full copy of `values` into fresh chunks — the compaction/cold path.
  [[nodiscard]] static CowAssignment full(const metrics::Assignment& values);

  [[nodiscard]] graph::PartitionId at(graph::VertexId v) const noexcept {
    return v < size_ ? flat_[v >> kChunkBits][v & (kChunkSize - 1)]
                     : graph::kNoPartition;
  }

  /// Ids covered by the view (== the live assignment's size at build time).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] std::size_t chunkCount() const noexcept { return owners_.size(); }

  /// Ownership handle of chunk `i` — the structural-sharing tests compare
  /// these across snapshots to pin which chunks were copied vs shared.
  [[nodiscard]] const std::shared_ptr<const Chunk>& chunk(std::size_t i) const {
    return owners_[i];
  }

  /// Marginal heap bytes on top of chunks shared with other snapshots:
  /// the pointer tables always, the chunk payloads only where this view is
  /// the sole owner.
  [[nodiscard]] std::size_t residentBytes() const noexcept {
    std::size_t bytes = owners_.capacity() * sizeof(owners_[0]) +
                        flat_.capacity() * sizeof(flat_[0]);
    for (const std::shared_ptr<const Chunk>& chunk : owners_) {
      if (chunk.use_count() == 1) bytes += sizeof(Chunk);
    }
    return bytes;
  }

 private:
  friend class CowAssignmentBuilder;

  std::vector<std::shared_ptr<const Chunk>> owners_;
  std::vector<const graph::PartitionId*> flat_;  ///< owners_[i]->data()
  std::size_t size_ = 0;
};

/// The writer side: holds the persistent chunk set across epochs, collects
/// dirty marks (touch(v) = v's value may have changed), and cuts a
/// CowAssignment per publish by copying only dirty chunks — plus whatever
/// chunks the id space grew into since the last build. Build cost is
/// O(dirty chunks + chunk count), never O(|V|).
class CowAssignmentBuilder {
 public:
  /// Marks the chunk containing v dirty for the next build().
  void touch(graph::VertexId v);

  /// Cuts a view of `values`: dirty and newly covered chunks are copied
  /// fresh, clean chunks are shared with every previous build. Clears the
  /// dirty set.
  [[nodiscard]] CowAssignment build(const metrics::Assignment& values);

 private:
  std::vector<std::shared_ptr<const CowAssignment::Chunk>> chunks_;
  std::vector<std::size_t> dirty_;       ///< chunk indices, deduplicated
  std::vector<std::uint8_t> dirtyMark_;  ///< per chunk index
  std::size_t builtSize_ = 0;            ///< values.size() at the last build
};

}  // namespace xdgp::serve
