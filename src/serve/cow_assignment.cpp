#include "serve/cow_assignment.h"

#include <algorithm>

namespace xdgp::serve {

namespace {

/// Copies values[begin, begin+kChunkSize) into a fresh chunk, padding past
/// values.size() with kNoPartition so partial tail chunks read as unknown.
std::shared_ptr<const CowAssignment::Chunk> copyChunk(
    const metrics::Assignment& values, std::size_t begin) {
  auto chunk = std::make_shared<CowAssignment::Chunk>();
  const std::size_t end =
      std::min(values.size(), begin + CowAssignment::kChunkSize);
  std::size_t i = 0;
  for (std::size_t v = begin; v < end; ++v, ++i) (*chunk)[i] = values[v];
  for (; i < CowAssignment::kChunkSize; ++i) (*chunk)[i] = graph::kNoPartition;
  return chunk;
}

}  // namespace

CowAssignment CowAssignment::full(const metrics::Assignment& values) {
  CowAssignment out;
  out.size_ = values.size();
  const std::size_t numChunks = (values.size() + kChunkSize - 1) / kChunkSize;
  out.owners_.reserve(numChunks);
  out.flat_.reserve(numChunks);
  for (std::size_t c = 0; c < numChunks; ++c) {
    out.owners_.push_back(copyChunk(values, c * kChunkSize));
    out.flat_.push_back(out.owners_.back()->data());
  }
  return out;
}

void CowAssignmentBuilder::touch(graph::VertexId v) {
  const std::size_t chunk = static_cast<std::size_t>(v) >> CowAssignment::kChunkBits;
  if (chunk >= dirtyMark_.size()) dirtyMark_.resize(chunk + 1, 0);
  if (dirtyMark_[chunk] == 0) {
    dirtyMark_[chunk] = 1;
    dirty_.push_back(chunk);
  }
}

CowAssignment CowAssignmentBuilder::build(const metrics::Assignment& values) {
  const std::size_t numChunks =
      (values.size() + CowAssignment::kChunkSize - 1) / CowAssignment::kChunkSize;
  chunks_.resize(numChunks);
  // Chunks the id space grew into since the last build have no (or stale
  // partial) payloads: refresh everything from the last covered chunk up.
  // The live assignment only ever grows, so this is O(new ids), not O(|V|).
  const std::size_t firstGrown =
      builtSize_ / CowAssignment::kChunkSize;  // partial tail chunk included
  if (values.size() > builtSize_) {
    for (std::size_t c = firstGrown; c < numChunks; ++c) {
      chunks_[c] = copyChunk(values, c * CowAssignment::kChunkSize);
    }
  }
  for (const std::size_t c : dirty_) {
    dirtyMark_[c] = 0;
    // Skip chunks already refreshed by growth (or beyond the id space).
    if (c >= numChunks || (values.size() > builtSize_ && c >= firstGrown)) {
      continue;
    }
    chunks_[c] = copyChunk(values, c * CowAssignment::kChunkSize);
  }
  dirty_.clear();
  builtSize_ = values.size();

  CowAssignment out;
  out.size_ = values.size();
  out.owners_ = chunks_;  // shared_ptr copies: shares every clean chunk
  out.flat_.reserve(numChunks);
  for (const std::shared_ptr<const CowAssignment::Chunk>& chunk : chunks_) {
    out.flat_.push_back(chunk->data());
  }
  return out;
}

}  // namespace xdgp::serve
