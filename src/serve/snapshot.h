#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "graph/csr.h"
#include "graph/dynamic_graph.h"
#include "graph/overlay_csr.h"
#include "metrics/cuts.h"
#include "serve/cow_assignment.h"

namespace xdgp::serve {

/// Window statistics stamped onto every published snapshot, so a reader can
/// tell not just *where* a vertex lives but *how fresh and how good* the
/// partitioning behind the answer is.
struct SnapshotStats {
  std::size_t window = 0;  ///< stream windows applied when the snapshot was cut
  /// Partitions still accepting vertices when the snapshot was cut. Equals
  /// the snapshot's k() until an elastic shrink retires some — then readers
  /// see activeK < k while the retired partitions drain.
  std::size_t activeK = 0;
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t cutEdges = 0;
  double cutRatio = 0.0;
  double imbalance = 0.0;
  std::size_t migrations = 0;    ///< executed during the closing window
  std::size_t eventsApplied = 0; ///< applied during the closing window
  bool converged = true;
  /// Wall cost of cutting this snapshot (overlay + chunk copies, or the
  /// full rebuild on a compaction epoch) — the tentpole's O(changed) claim,
  /// measured per publish and aggregated by the serve/scale benches.
  double publishSeconds = 0.0;
  /// Marginal heap bytes of this snapshot beyond structure shared with its
  /// siblings (base CSR, clean assignment chunks).
  std::size_t residentBytes = 0;

  friend bool operator==(const SnapshotStats&, const SnapshotStats&) = default;
};

/// Immutable point-in-time view of the partitioned graph: the per-vertex
/// assignment plus an adjacency snapshot, answering the serving queries
/// (partition lookup, neighbours, route cost) without touching the live
/// engine. Published through SnapshotBoard; readers hold it by shared_ptr
/// and never observe a half-built state.
///
/// Successive snapshots are *persistent* data structures: the adjacency is
/// an OverlayCsr (one shared immutable base CSR + a per-snapshot overlay of
/// this epoch's touched vertices) and the assignment is chunked
/// copy-on-write — so publication costs O(changed this window), not
/// O(|V|+|E|). SnapshotBuilder owns the sharing/compaction policy; the
/// five-argument constructor below is the full-rebuild path (cold starts,
/// tests, and the bench's comparison arm).
///
/// The epoch is stamped twice — first member and last member — so a
/// hypothetically torn read would show epoch() != epochTail(); the
/// concurrent-reader suite hammers torn() across swaps to certify the
/// publication path.
class AssignmentSnapshot {
 public:
  /// routeCost answers, in remote hops under the paper's cost model.
  static constexpr int kRouteUnknown = -1;
  static constexpr int kRouteLocal = 0;
  static constexpr int kRouteRemote = 1;

  AssignmentSnapshot() = default;

  /// Full rebuild: fresh CSR + fresh assignment chunks, nothing shared.
  AssignmentSnapshot(std::uint64_t epoch, const graph::DynamicGraph& g,
                     const metrics::Assignment& assignment, std::size_t k,
                     SnapshotStats stats);

  /// Shared-structure snapshot, normally cut by SnapshotBuilder.
  AssignmentSnapshot(std::uint64_t epoch, graph::OverlayCsr adjacency,
                     CowAssignment assignment, std::size_t k,
                     SnapshotStats stats);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epochHead_; }
  [[nodiscard]] std::uint64_t epochTail() const noexcept { return epochTail_; }
  [[nodiscard]] bool torn() const noexcept { return epochHead_ != epochTail_; }

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] const SnapshotStats& stats() const noexcept { return stats_; }

  /// Exclusive upper bound of the id space (dead ids included) — the range
  /// load generators draw query ids from.
  [[nodiscard]] std::size_t idBound() const noexcept { return adjacency_.idBound(); }

  [[nodiscard]] bool hasVertex(graph::VertexId v) const noexcept {
    return adjacency_.alive(v);
  }

  /// The partition hosting v, or graph::kNoPartition when v is unknown.
  [[nodiscard]] graph::PartitionId partitionOf(graph::VertexId v) const noexcept {
    return assignment_.at(v);
  }

  [[nodiscard]] std::span<const graph::VertexId> neighbors(
      graph::VertexId v) const noexcept {
    return adjacency_.neighbors(v);
  }

  [[nodiscard]] std::size_t degree(graph::VertexId v) const noexcept {
    return adjacency_.degree(v);
  }

  /// Hops a message u→v pays: 0 when co-located, 1 when their partitions
  /// differ, -1 when either endpoint is unknown to this snapshot.
  [[nodiscard]] int routeCost(graph::VertexId u, graph::VertexId v) const noexcept {
    const graph::PartitionId pu = partitionOf(u);
    const graph::PartitionId pv = partitionOf(v);
    if (pu == graph::kNoPartition || pv == graph::kNoPartition) return kRouteUnknown;
    return pu == pv ? kRouteLocal : kRouteRemote;
  }

  /// Neighbours of v hosted on foreign partitions — v's contribution to the
  /// cut, the per-vertex locality answer a router would cache.
  [[nodiscard]] std::size_t cutDegree(graph::VertexId v) const noexcept;

  /// Structure-sharing introspection: the tests assert adjacent snapshots
  /// share adjacency().base() until a compaction, and share assignment()
  /// chunks outside the touched ones.
  [[nodiscard]] const graph::OverlayCsr& adjacency() const noexcept {
    return adjacency_;
  }
  [[nodiscard]] const CowAssignment& assignment() const noexcept {
    return assignment_;
  }

 private:
  std::uint64_t epochHead_ = 0;  ///< first member: stamped before the payload
  std::size_t k_ = 0;
  SnapshotStats stats_;
  CowAssignment assignment_;
  graph::OverlayCsr adjacency_;
  std::uint64_t epochTail_ = 0;  ///< last member: stamped after the payload
};

/// The lock-free publication point between the ingest thread and the query
/// threads: the writer swaps in one fresh snapshot per window, readers load
/// the current one with a single atomic shared_ptr operation — never
/// blocked, never torn.
///
/// Double buffering falls out of the ownership rules: the board keeps the
/// previous snapshot alive (`retired_`, writer-only) so in steady state two
/// buffers cycle — the current one serving reads and the retired one
/// awaiting the next swap. A reader that still holds an older snapshot
/// simply extends that buffer's life until it lets go; nothing is ever
/// freed under a reader.
class SnapshotBoard {
 public:
  using Ref = std::shared_ptr<const AssignmentSnapshot>;

  SnapshotBoard() = default;
  SnapshotBoard(const SnapshotBoard&) = delete;
  SnapshotBoard& operator=(const SnapshotBoard&) = delete;

  /// Publishes `next` as the current snapshot. Epochs must increase
  /// strictly (std::logic_error otherwise) — readers use them to reason
  /// about freshness, so a regressing epoch would be a serving bug.
  void publish(AssignmentSnapshot next);

  /// The latest published snapshot, or nullptr before the first publish.
  [[nodiscard]] Ref current() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Epoch of the latest publish (0 before the first).
  [[nodiscard]] std::uint64_t publishedEpoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::shared_ptr<const AssignmentSnapshot>> current_{};
  Ref retired_;  ///< writer-only: the previous snapshot (the second buffer)
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace xdgp::serve
