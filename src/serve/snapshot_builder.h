#pragma once

#include <cstdint>
#include <memory>

#include "core/touch_tracker.h"
#include "graph/csr.h"
#include "graph/dynamic_graph.h"
#include "graph/overlay_csr.h"
#include "serve/cow_assignment.h"
#include "serve/snapshot.h"

namespace xdgp::serve {

/// The writer-side factory behind O(changed) publication: accumulates the
/// per-window touched-vertex sets (note) and cuts shared-structure
/// AssignmentSnapshots (build) against one immutable base CSR.
///
/// Sharing contract, pinned by the structural-sharing tests:
///   - The first build() after construction compacts (fresh base, empty
///     overlay) — there is nothing to share yet.
///   - Subsequent builds share the SAME base shared_ptr and carry an overlay
///     of every vertex touched since that base was cut, while the pending
///     set stays <= maxOverlayFraction * g.idBound().
///   - The build that would exceed the fraction compacts instead: fresh
///     base, empty overlay, pending set cleared. The rebuild is thereby
///     amortised over >= fraction * |V| touched vertices.
///
/// The pending set is cumulative across builds between compactions (each
/// snapshot's overlay must cover everything since ITS base), deduplicated,
/// and survives an injected crash between note() and build() — a superset
/// pending set is always correct because overlay entries are re-read from
/// the live graph at build time.
class SnapshotBuilder {
 public:
  static constexpr double kDefaultOverlayFraction = 0.05;

  explicit SnapshotBuilder(double maxOverlayFraction = kDefaultOverlayFraction)
      : maxOverlayFraction_(maxOverlayFraction) {}

  /// Folds one window's touched sets into the pending delta.
  void note(const core::TouchSet& touched);

  /// Cuts the next snapshot. Steady state costs O(pending + Σ deg(pending)
  /// + dirty assignment chunks); compaction epochs pay the full
  /// O(|V|+|E|) rebuild. Stamps stats.publishSeconds and
  /// stats.residentBytes before sealing the snapshot.
  [[nodiscard]] AssignmentSnapshot build(std::uint64_t epoch,
                                         const graph::DynamicGraph& g,
                                         const metrics::Assignment& assignment,
                                         std::size_t k, SnapshotStats stats);

  /// True when the latest build() compacted (fresh base) rather than
  /// layering an overlay.
  [[nodiscard]] bool lastBuildCompacted() const noexcept { return lastCompacted_; }

  /// Adjacency-touched vertices accumulated since the current base was cut.
  [[nodiscard]] std::size_t pendingOverlay() const noexcept {
    return pending_.size();
  }

 private:
  double maxOverlayFraction_;
  std::shared_ptr<const graph::CsrGraph> base_;
  core::TouchTracker pending_;  ///< adjacency touches since base_ was cut
  CowAssignmentBuilder assignment_;
  bool lastCompacted_ = false;
};

}  // namespace xdgp::serve
