#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "pregel/runtime.h"

namespace xdgp::serve {

/// One injected failure. Faults are deterministic coordinates — (worker,
/// superstep), (lane, superstep), or (window) — not probabilities: the same
/// plan replays the same failure, which is what lets the recovery suite
/// assert bit-identical trajectories.
struct FaultSpec {
  enum class Kind : std::uint8_t {
    /// Worker `worker` misses superstep `superstep` entirely: inboxes are
    /// counted lost, nothing computes or sends (pregel runtime injection).
    kKillWorker,
    /// Mailbox lane src→dst is discarded at superstep `superstep`'s
    /// delivery barrier, messages counted lost (pregel runtime injection).
    kDropLane,
    /// The serving process dies after window `window`'s work but before the
    /// snapshot swap and checkpoint — the torn-window crash whose recovery
    /// must replay the window from the previous checkpoint
    /// (PartitionService throws InjectedCrash).
    kCrashBeforeSwap,
  };

  Kind kind = Kind::kCrashBeforeSwap;
  pregel::WorkerId worker = 0;  ///< kKillWorker
  pregel::WorkerId src = 0;     ///< kDropLane
  pregel::WorkerId dst = 0;     ///< kDropLane
  std::size_t superstep = 0;    ///< kKillWorker / kDropLane
  std::size_t window = 0;       ///< kCrashBeforeSwap

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// Thrown by PartitionService::run when a kCrashBeforeSwap fault fires: the
/// deterministic stand-in for `kill -9` at the worst moment. The service's
/// last checkpoint is intact on disk; the crashed window's work is lost, as
/// it would be in a real crash.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(std::size_t window);
  [[nodiscard]] std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
};

/// A deterministic failure schedule: any number of FaultSpecs, queried by
/// the injection points. Parsable from a CLI-friendly spec string so
/// `xdgp_serve --fault=...` and the recovery smoke in CI drive the same
/// machinery as the test matrix.
class FaultPlan {
 public:
  FaultPlan() = default;

  void add(FaultSpec fault) { faults_.push_back(fault); }

  /// Parses a semicolon-separated plan, one clause per fault:
  ///   kill@worker=1,superstep=3
  ///   drop@lane=0:2,superstep=4
  ///   crash@window=2
  /// e.g. "kill@worker=1,superstep=3;crash@window=2". Empty string → empty
  /// plan. Throws std::invalid_argument on unknown kinds or keys.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  [[nodiscard]] bool empty() const noexcept { return faults_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& faults() const noexcept {
    return faults_;
  }

  [[nodiscard]] bool killsWorker(pregel::WorkerId worker,
                                 std::size_t superstep) const noexcept;
  [[nodiscard]] bool dropsLane(pregel::WorkerId src, pregel::WorkerId dst,
                               std::size_t superstep) const noexcept;
  [[nodiscard]] bool crashesBeforeSwap(std::size_t window) const noexcept;

 private:
  std::vector<FaultSpec> faults_;
};

/// Adapter to the pregel runtime's injection points: hooks that answer from
/// a copy of `plan` (safe to outlive it). Assign to
/// pregel::EngineOptions::faults before constructing the engine.
[[nodiscard]] pregel::EngineOptions::FaultHooks pregelFaultHooks(FaultPlan plan);

}  // namespace xdgp::serve
