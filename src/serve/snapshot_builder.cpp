#include "serve/snapshot_builder.h"

#include <utility>

#include "util/timer.h"

namespace xdgp::serve {

void SnapshotBuilder::note(const core::TouchSet& touched) {
  for (const graph::VertexId v : touched.adjacency) pending_.touch(v);
  for (const graph::VertexId v : touched.assignment) assignment_.touch(v);
}

AssignmentSnapshot SnapshotBuilder::build(std::uint64_t epoch,
                                          const graph::DynamicGraph& g,
                                          const metrics::Assignment& assignment,
                                          std::size_t k, SnapshotStats stats) {
  const util::WallTimer timer;
  const bool compact =
      base_ == nullptr ||
      static_cast<double>(pending_.size()) >
          maxOverlayFraction_ * static_cast<double>(g.idBound());
  graph::OverlayCsr adjacency;
  if (compact) {
    base_ = std::make_shared<const graph::CsrGraph>(graph::CsrGraph::fromGraph(g));
    pending_.clear();
    adjacency = graph::OverlayCsr(base_);
  } else {
    adjacency = graph::OverlayCsr(base_, pending_.items(), g);
  }
  CowAssignment cow = assignment_.build(assignment);
  lastCompacted_ = compact;
  stats.residentBytes = adjacency.residentBytes() + cow.residentBytes();
  stats.publishSeconds = timer.seconds();
  return AssignmentSnapshot(epoch, std::move(adjacency), std::move(cow), k,
                            std::move(stats));
}

}  // namespace xdgp::serve
