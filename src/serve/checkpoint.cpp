#include "serve/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "metrics/balance.h"
#include "partition/assignment_io.h"

namespace xdgp::serve {

namespace {

/// Lossless double rendering: %.17g survives a text round-trip bit-exactly
/// (util::fmt is display-precision and must not leak into checkpoints).
std::string fullPrecision(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

double parseDouble(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw CheckpointError("malformed number '" + text + "' for " + what);
  }
  return value;
}

/// FNV-1a over a file's raw bytes — the integrity stamp the manifest keeps
/// per payload file, so corruption and truncation fail the read loudly.
std::uint64_t fnv1aFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot read " + path);
  std::uint64_t hash = 1469598103934665603ULL;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      hash ^= static_cast<unsigned char>(buf[i]);
      hash *= 1099511628211ULL;
    }
    if (!in) break;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

/// The graph as a replayable event file: AddVertex per alive vertex, then
/// AddEdge per edge. Explicit ids reconstruct the exact id space — interior
/// dead ids stay dead because no event revives them (an edge list cannot
/// express that).
std::vector<graph::UpdateEvent> graphAsEvents(const graph::DynamicGraph& g) {
  std::vector<graph::UpdateEvent> events;
  events.reserve(g.numVertices() + g.numEdges());
  g.forEachVertex([&events](graph::VertexId v) {
    events.push_back(graph::UpdateEvent::addVertex(v));
  });
  g.forEachEdge([&events](graph::VertexId u, graph::VertexId v) {
    events.push_back(graph::UpdateEvent::addEdge(u, v));
  });
  return events;
}

constexpr const char* kGraphFile = "graph.evt";
constexpr const char* kAssignmentFile = "assignment.part";
constexpr const char* kEventsFile = "events.evt";
constexpr const char* kTimelineFile = "timeline.tsv";

void writeTimeline(const std::vector<api::WindowReport>& timeline,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) throw CheckpointError("cannot open " + path);
  for (const api::WindowReport& w : timeline) {
    out << w.index << ' ' << fullPrecision(w.start) << ' ' << fullPrecision(w.end)
        << ' ' << w.eventsDrained << ' ' << w.eventsExpired << ' '
        << w.eventsApplied << ' ' << w.vertices << ' ' << w.edges << ' '
        << w.iterations << ' ' << (w.converged ? 1 : 0) << ' ' << w.migrations
        << ' ' << w.lostMessages << ' ' << fullPrecision(w.cutRatio) << ' '
        << w.cutEdges << ' ' << w.balance.k << ' ' << w.balance.totalVertices
        << ' ' << w.balance.minLoad << ' ' << w.balance.maxLoad << ' '
        << fullPrecision(w.balance.imbalance) << ' '
        << fullPrecision(w.balance.densification) << ' '
        << fullPrecision(w.wallSeconds) << '\n';
  }
  if (!out) throw CheckpointError("write failed for " + path);
}

std::vector<api::WindowReport> readTimeline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CheckpointError("cannot open " + path);
  std::vector<api::WindowReport> timeline;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::istringstream fields(line);
    api::WindowReport w;
    int converged = 0;
    if (!(fields >> w.index >> w.start >> w.end >> w.eventsDrained >>
          w.eventsExpired >> w.eventsApplied >> w.vertices >> w.edges >>
          w.iterations >> converged >> w.migrations >> w.lostMessages >>
          w.cutRatio >> w.cutEdges >> w.balance.k >> w.balance.totalVertices >>
          w.balance.minLoad >> w.balance.maxLoad >> w.balance.imbalance >>
          w.balance.densification >> w.wallSeconds)) {
      throw CheckpointError("malformed timeline row at line " +
                            std::to_string(lineNo) + " of " + path);
    }
    w.converged = converged != 0;
    timeline.push_back(w);
  }
  return timeline;
}

/// Key/value view of the MANIFEST: every lookup failure is a versioned
/// CheckpointError naming the missing or malformed key.
class Manifest {
 public:
  explicit Manifest(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw CheckpointError("missing manifest at " + path);
    std::string line;
    const std::string expected =
        "# xdgp-checkpoint v" + std::to_string(kCheckpointVersion);
    if (!std::getline(in, line) || line != expected) {
      throw CheckpointError("unsupported manifest header '" + line + "' in " +
                            path + " (expected '" + expected + "')");
    }
    bool ended = false;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (ended) throw CheckpointError("content after 'end' sentinel in " + path);
      if (line == "end") {
        ended = true;
        continue;
      }
      const std::size_t space = line.find(' ');
      if (space == std::string::npos) {
        throw CheckpointError("malformed manifest line '" + line + "' in " + path);
      }
      values_[line.substr(0, space)] = line.substr(space + 1);
    }
    if (!ended) {
      throw CheckpointError("manifest " + path +
                            " is truncated (missing 'end' sentinel)");
    }
  }

  [[nodiscard]] const std::string& get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) throw CheckpointError("manifest missing key '" + key + "'");
    return it->second;
  }

  [[nodiscard]] std::size_t count(const std::string& key) const {
    return static_cast<std::size_t>(std::strtoull(get(key).c_str(), nullptr, 10));
  }

  [[nodiscard]] std::uint64_t u64(const std::string& key) const {
    return std::strtoull(get(key).c_str(), nullptr, 10);
  }

  [[nodiscard]] double real(const std::string& key) const {
    return parseDouble(get(key), "manifest key '" + key + "'");
  }

  [[nodiscard]] bool flag(const std::string& key) const { return get(key) == "1"; }

  [[nodiscard]] std::uint64_t hex(const std::string& key) const {
    return std::strtoull(get(key).c_str(), nullptr, 16);
  }

  [[nodiscard]] std::vector<std::size_t> list(const std::string& key) const {
    std::istringstream in(get(key));
    std::vector<std::size_t> values;
    std::size_t value = 0;
    while (in >> value) values.push_back(value);
    return values;
  }

 private:
  std::map<std::string, std::string> values_;
};

void verifyChecksum(const std::string& dir, const char* file,
                    std::uint64_t expected) {
  const std::uint64_t actual = fnv1aFile(dir + "/" + file);
  if (actual != expected) {
    throw CheckpointError(std::string(file) + " is corrupt or truncated (FNV " +
                          hex64(actual) + ", manifest says " + hex64(expected) +
                          ")");
  }
}

}  // namespace

void writeCheckpoint(const Checkpoint& checkpoint, const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw CheckpointError("cannot create directory " + dir + ": " + ec.message());
  }

  // Payloads first; the manifest lands last via a rename, so a MANIFEST on
  // disk certifies that every payload beneath it is complete.
  try {
    graph::writeEvents(graphAsEvents(checkpoint.graph), dir + "/" + kGraphFile);
    partition::writeAssignment(checkpoint.assignment, checkpoint.k,
                               dir + "/" + kAssignmentFile);
    graph::writeEvents(checkpoint.events, dir + "/" + kEventsFile);
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& error) {
    throw CheckpointError(std::string("payload write failed: ") + error.what());
  }
  writeTimeline(checkpoint.timeline, dir + "/" + kTimelineFile);

  const std::string tmpPath = dir + "/MANIFEST.tmp";
  {
    std::ofstream out(tmpPath);
    if (!out) throw CheckpointError("cannot open " + tmpPath);
    out << "# xdgp-checkpoint v" << kCheckpointVersion << "\n";
    out << "workload " << checkpoint.workload << "\n";
    out << "strategy " << checkpoint.strategy << "\n";
    out << "k " << checkpoint.k << "\n";
    out << "engine " << core::engineKindCode(checkpoint.engine) << "\n";
    out << "seed " << checkpoint.seed << "\n";
    out << "capacity-factor " << fullPrecision(checkpoint.capacityFactor) << "\n";
    out << "willingness " << fullPrecision(checkpoint.willingness) << "\n";
    out << "convergence-window " << checkpoint.convergenceWindow << "\n";
    out << "enforce-quota " << (checkpoint.enforceQuota ? 1 : 0) << "\n";
    out << "balance "
        << (checkpoint.balanceMode == core::BalanceMode::kEdges ? "edges"
                                                                : "vertices")
        << "\n";
    out << "lpa-balance-factor " << fullPrecision(checkpoint.lpaBalanceFactor)
        << "\n";
    out << "lpa-score-epsilon " << fullPrecision(checkpoint.lpaScoreEpsilon)
        << "\n";
    out << "lpa-migration-budget " << checkpoint.lpaMigrationBudget << "\n";
    out << "max-iterations " << checkpoint.maxIterations << "\n";
    out << "window-span " << fullPrecision(checkpoint.stream.windowSpan) << "\n";
    out << "window-events " << checkpoint.stream.windowEvents << "\n";
    out << "max-windows " << checkpoint.stream.maxWindows << "\n";
    out << "expiry-span " << fullPrecision(checkpoint.stream.expirySpan) << "\n";
    out << "adapt " << (checkpoint.stream.adapt ? 1 : 0) << "\n";
    out << "rescale-each-window " << (checkpoint.stream.rescaleEachWindow ? 1 : 0)
        << "\n";
    out << "max-iterations-per-window " << checkpoint.stream.maxIterationsPerWindow
        << "\n";
    out << "next-window " << checkpoint.nextWindow << "\n";
    out << "iteration " << checkpoint.engineIteration << "\n";
    out << "quiet " << checkpoint.engineQuiet << "\n";
    out << "last-active " << checkpoint.engineLastActive << "\n";
    out << "capacities";
    for (const std::size_t c : checkpoint.capacities) out << ' ' << c;
    out << "\n";
    // Trailing space keeps the line well-formed when the set is empty (the
    // manifest grammar is `key<space>value`, value possibly empty).
    out << "retired ";
    for (std::size_t i = 0; i < checkpoint.retired.size(); ++i) {
      out << (i ? " " : "") << checkpoint.retired[i];
    }
    out << "\n";
    out << "graph-vertices " << checkpoint.graph.numVertices() << "\n";
    out << "graph-edges " << checkpoint.graph.numEdges() << "\n";
    out << "graph-id-bound " << checkpoint.graph.idBound() << "\n";
    out << "events " << checkpoint.events.size() << "\n";
    out << "timeline-rows " << checkpoint.timeline.size() << "\n";
    out << "checksum-graph " << hex64(fnv1aFile(dir + "/" + kGraphFile)) << "\n";
    out << "checksum-assignment " << hex64(fnv1aFile(dir + "/" + kAssignmentFile))
        << "\n";
    out << "checksum-events " << hex64(fnv1aFile(dir + "/" + kEventsFile)) << "\n";
    out << "checksum-timeline " << hex64(fnv1aFile(dir + "/" + kTimelineFile))
        << "\n";
    out << "end\n";
    if (!out) throw CheckpointError("write failed for " + tmpPath);
  }
  fs::rename(tmpPath, dir + "/MANIFEST", ec);
  if (ec) {
    throw CheckpointError("cannot commit manifest in " + dir + ": " + ec.message());
  }
}

Checkpoint readCheckpoint(const std::string& dir) {
  const Manifest manifest(dir + "/MANIFEST");

  verifyChecksum(dir, kGraphFile, manifest.hex("checksum-graph"));
  verifyChecksum(dir, kAssignmentFile, manifest.hex("checksum-assignment"));
  verifyChecksum(dir, kEventsFile, manifest.hex("checksum-events"));
  verifyChecksum(dir, kTimelineFile, manifest.hex("checksum-timeline"));

  Checkpoint checkpoint;
  checkpoint.workload = manifest.get("workload");
  checkpoint.strategy = manifest.get("strategy");
  checkpoint.k = manifest.count("k");
  try {
    checkpoint.engine = core::engineKindFromCode(manifest.get("engine"));
  } catch (const std::invalid_argument& error) {
    throw CheckpointError(error.what());
  }
  checkpoint.seed = manifest.u64("seed");
  checkpoint.capacityFactor = manifest.real("capacity-factor");
  checkpoint.willingness = manifest.real("willingness");
  checkpoint.convergenceWindow = manifest.count("convergence-window");
  checkpoint.enforceQuota = manifest.flag("enforce-quota");
  const std::string& balance = manifest.get("balance");
  if (balance == "edges") {
    checkpoint.balanceMode = core::BalanceMode::kEdges;
  } else if (balance == "vertices") {
    checkpoint.balanceMode = core::BalanceMode::kVertices;
  } else {
    throw CheckpointError("unknown balance mode '" + balance + "'");
  }
  checkpoint.lpaBalanceFactor = manifest.real("lpa-balance-factor");
  checkpoint.lpaScoreEpsilon = manifest.real("lpa-score-epsilon");
  checkpoint.lpaMigrationBudget = manifest.count("lpa-migration-budget");
  checkpoint.maxIterations = manifest.count("max-iterations");
  checkpoint.stream.windowSpan = manifest.real("window-span");
  checkpoint.stream.windowEvents = manifest.count("window-events");
  checkpoint.stream.maxWindows = manifest.count("max-windows");
  checkpoint.stream.expirySpan = manifest.real("expiry-span");
  checkpoint.stream.adapt = manifest.flag("adapt");
  checkpoint.stream.rescaleEachWindow = manifest.flag("rescale-each-window");
  checkpoint.stream.maxIterationsPerWindow =
      manifest.count("max-iterations-per-window");
  checkpoint.nextWindow = manifest.count("next-window");
  checkpoint.engineIteration = manifest.count("iteration");
  checkpoint.engineQuiet = manifest.count("quiet");
  checkpoint.engineLastActive = manifest.count("last-active");
  checkpoint.capacities = manifest.list("capacities");
  if (checkpoint.capacities.size() != checkpoint.k) {
    throw CheckpointError("manifest lists " +
                          std::to_string(checkpoint.capacities.size()) +
                          " capacities for k=" + std::to_string(checkpoint.k));
  }
  for (const std::size_t id : manifest.list("retired")) {
    if (id >= checkpoint.k) {
      throw CheckpointError("retired partition " + std::to_string(id) +
                            " is outside k=" + std::to_string(checkpoint.k));
    }
    checkpoint.retired.push_back(static_cast<graph::PartitionId>(id));
  }
  if (!checkpoint.retired.empty() &&
      checkpoint.engine == core::EngineKind::kGreedy) {
    throw CheckpointError(
        "manifest retires partitions under the greedy engine, which cannot "
        "hold a resized partition set");
  }
  if (checkpoint.retired.size() >= checkpoint.k) {
    throw CheckpointError("manifest retires all " +
                          std::to_string(checkpoint.retired.size()) +
                          " partitions");
  }

  try {
    checkpoint.events = graph::readEvents(dir + "/" + kEventsFile);
    const std::vector<graph::UpdateEvent> graphEvents =
        graph::readEvents(dir + "/" + kGraphFile);
    graph::applyUpdates(checkpoint.graph, graphEvents);
  } catch (const std::exception& error) {
    throw CheckpointError(std::string("payload read failed: ") + error.what());
  }
  if (checkpoint.events.size() != manifest.count("events")) {
    throw CheckpointError("events.evt holds " +
                          std::to_string(checkpoint.events.size()) +
                          " events, manifest says " +
                          std::to_string(manifest.count("events")));
  }

  // Trailing dead ids carry no events; re-grow the id space to the recorded
  // bound (create-then-remove leaves the id dead, exactly as checkpointed).
  const std::size_t idBound = manifest.count("graph-id-bound");
  if (checkpoint.graph.idBound() < idBound) {
    checkpoint.graph.ensureVertex(static_cast<graph::VertexId>(idBound - 1));
    checkpoint.graph.removeVertex(static_cast<graph::VertexId>(idBound - 1));
  }
  if (checkpoint.graph.numVertices() != manifest.count("graph-vertices") ||
      checkpoint.graph.numEdges() != manifest.count("graph-edges") ||
      checkpoint.graph.idBound() != idBound) {
    throw CheckpointError(
        "reconstructed graph disagrees with the manifest (|V|=" +
        std::to_string(checkpoint.graph.numVertices()) +
        ", |E|=" + std::to_string(checkpoint.graph.numEdges()) +
        ", idBound=" + std::to_string(checkpoint.graph.idBound()) + ")");
  }

  partition::LoadedAssignment loaded;
  try {
    loaded = partition::readAssignment(dir + "/" + kAssignmentFile);
  } catch (const std::exception& error) {
    throw CheckpointError(std::string("assignment read failed: ") + error.what());
  }
  if (loaded.k != checkpoint.k) {
    throw CheckpointError("assignment declares k=" + std::to_string(loaded.k) +
                          ", manifest says k=" + std::to_string(checkpoint.k));
  }
  checkpoint.assignment = std::move(loaded.assignment);
  checkpoint.assignment.resize(checkpoint.graph.idBound(), graph::kNoPartition);
  std::size_t assigned = 0;
  for (const graph::PartitionId p : checkpoint.assignment) {
    if (p != graph::kNoPartition) ++assigned;
  }
  if (assigned != checkpoint.graph.numVertices()) {
    throw CheckpointError("assignment covers " + std::to_string(assigned) +
                          " vertices, graph has " +
                          std::to_string(checkpoint.graph.numVertices()));
  }

  checkpoint.timeline = readTimeline(dir + "/" + kTimelineFile);
  if (checkpoint.timeline.size() != manifest.count("timeline-rows")) {
    throw CheckpointError("timeline.tsv holds " +
                          std::to_string(checkpoint.timeline.size()) +
                          " rows, manifest says " +
                          std::to_string(manifest.count("timeline-rows")));
  }

  return checkpoint;
}

}  // namespace xdgp::serve
