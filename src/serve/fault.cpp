#include "serve/fault.h"

#include <charconv>
#include <string_view>
#include <utility>

namespace xdgp::serve {

InjectedCrash::InjectedCrash(std::size_t window)
    : std::runtime_error("injected crash before the snapshot swap of window " +
                         std::to_string(window)),
      window_(window) {}

namespace {

[[noreturn]] void badSpec(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("FaultPlan: bad clause '" + clause + "': " + why);
}

std::size_t parseNumber(const std::string& clause, std::string_view text) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    badSpec(clause, "'" + std::string(text) + "' is not a number");
  }
  return value;
}

/// One clause: "<kind>@<key>=<value>[,<key>=<value>...]".
FaultSpec parseClause(const std::string& clause) {
  const std::size_t at = clause.find('@');
  if (at == std::string::npos) badSpec(clause, "missing '@'");
  const std::string kind = clause.substr(0, at);

  FaultSpec fault;
  bool laneSeen = false;
  bool superstepSeen = false;
  bool windowSeen = false;
  bool workerSeen = false;
  std::size_t pos = at + 1;
  while (pos < clause.size()) {
    std::size_t comma = clause.find(',', pos);
    if (comma == std::string::npos) comma = clause.size();
    const std::string pair = clause.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) badSpec(clause, "expected key=value, got '" + pair + "'");
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "worker") {
      fault.worker = static_cast<pregel::WorkerId>(parseNumber(clause, value));
      workerSeen = true;
    } else if (key == "superstep") {
      fault.superstep = parseNumber(clause, value);
      superstepSeen = true;
    } else if (key == "window") {
      fault.window = parseNumber(clause, value);
      windowSeen = true;
    } else if (key == "lane") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) badSpec(clause, "lane wants src:dst");
      fault.src = static_cast<pregel::WorkerId>(
          parseNumber(clause, std::string_view(value).substr(0, colon)));
      fault.dst = static_cast<pregel::WorkerId>(
          parseNumber(clause, std::string_view(value).substr(colon + 1)));
      laneSeen = true;
    } else {
      badSpec(clause, "unknown key '" + key + "'");
    }
  }

  if (kind == "kill") {
    if (!workerSeen || !superstepSeen) badSpec(clause, "kill wants worker= and superstep=");
    fault.kind = FaultSpec::Kind::kKillWorker;
  } else if (kind == "drop") {
    if (!laneSeen || !superstepSeen) badSpec(clause, "drop wants lane= and superstep=");
    fault.kind = FaultSpec::Kind::kDropLane;
  } else if (kind == "crash") {
    if (!windowSeen) badSpec(clause, "crash wants window=");
    fault.kind = FaultSpec::Kind::kCrashBeforeSwap;
  } else {
    badSpec(clause, "unknown kind '" + kind + "' (kill|drop|crash)");
  }
  return fault;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string clause = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (clause.empty()) continue;
    plan.add(parseClause(clause));
  }
  return plan;
}

bool FaultPlan::killsWorker(pregel::WorkerId worker,
                            std::size_t superstep) const noexcept {
  for (const FaultSpec& f : faults_) {
    if (f.kind == FaultSpec::Kind::kKillWorker && f.worker == worker &&
        f.superstep == superstep) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::dropsLane(pregel::WorkerId src, pregel::WorkerId dst,
                          std::size_t superstep) const noexcept {
  for (const FaultSpec& f : faults_) {
    if (f.kind == FaultSpec::Kind::kDropLane && f.src == src && f.dst == dst &&
        f.superstep == superstep) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::crashesBeforeSwap(std::size_t window) const noexcept {
  for (const FaultSpec& f : faults_) {
    if (f.kind == FaultSpec::Kind::kCrashBeforeSwap && f.window == window) {
      return true;
    }
  }
  return false;
}

pregel::EngineOptions::FaultHooks pregelFaultHooks(FaultPlan plan) {
  pregel::EngineOptions::FaultHooks hooks;
  hooks.killWorker = [plan](pregel::WorkerId worker, std::size_t superstep) {
    return plan.killsWorker(worker, superstep);
  };
  hooks.dropLane = [plan](pregel::WorkerId src, pregel::WorkerId dst,
                          std::size_t superstep) {
    return plan.dropsLane(src, dst, superstep);
  };
  return hooks;
}

}  // namespace xdgp::serve
