#include "serve/snapshot.h"

#include <stdexcept>
#include <utility>

namespace xdgp::serve {

AssignmentSnapshot::AssignmentSnapshot(std::uint64_t epoch,
                                       const graph::DynamicGraph& g,
                                       const metrics::Assignment& assignment,
                                       std::size_t k, SnapshotStats stats)
    : epochHead_(epoch),
      k_(k),
      stats_(stats),
      assignment_(CowAssignment::full(assignment)),
      adjacency_(std::make_shared<const graph::CsrGraph>(
          graph::CsrGraph::fromGraph(g))),
      epochTail_(epoch) {}

AssignmentSnapshot::AssignmentSnapshot(std::uint64_t epoch,
                                       graph::OverlayCsr adjacency,
                                       CowAssignment assignment, std::size_t k,
                                       SnapshotStats stats)
    : epochHead_(epoch),
      k_(k),
      stats_(stats),
      assignment_(std::move(assignment)),
      adjacency_(std::move(adjacency)),
      epochTail_(epoch) {}

std::size_t AssignmentSnapshot::cutDegree(graph::VertexId v) const noexcept {
  const graph::PartitionId home = partitionOf(v);
  if (home == graph::kNoPartition) return 0;
  std::size_t cut = 0;
  for (const graph::VertexId nbr : adjacency_.neighbors(v)) {
    if (partitionOf(nbr) != home) ++cut;
  }
  return cut;
}

void SnapshotBoard::publish(AssignmentSnapshot next) {
  const std::uint64_t epoch = next.epoch();
  if (current_.load(std::memory_order_relaxed) != nullptr &&
      epoch <= epoch_.load(std::memory_order_relaxed)) {
    throw std::logic_error("SnapshotBoard: epoch " + std::to_string(epoch) +
                           " does not advance past " +
                           std::to_string(epoch_.load(std::memory_order_relaxed)));
  }
  Ref fresh = std::make_shared<const AssignmentSnapshot>(std::move(next));
  // The swap: readers loading concurrently get either the old or the new
  // snapshot, both fully built. The displaced snapshot parks in retired_
  // (plus whatever refs readers still hold), so no buffer dies under a
  // reader.
  retired_ = current_.exchange(std::move(fresh), std::memory_order_acq_rel);
  epoch_.store(epoch, std::memory_order_release);
}

}  // namespace xdgp::serve
