#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/stream.h"
#include "core/capacity.h"
#include "core/engine.h"
#include "graph/dynamic_graph.h"
#include "graph/update_stream.h"
#include "metrics/cuts.h"

namespace xdgp::serve {

/// Format version of the on-disk checkpoint directory. Bumped whenever the
/// manifest keys or payload formats change incompatibly; readers reject any
/// other version loudly.
/// v2 added the engine selector, the LPA knobs, and the retired-partition
/// set (elastic k); v1 directories are rejected — pre-elastic checkpoints
/// cannot express a resized partition set, so silently upgrading them would
/// guess at state the format never recorded.
inline constexpr int kCheckpointVersion = 2;

/// Every checkpoint failure — missing files, version mismatch, corruption,
/// truncation, count/checksum disagreement — surfaces as this one typed,
/// versioned error, never as silently wrong state.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error("checkpoint v" + std::to_string(kCheckpointVersion) +
                           ": " + what) {}
};

/// Everything a serving run needs to resume bit-identically, in one value.
///
/// On disk this is a directory of five files:
///   MANIFEST         versioned key/value header: configuration, progress,
///                    engine trajectory state, payload counts + FNV-1a
///                    checksums; written last (via a temp-file rename), so
///                    its presence certifies a complete checkpoint
///   graph.evt        the graph as a replayable event file (one AddVertex
///                    per alive vertex, one AddEdge per edge) — unlike an
///                    edge list this reconstructs the exact id space,
///                    dead ids included, which the per-vertex state arrays
///                    and the stateless draws depend on
///   assignment.part  partition::writeAssignment format
///   events.evt       the FULL backing update stream (graph::writeEvents);
///                    restore re-windows it from the top and discards
///                    windows before nextWindow, which rebuilds the edge
///                    expiry bookkeeping bit-exactly without serializing it
///   timeline.tsv     one lossless row per completed window, so the
///                    restored TimelineReport equals the uninterrupted one
///
/// Trajectory state beyond graph + assignment: the engine's iteration
/// counter (stateless draws are keyed by it), capacities (rescale never
/// shrinks — history-dependent), the quiet streak, and the last active
/// iteration. Thread count and frontier mode are intentionally absent:
/// both are trajectory-invariant (asserted by the equivalence suites), so
/// the restoring side may choose them freely.
struct Checkpoint {
  // --- identity / configuration ------------------------------------------
  std::string workload = "<custom>";  ///< registry code, for reporting
  std::string strategy = "<restored>";
  /// The session's *live* k at checkpoint time (elastic growth included) —
  /// the id space the assignment, capacities, and retired set index into.
  std::size_t k = 0;
  core::EngineKind engine = core::EngineKind::kGreedy;
  std::uint64_t seed = 42;
  double capacityFactor = 1.1;
  double willingness = 0.5;
  std::size_t convergenceWindow = 30;
  bool enforceQuota = true;
  core::BalanceMode balanceMode = core::BalanceMode::kVertices;
  double lpaBalanceFactor = 1.0;
  double lpaScoreEpsilon = 0.02;
  std::size_t lpaMigrationBudget = 0;
  std::size_t maxIterations = 20'000;
  api::StreamOptions stream;

  // --- progress -----------------------------------------------------------
  std::size_t nextWindow = 0;  ///< first window not yet applied

  // --- state --------------------------------------------------------------
  graph::DynamicGraph graph;
  metrics::Assignment assignment;
  std::size_t engineIteration = 0;
  std::size_t engineQuiet = 0;
  std::size_t engineLastActive = 0;
  std::vector<std::size_t> capacities;
  /// Retired partition ids (ascending; empty unless an elastic shrink
  /// happened). Restore re-retires them before adopting the capacities.
  std::vector<graph::PartitionId> retired;
  std::vector<graph::UpdateEvent> events;   ///< the FULL backing stream
  std::vector<api::WindowReport> timeline;  ///< windows [0, nextWindow)
};

/// Writes `checkpoint` into directory `dir` (created if missing; existing
/// files overwritten — checkpointing into the same directory repeatedly is
/// the normal serving cadence). Throws CheckpointError on any IO failure.
void writeCheckpoint(const Checkpoint& checkpoint, const std::string& dir);

/// Reads a checkpoint directory back, verifying version, per-file FNV-1a
/// checksums, and payload counts against the manifest. Throws
/// CheckpointError on anything suspicious.
[[nodiscard]] Checkpoint readCheckpoint(const std::string& dir);

}  // namespace xdgp::serve
