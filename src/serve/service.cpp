#include "serve/service.h"

#include <utility>

#include "metrics/balance.h"

namespace xdgp::serve {

namespace {

/// Rebuilds a live Session from checkpointed state: the pipeline seeds the
/// engine with the saved graph + assignment, then restoreCheckpoint adopts
/// the non-derivable trajectory state (iteration counter, capacities, quiet
/// streak, last active iteration).
api::Session restoredSession(Checkpoint& checkpoint, std::size_t threads) {
  core::AdaptiveOptions adaptive;
  adaptive.k = checkpoint.k;
  adaptive.capacityFactor = checkpoint.capacityFactor;
  adaptive.willingness = checkpoint.willingness;
  adaptive.convergenceWindow = checkpoint.convergenceWindow;
  adaptive.enforceQuota = checkpoint.enforceQuota;
  adaptive.balanceMode = checkpoint.balanceMode;
  adaptive.threads = threads;
  adaptive.seed = checkpoint.seed;
  api::Session session =
      api::Pipeline::fromGraph(std::move(checkpoint.graph))
          .initialFromAssignment(std::move(checkpoint.assignment), checkpoint.k)
          .k(checkpoint.k)
          .capacityFactor(checkpoint.capacityFactor)
          .seed(checkpoint.seed)
          .adaptive(adaptive)
          .maxIterations(checkpoint.maxIterations)
          .start();
  session.engine().restoreCheckpoint(
      checkpoint.engineIteration, std::move(checkpoint.capacities),
      checkpoint.engineQuiet, checkpoint.engineLastActive);
  return session;
}

}  // namespace

PartitionService::PartitionService(api::Workload workload,
                                   const std::string& strategy,
                                   core::AdaptiveOptions adaptive,
                                   ServeOptions options)
    : options_(std::move(options)),
      workloadCode_(workload.code),
      strategy_(strategy),
      events_(workload.stream.events()),
      session_(api::Pipeline::fromGraph(std::move(workload.initial))
                   .initial(strategy)
                   .k(adaptive.k)
                   .capacityFactor(adaptive.capacityFactor)
                   .seed(adaptive.seed)
                   .adaptive(adaptive)
                   .maxIterations(options_.maxIterations)
                   .start()) {
  timeline_.workload = workloadCode_;
  timeline_.strategy = strategy_;
  timeline_.k = adaptive.k;
  publishCurrent(nullptr);
}

PartitionService::PartitionService(Checkpoint checkpoint, const std::string& dir,
                                   std::size_t threads)
    : options_(),
      workloadCode_(checkpoint.workload),
      strategy_(checkpoint.strategy),
      events_(std::move(checkpoint.events)),
      session_(restoredSession(checkpoint, threads)),
      nextWindow_(checkpoint.nextWindow) {
  options_.stream = checkpoint.stream;
  options_.checkpointDir = dir;
  options_.maxIterations = checkpoint.maxIterations;
  timeline_.workload = workloadCode_;
  timeline_.strategy = strategy_;
  timeline_.k = checkpoint.k;
  timeline_.windows = std::move(checkpoint.timeline);
  publishCurrent(nullptr);
}

PartitionService PartitionService::restore(const std::string& dir,
                                           std::size_t threads) {
  return PartitionService(readCheckpoint(dir), dir, threads);
}

const api::TimelineReport& PartitionService::run() {
  // Windows below this were applied before a crash/restore (or by an
  // earlier run() call); the Streamer still consumes their events so the
  // edge-expiry bookkeeping replays bit-exactly, but the engine must not
  // see them twice.
  const std::size_t skipBefore = nextWindow_;
  api::Streamer streamer(graph::UpdateStream(events_), options_.stream);
  while (std::optional<api::WindowBatch> batch = streamer.next()) {
    if (batch->index < skipBefore) continue;
    const api::WindowReport window = session_.streamWindow(*batch, options_.stream);
    // The crash point: the window's work happened (engine mutated), but the
    // swap, the timeline row, and the checkpoint never do — recovery must
    // replay this window from the previous checkpoint.
    if (options_.faults.crashesBeforeSwap(batch->index)) {
      throw InjectedCrash(batch->index);
    }
    timeline_.windows.push_back(window);
    nextWindow_ = batch->index + 1;
    publishCurrent(&window);
    if (!options_.checkpointDir.empty() && options_.checkpointEvery > 0 &&
        nextWindow_ % options_.checkpointEvery == 0) {
      writeCheckpoint(makeCheckpoint(), options_.checkpointDir);
    }
  }
  if (!options_.checkpointDir.empty()) {
    writeCheckpoint(makeCheckpoint(), options_.checkpointDir);
  }
  return timeline_;
}

void PartitionService::publishCurrent(const api::WindowReport* window) {
  const core::AdaptiveEngine& engine = session_.engine();
  SnapshotStats stats;
  stats.window = nextWindow_;
  stats.vertices = engine.graph().numVertices();
  stats.edges = engine.graph().numEdges();
  stats.cutEdges = engine.state().cutEdges();
  stats.cutRatio = engine.cutRatio();
  stats.imbalance =
      metrics::balanceReport(engine.state().assignment(), engine.options().k)
          .imbalance;
  if (window != nullptr) {
    stats.migrations = window->migrations;
    stats.eventsApplied = window->eventsApplied;
    stats.converged = window->converged;
  } else {
    stats.converged = engine.converged();
  }
  board_.publish(AssignmentSnapshot(++epoch_, engine.graph(),
                                    engine.state().assignment(),
                                    engine.options().k, stats));
}

Checkpoint PartitionService::makeCheckpoint() const {
  const core::AdaptiveEngine& engine = session_.engine();
  const core::AdaptiveOptions& adaptive = engine.options();
  Checkpoint checkpoint;
  checkpoint.workload = workloadCode_;
  checkpoint.strategy = strategy_;
  checkpoint.k = adaptive.k;
  checkpoint.seed = adaptive.seed;
  checkpoint.capacityFactor = adaptive.capacityFactor;
  checkpoint.willingness = adaptive.willingness;
  checkpoint.convergenceWindow = adaptive.convergenceWindow;
  checkpoint.enforceQuota = adaptive.enforceQuota;
  checkpoint.balanceMode = adaptive.balanceMode;
  checkpoint.maxIterations = options_.maxIterations;
  checkpoint.stream = options_.stream;
  checkpoint.nextWindow = nextWindow_;
  checkpoint.graph = engine.graph();
  checkpoint.assignment = engine.state().assignment();
  checkpoint.engineIteration = engine.iteration();
  checkpoint.engineQuiet = engine.quietIterations();
  checkpoint.engineLastActive = engine.lastActiveIteration();
  checkpoint.capacities = engine.capacity().capacities();
  checkpoint.events = events_;
  checkpoint.timeline = timeline_.windows;
  return checkpoint;
}

}  // namespace xdgp::serve
