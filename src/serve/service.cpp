#include "serve/service.h"

#include <stdexcept>
#include <utility>

#include "metrics/balance.h"

namespace xdgp::serve {

namespace {

/// Rebuilds a live Session from checkpointed state: the pipeline seeds the
/// engine with the saved graph + assignment, then restoreRetired re-retires
/// the checkpointed partition set (elastic shrinks are part of the
/// trajectory), then restoreCheckpoint adopts the non-derivable state
/// (iteration counter, capacities, quiet streak, last active iteration).
api::Session restoredSession(Checkpoint& checkpoint, std::size_t threads) {
  core::AdaptiveOptions adaptive;
  adaptive.k = checkpoint.k;
  adaptive.capacityFactor = checkpoint.capacityFactor;
  adaptive.willingness = checkpoint.willingness;
  adaptive.convergenceWindow = checkpoint.convergenceWindow;
  adaptive.enforceQuota = checkpoint.enforceQuota;
  adaptive.balanceMode = checkpoint.balanceMode;
  adaptive.threads = threads;
  adaptive.seed = checkpoint.seed;
  adaptive.engine = checkpoint.engine;
  adaptive.lpaBalanceFactor = checkpoint.lpaBalanceFactor;
  adaptive.lpaScoreEpsilon = checkpoint.lpaScoreEpsilon;
  adaptive.lpaMigrationBudget = checkpoint.lpaMigrationBudget;
  api::Session session =
      api::Pipeline::fromGraph(std::move(checkpoint.graph))
          .initialFromAssignment(std::move(checkpoint.assignment), checkpoint.k)
          .k(checkpoint.k)
          .capacityFactor(checkpoint.capacityFactor)
          .seed(checkpoint.seed)
          .adaptive(adaptive)
          .maxIterations(checkpoint.maxIterations)
          .start();
  session.engine().restoreRetired(checkpoint.retired);
  session.engine().restoreCheckpoint(
      checkpoint.engineIteration, std::move(checkpoint.capacities),
      checkpoint.engineQuiet, checkpoint.engineLastActive);
  return session;
}

}  // namespace

std::vector<ServeOptions::ResizeOp> parseResizePlan(const std::string& plan) {
  std::vector<ServeOptions::ResizeOp> ops;
  std::size_t begin = 0;
  while (begin <= plan.size()) {
    // ';' and ',' both separate clauses: ';' reads naturally but needs
    // escaping in shells and splits CMake lists, so scripted callers use ','.
    const std::size_t end =
        std::min({plan.find(';', begin), plan.find(',', begin), plan.size()});
    const std::string clause = plan.substr(begin, end - begin);
    begin = end + 1;
    if (clause.empty()) continue;
    const auto fail = [&clause](const std::string& why) -> std::size_t {
      throw std::invalid_argument("bad resize clause '" + clause + "': " + why +
                                  " (expected grow@W:N or shrink@W:I+J+...)");
    };
    const std::size_t at = clause.find('@');
    const std::size_t colon = clause.find(':', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || colon == std::string::npos) {
      fail("missing '@' or ':'");
    }
    const std::string verb = clause.substr(0, at);
    const auto number = [&fail](const std::string& text) {
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos) {
        return fail("'" + text + "' is not a number");
      }
      return static_cast<std::size_t>(std::stoull(text));
    };
    ServeOptions::ResizeOp op;
    op.window = number(clause.substr(at + 1, colon - at - 1));
    const std::string arg = clause.substr(colon + 1);
    if (verb == "grow") {
      op.grow = number(arg);
      if (op.grow == 0) fail("grow count must be positive");
    } else if (verb == "shrink") {
      std::size_t idBegin = 0;
      while (idBegin <= arg.size()) {
        const std::size_t idEnd = std::min(arg.find('+', idBegin), arg.size());
        op.shrink.push_back(
            static_cast<graph::PartitionId>(number(arg.substr(idBegin, idEnd - idBegin))));
        idBegin = idEnd + 1;
      }
    } else {
      fail("unknown verb '" + verb + "'");
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

PartitionService::PartitionService(api::Workload workload,
                                   const std::string& strategy,
                                   core::AdaptiveOptions adaptive,
                                   ServeOptions options)
    : options_(std::move(options)),
      workloadCode_(workload.code),
      strategy_(strategy),
      events_(workload.stream.events()),
      session_(api::Pipeline::fromGraph(std::move(workload.initial))
                   .initial(strategy)
                   .k(adaptive.k)
                   .capacityFactor(adaptive.capacityFactor)
                   .seed(adaptive.seed)
                   .adaptive(adaptive)
                   .maxIterations(options_.maxIterations)
                   .start()),
      builder_(options_.snapshotOverlayFraction) {
  timeline_.workload = workloadCode_;
  timeline_.strategy = strategy_;
  timeline_.k = adaptive.k;
  publishCurrent(nullptr);
}

PartitionService::PartitionService(Checkpoint checkpoint, const std::string& dir,
                                   std::size_t threads)
    : options_(),
      workloadCode_(checkpoint.workload),
      strategy_(checkpoint.strategy),
      events_(std::move(checkpoint.events)),
      session_(restoredSession(checkpoint, threads)),
      nextWindow_(checkpoint.nextWindow),
      builder_(options_.snapshotOverlayFraction) {
  options_.stream = checkpoint.stream;
  options_.checkpointDir = dir;
  options_.maxIterations = checkpoint.maxIterations;
  timeline_.workload = workloadCode_;
  timeline_.strategy = strategy_;
  timeline_.k = checkpoint.k;
  timeline_.windows = std::move(checkpoint.timeline);
  publishCurrent(nullptr);
}

PartitionService PartitionService::restore(const std::string& dir,
                                           std::size_t threads) {
  return PartitionService(readCheckpoint(dir), dir, threads);
}

const api::TimelineReport& PartitionService::run() {
  // Windows below this were applied before a crash/restore (or by an
  // earlier run() call); the Streamer still consumes their events so the
  // edge-expiry bookkeeping replays bit-exactly, but the engine must not
  // see them twice.
  const std::size_t skipBefore = nextWindow_;
  if (resizeApplied_.size() < options_.resizes.size()) {
    resizeApplied_.resize(options_.resizes.size(), 0);
  }
  api::Streamer streamer(graph::UpdateStream(events_), options_.stream);
  while (std::optional<api::WindowBatch> batch = streamer.next()) {
    if (batch->index < skipBefore) continue;
    // Scheduled elastic resizes fire at the start of their window, before
    // its events apply (grow before shrink within one op). Each op fires at
    // most once, even if a crash forces this window to be reprocessed.
    for (std::size_t i = 0; i < options_.resizes.size(); ++i) {
      const ServeOptions::ResizeOp& op = options_.resizes[i];
      if (op.window != batch->index || resizeApplied_[i] != 0) continue;
      resizeApplied_[i] = 1;
      if (op.grow > 0) session_.engine().growPartitions(op.grow);
      if (!op.shrink.empty()) session_.engine().shrinkPartitions(op.shrink);
    }
    core::TouchSet touched;
    const api::WindowReport window =
        session_.streamWindow(*batch, options_.stream, &touched);
    // Fold the window's change log into the pending snapshot delta BEFORE
    // the crash point: the engine has already mutated, so if this window is
    // reprocessed after an in-process resume the pending set must still
    // cover its changes (a superset is always safe — overlay entries are
    // re-read from the live graph at build time).
    builder_.note(touched);
    // The crash point: the window's work happened (engine mutated), but the
    // swap, the timeline row, and the checkpoint never do — recovery must
    // replay this window from the previous checkpoint.
    if (options_.faults.crashesBeforeSwap(batch->index)) {
      throw InjectedCrash(batch->index);
    }
    timeline_.windows.push_back(window);
    nextWindow_ = batch->index + 1;
    publishCurrent(&window);
    if (!options_.checkpointDir.empty() && options_.checkpointEvery > 0 &&
        nextWindow_ % options_.checkpointEvery == 0) {
      writeCheckpoint(makeCheckpoint(), options_.checkpointDir);
    }
  }
  if (!options_.checkpointDir.empty()) {
    writeCheckpoint(makeCheckpoint(), options_.checkpointDir);
  }
  return timeline_;
}

void PartitionService::publishCurrent(const api::WindowReport* window) {
  const core::Engine& engine = session_.engine();
  SnapshotStats stats;
  stats.window = nextWindow_;
  // Live partition-set shape, NOT engine.options().k: the options value is
  // frozen at construction, so after an elastic resize it would stamp every
  // snapshot with a stale k (and compute balance over the wrong id space).
  stats.activeK = engine.activeK();
  if (window != nullptr) {
    // The closing window's report already carries these — thread them
    // through instead of recomputing per publish.
    stats.vertices = window->vertices;
    stats.edges = window->edges;
    stats.cutEdges = window->cutEdges;
    stats.cutRatio = window->cutRatio;
    stats.imbalance = window->balance.imbalance;
    stats.migrations = window->migrations;
    stats.eventsApplied = window->eventsApplied;
    stats.converged = window->converged;
  } else {
    // Construction / restore publish: no window closed, read the engine.
    // The balance overload over PartitionState is O(k), not O(|V|).
    stats.vertices = engine.graph().numVertices();
    stats.edges = engine.graph().numEdges();
    stats.cutEdges = engine.state().cutEdges();
    stats.cutRatio = engine.cutRatio();
    stats.imbalance =
        metrics::balanceReport(engine.state(), engine.activeMask()).imbalance;
    stats.converged = engine.converged();
  }
  AssignmentSnapshot snapshot =
      builder_.build(++epoch_, engine.graph(), engine.state().assignment(),
                     engine.k(), stats);
  publishSeconds_ += snapshot.stats().publishSeconds;
  board_.publish(std::move(snapshot));
}

Checkpoint PartitionService::makeCheckpoint() const {
  const core::Engine& engine = session_.engine();
  const core::AdaptiveOptions& adaptive = engine.options();
  Checkpoint checkpoint;
  checkpoint.workload = workloadCode_;
  checkpoint.strategy = strategy_;
  checkpoint.k = engine.k();  // live: includes elastic growth
  checkpoint.engine = engine.kind();
  checkpoint.retired = engine.retiredPartitions();
  checkpoint.lpaBalanceFactor = adaptive.lpaBalanceFactor;
  checkpoint.lpaScoreEpsilon = adaptive.lpaScoreEpsilon;
  checkpoint.lpaMigrationBudget = adaptive.lpaMigrationBudget;
  checkpoint.seed = adaptive.seed;
  checkpoint.capacityFactor = adaptive.capacityFactor;
  checkpoint.willingness = adaptive.willingness;
  checkpoint.convergenceWindow = adaptive.convergenceWindow;
  checkpoint.enforceQuota = adaptive.enforceQuota;
  checkpoint.balanceMode = adaptive.balanceMode;
  checkpoint.maxIterations = options_.maxIterations;
  checkpoint.stream = options_.stream;
  checkpoint.nextWindow = nextWindow_;
  checkpoint.graph = engine.graph();
  checkpoint.assignment = engine.state().assignment();
  checkpoint.engineIteration = engine.iteration();
  checkpoint.engineQuiet = engine.quietIterations();
  checkpoint.engineLastActive = engine.lastActiveIteration();
  checkpoint.capacities = engine.capacity().capacities();
  checkpoint.events = events_;
  checkpoint.timeline = timeline_.windows;
  return checkpoint;
}

}  // namespace xdgp::serve
