#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/stream.h"
#include "api/workload_registry.h"
#include "core/engine.h"
#include "serve/checkpoint.h"
#include "serve/fault.h"
#include "serve/snapshot.h"
#include "serve/snapshot_builder.h"

namespace xdgp::serve {

/// Serving-side configuration, layered over the streaming options the
/// Session already understands.
struct ServeOptions {
  api::StreamOptions stream;

  /// One scheduled elastic resize: at the start of window `window` (before
  /// its events apply), grow the partition set by `grow` and/or retire the
  /// `shrink` ids. Requires an engine with elastic-k support (LPA) — the
  /// greedy engine throws on the first scheduled op, by design.
  struct ResizeOp {
    std::size_t window = 0;
    std::size_t grow = 0;
    std::vector<graph::PartitionId> shrink;
  };

  /// Elastic-k schedule, applied by run() as each window index comes up.
  /// A restored service does not re-apply a schedule: the resized partition
  /// set is part of the checkpoint.
  std::vector<ResizeOp> resizes;

  /// Directory to checkpoint into; empty disables checkpointing.
  std::string checkpointDir;

  /// Checkpoint after every N applied windows (1 = every window). 0 writes
  /// only the final checkpoint when the stream ends.
  std::size_t checkpointEvery = 1;

  /// Deterministic failure schedule. The service itself consumes the
  /// kCrashBeforeSwap clauses (run() throws InjectedCrash at the scheduled
  /// window); kill/drop clauses target the pregel runtime's supersteps —
  /// wire them into a pregel::Engine via pregelFaultHooks().
  FaultPlan faults;

  /// Session-wide convergence cap (api::Pipeline::maxIterations).
  std::size_t maxIterations = 20'000;

  /// Snapshot compaction threshold: a publish whose cumulative touched set
  /// exceeds this fraction of the id space folds the overlay into a fresh
  /// base CSR instead (see SnapshotBuilder). Smaller = cheaper reads,
  /// more frequent full rebuilds.
  double snapshotOverlayFraction = SnapshotBuilder::kDefaultOverlayFraction;
};

/// The long-lived partition service of the serving tentpole: one ingest
/// loop that pulls stream windows through Session::streamWindow — the same
/// code path batch streaming uses, by construction — and, after each
/// window, publishes an immutable AssignmentSnapshot for the query threads
/// and (optionally) checkpoints the full trajectory state to disk.
///
/// Threading contract: run() is the single writer. Any number of reader
/// threads may call board().current() / snapshot() concurrently with
/// run() — publication is one atomic shared_ptr swap, readers are never
/// blocked and never see a half-built snapshot. Everything else
/// (timeline(), session(), makeCheckpoint(), ...) belongs to the ingest
/// thread, or to any thread once run() has returned.
///
/// Crash/recovery: writeCheckpoint commits via a MANIFEST rename, so a
/// process death at any moment — including the injected kCrashBeforeSwap,
/// which fires after a window's work but before its snapshot swap and
/// checkpoint — leaves the last completed checkpoint intact. restore()
/// rebuilds the service from it and run() replays the event tail; the
/// recovered trajectory is bit-identical to an unfaulted run (the serve
/// test suite asserts it window by window).
/// Parses an `--resize` plan string into a schedule:
///   "grow@2:4;shrink@4:6+7"  — at window 2 grow by 4 partitions; at window
/// 4 retire partitions 6 and 7. Ops separated by ';' (or ',', for callers
/// where ';' needs escaping — shells, CMake lists), ids by '+'; several
/// ops may share a window (grows apply before shrinks at the same index).
/// Throws std::invalid_argument on malformed plans, naming the bad clause.
[[nodiscard]] std::vector<ServeOptions::ResizeOp> parseResizePlan(
    const std::string& plan);

class PartitionService {
 public:
  /// Fresh service over a made workload: the initial graph is partitioned
  /// with `strategy`, the adaptive engine is configured from `adaptive`
  /// (its k / capacityFactor / seed become the pipeline's), and the
  /// workload's update stream becomes the backing event sequence run()
  /// windows through `options.stream`.
  PartitionService(api::Workload workload, const std::string& strategy,
                   core::AdaptiveOptions adaptive, ServeOptions options);

  /// Resurrects a service from a checkpoint directory: graph, assignment,
  /// engine trajectory state, completed timeline, and the full backing
  /// stream all come from disk; run() continues at the first window the
  /// checkpoint had not applied. `threads` picks the decision-phase thread
  /// count freely — it is trajectory-invariant. The restored service
  /// checkpoints back into `dir` with no faults scheduled.
  /// Throws CheckpointError on a missing, corrupt, or truncated checkpoint.
  [[nodiscard]] static PartitionService restore(const std::string& dir,
                                                std::size_t threads = 1);

  /// The ingest loop: re-windows the backing stream from the top (which
  /// rebuilds edge-expiry bookkeeping bit-exactly), skips windows already
  /// applied, and for each remaining window applies + converges, publishes
  /// a snapshot, and checkpoints per ServeOptions. Returns the accumulated
  /// timeline (windows from before a restore included). Throws
  /// InjectedCrash when a kCrashBeforeSwap fault fires — the crashed
  /// window's work is lost, exactly like a real crash after the last
  /// checkpoint. Calling run() again resumes where the previous call
  /// stopped.
  const api::TimelineReport& run();

  /// The publication point to hand to query threads.
  [[nodiscard]] const SnapshotBoard& board() const noexcept { return board_; }

  /// Shorthand for board().current(). Non-null from construction on: both
  /// constructors publish an epoch-1 snapshot of the starting state.
  [[nodiscard]] SnapshotBoard::Ref snapshot() const noexcept {
    return board_.current();
  }

  [[nodiscard]] const api::TimelineReport& timeline() const noexcept {
    return timeline_;
  }

  /// First window index run() has not applied yet.
  [[nodiscard]] std::size_t nextWindow() const noexcept { return nextWindow_; }

  [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }

  [[nodiscard]] api::Session& session() noexcept { return session_; }
  [[nodiscard]] const api::Session& session() const noexcept { return session_; }

  /// The full resume state as a value — what run() writes at each
  /// checkpoint cadence. Exposed so tests can checkpoint at arbitrary
  /// points and tools can save on demand.
  [[nodiscard]] Checkpoint makeCheckpoint() const;

  /// Wall seconds spent cutting snapshots over the service's lifetime
  /// (sum of every published SnapshotStats::publishSeconds) — the serve
  /// bench's aggregate publish-cost answer.
  [[nodiscard]] double totalPublishSeconds() const noexcept {
    return publishSeconds_;
  }

  /// The snapshot factory, exposed for tests that pin the sharing/
  /// compaction contract (pendingOverlay, lastBuildCompacted).
  [[nodiscard]] const SnapshotBuilder& snapshotBuilder() const noexcept {
    return builder_;
  }

 private:
  PartitionService(Checkpoint checkpoint, const std::string& dir,
                   std::size_t threads);

  /// Publishes a snapshot of the engine's current state (next epoch).
  void publishCurrent(const api::WindowReport* window);

  ServeOptions options_;
  std::string workloadCode_;
  std::string strategy_;
  std::vector<graph::UpdateEvent> events_;  ///< the FULL backing stream
  api::Session session_;
  api::TimelineReport timeline_;
  /// Per ResizeOp: fired already (ops must not re-fire when a crash forces
  /// their window to be reprocessed by a later run() call).
  std::vector<std::uint8_t> resizeApplied_;
  std::size_t nextWindow_ = 0;
  std::uint64_t epoch_ = 0;
  SnapshotBuilder builder_;
  double publishSeconds_ = 0.0;
  SnapshotBoard board_;
};

}  // namespace xdgp::serve
