#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace xdgp::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "") << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    out << '\n';
  };
  printRow(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) printRow(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmtPm(double mean, double err, int precision) {
  return fmt(mean, precision) + " +/- " + fmt(err, precision);
}

}  // namespace xdgp::util
