#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace xdgp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
/// Benches default to kInfo; tests raise it to kWarn to keep output clean.
LogLevel logThreshold() noexcept;
void setLogThreshold(LogLevel level) noexcept;

namespace detail {

/// Stream-style one-shot log line; flushes on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    stream_ << '[' << tag << "] ";
  }
  ~LogLine() {
    if (level_ >= logThreshold()) {
      stream_ << '\n';
      std::cerr << stream_.str();
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine logDebug() { return {LogLevel::kDebug, "debug"}; }
inline detail::LogLine logInfo() { return {LogLevel::kInfo, "info "}; }
inline detail::LogLine logWarn() { return {LogLevel::kWarn, "warn "}; }
inline detail::LogLine logError() { return {LogLevel::kError, "error"}; }

}  // namespace xdgp::util
