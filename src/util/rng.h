#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace xdgp::util {

/// Deterministic, seedable pseudo-random generator.
///
/// A small PCG32-style generator with a SplitMix64 seeding stage. All
/// stochastic behaviour in the library (willingness-to-move draws, graph
/// generators, pseudorandom partitioning) flows through this class so that
/// every experiment is reproducible from a single 64-bit seed, matching the
/// paper's n = 10 repeated-experiment protocol.
class Rng {
 public:
  using result_type = std::uint32_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initialises the stream from `seed`; same seed => same sequence.
  void reseed(std::uint64_t seed) noexcept {
    state_ = splitmix64(seed);
    inc_ = splitmix64(state_) | 1ULL;  // stream selector must be odd
    (void)next();
  }

  /// UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

  /// Uniform 32-bit draw.
  std::uint32_t next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Uniform 64-bit draw.
  std::uint64_t next64() noexcept {
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint32_t below(std::uint32_t bound) noexcept {
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform size_t in [0, bound). Precondition: bound > 0.
  std::size_t index(std::size_t bound) noexcept {
    if (bound <= std::numeric_limits<std::uint32_t>::max()) {
      return below(static_cast<std::uint32_t>(bound));
    }
    // Rare large-bound path: rejection sampling on 64 bits.
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t draw = next64();
    while (draw >= limit) draw = next64();
    return static_cast<std::size_t>(draw % bound);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Geometric draw: number of successes before first failure, with
  /// per-trial success probability p in [0,1). Used by the forest-fire model.
  std::uint32_t geometric(double p) noexcept {
    std::uint32_t n = 0;
    while (p > 0.0 && bernoulli(p) && n < 1u << 20) ++n;
    return n;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Picks a uniformly random element; precondition: !items.empty().
  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[index(items.size())];
  }

  /// Derives an independent child generator (for per-repetition seeding).
  Rng fork() noexcept { return Rng(next64()); }

  /// SplitMix64 mixing function, also used directly for hash partitioning.
  static std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace xdgp::util
