#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xdgp::util {

/// Aligned plain-text table printer used by every bench binary so that the
/// harness output mirrors the rows of the paper's tables and figure series.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the row is padded/truncated to the header width.
  void addRow(std::vector<std::string> cells);

  /// Renders the table with a header rule to `out`.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 3 digits).
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Formats "mean ± stderr", the paper's error-in-the-mean notation.
[[nodiscard]] std::string fmtPm(double mean, double err, int precision = 3);

}  // namespace xdgp::util
