#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xdgp::util {

/// Fixed-size work-stealing-free thread pool with a blocking `parallelFor`.
///
/// The Pregel engine can execute its workers through this pool
/// (ExecutionMode::Threaded); on single-core hosts the serial mode is the
/// default and this pool is exercised by tests for correctness.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait();

  /// Runs body(i) for i in [0, n), partitioned in contiguous chunks across
  /// the pool, and blocks until all chunks are done. Exceptions thrown by
  /// `body` terminate the process (tasks must be noexcept in spirit).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;
  bool stop_ = false;
};

}  // namespace xdgp::util
