#pragma once

#include <chrono>

namespace xdgp::util {

/// Monotonic wall-clock stopwatch for coarse phase timing in benches.
/// Experiment *results* use the deterministic cost model, not this clock.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xdgp::util
