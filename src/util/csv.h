#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace xdgp::util {

/// Minimal CSV writer. Each bench binary dumps its series next to its stdout
/// table so results can be re-plotted without re-running the experiment.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error when the file cannot be created.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row of preformatted cells; quotes cells containing commas.
  void addRow(const std::vector<std::string>& cells);

  /// Flush and close; also invoked by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void writeRow(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace xdgp::util
