#include "util/flags.h"

#include <stdexcept>

namespace xdgp::util {

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("Flags: expected --key=value, got '" + arg + "'");
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      entries_[arg] = Entry{"true", false};
    } else {
      entries_[arg.substr(0, eq)] = Entry{arg.substr(eq + 1), false};
    }
  }
}

std::int64_t Flags::getInt(const std::string& key, std::int64_t fallback) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  return std::stoll(it->second.value);
}

std::uint64_t Flags::getUint64(const std::string& key, std::uint64_t fallback) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  return std::stoull(it->second.value);
}

double Flags::getDouble(const std::string& key, double fallback) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  return std::stod(it->second.value);
}

std::string Flags::getString(const std::string& key, std::string fallback) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  return it->second.value;
}

bool Flags::getBool(const std::string& key, bool fallback) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  return it->second.value == "true" || it->second.value == "1" ||
         it->second.value == "yes";
}

bool Flags::has(const std::string& key) const { return entries_.count(key) > 0; }

void Flags::finish() const {
  std::string unknown;
  for (const auto& [key, entry] : entries_) {
    if (!entry.consumed) unknown += (unknown.empty() ? "" : ", ") + key;
  }
  if (!unknown.empty()) {
    throw std::runtime_error(program_ + ": unknown flag(s): " + unknown);
  }
}

}  // namespace xdgp::util
