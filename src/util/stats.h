#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace xdgp::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// The paper reports every quality number as the mean of n = 10 repetitions
/// with the "estimated error in the mean" (standard error); this class is the
/// single source of those summaries.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Estimated error in the mean (standard error), the paper's error bar.
  [[nodiscard]] double stderror() const noexcept {
    return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void merge(const RunningStat& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Convenience: summarise a vector of samples.
[[nodiscard]] inline RunningStat summarize(const std::vector<double>& xs) noexcept {
  RunningStat s;
  for (const double x : xs) s.add(x);
  return s;
}

/// Exponential moving average, used for smoothed per-superstep timing series.
class Ema {
 public:
  explicit Ema(double alpha) noexcept : alpha_(alpha) {}

  double update(double x) noexcept {
    value_ = primed_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    primed_ = true;
    return value_;
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace xdgp::util
