#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace xdgp::util {

/// Tiny `--key=value` command-line parser for the bench and example
/// binaries. Unknown flags are an error so typos in sweep scripts fail loudly.
///
/// Usage:
///   Flags flags(argc, argv);
///   const int reps = flags.getInt("reps", 10);
///   flags.finish();  // rejects unconsumed flags
class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] std::int64_t getInt(const std::string& key, std::int64_t fallback);
  /// Full-range 64-bit accessor for seeds and other values that getInt's
  /// signed parse would truncate or reject.
  [[nodiscard]] std::uint64_t getUint64(const std::string& key,
                                        std::uint64_t fallback);
  [[nodiscard]] double getDouble(const std::string& key, double fallback);
  [[nodiscard]] std::string getString(const std::string& key, std::string fallback);
  [[nodiscard]] bool getBool(const std::string& key, bool fallback);

  /// True when `--key` or `--key=...` was supplied.
  [[nodiscard]] bool has(const std::string& key) const;

  /// Throws std::runtime_error listing any flag that was supplied but never
  /// read — the guard against silently ignored experiment parameters.
  void finish() const;

 private:
  struct Entry {
    std::string value;
    bool consumed = false;
  };
  std::map<std::string, Entry> entries_;
  std::string program_;
};

}  // namespace xdgp::util
