#include "util/csv.h"

#include <stdexcept>

namespace xdgp::util {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  writeRow(header);
}

void CsvWriter::addRow(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::runtime_error("CsvWriter: row width mismatch in " + path_);
  }
  writeRow(cells);
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace xdgp::util
