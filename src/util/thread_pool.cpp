#include "util/thread_pool.h"

#include <algorithm>

namespace xdgp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  taskReady_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, threadCount() * 4);
  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < n; begin += step) {
    const std::size_t end = std::min(n, begin + step);
    submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  wait();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --inFlight_;
      if (inFlight_ == 0) allDone_.notify_all();
    }
  }
}

}  // namespace xdgp::util
