#include "util/logging.h"

#include <atomic>

namespace xdgp::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};
}  // namespace

LogLevel logThreshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void setLogThreshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

}  // namespace xdgp::util
