#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace xdgp::graph {

/// Slab-allocated storage for per-vertex neighbour lists.
///
/// All lists live in one contiguous arena as power-of-two capacity blocks
/// (minimum 1 << kMinLog slots). A list that outgrows its block moves to a
/// block of the next size class; vacated blocks go to a per-size-class free
/// list and are recycled before the arena grows. Compared with
/// vector<vector<VertexId>>, iteration over many neighbourhoods streams
/// through one allocation instead of pointer-chasing scattered heap blocks —
/// the access pattern of the adaptive engine's decision scan.
///
/// Pointer stability: spans returned by view() stay valid until a push()
/// into *any* list (growth may reallocate the arena or relocate the pushed
/// list). eraseUnordered() and clear() never reallocate, so the
/// DynamicGraph remove paths can hold a span across them.
class AdjacencyPool {
 public:
  /// log2 of the smallest block: 4 slots covers meshes' typical degree
  /// without a relocation while keeping isolated vertices cheap.
  static constexpr std::uint8_t kMinLog = 2;

  AdjacencyPool() = default;

  /// Pre-creates `lists` empty lists (no blocks are allocated until the
  /// first push into each).
  explicit AdjacencyPool(std::size_t lists) : meta_(lists) {}

  [[nodiscard]] std::size_t numLists() const noexcept { return meta_.size(); }

  /// Grows the list table to at least `lists` entries (never shrinks).
  void growLists(std::size_t lists) {
    if (lists > meta_.size()) meta_.resize(lists);
  }

  void reserveLists(std::size_t lists) { meta_.reserve(lists); }

  [[nodiscard]] std::span<const VertexId> view(std::size_t list) const noexcept {
    const Meta& m = meta_[list];
    return {arena_.data() + m.offset, m.size};
  }

  /// Mutable slot view for bulk construction (sort + dedup in place). Valid
  /// under the same rules as view().
  [[nodiscard]] std::span<VertexId> mutableView(std::size_t list) noexcept {
    const Meta& m = meta_[list];
    return {arena_.data() + m.offset, m.size};
  }

  [[nodiscard]] std::size_t size(std::size_t list) const noexcept {
    return meta_[list].size;
  }

  /// Slots the list can hold before its next relocation.
  [[nodiscard]] std::size_t capacity(std::size_t list) const noexcept {
    const Meta& m = meta_[list];
    return m.capLog == kNoBlock ? 0 : std::size_t{1} << m.capLog;
  }

  /// Appends `value` to `list`. The caller is responsible for dedup; the
  /// pool is storage only.
  void push(std::size_t list, VertexId value);

  /// Removes one occurrence of `value` by swapping with the last element
  /// (order is not preserved). Returns false when absent.
  bool eraseUnordered(std::size_t list, VertexId value) noexcept;

  /// Empties the list and parks its block on the free list.
  void clear(std::size_t list) noexcept;

  // --- bulk construction (the generators' batched-ingest path) ---

  /// Carves one block per list, sized for counts[i] slots (rounded up to the
  /// power-of-two size class), in id order with a single arena resize — no
  /// per-push relocations, no free-list churn. Lists with count 0 get no
  /// block. Precondition: the pool is fresh (nothing pushed yet); throws
  /// std::logic_error otherwise. Grows the list table to counts.size().
  void bulkReserve(std::span<const std::uint32_t> counts);

  /// Unchecked append into a block carved by bulkReserve (or any block with
  /// spare capacity). The caller guarantees size < capacity — the O(E) fill
  /// loop of DynamicGraph::fromEdges, with the relocation branch hoisted out.
  void pushWithinCapacity(std::size_t list, VertexId value) noexcept {
    Meta& m = meta_[list];
    arena_[m.offset + m.size++] = value;
  }

  /// Shrinks `list` to its first `size` slots (size <= current size); the
  /// bulk path's dedup truncation. Freed slots become block slack.
  void truncate(std::size_t list, std::uint32_t size) noexcept {
    meta_[list].size = size;
  }

  // --- introspection (tests, memory accounting) ---

  /// Arena accounting snapshot. Invariant (asserted by the test suite):
  ///   arenaSlots == liveSlots + slackSlots + freeSlots.
  struct ArenaStats {
    std::size_t arenaSlots = 0;  ///< total slots ever carved out of the arena
    std::size_t liveSlots = 0;   ///< occupied by neighbour entries
    std::size_t slackSlots = 0;  ///< power-of-two rounding inside live blocks
    std::size_t freeSlots = 0;   ///< parked on free lists awaiting reuse
    std::size_t reservedBytes = 0;  ///< arena heap reservation (capacity)
    std::size_t metaBytes = 0;      ///< list table + free-list bookkeeping
  };
  [[nodiscard]] ArenaStats stats() const noexcept;

  /// Total slots ever carved out of the arena.
  [[nodiscard]] std::size_t arenaSlots() const noexcept { return arena_.size(); }

  /// Slots currently parked on free lists awaiting reuse.
  [[nodiscard]] std::size_t freeSlots() const noexcept;

 private:
  struct Meta {
    std::size_t offset = 0;     ///< first slot in the arena
    std::uint32_t size = 0;     ///< occupied slots
    std::uint8_t capLog = kNoBlock;  ///< log2 capacity; kNoBlock = no block yet
  };
  static constexpr std::uint8_t kNoBlock = 0xff;

  /// Returns the offset of a free block of 1 << log slots, recycling before
  /// growing the arena.
  std::size_t allocate(std::uint8_t log);

  void release(std::size_t offset, std::uint8_t log);

  std::vector<VertexId> arena_;
  std::vector<Meta> meta_;
  /// freeLists_[log] holds offsets of vacated blocks of 1 << log slots.
  std::vector<std::vector<std::size_t>> freeLists_;
};

}  // namespace xdgp::graph
