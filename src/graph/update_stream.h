#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/types.h"

namespace xdgp::graph {

/// One structural change to the graph, as delivered by an input stream
/// (tweets, call records, forest-fire growth ...). Timestamps are in stream
/// time (seconds for the real-time feeds, iteration index for synthetic
/// injections); the consumer decides how to batch them.
struct UpdateEvent {
  enum class Kind : std::uint8_t { kAddVertex, kRemoveVertex, kAddEdge, kRemoveEdge };

  Kind kind = Kind::kAddEdge;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;  // unused for vertex events
  double timestamp = 0.0;

  static UpdateEvent addVertex(VertexId id, double t = 0.0) {
    return {Kind::kAddVertex, id, kInvalidVertex, t};
  }
  static UpdateEvent removeVertex(VertexId id, double t = 0.0) {
    return {Kind::kRemoveVertex, id, kInvalidVertex, t};
  }
  static UpdateEvent addEdge(VertexId u, VertexId v, double t = 0.0) {
    return {Kind::kAddEdge, u, v, t};
  }
  static UpdateEvent removeEdge(VertexId u, VertexId v, double t = 0.0) {
    return {Kind::kRemoveEdge, u, v, t};
  }

  friend bool operator==(const UpdateEvent&, const UpdateEvent&) = default;
};

/// Applies a batch of events to a graph, in order. Returns the number of
/// events that changed the graph (duplicates / missing targets are no-ops,
/// which mirrors how a real ingestion pipeline tolerates replays).
std::size_t applyUpdates(DynamicGraph& g, const std::vector<UpdateEvent>& events);

/// A time-ordered event queue with cursor-based batched consumption:
/// `drainUntil(t)` returns all events with timestamp <= t, exactly once.
class UpdateStream {
 public:
  UpdateStream() = default;
  explicit UpdateStream(std::vector<UpdateEvent> events);

  /// Appends an event, stamping on arrival like a real ingestion queue: a
  /// late event (older than the current tail timestamp) is *clamped* to the
  /// tail timestamp so global order is preserved. An event arriving after
  /// its window has already been drained is therefore never lost or
  /// re-ordered behind the cursor — it is delivered, clamped, in the next
  /// drain whose `t` reaches the tail timestamp (still exactly once).
  void push(UpdateEvent event);

  /// Events with timestamp <= t that have not been drained yet.
  [[nodiscard]] std::vector<UpdateEvent> drainUntil(double t);

  /// The next `n` events (fewer at the tail) regardless of timestamp — the
  /// count-windowed consumption mode of api::Streamer.
  [[nodiscard]] std::vector<UpdateEvent> drainCount(std::size_t n);

  [[nodiscard]] bool exhausted() const noexcept { return cursor_ >= events_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return events_.size() - cursor_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// The full backing sequence (drained and pending), in delivery order.
  [[nodiscard]] const std::vector<UpdateEvent>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<UpdateEvent> events_;
  std::size_t cursor_ = 0;
};

/// Writes events as a replayable text file: a "# xdgp-events <count>" header
/// line, then one "<kind> <u> <v> <timestamp>" line per event (kind in
/// {AV, RV, AE, RE}); timestamps round-trip bit-exactly. Throws
/// std::runtime_error on IO failure.
void writeEvents(const std::vector<UpdateEvent>& events, const std::string& path);

/// Reads a file produced by writeEvents. Throws std::runtime_error on IO
/// failure or malformed lines.
[[nodiscard]] std::vector<UpdateEvent> readEvents(const std::string& path);

}  // namespace xdgp::graph
