#include "graph/csr.h"

#include <algorithm>

namespace xdgp::graph {

CsrGraph CsrGraph::fromGraph(const DynamicGraph& g) {
  CsrGraph csr;
  const std::size_t bound = g.idBound();
  csr.offsets_.assign(bound + 1, 0);
  csr.alive_.assign(bound, 0);
  for (VertexId v = 0; v < bound; ++v) {
    if (g.hasVertex(v)) {
      csr.alive_[v] = 1;
      csr.offsets_[v + 1] = g.degree(v);
      ++csr.numAlive_;
    }
  }
  for (std::size_t v = 0; v < bound; ++v) csr.offsets_[v + 1] += csr.offsets_[v];
  csr.targets_.resize(csr.offsets_[bound]);
  for (VertexId v = 0; v < bound; ++v) {
    if (!g.hasVertex(v)) continue;
    const auto nbrs = g.neighbors(v);
    std::copy(nbrs.begin(), nbrs.end(), csr.targets_.begin() +
                                            static_cast<std::ptrdiff_t>(csr.offsets_[v]));
  }
  return csr;
}

CsrGraph CsrGraph::fromEdges(std::size_t n, const std::vector<Edge>& edges) {
  CsrGraph csr;
  csr.offsets_.assign(n + 1, 0);
  csr.alive_.assign(n, 1);
  csr.numAlive_ = n;
  for (const Edge& e : edges) {
    ++csr.offsets_[e.u + 1];
    ++csr.offsets_[e.v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) csr.offsets_[v + 1] += csr.offsets_[v];
  csr.targets_.resize(csr.offsets_[n]);
  std::vector<std::size_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : edges) {
    csr.targets_[cursor[e.u]++] = e.v;
    csr.targets_[cursor[e.v]++] = e.u;
  }
  return csr;
}

std::size_t CsrGraph::maxDegree() const noexcept {
  std::size_t best = 0;
  for (VertexId v = 0; v < idBound(); ++v) best = std::max(best, degree(v));
  return best;
}

}  // namespace xdgp::graph
