#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace xdgp::graph {

/// Densifies sparse external identifiers (Twitter user ids, phone numbers)
/// into the contiguous VertexId space the engine indexes with arrays.
class IdMapper {
 public:
  /// Returns the dense id for `external`, allocating one on first sight.
  VertexId intern(std::uint64_t external) {
    const auto [it, inserted] =
        toDense_.try_emplace(external, static_cast<VertexId>(toExternal_.size()));
    if (inserted) toExternal_.push_back(external);
    return it->second;
  }

  /// Dense id if known, kInvalidVertex otherwise.
  [[nodiscard]] VertexId lookup(std::uint64_t external) const noexcept {
    const auto it = toDense_.find(external);
    return it == toDense_.end() ? kInvalidVertex : it->second;
  }

  /// External id for a dense id; precondition: id < size().
  [[nodiscard]] std::uint64_t external(VertexId dense) const noexcept {
    return toExternal_[dense];
  }

  [[nodiscard]] std::size_t size() const noexcept { return toExternal_.size(); }

 private:
  std::unordered_map<std::uint64_t, VertexId> toDense_;
  std::vector<std::uint64_t> toExternal_;
};

}  // namespace xdgp::graph
