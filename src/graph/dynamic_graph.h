#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/adjacency_pool.h"
#include "graph/types.h"

namespace xdgp::graph {

/// Mutable, undirected, in-memory graph with dense vertex ids.
///
/// This is the substrate the paper's system keeps in RAM: "once the graph has
/// been loaded into memory, computation is run continuously; vertices/edges
/// can be injected/removed from the graph during the computation from a
/// stream" (§3). Removed vertex ids go to a free list and are recycled by
/// addVertex(), keeping the id space compact for array-indexed per-vertex
/// state.
///
/// Adjacency lives in an AdjacencyPool — one arena of power-of-two blocks —
/// so scans over many neighbourhoods (the adaptive engine's decision phase)
/// stream through contiguous memory instead of chasing per-vertex heap
/// allocations.
///
/// Invariants (checked by the test suite):
///  - adjacency is symmetric: v in N(u) <=> u in N(v);
///  - no self-loops, no parallel edges;
///  - numEdges() equals (sum of degrees) / 2 over alive vertices.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Pre-creates `n` alive vertices with ids [0, n).
  explicit DynamicGraph(std::size_t n);

  /// Bulk construction over ids [0, n): counts endpoint occurrences, carves
  /// every adjacency block in one arena allocation (AdjacencyPool::
  /// bulkReserve), fills, then sorts + dedups each neighbour list in place.
  /// Self-loops and duplicate edges in `edges` are dropped; endpoints >= n
  /// throw std::invalid_argument. O(E · log maxDeg) total — the per-edge
  /// addEdge path is O(deg(u)) per insertion (its duplicate scan), which
  /// turns hub-heavy power-law construction quadratic-ish at 10M vertices.
  /// Adjacency comes out sorted ascending (a canonical order independent of
  /// input edge order).
  [[nodiscard]] static DynamicGraph fromEdges(std::size_t n,
                                              std::span<const Edge> edges);

  /// Adds a vertex, recycling a freed id when available; returns its id.
  VertexId addVertex();

  /// Ensures `id` exists and is alive (grows the id space as needed).
  void ensureVertex(VertexId id);

  /// Removes a vertex and all incident edges. No-op when not alive.
  void removeVertex(VertexId id);

  /// Adds the undirected edge {u, v}; creates endpoints if missing.
  /// Self-loops and duplicates are ignored. Returns true when inserted.
  bool addEdge(VertexId u, VertexId v);

  /// Removes the undirected edge {u, v}; returns true when it existed.
  bool removeEdge(VertexId u, VertexId v);

  [[nodiscard]] bool hasVertex(VertexId id) const noexcept {
    return id < alive_.size() && alive_[id];
  }
  [[nodiscard]] bool hasEdge(VertexId u, VertexId v) const noexcept;

  /// Neighbour view; valid until the next mutation of the graph (edge
  /// insertion anywhere may relocate blocks within the shared arena;
  /// removals never do).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId id) const noexcept;

  [[nodiscard]] std::size_t degree(VertexId id) const noexcept {
    return hasVertex(id) ? adj_.size(id) : 0;
  }

  /// Number of alive vertices.
  [[nodiscard]] std::size_t numVertices() const noexcept { return numVertices_; }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t numEdges() const noexcept { return numEdges_; }

  /// Upper bound (exclusive) of the id space, including dead ids; the right
  /// size for per-vertex state arrays.
  [[nodiscard]] std::size_t idBound() const noexcept { return alive_.size(); }

  /// Calls fn(id) for every alive vertex in increasing id order.
  template <typename Fn>
  void forEachVertex(Fn&& fn) const {
    for (VertexId id = 0; id < alive_.size(); ++id) {
      if (alive_[id]) fn(id);
    }
  }

  /// Calls fn(u, v) once per undirected edge, with u < v.
  template <typename Fn>
  void forEachEdge(Fn&& fn) const {
    for (VertexId u = 0; u < alive_.size(); ++u) {
      if (!alive_[u]) continue;
      for (const VertexId v : adj_.view(u)) {
        if (u < v) fn(u, v);
      }
    }
  }

  /// Snapshot of alive vertex ids, ascending.
  [[nodiscard]] std::vector<VertexId> vertices() const;

  /// Average degree over alive vertices (0 when empty).
  [[nodiscard]] double averageDegree() const noexcept {
    return numVertices_ ? 2.0 * static_cast<double>(numEdges_) /
                              static_cast<double>(numVertices_)
                        : 0.0;
  }

  /// Pre-sizes the list table, alive flags, and free-list reservation for
  /// `n` vertices so incremental growth to that size reallocates nothing.
  void reserveVertices(std::size_t n);

  /// Heap bytes of the graph's own bookkeeping outside the adjacency arena
  /// (alive flags + free-id list) — one term of core::MemoryReport.
  [[nodiscard]] std::size_t bookkeepingBytes() const noexcept {
    return alive_.capacity() * sizeof(std::uint8_t) +
           freeIds_.capacity() * sizeof(VertexId);
  }

  /// The adjacency arena (memory accounting, pool-layout tests).
  [[nodiscard]] const AdjacencyPool& adjacencyPool() const noexcept { return adj_; }

 private:
  AdjacencyPool adj_;
  std::vector<std::uint8_t> alive_;
  /// Freed ids, possibly stale: ensureVertex() revives an id in place
  /// without scanning this list; addVertex() filters stale (alive) entries
  /// lazily on pop, keeping both operations amortised O(1).
  std::vector<VertexId> freeIds_;
  std::size_t numVertices_ = 0;
  std::size_t numEdges_ = 0;
};

}  // namespace xdgp::graph
