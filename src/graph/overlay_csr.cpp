#include "graph/overlay_csr.h"

#include <utility>

namespace xdgp::graph {

OverlayCsr::OverlayCsr(std::shared_ptr<const CsrGraph> base)
    : base_(std::move(base)),
      idBound_(base_->idBound()),
      numAlive_(base_->numVertices()),
      numEdges_(base_->numEdges()) {}

OverlayCsr::OverlayCsr(std::shared_ptr<const CsrGraph> base,
                       std::span<const VertexId> touched,
                       const DynamicGraph& g)
    : base_(std::move(base)),
      idBound_(g.idBound()),
      numAlive_(g.numVertices()),
      numEdges_(g.numEdges()) {
  if (touched.empty()) return;
  // Power-of-two table at load factor <= 0.5: linear probing stays short.
  std::size_t cap = 4;
  while (cap < touched.size() * 2) cap <<= 1;
  slots_.assign(cap, Slot{});
  std::size_t totalDegree = 0;
  for (const VertexId v : touched) totalDegree += g.degree(v);
  targets_.reserve(totalDegree);
  for (const VertexId v : touched) {
    Slot slot;
    slot.key = v;
    slot.alive = g.hasVertex(v) ? 1 : 0;
    slot.offset = static_cast<std::uint32_t>(targets_.size());
    const std::span<const VertexId> nbrs = g.neighbors(v);
    targets_.insert(targets_.end(), nbrs.begin(), nbrs.end());
    slot.length = static_cast<std::uint32_t>(nbrs.size());
    insert(slot);
  }
}

void OverlayCsr::insert(const Slot& slot) noexcept {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(util::Rng::splitmix64(slot.key)) & mask;
  while (slots_[i].key != kInvalidVertex && slots_[i].key != slot.key) {
    i = (i + 1) & mask;
  }
  if (slots_[i].key == kInvalidVertex) ++overlayCount_;
  slots_[i] = slot;
}

}  // namespace xdgp::graph
