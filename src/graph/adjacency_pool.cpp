#include "graph/adjacency_pool.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace xdgp::graph {

std::size_t AdjacencyPool::allocate(std::uint8_t log) {
  if (log < freeLists_.size() && !freeLists_[log].empty()) {
    const std::size_t offset = freeLists_[log].back();
    freeLists_[log].pop_back();
    return offset;
  }
  const std::size_t offset = arena_.size();
  arena_.resize(offset + (std::size_t{1} << log));
  return offset;
}

void AdjacencyPool::release(std::size_t offset, std::uint8_t log) {
  if (freeLists_.size() <= log) freeLists_.resize(log + 1);
  freeLists_[log].push_back(offset);
}

void AdjacencyPool::push(std::size_t list, VertexId value) {
  Meta& m = meta_[list];
  if (m.capLog == kNoBlock) {
    m.offset = allocate(kMinLog);
    m.capLog = kMinLog;
  } else if (m.size == (std::uint32_t{1} << m.capLog)) {
    const auto newLog = static_cast<std::uint8_t>(m.capLog + 1);
    const std::size_t newOffset = allocate(newLog);  // may grow the arena
    std::copy_n(arena_.begin() + static_cast<std::ptrdiff_t>(m.offset), m.size,
                arena_.begin() + static_cast<std::ptrdiff_t>(newOffset));
    release(m.offset, m.capLog);
    m.offset = newOffset;
    m.capLog = newLog;
  }
  arena_[m.offset + m.size++] = value;
}

bool AdjacencyPool::eraseUnordered(std::size_t list, VertexId value) noexcept {
  Meta& m = meta_[list];
  VertexId* data = arena_.data() + m.offset;
  for (std::uint32_t i = 0; i < m.size; ++i) {
    if (data[i] == value) {
      data[i] = data[m.size - 1];
      --m.size;
      return true;
    }
  }
  return false;
}

void AdjacencyPool::clear(std::size_t list) noexcept {
  Meta& m = meta_[list];
  if (m.capLog != kNoBlock) release(m.offset, m.capLog);
  m = Meta{};
}

void AdjacencyPool::bulkReserve(std::span<const std::uint32_t> counts) {
  if (!arena_.empty()) {
    throw std::logic_error("AdjacencyPool::bulkReserve: pool already has blocks");
  }
  growLists(counts.size());
  std::size_t total = 0;
  for (const std::uint32_t count : counts) {
    if (count == 0) continue;
    const auto log = static_cast<std::uint8_t>(
        std::max<int>(kMinLog, std::bit_width(std::uint32_t{count} - 1)));
    total += std::size_t{1} << log;
  }
  arena_.resize(total);
  std::size_t offset = 0;
  for (std::size_t list = 0; list < counts.size(); ++list) {
    if (counts[list] == 0) continue;
    const auto log = static_cast<std::uint8_t>(
        std::max<int>(kMinLog, std::bit_width(counts[list] - 1)));
    meta_[list].offset = offset;
    meta_[list].capLog = log;
    offset += std::size_t{1} << log;
  }
}

AdjacencyPool::ArenaStats AdjacencyPool::stats() const noexcept {
  ArenaStats s;
  s.arenaSlots = arena_.size();
  s.freeSlots = freeSlots();
  for (const Meta& m : meta_) {
    s.liveSlots += m.size;
    if (m.capLog != kNoBlock) {
      s.slackSlots += (std::size_t{1} << m.capLog) - m.size;
    }
  }
  s.reservedBytes = arena_.capacity() * sizeof(VertexId);
  s.metaBytes = meta_.capacity() * sizeof(Meta) +
                freeLists_.capacity() * sizeof(std::vector<std::size_t>);
  for (const auto& freeList : freeLists_) {
    s.metaBytes += freeList.capacity() * sizeof(std::size_t);
  }
  return s;
}

std::size_t AdjacencyPool::freeSlots() const noexcept {
  std::size_t slots = 0;
  for (std::size_t log = 0; log < freeLists_.size(); ++log) {
    slots += freeLists_[log].size() << log;
  }
  return slots;
}

}  // namespace xdgp::graph
