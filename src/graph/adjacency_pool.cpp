#include "graph/adjacency_pool.h"

#include <algorithm>

namespace xdgp::graph {

std::size_t AdjacencyPool::allocate(std::uint8_t log) {
  if (log < freeLists_.size() && !freeLists_[log].empty()) {
    const std::size_t offset = freeLists_[log].back();
    freeLists_[log].pop_back();
    return offset;
  }
  const std::size_t offset = arena_.size();
  arena_.resize(offset + (std::size_t{1} << log));
  return offset;
}

void AdjacencyPool::release(std::size_t offset, std::uint8_t log) {
  if (freeLists_.size() <= log) freeLists_.resize(log + 1);
  freeLists_[log].push_back(offset);
}

void AdjacencyPool::push(std::size_t list, VertexId value) {
  Meta& m = meta_[list];
  if (m.capLog == kNoBlock) {
    m.offset = allocate(kMinLog);
    m.capLog = kMinLog;
  } else if (m.size == (std::uint32_t{1} << m.capLog)) {
    const auto newLog = static_cast<std::uint8_t>(m.capLog + 1);
    const std::size_t newOffset = allocate(newLog);  // may grow the arena
    std::copy_n(arena_.begin() + static_cast<std::ptrdiff_t>(m.offset), m.size,
                arena_.begin() + static_cast<std::ptrdiff_t>(newOffset));
    release(m.offset, m.capLog);
    m.offset = newOffset;
    m.capLog = newLog;
  }
  arena_[m.offset + m.size++] = value;
}

bool AdjacencyPool::eraseUnordered(std::size_t list, VertexId value) noexcept {
  Meta& m = meta_[list];
  VertexId* data = arena_.data() + m.offset;
  for (std::uint32_t i = 0; i < m.size; ++i) {
    if (data[i] == value) {
      data[i] = data[m.size - 1];
      --m.size;
      return true;
    }
  }
  return false;
}

void AdjacencyPool::clear(std::size_t list) noexcept {
  Meta& m = meta_[list];
  if (m.capLog != kNoBlock) release(m.offset, m.capLog);
  m = Meta{};
}

std::size_t AdjacencyPool::freeSlots() const noexcept {
  std::size_t slots = 0;
  for (std::size_t log = 0; log < freeLists_.size(); ++log) {
    slots += freeLists_[log].size() << log;
  }
  return slots;
}

}  // namespace xdgp::graph
