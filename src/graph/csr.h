#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/types.h"

namespace xdgp::graph {

/// Immutable compressed-sparse-row snapshot of a graph.
///
/// The initial-partitioning algorithms (hash/RND/DGR/MNN and the multilevel
/// METIS-like baseline) operate on CSR snapshots: they model the paper's
/// "initial partitioning: the graph is loaded on the different partitions"
/// step, which sees the graph as it exists at load time.
///
/// Ids are the dense ids of the source graph; dead ids (if any) are retained
/// with empty neighbour ranges so per-vertex arrays stay index-compatible.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds a snapshot from a dynamic graph.
  static CsrGraph fromGraph(const DynamicGraph& g);

  /// Builds from an explicit edge list over ids [0, n). Duplicate edges and
  /// self-loops must have been removed by the caller.
  static CsrGraph fromEdges(std::size_t n, const std::vector<Edge>& edges);

  [[nodiscard]] std::size_t numVertices() const noexcept { return numAlive_; }
  [[nodiscard]] std::size_t idBound() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t numEdges() const noexcept { return targets_.size() / 2; }

  [[nodiscard]] bool alive(VertexId v) const noexcept {
    return v < alive_.size() && alive_[v];
  }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    if (v >= idBound()) return {};
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    return v < idBound() ? offsets_[v + 1] - offsets_[v] : 0;
  }

  template <typename Fn>
  void forEachVertex(Fn&& fn) const {
    for (VertexId v = 0; v < idBound(); ++v) {
      if (alive_[v]) fn(v);
    }
  }

  template <typename Fn>
  void forEachEdge(Fn&& fn) const {
    for (VertexId u = 0; u < idBound(); ++u) {
      for (const VertexId v : neighbors(u)) {
        if (u < v) fn(u, v);
      }
    }
  }

  [[nodiscard]] double averageDegree() const noexcept {
    return numAlive_ ? 2.0 * static_cast<double>(numEdges()) /
                           static_cast<double>(numAlive_)
                     : 0.0;
  }

  [[nodiscard]] std::size_t maxDegree() const noexcept;

 private:
  std::vector<std::size_t> offsets_;  // size idBound()+1
  std::vector<VertexId> targets_;     // both directions of every edge
  std::vector<std::uint8_t> alive_;
  std::size_t numAlive_ = 0;
};

}  // namespace xdgp::graph
