#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/dynamic_graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace xdgp::graph {

/// Shared-structure CSR view: one immutable base CsrGraph held by
/// shared_ptr plus a small per-view overlay carrying rebuilt adjacency for
/// only the vertices whose neighbour list or liveness changed since the
/// base was cut.
///
/// This is the serving layer's O(changed) publication substrate: successive
/// AssignmentSnapshots share one base (no per-window O(|V|+|E|) rebuild) and
/// each carries an overlay proportional to the churn since the last
/// compaction. Reads probe the overlay first (open-addressed table, one
/// cache line per slot) and fall through to the base; a view with an empty
/// overlay costs one branch over a plain CsrGraph.
///
/// Correctness contract: `touched` must be a superset of every vertex whose
/// neighbour list or alive flag differs from the base (endpoints of applied
/// edge events, added/removed vertices, and the neighbours of removed
/// vertices). Over-approximation is harmless — overlay entries are rebuilt
/// from the live graph, so an untouched vertex in the set just duplicates
/// its base adjacency.
class OverlayCsr {
 public:
  OverlayCsr() = default;

  /// Pure base view — the compacted form, no overlay.
  explicit OverlayCsr(std::shared_ptr<const CsrGraph> base);

  /// Base plus overlay: each vertex in `touched` (deduplicated by the
  /// caller) gets its liveness and neighbour list re-read from `g`. Ids in
  /// `touched` may exceed the base id bound (vertices created since the
  /// base was cut); ids absent from both overlay and base read as dead.
  OverlayCsr(std::shared_ptr<const CsrGraph> base,
             std::span<const VertexId> touched, const DynamicGraph& g);

  [[nodiscard]] std::size_t idBound() const noexcept { return idBound_; }
  [[nodiscard]] std::size_t numVertices() const noexcept { return numAlive_; }
  [[nodiscard]] std::size_t numEdges() const noexcept { return numEdges_; }

  [[nodiscard]] bool alive(VertexId v) const noexcept {
    if (const Slot* slot = find(v)) return slot->alive != 0;
    return base_ != nullptr && base_->alive(v);
  }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    if (const Slot* slot = find(v)) {
      return {targets_.data() + slot->offset, slot->length};
    }
    return base_ != nullptr ? base_->neighbors(v) : std::span<const VertexId>{};
  }

  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    if (const Slot* slot = find(v)) return slot->length;
    return base_ != nullptr ? base_->degree(v) : 0;
  }

  /// The shared base. Views cut from one SnapshotBuilder between two
  /// compactions return the SAME pointer — the structural-sharing tests pin
  /// exactly when publication breaks that sharing.
  [[nodiscard]] const std::shared_ptr<const CsrGraph>& base() const noexcept {
    return base_;
  }

  /// Vertices carried by the overlay (0 for a freshly compacted view).
  [[nodiscard]] std::size_t overlaySize() const noexcept { return overlayCount_; }

  /// Marginal heap bytes of this view on top of the shared base — what one
  /// more live snapshot actually costs a reader to hold.
  [[nodiscard]] std::size_t residentBytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) +
           targets_.capacity() * sizeof(VertexId);
  }

 private:
  /// One overlay entry; 16 bytes so a probe touches a single cache line.
  struct Slot {
    VertexId key = kInvalidVertex;  ///< kInvalidVertex marks an empty slot
    std::uint32_t offset = 0;       ///< begin index into targets_
    std::uint32_t length = 0;
    std::uint8_t alive = 0;
  };

  [[nodiscard]] const Slot* find(VertexId v) const noexcept {
    if (overlayCount_ == 0) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(util::Rng::splitmix64(v)) & mask;
    while (slots_[i].key != kInvalidVertex) {
      if (slots_[i].key == v) return &slots_[i];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  void insert(const Slot& slot) noexcept;

  std::shared_ptr<const CsrGraph> base_;
  std::vector<Slot> slots_;       ///< open-addressed, power-of-two size
  std::vector<VertexId> targets_; ///< overlay adjacency, densely packed
  std::size_t overlayCount_ = 0;
  std::size_t idBound_ = 0;
  std::size_t numAlive_ = 0;
  std::size_t numEdges_ = 0;
};

}  // namespace xdgp::graph
