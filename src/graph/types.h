#pragma once

#include <cstdint>
#include <limits>

namespace xdgp::graph {

/// Dense vertex identifier. Generators emit contiguous ids starting at 0;
/// sparse external ids (e.g. Twitter user ids) are densified via IdMapper.
using VertexId = std::uint32_t;

/// Partition (= worker in the Pregel deployment) identifier.
using PartitionId = std::uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr PartitionId kNoPartition = std::numeric_limits<PartitionId>::max();

/// Undirected edge with canonical ordering (u <= v) helpers.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  [[nodiscard]] Edge canonical() const noexcept {
    return u <= v ? *this : Edge{v, u};
  }
  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace xdgp::graph
