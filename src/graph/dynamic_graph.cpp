#include "graph/dynamic_graph.h"

#include <algorithm>

namespace xdgp::graph {

DynamicGraph::DynamicGraph(std::size_t n) : adj_(n), alive_(n, 1), numVertices_(n) {}

VertexId DynamicGraph::addVertex() {
  // Entries revived by ensureVertex() are left in the list as stale (alive)
  // ids; filter them here so neither operation pays a scan.
  while (!freeIds_.empty()) {
    const VertexId id = freeIds_.back();
    freeIds_.pop_back();
    if (alive_[id]) continue;  // stale: revived since it was freed
    alive_[id] = 1;
    ++numVertices_;
    return id;
  }
  const auto id = static_cast<VertexId>(alive_.size());
  adj_.growLists(id + 1);
  alive_.push_back(1);
  ++numVertices_;
  return id;
}

void DynamicGraph::ensureVertex(VertexId id) {
  if (id >= alive_.size()) {
    adj_.growLists(id + 1);
    alive_.resize(id + 1, 0);
  }
  if (!alive_[id]) {
    // The id may sit in the free list; addVertex() filters it lazily.
    alive_[id] = 1;
    ++numVertices_;
  }
}

void DynamicGraph::removeVertex(VertexId id) {
  if (!hasVertex(id)) return;
  // eraseUnordered never reallocates the arena, so the view stays valid
  // while the reverse edges are unlinked.
  for (const VertexId nb : adj_.view(id)) {
    adj_.eraseUnordered(nb, id);
    --numEdges_;
  }
  adj_.clear(id);
  alive_[id] = 0;
  freeIds_.push_back(id);
  --numVertices_;
}

bool DynamicGraph::addEdge(VertexId u, VertexId v) {
  if (u == v) return false;
  ensureVertex(u);
  ensureVertex(v);
  const auto nu = adj_.view(u);
  if (std::find(nu.begin(), nu.end(), v) != nu.end()) return false;
  adj_.push(u, v);  // may relocate blocks; nu is dead past this point
  adj_.push(v, u);
  ++numEdges_;
  return true;
}

bool DynamicGraph::removeEdge(VertexId u, VertexId v) {
  if (!hasVertex(u) || !hasVertex(v) || u == v) return false;
  if (!adj_.eraseUnordered(u, v)) return false;
  adj_.eraseUnordered(v, u);
  --numEdges_;
  return true;
}

bool DynamicGraph::hasEdge(VertexId u, VertexId v) const noexcept {
  if (!hasVertex(u) || !hasVertex(v)) return false;
  // Scan the smaller adjacency list.
  const auto nu = adj_.view(u);
  const auto nv = adj_.view(v);
  const auto shorter = nu.size() <= nv.size() ? nu : nv;
  const VertexId target = nu.size() <= nv.size() ? v : u;
  return std::find(shorter.begin(), shorter.end(), target) != shorter.end();
}

std::span<const VertexId> DynamicGraph::neighbors(VertexId id) const noexcept {
  if (!hasVertex(id)) return {};
  return adj_.view(id);
}

std::vector<VertexId> DynamicGraph::vertices() const {
  std::vector<VertexId> out;
  out.reserve(numVertices_);
  forEachVertex([&](VertexId id) { out.push_back(id); });
  return out;
}

void DynamicGraph::reserveVertices(std::size_t n) {
  adj_.reserveLists(n);
  alive_.reserve(n);
}

}  // namespace xdgp::graph
