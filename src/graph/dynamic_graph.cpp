#include "graph/dynamic_graph.h"

#include <algorithm>
#include <stdexcept>

namespace xdgp::graph {

DynamicGraph::DynamicGraph(std::size_t n) : adj_(n), alive_(n, 1), numVertices_(n) {}

DynamicGraph DynamicGraph::fromEdges(std::size_t n, std::span<const Edge> edges) {
  DynamicGraph g(n);
  // Pass 1: endpoint occurrence counts (duplicates included — the block is
  // sized for the pre-dedup fill; the excess becomes measured slack).
  std::vector<std::uint32_t> counts(n, 0);
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("DynamicGraph::fromEdges: endpoint out of range");
    }
    if (e.u == e.v) continue;
    ++counts[e.u];
    ++counts[e.v];
  }
  g.adj_.bulkReserve(counts);
  // Pass 2: fill. Every block was carved with enough capacity, so the
  // relocation branch of push() is hoisted out of the loop entirely.
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    g.adj_.pushWithinCapacity(e.u, e.v);
    g.adj_.pushWithinCapacity(e.v, e.u);
  }
  // Pass 3: canonicalise + dedup each list in place. A duplicate undirected
  // edge contributed duplicates to both endpoint lists, so the truncation is
  // symmetric and degree sums stay even.
  std::size_t endpointSum = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::span<VertexId> list = g.adj_.mutableView(v);
    if (list.size() > 1) {
      std::sort(list.begin(), list.end());
      const auto last = std::unique(list.begin(), list.end());
      g.adj_.truncate(v, static_cast<std::uint32_t>(last - list.begin()));
    }
    endpointSum += g.adj_.size(v);
  }
  g.numEdges_ = endpointSum / 2;
  return g;
}

VertexId DynamicGraph::addVertex() {
  // Entries revived by ensureVertex() are left in the list as stale (alive)
  // ids; filter them here so neither operation pays a scan.
  while (!freeIds_.empty()) {
    const VertexId id = freeIds_.back();
    freeIds_.pop_back();
    if (alive_[id]) continue;  // stale: revived since it was freed
    alive_[id] = 1;
    ++numVertices_;
    return id;
  }
  const auto id = static_cast<VertexId>(alive_.size());
  adj_.growLists(id + 1);
  alive_.push_back(1);
  ++numVertices_;
  return id;
}

void DynamicGraph::ensureVertex(VertexId id) {
  if (id >= alive_.size()) {
    adj_.growLists(id + 1);
    alive_.resize(id + 1, 0);
  }
  if (!alive_[id]) {
    // The id may sit in the free list; addVertex() filters it lazily.
    alive_[id] = 1;
    ++numVertices_;
  }
}

void DynamicGraph::removeVertex(VertexId id) {
  if (!hasVertex(id)) return;
  // eraseUnordered never reallocates the arena, so the view stays valid
  // while the reverse edges are unlinked.
  for (const VertexId nb : adj_.view(id)) {
    adj_.eraseUnordered(nb, id);
    --numEdges_;
  }
  adj_.clear(id);
  alive_[id] = 0;
  freeIds_.push_back(id);
  --numVertices_;
}

bool DynamicGraph::addEdge(VertexId u, VertexId v) {
  if (u == v) return false;
  ensureVertex(u);
  ensureVertex(v);
  const auto nu = adj_.view(u);
  if (std::find(nu.begin(), nu.end(), v) != nu.end()) return false;
  adj_.push(u, v);  // may relocate blocks; nu is dead past this point
  adj_.push(v, u);
  ++numEdges_;
  return true;
}

bool DynamicGraph::removeEdge(VertexId u, VertexId v) {
  if (!hasVertex(u) || !hasVertex(v) || u == v) return false;
  if (!adj_.eraseUnordered(u, v)) return false;
  adj_.eraseUnordered(v, u);
  --numEdges_;
  return true;
}

bool DynamicGraph::hasEdge(VertexId u, VertexId v) const noexcept {
  if (!hasVertex(u) || !hasVertex(v)) return false;
  // Scan the smaller adjacency list.
  const auto nu = adj_.view(u);
  const auto nv = adj_.view(v);
  const auto shorter = nu.size() <= nv.size() ? nu : nv;
  const VertexId target = nu.size() <= nv.size() ? v : u;
  return std::find(shorter.begin(), shorter.end(), target) != shorter.end();
}

std::span<const VertexId> DynamicGraph::neighbors(VertexId id) const noexcept {
  if (!hasVertex(id)) return {};
  return adj_.view(id);
}

std::vector<VertexId> DynamicGraph::vertices() const {
  std::vector<VertexId> out;
  out.reserve(numVertices_);
  forEachVertex([&](VertexId id) { out.push_back(id); });
  return out;
}

void DynamicGraph::reserveVertices(std::size_t n) {
  adj_.reserveLists(n);
  alive_.reserve(n);
  freeIds_.reserve(std::min<std::size_t>(n, 1024));
}

}  // namespace xdgp::graph
