#include "graph/dynamic_graph.h"

#include <algorithm>

namespace xdgp::graph {

DynamicGraph::DynamicGraph(std::size_t n)
    : adjacency_(n), alive_(n, 1), numVertices_(n) {}

VertexId DynamicGraph::addVertex() {
  if (!freeIds_.empty()) {
    const VertexId id = freeIds_.back();
    freeIds_.pop_back();
    alive_[id] = 1;
    ++numVertices_;
    return id;
  }
  const auto id = static_cast<VertexId>(alive_.size());
  adjacency_.emplace_back();
  alive_.push_back(1);
  ++numVertices_;
  return id;
}

void DynamicGraph::ensureVertex(VertexId id) {
  if (id >= alive_.size()) {
    adjacency_.resize(id + 1);
    alive_.resize(id + 1, 0);
  }
  if (!alive_[id]) {
    // The id may sit in the free list; lazily drop it there to keep addVertex
    // O(1): filter on pop instead. Simplicity wins at this scale.
    freeIds_.erase(std::remove(freeIds_.begin(), freeIds_.end(), id),
                   freeIds_.end());
    alive_[id] = 1;
    ++numVertices_;
  }
}

void DynamicGraph::removeVertex(VertexId id) {
  if (!hasVertex(id)) return;
  for (const VertexId nb : adjacency_[id]) {
    eraseDirected(nb, id);
    --numEdges_;
  }
  adjacency_[id].clear();
  adjacency_[id].shrink_to_fit();
  alive_[id] = 0;
  freeIds_.push_back(id);
  --numVertices_;
}

bool DynamicGraph::addEdge(VertexId u, VertexId v) {
  if (u == v) return false;
  ensureVertex(u);
  ensureVertex(v);
  auto& nu = adjacency_[u];
  if (std::find(nu.begin(), nu.end(), v) != nu.end()) return false;
  nu.push_back(v);
  adjacency_[v].push_back(u);
  ++numEdges_;
  return true;
}

bool DynamicGraph::removeEdge(VertexId u, VertexId v) {
  if (!hasVertex(u) || !hasVertex(v) || u == v) return false;
  auto& nu = adjacency_[u];
  const auto it = std::find(nu.begin(), nu.end(), v);
  if (it == nu.end()) return false;
  *it = nu.back();
  nu.pop_back();
  eraseDirected(v, u);
  --numEdges_;
  return true;
}

bool DynamicGraph::hasEdge(VertexId u, VertexId v) const noexcept {
  if (!hasVertex(u) || !hasVertex(v)) return false;
  // Scan the smaller adjacency list.
  const auto& nu = adjacency_[u];
  const auto& nv = adjacency_[v];
  const auto& shorter = nu.size() <= nv.size() ? nu : nv;
  const VertexId target = nu.size() <= nv.size() ? v : u;
  return std::find(shorter.begin(), shorter.end(), target) != shorter.end();
}

std::span<const VertexId> DynamicGraph::neighbors(VertexId id) const noexcept {
  if (!hasVertex(id)) return {};
  return {adjacency_[id].data(), adjacency_[id].size()};
}

std::vector<VertexId> DynamicGraph::vertices() const {
  std::vector<VertexId> out;
  out.reserve(numVertices_);
  forEachVertex([&](VertexId id) { out.push_back(id); });
  return out;
}

void DynamicGraph::reserveVertices(std::size_t n) {
  adjacency_.reserve(n);
  alive_.reserve(n);
}

void DynamicGraph::eraseDirected(VertexId from, VertexId to) noexcept {
  auto& list = adjacency_[from];
  const auto it = std::find(list.begin(), list.end(), to);
  if (it != list.end()) {
    *it = list.back();
    list.pop_back();
  }
}

}  // namespace xdgp::graph
