#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "graph/update_stream.h"

namespace xdgp::graph {

/// Sliding-window maintainer for streams whose edges decay: an AddEdge
/// observation keeps the undirected edge alive for `span` time units, and an
/// edge whose *most recent* observation falls out of the window is expired
/// with a RemoveEdge stamped at drain time. Re-observing an edge inside the
/// window resets its clock, so a recurrent tie (the Fig. 8 mention graph's
/// "recent influence" semantics) never expires while it keeps recurring.
///
/// Only AddEdge events are tracked; every other event kind passes through
/// advance() untouched (a stream that removes vertices explicitly is its own
/// authority on those). Expiring an edge the consumer already removed is
/// harmless: RemoveEdge on a missing edge is a no-op for every ingestor.
class EdgeExpiryWindow {
 public:
  explicit EdgeExpiryWindow(double span) : span_(span) {}

  /// Folds a batch of events in and returns it extended with the RemoveEdge
  /// events (timestamped `now`) that expired as of `now`. Batches must be
  /// presented in non-decreasing `now` order.
  std::vector<UpdateEvent> advance(std::vector<UpdateEvent> batch, double now);

  /// Undirected edges currently inside the window.
  [[nodiscard]] std::size_t tracked() const noexcept { return lastSeen_.size(); }

  [[nodiscard]] double span() const noexcept { return span_; }

 private:
  static std::uint64_t key(VertexId u, VertexId v) noexcept;

  double span_;
  std::deque<UpdateEvent> fifo_;                    ///< observations, by time
  std::unordered_map<std::uint64_t, double> lastSeen_;  ///< edge -> newest obs
};

}  // namespace xdgp::graph
