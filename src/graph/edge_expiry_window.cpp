#include "graph/edge_expiry_window.h"

#include <algorithm>
#include <utility>

namespace xdgp::graph {

std::uint64_t EdgeExpiryWindow::key(VertexId u, VertexId v) noexcept {
  const auto [a, b] = std::minmax(u, v);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

std::vector<UpdateEvent> EdgeExpiryWindow::advance(std::vector<UpdateEvent> batch,
                                                   double now) {
  for (const UpdateEvent& e : batch) {
    if (e.kind != UpdateEvent::Kind::kAddEdge) continue;
    lastSeen_[key(e.u, e.v)] = e.timestamp;
    fifo_.push_back(e);
  }
  std::vector<UpdateEvent> extended = std::move(batch);
  while (!fifo_.empty() && fifo_.front().timestamp < now - span_) {
    const UpdateEvent e = fifo_.front();
    fifo_.pop_front();
    const auto it = lastSeen_.find(key(e.u, e.v));
    // Only expire when the edge was not re-observed inside the window: a
    // newer observation leaves its own fifo entry to carry the expiry.
    if (it != lastSeen_.end() && it->second == e.timestamp) {
      extended.push_back(UpdateEvent::removeEdge(e.u, e.v, now));
      lastSeen_.erase(it);
    }
  }
  return extended;
}

}  // namespace xdgp::graph
