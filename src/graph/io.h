#pragma once

#include <string>

#include "graph/dynamic_graph.h"

namespace xdgp::graph {

/// Writes the graph as a whitespace-separated undirected edge list
/// ("u v" per line, u < v), preceded by a "# vertices edges" header comment.
/// Throws std::runtime_error on IO failure.
void writeEdgeList(const DynamicGraph& g, const std::string& path);

/// Reads an edge list in the format produced by writeEdgeList (also accepts
/// SNAP-style files: '#' comment lines, one "u v" pair per line). Isolated
/// vertices are preserved only when the header comment is present.
/// Throws std::runtime_error on IO failure or malformed lines.
[[nodiscard]] DynamicGraph readEdgeList(const std::string& path);

}  // namespace xdgp::graph
