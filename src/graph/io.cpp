#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xdgp::graph {

void writeEdgeList(const DynamicGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeEdgeList: cannot open " + path);
  out << "# " << g.numVertices() << ' ' << g.numEdges() << '\n';
  g.forEachEdge([&](VertexId u, VertexId v) { out << u << ' ' << v << '\n'; });
  if (!out) throw std::runtime_error("writeEdgeList: write failed for " + path);
}

DynamicGraph readEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readEdgeList: cannot open " + path);
  DynamicGraph g;
  std::string line;
  bool headerSeen = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Optional "# vertices edges" header: pre-create isolated vertices.
      if (!headerSeen) {
        std::istringstream hs(line.substr(1));
        std::size_t nv = 0, ne = 0;
        if (hs >> nv >> ne) {
          for (std::size_t i = 0; i < nv; ++i) g.ensureVertex(static_cast<VertexId>(i));
          headerSeen = true;
        }
      }
      continue;
    }
    std::istringstream ls(line);
    VertexId u = 0, v = 0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("readEdgeList: malformed line in " + path + ": " + line);
    }
    g.addEdge(u, v);
  }
  return g;
}

}  // namespace xdgp::graph
