#include "graph/update_stream.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace xdgp::graph {

std::size_t applyUpdates(DynamicGraph& g, const std::vector<UpdateEvent>& events) {
  std::size_t applied = 0;
  for (const UpdateEvent& e : events) {
    switch (e.kind) {
      case UpdateEvent::Kind::kAddVertex:
        if (!g.hasVertex(e.u)) {
          g.ensureVertex(e.u);
          ++applied;
        }
        break;
      case UpdateEvent::Kind::kRemoveVertex:
        if (g.hasVertex(e.u)) {
          g.removeVertex(e.u);
          ++applied;
        }
        break;
      case UpdateEvent::Kind::kAddEdge:
        if (g.addEdge(e.u, e.v)) ++applied;
        break;
      case UpdateEvent::Kind::kRemoveEdge:
        if (g.removeEdge(e.u, e.v)) ++applied;
        break;
    }
  }
  return applied;
}

UpdateStream::UpdateStream(std::vector<UpdateEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const UpdateEvent& a, const UpdateEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
}

void UpdateStream::push(UpdateEvent event) {
  if (!events_.empty() && event.timestamp < events_.back().timestamp) {
    // Keep global order; late events are clamped to the tail timestamp, the
    // behaviour of a real ingestion queue that stamps on arrival.
    event.timestamp = events_.back().timestamp;
  }
  events_.push_back(event);
}

std::vector<UpdateEvent> UpdateStream::drainUntil(double t) {
  std::vector<UpdateEvent> batch;
  while (cursor_ < events_.size() && events_[cursor_].timestamp <= t) {
    batch.push_back(events_[cursor_]);
    ++cursor_;
  }
  return batch;
}

std::vector<UpdateEvent> UpdateStream::drainCount(std::size_t n) {
  std::vector<UpdateEvent> batch;
  while (cursor_ < events_.size() && batch.size() < n) {
    batch.push_back(events_[cursor_]);
    ++cursor_;
  }
  return batch;
}

namespace {

constexpr const char* kindCode(UpdateEvent::Kind kind) noexcept {
  switch (kind) {
    case UpdateEvent::Kind::kAddVertex: return "AV";
    case UpdateEvent::Kind::kRemoveVertex: return "RV";
    case UpdateEvent::Kind::kAddEdge: return "AE";
    case UpdateEvent::Kind::kRemoveEdge: return "RE";
  }
  return "??";
}

}  // namespace

void writeEvents(const std::vector<UpdateEvent>& events, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeEvents: cannot open " + path);
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# xdgp-events " << events.size() << "\n";
  for (const UpdateEvent& e : events) {
    out << kindCode(e.kind) << ' ' << e.u << ' ' << e.v << ' ' << e.timestamp
        << '\n';
  }
  if (!out) throw std::runtime_error("writeEvents: write failed for " + path);
}

std::vector<UpdateEvent> readEvents(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readEvents: cannot open " + path);
  std::vector<UpdateEvent> events;
  std::string line;
  std::size_t lineNo = 0;
  std::size_t declared = 0;
  bool haveHeader = false;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.rfind("# xdgp-events ", 0) == 0) {
      // The count exists to catch truncated files; remember it.
      std::istringstream header(line.substr(14));
      haveHeader = static_cast<bool>(header >> declared);
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    UpdateEvent e;
    if (!(fields >> kind >> e.u >> e.v >> e.timestamp)) {
      throw std::runtime_error("readEvents: malformed line " +
                               std::to_string(lineNo) + " in " + path);
    }
    if (kind == "AV") e.kind = UpdateEvent::Kind::kAddVertex;
    else if (kind == "RV") e.kind = UpdateEvent::Kind::kRemoveVertex;
    else if (kind == "AE") e.kind = UpdateEvent::Kind::kAddEdge;
    else if (kind == "RE") e.kind = UpdateEvent::Kind::kRemoveEdge;
    else {
      throw std::runtime_error("readEvents: unknown event kind '" + kind +
                               "' at line " + std::to_string(lineNo) + " in " +
                               path);
    }
    events.push_back(e);
  }
  if (haveHeader && events.size() != declared) {
    throw std::runtime_error(
        "readEvents: " + path + " declares " + std::to_string(declared) +
        " events but contains " + std::to_string(events.size()) +
        " (truncated or corrupted file)");
  }
  return events;
}

}  // namespace xdgp::graph
