#include "graph/update_stream.h"

#include <algorithm>
#include <stdexcept>

namespace xdgp::graph {

std::size_t applyUpdates(DynamicGraph& g, const std::vector<UpdateEvent>& events) {
  std::size_t applied = 0;
  for (const UpdateEvent& e : events) {
    switch (e.kind) {
      case UpdateEvent::Kind::kAddVertex:
        if (!g.hasVertex(e.u)) {
          g.ensureVertex(e.u);
          ++applied;
        }
        break;
      case UpdateEvent::Kind::kRemoveVertex:
        if (g.hasVertex(e.u)) {
          g.removeVertex(e.u);
          ++applied;
        }
        break;
      case UpdateEvent::Kind::kAddEdge:
        if (g.addEdge(e.u, e.v)) ++applied;
        break;
      case UpdateEvent::Kind::kRemoveEdge:
        if (g.removeEdge(e.u, e.v)) ++applied;
        break;
    }
  }
  return applied;
}

UpdateStream::UpdateStream(std::vector<UpdateEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const UpdateEvent& a, const UpdateEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
}

void UpdateStream::push(UpdateEvent event) {
  if (!events_.empty() && event.timestamp < events_.back().timestamp) {
    // Keep global order; late events are clamped to the tail timestamp, the
    // behaviour of a real ingestion queue that stamps on arrival.
    event.timestamp = events_.back().timestamp;
  }
  events_.push_back(event);
}

std::vector<UpdateEvent> UpdateStream::drainUntil(double t) {
  std::vector<UpdateEvent> batch;
  while (cursor_ < events_.size() && events_[cursor_].timestamp <= t) {
    batch.push_back(events_[cursor_]);
    ++cursor_;
  }
  return batch;
}

}  // namespace xdgp::graph
