#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"

namespace xdgp::api {

/// Catalog entry for one adaptive engine: the self-describing metadata the
/// CLI help menus, the serve driver, and the registry-driven tests read —
/// the same pattern as PartitionerRegistry / WorkloadRegistry. Construction
/// itself goes through core::makeEngine (the registry resolves a code to an
/// EngineKind; the options struct carries it from there).
struct EngineInfo {
  std::string code;     ///< stable lookup key, "greedy" or "lpa"
  std::string summary;  ///< one-line human description for --help output
  core::EngineKind kind = core::EngineKind::kGreedy;
  /// True when the engine supports growPartitions/shrinkPartitions on a
  /// running session (LPA); false means those calls throw (greedy).
  bool elasticK = false;
  /// True when the same seed yields the identical trajectory at any thread
  /// count — both built-ins, via core::StatelessDraws.
  bool deterministicGivenSeed = true;
};

/// The process-wide catalog of adaptive engines. Built-ins register on
/// first access; extensions self-register through EngineRegistration and
/// the CLI menus and engine property tests pick them up for free.
class EngineRegistry {
 public:
  static EngineRegistry& instance();

  /// Adds an engine; throws std::invalid_argument on duplicate codes.
  void add(EngineInfo info);

  [[nodiscard]] bool has(const std::string& code) const;

  /// Metadata lookup; throws std::invalid_argument naming the known codes
  /// when `code` is not registered (typo-proof --engine flags).
  [[nodiscard]] const EngineInfo& info(const std::string& code) const;

  /// All registered codes, sorted.
  [[nodiscard]] std::vector<std::string> codes() const;

  /// All entries, sorted by code (stable pointers into the registry).
  [[nodiscard]] std::vector<const EngineInfo*> infos() const;

 private:
  EngineRegistry();

  std::map<std::string, EngineInfo> engines_;
};

/// Static-initialisation hook for self-registering engines:
///   namespace { const api::EngineRegistration reg{{.code = "xyz", ...}}; }
struct EngineRegistration {
  explicit EngineRegistration(EngineInfo info) {
    EngineRegistry::instance().add(std::move(info));
  }
};

}  // namespace xdgp::api
