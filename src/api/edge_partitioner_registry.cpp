#include "api/edge_partitioner_registry.h"

#include <stdexcept>
#include <utility>

#include "epartition/dbh_partitioner.h"
#include "epartition/hdrf_partitioner.h"
#include "epartition/ne_partitioner.h"

namespace xdgp::api {

namespace {

template <typename Strategy>
std::function<std::unique_ptr<epartition::EdgePartitioner>()> factoryOf() {
  return [] { return std::make_unique<Strategy>(); };
}

}  // namespace

EdgePartitionerRegistry::EdgePartitionerRegistry() {
  add({.code = "HSH",
       .summary = "uncoordinated edge hash — the replication-factor worst "
                  "case every strategy is measured against",
       .respectsBalanceCap = false,
       .deterministicGivenSeed = true,
       .make = factoryOf<epartition::HashEdgePartitioner>()});
  add({.code = "DBH",
       .summary = "degree-based hashing (NIPS'14) — edges follow their "
                  "lower-degree endpoint, hubs replicate",
       .respectsBalanceCap = false,
       .deterministicGivenSeed = true,
       .make = factoryOf<epartition::DbhPartitioner>()});
  add({.code = "HDRF",
       .summary = "highest-degree replicated first stream (CIKM'15), "
                  "lambda balance knob + hard cap",
       .respectsBalanceCap = true,
       .deterministicGivenSeed = true,
       .make = factoryOf<epartition::HdrfPartitioner>()});
  add({.code = "NE",
       .summary = "neighbour expansion (KDD'17) — grows dense cores one "
                  "partition at a time, best RF offline",
       .respectsBalanceCap = true,
       .deterministicGivenSeed = true,
       .make = factoryOf<epartition::NePartitioner>()});
  add({.code = "SNE",
       .summary = "streaming neighbour expansion under a 2|V|-edge memory "
                  "budget; HDRF places the overflow",
       .respectsBalanceCap = true,
       .deterministicGivenSeed = true,
       .make = factoryOf<epartition::SnePartitioner>()});
}

EdgePartitionerRegistry& EdgePartitionerRegistry::instance() {
  static EdgePartitionerRegistry registry;
  return registry;
}

void EdgePartitionerRegistry::add(EdgeStrategyInfo info) {
  if (info.code.empty() || !info.make) {
    throw std::invalid_argument(
        "EdgePartitionerRegistry: a strategy needs a code and a factory");
  }
  const auto [it, inserted] = strategies_.emplace(info.code, std::move(info));
  if (!inserted) {
    throw std::invalid_argument(
        "EdgePartitionerRegistry: duplicate strategy code " + it->first);
  }
}

bool EdgePartitionerRegistry::has(const std::string& code) const {
  return strategies_.count(code) > 0;
}

const EdgeStrategyInfo& EdgePartitionerRegistry::info(
    const std::string& code) const {
  const auto it = strategies_.find(code);
  if (it == strategies_.end()) {
    std::string known;
    for (const auto& [key, entry] : strategies_) {
      known += (known.empty() ? "" : ", ") + key;
    }
    throw std::invalid_argument("unknown edge-partitioning strategy '" + code +
                                "' (known: " + known + ")");
  }
  return it->second;
}

std::unique_ptr<epartition::EdgePartitioner> EdgePartitionerRegistry::create(
    const std::string& code) const {
  return info(code).make();
}

std::vector<std::string> EdgePartitionerRegistry::codes() const {
  std::vector<std::string> result;
  result.reserve(strategies_.size());
  for (const auto& [code, entry] : strategies_) result.push_back(code);
  return result;
}

std::vector<const EdgeStrategyInfo*> EdgePartitionerRegistry::infos() const {
  std::vector<const EdgeStrategyInfo*> result;
  result.reserve(strategies_.size());
  for (const auto& [code, entry] : strategies_) result.push_back(&entry);
  return result;
}

epartition::EdgeAssignment edgePartition(const graph::DynamicGraph& g,
                                         const std::string& code, std::size_t k,
                                         double balanceFactor,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  const graph::CsrGraph csr = graph::CsrGraph::fromGraph(g);
  return EdgePartitionerRegistry::instance().create(code)->partition(
      epartition::EdgePartitionRequest{csr, k, balanceFactor, rng});
}

}  // namespace xdgp::api
