#include "api/workload_registry.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "gen/cdr_stream.h"
#include "gen/forest_fire.h"
#include "gen/mesh2d.h"
#include "gen/powerlaw_cluster.h"
#include "gen/tweet_stream.h"
#include "graph/io.h"
#include "util/flags.h"
#include "util/rng.h"

namespace xdgp::api {

// -------------------------------------------------------- WorkloadParams

double WorkloadParams::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::invalid_argument("workload factory read undeclared param '" +
                                name + "'");
  }
  return it->second;
}

std::size_t WorkloadParams::count(const std::string& name) const {
  const double value = get(name);
  if (value < 0.0) {
    throw std::invalid_argument("workload param '" + name +
                                "' must be non-negative");
  }
  return static_cast<std::size_t>(std::llround(value));
}

// ---------------------------------------------------- built-in workloads

namespace {

Workload makeTweet(const WorkloadConfig& config, const WorkloadParams& params) {
  gen::TweetStreamParams streamParams;
  streamParams.users = params.count("users");
  streamParams.meanRate = params.get("rate");
  streamParams.hours = params.get("hours");
  Workload workload;
  workload.initial = graph::DynamicGraph(streamParams.users);
  workload.stream = graph::UpdateStream(
      gen::TweetStreamGenerator(streamParams, util::Rng(config.seed)).generate());
  workload.suggested.windowSpan = 600.0;  // the paper's 10-minute buckets
  workload.suggested.expirySpan = params.get("expiry-hours") * 3600.0;
  return workload;
}

Workload makeCdr(const WorkloadConfig& config, const WorkloadParams& params) {
  gen::CdrStreamParams streamParams;
  streamParams.initialSubscribers = params.count("subscribers");
  streamParams.meanDegree = params.get("degree");
  streamParams.weeks = params.count("weeks");
  gen::CdrStreamGenerator generator(streamParams, util::Rng(config.seed));
  Workload workload;
  workload.initial = generator.initialGraph();
  std::vector<graph::UpdateEvent> events;
  for (std::size_t week = 0; week < streamParams.weeks; ++week) {
    gen::CdrWeek batch = generator.nextWeek();
    events.insert(events.end(), batch.events.begin(), batch.events.end());
  }
  workload.stream = graph::UpdateStream(std::move(events));
  workload.suggested.windowSpan = 0.2;  // five buffered batches per week
  return workload;
}

Workload makeForestFire(const WorkloadConfig& config,
                        const WorkloadParams& params) {
  const std::size_t side = params.count("side");
  const std::size_t batches = params.count("batches");
  const std::size_t burst = params.count("burst");
  gen::ForestFireParams fireParams;
  fireParams.forward = params.get("forward");
  Workload workload;
  workload.initial = gen::mesh2d(side, side);
  graph::DynamicGraph future = workload.initial;
  util::Rng rng(config.seed);
  std::vector<graph::UpdateEvent> events;
  for (std::size_t i = 0; i < batches; ++i) {
    // Mid-window timestamps so integer windows capture one burst each.
    const auto burstEvents = gen::forestFireExtension(
        future, burst, fireParams, rng, static_cast<double>(i) + 0.5);
    events.insert(events.end(), burstEvents.begin(), burstEvents.end());
  }
  workload.stream = graph::UpdateStream(std::move(events));
  workload.suggested.windowSpan = 1.0;  // one burst per window
  return workload;
}

Workload makeChurn(const WorkloadConfig& config, const WorkloadParams& params) {
  const std::size_t vertices = params.count("vertices");
  const std::size_t attach = params.count("attach");
  const std::size_t ticks = params.count("ticks");
  const std::size_t rate = params.count("rate");
  const double removeFraction = params.get("remove-frac");
  util::Rng rng(config.seed);
  Workload workload;
  workload.initial = gen::powerlawCluster(vertices, attach, 0.1, rng);
  // Removals draw from the edges known to exist at generation time (initial
  // edges plus this stream's own additions), so most RemoveEdge events hit.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
  workload.initial.forEachEdge(
      [&](graph::VertexId u, graph::VertexId v) { edges.emplace_back(u, v); });
  std::vector<graph::UpdateEvent> events;
  events.reserve(ticks * rate);
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    for (std::size_t j = 0; j < rate; ++j) {
      const double t = static_cast<double>(tick) +
                       (static_cast<double>(j) + 0.5) / static_cast<double>(rate);
      if (!edges.empty() && rng.bernoulli(removeFraction)) {
        const std::size_t pick = rng.index(edges.size());
        const auto [u, v] = edges[pick];
        events.push_back(graph::UpdateEvent::removeEdge(u, v, t));
        edges[pick] = edges.back();
        edges.pop_back();
      } else {
        const auto u = static_cast<graph::VertexId>(rng.index(vertices));
        const auto v = static_cast<graph::VertexId>(rng.index(vertices));
        if (u == v) continue;
        events.push_back(graph::UpdateEvent::addEdge(u, v, t));
        edges.emplace_back(u, v);
      }
    }
  }
  workload.stream = graph::UpdateStream(std::move(events));
  workload.suggested.windowSpan = 1.0;  // one tick per window
  return workload;
}

Workload makeReplay(const WorkloadConfig& config, const WorkloadParams&) {
  Workload workload;
  if (!config.graphPath.empty()) {
    workload.initial = graph::readEdgeList(config.graphPath);
  }
  workload.stream = graph::UpdateStream(graph::readEvents(config.eventsPath));
  // The file's time scale is unknown; count windows are always well-formed.
  workload.suggested.windowEvents =
      workload.stream.size() > 8 ? workload.stream.size() / 8 : 1;
  return workload;
}

}  // namespace

// ------------------------------------------------------ WorkloadRegistry

WorkloadRegistry::WorkloadRegistry() {
  add({.code = "TWEET",
       .summary = "diurnal London mention stream (Fig. 8): Zipf popularity, "
                  "community locality, AddEdge only",
       .params = {{"users", "user universe size", 5'000},
                  {"rate", "mean tweets per second over the day", 5.0},
                  {"hours", "stream duration in hours", 6.0},
                  {"expiry-hours", "sliding mention window (suggested expiry)",
                   6.0}},
       .make = makeTweet});
  add({.code = "CDR",
       .summary = "mobile call-graph churn (Fig. 9): +8%/-4% weekly "
                  "subscribers, triadic new ties; time unit = weeks",
       .params = {{"subscribers", "initial subscriber count", 20'000},
                  {"degree", "mean call-graph degree", 10.1},
                  {"weeks", "weeks of churn to generate", 4}},
       .make = makeCdr});
  add({.code = "FFIRE",
       .summary = "forest-fire growth bursts over a 2-D FEM mesh (Fig. 7b "
                  "style); time unit = burst index",
       .params = {{"side", "initial mesh side (side x side vertices)", 64},
                  {"batches", "number of growth bursts", 8},
                  {"burst", "vertices added per burst", 170},
                  {"forward", "forest-fire forward burning probability", 0.40}},
       .make = makeForestFire});
  add({.code = "CHURN",
       .summary = "synthetic edge churn over a power-law cluster graph: "
                  "random adds vs removals of known edges",
       .params = {{"vertices", "vertex count of the base graph", 2'000},
                  {"attach", "edges per vertex in the base graph", 4},
                  {"ticks", "number of churn ticks", 8},
                  {"rate", "events per tick", 300},
                  {"remove-frac", "probability an event removes an edge", 0.35}},
       .make = makeChurn});
  add({.code = "REPLAY",
       .summary = "replay a saved event file (graph::writeEvents) over an "
                  "optional initial edge list",
       .params = {},
       .needsEventsPath = true,
       .make = makeReplay});
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::add(WorkloadInfo info) {
  if (info.code.empty() || !info.make) {
    throw std::invalid_argument(
        "WorkloadRegistry: a workload needs a code and a factory");
  }
  for (std::size_t i = 0; i < info.params.size(); ++i) {
    for (std::size_t j = i + 1; j < info.params.size(); ++j) {
      if (info.params[i].name == info.params[j].name) {
        throw std::invalid_argument("WorkloadRegistry: workload " + info.code +
                                    " declares param '" + info.params[i].name +
                                    "' twice");
      }
    }
  }
  const auto [it, inserted] = workloads_.emplace(info.code, std::move(info));
  if (!inserted) {
    throw std::invalid_argument("WorkloadRegistry: duplicate workload code " +
                                it->first);
  }
}

bool WorkloadRegistry::has(const std::string& code) const {
  return workloads_.count(code) > 0;
}

const WorkloadInfo& WorkloadRegistry::info(const std::string& code) const {
  const auto it = workloads_.find(code);
  if (it == workloads_.end()) {
    std::string known;
    for (const auto& [key, entry] : workloads_) {
      known += (known.empty() ? "" : ", ") + key;
    }
    throw std::invalid_argument("unknown workload '" + code +
                                "' (known: " + known + ")");
  }
  return it->second;
}

Workload WorkloadRegistry::make(const std::string& code,
                                const WorkloadConfig& config) const {
  const WorkloadInfo& entry = info(code);
  if (entry.needsEventsPath && config.eventsPath.empty()) {
    throw std::invalid_argument("workload " + code +
                                " needs an event file (config.eventsPath)");
  }
  std::map<std::string, double> values;
  for (const WorkloadParamSpec& spec : entry.params) {
    values[spec.name] = spec.defaultValue;
  }
  for (const auto& [name, value] : config.overrides) {
    const auto it = values.find(name);
    if (it == values.end()) {
      std::string known;
      for (const WorkloadParamSpec& spec : entry.params) {
        known += (known.empty() ? "" : ", ") + spec.name;
      }
      throw std::invalid_argument(
          "workload " + code + " has no param '" + name + "'" +
          (known.empty() ? std::string(" (it takes none)")
                         : " (known: " + known + ")"));
    }
    it->second = value;
  }
  Workload workload = entry.make(config, WorkloadParams(std::move(values)));
  workload.code = entry.code;
  return workload;
}

std::vector<std::string> WorkloadRegistry::codes() const {
  std::vector<std::string> result;
  result.reserve(workloads_.size());
  for (const auto& [code, entry] : workloads_) result.push_back(code);
  return result;
}

std::vector<const WorkloadInfo*> WorkloadRegistry::infos() const {
  std::vector<const WorkloadInfo*> result;
  result.reserve(workloads_.size());
  for (const auto& [code, entry] : workloads_) result.push_back(&entry);
  return result;
}

WorkloadConfig workloadConfigFromFlags(util::Flags& flags,
                                       const WorkloadInfo& info) {
  WorkloadConfig config;
  config.seed = flags.getUint64("seed", 42);
  for (const WorkloadParamSpec& spec : info.params) {
    if (flags.has(spec.name)) {
      config.overrides[spec.name] = flags.getDouble(spec.name, spec.defaultValue);
    }
  }
  return config;
}

}  // namespace xdgp::api
