#include "api/engine_registry.h"

#include <stdexcept>
#include <utility>

namespace xdgp::api {

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

EngineRegistry::EngineRegistry() {
  add({.code = core::engineKindCode(core::EngineKind::kGreedy),
       .summary = "the paper's greedy neighbour-majority heuristic "
                  "(quota-capped, frontier-driven)",
       .kind = core::EngineKind::kGreedy,
       .elasticK = false});
  add({.code = core::engineKindCode(core::EngineKind::kLpa),
       .summary = "Spinner-style weighted label propagation "
                  "(balance-penalised scores; live grow/shrink of k)",
       .kind = core::EngineKind::kLpa,
       .elasticK = true});
}

void EngineRegistry::add(EngineInfo info) {
  if (info.code.empty()) {
    throw std::invalid_argument("EngineRegistry: empty engine code");
  }
  if (engines_.contains(info.code)) {
    throw std::invalid_argument("EngineRegistry: duplicate engine code '" +
                                info.code + "'");
  }
  engines_.emplace(info.code, std::move(info));
}

bool EngineRegistry::has(const std::string& code) const {
  return engines_.contains(code);
}

const EngineInfo& EngineRegistry::info(const std::string& code) const {
  const auto it = engines_.find(code);
  if (it == engines_.end()) {
    std::string known;
    for (const auto& [key, value] : engines_) {
      known += (known.empty() ? "" : ", ") + key;
    }
    throw std::invalid_argument("unknown engine '" + code +
                                "' (known: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> EngineRegistry::codes() const {
  std::vector<std::string> codes;
  codes.reserve(engines_.size());
  for (const auto& [code, info] : engines_) codes.push_back(code);
  return codes;
}

std::vector<const EngineInfo*> EngineRegistry::infos() const {
  std::vector<const EngineInfo*> infos;
  infos.reserve(engines_.size());
  for (const auto& [code, info] : engines_) infos.push_back(&info);
  return infos;
}

}  // namespace xdgp::api
