#include "api/partitioner_registry.h"

#include <stdexcept>
#include <utility>

#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "partition/mnn_partitioner.h"
#include "partition/multilevel_partitioner.h"
#include "partition/random_partitioner.h"
#include "partition/region_growing_partitioner.h"

namespace xdgp::api {

namespace {

template <typename Strategy>
std::function<std::unique_ptr<partition::InitialPartitioner>()> factoryOf() {
  return [] { return std::make_unique<Strategy>(); };
}

}  // namespace

PartitionerRegistry::PartitionerRegistry() {
  add({.code = "HSH",
       .summary = "hash H(v) mod k — the uncoordinated industry default, "
                  "statistically balanced, worst cut",
       .respectsCapacity = false,
       .deterministicGivenSeed = true,
       .make = factoryOf<partition::HashPartitioner>()});
  add({.code = "RND",
       .summary = "random permutation dealt round-robin — balanced to one "
                  "vertex, locality-blind",
       .respectsCapacity = true,
       .deterministicGivenSeed = true,
       .make = factoryOf<partition::RandomPartitioner>()});
  add({.code = "DGR",
       .summary = "linear deterministic greedy stream (Stanton & Kliot) — "
                  "neighbour affinity damped by load",
       .respectsCapacity = true,
       .deterministicGivenSeed = true,
       .make = factoryOf<partition::LdgPartitioner>()});
  add({.code = "FNL",
       .summary = "Fennel stream (Tsourakakis) — neighbour affinity minus "
                  "the marginal convex load cost, gamma = 1.5",
       .respectsCapacity = true,
       .deterministicGivenSeed = true,
       .make = factoryOf<partition::FennelPartitioner>()});
  add({.code = "MNN",
       .summary = "minimum-number-of-neighbours stream (Grace) — scatters "
                  "neighbourhoods, a hard starting point",
       .respectsCapacity = true,
       .deterministicGivenSeed = true,
       .make = factoryOf<partition::MnnPartitioner>()});
  add({.code = "METIS",
       .summary = "multilevel coarsen + region-grow + FM refine — the "
                  "centralised METIS-family reference",
       .respectsCapacity = true,
       .deterministicGivenSeed = true,
       .make = factoryOf<partition::MultilevelPartitioner>()});
  add({.code = "RGR",
       .summary = "balanced BFS region growing — cheap locality, "
                  "statistical balance only",
       .respectsCapacity = false,
       .deterministicGivenSeed = true,
       .make = factoryOf<partition::RegionGrowingPartitioner>()});
}

PartitionerRegistry& PartitionerRegistry::instance() {
  static PartitionerRegistry registry;
  return registry;
}

void PartitionerRegistry::add(StrategyInfo info) {
  if (info.code.empty() || !info.make) {
    throw std::invalid_argument(
        "PartitionerRegistry: a strategy needs a code and a factory");
  }
  const auto [it, inserted] = strategies_.emplace(info.code, std::move(info));
  if (!inserted) {
    throw std::invalid_argument("PartitionerRegistry: duplicate strategy code " +
                                it->first);
  }
}

bool PartitionerRegistry::has(const std::string& code) const {
  return strategies_.count(code) > 0;
}

const StrategyInfo& PartitionerRegistry::info(const std::string& code) const {
  const auto it = strategies_.find(code);
  if (it == strategies_.end()) {
    std::string known;
    for (const auto& [key, entry] : strategies_) {
      known += (known.empty() ? "" : ", ") + key;
    }
    throw std::invalid_argument("unknown partitioning strategy '" + code +
                                "' (known: " + known + ")");
  }
  return it->second;
}

std::unique_ptr<partition::InitialPartitioner> PartitionerRegistry::create(
    const std::string& code) const {
  return info(code).make();
}

std::vector<std::string> PartitionerRegistry::codes() const {
  std::vector<std::string> result;
  result.reserve(strategies_.size());
  for (const auto& [code, entry] : strategies_) result.push_back(code);
  return result;
}

std::vector<const StrategyInfo*> PartitionerRegistry::infos() const {
  std::vector<const StrategyInfo*> result;
  result.reserve(strategies_.size());
  for (const auto& [code, entry] : strategies_) result.push_back(&entry);
  return result;
}

metrics::Assignment initialAssignment(const graph::DynamicGraph& g,
                                      const std::string& code, std::size_t k,
                                      double capacityFactor, std::uint64_t seed) {
  util::Rng rng(seed);
  const graph::CsrGraph csr = graph::CsrGraph::fromGraph(g);
  return PartitionerRegistry::instance().create(code)->partition(
      partition::PartitionRequest{csr, k, capacityFactor, rng});
}

}  // namespace xdgp::api
