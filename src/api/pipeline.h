#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/stream.h"
#include "core/engine.h"
#include "graph/dynamic_graph.h"
#include "metrics/balance.h"
#include "metrics/cuts.h"

namespace xdgp::api {

/// Structured outcome of one Pipeline run: everything the CLI prints, the
/// bench harnesses aggregate, and the tests assert, in one value.
struct RunReport {
  std::string source;    ///< edge-list path, dataset name, or "<in-memory>"
  std::string strategy;  ///< registry code, or the loaded assignment path
  std::size_t k = 0;
  std::size_t vertices = 0;
  std::size_t edges = 0;

  double initialCutRatio = 0.0;
  std::size_t initialCutEdges = 0;
  metrics::BalanceReport initialBalance;

  double finalCutRatio = 0.0;
  std::size_t finalCutEdges = 0;
  metrics::BalanceReport finalBalance;

  bool adapted = false;  ///< false for partition-only runs
  std::size_t iterationsRun = 0;
  std::size_t convergenceIteration = 0;
  bool converged = true;  ///< partition-only runs count as converged

  double loadSeconds = 0.0;       ///< graph read/generate + CSR snapshot
  double partitionSeconds = 0.0;  ///< initial strategy (or assignment load)
  double adaptSeconds = 0.0;

  metrics::Assignment assignment;  ///< final per-vertex assignment

  /// Human rendering (the CLI's output format).
  void renderText(std::ostream& out) const;

  /// CSV rendering, aligned with csvHeader().
  [[nodiscard]] static const std::vector<std::string>& csvHeader();
  [[nodiscard]] std::vector<std::string> csvRow() const;
};

class Session;

/// Fluent front door to the graph → initial partition → adaptive → metrics
/// pipeline every entry point used to hand-wire:
///
///   RunReport report = Pipeline::fromEdgeList("web.el")
///                          .initial("DGR").k(9).seed(7)
///                          .adaptive().run();
///
/// run() executes once and returns the report; start() instead hands back a
/// live Session wrapping the adaptive engine, for callers that stream
/// updates. A Pipeline is single-use: run()/start() consume it.
class Pipeline {
 public:
  /// Graph sources (exactly one per pipeline).
  [[nodiscard]] static Pipeline fromEdgeList(std::string path);
  [[nodiscard]] static Pipeline fromDataset(std::string name);  ///< Table-1 name
  [[nodiscard]] static Pipeline fromGraph(graph::DynamicGraph g);

  /// Initial partitioning by registry strategy code (default "HSH").
  Pipeline& initial(std::string strategyCode);

  /// Initial partitioning from a saved assignment file; k comes from the
  /// file's header. Combining this with an explicit k() that disagrees with
  /// the file is a hard error at run time — never silently overridden.
  Pipeline& initialFromFile(std::string path);

  /// Initial partitioning from an in-memory assignment with its partition
  /// count — the checkpoint-restore path (serve::PartitionService), which
  /// holds the deserialized assignment and must not round-trip it through a
  /// temp file. Same k-mismatch rules as initialFromFile.
  Pipeline& initialFromAssignment(metrics::Assignment assignment, std::size_t k);

  Pipeline& k(std::size_t partitions);
  Pipeline& capacityFactor(double factor);
  Pipeline& seed(std::uint64_t value);

  /// Enables the adaptive stage. The options' k / capacityFactor / seed
  /// fields are overwritten from the pipeline (single source of truth);
  /// everything else (willingness, window, threads, balance mode, the
  /// engine selector, ...) is taken as given — options.engine picks the
  /// greedy engine or the Spinner-style LPA one (core::makeEngine).
  Pipeline& adaptive(core::AdaptiveOptions options = {});
  Pipeline& maxIterations(std::size_t iterations);

  /// Executes the configured stages and returns the report.
  [[nodiscard]] RunReport run();

  /// Builds the graph, initial partition, and adaptive engine, but runs no
  /// iterations: the caller drives the Session (streaming workloads).
  [[nodiscard]] Session start();

 private:
  Pipeline() = default;

  struct Prepared {
    graph::DynamicGraph graph;
    metrics::Assignment initial;
    RunReport report;
  };

  [[nodiscard]] graph::DynamicGraph buildGraph();
  [[nodiscard]] Prepared prepare();
  [[nodiscard]] core::AdaptiveOptions engineOptions() const;

  enum class Source { kEdgeList, kDataset, kGraph };
  Source source_ = Source::kGraph;
  std::string sourcePath_;
  graph::DynamicGraph graph_;

  std::string strategy_ = "HSH";
  bool strategySet_ = false;
  std::string assignmentPath_;
  std::optional<metrics::Assignment> assignmentValue_;
  std::size_t assignmentValueK_ = 0;

  std::size_t k_ = 9;
  bool kSet_ = false;
  double capacityFactor_ = 1.1;
  std::uint64_t seed_ = 42;

  std::optional<core::AdaptiveOptions> adaptive_;
  std::size_t maxIterations_ = 20'000;

  friend class Session;
};

/// Live handle over a started pipeline: the adaptive engine plus the report
/// bookkeeping, for callers that interleave convergence runs with updates.
class Session {
 public:
  /// Runs until convergence (or the pipeline's maxIterations).
  core::ConvergenceResult runToConvergence();

  /// Forwards to the engine, re-arming convergence tracking.
  std::size_t applyUpdates(const std::vector<graph::UpdateEvent>& events);

  /// Drives the windowed drain -> apply -> converge loop over `events` and
  /// returns the per-window timeline (see api/stream.h). Windowing, edge
  /// expiry, per-window rescaling, and the static (adapt=false) baseline
  /// all come from `options`; the session's report() keeps accumulating
  /// across the run as if the caller had driven each window by hand.
  TimelineReport stream(graph::UpdateStream events, const StreamOptions& options);

  /// One window of the stream() loop: applies the batch's events, optionally
  /// rescales capacities and converges, and returns the finished report row.
  /// stream() is exactly a Streamer loop over this; the serving layer
  /// (serve::PartitionService) calls it per window between snapshot swaps,
  /// so serving and batch streaming share one code path by construction.
  ///
  /// `touched` (optional) receives the window's per-vertex change log —
  /// every vertex whose adjacency/liveness or partition value changed, from
  /// the engine's deduplicated trackers. The trackers are drained every
  /// window either way (so they never accumulate across windows); passing
  /// nullptr simply discards the log. Serving uses the sets to cut
  /// O(changed) snapshot overlays instead of full CSR rebuilds.
  WindowReport streamWindow(const WindowBatch& batch, const StreamOptions& options,
                            core::TouchSet* touched = nullptr);

  /// Re-provisions capacities after growth (see Engine::rescaleCapacity).
  void rescaleCapacity();

  [[nodiscard]] double cutRatio() const;
  [[nodiscard]] core::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const core::Engine& engine() const noexcept {
    return *engine_;
  }

  /// Report snapshot: initial-stage fields are frozen from start() time,
  /// final-stage fields reflect the engine's current state.
  [[nodiscard]] RunReport report() const;

 private:
  friend class Pipeline;
  Session(std::unique_ptr<core::Engine> engine, RunReport base,
          std::size_t maxIterations);

  std::unique_ptr<core::Engine> engine_;
  RunReport base_;
  std::size_t maxIterations_;
  double adaptSeconds_ = 0.0;
  std::size_t iterationsRun_ = 0;
  bool ranToConvergence_ = false;
  bool converged_ = false;
};

}  // namespace xdgp::api
