#include "api/pipeline.h"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "api/partitioner_registry.h"
#include "gen/dataset_catalog.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "partition/assignment_io.h"
#include "util/table.h"
#include "util/timer.h"

namespace xdgp::api {

// ------------------------------------------------------------- RunReport

void RunReport::renderText(std::ostream& out) const {
  const auto balanceLine = [&](const metrics::BalanceReport& balance) {
    out << "  imbalance: " << util::fmt(balance.imbalance, 3) << "  (max load "
        << balance.maxLoad << ", min " << balance.minLoad << ")\n";
  };
  out << source << ": " << vertices << " vertices, " << edges << " edges, k=" << k
      << "\n";
  out << "initial (" << strategy << ", " << util::fmt(partitionSeconds, 2)
      << "s):\n"
      << "  cut ratio: " << util::fmt(initialCutRatio, 4) << "  ("
      << initialCutEdges << " of " << edges << " edges)\n";
  balanceLine(initialBalance);
  if (!adapted) return;
  out << "adapted (" << iterationsRun << " iterations, converged at "
      << convergenceIteration << ", " << util::fmt(adaptSeconds, 2) << "s"
      << (converged ? "" : ", NOT converged") << "):\n"
      << "  cut ratio: " << util::fmt(finalCutRatio, 4) << "  (" << finalCutEdges
      << " of " << edges << " edges)\n";
  balanceLine(finalBalance);
}

const std::vector<std::string>& RunReport::csvHeader() {
  static const std::vector<std::string> header{
      "source",         "strategy",        "k",
      "vertices",       "edges",           "initial_cut_ratio",
      "final_cut_ratio", "initial_imbalance", "final_imbalance",
      "iterations",     "convergence_iteration", "converged",
      "load_s",         "partition_s",     "adapt_s"};
  return header;
}

std::vector<std::string> RunReport::csvRow() const {
  return {source,
          strategy,
          std::to_string(k),
          std::to_string(vertices),
          std::to_string(edges),
          util::fmt(initialCutRatio, 4),
          util::fmt(finalCutRatio, 4),
          util::fmt(initialBalance.imbalance, 4),
          util::fmt(finalBalance.imbalance, 4),
          std::to_string(iterationsRun),
          std::to_string(convergenceIteration),
          converged ? "1" : "0",
          util::fmt(loadSeconds, 4),
          util::fmt(partitionSeconds, 4),
          util::fmt(adaptSeconds, 4)};
}

// -------------------------------------------------------------- Pipeline

Pipeline Pipeline::fromEdgeList(std::string path) {
  Pipeline pipeline;
  pipeline.source_ = Source::kEdgeList;
  pipeline.sourcePath_ = std::move(path);
  return pipeline;
}

Pipeline Pipeline::fromDataset(std::string name) {
  Pipeline pipeline;
  pipeline.source_ = Source::kDataset;
  pipeline.sourcePath_ = std::move(name);
  return pipeline;
}

Pipeline Pipeline::fromGraph(graph::DynamicGraph g) {
  Pipeline pipeline;
  pipeline.source_ = Source::kGraph;
  pipeline.graph_ = std::move(g);
  return pipeline;
}

Pipeline& Pipeline::initial(std::string strategyCode) {
  strategy_ = std::move(strategyCode);
  strategySet_ = true;
  return *this;
}

Pipeline& Pipeline::initialFromFile(std::string path) {
  assignmentPath_ = std::move(path);
  return *this;
}

Pipeline& Pipeline::initialFromAssignment(metrics::Assignment assignment,
                                          std::size_t k) {
  assignmentValue_ = std::move(assignment);
  assignmentValueK_ = k;
  return *this;
}

Pipeline& Pipeline::k(std::size_t partitions) {
  k_ = partitions;
  kSet_ = true;
  return *this;
}

Pipeline& Pipeline::capacityFactor(double factor) {
  capacityFactor_ = factor;
  return *this;
}

Pipeline& Pipeline::seed(std::uint64_t value) {
  seed_ = value;
  return *this;
}

Pipeline& Pipeline::adaptive(core::AdaptiveOptions options) {
  adaptive_ = options;
  return *this;
}

Pipeline& Pipeline::maxIterations(std::size_t iterations) {
  maxIterations_ = iterations;
  return *this;
}

graph::DynamicGraph Pipeline::buildGraph() {
  switch (source_) {
    case Source::kEdgeList:
      return graph::readEdgeList(sourcePath_);
    case Source::kDataset: {
      util::Rng rng(seed_);
      return gen::datasetByName(sourcePath_).make(rng);
    }
    case Source::kGraph:
      return std::move(graph_);
  }
  throw std::logic_error("Pipeline: unreachable source");
}

Pipeline::Prepared Pipeline::prepare() {
  const int initialSources = (strategySet_ ? 1 : 0) +
                             (assignmentPath_.empty() ? 0 : 1) +
                             (assignmentValue_ ? 1 : 0);
  if (initialSources > 1) {
    throw std::invalid_argument(
        "Pipeline: initial(strategy), initialFromFile(path), and "
        "initialFromAssignment(...) are mutually exclusive");
  }

  Prepared prepared;
  RunReport& report = prepared.report;
  report.source = source_ == Source::kGraph ? "<in-memory>" : sourcePath_;

  util::WallTimer loadTimer;
  prepared.graph = buildGraph();
  const graph::CsrGraph csr = graph::CsrGraph::fromGraph(prepared.graph);
  report.vertices = prepared.graph.numVertices();
  report.edges = prepared.graph.numEdges();
  report.loadSeconds = loadTimer.seconds();

  if (k_ == 0) throw std::invalid_argument("Pipeline: k must be positive");

  util::WallTimer partitionTimer;
  if (!assignmentPath_.empty() || assignmentValue_) {
    partition::LoadedAssignment loaded;
    std::string origin;
    if (assignmentValue_) {
      loaded.assignment = std::move(*assignmentValue_);
      loaded.k = assignmentValueK_;
      origin = "<in-memory assignment>";
    } else {
      loaded = partition::readAssignment(assignmentPath_);
      origin = assignmentPath_;
    }
    if (kSet_ && k_ != loaded.k) {
      throw std::invalid_argument(
          "Pipeline: requested k=" + std::to_string(k_) + " but assignment '" +
          origin + "' was written with k=" + std::to_string(loaded.k) +
          " — drop the explicit k or re-partition with the requested one");
    }
    if (loaded.k == 0) {
      throw std::invalid_argument("Pipeline: assignment '" + origin +
                                  "' declares k=0");
    }
    k_ = loaded.k;
    prepared.initial = std::move(loaded.assignment);
    prepared.initial.resize(prepared.graph.idBound(), graph::kNoPartition);
    report.strategy = origin;
  } else {
    util::Rng rng(seed_);
    prepared.initial = PartitionerRegistry::instance().create(strategy_)->partition(
        partition::PartitionRequest{csr, k_, capacityFactor_, rng});
    report.strategy = strategy_;
  }
  report.k = k_;
  report.partitionSeconds = partitionTimer.seconds();

  report.initialCutEdges = metrics::cutEdges(csr, prepared.initial);
  report.initialCutRatio = metrics::cutRatio(csr, prepared.initial);
  report.initialBalance = metrics::balanceReport(prepared.initial, k_);
  report.finalCutEdges = report.initialCutEdges;
  report.finalCutRatio = report.initialCutRatio;
  report.finalBalance = report.initialBalance;
  return prepared;
}

core::AdaptiveOptions Pipeline::engineOptions() const {
  core::AdaptiveOptions options = adaptive_.value_or(core::AdaptiveOptions{});
  options.k = k_;
  options.capacityFactor = capacityFactor_;
  options.seed = seed_;
  return options;
}

RunReport Pipeline::run() {
  Prepared prepared = prepare();
  RunReport report = std::move(prepared.report);
  if (!adaptive_) {
    report.assignment = std::move(prepared.initial);
    return report;
  }

  core::AdaptiveOptions options = engineOptions();
  options.recordSeries = false;  // run() reports aggregates, not the series
  util::WallTimer adaptTimer;
  const std::unique_ptr<core::Engine> engine = core::makeEngine(
      std::move(prepared.graph), std::move(prepared.initial), options);
  const core::ConvergenceResult result = engine->runToConvergence(maxIterations_);
  report.adaptSeconds = adaptTimer.seconds();

  report.adapted = true;
  report.iterationsRun = result.iterationsRun;
  report.convergenceIteration = result.convergenceIteration;
  report.converged = result.converged;
  report.assignment = engine->state().assignment();
  report.finalCutEdges = engine->state().cutEdges();
  report.finalCutRatio = engine->cutRatio();
  report.finalBalance = metrics::balanceReport(report.assignment, k_);
  return report;
}

Session Pipeline::start() {
  Prepared prepared = prepare();
  auto engine = core::makeEngine(std::move(prepared.graph),
                                 std::move(prepared.initial), engineOptions());
  return Session(std::move(engine), std::move(prepared.report), maxIterations_);
}

// --------------------------------------------------------------- Session

Session::Session(std::unique_ptr<core::Engine> engine, RunReport base,
                 std::size_t maxIterations)
    : engine_(std::move(engine)), base_(std::move(base)),
      maxIterations_(maxIterations) {}

core::ConvergenceResult Session::runToConvergence() {
  util::WallTimer timer;
  const core::ConvergenceResult result = engine_->runToConvergence(maxIterations_);
  adaptSeconds_ += timer.seconds();
  iterationsRun_ += result.iterationsRun;
  ranToConvergence_ = true;
  converged_ = result.converged;
  return result;
}

std::size_t Session::applyUpdates(const std::vector<graph::UpdateEvent>& events) {
  // Structural churn re-arms the engine's convergence tracking; drop our
  // cached verdict so report() reflects the engine again.
  ranToConvergence_ = false;
  converged_ = false;
  return engine_->applyUpdates(events);
}

void Session::rescaleCapacity() { engine_->rescaleCapacity(); }

double Session::cutRatio() const { return engine_->cutRatio(); }

RunReport Session::report() const {
  RunReport report = base_;
  report.vertices = engine_->graph().numVertices();
  report.edges = engine_->graph().numEdges();
  report.k = engine_->k();  // live: elastic resizes move it off base_.k
  report.adapted = ranToConvergence_ || engine_->iteration() > 0;
  report.iterationsRun = iterationsRun_ > 0 ? iterationsRun_ : engine_->iteration();
  report.convergenceIteration = engine_->lastActiveIteration();
  report.converged = ranToConvergence_ ? converged_ : engine_->converged();
  report.adaptSeconds = adaptSeconds_;
  report.assignment = engine_->state().assignment();
  report.finalCutEdges = engine_->state().cutEdges();
  report.finalCutRatio = engine_->cutRatio();
  report.finalBalance =
      metrics::balanceReport(report.assignment, engine_->activeMask());
  return report;
}

}  // namespace xdgp::api
