#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/stream.h"
#include "graph/dynamic_graph.h"
#include "graph/update_stream.h"

namespace xdgp::util {
class Flags;
}

namespace xdgp::api {

/// One numeric knob of a workload: the metadata the CLI help, the bench
/// flag helpers, and the registry-driven property tests all read.
struct WorkloadParamSpec {
  std::string name;     ///< flag-style key, e.g. "users", "subscribers"
  std::string summary;  ///< one-line human description
  double defaultValue = 0.0;
};

/// Instantiation inputs for WorkloadRegistry::make. Overrides are validated
/// against the workload's declared params — a typo fails loudly with the
/// menu in hand, exactly like an unknown strategy code.
struct WorkloadConfig {
  std::uint64_t seed = 42;
  std::string eventsPath;  ///< REPLAY: the event file to replay (required)
  std::string graphPath;   ///< REPLAY: optional initial edge list
  std::map<std::string, double> overrides;  ///< by WorkloadParamSpec name
};

/// Resolved parameter view handed to workload factories: every declared
/// param, defaults merged with the config's overrides.
class WorkloadParams {
 public:
  explicit WorkloadParams(std::map<std::string, double> values)
      : values_(std::move(values)) {}

  /// Throws std::invalid_argument on a name the workload never declared —
  /// factories cannot silently read knobs that are invisible to the CLI.
  [[nodiscard]] double get(const std::string& name) const;

  /// get() rounded to a non-negative integer (sizes and counts).
  [[nodiscard]] std::size_t count(const std::string& name) const;

 private:
  std::map<std::string, double> values_;
};

/// A made workload: the initial graph, the update stream that churns it,
/// and the windowing defaults that suit the source's time scale.
struct Workload {
  std::string code;
  graph::DynamicGraph initial;
  graph::UpdateStream stream;
  /// Per-source windowing/expiry defaults (window span in the stream's own
  /// time unit; Fig. 8-style expiry for the mention graph). Callers start
  /// from these and override what they need.
  StreamOptions suggested;
};

/// Catalog entry for one stream source: metadata plus the factory.
struct WorkloadInfo {
  std::string code;     ///< stable lookup key, e.g. "TWEET", "CDR"
  std::string summary;  ///< one-line human description for --help output
  std::vector<WorkloadParamSpec> params;
  /// True when the same seed (and params) yields the identical initial
  /// graph and event stream — every built-in; a future workload wrapping a
  /// live feed would opt out, which exempts it from the determinism
  /// property test.
  bool deterministicGivenSeed = true;
  /// True when config.eventsPath is required (REPLAY).
  bool needsEventsPath = false;
  std::function<Workload(const WorkloadConfig&, const WorkloadParams&)> make;
};

/// The process-wide catalog of streaming workloads, mirroring
/// PartitionerRegistry: built-ins (TWEET, CDR, FFIRE, CHURN, REPLAY)
/// register on first access, extensions self-register through
/// WorkloadRegistration, and the registry-driven suite in
/// tests/workload_test.cpp picks every newcomer up for free.
class WorkloadRegistry {
 public:
  static WorkloadRegistry& instance();

  /// Adds a workload; throws std::invalid_argument on duplicate codes, a
  /// missing factory, or duplicate param names.
  void add(WorkloadInfo info);

  [[nodiscard]] bool has(const std::string& code) const;

  /// Metadata lookup; throws std::invalid_argument naming the known codes
  /// when `code` is not registered.
  [[nodiscard]] const WorkloadInfo& info(const std::string& code) const;

  /// Instantiates the workload behind `code`: validates the config's
  /// overrides against the declared params (and eventsPath where required),
  /// then calls the factory with the merged parameter view.
  [[nodiscard]] Workload make(const std::string& code,
                              const WorkloadConfig& config = {}) const;

  /// All registered codes, sorted.
  [[nodiscard]] std::vector<std::string> codes() const;

  /// All entries, sorted by code (stable pointers into the registry).
  [[nodiscard]] std::vector<const WorkloadInfo*> infos() const;

 private:
  WorkloadRegistry();

  std::map<std::string, WorkloadInfo> workloads_;
};

/// Static-initialisation hook for self-registering workloads:
///   namespace { const api::WorkloadRegistration reg{{.code = "XYZ", ...}}; }
struct WorkloadRegistration {
  explicit WorkloadRegistration(WorkloadInfo info) {
    WorkloadRegistry::instance().add(std::move(info));
  }
};

/// The shared Flags -> WorkloadConfig translation: reads `--seed` plus a
/// `--<param>=` override for every knob the workload declares, so the CLI
/// and the bench drivers expose identical registry-driven flag surfaces (a
/// new workload param becomes a flag everywhere, with no other change).
[[nodiscard]] WorkloadConfig workloadConfigFromFlags(util::Flags& flags,
                                                     const WorkloadInfo& info);

}  // namespace xdgp::api
