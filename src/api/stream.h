#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/partition_state.h"
#include "graph/edge_expiry_window.h"
#include "graph/update_stream.h"
#include "metrics/balance.h"
#include "pregel/types.h"

namespace xdgp::api {

/// How a Session (or any other consumer) windows an update stream.
///
/// Exactly one of windowSpan / windowEvents must be positive: windows are
/// cut either by stream time — window i covers (origin + i·span,
/// origin + (i+1)·span] in the stream's own time unit (seconds for tweets,
/// weeks for CDR, batch index for synthetic growth), with the origin
/// anchored at the first pending event's window boundary (a multiple of
/// span, so epoch-stamped streams do not pay for an empty prefix) — or by
/// event count.
struct StreamOptions {
  double windowSpan = 0.0;        ///< time-windowing: span per window
  std::size_t windowEvents = 0;   ///< count-windowing: events per window
  std::size_t maxWindows = 0;     ///< 0 = run until the stream is exhausted
  /// > 0: sliding-window edge expiry — an edge not re-observed for this
  /// long is removed (graph::EdgeExpiryWindow), the Fig. 8 mention-graph
  /// semantics. Expiry removals are folded into each window's batch.
  double expirySpan = 0.0;
  /// false: apply updates but never converge — the static baseline whose
  /// partitioning erodes as the graph churns (Figs. 8/9's comparison arm).
  bool adapt = true;
  /// Re-provision capacities each window before converging, so growth never
  /// wedges the quota system (AdaptiveEngine::rescaleCapacity).
  bool rescaleEachWindow = true;
  /// Per-window convergence cap; 0 = the session's maxIterations.
  std::size_t maxIterationsPerWindow = 0;
};

/// One window's worth of stream, ready to ingest: the drained events plus
/// any expiry removals, with the window's position in stream time.
struct WindowBatch {
  std::size_t index = 0;
  double start = 0.0;  ///< exclusive, in stream time
  double end = 0.0;    ///< inclusive, in stream time
  std::vector<graph::UpdateEvent> events;  ///< drained + expiry removals
  std::size_t drained = 0;  ///< events that came from the stream itself
  std::size_t expired = 0;  ///< RemoveEdge events appended by expiry
  bool streamExhausted = false;  ///< no further windows will follow
};

/// The one ingest loop: windows an UpdateStream by time or event count and
/// folds sliding-window edge expiry into each batch. Every streaming
/// consumer — Session::stream(), the CLI `stream` subcommand, and the
/// pregel-based figure drivers that interleave application supersteps —
/// pulls windows from here instead of hand-wiring drain/expiry loops.
class Streamer {
 public:
  /// Throws std::invalid_argument unless exactly one windowing mode is set.
  Streamer(graph::UpdateStream stream, StreamOptions options);

  /// The next window, or nullopt when the run is over: the maxWindows cap
  /// is reached, or the stream is exhausted. Time-windowed streams emit
  /// empty windows across event gaps — real time passes, and expiry still
  /// advances — and, when maxWindows sets an explicit horizon, across the
  /// quiet tail after the last event too (fig8's fixed bucket count). In
  /// count mode an empty window is meaningless, so exhaustion always ends
  /// the run.
  [[nodiscard]] std::optional<WindowBatch> next();

  [[nodiscard]] const StreamOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t windowsEmitted() const noexcept { return index_; }

 private:
  graph::UpdateStream stream_;
  StreamOptions options_;
  std::optional<graph::EdgeExpiryWindow> expiry_;
  std::size_t index_ = 0;
  double origin_ = 0.0;  ///< time mode: first window's start boundary
  double lastEnd_ = 0.0;
};

/// One row of a TimelineReport: the partitioning's state at the close of a
/// stream window, mirroring RunReport's vocabulary per window.
struct WindowReport {
  std::size_t index = 0;
  double start = 0.0;
  double end = 0.0;
  std::size_t eventsDrained = 0;
  std::size_t eventsExpired = 0;
  std::size_t eventsApplied = 0;  ///< events that changed the graph
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t iterations = 0;     ///< adaptive iterations run this window
  bool converged = true;
  std::size_t migrations = 0;     ///< migrations executed this window
  /// Messages lost during the window's supersteps: 0 for the algorithm-only
  /// AdaptiveEngine (it exchanges no messages) and under the deferred
  /// protocol; non-zero when a pregel-backed driver injects failures or runs
  /// the instant-migration ablation (Fig. 8 / Fig. 3 top).
  std::size_t lostMessages = 0;
  double cutRatio = 0.0;
  std::size_t cutEdges = 0;
  metrics::BalanceReport balance;
  double wallSeconds = 0.0;       ///< whole window: apply + converge + metrics

  /// CSV rendering, aligned with csvHeader().
  [[nodiscard]] static const std::vector<std::string>& csvHeader();
  [[nodiscard]] std::vector<std::string> csvRow() const;

  /// One JSON object (single line, no trailing newline).
  void renderJson(std::ostream& out) const;
};

/// Structured outcome of one streamed run: everything `xdgp stream` prints,
/// the stream benches aggregate, and the tests assert — the streaming
/// counterpart of RunReport, one row per window.
struct TimelineReport {
  std::string workload;  ///< workload registry code, or "<custom>"
  std::string strategy;  ///< initial-partitioning strategy (from the session)
  std::size_t k = 0;
  std::vector<WindowReport> windows;

  [[nodiscard]] bool empty() const noexcept { return windows.empty(); }
  [[nodiscard]] const WindowReport& front() const { return windows.front(); }
  [[nodiscard]] const WindowReport& back() const { return windows.back(); }

  /// Sum of eventsApplied over all windows.
  [[nodiscard]] std::size_t totalApplied() const noexcept;

  /// Human rendering: the per-window table plus a summary line.
  void renderText(std::ostream& out) const;

  /// CSV rendering (header + one row per window), WindowReport::csvHeader.
  void renderCsv(std::ostream& out) const;

  /// JSONL rendering: one JSON object per window per line.
  void renderJsonl(std::ostream& out) const;
};

/// Builds the WindowReport row for a pregel-backed window: the batch's
/// drain/expiry counts plus the superstep stats recorded while the window
/// was current, so migrationsExecuted and lostMessages reach the
/// timeline/CSV output instead of staying buried in Engine::history().
/// `supersteps` is the history slice the window ran (its length becomes the
/// row's iteration count); graph metrics are read from the engine's current
/// graph and partition state.
[[nodiscard]] WindowReport windowReportFromSupersteps(
    const WindowBatch& batch, std::size_t eventsApplied,
    std::span<const pregel::SuperstepStats> supersteps,
    const graph::DynamicGraph& g, const core::PartitionState& state,
    std::size_t k, bool converged, double wallSeconds);

}  // namespace xdgp::api
