#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "epartition/edge_partitioner.h"
#include "graph/dynamic_graph.h"

namespace xdgp::api {

/// Catalog entry for one edge-partitioning strategy: the metadata every
/// front end (CLI help, the edge-partition bench, the registry-driven
/// property tests in tests/epartition_test.cpp) reads, plus the factory.
/// The edge-side sibling of StrategyInfo.
struct EdgeStrategyInfo {
  std::string code;     ///< stable lookup key, e.g. "DBH", "HDRF"
  std::string summary;  ///< one-line human description for --help output
  /// True when the strategy guarantees every partition's edge load stays
  /// within edgeCapacity(|E|, k, balanceFactor); false for hashing
  /// strategies (HSH, DBH) whose balance is statistical. The epartition
  /// property suite enforces whichever is promised.
  bool respectsBalanceCap = false;
  /// True when the same seed yields the identical assignment (all current
  /// strategies; opting out exempts a strategy from the determinism
  /// property test).
  bool deterministicGivenSeed = true;
  std::function<std::unique_ptr<epartition::EdgePartitioner>()> make;
};

/// The process-wide catalog of edge-partitioning strategies, mirroring
/// PartitionerRegistry (the PR 2 pattern): built-ins (HSH, DBH, HDRF, NE,
/// SNE) register on first access, extensions self-register through
/// EdgeStrategyRegistration, and the registry-driven suite picks every
/// newcomer up for free. Kept separate from the vertex registry — the two
/// families return different representations (Assignment vs
/// EdgeAssignment) and report different quality metrics (cut ratio vs
/// replication factor) — so codes like "HSH" can name the analogous
/// baseline on both sides without colliding.
class EdgePartitionerRegistry {
 public:
  static EdgePartitionerRegistry& instance();

  /// Adds a strategy; throws std::invalid_argument on duplicate codes or a
  /// missing factory.
  void add(EdgeStrategyInfo info);

  [[nodiscard]] bool has(const std::string& code) const;

  /// Metadata lookup; throws std::invalid_argument naming the known codes
  /// when `code` is not registered (typos fail with the menu in hand).
  [[nodiscard]] const EdgeStrategyInfo& info(const std::string& code) const;

  /// Instantiates the strategy behind `code` (throws like info()).
  [[nodiscard]] std::unique_ptr<epartition::EdgePartitioner> create(
      const std::string& code) const;

  /// All registered codes, sorted.
  [[nodiscard]] std::vector<std::string> codes() const;

  /// All entries, sorted by code (stable pointers into the registry).
  [[nodiscard]] std::vector<const EdgeStrategyInfo*> infos() const;

 private:
  EdgePartitionerRegistry();

  std::map<std::string, EdgeStrategyInfo> strategies_;
};

/// Static-initialisation hook for self-registering edge strategies:
///   namespace { const api::EdgeStrategyRegistration reg{{.code = "XYZ", ...}}; }
struct EdgeStrategyRegistration {
  explicit EdgeStrategyRegistration(EdgeStrategyInfo info) {
    EdgePartitionerRegistry::instance().add(std::move(info));
  }
};

/// One-call edge partitioning over a dynamic graph, registry-routed — the
/// edge-side sibling of initialAssignment.
[[nodiscard]] epartition::EdgeAssignment edgePartition(
    const graph::DynamicGraph& g, const std::string& code, std::size_t k,
    double balanceFactor, std::uint64_t seed);

}  // namespace xdgp::api
