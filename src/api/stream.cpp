#include "api/stream.h"

#include <cmath>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "api/pipeline.h"
#include "util/table.h"
#include "util/timer.h"

namespace xdgp::api {

// -------------------------------------------------------------- Streamer

Streamer::Streamer(graph::UpdateStream stream, StreamOptions options)
    : stream_(std::move(stream)), options_(options) {
  const bool byTime = options_.windowSpan > 0.0;
  const bool byCount = options_.windowEvents > 0;
  if (byTime == byCount) {
    throw std::invalid_argument(
        "Streamer: exactly one of windowSpan and windowEvents must be set");
  }
  if (options_.expirySpan > 0.0) expiry_.emplace(options_.expirySpan);
  if (byTime && !stream_.exhausted()) {
    // Anchor at the first pending event's window, keeping boundaries at
    // multiples of the span: a stream stamped in epoch seconds must not
    // emit millions of empty windows before its first event.
    const double first =
        stream_.events()[stream_.size() - stream_.remaining()].timestamp;
    origin_ = std::floor(first / options_.windowSpan) * options_.windowSpan;
  }
}

std::optional<WindowBatch> Streamer::next() {
  if (options_.maxWindows > 0 && index_ >= options_.maxWindows) return std::nullopt;
  if (stream_.exhausted()) {
    // Time mode with an explicit horizon: quiet tail windows still happen —
    // real time passes and expiry keeps advancing. Without a horizon (or in
    // count mode, where an empty window is meaningless) the run ends here.
    if (options_.windowSpan <= 0.0 || options_.maxWindows == 0) {
      return std::nullopt;
    }
  }

  WindowBatch batch;
  batch.index = index_;
  std::vector<graph::UpdateEvent> drained;
  if (options_.windowSpan > 0.0) {
    batch.start = origin_ + static_cast<double>(index_) * options_.windowSpan;
    batch.end = origin_ + static_cast<double>(index_ + 1) * options_.windowSpan;
    drained = stream_.drainUntil(batch.end);
  } else {
    drained = stream_.drainCount(options_.windowEvents);
    batch.start = lastEnd_;
    batch.end = drained.empty() ? lastEnd_ : drained.back().timestamp;
  }
  lastEnd_ = batch.end;
  batch.drained = drained.size();
  if (expiry_) {
    batch.events = expiry_->advance(std::move(drained), batch.end);
    batch.expired = batch.events.size() - batch.drained;
  } else {
    batch.events = std::move(drained);
  }
  ++index_;
  batch.streamExhausted =
      stream_.exhausted() &&
      (options_.windowSpan <= 0.0 || options_.maxWindows == 0 ||
       index_ >= options_.maxWindows);
  return batch;
}

// ---------------------------------------------------------- WindowReport

const std::vector<std::string>& WindowReport::csvHeader() {
  static const std::vector<std::string> header{
      "window",     "start",        "end",       "drained",   "expired",
      "applied",    "vertices",     "edges",     "iterations", "converged",
      "migrations", "lost_messages", "cut_ratio", "cut_edges", "imbalance",
      "wall_s"};
  return header;
}

std::vector<std::string> WindowReport::csvRow() const {
  return {std::to_string(index),
          util::fmt(start, 4),
          util::fmt(end, 4),
          std::to_string(eventsDrained),
          std::to_string(eventsExpired),
          std::to_string(eventsApplied),
          std::to_string(vertices),
          std::to_string(edges),
          std::to_string(iterations),
          converged ? "1" : "0",
          std::to_string(migrations),
          std::to_string(lostMessages),
          util::fmt(cutRatio, 4),
          std::to_string(cutEdges),
          util::fmt(balance.imbalance, 4),
          util::fmt(wallSeconds, 4)};
}

void WindowReport::renderJson(std::ostream& out) const {
  out << "{\"window\":" << index << ",\"start\":" << util::fmt(start, 4)
      << ",\"end\":" << util::fmt(end, 4) << ",\"drained\":" << eventsDrained
      << ",\"expired\":" << eventsExpired << ",\"applied\":" << eventsApplied
      << ",\"vertices\":" << vertices << ",\"edges\":" << edges
      << ",\"iterations\":" << iterations
      << ",\"converged\":" << (converged ? "true" : "false")
      << ",\"migrations\":" << migrations
      << ",\"lost_messages\":" << lostMessages
      << ",\"cut_ratio\":" << util::fmt(cutRatio, 4)
      << ",\"cut_edges\":" << cutEdges
      << ",\"imbalance\":" << util::fmt(balance.imbalance, 4)
      << ",\"wall_s\":" << util::fmt(wallSeconds, 6) << "}";
}

WindowReport windowReportFromSupersteps(
    const WindowBatch& batch, std::size_t eventsApplied,
    std::span<const pregel::SuperstepStats> supersteps,
    const graph::DynamicGraph& g, const core::PartitionState& state,
    std::size_t k, bool converged, double wallSeconds) {
  WindowReport window;
  window.index = batch.index;
  window.start = batch.start;
  window.end = batch.end;
  window.eventsDrained = batch.drained;
  window.eventsExpired = batch.expired;
  window.eventsApplied = eventsApplied;
  window.iterations = supersteps.size();
  for (const pregel::SuperstepStats& s : supersteps) {
    window.migrations += s.migrationsExecuted;
    window.lostMessages += s.lostMessages;
  }
  window.converged = converged;
  window.vertices = g.numVertices();
  window.edges = g.numEdges();
  window.cutEdges = state.cutEdges();
  window.cutRatio = state.cutRatio(g);
  window.balance = metrics::balanceReport(state.assignment(), k);
  window.wallSeconds = wallSeconds;
  return window;
}

// -------------------------------------------------------- TimelineReport

std::size_t TimelineReport::totalApplied() const noexcept {
  std::size_t total = 0;
  for (const WindowReport& w : windows) total += w.eventsApplied;
  return total;
}

void TimelineReport::renderText(std::ostream& out) const {
  out << workload << ": " << windows.size() << " windows, strategy " << strategy
      << ", k=" << k << "\n";
  if (windows.empty()) return;
  // The lost-message column only appears when a window actually lost some
  // (pregel-backed drivers with failures or instant migration); the
  // algorithm-only engine would show a constant 0.
  bool anyLost = false;
  for (const WindowReport& w : windows) anyLost = anyLost || w.lostMessages > 0;
  std::vector<std::string> head{"window", "t",          "applied",   "|V|",
                                "|E|",    "iters",      "migrations", "cut ratio",
                                "imbalance"};
  if (anyLost) head.insert(head.begin() + 7, "lost");
  util::TablePrinter table(head);
  for (const WindowReport& w : windows) {
    std::vector<std::string> row{std::to_string(w.index), util::fmt(w.end, 2),
                                 std::to_string(w.eventsApplied),
                                 std::to_string(w.vertices),
                                 std::to_string(w.edges),
                                 std::to_string(w.iterations),
                                 std::to_string(w.migrations),
                                 util::fmt(w.cutRatio, 3),
                                 util::fmt(w.balance.imbalance, 3)};
    if (anyLost) row.insert(row.begin() + 7, std::to_string(w.lostMessages));
    table.addRow(row);
  }
  table.print(out);
  std::size_t convergedWindows = 0;
  for (const WindowReport& w : windows) convergedWindows += w.converged ? 1 : 0;
  out << windows.size() << " windows, " << totalApplied()
      << " events applied; cut ratio " << util::fmt(front().cutRatio, 3)
      << " -> " << util::fmt(back().cutRatio, 3) << "; converged in "
      << convergedWindows << "/" << windows.size() << " windows\n";
}

void TimelineReport::renderCsv(std::ostream& out) const {
  const auto& header = WindowReport::csvHeader();
  for (std::size_t i = 0; i < header.size(); ++i) {
    out << (i ? "," : "") << header[i];
  }
  out << "\n";
  for (const WindowReport& w : windows) {
    const auto row = w.csvRow();
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i ? "," : "") << row[i];
    }
    out << "\n";
  }
}

void TimelineReport::renderJsonl(std::ostream& out) const {
  for (const WindowReport& w : windows) {
    w.renderJson(out);
    out << "\n";
  }
}

// ------------------------------------------------------- Session::stream

WindowReport Session::streamWindow(const WindowBatch& batch,
                                   const StreamOptions& options,
                                   core::TouchSet* touched) {
  const util::WallTimer timer;
  const std::size_t iterationCap = options.maxIterationsPerWindow > 0
                                       ? options.maxIterationsPerWindow
                                       : maxIterations_;
  WindowReport window;
  window.index = batch.index;
  window.start = batch.start;
  window.end = batch.end;
  window.eventsDrained = batch.drained;
  window.eventsExpired = batch.expired;
  const std::size_t migrationsBefore = engine_->totalMigrations();
  window.eventsApplied = applyUpdates(batch.events);
  if (options.rescaleEachWindow) engine_->rescaleCapacity();
  if (options.adapt) {
    // Only the convergence run counts towards the report's adaptSeconds,
    // exactly as when the caller hand-drives runToConvergence per window.
    const util::WallTimer convergeTimer;
    const core::ConvergenceResult result = engine_->runToConvergence(iterationCap);
    adaptSeconds_ += convergeTimer.seconds();
    iterationsRun_ += result.iterationsRun;
    ranToConvergence_ = true;
    converged_ = result.converged;
    window.iterations = result.iterationsRun;
    window.converged = result.converged;
  } else {
    window.converged = false;  // the static arm never adapts
  }
  window.migrations = engine_->totalMigrations() - migrationsBefore;
  window.vertices = engine_->graph().numVertices();
  window.edges = engine_->graph().numEdges();
  window.cutEdges = engine_->state().cutEdges();
  window.cutRatio = engine_->cutRatio();
  // Balance over the live active partition set: an elastic grow/shrink
  // mid-stream moves the engine off base_.k, and retired partitions must
  // not drag the minimum to zero while they drain. The O(k) overload reads
  // the incrementally maintained loads — no per-window O(|V|) scan.
  window.balance = metrics::balanceReport(engine_->state(), engine_->activeMask());
  // Drain the change log every window — whether or not the caller wants it —
  // so the trackers never carry stale entries into the next window's set.
  core::TouchSet drained = engine_->drainTouched();
  if (touched != nullptr) *touched = std::move(drained);
  window.wallSeconds = timer.seconds();
  return window;
}

TimelineReport Session::stream(graph::UpdateStream events,
                               const StreamOptions& options) {
  TimelineReport timeline;
  timeline.workload = "<custom>";
  timeline.strategy = base_.strategy;
  timeline.k = base_.k;
  Streamer streamer(std::move(events), options);
  while (std::optional<WindowBatch> batch = streamer.next()) {
    timeline.windows.push_back(streamWindow(*batch, options));
  }
  return timeline;
}

}  // namespace xdgp::api
