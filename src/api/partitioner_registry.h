#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/dynamic_graph.h"
#include "partition/partitioner.h"

namespace xdgp::api {

/// Catalog entry for one initial-partitioning strategy: the metadata every
/// front end (CLI help, bench sweeps, the registry-driven property tests)
/// reads, plus the factory that instantiates it.
struct StrategyInfo {
  std::string code;     ///< stable lookup key, e.g. "DGR", "METIS"
  std::string summary;  ///< one-line human description for --help output
  /// True when the strategy guarantees makeCapacities(n, k, capacityFactor)
  /// is respected; false for statistically-balanced strategies (HSH, RGR).
  /// The api_test property suite enforces whichever is promised.
  bool respectsCapacity = false;
  /// True when the same seed yields the identical assignment (all current
  /// strategies; a future truly-external partitioner may opt out, which
  /// exempts it from the determinism property test).
  bool deterministicGivenSeed = true;
  std::function<std::unique_ptr<partition::InitialPartitioner>()> make;
};

/// The process-wide catalog of initial-partitioning strategies.
///
/// Built-ins (HSH, RND, DGR, MNN, METIS, RGR) register on first access.
/// Extensions self-register at static-initialisation time through
/// StrategyRegistration below — no switch statement anywhere learns the new
/// code, and the registry-driven test suite picks the newcomer up for free.
/// (Built-ins live in the registry's own translation unit rather than in
/// each partitioner's: a static library drops unreferenced TUs, which would
/// silently drop their registrations too.)
class PartitionerRegistry {
 public:
  static PartitionerRegistry& instance();

  /// Adds a strategy; throws std::invalid_argument on duplicate codes or a
  /// missing factory.
  void add(StrategyInfo info);

  [[nodiscard]] bool has(const std::string& code) const;

  /// Metadata lookup; throws std::invalid_argument naming the known codes
  /// when `code` is not registered (typos fail with the menu in hand).
  [[nodiscard]] const StrategyInfo& info(const std::string& code) const;

  /// Instantiates the strategy behind `code` (throws like info()).
  [[nodiscard]] std::unique_ptr<partition::InitialPartitioner> create(
      const std::string& code) const;

  /// All registered codes, sorted.
  [[nodiscard]] std::vector<std::string> codes() const;

  /// All entries, sorted by code (stable pointers into the registry).
  [[nodiscard]] std::vector<const StrategyInfo*> infos() const;

 private:
  PartitionerRegistry();

  std::map<std::string, StrategyInfo> strategies_;
};

/// Static-initialisation hook for self-registering strategies:
///   namespace { const api::StrategyRegistration reg{{.code = "XYZ", ...}}; }
struct StrategyRegistration {
  explicit StrategyRegistration(StrategyInfo info) {
    PartitionerRegistry::instance().add(std::move(info));
  }
};

/// One-call initial assignment over a dynamic graph, registry-routed — the
/// shared replacement for the makePartitioner wiring the examples and bench
/// harnesses used to duplicate.
[[nodiscard]] metrics::Assignment initialAssignment(const graph::DynamicGraph& g,
                                                    const std::string& code,
                                                    std::size_t k,
                                                    double capacityFactor,
                                                    std::uint64_t seed);

}  // namespace xdgp::api
