#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "metrics/cuts.h"

namespace xdgp::core {
class PartitionState;
}

namespace xdgp::metrics {

/// Load-balance summary of a k-way assignment. The paper's balance goal is
/// expressed through the capacity cap (110 % of the balanced load); these
/// indices quantify how close an assignment is to that cap.
struct BalanceReport {
  std::size_t k = 0;
  std::size_t totalVertices = 0;
  std::size_t minLoad = 0;
  std::size_t maxLoad = 0;
  /// maxLoad / (totalVertices / k): 1.0 is perfectly balanced; the paper's
  /// capacity constraint keeps this <= capacityFactor (1.1 by default).
  double imbalance = 0.0;
  /// Normalised densification: stddev of loads over the balanced load.
  /// High values flag the "node densification" pathology of §2.2.
  double densification = 0.0;
};

[[nodiscard]] BalanceReport balanceReport(const Assignment& assignment, std::size_t k);

/// Elastic-k variant: balance over the *active* partitions only. The mask is
/// one byte per partition id (1 = active, mask.size() = the full id space);
/// min/max/imbalance/densification consider active entries and the balanced
/// load divides by the active count. Retired partitions mid-drain still
/// contribute their residual loads to totalVertices (every vertex counts),
/// so imbalance transiently understates until the drain completes. With all
/// partitions active this is exactly balanceReport(assignment, mask.size()).
[[nodiscard]] BalanceReport balanceReport(const Assignment& assignment,
                                          const std::vector<std::uint8_t>& activeMask);

/// O(k) overload over the loads a live core::PartitionState maintains
/// incrementally — no O(|V|) assignment scan. Produces the exact report of
/// balanceReport(state.assignment(), state.k()): removals park dead ids on
/// kNoPartition, so the incremental loads match the array scan entry for
/// entry (the balance unit test cross-checks this after churn).
[[nodiscard]] BalanceReport balanceReport(const core::PartitionState& state);

/// O(k) elastic-k variant: balance over active partitions only, from the
/// incrementally maintained loads. activeMask.size() must equal state.k().
[[nodiscard]] BalanceReport balanceReport(const core::PartitionState& state,
                                          const std::vector<std::uint8_t>& activeMask);

/// True when every partition load respects its capacity.
[[nodiscard]] bool respectsCapacities(const Assignment& assignment,
                                      const std::vector<std::size_t>& capacities);

}  // namespace xdgp::metrics
