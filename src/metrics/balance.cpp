#include "metrics/balance.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "core/partition_state.h"

namespace xdgp::metrics {

namespace {

/// The shared arithmetic: a report over per-partition loads, k = loads.size().
/// Both entry points (O(|V|) array scan, O(k) incremental loads) funnel here
/// so their answers are identical by construction — same loop order, same
/// double operations.
BalanceReport reportFromLoads(std::span<const std::size_t> loads) {
  BalanceReport report;
  const std::size_t k = loads.size();
  report.k = k;
  for (const std::size_t load : loads) report.totalVertices += load;
  if (k == 0 || report.totalVertices == 0) return report;

  report.minLoad = *std::min_element(loads.begin(), loads.end());
  report.maxLoad = *std::max_element(loads.begin(), loads.end());
  const double balanced =
      static_cast<double>(report.totalVertices) / static_cast<double>(k);
  report.imbalance = static_cast<double>(report.maxLoad) / balanced;

  double sumSq = 0.0;
  for (const std::size_t load : loads) {
    const double d = static_cast<double>(load) - balanced;
    sumSq += d * d;
  }
  report.densification = std::sqrt(sumSq / static_cast<double>(k)) / balanced;
  return report;
}

/// Elastic-k arithmetic: min/max/imbalance/densification over active
/// partitions, totalVertices over all (retired residuals still count).
BalanceReport reportFromLoads(std::span<const std::size_t> loads,
                              const std::vector<std::uint8_t>& activeMask) {
  BalanceReport report;
  report.k = activeMask.size();
  std::size_t activeCount = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    report.totalVertices += loads[i];  // residual retired loads still count
    if (activeMask[i] != 0) ++activeCount;
  }
  if (activeCount == 0 || report.totalVertices == 0) return report;

  report.minLoad = report.totalVertices;  // over-high sentinel; min over active
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (activeMask[i] == 0) continue;
    report.minLoad = std::min(report.minLoad, loads[i]);
    report.maxLoad = std::max(report.maxLoad, loads[i]);
  }
  const double balanced = static_cast<double>(report.totalVertices) /
                          static_cast<double>(activeCount);
  report.imbalance = static_cast<double>(report.maxLoad) / balanced;

  double sumSq = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (activeMask[i] == 0) continue;
    const double d = static_cast<double>(loads[i]) - balanced;
    sumSq += d * d;
  }
  report.densification =
      std::sqrt(sumSq / static_cast<double>(activeCount)) / balanced;
  return report;
}

}  // namespace

BalanceReport balanceReport(const Assignment& assignment, std::size_t k) {
  return reportFromLoads(partitionLoads(assignment, k));
}

BalanceReport balanceReport(const Assignment& assignment,
                            const std::vector<std::uint8_t>& activeMask) {
  return reportFromLoads(partitionLoads(assignment, activeMask.size()),
                         activeMask);
}

BalanceReport balanceReport(const core::PartitionState& state) {
  return reportFromLoads(state.loads());
}

BalanceReport balanceReport(const core::PartitionState& state,
                            const std::vector<std::uint8_t>& activeMask) {
  return reportFromLoads(state.loads(), activeMask);
}

bool respectsCapacities(const Assignment& assignment,
                        const std::vector<std::size_t>& capacities) {
  const std::vector<std::size_t> loads =
      partitionLoads(assignment, capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    if (loads[i] > capacities[i]) return false;
  }
  return true;
}

}  // namespace xdgp::metrics
