#include "metrics/balance.h"

#include <algorithm>
#include <cmath>

namespace xdgp::metrics {

BalanceReport balanceReport(const Assignment& assignment, std::size_t k) {
  BalanceReport report;
  report.k = k;
  const std::vector<std::size_t> loads = partitionLoads(assignment, k);
  for (const std::size_t load : loads) report.totalVertices += load;
  if (k == 0 || report.totalVertices == 0) return report;

  report.minLoad = *std::min_element(loads.begin(), loads.end());
  report.maxLoad = *std::max_element(loads.begin(), loads.end());
  const double balanced =
      static_cast<double>(report.totalVertices) / static_cast<double>(k);
  report.imbalance = static_cast<double>(report.maxLoad) / balanced;

  double sumSq = 0.0;
  for (const std::size_t load : loads) {
    const double d = static_cast<double>(load) - balanced;
    sumSq += d * d;
  }
  report.densification = std::sqrt(sumSq / static_cast<double>(k)) / balanced;
  return report;
}

bool respectsCapacities(const Assignment& assignment,
                        const std::vector<std::size_t>& capacities) {
  const std::vector<std::size_t> loads =
      partitionLoads(assignment, capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    if (loads[i] > capacities[i]) return false;
  }
  return true;
}

}  // namespace xdgp::metrics
