#pragma once

#include <cstddef>

#include "epartition/edge_assignment.h"

namespace xdgp::metrics {

/// Quality summary of an edge partitioning (vertex cut), mirroring
/// BalanceReport for the vertex side. The headline number is the
/// replication factor — the metric the vertex-cut literature (PowerGraph,
/// DBH, HDRF, NE) reports where the edge-cut literature reports cut ratio:
/// with every edge local to one partition, cross-partition cost is incurred
/// per vertex *replica* (each extra copy must be synchronised every
/// superstep), so RF is the direct analogue of the paper's |Ec|/|E|.
struct ReplicationReport {
  std::size_t k = 0;
  std::size_t numEdges = 0;
  /// Vertices with >= 1 incident edge assigned (the RF denominator).
  std::size_t coveredVertices = 0;
  std::size_t totalReplicas = 0;
  /// Σ_v |A(v)| / |{v : A(v) ≠ ∅}| — mean copies per covered vertex.
  /// 1.0 is perfect (no vertex straddles partitions); k is the worst case.
  double replicationFactor = 0.0;
  /// Fraction of covered vertices with more than one replica — the
  /// vertex-cut analogue of the cut ratio (a "cut vertex" is one that has
  /// been split across partitions).
  double vertexCutRatio = 0.0;
  /// max edge load / (|E| / k): 1.0 is perfectly balanced; strategies that
  /// promise respectsBalanceCap keep this <= balanceFactor (+ ceil slack).
  double edgeImbalance = 0.0;
  /// max vertex-copy load / (totalReplicas / k) — whether the replicas
  /// themselves (i.e. per-partition vertex state) are spread evenly.
  double copyImbalance = 0.0;
  std::size_t minEdgeLoad = 0;
  std::size_t maxEdgeLoad = 0;
};

[[nodiscard]] ReplicationReport replicationReport(
    const epartition::EdgeAssignment& assignment);

/// Shorthand for replicationReport(assignment).replicationFactor.
[[nodiscard]] double replicationFactor(
    const epartition::EdgeAssignment& assignment);

}  // namespace xdgp::metrics
