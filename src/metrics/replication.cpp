#include "metrics/replication.h"

#include <algorithm>

namespace xdgp::metrics {

ReplicationReport replicationReport(
    const epartition::EdgeAssignment& assignment) {
  ReplicationReport report;
  report.k = assignment.k();
  report.numEdges = assignment.numEdges();
  report.coveredVertices = assignment.coveredVertices();
  report.totalReplicas = assignment.totalReplicas();
  if (report.coveredVertices > 0) {
    report.replicationFactor = static_cast<double>(report.totalReplicas) /
                               static_cast<double>(report.coveredVertices);
    std::size_t cut = 0;
    for (graph::VertexId v = 0; v < assignment.idBound(); ++v) {
      cut += assignment.replicaCount(v) > 1;
    }
    report.vertexCutRatio =
        static_cast<double>(cut) / static_cast<double>(report.coveredVertices);
  }
  const std::vector<std::size_t>& loads = assignment.edgeLoads();
  const auto [minIt, maxIt] = std::minmax_element(loads.begin(), loads.end());
  report.minEdgeLoad = *minIt;
  report.maxEdgeLoad = *maxIt;
  if (report.numEdges > 0) {
    const double balanced = static_cast<double>(report.numEdges) /
                            static_cast<double>(report.k);
    report.edgeImbalance = static_cast<double>(report.maxEdgeLoad) / balanced;
  }
  if (report.totalReplicas > 0) {
    const std::vector<std::size_t> copies = assignment.copyLoads();
    const double balanced = static_cast<double>(report.totalReplicas) /
                            static_cast<double>(report.k);
    report.copyImbalance =
        static_cast<double>(*std::max_element(copies.begin(), copies.end())) /
        balanced;
  }
  return report;
}

double replicationFactor(const epartition::EdgeAssignment& assignment) {
  return replicationReport(assignment).replicationFactor;
}

}  // namespace xdgp::metrics
