#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xdgp::metrics {

/// One point of the per-iteration evolution the paper plots in Fig. 7
/// (cuts / migrations / normalised time per iteration).
struct IterationPoint {
  std::size_t iteration = 0;
  std::size_t cuts = 0;
  std::size_t migrations = 0;
  /// Measured wall seconds of the iteration (core::AdaptiveEngine records
  /// util::WallTimer readings; the pregel path reports modelled time in
  /// SuperstepStats instead).
  double timePerIteration = 0.0;
};

/// Append-only series with the reductions the figures need.
class IterationSeries {
 public:
  void add(IterationPoint point) { points_.push_back(point); }

  [[nodiscard]] const std::vector<IterationPoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const IterationPoint& front() const { return points_.front(); }
  [[nodiscard]] const IterationPoint& back() const { return points_.back(); }

  /// Largest time-per-iteration spike (Fig. 7 reports a 21x initial peak).
  [[nodiscard]] double peakTime() const noexcept {
    double peak = 0.0;
    for (const auto& p : points_) peak = p.timePerIteration > peak ? p.timePerIteration : peak;
    return peak;
  }

  [[nodiscard]] std::size_t totalMigrations() const noexcept {
    std::size_t total = 0;
    for (const auto& p : points_) total += p.migrations;
    return total;
  }

  /// Writes "iteration,cuts,migrations,time" rows to `path`.
  void writeCsv(const std::string& path) const;

 private:
  std::vector<IterationPoint> points_;
};

}  // namespace xdgp::metrics
