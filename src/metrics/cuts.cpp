#include "metrics/cuts.h"

namespace xdgp::metrics {

std::size_t cutEdges(const graph::DynamicGraph& g, const Assignment& assignment) {
  std::size_t cuts = 0;
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    if (assignment[u] != assignment[v]) ++cuts;
  });
  return cuts;
}

std::size_t cutEdges(const graph::CsrGraph& g, const Assignment& assignment) {
  std::size_t cuts = 0;
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    if (assignment[u] != assignment[v]) ++cuts;
  });
  return cuts;
}

double cutRatio(const graph::DynamicGraph& g, const Assignment& assignment) {
  const std::size_t edges = g.numEdges();
  return edges ? static_cast<double>(cutEdges(g, assignment)) /
                     static_cast<double>(edges)
               : 0.0;
}

double cutRatio(const graph::CsrGraph& g, const Assignment& assignment) {
  const std::size_t edges = g.numEdges();
  return edges ? static_cast<double>(cutEdges(g, assignment)) /
                     static_cast<double>(edges)
               : 0.0;
}

std::vector<std::size_t> partitionLoads(const Assignment& assignment, std::size_t k) {
  std::vector<std::size_t> loads(k, 0);
  for (const graph::PartitionId p : assignment) {
    if (p != graph::kNoPartition && p < k) ++loads[p];
  }
  return loads;
}

}  // namespace xdgp::metrics
