#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.h"
#include "graph/dynamic_graph.h"
#include "graph/types.h"

namespace xdgp::metrics {

/// Per-vertex partition assignment, indexed by dense vertex id. Dead ids
/// carry kNoPartition.
using Assignment = std::vector<graph::PartitionId>;

/// Number of cut edges |Ec|: edges whose endpoints lie in different
/// partitions (the paper's §2 definition). Brute-force scan; the adaptive
/// engine maintains the same value incrementally and the tests cross-check
/// the two.
[[nodiscard]] std::size_t cutEdges(const graph::DynamicGraph& g,
                                   const Assignment& assignment);
[[nodiscard]] std::size_t cutEdges(const graph::CsrGraph& g,
                                   const Assignment& assignment);

/// Cut ratio: |Ec| / |E| — the paper's "gold standard for assessing the
/// quality of the partitioning" (§4.2). Zero edges yields ratio 0.
[[nodiscard]] double cutRatio(const graph::DynamicGraph& g,
                              const Assignment& assignment);
[[nodiscard]] double cutRatio(const graph::CsrGraph& g, const Assignment& assignment);

/// Vertices per partition (size k). Ids beyond the assignment are ignored.
[[nodiscard]] std::vector<std::size_t> partitionLoads(const Assignment& assignment,
                                                      std::size_t k);

}  // namespace xdgp::metrics
