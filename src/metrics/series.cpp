#include "metrics/series.h"

#include "util/csv.h"
#include "util/table.h"

namespace xdgp::metrics {

void IterationSeries::writeCsv(const std::string& path) const {
  util::CsvWriter csv(path, {"iteration", "cuts", "migrations", "time_per_iteration"});
  for (const IterationPoint& p : points_) {
    csv.addRow({std::to_string(p.iteration), std::to_string(p.cuts),
                std::to_string(p.migrations), util::fmt(p.timePerIteration, 4)});
  }
}

}  // namespace xdgp::metrics
