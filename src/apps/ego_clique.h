#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace xdgp::apps {

/// Adjacency knowledge a vertex accumulates about its ego network: for each
/// neighbour j, the list N(j) as received in a neighbour-list message.
struct EgoNet {
  graph::VertexId center = graph::kInvalidVertex;
  std::vector<graph::VertexId> neighbors;                 ///< N(center)
  std::vector<std::vector<graph::VertexId>> neighborLists;  ///< N(j) per j
};

/// Largest clique containing `ego.center`, computed from neighbour lists
/// only — the §4.3 algorithm: "given a vertex i and each of its neighbours
/// j, i creates lists containing the neighbours of j that are also
/// neighbours with i; lists containing the same elements reveal a clique".
///
/// Exact (Bron–Kerbosch with pivoting) for ego networks up to
/// `exactThreshold` vertices, greedy-by-connectivity beyond — call detail
/// graphs keep degrees small, so the exact path dominates in practice.
///
/// Returns the clique size (>= 1 when the vertex exists) and appends the
/// members (including the center) to `members` when non-null.
std::size_t maxCliqueInEgoNet(const EgoNet& ego, std::size_t exactThreshold = 24,
                              std::vector<graph::VertexId>* members = nullptr);

}  // namespace xdgp::apps
