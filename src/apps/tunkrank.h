#pragma once

#include <cstddef>
#include <span>

#include "graph/types.h"

namespace xdgp::apps {

/// TunkRank — "a Twitter analog to PageRank" (Tunkelang 2009), the influence
/// measure the paper runs continuously over the live mention graph in its
/// online-social-network use case (§4.3, Fig. 8).
///
/// Influence(u) = Σ_{f ∈ followers(u)} (1 + p · Influence(f)) / |following(f)|
///
/// On the undirected mention graph each neighbour acts as a follower, the
/// paper's construction ("edges are given by mentions of users"). The
/// recursion runs as a continuous fixed-point iteration: every superstep a
/// vertex re-emits its attention share, so new mention edges immediately
/// perturb the ranking — the time-sensitivity argument of §1.
struct TunkRankProgram {
  using VertexValue = double;   ///< current influence estimate
  using MessageValue = double;  ///< attention share (1 + p·I(f)) / |following(f)|

  /// Retweet probability p: the chance a follower passes a tweet on.
  double retweetProbability = 0.05;

  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& value, std::span<const MessageValue> inbox) {
    if (ctx.superstep() > 0) {
      double influence = 0.0;
      for (const double share : inbox) influence += share;
      value = influence;
    }
    const std::size_t degree = ctx.degree();
    if (degree > 0) {
      const double share =
          (1.0 + retweetProbability * value) / static_cast<double>(degree);
      ctx.sendToNeighbors(share);
    }
    // One add per message: CPU is an order of magnitude cheaper than the
    // wire per message here, matching the paper's profile for this use case
    // ("execution time is bound by the number of messages sent over the
    // network ... over 80% of the iteration time").
    ctx.addComputeUnits(1.0 + 0.1 * static_cast<double>(inbox.size()));
  }
};

}  // namespace xdgp::apps
