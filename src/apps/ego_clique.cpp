#include "apps/ego_clique.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>

namespace xdgp::apps {

namespace {

using Mask = std::uint64_t;

struct BkState {
  const std::vector<Mask>& adjacency;
  int bestSize = 0;
  Mask bestSet = 0;
};

/// Bron–Kerbosch with pivoting over <=64 candidates packed into bitmasks.
void bronKerbosch(BkState& st, Mask r, Mask p, Mask x) {
  if (p == 0 && x == 0) {
    const int size = std::popcount(r);
    if (size > st.bestSize) {
      st.bestSize = size;
      st.bestSet = r;
    }
    return;
  }
  if (std::popcount(r) + std::popcount(p) <= st.bestSize) return;  // bound

  // Pivot: the candidate covering most of P prunes the branching best.
  Mask pux = p | x;
  int pivot = -1, bestCover = -1;
  for (Mask scan = pux; scan;) {
    const int u = std::countr_zero(scan);
    scan &= scan - 1;
    const int cover = std::popcount(p & st.adjacency[u]);
    if (cover > bestCover) {
      bestCover = cover;
      pivot = u;
    }
  }
  Mask frontier = p & ~st.adjacency[pivot];
  while (frontier) {
    const int v = std::countr_zero(frontier);
    const Mask bit = Mask{1} << v;
    frontier &= frontier - 1;
    bronKerbosch(st, r | bit, p & st.adjacency[v], x & st.adjacency[v]);
    p &= ~bit;
    x |= bit;
  }
}

}  // namespace

std::size_t maxCliqueInEgoNet(const EgoNet& ego, std::size_t exactThreshold,
                              std::vector<graph::VertexId>* members) {
  if (ego.center == graph::kInvalidVertex) return 0;
  if (members) members->push_back(ego.center);
  const std::size_t n = ego.neighbors.size();
  if (n == 0) return 1;

  // Index candidates and build adjacency among them from the received
  // neighbour lists (symmetric ground truth on an undirected graph).
  std::unordered_map<graph::VertexId, std::size_t> index;
  index.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) index.emplace(ego.neighbors[i], i);

  const std::size_t cap = std::min<std::size_t>(exactThreshold, 64);
  if (n <= cap && ego.neighborLists.size() == n) {
    std::vector<Mask> adjacency(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (const graph::VertexId w : ego.neighborLists[i]) {
        const auto it = index.find(w);
        if (it != index.end() && it->second != i) {
          adjacency[i] |= Mask{1} << it->second;
          adjacency[it->second] |= Mask{1} << i;
        }
      }
    }
    BkState st{adjacency, 0, 0};
    const Mask all = n == 64 ? ~Mask{0} : (Mask{1} << n) - 1;
    bronKerbosch(st, 0, all, 0);
    if (members) {
      for (Mask scan = st.bestSet; scan;) {
        const int v = std::countr_zero(scan);
        scan &= scan - 1;
        members->push_back(ego.neighbors[static_cast<std::size_t>(v)]);
      }
    }
    return 1 + static_cast<std::size_t>(st.bestSize);
  }

  // Greedy fallback for hub vertices: visit candidates by ego-degree and
  // keep those adjacent to everything chosen so far.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n && i < ego.neighborLists.size(); ++i) {
    for (const graph::VertexId w : ego.neighborLists[i]) {
      const auto it = index.find(w);
      if (it != index.end() && it->second != i) adj[i].push_back(it->second);
    }
  }
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return adj[a].size() > adj[b].size();
  });
  std::vector<std::size_t> clique;
  std::vector<std::uint8_t> inClique(n, 0);
  for (const std::size_t cand : order) {
    std::size_t linked = 0;
    for (const std::size_t nbr : adj[cand]) linked += inClique[nbr];
    if (linked == clique.size()) {
      clique.push_back(cand);
      inClique[cand] = 1;
    }
  }
  if (members) {
    for (const std::size_t i : clique) members->push_back(ego.neighbors[i]);
  }
  return 1 + clique.size();
}

}  // namespace xdgp::apps
