#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace xdgp::apps {

/// Distributed triangle counting by neighbour-list exchange (the same
/// messaging pattern as the paper's clique workload, §4.3, but with an
/// exactly checkable global answer):
///
///  - even supersteps: every vertex sends its *higher-id* neighbour list to
///    every higher-id neighbour (the standard degree-ordered scheme that
///    counts each triangle exactly once, at its lowest-id corner's
///    highest-id partner);
///  - odd supersteps: a vertex intersects each received list with its own
///    higher-id neighbourhood; every match closes one triangle.
///
/// Sum VertexValue::triangles over all vertices to get the global count.
struct TriangleCountProgram {
  struct State {
    std::size_t triangles = 0;  ///< triangles charged to this vertex, last round
    std::size_t round = 0;
  };
  struct CandidateList {
    graph::VertexId owner = graph::kInvalidVertex;
    std::vector<graph::VertexId> higherNeighbors;
  };

  using VertexValue = State;
  using MessageValue = CandidateList;

  static std::size_t messageUnits(const CandidateList& list) noexcept {
    return 1 + list.higherNeighbors.size();
  }

  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& value, std::span<const MessageValue> inbox) {
    const auto nbrs = ctx.neighbors();
    if (ctx.superstep() % 2 == 0) {
      CandidateList list;
      list.owner = ctx.id();
      for (const graph::VertexId nbr : nbrs) {
        if (nbr > ctx.id()) list.higherNeighbors.push_back(nbr);
      }
      std::sort(list.higherNeighbors.begin(), list.higherNeighbors.end());
      for (const graph::VertexId nbr : list.higherNeighbors) {
        ctx.send(nbr, list);
      }
      ctx.addComputeUnits(static_cast<double>(list.higherNeighbors.size()));
    } else {
      std::vector<graph::VertexId> mine;
      for (const graph::VertexId nbr : nbrs) {
        if (nbr > ctx.id()) mine.push_back(nbr);
      }
      std::sort(mine.begin(), mine.end());
      std::size_t found = 0;
      double units = 1.0;
      for (const CandidateList& list : inbox) {
        // |mine ∩ list.higherNeighbors|: each common vertex w closes the
        // triangle (list.owner, me, w).
        auto a = mine.begin();
        auto b = list.higherNeighbors.begin();
        while (a != mine.end() && b != list.higherNeighbors.end()) {
          if (*a < *b) ++a;
          else if (*b < *a) ++b;
          else {
            ++found;
            ++a;
            ++b;
          }
        }
        units += static_cast<double>(list.higherNeighbors.size());
      }
      value.triangles = found;
      ++value.round;
      ctx.addComputeUnits(0.25 * units);
    }
  }
};

}  // namespace xdgp::apps
