#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "apps/ego_clique.h"
#include "graph/types.h"

namespace xdgp::apps {

/// The paper's mobile-network workload (§4.3): maximal cliques on the call
/// graph via neighbour-list exchange.
///
/// "In the first iteration, each vertex sends its lists of neighbours to all
/// its neighbours. On the next iteration, given a vertex i and each of its
/// neighbours j, i creates j lists containing the neighbours of j that are
/// also neighbours with i. Lists containing the same elements reveal a
/// clique."
///
/// The program runs in two-superstep rounds so the engine can re-run it on
/// each frozen topology snapshot (the workload "requires freezing the graph
/// topology until a result is obtained"). Messages carry whole neighbour
/// lists — the "heavy messaging overhead for large graphs" the paper calls
/// out, which is why this use case stresses the partitioner hardest.
struct MaxCliqueProgram {
  struct State {
    std::size_t cliqueSize = 0;  ///< best clique through this vertex, last round
    std::size_t round = 0;       ///< completed exchange rounds
  };
  /// A neighbour list, prefixed by its owner (sender) id.
  struct NeighborList {
    graph::VertexId owner = graph::kInvalidVertex;
    std::vector<graph::VertexId> neighbors;
  };

  using VertexValue = State;
  using MessageValue = NeighborList;

  /// Wire size of a neighbour-list message: the paper's "heavy messaging
  /// overhead" comes from these payloads, so the cost model weighs them.
  static std::size_t messageUnits(const NeighborList& list) noexcept {
    return 1 + list.neighbors.size();
  }

  /// Ego nets up to this size use exact Bron–Kerbosch (<= 64).
  std::size_t exactThreshold = 24;

  /// CPU units per received list element. Bitset Bron–Kerbosch chews a list
  /// element far faster than the wire moves it, giving the paper's §4.3
  /// profile: "heavy messaging overhead ... and not negligible CPU costs,
  /// although not as much as the biomedical use case".
  double cpuUnitFactor = 0.25;

  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& value, std::span<const MessageValue> inbox) {
    if (ctx.superstep() % 2 == 0) {
      // Phase 1: broadcast my neighbour list to every neighbour.
      NeighborList list;
      list.owner = ctx.id();
      const auto nbrs = ctx.neighbors();
      list.neighbors.assign(nbrs.begin(), nbrs.end());
      ctx.sendToNeighbors(list);
      ctx.addComputeUnits(static_cast<double>(nbrs.size()));
    } else {
      // Phase 2: assemble the ego network from the received lists and solve.
      EgoNet ego;
      ego.center = ctx.id();
      ego.neighbors.reserve(inbox.size());
      ego.neighborLists.reserve(inbox.size());
      double units = 1.0;
      for (const NeighborList& list : inbox) {
        ego.neighbors.push_back(list.owner);
        ego.neighborLists.push_back(list.neighbors);
        units += static_cast<double>(list.neighbors.size());
      }
      value.cliqueSize = maxCliqueInEgoNet(ego, exactThreshold);
      ++value.round;
      ctx.addComputeUnits(cpuUnitFactor * units);
    }
  }
};

}  // namespace xdgp::apps
