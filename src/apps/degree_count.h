#pragma once

#include <cstddef>
#include <span>

#include "graph/types.h"

namespace xdgp::apps {

/// Minimal two-superstep program: superstep 0 pings every neighbour,
/// superstep 1 counts the pings. The received count must equal the vertex's
/// degree *even while vertices migrate* — the engine test suite's canary for
/// the deferred-migration message-delivery guarantee (Fig. 3).
struct DegreeCountProgram {
  using VertexValue = std::size_t;  ///< pings received in the last odd superstep
  using MessageValue = std::uint8_t;

  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& value, std::span<const MessageValue> inbox) {
    if (ctx.superstep() % 2 == 0) {
      ctx.sendToNeighbors(MessageValue{1});
    } else {
      value = inbox.size();
    }
    ctx.addComputeUnits(1.0);
  }
};

}  // namespace xdgp::apps
