#pragma once

#include <cstddef>
#include <span>

#include "graph/types.h"

namespace xdgp::apps {

/// The biomedical FEM workload (§4.3, Fig. 7): excitable cardiac tissue on a
/// 3-D mesh, where "each vertex computes more than 32 differential equations
/// ... representing the way cardiac cells are excited" (ten Tusscher et al.
/// 2004 in the paper).
///
/// The membrane model here is a FitzHugh–Nagumo reaction–diffusion cell — an
/// excitable-media reduction of ten Tusscher with the same coupling pattern:
/// every superstep each cell exchanges its membrane potential with its six
/// mesh neighbours (the messaging that dominates >80 % of iteration time)
/// and integrates `odeSubsteps` explicit-Euler substeps (the ~17 % CPU). The
/// `unitsPerSubstep` knob scales accounted compute to the paper's 32-eq/100-
/// var model without having to burn the flops on a laptop (docs/DESIGN.md §2).
struct CardiacProgram {
  struct Cell {
    double voltage = -1.2;   ///< membrane potential v (dimensionless FHN)
    double recovery = -0.6;  ///< recovery variable w
  };

  using VertexValue = Cell;
  using MessageValue = double;  ///< neighbour membrane potential

  /// Gap-junction coupling; must clear the discrete-media propagation
  /// threshold (~0.15 for this cell at 6-neighbour coupling) or excitation
  /// waves die out between lattice sites.
  double diffusion = 0.35;
  double dt = 0.04;           ///< integration step
  double epsilon = 0.08;      ///< FHN time-scale separation
  double beta = 0.7;          ///< FHN recovery offset
  double gammaFhn = 0.8;      ///< FHN recovery damping
  std::size_t odeSubsteps = 4;
  double unitsPerSubstep = 8.0;  ///< 4 substeps * 8 = the paper's 32 equations

  /// Vertices with id < stimulusWidth receive a pacing current, seeding the
  /// excitation wave that propagates across the mesh.
  graph::VertexId stimulusWidth = 32;
  double stimulusCurrent = 1.2;
  std::size_t stimulusPeriod = 300;    ///< supersteps between pacing pulses
  std::size_t stimulusDuration = 20;   ///< supersteps per pulse

  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& cell, std::span<const MessageValue> inbox) {
    // Diffusive coupling from neighbour potentials delivered this superstep.
    double laplacian = 0.0;
    for (const double neighborVoltage : inbox) {
      laplacian += neighborVoltage - cell.voltage;
    }
    const double stimulus = ctx.id() < stimulusWidth &&
                                    (ctx.superstep() % stimulusPeriod) <
                                        stimulusDuration
                                ? stimulusCurrent
                                : 0.0;
    for (std::size_t step = 0; step < odeSubsteps; ++step) {
      const double v = cell.voltage;
      const double w = cell.recovery;
      const double dv =
          v - v * v * v / 3.0 - w + stimulus + diffusion * laplacian;
      const double dw = epsilon * (v + beta - gammaFhn * w);
      cell.voltage += dt * dv;
      cell.recovery += dt * dw;
    }
    ctx.sendToNeighbors(cell.voltage);
    ctx.addComputeUnits(static_cast<double>(odeSubsteps) * unitsPerSubstep);
  }
};

}  // namespace xdgp::apps
