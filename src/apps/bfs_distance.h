#pragma once

#include <cstdint>
#include <span>

#include "graph/types.h"

namespace xdgp::apps {

/// Single-source BFS distances (unweighted SSSP) as a vertex program:
/// the source announces distance 0, every vertex adopts 1 + min(inbox) when
/// it improves, and gossips onward. Converges in O(eccentricity) supersteps
/// and keeps converging as edges stream in (distances can only improve on a
/// growing graph) — a natural probe for dynamic-graph correctness.
struct BfsDistanceProgram {
  static constexpr std::uint32_t kUnreached = 0xffffffffu;

  struct Distance {
    std::uint32_t hops = kUnreached;
  };

  using VertexValue = Distance;
  using MessageValue = std::uint32_t;  ///< sender's distance

  graph::VertexId source = 0;

  /// Soft-state refresh: reached vertices re-announce their distance every
  /// this many supersteps, so edges streamed in *after* convergence still
  /// pick the new shortcuts up (a push-only BFS would otherwise go silent).
  std::size_t refreshInterval = 8;

  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& value, std::span<const MessageValue> inbox) {
    std::uint32_t best = value.hops;
    if (ctx.id() == source) best = 0;
    for (const std::uint32_t heard : inbox) {
      if (heard != kUnreached && heard + 1 < best) best = heard + 1;
    }
    const bool refresh = best != kUnreached && refreshInterval > 0 &&
                         ctx.superstep() % refreshInterval == refreshInterval - 1;
    if (best != value.hops || refresh) {
      value.hops = best;
      ctx.sendToNeighbors(best);
    }
    ctx.addComputeUnits(1.0 + 0.1 * static_cast<double>(inbox.size()));
  }
};

}  // namespace xdgp::apps
