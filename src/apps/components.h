#pragma once

#include <algorithm>
#include <span>

#include "graph/types.h"

namespace xdgp::apps {

/// HashMin connected components: every vertex repeatedly adopts the
/// smallest vertex id heard so far and gossips it onward. Converges in
/// O(diameter) supersteps; used by tests and examples as the simplest
/// correctness oracle for the engine's messaging and migration machinery
/// (labels must be identical with partitioning on and off).
struct ComponentsProgram {
  struct Label {
    graph::VertexId component = graph::kInvalidVertex;
    bool changed = false;
  };

  using VertexValue = Label;
  using MessageValue = graph::VertexId;

  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& value, std::span<const MessageValue> inbox) {
    graph::VertexId best =
        value.component == graph::kInvalidVertex ? ctx.id() : value.component;
    for (const graph::VertexId heard : inbox) best = std::min(best, heard);
    value.changed = best != value.component;
    if (value.changed) {
      value.component = best;
      ctx.sendToNeighbors(best);
    }
    ctx.addComputeUnits(1.0 + static_cast<double>(inbox.size()));
  }
};

}  // namespace xdgp::apps
