#pragma once

#include <cstddef>
#include <span>

#include "graph/types.h"

namespace xdgp::apps {

/// Classic PageRank on the undirected graph (each edge acts as two links),
/// the "popular algorithm for content ranking" the paper cites as a main
/// beneficiary of good partitioning. Vertex programs exchange rank shares
/// along edges every superstep, so iteration time tracks message locality —
/// exactly the coupling the adaptive partitioner exploits.
struct PageRankProgram {
  using VertexValue = double;   ///< current rank
  using MessageValue = double;  ///< rank share flowing along an edge

  double damping = 0.85;
  /// |V| for the teleport term; refresh via setNumVertices on mutation.
  double numVertices = 1.0;

  void setNumVertices(std::size_t n) noexcept {
    numVertices = n > 0 ? static_cast<double>(n) : 1.0;
  }

  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& value, std::span<const MessageValue> inbox) {
    if (ctx.superstep() == 0) {
      value = 1.0 / numVertices;
    } else {
      double sum = 0.0;
      for (const double share : inbox) sum += share;
      value = (1.0 - damping) / numVertices + damping * sum;
    }
    const std::size_t degree = ctx.degree();
    if (degree > 0) {
      ctx.sendToNeighbors(value / static_cast<double>(degree));
    }
    // One add per message: CPU an order cheaper than the wire, the typical
    // profile of communication-bound rank propagation.
    ctx.addComputeUnits(1.0 + 0.1 * static_cast<double>(inbox.size()));
  }
};

}  // namespace xdgp::apps
