#pragma once

#include <cstddef>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/types.h"
#include "metrics/cuts.h"

namespace xdgp::core {

/// Mutable view of "which partition holds each vertex", with partition loads
/// and the cut-edge count |Ec| maintained incrementally (O(deg) per change).
/// The test suite cross-checks the incremental cut against the brute-force
/// metrics::cutEdges after every kind of mutation.
class PartitionState {
 public:
  PartitionState() = default;

  /// Adopts `initial` (indexed by dense vertex id over g.idBound()).
  /// Every alive vertex must be assigned to a partition in [0, k).
  PartitionState(const graph::DynamicGraph& g, metrics::Assignment initial,
                 std::size_t k);

  [[nodiscard]] std::size_t k() const noexcept { return loads_.size(); }

  [[nodiscard]] graph::PartitionId partitionOf(graph::VertexId v) const noexcept {
    return v < assignment_.size() ? assignment_[v] : graph::kNoPartition;
  }

  [[nodiscard]] const metrics::Assignment& assignment() const noexcept {
    return assignment_;
  }

  [[nodiscard]] std::size_t load(std::size_t i) const noexcept { return loads_[i]; }
  [[nodiscard]] const std::vector<std::size_t>& loads() const noexcept {
    return loads_;
  }

  /// Degree sum Σ_{v∈P(i)} deg(v) per partition — the load measure of the
  /// paper's §6 edge-balanced extension (PageRank-style algorithms cost
  /// O(edges), so balancing degree sums balances their compute).
  [[nodiscard]] std::size_t degreeLoad(std::size_t i) const noexcept {
    return degreeLoads_[i];
  }
  [[nodiscard]] const std::vector<std::size_t>& degreeLoads() const noexcept {
    return degreeLoads_;
  }

  /// Incrementally-maintained |Ec|.
  [[nodiscard]] std::size_t cutEdges() const noexcept { return cuts_; }

  [[nodiscard]] double cutRatio(const graph::DynamicGraph& g) const noexcept {
    return g.numEdges() ? static_cast<double>(cuts_) /
                              static_cast<double>(g.numEdges())
                        : 0.0;
  }

  /// Moves v to partition `to`, updating loads and the cut count against the
  /// *current* assignment of its neighbours. Applying a batch of moves one
  /// by one lands on the same state regardless of order. Returns true when
  /// the assignment actually changed (false for a self-move) — the signal
  /// the adaptive engine's frontier uses to mark v and its neighbourhood
  /// for re-evaluation.
  bool moveVertex(const graph::DynamicGraph& g, graph::VertexId v,
                  graph::PartitionId to);

  /// Registers a vertex that just joined the graph (no incident edges yet).
  void onVertexAdded(graph::VertexId v, graph::PartitionId p);

  /// Unregisters a vertex; call *before* g.removeVertex(v) so its incident
  /// cut edges can be subtracted.
  void onVertexRemoving(const graph::DynamicGraph& g, graph::VertexId v);

  /// Registers an edge that was just inserted into the graph.
  void onEdgeAdded(graph::VertexId u, graph::VertexId v);

  /// Registers an edge removal; call after (or instead of) the graph change.
  void onEdgeRemoved(graph::VertexId u, graph::VertexId v);

  /// Elastic k: appends `n` empty partitions (zero load, zero degree load).
  /// Existing assignments are untouched — partition ids are stable.
  void growK(std::size_t n) {
    loads_.resize(loads_.size() + n, 0);
    degreeLoads_.resize(degreeLoads_.size() + n, 0);
  }

 private:
  metrics::Assignment assignment_;
  std::vector<std::size_t> loads_;
  std::vector<std::size_t> degreeLoads_;
  std::size_t cuts_ = 0;
};

}  // namespace xdgp::core
