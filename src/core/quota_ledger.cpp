#include "core/quota_ledger.h"

#include <algorithm>
#include <stdexcept>

namespace xdgp::core {

QuotaLedger::QuotaLedger(std::size_t k)
    : k_(k), quotas_(k, 0), used_(k * k, 0) {
  if (k == 0) throw std::invalid_argument("QuotaLedger: k must be positive");
}

void QuotaLedger::beginIteration(const CapacityModel& capacity,
                                 const std::vector<std::size_t>& loads) {
  for (const std::size_t index : touched_) used_[index] = 0;
  touched_.clear();
  const std::size_t sources = k_ > 1 ? k_ - 1 : 1;
  for (std::size_t j = 0; j < k_; ++j) {
    quotas_[j] = capacity.remaining(j, loads[j]) / sources;
  }
}

bool QuotaLedger::tryAdmit(graph::PartitionId i, graph::PartitionId j,
                           std::size_t units) {
  if (i == j || j >= k_ || units == 0) return false;
  std::size_t& used = used_[i * k_ + j];
  if (used + units > quotas_[j]) return false;
  if (used == 0) touched_.push_back(i * k_ + j);
  used += units;
  return true;
}

}  // namespace xdgp::core
