#include "core/partitioned_runtime.h"

#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace xdgp::core {

PartitionedRuntime::PartitionedRuntime(graph::DynamicGraph g,
                                       metrics::Assignment initial, std::size_t k)
    : graph_(std::move(g)), k_(k) {
  graph_.forEachVertex([&](graph::VertexId v) {
    const graph::PartitionId p = v < initial.size() ? initial[v] : graph::kNoPartition;
    if (p >= k_) {
      throw std::invalid_argument(
          "initial assignment places vertex " + std::to_string(v) +
          " on partition " + std::to_string(p) + " but only " +
          std::to_string(k_) + " partitions exist");
    }
  });
  state_ = PartitionState(graph_, std::move(initial), k_);
  active_.assign(k_, 1);
  activeK_ = k_;
  refreshDefaultPlacement();
}

void PartitionedRuntime::refreshDefaultPlacement() {
  if (customPlacement_) return;
  std::vector<graph::PartitionId> ids;
  ids.reserve(activeK_);
  for (std::size_t p = 0; p < active_.size(); ++p) {
    if (active_[p] != 0) ids.push_back(static_cast<graph::PartitionId>(p));
  }
  // With every partition active, ids[h % k] == h % k: bit-identical to the
  // historical splitmix64(v) % k default.
  placement_ = [ids = std::move(ids)](graph::VertexId v) {
    return ids[util::Rng::splitmix64(v) % ids.size()];
  };
}

std::size_t PartitionedRuntime::growPartitions(std::size_t n) {
  if (n == 0) return k_;
  k_ += n;
  active_.resize(k_, 1);
  activeK_ += n;
  state_.growK(n);
  ++kEpoch_;
  refreshDefaultPlacement();
  return k_;
}

void PartitionedRuntime::retirePartitions(std::span<const graph::PartitionId> ids) {
  if (ids.empty()) return;
  // Validate the whole batch before flipping anything: a throw mid-batch
  // must not leave a half-retired partition set.
  std::vector<std::uint8_t> seen(k_, 0);
  for (const graph::PartitionId p : ids) {
    if (p >= k_) {
      throw std::invalid_argument("retirePartitions: partition " +
                                  std::to_string(p) + " does not exist (k=" +
                                  std::to_string(k_) + ")");
    }
    if (active_[p] == 0) {
      throw std::invalid_argument("retirePartitions: partition " +
                                  std::to_string(p) + " is already retired");
    }
    if (seen[p] != 0) {
      throw std::invalid_argument("retirePartitions: partition " +
                                  std::to_string(p) + " listed twice");
    }
    seen[p] = 1;
  }
  if (ids.size() >= activeK_) {
    throw std::invalid_argument(
        "retirePartitions: cannot retire all " + std::to_string(activeK_) +
        " active partitions");
  }
  for (const graph::PartitionId p : ids) active_[p] = 0;
  activeK_ -= ids.size();
  ++kEpoch_;
  refreshDefaultPlacement();
}

std::vector<graph::PartitionId> PartitionedRuntime::retiredPartitions() const {
  std::vector<graph::PartitionId> retired;
  for (std::size_t p = 0; p < active_.size(); ++p) {
    if (active_[p] == 0) retired.push_back(static_cast<graph::PartitionId>(p));
  }
  return retired;
}

void PartitionedRuntime::loadVertex(graph::VertexId v, MutationHooks& hooks) {
  graph_.ensureVertex(v);
  state_.onVertexAdded(v, placement_(v));
  adjacencyTouched_.touch(v);
  assignmentTouched_.touch(v);
  hooks.onVertexLoaded(v);
}

std::size_t PartitionedRuntime::applyEvents(
    const std::vector<graph::UpdateEvent>& events, MutationHooks& hooks,
    ConvergenceTracker* rearm) {
  std::size_t applied = 0;
  for (const graph::UpdateEvent& e : events) {
    switch (e.kind) {
      case graph::UpdateEvent::Kind::kAddVertex:
        if (!graph_.hasVertex(e.u)) {
          loadVertex(e.u, hooks);
          ++applied;
        }
        break;
      case graph::UpdateEvent::Kind::kRemoveVertex:
        if (graph_.hasVertex(e.u)) {
          hooks.onVertexRemoving(e.u);
          // The surviving neighbours' adjacency lists are about to lose an
          // entry (swap-remove, so their order may change too) — record
          // them while the adjacency is still intact.
          for (const graph::VertexId nbr : graph_.neighbors(e.u)) {
            adjacencyTouched_.touch(nbr);
          }
          adjacencyTouched_.touch(e.u);
          assignmentTouched_.touch(e.u);
          state_.onVertexRemoving(graph_, e.u);
          graph_.removeVertex(e.u);
          ++applied;
        }
        break;
      case graph::UpdateEvent::Kind::kAddEdge: {
        bool changed = false;
        for (const graph::VertexId endpoint : {e.u, e.v}) {
          if (!graph_.hasVertex(endpoint)) {
            loadVertex(endpoint, hooks);
            changed = true;  // loads shifted even if the edge is rejected
          }
        }
        if (graph_.addEdge(e.u, e.v)) {
          state_.onEdgeAdded(e.u, e.v);
          adjacencyTouched_.touch(e.u);
          adjacencyTouched_.touch(e.v);
          hooks.onEdgeAdded(e.u, e.v);
          changed = true;
        }
        if (changed) ++applied;
        break;
      }
      case graph::UpdateEvent::Kind::kRemoveEdge:
        if (graph_.removeEdge(e.u, e.v)) {
          state_.onEdgeRemoved(e.u, e.v);
          adjacencyTouched_.touch(e.u);
          adjacencyTouched_.touch(e.v);
          hooks.onEdgeRemoved(e.u, e.v);
          ++applied;
        }
        break;
    }
  }
  if (applied > 0 && rearm != nullptr) rearm->reset();
  return applied;
}

bool PartitionedRuntime::executeMove(graph::VertexId v, graph::PartitionId to) {
  if (!state_.moveVertex(graph_, v, to)) return false;
  assignmentTouched_.touch(v);
  ++totalMigrations_;
  return true;
}

MemoryReport PartitionedRuntime::memoryReport() const noexcept {
  MemoryReport report;
  const graph::AdjacencyPool::ArenaStats pool = graph_.adjacencyPool().stats();
  report.adjacencyArenaBytes = pool.arenaSlots * sizeof(graph::VertexId);
  report.adjacencyLiveBytes = pool.liveSlots * sizeof(graph::VertexId);
  report.adjacencySlackBytes = pool.slackSlots * sizeof(graph::VertexId);
  report.adjacencyFreeBytes = pool.freeSlots * sizeof(graph::VertexId);
  report.adjacencyMetaBytes = pool.metaBytes;
  report.graphBookkeepingBytes = graph_.bookkeepingBytes();
  report.partitionStateBytes =
      state_.assignment().capacity() * sizeof(graph::PartitionId) +
      state_.loads().capacity() * sizeof(std::size_t) +
      state_.degreeLoads().capacity() * sizeof(std::size_t) +
      adjacencyTouched_.bytes() + assignmentTouched_.bytes();
  return report;
}

}  // namespace xdgp::core
