#pragma once

#include <cstdint>

#include "graph/types.h"
#include "util/rng.h"

namespace xdgp::core {

/// Stateless per-(iteration, vertex) random draws for the migration loop.
///
/// The willingness gate and tie-breaks are pure functions of
/// (seed, iteration, vertex), not of a sequential generator, so
///  - a run is reproducible from its seed at *any* thread count — the
///    decision phase can be evaluated in parallel without changing results;
///  - the distributed implementation needs no coordinated RNG: every worker
///    derives the same decision its peers would predict, keeping the
///    algorithm free of extra synchronisation (§2's design constraint);
///  - willingness can gate *admission* (did the vertex move?) rather than
///    evaluation (was its desire computed?) without changing any outcome:
///    skipping an unwilling vertex's evaluation and discarding its computed
///    desire are indistinguishable, because the draw never feeds back into
///    the desire. The adaptive engine relies on this to keep a vertex's
///    desire a pure function of its neighbourhood snapshot — the invariant
///    behind its frontier (AdaptiveOptions::frontier).
class StatelessDraws {
 public:
  StatelessDraws(std::uint64_t seed, double willingness) noexcept
      : seed_(seed), threshold_(thresholdFor(willingness)) {}

  /// Does vertex v attempt a migration at `iteration`? True with the
  /// configured probability s; exactly never for s <= 0, always for s >= 1.
  [[nodiscard]] bool willing(std::size_t iteration, graph::VertexId v) const noexcept {
    if (threshold_ == 0) return false;
    if (threshold_ == ~std::uint64_t{0}) return true;
    return draw(iteration, v, 0x9e3779b97f4a7c15ULL) < threshold_;
  }

  /// Tie-break value for the candidate-argmax choice.
  [[nodiscard]] std::uint32_t tieBreak(std::size_t iteration,
                                       graph::VertexId v) const noexcept {
    return static_cast<std::uint32_t>(draw(iteration, v, 0xc2b2ae3d27d4eb4fULL));
  }

 private:
  [[nodiscard]] std::uint64_t draw(std::size_t iteration, graph::VertexId v,
                                   std::uint64_t salt) const noexcept {
    std::uint64_t x = seed_ ^ salt;
    x = util::Rng::splitmix64(x + 0x9e3779b97f4a7c15ULL * (iteration + 1));
    x = util::Rng::splitmix64(x ^ (0xff51afd7ed558ccdULL * (v + 1)));
    return x;
  }

  static std::uint64_t thresholdFor(double s) noexcept {
    if (s <= 0.0) return 0;
    if (s >= 1.0) return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(s * 18446744073709551616.0);  // s * 2^64
  }

  std::uint64_t seed_;
  std::uint64_t threshold_;
};

}  // namespace xdgp::core
