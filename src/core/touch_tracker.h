#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace xdgp::core {

/// Deduplicated log of touched vertex ids: a dense byte mark keeps each id
/// at most once in the list, so the log is bounded by the id space no matter
/// how many windows pass between drains. O(1) amortised per touch; drain()
/// and clear() cost O(touched), never O(idBound).
class TouchTracker {
 public:
  void touch(graph::VertexId v) {
    if (v >= mark_.size()) {
      mark_.resize(std::max<std::size_t>(static_cast<std::size_t>(v) + 1,
                                         mark_.size() * 2),
                   0);
    }
    if (mark_[v] == 0) {
      mark_[v] = 1;
      touched_.push_back(v);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return touched_.size(); }
  [[nodiscard]] bool empty() const noexcept { return touched_.empty(); }

  /// The accumulated ids, insertion-ordered, without consuming them.
  [[nodiscard]] const std::vector<graph::VertexId>& items() const noexcept {
    return touched_;
  }

  /// Consumes the log: returns the accumulated ids and resets the marks.
  [[nodiscard]] std::vector<graph::VertexId> drain() {
    for (const graph::VertexId v : touched_) mark_[v] = 0;
    return std::exchange(touched_, {});
  }

  void clear() {
    for (const graph::VertexId v : touched_) mark_[v] = 0;
    touched_.clear();
  }

  [[nodiscard]] std::size_t bytes() const noexcept {
    return touched_.capacity() * sizeof(graph::VertexId) + mark_.capacity();
  }

 private:
  std::vector<graph::VertexId> touched_;
  std::vector<std::uint8_t> mark_;  ///< per id: 1 = already in touched_
};

/// One drain's worth of per-vertex change, split by what a snapshot must
/// refresh: `adjacency` lists every vertex whose neighbour list or liveness
/// may differ from the previous drain (edge endpoints, added/removed
/// vertices, and the surviving neighbours of removed vertices); `assignment`
/// lists every vertex whose partition value may have changed (loads, moves,
/// removals). Both are supersets by design — over-approximation only costs
/// a few redundant overlay entries, never correctness.
struct TouchSet {
  std::vector<graph::VertexId> adjacency;
  std::vector<graph::VertexId> assignment;

  [[nodiscard]] bool empty() const noexcept {
    return adjacency.empty() && assignment.empty();
  }
};

}  // namespace xdgp::core
