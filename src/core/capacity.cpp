#include "core/capacity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace xdgp::core {

CapacityModel::CapacityModel(std::size_t n, std::size_t k, double capacityFactor) {
  if (k == 0) throw std::invalid_argument("CapacityModel: k must be positive");
  if (capacityFactor < 1.0) {
    throw std::invalid_argument("CapacityModel: capacityFactor must be >= 1");
  }
  const double balanced = static_cast<double>(n) / static_cast<double>(k);
  // The epsilon keeps exact products (e.g. 100 * 1.1) from ceiling up on
  // floating-point dust.
  const auto cap =
      static_cast<std::size_t>(std::ceil(balanced * capacityFactor - 1e-9));
  capacities_.assign(k, std::max<std::size_t>(cap, 1));
}

CapacityModel::CapacityModel(std::vector<std::size_t> capacities)
    : capacities_(std::move(capacities)) {
  if (capacities_.empty()) {
    throw std::invalid_argument("CapacityModel: need at least one partition");
  }
}

void CapacityModel::rescale(std::size_t n, double capacityFactor) {
  const double balanced =
      static_cast<double>(n) / static_cast<double>(capacities_.size());
  const auto cap =
      static_cast<std::size_t>(std::ceil(balanced * capacityFactor - 1e-9));
  for (auto& c : capacities_) c = std::max({c, cap, std::size_t{1}});
}

void CapacityModel::rescaleActive(std::size_t n, double capacityFactor,
                                  const std::vector<std::uint8_t>& activeMask,
                                  std::size_t activeCount) {
  if (activeMask.size() != capacities_.size()) {
    throw std::invalid_argument("rescaleActive: mask covers " +
                                std::to_string(activeMask.size()) +
                                " partitions, model has " +
                                std::to_string(capacities_.size()));
  }
  if (activeCount == 0) {
    throw std::invalid_argument("rescaleActive: no active partitions");
  }
  const double balanced =
      static_cast<double>(n) / static_cast<double>(activeCount);
  const auto cap =
      static_cast<std::size_t>(std::ceil(balanced * capacityFactor - 1e-9));
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    capacities_[i] =
        activeMask[i] != 0 ? std::max({capacities_[i], cap, std::size_t{1}}) : 0;
  }
}

}  // namespace xdgp::core
