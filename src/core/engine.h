#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/capacity.h"
#include "core/convergence.h"
#include "core/draws.h"
#include "core/partition_state.h"
#include "core/partitioned_runtime.h"
#include "graph/dynamic_graph.h"
#include "graph/update_stream.h"
#include "metrics/series.h"

namespace xdgp::core {

/// Which adaptive repartitioner drives a session. kGreedy is the paper's
/// neighbour-majority heuristic (AdaptiveEngine); kLpa is the Spinner-style
/// weighted label propagation (lpa::LpaEngine), the successor algorithm that
/// natively absorbs partitions being added or removed at run time.
enum class EngineKind { kGreedy, kLpa };

/// Stable on-disk / CLI code for an engine kind ("greedy" / "lpa").
[[nodiscard]] const char* engineKindCode(EngineKind kind) noexcept;

/// Inverse of engineKindCode; throws std::invalid_argument naming the known
/// codes (checkpoint manifests and --engine flags fail loudly on typos).
[[nodiscard]] EngineKind engineKindFromCode(const std::string& code);

/// Tunables of the adaptive repartitioning engines. The first block is the
/// paper's §2 algorithm; the lpa* block parameterises the Spinner-style
/// label-propagation engine and is ignored by the greedy one.
struct AdaptiveOptions {
  std::size_t k = 9;              ///< partitions (the paper's lab default)
  double capacityFactor = 1.1;    ///< C(i) = 110% of the balanced load
  double willingness = 0.5;       ///< s, the §2.3 migration probability
  std::size_t convergenceWindow = 30;  ///< quiet iterations to declare done
  bool enforceQuota = true;       ///< ablation: disable §2.2 quotas
  bool recordSeries = true;       ///< keep the per-iteration Fig. 7 series
  /// Frontier-driven iteration: evaluate only vertices whose decision could
  /// have changed — last iteration's movers and their neighbours, vertices
  /// whose desired move was gated (unwilling or quota-denied), and the
  /// endpoints of structural updates. Produces the identical trajectory as
  /// the full scan (the equivalence test suite asserts it) but the cost of
  /// step() scales with the amount of change, not with |V|. Fixed at
  /// construction; false restores the full O(idBound) scan. Greedy-only:
  /// the LPA score depends on global loads, so LPA always full-scans.
  bool frontier = true;
  /// Load measure: the paper's vertex counts, or the §6 edge-balanced
  /// extension (capacities and quotas in degree units).
  BalanceMode balanceMode = BalanceMode::kVertices;
  /// Worker threads for the decision phase. Decisions are pure functions of
  /// the iteration-start snapshot plus stateless draws (core/draws.h), so
  /// any thread count produces the identical run for the same seed.
  std::size_t threads = 1;
  std::uint64_t seed = 42;

  /// Which engine a Session / makeEngine builds over these options.
  EngineKind engine = EngineKind::kGreedy;
  /// LPA: weight c of the balance penalty in the per-label score
  ///   score(v, l) = |N(v) ∩ P(l)| / deg(v) − c · load(l) / capacity(l).
  double lpaBalanceFactor = 1.0;
  /// LPA: minimum score improvement for a migration to be worth executing —
  /// the "score-improvement quiescence" convergence knob. Larger values
  /// converge faster with a slightly coarser final cut. The default sits
  /// above the per-iteration jitter of the balance-penalty term (one
  /// migration shifts a label's penalty by factor/capacity, and tens of
  /// units move per iteration) but below the affinity quantum 1/deg of
  /// typical vertices, so load noise cannot keep the engine oscillating
  /// while genuine affinity gains still migrate.
  double lpaScoreEpsilon = 0.02;
  /// LPA: cap on migrations admitted per iteration (0 = unbounded). With
  /// StreamOptions::maxIterationsPerWindow this bounds per-window migration
  /// cost while the engine drains displaced vertices after a shrink.
  std::size_t lpaMigrationBudget = 0;
};

/// Result of a run-to-convergence call.
struct ConvergenceResult {
  std::size_t iterationsRun = 0;       ///< total iterations executed
  std::size_t convergenceIteration = 0;  ///< last iteration that migrated
  bool converged = false;
};

/// The common shape of an adaptive repartitioning engine, and the owner of
/// the state every engine shares: the PartitionedRuntime substrate (graph,
/// partition state, placement, migration accounting), the capacity model,
/// the convergence tracker, the stateless draws, and the recorded iteration
/// series. Subclasses implement one synchronous (BSP) step() plus the
/// engine-specific update and capacity hooks.
///
/// Elastic k: growPartitions / shrinkPartitions resize the partition set of
/// a *running* engine. The base class rejects them (the greedy engine's
/// per-partition machinery is sized at construction); engines that can
/// drain displaced vertices (LPA) override them. k() is the size of the
/// partition id space (grown ids included); activeK() excludes retired
/// partitions — ids stay stable across a shrink, production-style, so a
/// retired id is never reused for a different partition.
class Engine {
 public:
  using PlacementFn = PartitionedRuntime::PlacementFn;

  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs one iteration; returns the number of executed migrations.
  virtual std::size_t step() = 0;

  /// Steps until the convergence window closes or maxIterations elapse.
  ConvergenceResult runToConvergence(std::size_t maxIterations = 20'000);

  /// Applies a batch of structural updates and re-arms convergence tracking.
  /// Returns the number of events that changed the graph.
  virtual std::size_t applyUpdates(const std::vector<graph::UpdateEvent>& events) = 0;

  /// Re-provisions capacities to capacityFactor headroom over the current
  /// total load; never shrinks an active partition's capacity.
  virtual void rescaleCapacity() = 0;

  /// Replaces the default hash placement for stream-injected vertices.
  void setPlacement(PlacementFn placement) {
    runtime_.setPlacement(std::move(placement));
  }

  /// Checkpoint restore (serve layer): adopts a previous engine's
  /// deterministic trajectory state so a freshly constructed engine over the
  /// checkpointed graph + assignment continues bit-identically. Three pieces
  /// cannot be re-derived and must carry over: the iteration counter (the
  /// stateless draws are keyed by (seed, iteration, vertex)), the capacities
  /// (rescale never shrinks, so they are history-dependent), and the quiet
  /// streak. Throws std::invalid_argument when capacities.size() != k() —
  /// the *runtime* k, so a checkpoint taken after elastic growth restores
  /// against the grown partition set. Call restoreRetired() first when the
  /// checkpoint carries retired partitions.
  virtual void restoreCheckpoint(std::size_t iteration,
                                 std::vector<std::size_t> capacities,
                                 std::size_t quietIterations,
                                 std::size_t lastActiveIteration);

  /// Checkpoint restore of the retired-partition set (before
  /// restoreCheckpoint, which then overwrites capacities wholesale). The
  /// base class accepts only an empty set; elastic engines override.
  virtual void restoreRetired(std::span<const graph::PartitionId> ids);

  /// Elastic k: appends `n` fresh empty partitions and returns the new k.
  /// Base class: throws std::logic_error (engine does not support elastic k).
  virtual std::size_t growPartitions(std::size_t n);

  /// Elastic k: retires the given partitions; the engine drains their
  /// vertices over subsequent iterations. Returns the new activeK().
  /// Base class: throws std::logic_error.
  virtual std::size_t shrinkPartitions(std::span<const graph::PartitionId> ids);

  [[nodiscard]] virtual EngineKind kind() const noexcept = 0;

  /// Heap footprint of the runtime substrate plus engine scratch.
  [[nodiscard]] virtual MemoryReport memoryReport() const noexcept = 0;

  [[nodiscard]] const AdaptiveOptions& options() const noexcept { return options_; }
  [[nodiscard]] const graph::DynamicGraph& graph() const noexcept {
    return runtime_.graph();
  }
  [[nodiscard]] const PartitionState& state() const noexcept {
    return runtime_.state();
  }
  [[nodiscard]] const CapacityModel& capacity() const noexcept { return capacity_; }
  [[nodiscard]] const metrics::IterationSeries& series() const noexcept {
    return series_;
  }
  [[nodiscard]] std::size_t iteration() const noexcept { return iteration_; }
  [[nodiscard]] bool converged() const noexcept { return tracker_.converged(); }
  [[nodiscard]] double cutRatio() const noexcept {
    return state().cutRatio(graph());
  }

  /// Consecutive zero-migration iterations so far (checkpoint state).
  [[nodiscard]] std::size_t quietIterations() const noexcept {
    return tracker_.quietIterations();
  }

  /// Last iteration index that executed at least one migration.
  [[nodiscard]] std::size_t lastActiveIteration() const noexcept {
    return lastActive_;
  }

  /// Migrations executed over the engine's whole lifetime — the per-window
  /// deltas api::Session::stream reports, independent of recordSeries.
  [[nodiscard]] std::size_t totalMigrations() const noexcept {
    return runtime_.totalMigrations();
  }

  /// Consumes the runtime's per-vertex change log (see
  /// PartitionedRuntime::drainTouched) — the serving layer's feed for
  /// O(changed) snapshot publication.
  [[nodiscard]] TouchSet drainTouched() { return runtime_.drainTouched(); }

  /// Size of the partition id space — options().k plus elastic growth.
  [[nodiscard]] std::size_t k() const noexcept { return runtime_.k(); }

  /// Partitions still accepting vertices (k() minus the retired set).
  [[nodiscard]] std::size_t activeK() const noexcept { return runtime_.activeK(); }

  [[nodiscard]] bool isActive(graph::PartitionId p) const noexcept {
    return runtime_.isActive(p);
  }

  /// One byte per partition id, 1 = active — the mask metrics take to
  /// compute balance over the surviving partitions only.
  [[nodiscard]] const std::vector<std::uint8_t>& activeMask() const noexcept {
    return runtime_.activeMask();
  }

  [[nodiscard]] std::vector<graph::PartitionId> retiredPartitions() const {
    return runtime_.retiredPartitions();
  }

 protected:
  /// Takes ownership of the graph; `initial` must assign every alive vertex
  /// to a partition in [0, options.k) (PartitionedRuntime validates).
  Engine(graph::DynamicGraph g, metrics::Assignment initial,
         const AdaptiveOptions& options);

  AdaptiveOptions options_;
  PartitionedRuntime runtime_;
  CapacityModel capacity_;
  ConvergenceTracker tracker_;
  StatelessDraws draws_;
  metrics::IterationSeries series_;
  std::size_t iteration_ = 0;
  std::size_t lastActive_ = 0;
};

/// Constructs the engine options.engine selects — the single front door
/// api::Pipeline and every driver build through. Defined next to LpaEngine
/// (src/lpa/lpa_engine.cpp) so core/engine.cpp stays subclass-agnostic.
[[nodiscard]] std::unique_ptr<Engine> makeEngine(graph::DynamicGraph g,
                                                 metrics::Assignment initial,
                                                 const AdaptiveOptions& options);

}  // namespace xdgp::core
