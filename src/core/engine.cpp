#include "core/engine.h"

#include <stdexcept>

namespace xdgp::core {

const char* engineKindCode(EngineKind kind) noexcept {
  return kind == EngineKind::kLpa ? "lpa" : "greedy";
}

EngineKind engineKindFromCode(const std::string& code) {
  if (code == "greedy") return EngineKind::kGreedy;
  if (code == "lpa") return EngineKind::kLpa;
  throw std::invalid_argument("unknown engine '" + code +
                              "' (known: greedy, lpa)");
}

Engine::Engine(graph::DynamicGraph g, metrics::Assignment initial,
               const AdaptiveOptions& options)
    : options_(options),
      runtime_(std::move(g), std::move(initial), options.k),
      capacity_(runtime_.totalLoadUnits(options.balanceMode), options.k,
                options.capacityFactor),
      tracker_(options.convergenceWindow),
      draws_(options.seed, options.willingness) {}

ConvergenceResult Engine::runToConvergence(std::size_t maxIterations) {
  ConvergenceResult result;
  const std::size_t start = iteration_;
  while (!tracker_.converged() && iteration_ - start < maxIterations) {
    step();
  }
  result.iterationsRun = iteration_ - start;
  result.convergenceIteration = lastActive_;
  result.converged = tracker_.converged();
  return result;
}

void Engine::restoreCheckpoint(std::size_t iteration,
                               std::vector<std::size_t> capacities,
                               std::size_t quietIterations,
                               std::size_t lastActiveIteration) {
  if (capacities.size() != k()) {
    throw std::invalid_argument(
        "restoreCheckpoint: " + std::to_string(capacities.size()) +
        " capacities for k=" + std::to_string(k()));
  }
  iteration_ = iteration;
  lastActive_ = lastActiveIteration;
  capacity_ = CapacityModel(std::move(capacities));
  tracker_.restoreQuiet(quietIterations);
}

void Engine::restoreRetired(std::span<const graph::PartitionId> ids) {
  if (ids.empty()) return;
  throw std::logic_error(std::string(engineKindCode(kind())) +
                         " engine cannot restore retired partitions");
}

std::size_t Engine::growPartitions(std::size_t /*n*/) {
  throw std::logic_error(std::string(engineKindCode(kind())) +
                         " engine does not support elastic k (growPartitions)");
}

std::size_t Engine::shrinkPartitions(std::span<const graph::PartitionId> /*ids*/) {
  throw std::logic_error(std::string(engineKindCode(kind())) +
                         " engine does not support elastic k (shrinkPartitions)");
}

}  // namespace xdgp::core
