#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xdgp::core {

/// What a partition's "load" counts (§2.2 vs the §6 extension).
///
/// kVertices is the paper's main algorithm: C(i) caps |P_t(i)|.
///
/// kEdges implements the paper's first future-work direction — "partitions
/// that are balanced on the number of edges" — by switching every quantity
/// in the capacity/quota machinery from vertex counts to degree units:
///  - a partition's load is its degree sum Σ_{v∈P(i)} deg(v)
///    (PartitionState::degreeLoad), which capacities then cap;
///  - total provisioned load is 2|E| (each edge counted from both ends),
///    so CapacityModel is constructed/rescaled with n = 2|E|;
///  - a migrating vertex consumes deg(v) units of the destination's quota
///    (QuotaLedger::tryAdmit's `units`), so the worst-case admission bound
///    holds in degree units;
///  - zero-degree vertices never migrate (no neighbours attract them, and
///    QuotaLedger::tryAdmit rejects zero-unit requests).
/// Algorithms whose cost is proportional to edges (PageRank et al.) are
/// then load-balanced. Selected via AdaptiveOptions::balanceMode,
/// BackgroundPartitioner::Options::balanceMode, or `xdgp_cli
/// --balance=edges`.
enum class BalanceMode { kVertices, kEdges };

/// Partition capacity bookkeeping (§2.2).
///
/// Definition (Partition Capacity): C(i) caps |P_t(i)| at all times t. The
/// remaining capacity at iteration t is C_t(i) = C(i) − |P_t(i)|; it is the
/// quantity workers gossip to each other (one iteration stale, §3).
class CapacityModel {
 public:
  CapacityModel() = default;

  /// Uniform capacities: ceil(capacityFactor · n / k) per partition — the
  /// paper's "maximum capacity equal to 110% of the balanced load".
  CapacityModel(std::size_t n, std::size_t k, double capacityFactor);

  /// Explicit per-partition capacities (heterogeneous clusters).
  explicit CapacityModel(std::vector<std::size_t> capacities);

  [[nodiscard]] std::size_t k() const noexcept { return capacities_.size(); }

  [[nodiscard]] std::size_t capacity(std::size_t i) const noexcept {
    return capacities_[i];
  }

  /// Remaining capacity given the current load; clamped at zero when a
  /// partition is over-full (possible after dynamic vertex injections).
  [[nodiscard]] std::size_t remaining(std::size_t i, std::size_t load) const noexcept {
    return load >= capacities_[i] ? 0 : capacities_[i] - load;
  }

  /// Grows every capacity to accommodate a larger graph (called when
  /// dynamic updates push n above k·C; the paper's clusters would be
  /// re-provisioned the same way).
  void rescale(std::size_t n, double capacityFactor);

  /// Elastic k: appends `n` zero-capacity slots for freshly grown
  /// partitions; a follow-up rescaleActive provisions them.
  void addPartitions(std::size_t n) { capacities_.resize(capacities_.size() + n, 0); }

  /// Retire-aware re-provisioning: every *active* partition (activeMask[i]
  /// != 0) grows to ceil(capacityFactor · n / activeCount) — never shrinks —
  /// while every retired partition is forced to capacity 0, so nothing can
  /// migrate into it while its vertices drain out. The active target is
  /// derived from the active count, not capacities_.size(): the survivors
  /// of a shrink absorb the displaced load.
  void rescaleActive(std::size_t n, double capacityFactor,
                     const std::vector<std::uint8_t>& activeMask,
                     std::size_t activeCount);

  [[nodiscard]] const std::vector<std::size_t>& capacities() const noexcept {
    return capacities_;
  }

 private:
  std::vector<std::size_t> capacities_;
};

}  // namespace xdgp::core
