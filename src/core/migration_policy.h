#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"
#include "metrics/cuts.h"

namespace xdgp::core {

/// The paper's greedy vertex-migration heuristic (§2.1), evaluated with
/// local information only: a vertex inspects the partitions of its
/// neighbours and targets the one holding the most of them, preferring to
/// stay whenever the current partition is among the best ("since migrating
/// a vertex potentially introduces an overhead").
class MigrationPolicy {
 public:
  /// Scratch buffers sized for k partitions; reuse one instance per thread.
  explicit MigrationPolicy(std::size_t k);

  /// Decision for vertex v with the given neighbourhood under `assignment`.
  /// Returns kNoPartition to stay, otherwise the migration target.
  ///
  /// `tieBreaker` selects among equally-best foreign partitions (the paper
  /// leaves ties unspecified; a caller-supplied draw keeps runs seedable).
  ///
  /// `tiedMask` (optional) reports the argmax *set* behind the choice, for
  /// the adaptive engine's frontier: a quota-starved desire may only be
  /// parked when no partition its target could rotate to on a future draw
  /// has quota. Encoding: 0 when the target was unique (or the decision was
  /// "stay"); otherwise a bitmask of the tied partitions when they all fit
  /// in 64 bits, or kTiedOverflow when any tied partition id is >= 64
  /// (caller must then assume every partition is a possible target).
  [[nodiscard]] graph::PartitionId target(std::span<const graph::VertexId> neighbors,
                                          const metrics::Assignment& assignment,
                                          graph::PartitionId current,
                                          std::uint32_t tieBreaker = 0,
                                          std::uint64_t* tiedMask = nullptr);

  /// tiedMask sentinel: tied, but the set is not representable in 64 bits.
  static constexpr std::uint64_t kTiedOverflow = ~std::uint64_t{0};

  /// Candidate partitions cand(v, t): every partition containing v or one of
  /// its neighbours, i.e. the support of Γ(v, t) (exposed for tests and for
  /// the paper's formal definition).
  [[nodiscard]] std::vector<graph::PartitionId> candidates(
      std::span<const graph::VertexId> neighbors,
      const metrics::Assignment& assignment, graph::PartitionId current);

 private:
  /// Sparse per-partition neighbour counts: counts_ reset via touched_ so a
  /// decision costs O(deg), not O(k).
  std::vector<std::uint32_t> counts_;
  std::vector<graph::PartitionId> touched_;
  std::vector<graph::PartitionId> best_;
};

}  // namespace xdgp::core
