#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/capacity.h"
#include "core/convergence.h"
#include "core/partition_state.h"
#include "core/touch_tracker.h"
#include "graph/dynamic_graph.h"
#include "graph/update_stream.h"

namespace xdgp::core {

/// Heap-footprint breakdown of a partitioned runtime, in bytes — the
/// memory-budget half of the 10M-vertex scale pass. Every field is measured
/// from container capacities (what the allocator actually holds), not
/// element counts, so the report tracks real reservation including growth
/// slack. The adjacency terms decompose the AdjacencyPool arena exactly:
///   adjacencyArenaBytes == adjacencyLiveBytes + adjacencySlackBytes
///                          + adjacencyFreeBytes
/// (the pool's slot invariant, scaled by sizeof(VertexId)); reserved-over-
/// carved vector headroom is NOT in arena bytes and shows up only through
/// AdjacencyPool::ArenaStats::reservedBytes if a caller wants it.
struct MemoryReport {
  std::size_t adjacencyArenaBytes = 0;  ///< slots carved out of the arena
  std::size_t adjacencyLiveBytes = 0;   ///< occupied neighbour slots
  std::size_t adjacencySlackBytes = 0;  ///< power-of-two rounding in blocks
  std::size_t adjacencyFreeBytes = 0;   ///< parked blocks awaiting reuse
  std::size_t adjacencyMetaBytes = 0;   ///< per-list table + free lists
  std::size_t graphBookkeepingBytes = 0;  ///< alive flags + free-id list
  std::size_t partitionStateBytes = 0;  ///< assignment + load/degree arrays
                                        ///< + touched-vertex trackers
  std::size_t engineBytes = 0;  ///< engine scratch (frontier, desires, ...)

  /// Sum of every term (arena sub-terms counted once, via arena bytes).
  [[nodiscard]] std::size_t totalBytes() const noexcept {
    return adjacencyArenaBytes + adjacencyMetaBytes + graphBookkeepingBytes +
           partitionStateBytes + engineBytes;
  }
};

/// The substrate both BSP realisations stand on: the graph, the partition
/// state, stream-vertex placement, structural-update application, load
/// accounting in either balance mode, and the executed-migration counter.
///
/// Before this class existed, core::AdaptiveEngine (the algorithm-quality
/// fast path) and pregel::Engine (the distributed realisation with real
/// message routing) each carried a private copy of this logic, and the two
/// copies had drifted — different `applied` counting for edge insertions
/// that create endpoints, and a silently-accepted out-of-range initial
/// assignment on the pregel side. It now exists once; the engines differ
/// only in what they layer on top (frontier iteration vs. mailboxes and
/// supersteps).
class PartitionedRuntime {
 public:
  using PlacementFn = std::function<graph::PartitionId(graph::VertexId)>;

  /// Engine-specific reactions to structural updates. Every hook fires while
  /// the graph and partition state are consistent with the described moment.
  class MutationHooks {
   public:
    virtual ~MutationHooks() = default;
    /// v just became alive and was assigned its placement partition; the id
    /// space (graph.idBound()) may have grown.
    virtual void onVertexLoaded(graph::VertexId /*v*/) {}
    /// v is about to be removed; its adjacency is still intact.
    virtual void onVertexRemoving(graph::VertexId /*v*/) {}
    virtual void onEdgeAdded(graph::VertexId /*u*/, graph::VertexId /*v*/) {}
    virtual void onEdgeRemoved(graph::VertexId /*u*/, graph::VertexId /*v*/) {}
  };

  /// Takes ownership of the graph. `initial` must assign every alive vertex
  /// to a partition in [0, k); an assignment referencing a partition >= k is
  /// a hard std::invalid_argument (it used to index per-worker arrays
  /// in-range only by luck on the pregel side — the mirror of the CLI's
  /// `--k` vs assignment mismatch error).
  PartitionedRuntime(graph::DynamicGraph g, metrics::Assignment initial,
                     std::size_t k);

  /// Applies a batch of structural updates: vertices enter via the placement
  /// function, the partition state tracks every change, and `hooks` lets the
  /// owning engine maintain its own per-vertex structures. Returns the
  /// number of events that changed the graph (an edge insertion that only
  /// created its endpoints still counts — loads shifted). When `rearm` is
  /// given and anything changed, the tracker resets: topology changes always
  /// re-open adaptation.
  std::size_t applyEvents(const std::vector<graph::UpdateEvent>& events,
                          MutationHooks& hooks, ConvergenceTracker* rearm);

  /// Moves v to partition `to`, counting it in totalMigrations(). Returns
  /// false for a self-move (nothing changed, nothing counted).
  bool executeMove(graph::VertexId v, graph::PartitionId to);

  /// Total load in the given balance mode: |V| for vertex balancing, 2|E|
  /// for the §6 edge-balanced extension — the `n` CapacityModel provisioning
  /// and rescaling is defined over.
  [[nodiscard]] std::size_t totalLoadUnits(BalanceMode mode) const noexcept {
    return mode == BalanceMode::kVertices ? graph_.numVertices()
                                          : 2 * graph_.numEdges();
  }

  /// Grows `capacity` to `capacityFactor` headroom over the current total
  /// load — the re-provisioning step both engines expose after large
  /// injections.
  void rescaleCapacity(CapacityModel& capacity, BalanceMode mode,
                       double capacityFactor) const {
    capacity.rescale(totalLoadUnits(mode), capacityFactor);
  }

  /// Replaces the default hash placement for stream-injected vertices. A
  /// custom placement is the caller's contract from then on: elastic resizes
  /// no longer rebuild it (the default hash placement IS rebuilt, so it only
  /// ever targets active partitions).
  void setPlacement(PlacementFn placement) {
    placement_ = std::move(placement);
    customPlacement_ = true;
  }
  [[nodiscard]] const PlacementFn& placement() const noexcept { return placement_; }

  // --- elastic k ----------------------------------------------------------
  // The partition id space only ever grows; a shrink *retires* ids instead
  // of compacting them (stable ids, production-style). Retired partitions
  // keep their loads until the owning engine drains their vertices — the
  // runtime only flips the mask and re-targets default placement.

  /// Appends `n` fresh empty partitions (ids k .. k+n-1); returns the new k.
  std::size_t growPartitions(std::size_t n);

  /// Marks the given partitions retired. Validates first (unknown id,
  /// duplicate, already retired, or retiring every active partition are all
  /// std::invalid_argument) and applies atomically — a throw changes
  /// nothing. Vertices stay where they are; draining them is engine policy.
  void retirePartitions(std::span<const graph::PartitionId> ids);

  [[nodiscard]] bool isActive(graph::PartitionId p) const noexcept {
    return p < active_.size() && active_[p] != 0;
  }
  [[nodiscard]] std::size_t activeK() const noexcept { return activeK_; }

  /// One byte per partition id, 1 = active.
  [[nodiscard]] const std::vector<std::uint8_t>& activeMask() const noexcept {
    return active_;
  }

  /// Retired partition ids, ascending (empty until the first shrink).
  [[nodiscard]] std::vector<graph::PartitionId> retiredPartitions() const;

  /// Bumped by every growPartitions / retirePartitions — snapshot consumers
  /// use it to notice a resize between observations.
  [[nodiscard]] std::uint64_t kEpoch() const noexcept { return kEpoch_; }

  [[nodiscard]] const graph::DynamicGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const PartitionState& state() const noexcept { return state_; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

  /// Migrations executed over the runtime's whole lifetime.
  [[nodiscard]] std::size_t totalMigrations() const noexcept {
    return totalMigrations_;
  }

  /// Consumes the per-vertex change log accumulated since the last drain:
  /// which vertices' adjacency/liveness changed (applyEvents) and which
  /// vertices' partition value changed (placement, moves, removals). The
  /// serving layer turns these into O(changed) snapshot overlays; callers
  /// that don't drain pay at most one deduplicated entry per vertex id.
  [[nodiscard]] TouchSet drainTouched() {
    return {adjacencyTouched_.drain(), assignmentTouched_.drain()};
  }

  /// Measures the substrate's heap footprint (engineBytes left 0 for the
  /// owning engine to fill in — AdaptiveEngine::memoryReport does).
  [[nodiscard]] MemoryReport memoryReport() const noexcept;

 private:
  /// Loads a streamed-in vertex: placement (hash by default, the system
  /// default the paper adapts away from) plus partition-state registration.
  void loadVertex(graph::VertexId v, MutationHooks& hooks);

  /// Rebuilds the default hash placement over the current active partitions
  /// (no-op once a custom placement was set). With every partition active
  /// this is exactly splitmix64(v) % k — the historical default.
  void refreshDefaultPlacement();

  graph::DynamicGraph graph_;
  PartitionState state_;
  PlacementFn placement_;
  std::size_t k_;
  std::size_t totalMigrations_ = 0;
  std::vector<std::uint8_t> active_;  ///< per partition id, 1 = active
  std::size_t activeK_ = 0;
  std::uint64_t kEpoch_ = 0;
  bool customPlacement_ = false;
  TouchTracker adjacencyTouched_;   ///< neighbour list / liveness changed
  TouchTracker assignmentTouched_;  ///< partition value changed
};

}  // namespace xdgp::core
