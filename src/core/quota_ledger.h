#pragma once

#include <cstddef>
#include <vector>

#include "core/capacity.h"
#include "graph/types.h"

namespace xdgp::core {

/// Worst-case migration quotas (§2.2).
///
/// Capacity information is one iteration stale and migration decisions are
/// independent, so the only safe admission rule with local knowledge splits
/// each destination's remaining capacity equally across all possible source
/// partitions:
///     Q_t(i, j) = C_t(j) / (|P_t| − 1),  j != i.
/// Even if every source exhausts its quota simultaneously, partition j
/// receives at most C_t(j) vertices — the capacity invariant the tests
/// assert after every iteration.
class QuotaLedger {
 public:
  explicit QuotaLedger(std::size_t k);

  /// Recomputes quotas from the loads at the start of an iteration and
  /// clears the per-pair usage counters. Only counters touched since the
  /// previous call are reset, so the cost is O(k + admitted pairs) rather
  /// than O(k²) — in converged phases (no admissions) the whole ledger
  /// restarts in O(k).
  void beginIteration(const CapacityModel& capacity,
                      const std::vector<std::size_t>& loads);

  /// Admits (and records) a migration from partition i to j when the pair
  /// quota still has room for `units` more load (1 for vertex balancing,
  /// deg(v) for the §6 edge-balanced extension). Self-moves and zero-unit
  /// requests are rejected.
  [[nodiscard]] bool tryAdmit(graph::PartitionId i, graph::PartitionId j,
                              std::size_t units = 1);

  /// The per-pair quota Q_t(i, j) currently in force (same for every i).
  [[nodiscard]] std::size_t quota(graph::PartitionId j) const noexcept {
    return quotas_[j];
  }

  [[nodiscard]] std::size_t used(graph::PartitionId i,
                                 graph::PartitionId j) const noexcept {
    return used_[i * k_ + j];
  }

  [[nodiscard]] std::size_t k() const noexcept { return k_; }

 private:
  std::size_t k_;
  std::vector<std::size_t> quotas_;   // per destination
  std::vector<std::size_t> used_;     // k x k, row = source
  std::vector<std::size_t> touched_;  // used_ indices dirtied this iteration
};

}  // namespace xdgp::core
