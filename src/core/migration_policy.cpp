#include "core/migration_policy.h"

#include <algorithm>

namespace xdgp::core {

MigrationPolicy::MigrationPolicy(std::size_t k) : counts_(k, 0) {
  touched_.reserve(16);
  best_.reserve(8);
}

graph::PartitionId MigrationPolicy::target(std::span<const graph::VertexId> neighbors,
                                           const metrics::Assignment& assignment,
                                           graph::PartitionId current,
                                           std::uint32_t tieBreaker,
                                           std::uint64_t* tiedMask) {
  touched_.clear();
  std::uint32_t bestCount = 0;
  for (const graph::VertexId nbr : neighbors) {
    const graph::PartitionId p = assignment[nbr];
    if (p == graph::kNoPartition) continue;  // neighbour mid-removal
    if (counts_[p] == 0) touched_.push_back(p);
    const std::uint32_t c = ++counts_[p];
    if (c > bestCount) bestCount = c;
  }
  graph::PartitionId result = graph::kNoPartition;
  if (tiedMask != nullptr) *tiedMask = 0;
  if (bestCount > 0 && counts_[current] != bestCount) {
    // Strictly better foreign partitions exist; pick among the argmax set.
    best_.clear();
    for (const graph::PartitionId p : touched_) {
      if (counts_[p] == bestCount) best_.push_back(p);
    }
    // touched_ order is neighbour iteration order — a property of the
    // graph's memory layout, not of the abstract graph (a checkpoint-
    // restored graph enumerates the same neighbours in a different order).
    // Canonicalise so the tie draw lands on the same partition either way.
    std::sort(best_.begin(), best_.end());
    result = best_.size() == 1 ? best_.front() : best_[tieBreaker % best_.size()];
    if (tiedMask != nullptr && best_.size() > 1) {
      std::uint64_t mask = 0;
      for (const graph::PartitionId p : best_) {
        if (p >= 64) {
          mask = kTiedOverflow;
          break;
        }
        mask |= std::uint64_t{1} << p;
      }
      *tiedMask = mask;
    }
  }
  for (const graph::PartitionId p : touched_) counts_[p] = 0;
  return result;
}

std::vector<graph::PartitionId> MigrationPolicy::candidates(
    std::span<const graph::VertexId> neighbors, const metrics::Assignment& assignment,
    graph::PartitionId current) {
  // Dedup via the same counts_/touched_ scratch marking target() uses, so a
  // call costs O(deg + |cand| log |cand|) instead of O(deg · |cand|).
  touched_.clear();
  // Γ(v, t) includes v itself, so the current partition is always in.
  counts_[current] = 1;
  touched_.push_back(current);
  for (const graph::VertexId nbr : neighbors) {
    const graph::PartitionId p = assignment[nbr];
    if (p == graph::kNoPartition) continue;
    if (counts_[p] == 0) touched_.push_back(p);
    ++counts_[p];
  }
  std::vector<graph::PartitionId> cand(touched_.begin(), touched_.end());
  for (const graph::PartitionId p : touched_) counts_[p] = 0;
  std::sort(cand.begin(), cand.end());
  return cand;
}

}  // namespace xdgp::core
