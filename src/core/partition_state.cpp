#include "core/partition_state.h"

#include <stdexcept>

namespace xdgp::core {

PartitionState::PartitionState(const graph::DynamicGraph& g,
                               metrics::Assignment initial, std::size_t k)
    : assignment_(std::move(initial)), loads_(k, 0), degreeLoads_(k, 0) {
  if (assignment_.size() < g.idBound()) assignment_.resize(g.idBound(), graph::kNoPartition);
  g.forEachVertex([&](graph::VertexId v) {
    const graph::PartitionId p = assignment_[v];
    if (p >= k) {
      throw std::invalid_argument("PartitionState: unassigned or out-of-range vertex");
    }
    ++loads_[p];
    degreeLoads_[p] += g.degree(v);
  });
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    if (assignment_[u] != assignment_[v]) ++cuts_;
  });
}

bool PartitionState::moveVertex(const graph::DynamicGraph& g, graph::VertexId v,
                                graph::PartitionId to) {
  const graph::PartitionId from = assignment_[v];
  if (from == to) return false;
  for (const graph::VertexId nbr : g.neighbors(v)) {
    const graph::PartitionId np = assignment_[nbr];
    if (np == from) ++cuts_;        // was internal, becomes cut
    else if (np == to) --cuts_;     // was cut, becomes internal
  }
  --loads_[from];
  ++loads_[to];
  const std::size_t degree = g.degree(v);
  degreeLoads_[from] -= degree;
  degreeLoads_[to] += degree;
  assignment_[v] = to;
  return true;
}

void PartitionState::onVertexAdded(graph::VertexId v, graph::PartitionId p) {
  if (v >= assignment_.size()) assignment_.resize(v + 1, graph::kNoPartition);
  assignment_[v] = p;
  ++loads_[p];
  // A streamed-in vertex starts isolated; its edges arrive as edge events.
}

void PartitionState::onVertexRemoving(const graph::DynamicGraph& g, graph::VertexId v) {
  const graph::PartitionId p = assignment_[v];
  for (const graph::VertexId nbr : g.neighbors(v)) {
    if (assignment_[nbr] != p) --cuts_;
    // The neighbour loses one degree in its own partition.
    --degreeLoads_[assignment_[nbr]];
  }
  --loads_[p];
  degreeLoads_[p] -= g.degree(v);
  assignment_[v] = graph::kNoPartition;
}

void PartitionState::onEdgeAdded(graph::VertexId u, graph::VertexId v) {
  if (assignment_[u] != assignment_[v]) ++cuts_;
  ++degreeLoads_[assignment_[u]];
  ++degreeLoads_[assignment_[v]];
}

void PartitionState::onEdgeRemoved(graph::VertexId u, graph::VertexId v) {
  if (assignment_[u] != assignment_[v]) --cuts_;
  --degreeLoads_[assignment_[u]];
  --degreeLoads_[assignment_[v]];
}

}  // namespace xdgp::core
