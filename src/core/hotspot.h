#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/capacity.h"

namespace xdgp::core {

/// Runtime-statistics extension (the paper's §6 second future-work
/// direction): "take into account runtime statistics, such as the hot spots
/// (i.e. partitions that are more active than others), in order to achieve a
/// better load balancing of the system".
///
/// The model keeps an exponential moving average of per-partition activity
/// (compute units processed per iteration, fed by the engine) and shrinks
/// the *effective* capacity of hotter-than-average partitions, so the quota
/// mechanism steers migration away from them and they shed load — no change
/// to the migration heuristic itself is needed.
class HotspotModel {
 public:
  struct Options {
    double ewmaAlpha = 0.2;   ///< smoothing of the activity signal
    /// Maximum fraction of capacity withheld from the hottest partition.
    /// Bounded so total effective capacity still exceeds the total load
    /// (otherwise migration would gridlock).
    double maxShrink = 0.3;
  };

  HotspotModel(std::size_t k, Options options)
      : options_(options), heat_(k, 0.0) {}

  /// Feeds one iteration's per-partition activity (size k).
  void observe(const std::vector<double>& activity) noexcept {
    for (std::size_t i = 0; i < heat_.size() && i < activity.size(); ++i) {
      heat_[i] = primed_ ? options_.ewmaAlpha * activity[i] +
                               (1.0 - options_.ewmaAlpha) * heat_[i]
                         : activity[i];
    }
    primed_ = true;
  }

  [[nodiscard]] const std::vector<double>& heat() const noexcept { return heat_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }

  /// Capacities with hot partitions derated: partition i keeps
  /// C(i)·(1 − maxShrink·excess_i), where excess_i ∈ [0, 1] is its heat above
  /// the mean, normalised by the hottest partition's excess. Cooler-than-
  /// average partitions keep full capacity.
  [[nodiscard]] std::vector<std::size_t> effectiveCapacities(
      const CapacityModel& base) const {
    std::vector<std::size_t> capacities = base.capacities();
    if (!primed_ || capacities.size() != heat_.size()) return capacities;
    double mean = 0.0, peak = 0.0;
    for (const double h : heat_) mean += h;
    mean /= static_cast<double>(heat_.size());
    for (const double h : heat_) peak = std::max(peak, h - mean);
    if (peak <= 0.0) return capacities;
    for (std::size_t i = 0; i < capacities.size(); ++i) {
      const double excess = std::max(0.0, heat_[i] - mean) / peak;
      const double scale = 1.0 - options_.maxShrink * excess;
      capacities[i] =
          static_cast<std::size_t>(static_cast<double>(capacities[i]) * scale);
    }
    return capacities;
  }

 private:
  Options options_;
  std::vector<double> heat_;
  bool primed_ = false;
};

}  // namespace xdgp::core
