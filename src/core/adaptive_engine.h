#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/migration_policy.h"
#include "core/quota_ledger.h"
#include "util/thread_pool.h"

namespace xdgp::core {

/// Single-process execution of the paper's adaptive iterative partitioning
/// (§2): synchronous iterations in which every vertex, with probability s,
/// greedily targets the partition holding most of its neighbours, subject to
/// the worst-case capacity quotas Q_t(i,j) = C_t(j)/(k−1).
///
/// Iterations are synchronous (BSP): all decisions in iteration t observe
/// the assignment as of the start of t and take effect together at its end —
/// the logical equivalent of the distributed implementation's one-iteration
/// migration deferral (§3). The distributed realisation with real message
/// routing lives in pregel::Engine; this engine is the fast path for the
/// algorithm-quality experiments (Figs. 1, 4, 5, 6). Both stand on the same
/// core::PartitionedRuntime; the Spinner-style label-propagation alternative
/// (lpa::LpaEngine) shares the same substrate through the core::Engine base.
///
/// The greedy desire is a pure function of a vertex's neighbourhood
/// snapshot (willingness gates *migration*, not evaluation), which is what
/// makes the frontier sound: a vertex that last evaluated to "stay" cannot
/// change its mind until something in its neighbourhood moves, so it is
/// skipped until then. See AdaptiveOptions::frontier.
///
/// Dynamic graphs: applyUpdates() injects/removes vertices and edges between
/// iterations; new vertices enter via the placement function (hash
/// partitioning by default, like the systems the paper targets), and the
/// iterative process adapts from there.
///
/// Elastic k is NOT supported here: the quota ledger and migration policy
/// are sized at construction, and the paper's algorithm has no notion of a
/// draining partition — growPartitions/shrinkPartitions throw (base class).
/// Use the LPA engine for live resizes.
class AdaptiveEngine final : public Engine {
 public:
  /// Takes ownership of the graph; `initial` must assign every alive vertex
  /// to a partition in [0, options.k) (PartitionedRuntime validates).
  AdaptiveEngine(graph::DynamicGraph g, metrics::Assignment initial,
                 AdaptiveOptions options);

  /// Runs one iteration; returns the number of executed migrations.
  std::size_t step() override;

  /// Applies a batch of structural updates and re-arms convergence tracking.
  /// Returns the number of events that changed the graph.
  std::size_t applyUpdates(const std::vector<graph::UpdateEvent>& events) override;

  /// Grows capacities to options.capacityFactor headroom over the current
  /// balanced load (in the configured balance mode); never shrinks an
  /// existing capacity. Call after large injections when the original
  /// provisioning should be revised.
  void rescaleCapacity() override;

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kGreedy;
  }

  /// Vertices whose decision was (re)computed by the last step() — the
  /// alive frontier in frontier mode, every alive vertex otherwise. The §2
  /// lightweight-heuristic claim in numbers: this drops towards 0 as the
  /// partitioning converges.
  [[nodiscard]] std::size_t lastEvaluatedCount() const noexcept {
    return lastEvaluated_;
  }

  /// Vertices whose desire is quota-starved and parked off the frontier
  /// until any load or capacity shifts (0 in full-scan mode).
  [[nodiscard]] std::size_t parkedCount() const noexcept { return parked_.size(); }

  /// Heap footprint of the runtime substrate plus this engine's per-vertex
  /// scratch (desires, tie masks, frontier double-buffer, parked flags, the
  /// recorded iteration series) — the MemoryReport the scale bench publishes
  /// next to peak RSS.
  [[nodiscard]] MemoryReport memoryReport() const noexcept override;

 private:
  /// Frontier maintenance on structural updates (PartitionedRuntime hooks):
  /// every vertex whose cached decision could have changed is re-queued.
  class DirtyHooks final : public PartitionedRuntime::MutationHooks {
   public:
    explicit DirtyHooks(AdaptiveEngine& engine) noexcept : engine_(engine) {}
    void onVertexLoaded(graph::VertexId v) override { engine_.markDirty(v); }
    void onVertexRemoving(graph::VertexId v) override {
      // The survivors lose a neighbour; their cached decisions expire.
      for (const graph::VertexId nbr : engine_.graph().neighbors(v)) {
        engine_.markDirty(nbr);
      }
    }
    void onEdgeAdded(graph::VertexId u, graph::VertexId v) override {
      engine_.markDirty(u);
      engine_.markDirty(v);
    }
    void onEdgeRemoved(graph::VertexId u, graph::VertexId v) override {
      engine_.markDirty(u);
      engine_.markDirty(v);
    }

   private:
    AdaptiveEngine& engine_;
  };

  /// Decision phase: fills desires_ (kNoPartition = stay) for the frontier
  /// (or all of [0, idBound) in full-scan mode).
  void evaluateDecisions();

  /// Admission for one evaluated vertex: willingness gate, then quota;
  /// gated desires re-enter the frontier.
  void admit(graph::VertexId v, bool edgeBalance);

  /// Queues v for re-evaluation next iteration (no-op in full-scan mode).
  void markDirty(graph::VertexId v);

  /// Parks a quota-starved desire off the frontier (no-op in full-scan
  /// mode). Its denial is `units > Q_t(i, j)`, and in a zero-migration
  /// iteration no quota is consumed, so the outcome cannot change until
  /// loads or capacities do — which is when unparkAll() re-queues everyone.
  void park(graph::VertexId v);
  void unparkAll();

  QuotaLedger quota_;
  MigrationPolicy policy_;
  std::vector<graph::PartitionId> desires_;
  /// MigrationPolicy tie masks per desire: a tied target rotates with the
  /// per-iteration draw, so a starved tied desire may only park when every
  /// partition in its argmax set is starved too (see admit()).
  std::vector<std::uint64_t> desireTiedMask_;
  std::vector<std::pair<graph::VertexId, graph::PartitionId>> pendingMoves_;
  /// Frontier double-buffer: frontier_ is evaluated this iteration;
  /// nextFrontier_/inNextFrontier_ accumulate who must be re-examined.
  std::vector<graph::VertexId> frontier_;
  std::vector<graph::VertexId> nextFrontier_;
  std::vector<std::uint8_t> inNextFrontier_;
  std::vector<graph::VertexId> parked_;
  std::vector<std::uint8_t> isParked_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::size_t lastEvaluated_ = 0;
};

}  // namespace xdgp::core
