#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/capacity.h"
#include "core/convergence.h"
#include "core/draws.h"
#include "core/migration_policy.h"
#include "core/partition_state.h"
#include "core/partitioned_runtime.h"
#include "core/quota_ledger.h"
#include "graph/dynamic_graph.h"
#include "graph/update_stream.h"
#include "metrics/series.h"
#include "util/thread_pool.h"

namespace xdgp::core {

/// Tunables of the adaptive iterative partitioning algorithm (§2).
struct AdaptiveOptions {
  std::size_t k = 9;              ///< partitions (the paper's lab default)
  double capacityFactor = 1.1;    ///< C(i) = 110% of the balanced load
  double willingness = 0.5;       ///< s, the §2.3 migration probability
  std::size_t convergenceWindow = 30;  ///< quiet iterations to declare done
  bool enforceQuota = true;       ///< ablation: disable §2.2 quotas
  bool recordSeries = true;       ///< keep the per-iteration Fig. 7 series
  /// Frontier-driven iteration: evaluate only vertices whose decision could
  /// have changed — last iteration's movers and their neighbours, vertices
  /// whose desired move was gated (unwilling or quota-denied), and the
  /// endpoints of structural updates. Produces the identical trajectory as
  /// the full scan (the equivalence test suite asserts it) but the cost of
  /// step() scales with the amount of change, not with |V|. Fixed at
  /// construction; false restores the full O(idBound) scan.
  bool frontier = true;
  /// Load measure: the paper's vertex counts, or the §6 edge-balanced
  /// extension (capacities and quotas in degree units).
  BalanceMode balanceMode = BalanceMode::kVertices;
  /// Worker threads for the decision phase. Decisions are pure functions of
  /// the iteration-start snapshot plus stateless draws (core/draws.h), so
  /// any thread count produces the identical run for the same seed.
  std::size_t threads = 1;
  std::uint64_t seed = 42;
};

/// Result of a run-to-convergence call.
struct ConvergenceResult {
  std::size_t iterationsRun = 0;       ///< total iterations executed
  std::size_t convergenceIteration = 0;  ///< last iteration that migrated
  bool converged = false;
};

/// Single-process execution of the paper's adaptive iterative partitioning
/// (§2): synchronous iterations in which every vertex, with probability s,
/// greedily targets the partition holding most of its neighbours, subject to
/// the worst-case capacity quotas Q_t(i,j) = C_t(j)/(k−1).
///
/// Iterations are synchronous (BSP): all decisions in iteration t observe
/// the assignment as of the start of t and take effect together at its end —
/// the logical equivalent of the distributed implementation's one-iteration
/// migration deferral (§3). The distributed realisation with real message
/// routing lives in pregel::Engine; this engine is the fast path for the
/// algorithm-quality experiments (Figs. 1, 4, 5, 6). Both stand on the same
/// core::PartitionedRuntime, which owns the graph, the partition state, and
/// structural-update application.
///
/// The greedy desire is a pure function of a vertex's neighbourhood
/// snapshot (willingness gates *migration*, not evaluation), which is what
/// makes the frontier sound: a vertex that last evaluated to "stay" cannot
/// change its mind until something in its neighbourhood moves, so it is
/// skipped until then. See AdaptiveOptions::frontier.
///
/// Dynamic graphs: applyUpdates() injects/removes vertices and edges between
/// iterations; new vertices enter via the placement function (hash
/// partitioning by default, like the systems the paper targets), and the
/// iterative process adapts from there.
class AdaptiveEngine {
 public:
  using PlacementFn = PartitionedRuntime::PlacementFn;

  /// Takes ownership of the graph; `initial` must assign every alive vertex
  /// to a partition in [0, options.k) (PartitionedRuntime validates).
  AdaptiveEngine(graph::DynamicGraph g, metrics::Assignment initial,
                 AdaptiveOptions options);

  /// Runs one iteration; returns the number of executed migrations.
  std::size_t step();

  /// Steps until the convergence window closes or maxIterations elapse.
  ConvergenceResult runToConvergence(std::size_t maxIterations = 20'000);

  /// Applies a batch of structural updates and re-arms convergence tracking.
  /// Returns the number of events that changed the graph.
  std::size_t applyUpdates(const std::vector<graph::UpdateEvent>& events);

  /// Replaces the default hash placement for stream-injected vertices.
  void setPlacement(PlacementFn placement) {
    runtime_.setPlacement(std::move(placement));
  }

  /// Grows capacities to options.capacityFactor headroom over the current
  /// balanced load (in the configured balance mode); never shrinks an
  /// existing capacity. Call after large injections when the original
  /// provisioning should be revised.
  void rescaleCapacity();

  /// Checkpoint restore (serve layer): adopts a previous engine's
  /// deterministic trajectory state so a freshly constructed engine over the
  /// checkpointed graph + assignment continues bit-identically. Three pieces
  /// cannot be re-derived and must carry over: the iteration counter (the
  /// stateless draws are keyed by (seed, iteration, vertex)), the capacities
  /// (rescale never shrinks, so they are history-dependent), and the quiet
  /// streak (an empty window after restore must converge instantly).
  /// Frontier/parked state is intentionally NOT restored: the fresh
  /// all-dirty frontier is a superset of the live engine's, and frontier
  /// membership never changes the trajectory (the equivalence suite asserts
  /// it). Throws std::invalid_argument when capacities.size() != k.
  void restoreCheckpoint(std::size_t iteration, std::vector<std::size_t> capacities,
                         std::size_t quietIterations,
                         std::size_t lastActiveIteration);

  /// Consecutive zero-migration iterations so far (checkpoint state).
  [[nodiscard]] std::size_t quietIterations() const noexcept {
    return tracker_.quietIterations();
  }

  [[nodiscard]] const graph::DynamicGraph& graph() const noexcept {
    return runtime_.graph();
  }
  [[nodiscard]] const PartitionState& state() const noexcept {
    return runtime_.state();
  }
  [[nodiscard]] const CapacityModel& capacity() const noexcept { return capacity_; }
  [[nodiscard]] const metrics::IterationSeries& series() const noexcept {
    return series_;
  }
  [[nodiscard]] std::size_t iteration() const noexcept { return iteration_; }
  [[nodiscard]] bool converged() const noexcept { return tracker_.converged(); }
  [[nodiscard]] double cutRatio() const noexcept {
    return state().cutRatio(graph());
  }
  [[nodiscard]] const AdaptiveOptions& options() const noexcept { return options_; }

  /// Last iteration index that executed at least one migration.
  [[nodiscard]] std::size_t lastActiveIteration() const noexcept {
    return lastActive_;
  }

  /// Migrations executed over the engine's whole lifetime — the per-window
  /// deltas api::Session::stream reports, independent of recordSeries.
  [[nodiscard]] std::size_t totalMigrations() const noexcept {
    return runtime_.totalMigrations();
  }

  /// Vertices whose decision was (re)computed by the last step() — the
  /// alive frontier in frontier mode, every alive vertex otherwise. The §2
  /// lightweight-heuristic claim in numbers: this drops towards 0 as the
  /// partitioning converges.
  [[nodiscard]] std::size_t lastEvaluatedCount() const noexcept {
    return lastEvaluated_;
  }

  /// Vertices whose desire is quota-starved and parked off the frontier
  /// until any load or capacity shifts (0 in full-scan mode).
  [[nodiscard]] std::size_t parkedCount() const noexcept { return parked_.size(); }

  /// Heap footprint of the runtime substrate plus this engine's per-vertex
  /// scratch (desires, tie masks, frontier double-buffer, parked flags, the
  /// recorded iteration series) — the MemoryReport the scale bench publishes
  /// next to peak RSS.
  [[nodiscard]] MemoryReport memoryReport() const noexcept;

 private:
  /// Frontier maintenance on structural updates (PartitionedRuntime hooks):
  /// every vertex whose cached decision could have changed is re-queued.
  class DirtyHooks final : public PartitionedRuntime::MutationHooks {
   public:
    explicit DirtyHooks(AdaptiveEngine& engine) noexcept : engine_(engine) {}
    void onVertexLoaded(graph::VertexId v) override { engine_.markDirty(v); }
    void onVertexRemoving(graph::VertexId v) override {
      // The survivors lose a neighbour; their cached decisions expire.
      for (const graph::VertexId nbr : engine_.graph().neighbors(v)) {
        engine_.markDirty(nbr);
      }
    }
    void onEdgeAdded(graph::VertexId u, graph::VertexId v) override {
      engine_.markDirty(u);
      engine_.markDirty(v);
    }
    void onEdgeRemoved(graph::VertexId u, graph::VertexId v) override {
      engine_.markDirty(u);
      engine_.markDirty(v);
    }

   private:
    AdaptiveEngine& engine_;
  };

  /// Decision phase: fills desires_ (kNoPartition = stay) for the frontier
  /// (or all of [0, idBound) in full-scan mode).
  void evaluateDecisions();

  /// Admission for one evaluated vertex: willingness gate, then quota;
  /// gated desires re-enter the frontier.
  void admit(graph::VertexId v, bool edgeBalance);

  /// Queues v for re-evaluation next iteration (no-op in full-scan mode).
  void markDirty(graph::VertexId v);

  /// Parks a quota-starved desire off the frontier (no-op in full-scan
  /// mode). Its denial is `units > Q_t(i, j)`, and in a zero-migration
  /// iteration no quota is consumed, so the outcome cannot change until
  /// loads or capacities do — which is when unparkAll() re-queues everyone.
  void park(graph::VertexId v);
  void unparkAll();

  AdaptiveOptions options_;
  PartitionedRuntime runtime_;
  CapacityModel capacity_;
  QuotaLedger quota_;
  MigrationPolicy policy_;
  ConvergenceTracker tracker_;
  StatelessDraws draws_;
  metrics::IterationSeries series_;
  std::vector<graph::PartitionId> desires_;
  /// MigrationPolicy tie masks per desire: a tied target rotates with the
  /// per-iteration draw, so a starved tied desire may only park when every
  /// partition in its argmax set is starved too (see admit()).
  std::vector<std::uint64_t> desireTiedMask_;
  std::vector<std::pair<graph::VertexId, graph::PartitionId>> pendingMoves_;
  /// Frontier double-buffer: frontier_ is evaluated this iteration;
  /// nextFrontier_/inNextFrontier_ accumulate who must be re-examined.
  std::vector<graph::VertexId> frontier_;
  std::vector<graph::VertexId> nextFrontier_;
  std::vector<std::uint8_t> inNextFrontier_;
  std::vector<graph::VertexId> parked_;
  std::vector<std::uint8_t> isParked_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::size_t iteration_ = 0;
  std::size_t lastActive_ = 0;
  std::size_t lastEvaluated_ = 0;
};

}  // namespace xdgp::core
