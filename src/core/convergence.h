#pragma once

#include <cstddef>

namespace xdgp::core {

/// Convergence criterion (§2.3/§4.2.1): "full convergence when the number of
/// vertex migrations was zero for more than `window` consecutive iterations"
/// — 30 in every experiment of the paper.
class ConvergenceTracker {
 public:
  explicit ConvergenceTracker(std::size_t window = 30) noexcept : window_(window) {}

  /// Records one iteration's migration count.
  void record(std::size_t migrations) noexcept {
    quiet_ = migrations == 0 ? quiet_ + 1 : 0;
  }

  [[nodiscard]] bool converged() const noexcept { return quiet_ >= window_; }

  /// Consecutive zero-migration iterations so far.
  [[nodiscard]] std::size_t quietIterations() const noexcept { return quiet_; }

  [[nodiscard]] std::size_t window() const noexcept { return window_; }

  void reset() noexcept { quiet_ = 0; }

  /// Checkpoint restore (serve layer): adopts a previously recorded quiet
  /// streak, so a freshly constructed tracker resumes exactly where the
  /// checkpointed one stopped — a restored run facing an empty window must
  /// converge instantly, not re-earn `window` quiet iterations.
  void restoreQuiet(std::size_t quiet) noexcept { quiet_ = quiet; }

 private:
  std::size_t window_;
  std::size_t quiet_ = 0;
};

}  // namespace xdgp::core
