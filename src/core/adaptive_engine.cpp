#include "core/adaptive_engine.h"

namespace xdgp::core {

AdaptiveEngine::AdaptiveEngine(graph::DynamicGraph g, metrics::Assignment initial,
                               AdaptiveOptions options)
    : options_(options),
      graph_(std::move(g)),
      state_(graph_, std::move(initial), options.k),
      capacity_(options.balanceMode == BalanceMode::kVertices
                    ? graph_.numVertices()
                    : 2 * graph_.numEdges(),
                options.k, options.capacityFactor),
      quota_(options.k),
      policy_(options.k),
      tracker_(options.convergenceWindow),
      draws_(options.seed, options.willingness) {
  const std::size_t k = options_.k;
  placement_ = [k](graph::VertexId v) {
    return static_cast<graph::PartitionId>(util::Rng::splitmix64(v) % k);
  };
}

std::size_t AdaptiveEngine::step() {
  ++iteration_;
  const bool edgeBalance = options_.balanceMode == BalanceMode::kEdges;
  quota_.beginIteration(capacity_,
                        edgeBalance ? state_.degreeLoads() : state_.loads());
  pendingMoves_.clear();

  // Decision phase: a pure function of the iteration-start snapshot, so it
  // parallelises without changing results (options_.threads).
  evaluateDecisions();

  // Admission phase: quota consumption is first-come in id order, mirroring
  // the per-worker admission of the distributed implementation.
  const std::size_t bound = graph_.idBound();
  for (graph::VertexId v = 0; v < bound; ++v) {
    const graph::PartitionId target = desires_[v];
    if (target == graph::kNoPartition) continue;
    const graph::PartitionId current = state_.partitionOf(v);
    // In edge-balance mode a migrating vertex consumes its degree's worth
    // of the destination quota.
    const std::size_t units = edgeBalance ? graph_.degree(v) : 1;
    if (options_.enforceQuota && !quota_.tryAdmit(current, target, units)) continue;
    pendingMoves_.emplace_back(v, target);
  }

  // Synchronous application: every decision above saw the iteration-start
  // assignment; the moves land together, as after the deferred hand-over in
  // the distributed implementation.
  for (const auto& [v, target] : pendingMoves_) state_.moveVertex(graph_, v, target);

  const std::size_t migrations = pendingMoves_.size();
  tracker_.record(migrations);
  if (migrations > 0) lastActive_ = iteration_;
  if (options_.recordSeries) {
    series_.add({iteration_, state_.cutEdges(), migrations, 0.0});
  }
  return migrations;
}

void AdaptiveEngine::evaluateDecisions() {
  const std::size_t bound = graph_.idBound();
  desires_.assign(bound, graph::kNoPartition);
  const auto evaluateRange = [this](std::size_t begin, std::size_t end,
                                    MigrationPolicy& policy) {
    for (graph::VertexId v = static_cast<graph::VertexId>(begin); v < end; ++v) {
      if (!graph_.hasVertex(v)) continue;
      // Willingness gate (§2.3): with probability 1−s the vertex sits out.
      if (!draws_.willing(iteration_, v)) continue;
      const graph::PartitionId current = state_.partitionOf(v);
      desires_[v] = policy.target(graph_.neighbors(v), state_.assignment(), current,
                                  draws_.tieBreak(iteration_, v));
    }
  };

  if (options_.threads <= 1) {
    evaluateRange(0, bound, policy_);
    return;
  }
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  const std::size_t chunks = options_.threads * 4;
  const std::size_t step = (bound + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < bound; begin += step) {
    const std::size_t end = std::min(bound, begin + step);
    pool_->submit([this, begin, end, &evaluateRange] {
      MigrationPolicy localPolicy(options_.k);  // per-task scratch
      evaluateRange(begin, end, localPolicy);
    });
  }
  pool_->wait();
}

ConvergenceResult AdaptiveEngine::runToConvergence(std::size_t maxIterations) {
  ConvergenceResult result;
  const std::size_t start = iteration_;
  while (!tracker_.converged() && iteration_ - start < maxIterations) {
    step();
  }
  result.iterationsRun = iteration_ - start;
  result.convergenceIteration = lastActive_;
  result.converged = tracker_.converged();
  return result;
}

std::size_t AdaptiveEngine::applyUpdates(const std::vector<graph::UpdateEvent>& events) {
  std::size_t applied = 0;
  for (const graph::UpdateEvent& e : events) {
    switch (e.kind) {
      case graph::UpdateEvent::Kind::kAddVertex:
        if (!graph_.hasVertex(e.u)) {
          graph_.ensureVertex(e.u);
          state_.onVertexAdded(e.u, placement_(e.u));
          ++applied;
        }
        break;
      case graph::UpdateEvent::Kind::kRemoveVertex:
        if (graph_.hasVertex(e.u)) {
          state_.onVertexRemoving(graph_, e.u);
          graph_.removeVertex(e.u);
          ++applied;
        }
        break;
      case graph::UpdateEvent::Kind::kAddEdge: {
        for (const graph::VertexId endpoint : {e.u, e.v}) {
          if (!graph_.hasVertex(endpoint)) {
            graph_.ensureVertex(endpoint);
            state_.onVertexAdded(endpoint, placement_(endpoint));
          }
        }
        if (graph_.addEdge(e.u, e.v)) {
          state_.onEdgeAdded(e.u, e.v);
          ++applied;
        }
        break;
      }
      case graph::UpdateEvent::Kind::kRemoveEdge:
        if (graph_.removeEdge(e.u, e.v)) {
          state_.onEdgeRemoved(e.u, e.v);
          ++applied;
        }
        break;
    }
  }
  if (applied > 0) tracker_.reset();  // topology changed: adaptation resumes
  return applied;
}

void AdaptiveEngine::rescaleCapacity() {
  const std::size_t totalUnits = options_.balanceMode == BalanceMode::kVertices
                                     ? graph_.numVertices()
                                     : 2 * graph_.numEdges();
  capacity_.rescale(totalUnits, options_.capacityFactor);
}

}  // namespace xdgp::core
