#include "core/adaptive_engine.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "util/timer.h"

namespace xdgp::core {

AdaptiveEngine::AdaptiveEngine(graph::DynamicGraph g, metrics::Assignment initial,
                               AdaptiveOptions options)
    : Engine(std::move(g), std::move(initial), options),
      quota_(options.k),
      policy_(options.k) {
  if (options_.frontier) {
    // Every vertex is unexamined at the start: the first iteration is a full
    // sweep, after which the frontier tracks change.
    inNextFrontier_.assign(graph().idBound(), 0);
    nextFrontier_.reserve(graph().numVertices());
    graph().forEachVertex([this](graph::VertexId v) { markDirty(v); });
  }
}

void AdaptiveEngine::markDirty(graph::VertexId v) {
  if (!options_.frontier) return;
  if (v >= inNextFrontier_.size()) inNextFrontier_.resize(v + 1, 0);
  if (inNextFrontier_[v]) return;
  inNextFrontier_[v] = 1;
  nextFrontier_.push_back(v);
}

void AdaptiveEngine::park(graph::VertexId v) {
  if (!options_.frontier) return;
  if (v >= isParked_.size()) isParked_.resize(v + 1, 0);
  if (isParked_[v]) return;
  isParked_[v] = 1;
  parked_.push_back(v);
}

void AdaptiveEngine::unparkAll() {
  for (const graph::VertexId v : parked_) {
    isParked_[v] = 0;
    markDirty(v);
  }
  parked_.clear();
}

void AdaptiveEngine::admit(graph::VertexId v, bool edgeBalance) {
  const graph::PartitionId target = desires_[v];
  if (target == graph::kNoPartition) return;
  // Willingness gate (§2.3): with probability 1−s the vertex sits out this
  // iteration. The desire itself is independent of the draw, so a gated
  // vertex keeps its place in the frontier and retries next iteration.
  if (!draws_.willing(iteration_, v)) {
    markDirty(v);
    return;
  }
  const graph::PartitionId current = state().partitionOf(v);
  // In edge-balance mode a migrating vertex consumes its degree's worth of
  // the destination quota.
  const std::size_t units = edgeBalance ? graph().degree(v) : 1;
  if (options_.enforceQuota && !quota_.tryAdmit(current, target, units)) {
    // Quota-starved. Parking is sound only if no future draw could be
    // admitted while loads stay frozen: in a zero-migration iteration
    // nothing consumes quota, so denial is exactly `units > Q_t(j)` — test
    // it for every partition the desire could rotate to (the tie mask; an
    // untied desire always re-targets the same j). Any load or capacity
    // shift re-queues the parked via unparkAll().
    const std::uint64_t mask = desireTiedMask_[v];
    bool anyAdmissible = false;
    if (mask == MigrationPolicy::kTiedOverflow) {
      anyAdmissible = true;  // unrepresentable set: never park
    } else if (mask == 0) {
      anyAdmissible = units <= quota_.quota(target);
    } else {
      for (std::uint64_t rest = mask; rest != 0; rest &= rest - 1) {
        const auto j = static_cast<graph::PartitionId>(std::countr_zero(rest));
        if (units <= quota_.quota(j)) {
          anyAdmissible = true;
          break;
        }
      }
    }
    if (anyAdmissible) {
      markDirty(v);  // starved only by this iteration's consumption or draw
    } else {
      park(v);
    }
    return;
  }
  pendingMoves_.emplace_back(v, target);
}

std::size_t AdaptiveEngine::step() {
  const util::WallTimer timer;
  ++iteration_;
  const bool edgeBalance = options_.balanceMode == BalanceMode::kEdges;
  quota_.beginIteration(capacity_,
                        edgeBalance ? state().degreeLoads() : state().loads());
  pendingMoves_.clear();

  if (options_.frontier) {
    // Adopt the accumulated dirty set. Sorting restores the id order the
    // full scan admits in, keeping quota consumption — and therefore the
    // whole trajectory — identical to frontier-off.
    frontier_.swap(nextFrontier_);
    nextFrontier_.clear();
    std::sort(frontier_.begin(), frontier_.end());
    for (const graph::VertexId v : frontier_) inNextFrontier_[v] = 0;
  }

  // Decision phase: a pure function of the iteration-start snapshot, so it
  // parallelises without changing results (options_.threads).
  evaluateDecisions();

  // Admission phase: quota consumption is first-come in id order, mirroring
  // the per-worker admission of the distributed implementation.
  if (options_.frontier) {
    for (const graph::VertexId v : frontier_) admit(v, edgeBalance);
  } else {
    const std::size_t bound = graph().idBound();
    for (graph::VertexId v = 0; v < bound; ++v) admit(v, edgeBalance);
  }

  // Synchronous application: every decision above saw the iteration-start
  // assignment; the moves land together, as after the deferred hand-over in
  // the distributed implementation. Each executed move invalidates the
  // cached "stay" of its whole neighbourhood.
  for (const auto& [v, target] : pendingMoves_) {
    if (runtime_.executeMove(v, target)) {
      markDirty(v);
      for (const graph::VertexId nbr : graph().neighbors(v)) markDirty(nbr);
    }
  }

  const std::size_t migrations = pendingMoves_.size();
  // Any executed move shifts loads, hence next iteration's quotas: every
  // parked denial must be retried. (A quiet iteration consumed nothing, so
  // parked outcomes are provably unchanged and stay parked.)
  if (migrations > 0) unparkAll();
  tracker_.record(migrations);
  if (migrations > 0) lastActive_ = iteration_;
  if (options_.recordSeries) {
    series_.add({iteration_, state().cutEdges(), migrations, timer.seconds()});
  }
  return migrations;
}

void AdaptiveEngine::evaluateDecisions() {
  const graph::DynamicGraph& g = graph();
  const std::size_t bound = g.idBound();
  const auto evaluateOne = [this, &g](graph::VertexId v, MigrationPolicy& policy) {
    const graph::PartitionId current = state().partitionOf(v);
    desires_[v] = policy.target(g.neighbors(v), state().assignment(), current,
                                draws_.tieBreak(iteration_, v), &desireTiedMask_[v]);
  };

  if (options_.frontier) {
    // Only the frontier's desires are (re)written; stale entries elsewhere
    // are never read because admission also walks the frontier.
    if (desires_.size() < bound) {
      desires_.resize(bound, graph::kNoPartition);
      desireTiedMask_.resize(bound, 0);
    }
    std::atomic<std::size_t> evaluated{0};
    const auto evaluateSlice = [this, &g, &evaluateOne, &evaluated](
                                   std::size_t begin, std::size_t end,
                                   MigrationPolicy& policy) {
      std::size_t alive = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const graph::VertexId v = frontier_[i];
        if (!g.hasVertex(v)) {
          desires_[v] = graph::kNoPartition;  // died since it was marked
          continue;
        }
        evaluateOne(v, policy);
        ++alive;
      }
      evaluated.fetch_add(alive, std::memory_order_relaxed);
    };
    if (options_.threads <= 1) {
      evaluateSlice(0, frontier_.size(), policy_);
      lastEvaluated_ = evaluated.load(std::memory_order_relaxed);
      return;
    }
    if (!pool_) pool_ = std::make_unique<util::ThreadPool>(options_.threads);
    const std::size_t chunks = options_.threads * 4;
    const std::size_t step = (frontier_.size() + chunks - 1) / chunks;
    for (std::size_t begin = 0; begin < frontier_.size(); begin += step) {
      const std::size_t end = std::min(frontier_.size(), begin + step);
      pool_->submit([this, begin, end, &evaluateSlice] {
        MigrationPolicy localPolicy(options_.k);  // per-task scratch
        evaluateSlice(begin, end, localPolicy);
      });
    }
    pool_->wait();
    lastEvaluated_ = evaluated.load(std::memory_order_relaxed);
    return;
  }

  desires_.assign(bound, graph::kNoPartition);
  desireTiedMask_.assign(bound, 0);
  lastEvaluated_ = g.numVertices();
  const auto evaluateRange = [&g, &evaluateOne](std::size_t begin, std::size_t end,
                                                MigrationPolicy& policy) {
    for (auto v = static_cast<graph::VertexId>(begin); v < end; ++v) {
      if (!g.hasVertex(v)) continue;
      evaluateOne(v, policy);
    }
  };
  if (options_.threads <= 1) {
    evaluateRange(0, bound, policy_);
    return;
  }
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  const std::size_t chunks = options_.threads * 4;
  const std::size_t step = (bound + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < bound; begin += step) {
    const std::size_t end = std::min(bound, begin + step);
    pool_->submit([this, begin, end, &evaluateRange] {
      MigrationPolicy localPolicy(options_.k);  // per-task scratch
      evaluateRange(begin, end, localPolicy);
    });
  }
  pool_->wait();
}

std::size_t AdaptiveEngine::applyUpdates(const std::vector<graph::UpdateEvent>& events) {
  DirtyHooks hooks(*this);
  const std::size_t applied = runtime_.applyEvents(events, hooks, &tracker_);
  if (applied > 0) {
    unparkAll();  // loads (and degree loads) may have shifted
  }
  return applied;
}

void AdaptiveEngine::rescaleCapacity() {
  runtime_.rescaleCapacity(capacity_, options_.balanceMode, options_.capacityFactor);
  unparkAll();  // grown capacities can admit previously starved desires
}

MemoryReport AdaptiveEngine::memoryReport() const noexcept {
  MemoryReport report = runtime_.memoryReport();
  report.engineBytes =
      desires_.capacity() * sizeof(graph::PartitionId) +
      desireTiedMask_.capacity() * sizeof(std::uint64_t) +
      pendingMoves_.capacity() * sizeof(pendingMoves_[0]) +
      frontier_.capacity() * sizeof(graph::VertexId) +
      nextFrontier_.capacity() * sizeof(graph::VertexId) +
      inNextFrontier_.capacity() * sizeof(std::uint8_t) +
      parked_.capacity() * sizeof(graph::VertexId) +
      isParked_.capacity() * sizeof(std::uint8_t) +
      series_.points().capacity() * sizeof(metrics::IterationPoint);
  return report;
}

}  // namespace xdgp::core
