#pragma once

#include "partition/partitioner.h"

namespace xdgp::partition {

/// MNN — the paper's fourth §4.2.1 strategy: the same streaming pass as DGR
/// "applied to the 'minimum number of neighbours' heuristic presented in
/// [28]" (Prabhakaran et al., Grace, USENIX ATC 2012).
///
/// Grace's heuristic targets multicore layout: an arriving vertex is placed
/// in the *eligible* partition currently holding the fewest of its
/// neighbours, spreading hub neighbourhoods to reduce per-part contention.
/// Capacity-full partitions are ineligible; ties break to the least-loaded
/// partition. As in the paper it produces many cut edges, which is exactly
/// why it is a useful hard starting point for the adaptive algorithm.
class MnnPartitioner final : public InitialPartitioner {
 public:
  using InitialPartitioner::partition;

  [[nodiscard]] std::string name() const override { return "MNN"; }

  [[nodiscard]] Assignment partition(const PartitionRequest& request) const override;
};

}  // namespace xdgp::partition
