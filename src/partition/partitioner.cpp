#include "partition/partitioner.h"

#include <cmath>
#include <stdexcept>

#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "partition/mnn_partitioner.h"
#include "partition/random_partitioner.h"

namespace xdgp::partition {

std::vector<std::size_t> makeCapacities(std::size_t n, std::size_t k,
                                        double capacityFactor) {
  if (k == 0) throw std::invalid_argument("makeCapacities: k must be positive");
  const double balanced = static_cast<double>(n) / static_cast<double>(k);
  // ceil guards tiny graphs where 110% of the balanced load rounds below
  // the load the balanced assignment itself needs; the epsilon keeps exact
  // products (100 * 1.1) from ceiling up on floating-point dust.
  const auto cap =
      static_cast<std::size_t>(std::ceil(balanced * capacityFactor - 1e-9));
  return std::vector<std::size_t>(k, std::max<std::size_t>(cap, 1));
}

std::unique_ptr<InitialPartitioner> makePartitioner(const std::string& code) {
  if (code == "HSH") return std::make_unique<HashPartitioner>();
  if (code == "RND") return std::make_unique<RandomPartitioner>();
  if (code == "DGR") return std::make_unique<LdgPartitioner>();
  if (code == "MNN") return std::make_unique<MnnPartitioner>();
  throw std::invalid_argument("makePartitioner: unknown strategy " + code);
}

const std::vector<std::string>& initialStrategyCodes() {
  static const std::vector<std::string> codes{"DGR", "HSH", "MNN", "RND"};
  return codes;
}

}  // namespace xdgp::partition
