#pragma once

#include <cstdint>
#include <vector>

#include "partition/weighted_graph.h"

namespace xdgp::partition {

/// Options for the k-way boundary refinement pass.
struct RefineOptions {
  /// Maximum greedy passes over the boundary per level.
  std::size_t maxPasses = 8;
  /// Per-partition vertex-weight capacity (size k).
  std::vector<std::int64_t> capacities;
};

/// Greedy k-way boundary refinement in the Fiduccia–Mattheyses style used by
/// METIS at each uncoarsening level: every boundary vertex may move to the
/// partition it is most connected to when the move has positive cut gain
/// (or zero gain with a balance improvement) and the target has spare
/// capacity. Also evacuates over-capacity partitions first, so the result
/// respects `capacities` whenever the graph admits it.
///
/// Returns the number of vertices moved; `assignment` is updated in place.
std::size_t fmRefine(const WeightedGraph& g, std::vector<graph::PartitionId>& assignment,
                     const RefineOptions& options);

/// Edge-weight cut of a weighted graph under an assignment (each undirected
/// edge counted once).
[[nodiscard]] std::int64_t weightedCut(const WeightedGraph& g,
                                       const std::vector<graph::PartitionId>& assignment);

}  // namespace xdgp::partition
