#pragma once

#include <string>

#include "metrics/cuts.h"

namespace xdgp::partition {

/// Persists an assignment as "vertex partition" lines under a "# k" header —
/// the interchange format of the CLI tool, so a partitioning computed once
/// (e.g. overnight by the multilevel baseline) can seed a later run.
/// Unassigned ids (kNoPartition) are skipped and restored as unassigned.
/// Throws std::runtime_error on IO failure.
void writeAssignment(const metrics::Assignment& assignment, std::size_t k,
                     const std::string& path);

struct LoadedAssignment {
  metrics::Assignment assignment;
  std::size_t k = 0;
};

/// Reads the writeAssignment format. Throws std::runtime_error on IO
/// failure, malformed lines, or partition ids >= the header's k.
[[nodiscard]] LoadedAssignment readAssignment(const std::string& path);

}  // namespace xdgp::partition
