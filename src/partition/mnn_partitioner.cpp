#include "partition/mnn_partitioner.h"

namespace xdgp::partition {

Assignment MnnPartitioner::partition(const PartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  const std::size_t k = request.k;
  const std::vector<std::size_t> capacities =
      makeCapacities(g.numVertices(), k, request.capacityFactor);
  std::vector<std::size_t> loads(k, 0);
  std::vector<std::size_t> neighborCount(k, 0);
  Assignment assignment(g.idBound(), graph::kNoPartition);

  g.forEachVertex([&](graph::VertexId v) {
    std::fill(neighborCount.begin(), neighborCount.end(), 0);
    for (const graph::VertexId nbr : g.neighbors(v)) {
      const graph::PartitionId p = assignment[nbr];
      if (p != graph::kNoPartition) ++neighborCount[p];
    }
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (loads[i] >= capacities[i]) continue;
      if (!found || neighborCount[i] < neighborCount[best] ||
          (neighborCount[i] == neighborCount[best] && loads[i] < loads[best])) {
        best = i;
        found = true;
      }
    }
    assignment[v] = static_cast<graph::PartitionId>(best);
    ++loads[best];
  });
  return assignment;
}

}  // namespace xdgp::partition
