#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace xdgp::partition {

/// Weighted graph used by the multilevel (METIS-like) baseline. Vertices
/// carry the number of fine vertices they represent; edges carry the number
/// of fine edges collapsed into them, so the coarse cut equals the fine cut.
struct WeightedGraph {
  using WeightedEdge = std::pair<graph::VertexId, std::int64_t>;

  std::vector<std::int64_t> vertexWeights;
  std::vector<std::vector<WeightedEdge>> adjacency;
  std::int64_t totalVertexWeight = 0;

  [[nodiscard]] std::size_t numVertices() const noexcept {
    return vertexWeights.size();
  }

  /// Unit-weight lift of a CSR snapshot over the *alive* vertices; the
  /// caller receives the dense-id list to map assignments back.
  static WeightedGraph fromCsr(const graph::CsrGraph& g,
                               std::vector<graph::VertexId>& aliveIds);
};

}  // namespace xdgp::partition
