#include "partition/region_growing_partitioner.h"

#include "partition/region_growing.h"
#include "partition/weighted_graph.h"

namespace xdgp::partition {

Assignment RegionGrowingPartitioner::partition(const PartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  Assignment result(g.idBound(), graph::kNoPartition);
  if (request.k == 0 || g.numVertices() == 0) return result;

  std::vector<graph::VertexId> aliveIds;
  const WeightedGraph lifted = WeightedGraph::fromCsr(g, aliveIds);
  const std::vector<graph::PartitionId> dense =
      growRegions(lifted, request.k, request.rng);
  for (std::size_t i = 0; i < aliveIds.size(); ++i) {
    result[aliveIds[i]] = dense[i];
  }
  return result;
}

}  // namespace xdgp::partition
