#include "partition/assignment_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xdgp::partition {

void writeAssignment(const metrics::Assignment& assignment, std::size_t k,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeAssignment: cannot open " + path);
  out << "# " << k << '\n';
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    if (assignment[v] != graph::kNoPartition) {
      out << v << ' ' << assignment[v] << '\n';
    }
  }
  if (!out) throw std::runtime_error("writeAssignment: write failed for " + path);
}

LoadedAssignment readAssignment(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readAssignment: cannot open " + path);
  LoadedAssignment loaded;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      if (!(hs >> loaded.k)) {
        throw std::runtime_error("readAssignment: bad header in " + path);
      }
      continue;
    }
    std::istringstream ls(line);
    std::size_t v = 0;
    graph::PartitionId p = 0;
    if (!(ls >> v >> p)) {
      throw std::runtime_error("readAssignment: malformed line in " + path + ": " +
                               line);
    }
    if (loaded.k == 0 || p >= loaded.k) {
      throw std::runtime_error("readAssignment: partition id out of range in " +
                               path);
    }
    if (v >= loaded.assignment.size()) {
      loaded.assignment.resize(v + 1, graph::kNoPartition);
    }
    loaded.assignment[v] = p;
  }
  return loaded;
}

}  // namespace xdgp::partition
