#include "partition/fm_refine.h"

#include <algorithm>

namespace xdgp::partition {

namespace {

/// Connectivity of v to every partition (edge-weight sums).
void connectivity(const WeightedGraph& g, const std::vector<graph::PartitionId>& a,
                  graph::VertexId v, std::vector<std::int64_t>& out) {
  std::fill(out.begin(), out.end(), 0);
  for (const auto& [nbr, weight] : g.adjacency[v]) out[a[nbr]] += weight;
}

}  // namespace

std::int64_t weightedCut(const WeightedGraph& g,
                         const std::vector<graph::PartitionId>& assignment) {
  std::int64_t cut = 0;
  for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
    for (const auto& [nbr, weight] : g.adjacency[v]) {
      if (v < nbr && assignment[v] != assignment[nbr]) cut += weight;
    }
  }
  return cut;
}

std::size_t fmRefine(const WeightedGraph& g, std::vector<graph::PartitionId>& assignment,
                     const RefineOptions& options) {
  const std::size_t n = g.numVertices();
  const std::size_t k = options.capacities.size();
  std::vector<std::int64_t> loads(k, 0);
  for (graph::VertexId v = 0; v < n; ++v) loads[assignment[v]] += g.vertexWeights[v];

  std::vector<std::int64_t> conn(k, 0);
  std::size_t totalMoved = 0;

  // Phase 1: evacuate over-capacity partitions (region growing on weighted
  // coarse graphs can overshoot). Pick the cheapest boundary departures.
  for (std::size_t round = 0; round < n; ++round) {
    std::size_t over = k;
    for (std::size_t i = 0; i < k; ++i) {
      if (loads[i] > options.capacities[i]) {
        over = i;
        break;
      }
    }
    if (over == k) break;
    graph::VertexId bestVertex = graph::kInvalidVertex;
    std::size_t bestTarget = k;
    std::int64_t bestGain = std::numeric_limits<std::int64_t>::min();
    for (graph::VertexId v = 0; v < n; ++v) {
      if (assignment[v] != over) continue;
      connectivity(g, assignment, v, conn);
      for (std::size_t j = 0; j < k; ++j) {
        if (j == over || loads[j] + g.vertexWeights[v] > options.capacities[j]) continue;
        const std::int64_t gain = conn[j] - conn[over];
        if (gain > bestGain) {
          bestGain = gain;
          bestVertex = v;
          bestTarget = j;
        }
      }
    }
    if (bestVertex == graph::kInvalidVertex) break;  // no feasible move
    loads[over] -= g.vertexWeights[bestVertex];
    loads[bestTarget] += g.vertexWeights[bestVertex];
    assignment[bestVertex] = static_cast<graph::PartitionId>(bestTarget);
    ++totalMoved;
  }

  // Phase 2: greedy positive-gain passes over the boundary.
  for (std::size_t pass = 0; pass < options.maxPasses; ++pass) {
    std::size_t moved = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      const graph::PartitionId current = assignment[v];
      bool boundary = false;
      for (const auto& [nbr, weight] : g.adjacency[v]) {
        (void)weight;
        if (assignment[nbr] != current) {
          boundary = true;
          break;
        }
      }
      if (!boundary) continue;
      connectivity(g, assignment, v, conn);
      const std::int64_t internal = conn[current];
      std::size_t best = current;
      std::int64_t bestGain = 0;
      for (std::size_t j = 0; j < k; ++j) {
        if (j == current) continue;
        if (loads[j] + g.vertexWeights[v] > options.capacities[j]) continue;
        const std::int64_t gain = conn[j] - internal;
        const bool better =
            gain > bestGain ||
            (gain == bestGain && gain > 0 && loads[j] < loads[best]) ||
            // Zero-gain balance moves shrink the heaviest partition.
            (gain == 0 && bestGain == 0 && best == current &&
             loads[current] > loads[j] + g.vertexWeights[v]);
        if (better) {
          bestGain = gain;
          best = j;
        }
      }
      if (best != current) {
        loads[current] -= g.vertexWeights[v];
        loads[best] += g.vertexWeights[v];
        assignment[v] = static_cast<graph::PartitionId>(best);
        ++moved;
      }
    }
    totalMoved += moved;
    if (moved == 0) break;
  }
  return totalMoved;
}

}  // namespace xdgp::partition
