#include "partition/ldg_partitioner.h"

namespace xdgp::partition {

Assignment LdgPartitioner::partition(const PartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  const std::size_t k = request.k;
  const std::vector<std::size_t> capacities =
      makeCapacities(g.numVertices(), k, request.capacityFactor);
  std::vector<std::size_t> loads(k, 0);
  std::vector<std::size_t> neighborCount(k, 0);
  Assignment assignment(g.idBound(), graph::kNoPartition);

  g.forEachVertex([&](graph::VertexId v) {
    std::fill(neighborCount.begin(), neighborCount.end(), 0);
    for (const graph::VertexId nbr : g.neighbors(v)) {
      const graph::PartitionId p = assignment[nbr];
      if (p != graph::kNoPartition) ++neighborCount[p];
    }
    double bestScore = -1.0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (loads[i] >= capacities[i]) continue;
      const double penalty =
          1.0 - static_cast<double>(loads[i]) / static_cast<double>(capacities[i]);
      const double score = static_cast<double>(neighborCount[i]) * penalty;
      if (score > bestScore ||
          (score == bestScore && loads[i] < loads[best])) {
        bestScore = score;
        best = i;
      }
    }
    assignment[v] = static_cast<graph::PartitionId>(best);
    ++loads[best];
  });
  return assignment;
}

}  // namespace xdgp::partition
