#include "partition/weighted_graph.h"

namespace xdgp::partition {

WeightedGraph WeightedGraph::fromCsr(const graph::CsrGraph& g,
                                     std::vector<graph::VertexId>& aliveIds) {
  aliveIds.clear();
  aliveIds.reserve(g.numVertices());
  std::vector<graph::VertexId> toCompact(g.idBound(), graph::kInvalidVertex);
  g.forEachVertex([&](graph::VertexId v) {
    toCompact[v] = static_cast<graph::VertexId>(aliveIds.size());
    aliveIds.push_back(v);
  });

  WeightedGraph wg;
  const std::size_t n = aliveIds.size();
  wg.vertexWeights.assign(n, 1);
  wg.totalVertexWeight = static_cast<std::int64_t>(n);
  wg.adjacency.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const graph::VertexId nbr : g.neighbors(aliveIds[i])) {
      wg.adjacency[i].emplace_back(toCompact[nbr], 1);
    }
  }
  return wg;
}

}  // namespace xdgp::partition
