#pragma once

#include "partition/partitioner.h"

namespace xdgp::partition {

/// HSH — hash partitioning, "the most commonly used strategy in large scale
/// graph processing systems" (§2): vertex v goes to H(v) mod k. Lightweight,
/// needs no lookup table, scatters uniformly... and cuts many edges.
class HashPartitioner final : public InitialPartitioner {
 public:
  using InitialPartitioner::partition;

  [[nodiscard]] std::string name() const override { return "HSH"; }

  [[nodiscard]] Assignment partition(const PartitionRequest& request) const override;

  /// The stateless per-vertex rule, reused by the Pregel loader.
  [[nodiscard]] static graph::PartitionId assign(graph::VertexId v,
                                                 std::size_t k) noexcept;
};

}  // namespace xdgp::partition
