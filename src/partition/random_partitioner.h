#pragma once

#include "partition/partitioner.h"

namespace xdgp::partition {

/// RND — pseudorandom partitioning "still ensuring balanced partitions"
/// (§4.2.1): a random permutation of the vertices dealt round-robin into the
/// k partitions, so loads differ by at most one vertex.
class RandomPartitioner final : public InitialPartitioner {
 public:
  using InitialPartitioner::partition;

  [[nodiscard]] std::string name() const override { return "RND"; }

  [[nodiscard]] Assignment partition(const PartitionRequest& request) const override;
};

}  // namespace xdgp::partition
