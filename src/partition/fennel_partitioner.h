#pragma once

#include "partition/partitioner.h"

namespace xdgp::partition {

/// FNL — Fennel one-pass streaming partitioner (Tsourakakis et al., WSDM
/// 2014), the interpolation between LDG's load-damped affinity and pure
/// modularity-style greedy.
///
/// Vertices arrive in id order and each is placed in the partition
/// maximising
///     |N(v) ∩ P_i| − α · ((|P_i| + 1)^γ − |P_i|^γ)
/// i.e. neighbour affinity minus the *marginal* increase of the convex load
/// cost α · |P|^γ. The standard setting γ = 1.5 with
/// α = √k · |E| / |V|^1.5 makes the total load cost comparable to the
/// expected edge cut, so the penalty bites exactly when a partition grows
/// past its fair share. Partitions at their C(i) capacity are skipped
/// (Fennel's ν-balance constraint, realised with the paper's capacity
/// vector), so the capacity promise in the registry metadata is hard; ties
/// break to the lighter then lower-indexed partition.
class FennelPartitioner final : public InitialPartitioner {
 public:
  using InitialPartitioner::partition;

  [[nodiscard]] std::string name() const override { return "FNL"; }

  [[nodiscard]] Assignment partition(const PartitionRequest& request) const override;
};

}  // namespace xdgp::partition
