#include "partition/random_partitioner.h"

namespace xdgp::partition {

Assignment RandomPartitioner::partition(const PartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  std::vector<graph::VertexId> order;
  order.reserve(g.numVertices());
  g.forEachVertex([&](graph::VertexId v) { order.push_back(v); });
  request.rng.shuffle(order);

  Assignment assignment(g.idBound(), graph::kNoPartition);
  for (std::size_t i = 0; i < order.size(); ++i) {
    assignment[order[i]] = static_cast<graph::PartitionId>(i % request.k);
  }
  return assignment;
}

}  // namespace xdgp::partition
