#include "partition/random_partitioner.h"

namespace xdgp::partition {

Assignment RandomPartitioner::partition(const graph::CsrGraph& g, std::size_t k,
                                        double /*capacityFactor*/,
                                        util::Rng& rng) const {
  std::vector<graph::VertexId> order;
  order.reserve(g.numVertices());
  g.forEachVertex([&](graph::VertexId v) { order.push_back(v); });
  rng.shuffle(order);

  Assignment assignment(g.idBound(), graph::kNoPartition);
  for (std::size_t i = 0; i < order.size(); ++i) {
    assignment[order[i]] = static_cast<graph::PartitionId>(i % k);
  }
  return assignment;
}

}  // namespace xdgp::partition
