#include "partition/coarsen.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace xdgp::partition {

std::vector<graph::VertexId> heavyEdgeMatching(const WeightedGraph& g,
                                               util::Rng& rng) {
  const std::size_t n = g.numVertices();
  std::vector<graph::VertexId> match(n);
  std::iota(match.begin(), match.end(), 0);
  std::vector<graph::VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<std::uint8_t> matched(n, 0);
  for (const graph::VertexId v : order) {
    if (matched[v]) continue;
    std::int64_t bestWeight = -1;
    graph::VertexId best = v;
    for (const auto& [nbr, weight] : g.adjacency[v]) {
      if (matched[nbr] || nbr == v) continue;
      if (weight > bestWeight) {
        bestWeight = weight;
        best = nbr;
      }
    }
    if (best != v) {
      match[v] = best;
      match[best] = v;
      matched[best] = 1;
    }
    matched[v] = 1;
  }
  return match;
}

CoarseLevel contract(const WeightedGraph& g, const std::vector<graph::VertexId>& match) {
  const std::size_t n = g.numVertices();
  CoarseLevel level;
  level.fineToCoarse.assign(n, graph::kInvalidVertex);

  // Assign coarse ids: the lower endpoint of each pair owns the id.
  graph::VertexId next = 0;
  for (graph::VertexId v = 0; v < n; ++v) {
    if (level.fineToCoarse[v] != graph::kInvalidVertex) continue;
    level.fineToCoarse[v] = next;
    const graph::VertexId partner = match[v];
    if (partner != v) level.fineToCoarse[partner] = next;
    ++next;
  }

  WeightedGraph& coarse = level.graph;
  coarse.vertexWeights.assign(next, 0);
  coarse.adjacency.resize(next);
  coarse.totalVertexWeight = g.totalVertexWeight;
  for (graph::VertexId v = 0; v < n; ++v) {
    coarse.vertexWeights[level.fineToCoarse[v]] += g.vertexWeights[v];
  }

  // Accumulate coarse edges, merging parallels and dropping intra-pair ones.
  std::unordered_map<graph::VertexId, std::int64_t> row;
  for (graph::VertexId cv = 0; cv < next; ++cv) coarse.adjacency[cv].reserve(4);
  std::vector<std::vector<graph::VertexId>> members(next);
  for (graph::VertexId v = 0; v < n; ++v) members[level.fineToCoarse[v]].push_back(v);

  for (graph::VertexId cv = 0; cv < next; ++cv) {
    row.clear();
    for (const graph::VertexId v : members[cv]) {
      for (const auto& [nbr, weight] : g.adjacency[v]) {
        const graph::VertexId cn = level.fineToCoarse[nbr];
        if (cn != cv) row[cn] += weight;
      }
    }
    auto& out = coarse.adjacency[cv];
    out.assign(row.begin(), row.end());
    std::sort(out.begin(), out.end());
  }
  return level;
}

}  // namespace xdgp::partition
