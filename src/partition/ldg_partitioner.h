#pragma once

#include "partition/partitioner.h"

namespace xdgp::partition {

/// DGR — stream-based "linear deterministic greedy" of Stanton & Kliot
/// (KDD 2012), the paper's strongest streaming baseline (§4.2.1).
///
/// Vertices arrive one at a time (id order, the streaming order of a loader)
/// and each is placed in the partition maximising
///     |N(v) ∩ P_i| · (1 − |P_i| / C_i)
/// i.e. neighbour affinity damped by a linear load penalty. Ties break to
/// the least-loaded partition. As the paper notes, this heuristic "depends
/// on full graph knowledge (destinations of already allocated vertices)",
/// which is what its adaptive algorithm avoids.
class LdgPartitioner final : public InitialPartitioner {
 public:
  using InitialPartitioner::partition;

  [[nodiscard]] std::string name() const override { return "DGR"; }

  [[nodiscard]] Assignment partition(const PartitionRequest& request) const override;
};

}  // namespace xdgp::partition
