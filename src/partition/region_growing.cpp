#include "partition/region_growing.h"

#include <deque>
#include <limits>

namespace xdgp::partition {

namespace {

/// Farthest-point seed spreading: BFS from the current seed set and pick an
/// eccentric vertex as the next seed; yields well-separated regions.
std::vector<graph::VertexId> spreadSeeds(const WeightedGraph& g, std::size_t k,
                                         util::Rng& rng) {
  const std::size_t n = g.numVertices();
  std::vector<graph::VertexId> seeds;
  seeds.push_back(static_cast<graph::VertexId>(rng.index(n)));
  std::vector<std::uint32_t> dist(n);
  while (seeds.size() < k) {
    std::fill(dist.begin(), dist.end(), std::numeric_limits<std::uint32_t>::max());
    std::deque<graph::VertexId> queue;
    for (const graph::VertexId s : seeds) {
      dist[s] = 0;
      queue.push_back(s);
    }
    while (!queue.empty()) {
      const graph::VertexId at = queue.front();
      queue.pop_front();
      for (const auto& [nbr, weight] : g.adjacency[at]) {
        (void)weight;
        if (dist[nbr] == std::numeric_limits<std::uint32_t>::max()) {
          dist[nbr] = dist[at] + 1;
          queue.push_back(nbr);
        }
      }
    }
    graph::VertexId farthest = seeds.front();
    std::uint32_t best = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      // Unreached vertices (other components) are ideal seeds.
      if (dist[v] == std::numeric_limits<std::uint32_t>::max()) {
        farthest = v;
        break;
      }
      if (dist[v] > best) {
        best = dist[v];
        farthest = v;
      }
    }
    seeds.push_back(farthest);
  }
  return seeds;
}

}  // namespace

std::vector<graph::PartitionId> growRegions(const WeightedGraph& g, std::size_t k,
                                            util::Rng& rng) {
  const std::size_t n = g.numVertices();
  std::vector<graph::PartitionId> assignment(n, graph::kNoPartition);
  if (n == 0 || k == 0) return assignment;
  if (k >= n) {
    for (graph::VertexId v = 0; v < n; ++v) {
      assignment[v] = static_cast<graph::PartitionId>(v % k);
    }
    return assignment;
  }

  const std::vector<graph::VertexId> seeds = spreadSeeds(g, k, rng);
  std::vector<std::deque<graph::VertexId>> frontier(k);
  std::vector<std::int64_t> loads(k, 0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const graph::VertexId s = seeds[i];
    if (assignment[s] == graph::kNoPartition) {
      assignment[s] = static_cast<graph::PartitionId>(i);
      loads[i] += g.vertexWeights[s];
      ++assigned;
    }
    frontier[i].push_back(s);
  }

  graph::VertexId sweep = 0;  // cursor for disconnected leftovers
  while (assigned < n) {
    // The lightest region with a non-empty frontier grows next.
    std::size_t lightest = k;
    for (std::size_t i = 0; i < k; ++i) {
      if (frontier[i].empty()) continue;
      if (lightest == k || loads[i] < loads[lightest]) lightest = i;
    }
    if (lightest == k) {
      // All frontiers exhausted: seed the lightest region in a new component.
      while (sweep < n && assignment[sweep] != graph::kNoPartition) ++sweep;
      if (sweep >= n) break;
      std::size_t target = 0;
      for (std::size_t i = 1; i < k; ++i) {
        if (loads[i] < loads[target]) target = i;
      }
      assignment[sweep] = static_cast<graph::PartitionId>(target);
      loads[target] += g.vertexWeights[sweep];
      frontier[target].push_back(sweep);
      ++assigned;
      continue;
    }
    const graph::VertexId at = frontier[lightest].front();
    frontier[lightest].pop_front();
    for (const auto& [nbr, weight] : g.adjacency[at]) {
      (void)weight;
      if (assignment[nbr] == graph::kNoPartition) {
        assignment[nbr] = static_cast<graph::PartitionId>(lightest);
        loads[lightest] += g.vertexWeights[nbr];
        frontier[lightest].push_back(nbr);
        ++assigned;
      }
    }
  }
  return assignment;
}

}  // namespace xdgp::partition
