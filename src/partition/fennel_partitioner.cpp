#include "partition/fennel_partitioner.h"

#include <algorithm>
#include <cmath>

namespace xdgp::partition {

Assignment FennelPartitioner::partition(const PartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  const std::size_t k = request.k;
  const std::size_t n = g.numVertices();
  const auto m = static_cast<double>(g.numEdges());
  const std::vector<std::size_t> capacities =
      makeCapacities(n, k, request.capacityFactor);
  constexpr double kGamma = 1.5;
  // α = √k · m / n^γ — the cost normalisation of the Fennel paper (§3).
  // The n == 0 / m == 0 fallback keeps degenerate graphs placeable (the
  // affinity term is then 0 everywhere and the penalty just load-balances).
  const double alpha =
      n > 0 ? std::sqrt(static_cast<double>(k)) * std::max(m, 1.0) /
                  std::pow(static_cast<double>(n), kGamma)
            : 1.0;

  std::vector<std::size_t> loads(k, 0);
  std::vector<std::size_t> neighborCount(k, 0);
  Assignment assignment(g.idBound(), graph::kNoPartition);

  g.forEachVertex([&](graph::VertexId v) {
    std::fill(neighborCount.begin(), neighborCount.end(), 0);
    for (const graph::VertexId nbr : g.neighbors(v)) {
      const graph::PartitionId p = assignment[nbr];
      if (p != graph::kNoPartition) ++neighborCount[p];
    }
    bool found = false;
    double bestScore = 0.0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (loads[i] >= capacities[i]) continue;
      const auto load = static_cast<double>(loads[i]);
      const double marginal =
          alpha * (std::pow(load + 1.0, kGamma) - std::pow(load, kGamma));
      const double score = static_cast<double>(neighborCount[i]) - marginal;
      if (!found || score > bestScore ||
          (score == bestScore && loads[i] < loads[best])) {
        found = true;
        bestScore = score;
        best = i;
      }
    }
    assignment[v] = static_cast<graph::PartitionId>(best);
    ++loads[best];
  });
  return assignment;
}

}  // namespace xdgp::partition
