#pragma once

#include "partition/partitioner.h"

namespace xdgp::partition {

/// RGR — balanced BFS region growing promoted to a standalone initial
/// strategy: the same growRegions() kernel that seeds the coarsest level of
/// the multilevel partitioner, applied directly to the load-time snapshot.
///
/// Cheap (one BFS sweep), locality-aware on meshes, and a useful middle
/// ground between the streaming heuristics and the full multilevel stack.
/// Loads track the balanced load approximately (the lightest region always
/// grows next) but frontiers adopt whole neighbourhoods at a time, so the
/// capacity bound is statistical, not guaranteed — the registry advertises
/// it accordingly.
class RegionGrowingPartitioner final : public InitialPartitioner {
 public:
  using InitialPartitioner::partition;

  [[nodiscard]] std::string name() const override { return "RGR"; }

  [[nodiscard]] Assignment partition(const PartitionRequest& request) const override;
};

}  // namespace xdgp::partition
