#pragma once

#include <vector>

#include "partition/weighted_graph.h"
#include "util/rng.h"

namespace xdgp::partition {

/// One coarsening step of the multilevel V-cycle.
struct CoarseLevel {
  WeightedGraph graph;
  /// fineToCoarse[v] = coarse vertex that absorbed fine vertex v.
  std::vector<graph::VertexId> fineToCoarse;
};

/// Heavy-edge matching (Karypis & Kumar): visits vertices in random order
/// and pairs each unmatched vertex with the unmatched neighbour behind the
/// heaviest incident edge. Returns match[v] (== v for unmatched singletons).
[[nodiscard]] std::vector<graph::VertexId> heavyEdgeMatching(const WeightedGraph& g,
                                                             util::Rng& rng);

/// Contracts matched pairs into coarse vertices, summing vertex weights and
/// accumulating parallel edges; self-edges (internal to a pair) disappear,
/// which is what makes coarse cut == fine cut under projection.
[[nodiscard]] CoarseLevel contract(const WeightedGraph& g,
                                   const std::vector<graph::VertexId>& match);

}  // namespace xdgp::partition
