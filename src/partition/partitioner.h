#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "metrics/cuts.h"
#include "util/rng.h"

namespace xdgp::partition {

using metrics::Assignment;

/// Per-partition vertex capacities C(i) for a graph of `n` vertices split
/// k ways with headroom `capacityFactor` (the paper's experiments use 1.1 =
/// "maximum capacity equal to 110% of the balanced load", Fig. 4).
[[nodiscard]] std::vector<std::size_t> makeCapacities(std::size_t n, std::size_t k,
                                                      double capacityFactor);

/// Everything an initial-partitioning strategy needs for one run, bundled so
/// future knobs (balance mode, locality hints, weight vectors) extend this
/// struct instead of rippling through every implementation's signature.
/// The references stay borrowed: a request is a call context, not a value.
struct PartitionRequest {
  const graph::CsrGraph& csr;  ///< load-time snapshot being partitioned
  std::size_t k = 9;           ///< number of partitions
  double capacityFactor = 1.1; ///< C(i) headroom over the balanced load
  util::Rng& rng;              ///< seeded stream for stochastic strategies
};

/// Strategy interface for the paper's §4.2.1 initial partitioning step:
/// assigns every alive vertex of a loaded graph to one of k partitions.
///
/// Implementations must return an assignment that (a) covers every alive
/// vertex and (b) uses only partitions [0, k). Strategies whose registry
/// metadata promises `respectsCapacity` must also respect
/// makeCapacities(n, k, capacityFactor); HSH (the paper's uncoordinated
/// baseline) and RGR only balance statistically. The registry-driven
/// api_test suite enforces these properties for every registered strategy.
class InitialPartitioner {
 public:
  virtual ~InitialPartitioner() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual Assignment partition(const PartitionRequest& request) const = 0;

  /// Convenience wrapper building the request in place. Derived classes
  /// re-expose it with `using InitialPartitioner::partition;`.
  [[nodiscard]] Assignment partition(const graph::CsrGraph& g, std::size_t k,
                                     double capacityFactor, util::Rng& rng) const {
    return partition(PartitionRequest{g, k, capacityFactor, rng});
  }
};

/// Factory for the four §4.2.1 strategies by Table-style code:
/// "HSH", "RND", "DGR", "MNN". Throws std::invalid_argument otherwise.
/// The full catalog (including METIS and RGR) lives in
/// api::PartitionerRegistry; this low-level factory only knows the paper's
/// figure strategies.
[[nodiscard]] std::unique_ptr<InitialPartitioner> makePartitioner(
    const std::string& code);

/// The four codes in the paper's figure order.
[[nodiscard]] const std::vector<std::string>& initialStrategyCodes();

}  // namespace xdgp::partition
