#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "metrics/cuts.h"
#include "util/rng.h"

namespace xdgp::partition {

using metrics::Assignment;

/// Per-partition vertex capacities C(i) for a graph of `n` vertices split
/// k ways with headroom `capacityFactor` (the paper's experiments use 1.1 =
/// "maximum capacity equal to 110% of the balanced load", Fig. 4).
[[nodiscard]] std::vector<std::size_t> makeCapacities(std::size_t n, std::size_t k,
                                                      double capacityFactor);

/// Strategy interface for the paper's §4.2.1 initial partitioning step:
/// assigns every alive vertex of a loaded graph to one of k partitions.
///
/// Implementations must return an assignment that (a) covers every alive
/// vertex and (b) uses only partitions [0, k). All strategies except HSH
/// also respect makeCapacities(n, k, capacityFactor); HSH is the paper's
/// uncoordinated baseline whose balance is only statistical. The shared
/// partitioner test suite enforces these properties.
class InitialPartitioner {
 public:
  virtual ~InitialPartitioner() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual Assignment partition(const graph::CsrGraph& g, std::size_t k,
                                             double capacityFactor,
                                             util::Rng& rng) const = 0;
};

/// Factory for the four §4.2.1 strategies by Table-style code:
/// "HSH", "RND", "DGR", "MNN". Throws std::invalid_argument otherwise.
[[nodiscard]] std::unique_ptr<InitialPartitioner> makePartitioner(
    const std::string& code);

/// The four codes in the paper's figure order.
[[nodiscard]] const std::vector<std::string>& initialStrategyCodes();

}  // namespace xdgp::partition
