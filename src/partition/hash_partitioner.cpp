#include "partition/hash_partitioner.h"

namespace xdgp::partition {

graph::PartitionId HashPartitioner::assign(graph::VertexId v, std::size_t k) noexcept {
  return static_cast<graph::PartitionId>(util::Rng::splitmix64(v) % k);
}

Assignment HashPartitioner::partition(const PartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  Assignment assignment(g.idBound(), graph::kNoPartition);
  g.forEachVertex(
      [&](graph::VertexId v) { assignment[v] = assign(v, request.k); });
  return assignment;
}

}  // namespace xdgp::partition
