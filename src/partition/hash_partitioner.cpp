#include "partition/hash_partitioner.h"

namespace xdgp::partition {

graph::PartitionId HashPartitioner::assign(graph::VertexId v, std::size_t k) noexcept {
  return static_cast<graph::PartitionId>(util::Rng::splitmix64(v) % k);
}

Assignment HashPartitioner::partition(const graph::CsrGraph& g, std::size_t k,
                                      double /*capacityFactor*/,
                                      util::Rng& /*rng*/) const {
  Assignment assignment(g.idBound(), graph::kNoPartition);
  g.forEachVertex([&](graph::VertexId v) { assignment[v] = assign(v, k); });
  return assignment;
}

}  // namespace xdgp::partition
