#pragma once

#include <vector>

#include "partition/weighted_graph.h"
#include "util/rng.h"

namespace xdgp::partition {

/// Initial k-way partition of the coarsest graph by balanced BFS region
/// growing: k seeds spread by a farthest-point heuristic, then frontiers
/// expand one vertex at a time with the lightest region always growing
/// next. Disconnected leftovers are swept into the lightest region.
///
/// Returns a coarse assignment (size g.numVertices()). Loads approximate
/// totalVertexWeight/k; the caller's refinement phase enforces capacities.
[[nodiscard]] std::vector<graph::PartitionId> growRegions(const WeightedGraph& g,
                                                          std::size_t k,
                                                          util::Rng& rng);

}  // namespace xdgp::partition
