#include "partition/multilevel_partitioner.h"

#include <algorithm>
#include <cmath>

#include "partition/coarsen.h"
#include "partition/fm_refine.h"
#include "partition/region_growing.h"

namespace xdgp::partition {

Assignment MultilevelPartitioner::partition(const PartitionRequest& request) const {
  const graph::CsrGraph& g = request.csr;
  const std::size_t k = request.k;
  const double capacityFactor = request.capacityFactor;
  util::Rng& rng = request.rng;
  Assignment result(g.idBound(), graph::kNoPartition);
  if (k == 0 || g.numVertices() == 0) return result;

  std::vector<graph::VertexId> aliveIds;
  WeightedGraph base = WeightedGraph::fromCsr(g, aliveIds);

  // Coarsening phase.
  std::vector<WeightedGraph> levels;
  std::vector<std::vector<graph::VertexId>> projections;  // fine -> coarse
  levels.push_back(std::move(base));
  const std::size_t coarsestTarget =
      std::max(options_.coarsestFloor, options_.coarsestFactor * k);
  while (levels.back().numVertices() > coarsestTarget) {
    const WeightedGraph& fine = levels.back();
    const auto match = heavyEdgeMatching(fine, rng);
    CoarseLevel next = contract(fine, match);
    const double shrink = 1.0 - static_cast<double>(next.graph.numVertices()) /
                                    static_cast<double>(fine.numVertices());
    if (shrink < options_.minShrink) break;  // matching stalled (star graphs)
    projections.push_back(std::move(next.fineToCoarse));
    levels.push_back(std::move(next.graph));
  }

  // Initial partition of the coarsest level.
  std::vector<graph::PartitionId> assignment = growRegions(levels.back(), k, rng);

  // Uncoarsening with refinement at every level. Capacity is on vertex
  // weight, which equals fine-vertex count per partition.
  const auto capacityOf = [&](const WeightedGraph& level) {
    const double balanced = static_cast<double>(level.totalVertexWeight) /
                            static_cast<double>(k);
    // Epsilon: exact products (200 * 1.1) must not ceil one unit up, or this
    // would disagree with partition::makeCapacities by one vertex.
    return std::vector<std::int64_t>(
        k, std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(
                                         balanced * capacityFactor - 1e-9))));
  };

  RefineOptions refine;
  refine.maxPasses = options_.refinePasses;
  refine.capacities = capacityOf(levels.back());
  fmRefine(levels.back(), assignment, refine);

  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    const std::vector<graph::VertexId>& map = projections[level];
    std::vector<graph::PartitionId> finer(levels[level].numVertices());
    for (graph::VertexId v = 0; v < finer.size(); ++v) finer[v] = assignment[map[v]];
    assignment = std::move(finer);
    refine.capacities = capacityOf(levels[level]);
    fmRefine(levels[level], assignment, refine);
  }

  for (std::size_t i = 0; i < aliveIds.size(); ++i) {
    result[aliveIds[i]] = assignment[i];
  }
  return result;
}

}  // namespace xdgp::partition
