#pragma once

#include "partition/partitioner.h"

namespace xdgp::partition {

/// From-scratch multilevel k-way partitioner in the METIS family (Karypis &
/// Kumar): heavy-edge-matching coarsening, balanced region-growing initial
/// partition on the coarsest graph, and boundary FM refinement at every
/// uncoarsening level.
///
/// This is the offline substitute for the METIS 2.0 reference lines in the
/// paper's Fig. 4 — the "state-of-the-art centralised graph partitioning
/// algorithm" benchmark the adaptive heuristic is compared against. It is
/// centralised on purpose: it sees the whole graph, which is exactly the
/// scalability limitation the paper's decentralised approach removes.
class MultilevelPartitioner final : public InitialPartitioner {
 public:
  struct Options {
    /// Stop coarsening below max(coarsestFactor * k, coarsestFloor) vertices.
    std::size_t coarsestFactor = 30;
    std::size_t coarsestFloor = 120;
    /// Abort coarsening when a step shrinks the graph by less than this.
    double minShrink = 0.05;
    std::size_t refinePasses = 8;
  };

  MultilevelPartitioner() = default;
  explicit MultilevelPartitioner(Options options) : options_(options) {}

  using InitialPartitioner::partition;

  [[nodiscard]] std::string name() const override { return "METIS"; }

  [[nodiscard]] Assignment partition(const PartitionRequest& request) const override;

 private:
  Options options_;
};

}  // namespace xdgp::partition
