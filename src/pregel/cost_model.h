#pragma once

#include "pregel/types.h"

namespace xdgp::pregel {

/// Deterministic iteration-time model — the substitution for the paper's
/// cluster wall-clock (docs/DESIGN.md §1).
///
/// T(superstep) = alpha · maxWorkerComputeUnits        (BSP compute barrier)
///              + betaRemote · remoteMessageUnits      (network serialisation)
///              + betaLocal · localMessageUnits        (in-memory hand-off)
///              + gamma · migrationsExecuted           (vertex state transfer)
///
/// Message *units* are payload-weighted (a neighbour-list message counts its
/// length), because "execution time is bound by the number of messages sent
/// over the network" (§4.3) refers to wire volume.
///
/// The defaults reproduce the paper's §4.3 profile for the biomedical mesh
/// under static hash partitioning: message exchange >80 % of iteration time,
/// CPU ≈ 17 %. Figures normalise T to the static-hash value, so only the
/// *ratios* of these constants matter.
struct CostParams {
  double alpha = 1.0;        ///< per compute unit on the busiest worker
  double betaRemote = 0.4;   ///< per cross-worker message *unit* (payload-weighted)
  double betaLocal = 0.02;   ///< per same-worker message *unit*
  /// Per migrated vertex: transferring ~100 state variables (the paper's
  /// cardiac cells) costs about 100 remote messages' worth of wire time.
  double gamma = 40.0;

  [[nodiscard]] double timeFor(const SuperstepStats& s) const noexcept {
    return alpha * s.maxWorkerComputeUnits +
           betaRemote * static_cast<double>(s.remoteMessageUnits) +
           betaLocal * static_cast<double>(s.localMessageUnits) +
           gamma * static_cast<double>(s.migrationsExecuted);
  }

  /// Fraction of `timeFor` spent on communication (the paper's ">80 %").
  [[nodiscard]] double commShare(const SuperstepStats& s) const noexcept {
    const double total = timeFor(s);
    if (total <= 0.0) return 0.0;
    return (betaRemote * static_cast<double>(s.remoteMessageUnits) +
            betaLocal * static_cast<double>(s.localMessageUnits)) /
           total;
  }
};

}  // namespace xdgp::pregel
