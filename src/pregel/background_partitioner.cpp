#include "pregel/background_partitioner.h"

namespace xdgp::pregel {

BackgroundPartitioner::BackgroundPartitioner(std::size_t k, std::size_t totalUnits,
                                             double capacityFactor, Options options)
    : options_(options),
      capacity_(totalUnits, k, capacityFactor),
      quota_(k),
      policy_(k),
      tracker_(options.convergenceWindow),
      draws_(options.seed, options.willingness) {
  if (options_.hotspotAware) hotspot_.emplace(k, options_.hotspot);
}

std::vector<std::pair<graph::VertexId, graph::PartitionId>>
BackgroundPartitioner::announce(const graph::DynamicGraph& g,
                                const core::PartitionState& state) {
  const std::size_t superstep = ++superstep_;
  std::vector<std::pair<graph::VertexId, graph::PartitionId>> announcements;
  const bool edgeBalance = options_.balanceMode == core::BalanceMode::kEdges;
  const auto& loads = edgeBalance ? state.degreeLoads() : state.loads();
  if (hotspot_ && hotspot_->primed()) {
    // Hot partitions advertise derated capacity; quotas do the steering.
    const core::CapacityModel effective(hotspot_->effectiveCapacities(capacity_));
    quota_.beginIteration(effective, loads);
  } else {
    quota_.beginIteration(capacity_, loads);
  }
  const std::size_t bound = g.idBound();
  for (graph::VertexId v = 0; v < bound; ++v) {
    if (!g.hasVertex(v)) continue;
    // Willingness gates the announcement, not the desire (see header): the
    // draw is independent of the O(deg) evaluation, so an unwilling vertex
    // can skip it outright — identical announcements, ~s of the cost.
    if (!draws_.willing(superstep, v)) continue;
    const graph::PartitionId current = state.partitionOf(v);
    const graph::PartitionId target = policy_.target(
        g.neighbors(v), state.assignment(), current, draws_.tieBreak(superstep, v));
    if (target == graph::kNoPartition) continue;
    const std::size_t units = edgeBalance ? g.degree(v) : 1;
    if (options_.enforceQuota && !quota_.tryAdmit(current, target, units)) continue;
    announcements.emplace_back(v, target);
  }
  return announcements;
}

}  // namespace xdgp::pregel
