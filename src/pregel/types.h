#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/types.h"

namespace xdgp::pregel {

/// One worker hosts one partition, like the paper's deployment (k partitions
/// spread over the cluster's workers), so the ids coincide.
using WorkerId = graph::PartitionId;

/// Everything the engine measures about one superstep; the raw material for
/// Figs. 7, 8 and 9.
struct SuperstepStats {
  std::size_t superstep = 0;
  std::size_t activeVertices = 0;

  /// Messages whose sender and receiver live on the same worker.
  std::size_t localMessages = 0;
  /// Messages that crossed workers — the quantity the partitioning minimises.
  std::size_t remoteMessages = 0;
  /// Payload-weighted traffic: scalar messages count 1 unit, list-carrying
  /// messages (the clique app's neighbour lists) count their length. Wire
  /// time scales with units, not message count.
  std::size_t localMessageUnits = 0;
  std::size_t remoteMessageUnits = 0;
  /// Messages dropped because the addressed worker no longer hosted the
  /// vertex. Always zero with deferred migration (§3, Fig. 3 bottom); the
  /// instant-migration ablation shows why.
  std::size_t lostMessages = 0;

  std::size_t migrationsAnnounced = 0;
  std::size_t migrationsExecuted = 0;
  std::size_t mutationsApplied = 0;

  std::size_t cutEdges = 0;

  /// Total application compute units this superstep (app-defined scale).
  double computeUnits = 0.0;
  /// Busiest worker's compute units: the BSP barrier waits for this one.
  double maxWorkerComputeUnits = 0.0;

  /// Sum of all Context::aggregate() contributions this superstep (the
  /// Pregel aggregator mechanism; readable by vertices next superstep).
  double aggregatedValue = 0.0;

  /// Cost-model time for the superstep (arbitrary units; figures normalise
  /// to the static-hash baseline as the paper does).
  double modeledTime = 0.0;

  /// Field-wise equality, doubles compared exactly: the thread-invariance
  /// suite asserts that a run at any thread count produces *bit-identical*
  /// stats rows, so an approximate comparison would defeat its purpose.
  friend bool operator==(const SuperstepStats&, const SuperstepStats&) = default;
};

}  // namespace xdgp::pregel
