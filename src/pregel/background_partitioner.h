#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/capacity.h"
#include "core/convergence.h"
#include "core/draws.h"
#include "core/hotspot.h"
#include "core/migration_policy.h"
#include "core/partition_state.h"
#include "core/quota_ledger.h"
#include "graph/dynamic_graph.h"

namespace xdgp::pregel {

/// The graph-partitioning algorithm of Fig. 2, running "in the background of
/// the system, while the user applications process the graph".
///
/// Once per superstep (after user compute), it walks the worker's vertices
/// and produces migration *announcements* using the paper's greedy heuristic
/// gated by willingness s and the worst-case quotas. The engine turns the
/// announcements into deferred migrations (§3).
///
/// Like the core engine, draws are stateless per (superstep, vertex)
/// (core::StatelessDraws) and willingness gates the announcement, not the
/// evaluation: a vertex's desire is a pure function of its neighbourhood
/// snapshot, every worker can verify any peer's decision without a
/// coordinated RNG, and the walk could be sharded across threads or workers
/// without changing a single announcement.
///
/// Capacity staleness: the paper's workers gossip predicted capacities
/// C_{t+1}(i) = C_t(i) − V_out + V_in one superstep ahead. Because the
/// engine executes announced moves before invoking this hook, the loads it
/// reads here *are* those predicted values — prediction and actuality
/// coincide in a synchronous simulation (docs/DESIGN.md §1).
class BackgroundPartitioner {
 public:
  struct Options {
    double willingness = 0.5;
    std::size_t convergenceWindow = 30;
    bool enforceQuota = true;
    /// Vertex-count balancing (the paper's §2) or the §6 edge-balanced
    /// extension (capacities and quotas in degree units).
    core::BalanceMode balanceMode = core::BalanceMode::kVertices;
    /// §6 runtime-statistics extension: derate hot partitions' capacity so
    /// migration steers load away from them (core::HotspotModel).
    bool hotspotAware = false;
    core::HotspotModel::Options hotspot;
    std::uint64_t seed = 42;
  };

  /// `totalUnits` is the graph's total load in the selected balance mode:
  /// |V| for kVertices, 2|E| for kEdges.
  BackgroundPartitioner(std::size_t k, std::size_t totalUnits,
                        double capacityFactor, Options options);

  /// Computes this superstep's migration announcements. `state` carries the
  /// current vertex locations and loads; announcements do not modify it.
  [[nodiscard]] std::vector<std::pair<graph::VertexId, graph::PartitionId>> announce(
      const graph::DynamicGraph& g, const core::PartitionState& state);

  /// Feeds the convergence window; call with the executed-migration count.
  void recordMigrations(std::size_t migrations) noexcept { tracker_.record(migrations); }

  /// Re-arms adaptation after structural changes.
  void notifyTopologyChanged() noexcept { tracker_.reset(); }

  /// Feeds per-worker activity (compute units this superstep) into the
  /// hotspot model; no-op unless Options.hotspotAware.
  void observeActivity(const std::vector<double>& activity) {
    if (hotspot_) hotspot_->observe(activity);
  }

  /// Current per-partition heat (empty when hotspot awareness is off).
  [[nodiscard]] std::vector<double> heat() const {
    return hotspot_ ? hotspot_->heat() : std::vector<double>{};
  }

  /// Re-provisions capacities to `capacityFactor` headroom over the balanced
  /// load of a grown graph. Without this, a +10 % injection (Fig. 7b) leaves
  /// total capacity equal to |V| and the quotas freeze all migration — the
  /// operational step a real deployment performs when the workers are
  /// re-provisioned for the larger graph.
  void rescaleCapacity(std::size_t totalUnits, double capacityFactor) {
    capacity_.rescale(totalUnits, capacityFactor);
  }

  [[nodiscard]] bool converged() const noexcept { return tracker_.converged(); }
  [[nodiscard]] const core::CapacityModel& capacity() const noexcept {
    return capacity_;
  }

  /// The convergence tracker itself — PartitionedRuntime::applyEvents
  /// re-arms it directly, so the "topology changed ⇒ adaptation resumes"
  /// rule exists once for both engines.
  [[nodiscard]] core::ConvergenceTracker& convergence() noexcept { return tracker_; }

 private:
  Options options_;
  core::CapacityModel capacity_;
  core::QuotaLedger quota_;
  core::MigrationPolicy policy_;
  core::ConvergenceTracker tracker_;
  std::optional<core::HotspotModel> hotspot_;
  core::StatelessDraws draws_;
  std::size_t superstep_ = 0;  ///< draw key; advanced by each announce()
};

}  // namespace xdgp::pregel
