#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/partition_state.h"
#include "graph/dynamic_graph.h"
#include "graph/update_stream.h"
#include "metrics/cuts.h"
#include "pregel/background_partitioner.h"
#include "pregel/cost_model.h"
#include "pregel/types.h"
#include "util/rng.h"

namespace xdgp::pregel {

/// Engine configuration (Fig. 2's layered system).
struct EngineOptions {
  std::size_t numWorkers = 9;       ///< k workers, one partition each
  double capacityFactor = 1.1;      ///< partition capacity headroom
  bool adaptive = false;            ///< run the background partitioner
  BackgroundPartitioner::Options partitioner;
  /// Deferred (one-superstep-delayed) vertex migration per §3. Turning this
  /// off reproduces Fig. 3 (top): in-flight messages chase departed vertices
  /// and are lost — the ablation quantifying why deferral is required.
  bool deferredMigration = true;
  CostParams cost;
};

/// Pregel-inspired BSP engine with continuous computation and streaming
/// graph mutations (§3): compute runs superstep after superstep; vertices
/// and edges are injected/removed between supersteps; the adaptive
/// partitioning algorithm runs in the background through the same API.
///
/// `Program` is the user application:
///
///   struct MyApp {
///     using VertexValue  = ...;   // default-constructible per-vertex state
///     using MessageValue = ...;   // payload exchanged along edges
///     template <typename Ctx>
///     void compute(Ctx& ctx, VertexValue& value,
///                  std::span<const MessageValue> inbox);
///   };
///
/// Messages sent during superstep t are consumed at t+1. Migration follows
/// the paper's deferred protocol: an announcement at the end of t redirects
/// messages produced during t+1 to the new worker, and the vertex itself
/// moves at the t+1 → t+2 boundary, so no message is ever lost (the
/// `lostMessages` counter stays zero; the test suite asserts it).
template <typename Program>
class Engine {
 public:
  using VValue = typename Program::VertexValue;
  using MValue = typename Program::MessageValue;

  /// Per-vertex view handed to Program::compute.
  class Context {
   public:
    Context(Engine& engine, graph::VertexId v) noexcept
        : engine_(engine), v_(v) {}

    [[nodiscard]] graph::VertexId id() const noexcept { return v_; }
    [[nodiscard]] std::size_t superstep() const noexcept {
      return engine_.superstep_;
    }
    [[nodiscard]] std::span<const graph::VertexId> neighbors() const noexcept {
      return engine_.graph_.neighbors(v_);
    }
    [[nodiscard]] std::size_t degree() const noexcept {
      return engine_.graph_.degree(v_);
    }
    [[nodiscard]] WorkerId worker() const noexcept {
      return engine_.state_.partitionOf(v_);
    }
    [[nodiscard]] const graph::DynamicGraph& graph() const noexcept {
      return engine_.graph_;
    }

    /// Queues a message for delivery at the next superstep.
    void send(graph::VertexId target, MValue message) {
      engine_.routeMessage(v_, target, std::move(message));
    }

    void sendToNeighbors(const MValue& message) {
      for (const graph::VertexId nbr : neighbors()) {
        engine_.routeMessage(v_, nbr, message);
      }
    }

    /// Accounts app compute so the cost model sees the BSP barrier.
    void addComputeUnits(double units) noexcept {
      engine_.workerCompute_[worker()] += units;
      engine_.currentStats_->computeUnits += units;
    }

    /// Pregel sum-aggregator: contributions from all vertices during
    /// superstep t are summed and visible to every vertex at t+1 via
    /// previousAggregate() — the standard global-signal channel (e.g. the
    /// total rank delta that tells PageRank it has converged).
    void aggregate(double value) noexcept {
      engine_.aggregateAccumulator_ += value;
    }

    /// Last superstep's aggregated sum (0 at superstep 0).
    [[nodiscard]] double previousAggregate() const noexcept {
      return engine_.lastAggregate_;
    }

   private:
    Engine& engine_;
    graph::VertexId v_;
  };

  Engine(graph::DynamicGraph g, metrics::Assignment initial, EngineOptions options,
         Program program = Program{})
      : options_(options),
        program_(std::move(program)),
        graph_(std::move(g)),
        state_(graph_, std::move(initial), options.numWorkers),
        workerCompute_(options.numWorkers, 0.0) {
    const std::size_t bound = graph_.idBound();
    values_.resize(bound);
    inbox_.resize(bound);
    outbox_.resize(bound);
    announced_.assign(bound, graph::kNoPartition);
    if (options_.adaptive) {
      partitioner_.emplace(options_.numWorkers, totalLoadUnits(),
                           options_.capacityFactor, options_.partitioner);
    }
  }

  /// Runs one BSP superstep; returns its statistics (also appended to
  /// history()).
  SuperstepStats runSuperstep() {
    SuperstepStats stats;
    stats.superstep = superstep_;
    stats.mutationsApplied = std::exchange(pendingMutations_, 0);
    std::fill(workerCompute_.begin(), workerCompute_.end(), 0.0);
    aggregateAccumulator_ = 0.0;
    currentStats_ = &stats;

    // --- Compute phase: deliver inboxes and run the vertex program.
    const std::size_t bound = graph_.idBound();
    for (graph::VertexId v = 0; v < bound; ++v) {
      if (!graph_.hasVertex(v)) continue;
      messageScratch_.clear();
      for (Envelope& env : inbox_[v]) {
        if (env.addressedTo == state_.partitionOf(v)) {
          messageScratch_.push_back(std::move(env.value));
        } else {
          ++stats.lostMessages;  // Fig. 3 top: the vertex has moved away
        }
      }
      Context ctx(*this, v);
      program_.compute(ctx, values_[v],
                       std::span<const MValue>(messageScratch_));
      ++stats.activeVertices;
    }

    // --- Message hand-over: this superstep's outboxes become next inboxes.
    for (const graph::VertexId v : inboxTouched_) inbox_[v].clear();
    inboxTouched_.clear();
    std::swap(inbox_, outbox_);
    std::swap(inboxTouched_, outboxTouched_);

    // --- Migration phase 1: execute moves announced last superstep. The
    // messages produced above were already routed to the new homes.
    for (const graph::VertexId v : announcedVertices_) {
      if (!graph_.hasVertex(v)) continue;  // removed while migrating
      const graph::PartitionId target = announced_[v];
      if (target == graph::kNoPartition) continue;
      state_.moveVertex(graph_, v, target);
      announced_[v] = graph::kNoPartition;
      ++stats.migrationsExecuted;
    }
    announcedVertices_.clear();

    // --- Migration phase 2: the background partitioning algorithm decides
    // and announces the next wave (deferred), or applies it at once in the
    // instant-migration ablation.
    if (partitioner_) {
      // Runtime statistics for the §6 hotspot extension: this superstep's
      // per-worker compute units are the activity signal.
      partitioner_->observeActivity(workerCompute_);
      auto announcements = partitioner_->announce(graph_, state_);
      stats.migrationsAnnounced = announcements.size();
      partitioner_->recordMigrations(announcements.size());
      if (options_.deferredMigration) {
        for (const auto& [v, target] : announcements) {
          announced_[v] = target;
          announcedVertices_.push_back(v);
        }
      } else {
        for (const auto& [v, target] : announcements) {
          state_.moveVertex(graph_, v, target);
          ++stats.migrationsExecuted;
        }
      }
    }

    stats.cutEdges = state_.cutEdges();
    stats.maxWorkerComputeUnits =
        *std::max_element(workerCompute_.begin(), workerCompute_.end());
    lastAggregate_ = aggregateAccumulator_;
    stats.aggregatedValue = lastAggregate_;
    stats.modeledTime = options_.cost.timeFor(stats);
    currentStats_ = nullptr;
    history_.push_back(stats);
    ++superstep_;
    return stats;
  }

  /// Runs `n` supersteps; returns the last one's stats.
  SuperstepStats runSupersteps(std::size_t n) {
    SuperstepStats last;
    for (std::size_t i = 0; i < n; ++i) last = runSuperstep();
    return last;
  }

  /// Applies structural updates between supersteps, or buffers them while
  /// the topology is frozen (the §4.3 clique workload "requires freezing the
  /// graph topology until a result is obtained"). Returns events applied now.
  std::size_t ingest(const std::vector<graph::UpdateEvent>& events) {
    if (frozen_) {
      frozenBuffer_.insert(frozenBuffer_.end(), events.begin(), events.end());
      return 0;
    }
    return applyEvents(events);
  }

  void freezeTopology() noexcept { frozen_ = true; }

  /// Thaws the topology and applies everything buffered while frozen —
  /// "every iteration will trigger the adaptation to a batch set of
  /// changes". Returns the number of events applied.
  std::size_t thawTopology() {
    frozen_ = false;
    const std::size_t applied = applyEvents(frozenBuffer_);
    frozenBuffer_.clear();
    return applied;
  }

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  [[nodiscard]] std::size_t bufferedEvents() const noexcept {
    return frozenBuffer_.size();
  }

  [[nodiscard]] const graph::DynamicGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const core::PartitionState& state() const noexcept { return state_; }
  [[nodiscard]] std::size_t superstepIndex() const noexcept { return superstep_; }
  [[nodiscard]] const std::vector<SuperstepStats>& history() const noexcept {
    return history_;
  }

  [[nodiscard]] VValue& value(graph::VertexId v) { return values_[v]; }
  [[nodiscard]] const VValue& value(graph::VertexId v) const { return values_[v]; }

  /// Last completed superstep's aggregated sum.
  [[nodiscard]] double lastAggregate() const noexcept { return lastAggregate_; }

  [[nodiscard]] Program& program() noexcept { return program_; }
  [[nodiscard]] const Program& program() const noexcept { return program_; }

  [[nodiscard]] bool partitionerConverged() const noexcept {
    return partitioner_ ? partitioner_->converged() : true;
  }

  /// Re-provisions partition capacities for the current graph size; call
  /// after large injections (see BackgroundPartitioner::rescaleCapacity).
  void rescalePartitionerCapacity() {
    if (partitioner_) {
      partitioner_->rescaleCapacity(totalLoadUnits(), options_.capacityFactor);
    }
  }

  /// Total load in the configured balance mode (|V| or 2|E|).
  [[nodiscard]] std::size_t totalLoadUnits() const noexcept {
    return options_.partitioner.balanceMode == core::BalanceMode::kVertices
               ? graph_.numVertices()
               : 2 * graph_.numEdges();
  }

  [[nodiscard]] double cutRatio() const noexcept { return state_.cutRatio(graph_); }

  /// Folds every alive vertex value: fn(acc, id, value) -> acc.
  template <typename T, typename Fn>
  [[nodiscard]] T reduceValues(T init, Fn&& fn) const {
    graph_.forEachVertex(
        [&](graph::VertexId v) { init = fn(std::move(init), v, values_[v]); });
    return init;
  }

 private:
  struct Envelope {
    MValue value;
    WorkerId addressedTo;
  };

  friend class Context;

  /// Payload weight of one message: programs carrying variable-size
  /// payloads (neighbour lists) expose `messageUnits`; scalar payloads
  /// default to one unit.
  static std::size_t unitsOf(const MValue& message) noexcept {
    if constexpr (requires { Program::messageUnits(message); }) {
      return Program::messageUnits(message);
    } else {
      return 1;
    }
  }

  void routeMessage(graph::VertexId sender, graph::VertexId target, MValue message) {
    if (!graph_.hasVertex(target)) {
      // Receiver left the graph (stream removal): the message expires.
      ++currentStats_->lostMessages;
      return;
    }
    // Deferred protocol: senders were notified of upcoming migrations at the
    // start of this superstep, so they address the vertex's *next* home.
    const graph::PartitionId announcedTarget = announced_[target];
    const WorkerId dest = announcedTarget != graph::kNoPartition
                              ? announcedTarget
                              : state_.partitionOf(target);
    const WorkerId src = state_.partitionOf(sender);
    const std::size_t units = unitsOf(message);
    if (dest == src) {
      ++currentStats_->localMessages;
      currentStats_->localMessageUnits += units;
    } else {
      ++currentStats_->remoteMessages;
      currentStats_->remoteMessageUnits += units;
    }
    if (outbox_[target].empty()) outboxTouched_.push_back(target);
    outbox_[target].push_back(Envelope{std::move(message), dest});
  }

  std::size_t applyEvents(const std::vector<graph::UpdateEvent>& events) {
    std::size_t applied = 0;
    for (const graph::UpdateEvent& e : events) {
      switch (e.kind) {
        case graph::UpdateEvent::Kind::kAddVertex:
          applied += ensureVertexLoaded(e.u) ? 1 : 0;
          break;
        case graph::UpdateEvent::Kind::kRemoveVertex:
          if (graph_.hasVertex(e.u)) {
            dropVertex(e.u);
            ++applied;
          }
          break;
        case graph::UpdateEvent::Kind::kAddEdge:
          ensureVertexLoaded(e.u);
          ensureVertexLoaded(e.v);
          if (graph_.addEdge(e.u, e.v)) {
            state_.onEdgeAdded(e.u, e.v);
            ++applied;
          }
          break;
        case graph::UpdateEvent::Kind::kRemoveEdge:
          if (graph_.removeEdge(e.u, e.v)) {
            state_.onEdgeRemoved(e.u, e.v);
            ++applied;
          }
          break;
      }
    }
    pendingMutations_ += applied;
    if (applied > 0 && partitioner_) partitioner_->notifyTopologyChanged();
    return applied;
  }

  /// Loads a streamed-in vertex: hash placement (the system default the
  /// paper adapts away from) plus per-vertex engine state.
  bool ensureVertexLoaded(graph::VertexId v) {
    if (graph_.hasVertex(v)) return false;
    graph_.ensureVertex(v);
    const std::size_t bound = graph_.idBound();
    if (bound > values_.size()) {
      values_.resize(bound);
      inbox_.resize(bound);
      outbox_.resize(bound);
      announced_.resize(bound, graph::kNoPartition);
    }
    const auto home = static_cast<graph::PartitionId>(
        util::Rng::splitmix64(v) % options_.numWorkers);
    state_.onVertexAdded(v, home);
    values_[v] = VValue{};
    inbox_[v].clear();
    outbox_[v].clear();
    announced_[v] = graph::kNoPartition;
    return true;
  }

  void dropVertex(graph::VertexId v) {
    state_.onVertexRemoving(graph_, v);
    graph_.removeVertex(v);
    announced_[v] = graph::kNoPartition;
    inbox_[v].clear();
    // A queued outbox_[v] entry would deliver to a recycled id; clear it and
    // let routeMessage's liveness check expire racing senders.
    outbox_[v].clear();
  }

  EngineOptions options_;
  Program program_;
  graph::DynamicGraph graph_;
  core::PartitionState state_;
  std::optional<BackgroundPartitioner> partitioner_;

  std::vector<VValue> values_;
  std::vector<std::vector<Envelope>> inbox_;
  std::vector<std::vector<Envelope>> outbox_;
  std::vector<graph::VertexId> inboxTouched_;
  std::vector<graph::VertexId> outboxTouched_;
  std::vector<MValue> messageScratch_;

  std::vector<graph::PartitionId> announced_;
  std::vector<graph::VertexId> announcedVertices_;

  std::vector<double> workerCompute_;
  double aggregateAccumulator_ = 0.0;
  double lastAggregate_ = 0.0;
  std::vector<SuperstepStats> history_;
  SuperstepStats* currentStats_ = nullptr;

  std::vector<graph::UpdateEvent> frozenBuffer_;
  bool frozen_ = false;
  std::size_t superstep_ = 0;
  std::size_t pendingMutations_ = 0;
};

}  // namespace xdgp::pregel
