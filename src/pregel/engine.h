#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/partition_state.h"
#include "graph/dynamic_graph.h"
#include "graph/update_stream.h"
#include "metrics/cuts.h"
#include "pregel/runtime.h"
#include "pregel/types.h"

namespace xdgp::pregel {

/// Pregel-inspired BSP engine with continuous computation and streaming
/// graph mutations (§3): compute runs superstep after superstep; vertices
/// and edges are injected/removed between supersteps; the adaptive
/// partitioning algorithm runs in the background through the same API.
///
/// `Program` is the user application:
///
///   struct MyApp {
///     using VertexValue  = ...;   // default-constructible per-vertex state
///     using MessageValue = ...;   // payload exchanged along edges
///     template <typename Ctx>
///     void compute(Ctx& ctx, VertexValue& value,
///                  std::span<const MessageValue> inbox);
///   };
///
/// `compute` may run concurrently for vertices on different workers
/// (EngineOptions::threads): it must only write the vertex's own `value` and
/// read shared program configuration, which every shipped app already obeys.
///
/// Messages sent during superstep t are consumed at t+1. Migration follows
/// the paper's deferred protocol: an announcement at the end of t redirects
/// messages produced during t+1 to the new worker, and the vertex itself
/// moves at the t+1 → t+2 boundary, so no message is ever lost (the
/// `lostMessages` counter stays zero; the test suite asserts it).
///
/// This class is only the typed compute shell: per-vertex values, message
/// payloads, and the Program live here; worker shards, mailbox-lane
/// bookkeeping, the migration ledger, superstep stats, freezing, and the
/// background partitioner all live in the non-template pregel::Runtime
/// (pregel/runtime.h), which in turn shares the graph/state/update substrate
/// with core::AdaptiveEngine via core::PartitionedRuntime.
template <typename Program>
class Engine {
 public:
  using VValue = typename Program::VertexValue;
  using MValue = typename Program::MessageValue;

  /// Per-vertex view handed to Program::compute.
  class Context {
   public:
    Context(Engine& engine, graph::VertexId v, WorkerId worker,
            Runtime::WorkerTally& tally) noexcept
        : engine_(engine), v_(v), worker_(worker), tally_(tally) {}

    [[nodiscard]] graph::VertexId id() const noexcept { return v_; }
    [[nodiscard]] std::size_t superstep() const noexcept {
      return engine_.runtime_.superstepIndex();
    }
    [[nodiscard]] std::span<const graph::VertexId> neighbors() const noexcept {
      return engine_.graph().neighbors(v_);
    }
    [[nodiscard]] std::size_t degree() const noexcept {
      return engine_.graph().degree(v_);
    }
    [[nodiscard]] WorkerId worker() const noexcept { return worker_; }
    [[nodiscard]] const graph::DynamicGraph& graph() const noexcept {
      return engine_.graph();
    }

    /// Queues a message for delivery at the next superstep.
    void send(graph::VertexId target, MValue message) {
      engine_.routeMessage(worker_, target, std::move(message), tally_);
    }

    void sendToNeighbors(const MValue& message) {
      for (const graph::VertexId nbr : neighbors()) {
        engine_.routeMessage(worker_, nbr, message, tally_);
      }
    }

    /// Accounts app compute so the cost model sees the BSP barrier.
    void addComputeUnits(double units) noexcept { tally_.computeUnits += units; }

    /// Pregel sum-aggregator: contributions from all vertices during
    /// superstep t are summed and visible to every vertex at t+1 via
    /// previousAggregate() — the standard global-signal channel (e.g. the
    /// total rank delta that tells PageRank it has converged). Summation is
    /// per-worker in vertex order, reduced in worker order at the barrier,
    /// so the float result is identical at every thread count.
    void aggregate(double value) noexcept { tally_.aggregate += value; }

    /// Last superstep's aggregated sum (0 at superstep 0).
    [[nodiscard]] double previousAggregate() const noexcept {
      return engine_.runtime_.lastAggregate();
    }

   private:
    Engine& engine_;
    graph::VertexId v_;
    WorkerId worker_;
    Runtime::WorkerTally& tally_;
  };

  Engine(graph::DynamicGraph g, metrics::Assignment initial, EngineOptions options,
         Program program = Program{})
      : program_(std::move(program)),
        runtime_(std::move(g), std::move(initial), options) {
    const std::size_t bound = graph().idBound();
    values_.resize(bound);
    inbox_.resize(bound);
    lanePayloads_.resize(runtime_.k() * runtime_.k());
    runtime_.setVertexHooks(
        [this](graph::VertexId v) { onVertexLoaded(v); },
        [this](graph::VertexId v) { inbox_[v].clear(); });
  }

  // The runtime holds callbacks into this shell; relocating it would leave
  // them dangling.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs one BSP superstep; returns its statistics (also appended to
  /// history()).
  SuperstepStats runSuperstep() {
    runtime_.beginSuperstep();
    // Compute phase: one task per worker shard; reads are frozen, writes are
    // worker-private (values, tallies, outbound lanes).
    runtime_.forEachWorker([this](WorkerId w) { computeShard(w); });
    runtime_.reduceTallies();
    // Mailbox barrier: each destination worker merges its inbound lanes in
    // source order — delivery order is thread-count-invariant.
    runtime_.forEachWorker([this](WorkerId w) { deliverTo(w); });
    runtime_.executeAnnouncedMoves();
    runtime_.announceNextWave();
    return runtime_.finishSuperstep();
  }

  /// Runs `n` supersteps; returns the last one's stats, or std::nullopt when
  /// n == 0 — there is no "last superstep", and a default-constructed row
  /// (superstep 0, all zeros) would masquerade as real data.
  std::optional<SuperstepStats> runSupersteps(std::size_t n) {
    std::optional<SuperstepStats> last;
    for (std::size_t i = 0; i < n; ++i) last = runSuperstep();
    return last;
  }

  /// Applies structural updates between supersteps, or buffers them while
  /// the topology is frozen (see Runtime::ingest). Returns events applied now.
  std::size_t ingest(const std::vector<graph::UpdateEvent>& events) {
    return runtime_.ingest(events);
  }

  void freezeTopology() noexcept { runtime_.freezeTopology(); }
  std::size_t thawTopology() { return runtime_.thawTopology(); }
  [[nodiscard]] bool frozen() const noexcept { return runtime_.frozen(); }
  [[nodiscard]] std::size_t bufferedEvents() const noexcept {
    return runtime_.bufferedEvents();
  }

  [[nodiscard]] const graph::DynamicGraph& graph() const noexcept {
    return runtime_.graph();
  }
  [[nodiscard]] const core::PartitionState& state() const noexcept {
    return runtime_.state();
  }
  [[nodiscard]] std::size_t superstepIndex() const noexcept {
    return runtime_.superstepIndex();
  }
  [[nodiscard]] const std::vector<SuperstepStats>& history() const noexcept {
    return runtime_.history();
  }

  /// The untyped runtime underneath (shards, ledger, stats, partitioner).
  [[nodiscard]] const Runtime& runtime() const noexcept { return runtime_; }

  [[nodiscard]] VValue& value(graph::VertexId v) { return values_[v]; }
  [[nodiscard]] const VValue& value(graph::VertexId v) const { return values_[v]; }

  /// Last completed superstep's aggregated sum.
  [[nodiscard]] double lastAggregate() const noexcept {
    return runtime_.lastAggregate();
  }

  [[nodiscard]] Program& program() noexcept { return program_; }
  [[nodiscard]] const Program& program() const noexcept { return program_; }

  [[nodiscard]] bool partitionerConverged() const noexcept {
    return runtime_.partitionerConverged();
  }

  /// Re-provisions partition capacities for the current graph size; call
  /// after large injections (see BackgroundPartitioner::rescaleCapacity).
  void rescalePartitionerCapacity() { runtime_.rescalePartitionerCapacity(); }

  /// Total load in the configured balance mode (|V| or 2|E|).
  [[nodiscard]] std::size_t totalLoadUnits() const noexcept {
    return runtime_.totalLoadUnits();
  }

  /// Migrations executed over the engine's whole lifetime.
  [[nodiscard]] std::size_t totalMigrations() const noexcept {
    return runtime_.totalMigrations();
  }

  [[nodiscard]] double cutRatio() const noexcept { return runtime_.cutRatio(); }

  /// Folds every alive vertex value: fn(acc, id, value) -> acc.
  template <typename T, typename Fn>
  [[nodiscard]] T reduceValues(T init, Fn&& fn) const {
    graph().forEachVertex(
        [&](graph::VertexId v) { init = fn(std::move(init), v, values_[v]); });
    return init;
  }

 private:
  friend class Context;

  /// Payload weight of one message: programs carrying variable-size
  /// payloads (neighbour lists) expose `messageUnits`; scalar payloads
  /// default to one unit.
  static std::size_t unitsOf(const MValue& message) noexcept {
    if constexpr (requires { Program::messageUnits(message); }) {
      return Program::messageUnits(message);
    } else {
      return 1;
    }
  }

  /// Compute task for one worker shard: deliver the inbox (or count it lost
  /// when the vertex migrated away from the addressed worker — Fig. 3 top),
  /// run the vertex program, and recycle the consumed inbox.
  void computeShard(WorkerId w) {
    Runtime::WorkerTally& tally = runtime_.tally(w);
    if (runtime_.workerKilled(w)) {
      // Injected failure (EngineOptions::faults): the worker misses this
      // superstep entirely. Its inboxes die unread — counted lost, exactly
      // like the migrated-away case below — and its vertices neither
      // compute nor send. The shard, values, and partition state survive,
      // so the worker resumes cleanly next superstep.
      for (const graph::VertexId v : runtime_.shard(w)) {
        tally.lostMessages += inbox_[v].size();
        inbox_[v].clear();
        runtime_.clearInboxAddressedTo(v);
      }
      return;
    }
    for (const graph::VertexId v : runtime_.shard(w)) {
      std::vector<MValue>& inbox = inbox_[v];
      std::span<const MValue> view;
      if (!inbox.empty()) {
        if (runtime_.inboxAddressedTo(v) == w) {
          view = inbox;
        } else {
          tally.lostMessages += inbox.size();  // the vertex has moved away
        }
      }
      Context ctx(*this, v, w, tally);
      program_.compute(ctx, values_[v], view);
      ++tally.activeVertices;
      inbox.clear();
      runtime_.clearInboxAddressedTo(v);
    }
  }

  /// Delivery task for one destination worker: merge the inbound lanes in
  /// source-worker order into the target inboxes.
  void deliverTo(WorkerId dst) {
    const auto workers = static_cast<WorkerId>(runtime_.k());
    for (WorkerId src = 0; src < workers; ++src) {
      std::vector<graph::VertexId>& targets = runtime_.laneTargets(src, dst);
      std::vector<MValue>& payloads = lanePayloads_[src * workers + dst];
      if (!targets.empty() && runtime_.laneDropped(src, dst)) {
        // Injected network fault: the whole lane is discarded this
        // superstep. The tallies were already reduced, so the losses ride
        // the per-destination delivery counter into the stats row.
        runtime_.countDeliveryLost(dst, targets.size());
        targets.clear();
        payloads.clear();
        continue;
      }
      for (std::size_t i = 0; i < targets.size(); ++i) {
        const graph::VertexId t = targets[i];
        runtime_.setInboxAddressedTo(t, dst);
        inbox_[t].push_back(std::move(payloads[i]));
      }
      targets.clear();
      payloads.clear();
    }
  }

  void routeMessage(WorkerId srcWorker, graph::VertexId target, MValue message,
                    Runtime::WorkerTally& tally) {
    if (!graph().hasVertex(target)) {
      // Receiver left the graph (stream removal): the message expires.
      ++tally.lostMessages;
      return;
    }
    // Deferred protocol: senders were notified of upcoming migrations at the
    // start of this superstep, so they address the vertex's *next* home.
    const WorkerId dest = runtime_.destinationOf(target);
    const std::size_t units = unitsOf(message);
    if (dest == srcWorker) {
      ++tally.localMessages;
      tally.localMessageUnits += units;
    } else {
      ++tally.remoteMessages;
      tally.remoteMessageUnits += units;
    }
    runtime_.laneTargets(srcWorker, dest).push_back(target);
    lanePayloads_[srcWorker * runtime_.k() + dest].push_back(std::move(message));
  }

  /// A streamed-in vertex (possibly a recycled id): fresh value, empty inbox.
  void onVertexLoaded(graph::VertexId v) {
    const std::size_t bound = graph().idBound();
    if (values_.size() < bound) {
      values_.resize(bound);
      inbox_.resize(bound);
    }
    values_[v] = VValue{};
    inbox_[v].clear();
  }

  Program program_;
  Runtime runtime_;
  std::vector<VValue> values_;
  std::vector<std::vector<MValue>> inbox_;   ///< per-vertex payloads
  std::vector<std::vector<MValue>> lanePayloads_;  ///< k × k, parallel to
                                                   ///< Runtime::laneTargets
};

}  // namespace xdgp::pregel
