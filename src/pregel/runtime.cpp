#include "pregel/runtime.h"

#include <algorithm>
#include <utility>

namespace xdgp::pregel {

void ShardIndex::normalize() {
  for (WorkerId w = 0; w < members_.size(); ++w) {
    if (!dirty_[w]) continue;
    std::vector<graph::VertexId>& shard = members_[w];
    std::sort(shard.begin(), shard.end());
    for (std::size_t i = 0; i < shard.size(); ++i) slot_[shard[i]] = i;
    dirty_[w] = 0;
  }
}

Runtime::Runtime(graph::DynamicGraph g, metrics::Assignment initial,
                 EngineOptions options)
    : options_(options),
      core_(std::move(g), std::move(initial), options.numWorkers) {
  const std::size_t bound = graph().idBound();
  const std::size_t workers = k();
  shards_.init(workers);
  shards_.ensureCapacity(bound);
  graph().forEachVertex(
      [this](graph::VertexId v) { shards_.add(v, state().partitionOf(v)); });
  announced_.assign(bound, graph::kNoPartition);
  inboxAddressedTo_.assign(bound, graph::kNoPartition);
  laneTargets_.resize(workers * workers);
  tallies_.resize(workers);
  workerCompute_.assign(workers, 0.0);
  deliveryLost_.assign(workers, 0);
  if (options_.adaptive) {
    partitioner_.emplace(workers, totalLoadUnits(), options_.capacityFactor,
                         options_.partitioner);
  }
}

void Runtime::beginSuperstep() {
  current_ = SuperstepStats{};
  current_.superstep = superstep_;
  current_.mutationsApplied = std::exchange(pendingMutations_, 0);
  std::fill(tallies_.begin(), tallies_.end(), WorkerTally{});
  std::fill(deliveryLost_.begin(), deliveryLost_.end(), 0);
  aggregateAccumulator_ = 0.0;
  // Migrations and ingest may have disturbed shard order since the last
  // superstep; compute must walk each shard in ascending id order.
  shards_.normalize();
  phaseSeconds_ = PhaseSeconds{};
  phaseTimer_.reset();
}

void Runtime::forEachWorker(const std::function<void(WorkerId)>& fn) {
  const auto workers = static_cast<WorkerId>(k());
  if (options_.threads <= 1 || workers == 1) {
    for (WorkerId w = 0; w < workers; ++w) fn(w);
    return;
  }
  if (!pool_) {
    pool_ = std::make_unique<util::ThreadPool>(
        std::min<std::size_t>(options_.threads, workers));
  }
  for (WorkerId w = 0; w < workers; ++w) {
    pool_->submit([&fn, w] { fn(w); });
  }
  pool_->wait();
}

void Runtime::reduceTallies() {
  phaseSeconds_.compute = phaseTimer_.seconds();  // the barrier just closed
  phaseTimer_.reset();
  // Fixed worker order: the float sums (computeUnits, aggregate) come out
  // bit-identical no matter how the compute tasks interleaved.
  for (std::size_t w = 0; w < tallies_.size(); ++w) {
    const WorkerTally& t = tallies_[w];
    current_.activeVertices += t.activeVertices;
    current_.localMessages += t.localMessages;
    current_.remoteMessages += t.remoteMessages;
    current_.localMessageUnits += t.localMessageUnits;
    current_.remoteMessageUnits += t.remoteMessageUnits;
    current_.lostMessages += t.lostMessages;
    current_.computeUnits += t.computeUnits;
    aggregateAccumulator_ += t.aggregate;
    workerCompute_[w] = t.computeUnits;
  }
  current_.maxWorkerComputeUnits =
      *std::max_element(workerCompute_.begin(), workerCompute_.end());
}

void Runtime::moveNow(graph::VertexId v, graph::PartitionId target) {
  const graph::PartitionId from = state().partitionOf(v);
  if (core_.executeMove(v, target)) {
    shards_.move(v, from, target);
    ++current_.migrationsExecuted;
  }
}

void Runtime::executeAnnouncedMoves() {
  phaseSeconds_.delivery = phaseTimer_.seconds();
  phaseTimer_.reset();
  for (const graph::VertexId v : announcedVertices_) {
    if (!graph().hasVertex(v)) continue;  // removed while migrating
    const graph::PartitionId target = announced_[v];
    if (target == graph::kNoPartition) continue;
    moveNow(v, target);
    announced_[v] = graph::kNoPartition;
  }
  announcedVertices_.clear();
}

void Runtime::announceNextWave() {
  if (!partitioner_) return;
  // Runtime statistics for the §6 hotspot extension: this superstep's
  // per-worker compute units are the activity signal.
  partitioner_->observeActivity(workerCompute_);
  const auto announcements = partitioner_->announce(graph(), state());
  current_.migrationsAnnounced = announcements.size();
  partitioner_->recordMigrations(announcements.size());
  if (options_.deferredMigration) {
    for (const auto& [v, target] : announcements) {
      announced_[v] = target;
      announcedVertices_.push_back(v);
    }
  } else {
    for (const auto& [v, target] : announcements) moveNow(v, target);
  }
}

SuperstepStats Runtime::finishSuperstep() {
  phaseSeconds_.rest = phaseTimer_.seconds();
  // Lane-drop losses happen after the tally reduction; fold them in here,
  // in worker order, so the stats row stays thread-count-invariant.
  for (const std::size_t lost : deliveryLost_) current_.lostMessages += lost;
  current_.cutEdges = state().cutEdges();
  lastAggregate_ = aggregateAccumulator_;
  current_.aggregatedValue = lastAggregate_;
  current_.modeledTime = options_.cost.timeFor(current_);
  history_.push_back(current_);
  ++superstep_;
  return current_;
}

void Runtime::VertexHooks::onVertexLoaded(graph::VertexId v) {
  const std::size_t bound = runtime_.graph().idBound();
  if (runtime_.announced_.size() < bound) {
    runtime_.announced_.resize(bound, graph::kNoPartition);
    runtime_.inboxAddressedTo_.resize(bound, graph::kNoPartition);
  }
  runtime_.shards_.ensureCapacity(bound);
  // The id may be recycled: reset whatever the previous owner left behind.
  runtime_.announced_[v] = graph::kNoPartition;
  runtime_.inboxAddressedTo_[v] = graph::kNoPartition;
  runtime_.shards_.add(v, runtime_.state().partitionOf(v));
  if (runtime_.shellLoaded_) runtime_.shellLoaded_(v);
}

void Runtime::VertexHooks::onVertexRemoving(graph::VertexId v) {
  runtime_.shards_.remove(v, runtime_.state().partitionOf(v));
  // A pending announcement for a removed vertex must never execute; queued
  // messages towards it die with the inbox (the shell clears payloads).
  runtime_.announced_[v] = graph::kNoPartition;
  runtime_.inboxAddressedTo_[v] = graph::kNoPartition;
  if (runtime_.shellDropping_) runtime_.shellDropping_(v);
}

std::size_t Runtime::applyNow(const std::vector<graph::UpdateEvent>& events) {
  VertexHooks hooks(*this);
  const std::size_t applied = core_.applyEvents(
      events, hooks, partitioner_ ? &partitioner_->convergence() : nullptr);
  pendingMutations_ += applied;
  return applied;
}

std::size_t Runtime::ingest(const std::vector<graph::UpdateEvent>& events) {
  if (frozen_) {
    frozenBuffer_.insert(frozenBuffer_.end(), events.begin(), events.end());
    return 0;
  }
  return applyNow(events);
}

std::size_t Runtime::thawTopology() {
  frozen_ = false;
  const std::size_t applied = applyNow(frozenBuffer_);
  frozenBuffer_.clear();
  return applied;
}

}  // namespace xdgp::pregel
