#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/partitioned_runtime.h"
#include "pregel/background_partitioner.h"
#include "pregel/cost_model.h"
#include "pregel/types.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace xdgp::pregel {

/// Engine configuration (Fig. 2's layered system).
struct EngineOptions {
  std::size_t numWorkers = 9;       ///< k workers, one partition each
  double capacityFactor = 1.1;      ///< partition capacity headroom
  bool adaptive = false;            ///< run the background partitioner
  BackgroundPartitioner::Options partitioner;
  /// Deferred (one-superstep-delayed) vertex migration per §3. Turning this
  /// off reproduces Fig. 3 (top): in-flight messages chase departed vertices
  /// and are lost — the ablation quantifying why deferral is required.
  bool deferredMigration = true;
  CostParams cost;
  /// Deterministic failure injection (serve::FaultPlan adapts to these).
  /// Both hooks are consulted with the current superstep index; empty
  /// functions mean no faults and cost nothing on the hot path beyond a
  /// bool test. killWorker(w, s) true: worker w misses superstep s entirely
  /// — its inboxes are counted lost and its vertices neither compute nor
  /// send (the shard itself survives; partition state is untouched).
  /// dropLane(src, dst, s) true: every message on mailbox lane src→dst is
  /// discarded at superstep s's delivery barrier and counted lost.
  struct FaultHooks {
    std::function<bool(WorkerId worker, std::size_t superstep)> killWorker;
    std::function<bool(WorkerId src, WorkerId dst, std::size_t superstep)> dropLane;
  };
  FaultHooks faults;
  /// Threads for the compute and delivery phases (mirrors
  /// AdaptiveOptions::threads). Worker shards are independent and the
  /// per-worker mailbox lanes merge in fixed worker order at the barrier,
  /// so every thread count produces the bit-identical superstep trajectory
  /// (stats history, assignments, aggregates) — asserted by the lockstep
  /// suite in tests/pregel_shard_test.cpp. <= 1 runs serially.
  std::size_t threads = 1;
};

/// Per-worker vertex shards: worker w owns exactly the vertices currently
/// assigned to partition w, iterated in ascending id order. Membership is
/// maintained incrementally (O(1) add/remove via swap-remove); shards whose
/// order was disturbed re-sort lazily at the next superstep start, so the
/// compute phase always walks each shard in the same order the serial
/// engine would.
class ShardIndex {
 public:
  void init(std::size_t k) { members_.assign(k, {}); dirty_.assign(k, 0); }

  void ensureCapacity(std::size_t idBound) {
    if (slot_.size() < idBound) slot_.resize(idBound, 0);
  }

  void add(graph::VertexId v, WorkerId w) {
    std::vector<graph::VertexId>& shard = members_[w];
    if (!shard.empty() && v < shard.back()) dirty_[w] = 1;
    slot_[v] = shard.size();
    shard.push_back(v);
  }

  void remove(graph::VertexId v, WorkerId w) {
    std::vector<graph::VertexId>& shard = members_[w];
    const std::size_t at = slot_[v];
    const graph::VertexId last = shard.back();
    shard[at] = last;
    slot_[last] = at;
    shard.pop_back();
    if (last != v) dirty_[w] = 1;  // swap-remove broke the ascending order
  }

  void move(graph::VertexId v, WorkerId from, WorkerId to) {
    remove(v, from);
    add(v, to);
  }

  /// Re-sorts every disturbed shard; call once per superstep before compute.
  void normalize();

  [[nodiscard]] std::span<const graph::VertexId> members(WorkerId w) const noexcept {
    return members_[w];
  }

 private:
  std::vector<std::vector<graph::VertexId>> members_;
  std::vector<std::size_t> slot_;   ///< index of v inside its shard
  std::vector<std::uint8_t> dirty_;
};

/// The non-template core of the sharded Pregel engine: per-worker vertex
/// shards, per-worker mailbox-lane bookkeeping, the deferred-migration
/// ledger, superstep statistics, the background partitioner, and the
/// freeze/thaw mutation buffer — everything Fig. 2's runtime does that does
/// not depend on the user program's value/message types. `Engine<Program>`
/// (pregel/engine.h) is a thin templated compute shell over this class: it
/// owns only the typed per-vertex values and message payloads and calls the
/// orchestration hooks below in a fixed superstep order.
///
/// Threading model: the compute phase runs one task per worker shard on a
/// util::ThreadPool (EngineOptions::threads). During compute the graph, the
/// partition state, and the announcement ledger are frozen (reads only);
/// each task writes exclusively its own worker's tally and outbound lanes.
/// At the barrier, tallies reduce in worker order 0..k-1 and each
/// destination worker merges its inbound lanes in source order 0..k-1, so
/// message delivery order — and with it every stat and every float sum — is
/// invariant to the thread count.
class Runtime {
 public:
  /// Per-worker superstep tally, accumulated privately by the worker's
  /// compute task and reduced at the barrier in worker order. Cache-line
  /// sized so neighbouring workers do not false-share.
  struct alignas(64) WorkerTally {
    std::size_t activeVertices = 0;
    std::size_t localMessages = 0;
    std::size_t remoteMessages = 0;
    std::size_t localMessageUnits = 0;
    std::size_t remoteMessageUnits = 0;
    std::size_t lostMessages = 0;
    double computeUnits = 0.0;
    double aggregate = 0.0;
  };

  /// Measured wall seconds of the last superstep's phases (the bench
  /// observability behind bench/superstep_scaling; experiment *results* use
  /// the deterministic cost model, never this clock). `rest` covers the
  /// serial tail: migration execution, the partitioner walk, and the frame
  /// close.
  struct PhaseSeconds {
    double compute = 0.0;
    double delivery = 0.0;
    double rest = 0.0;
    [[nodiscard]] double total() const noexcept {
      return compute + delivery + rest;
    }
  };

  /// Takes ownership of the graph; `initial` must assign every alive vertex
  /// to a partition in [0, numWorkers) — an out-of-range assignment is a
  /// hard std::invalid_argument (PartitionedRuntime validates).
  Runtime(graph::DynamicGraph g, metrics::Assignment initial, EngineOptions options);

  /// Registers the shell's typed per-vertex maintenance: `loaded` fires when
  /// a vertex (re)enters the graph (the id space may have grown — resize and
  /// default-initialise), `dropping` just before one leaves (clear queued
  /// payloads). Must be called once before any ingest.
  void setVertexHooks(std::function<void(graph::VertexId)> loaded,
                      std::function<void(graph::VertexId)> dropping) {
    shellLoaded_ = std::move(loaded);
    shellDropping_ = std::move(dropping);
  }

  // ---- superstep orchestration, called by Engine<Program> in this order --

  /// Opens the superstep frame: stats row, mutation count, tally reset, and
  /// shard-order normalisation.
  void beginSuperstep();

  /// Runs fn(w) for every worker, on the pool when threads > 1. Returns
  /// after all workers finished (the BSP barrier).
  void forEachWorker(const std::function<void(WorkerId)>& fn);

  /// Reduces the per-worker tallies into the current stats row, in worker
  /// order (float sums stay thread-count-invariant), and feeds the activity
  /// signal the hotspot extension consumes.
  void reduceTallies();

  /// Migration phase 1: executes the moves announced last superstep (their
  /// messages were already routed to the new homes), updating the shards.
  void executeAnnouncedMoves();

  /// Migration phase 2: the background partitioner decides and announces
  /// the next wave (deferred), or applies it at once in the
  /// instant-migration ablation.
  void announceNextWave();

  /// Closes the frame: cut edges, aggregate hand-over, modeled time, history
  /// append. Returns the finished row.
  SuperstepStats finishSuperstep();

  // ---- compute-phase services (thread-safe under the model above) --------

  [[nodiscard]] std::span<const graph::VertexId> shard(WorkerId w) const noexcept {
    return shards_.members(w);
  }

  [[nodiscard]] WorkerTally& tally(WorkerId w) noexcept { return tallies_[w]; }

  /// Where a message to `target` must be sent: the announced next home when
  /// a migration is pending (the §3 deferred protocol — senders were
  /// notified at the start of the superstep), the current home otherwise.
  [[nodiscard]] WorkerId destinationOf(graph::VertexId target) const noexcept {
    const graph::PartitionId announcedTarget = announced_[target];
    return announcedTarget != graph::kNoPartition
               ? announcedTarget
               : core_.state().partitionOf(target);
  }

  /// The outbound lane src → dst: targets only; the shell keeps the payload
  /// vector parallel to it. Each compute task writes only its own src row.
  [[nodiscard]] std::vector<graph::VertexId>& laneTargets(WorkerId src,
                                                          WorkerId dst) noexcept {
    return laneTargets_[src * k() + dst];
  }

  /// Which worker this superstep's inbox of v was addressed to. All of a
  /// vertex's messages in one superstep carry the same destination (the
  /// routing rule is a pure function of the frozen ledger and state), so one
  /// label per vertex replaces the per-envelope tag; kNoPartition = empty.
  [[nodiscard]] WorkerId inboxAddressedTo(graph::VertexId v) const noexcept {
    return inboxAddressedTo_[v];
  }
  void setInboxAddressedTo(graph::VertexId v, WorkerId w) noexcept {
    inboxAddressedTo_[v] = w;
  }
  void clearInboxAddressedTo(graph::VertexId v) noexcept {
    inboxAddressedTo_[v] = graph::kNoPartition;
  }

  // ---- failure injection (EngineOptions::faults) -------------------------

  /// Whether worker w is down for the current superstep.
  [[nodiscard]] bool workerKilled(WorkerId w) const {
    return options_.faults.killWorker && options_.faults.killWorker(w, superstep_);
  }

  /// Whether mailbox lane src→dst is faulted for the current superstep.
  [[nodiscard]] bool laneDropped(WorkerId src, WorkerId dst) const {
    return options_.faults.dropLane && options_.faults.dropLane(src, dst, superstep_);
  }

  /// Losses discovered during the delivery phase (dropped lanes): the
  /// tallies are already reduced by then, so these accumulate per
  /// destination worker — dst-private during delivery, hence race-free and
  /// thread-count-invariant — and fold into the stats row at
  /// finishSuperstep.
  void countDeliveryLost(WorkerId dst, std::size_t n) noexcept {
    deliveryLost_[dst] += n;
  }

  // ---- streaming mutations ----------------------------------------------

  /// Applies structural updates between supersteps, or buffers them while
  /// the topology is frozen (the §4.3 clique workload "requires freezing the
  /// graph topology until a result is obtained"). Returns events applied now.
  std::size_t ingest(const std::vector<graph::UpdateEvent>& events);

  void freezeTopology() noexcept { frozen_ = true; }

  /// Thaws the topology and applies everything buffered while frozen —
  /// "every iteration will trigger the adaptation to a batch set of
  /// changes". Returns the number of events applied.
  std::size_t thawTopology();

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  [[nodiscard]] std::size_t bufferedEvents() const noexcept {
    return frozenBuffer_.size();
  }

  // ---- accessors ---------------------------------------------------------

  [[nodiscard]] const graph::DynamicGraph& graph() const noexcept {
    return core_.graph();
  }
  [[nodiscard]] const core::PartitionState& state() const noexcept {
    return core_.state();
  }
  [[nodiscard]] std::size_t k() const noexcept { return options_.numWorkers; }
  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t superstepIndex() const noexcept { return superstep_; }
  [[nodiscard]] const std::vector<SuperstepStats>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] double lastAggregate() const noexcept { return lastAggregate_; }
  [[nodiscard]] double cutRatio() const noexcept {
    return state().cutRatio(graph());
  }
  [[nodiscard]] std::size_t totalMigrations() const noexcept {
    return core_.totalMigrations();
  }

  [[nodiscard]] bool partitionerConverged() const noexcept {
    return partitioner_ ? partitioner_->converged() : true;
  }

  /// Re-provisions partition capacities for the current graph size; call
  /// after large injections (see BackgroundPartitioner::rescaleCapacity).
  void rescalePartitionerCapacity() {
    if (partitioner_) {
      partitioner_->rescaleCapacity(totalLoadUnits(), options_.capacityFactor);
    }
  }

  /// Total load in the configured balance mode (|V| or 2|E|).
  [[nodiscard]] std::size_t totalLoadUnits() const noexcept {
    return core_.totalLoadUnits(options_.partitioner.balanceMode);
  }

  [[nodiscard]] const PhaseSeconds& lastPhaseSeconds() const noexcept {
    return phaseSeconds_;
  }

 private:
  /// Shard / ledger / shell maintenance on structural updates
  /// (PartitionedRuntime hooks).
  class VertexHooks final : public core::PartitionedRuntime::MutationHooks {
   public:
    explicit VertexHooks(Runtime& runtime) noexcept : runtime_(runtime) {}
    void onVertexLoaded(graph::VertexId v) override;
    void onVertexRemoving(graph::VertexId v) override;

   private:
    Runtime& runtime_;
  };

  std::size_t applyNow(const std::vector<graph::UpdateEvent>& events);

  /// Executes one migration now: partition state, shard index, stats.
  void moveNow(graph::VertexId v, graph::PartitionId target);

  EngineOptions options_;
  core::PartitionedRuntime core_;
  ShardIndex shards_;
  std::optional<BackgroundPartitioner> partitioner_;
  std::unique_ptr<util::ThreadPool> pool_;

  std::vector<std::vector<graph::VertexId>> laneTargets_;  ///< k × k rows
  std::vector<WorkerId> inboxAddressedTo_;                 ///< per vertex
  std::vector<WorkerTally> tallies_;
  std::vector<double> workerCompute_;  ///< per-worker units (hotspot signal)
  std::vector<std::size_t> deliveryLost_;  ///< per-dst lane-drop losses

  /// Deferred-migration ledger: announced_[v] is v's next home (or
  /// kNoPartition), announcedVertices_ the execution order.
  std::vector<graph::PartitionId> announced_;
  std::vector<graph::VertexId> announcedVertices_;

  std::function<void(graph::VertexId)> shellLoaded_;
  std::function<void(graph::VertexId)> shellDropping_;

  SuperstepStats current_;
  PhaseSeconds phaseSeconds_;
  util::WallTimer phaseTimer_;
  double aggregateAccumulator_ = 0.0;
  double lastAggregate_ = 0.0;
  std::vector<SuperstepStats> history_;

  std::vector<graph::UpdateEvent> frozenBuffer_;
  bool frozen_ = false;
  std::size_t superstep_ = 0;
  std::size_t pendingMutations_ = 0;
};

}  // namespace xdgp::pregel
