// Streaming micro-harness: runs every generated workload in
// api::WorkloadRegistry through Session::stream at a small, fixed scale and
// emits one per-window JSONL series per workload into XDGP_BENCH_DIR
// (stream_<code>.jsonl) — the CI artifact that tracks windowed cut ratio,
// migrations, and wall time per window across commits, the way
// micro_kernels' BENCH_*.json tracks kernel times.
//
//   build/bench/stream_windows [--k=9] [--seed=42] [--strategy=HSH]

#include <fstream>
#include <iostream>

#include "bench_common.h"

using namespace xdgp;

namespace {

/// Small-scale overrides so the sweep stays a CI-sized smoke, not a bench.
api::WorkloadConfig smallConfig(const std::string& code, std::uint64_t seed) {
  api::WorkloadConfig config;
  config.seed = seed;
  if (code == "TWEET") {
    config.overrides = {{"users", 2'000}, {"rate", 2.0}, {"hours", 2.0}};
  } else if (code == "CDR") {
    config.overrides = {{"subscribers", 4'000}, {"weeks", 2}};
  } else if (code == "FFIRE") {
    config.overrides = {{"side", 32}, {"batches", 6}, {"burst", 60}};
  } else if (code == "CHURN") {
    config.overrides = {{"vertices", 1'500}, {"ticks", 6}, {"rate", 150}};
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const std::string strategy = flags.getString("strategy", "HSH");
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();

  util::TablePrinter table({"workload", "windows", "events", "cut first",
                            "cut last", "migrations", "jsonl"});
  for (const api::WorkloadInfo* info : api::WorkloadRegistry::instance().infos()) {
    if (info->needsEventsPath) continue;  // REPLAY has no generator to sweep
    api::Workload workload = api::WorkloadRegistry::instance().make(
        info->code, smallConfig(info->code, seed));
    api::Session session = api::Pipeline::fromGraph(std::move(workload.initial))
                               .initial(strategy)
                               .k(k)
                               .seed(seed)
                               .adaptive()
                               .start();
    api::TimelineReport timeline =
        session.stream(std::move(workload.stream), workload.suggested);
    timeline.workload = workload.code;

    const std::string path =
        bench::resultsDir() + "/stream_" + workload.code + ".jsonl";
    std::ofstream out(path);
    timeline.renderJsonl(out);

    std::size_t migrations = 0;
    for (const api::WindowReport& w : timeline.windows) migrations += w.migrations;
    table.addRow({workload.code, std::to_string(timeline.windows.size()),
                  std::to_string(timeline.totalApplied()),
                  util::fmt(timeline.front().cutRatio, 3),
                  util::fmt(timeline.back().cutRatio, 3),
                  std::to_string(migrations), path});
  }
  table.print(std::cout);
  return 0;
}
