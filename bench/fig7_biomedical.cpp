// Figure 7 — the biomedical use case: a cardiac-tissue FEM processed by the
// Pregel-like system with the adaptive partitioner running in the
// background.
//
//  (a) re-arrangement of the initial hash partitioning: #cuts, #migrations
//      and time per iteration (normalised to static hash partitioning);
//  (b) absorption of a load peak: a forest-fire expansion injects +10%
//      vertices (+~30% edges) at once, the paper's worst case.
//
// Paper scale: 100M vertices / 300M edges on 63 blades (3 TB RAM). Default
// here: a 1M-vertex mesh on 63 logical workers — docs/DESIGN.md §2 documents the
// substitution; Fig. 6 shows the dynamics are scale-stable. Use
// `--vertices=...` to change scale (up to memory).
//
// Expected shape (paper): cuts drop ~50%; migrations decay exponentially;
// time per iteration spikes during the migration burst, then settles well
// below the hash baseline (paper: ~0.5x). The +10% injection produces a
// smaller spike that is quickly absorbed.

#include <algorithm>
#include <iostream>

#include "apps/cardiac.h"
#include "bench_common.h"
#include "gen/forest_fire.h"
#include "gen/mesh3d.h"
#include "pregel/engine.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace xdgp;

namespace {

struct PhaseSummary {
  std::size_t startCuts = 0;
  std::size_t endCuts = 0;
  double peakTime = 0.0;
  double endTime = 0.0;
  std::size_t totalMigrations = 0;
  std::size_t iterations = 0;
};

PhaseSummary runPhase(pregel::Engine<apps::CardiacProgram>& engine, double t0,
                      std::size_t maxSupersteps, std::size_t printEvery,
                      util::CsvWriter& csv, const std::string& phase) {
  PhaseSummary summary;
  summary.startCuts = engine.state().cutEdges();
  std::size_t step = 0;
  while (!engine.partitionerConverged() && step < maxSupersteps) {
    const pregel::SuperstepStats stats = engine.runSuperstep();
    const double normTime = stats.modeledTime / t0;
    summary.peakTime = std::max(summary.peakTime, normTime);
    summary.endTime = normTime;
    summary.totalMigrations += stats.migrationsExecuted;
    csv.addRow({phase, std::to_string(stats.superstep),
                std::to_string(stats.cutEdges),
                std::to_string(stats.migrationsExecuted),
                util::fmt(normTime, 4)});
    if (step % printEvery == 0) {
      std::cout << "  iter " << stats.superstep << ": cuts=" << stats.cutEdges
                << " migrations=" << stats.migrationsExecuted
                << " time/iter=" << util::fmt(normTime, 2) << "x\n";
    }
    ++step;
  }
  summary.endCuts = engine.state().cutEdges();
  summary.iterations = step;
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto vertices = static_cast<std::size_t>(flags.getInt("vertices", 1'000'000));
  const auto workers = static_cast<std::size_t>(flags.getInt("workers", 63));
  // Compute-phase threads for the sharded runtime; any value produces the
  // identical trajectory, so the figure is threads-invariant by construction.
  const auto threads = static_cast<std::size_t>(flags.getInt("threads", 1));
  const auto printEvery = static_cast<std::size_t>(flags.getInt("print-every", 25));
  const auto maxSupersteps =
      static_cast<std::size_t>(flags.getInt("max-supersteps", 1'000));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();

  util::WallTimer wall;
  graph::DynamicGraph mesh = gen::mesh3dApprox(vertices);
  std::cout << "Figure 7: biomedical FEM, |V|=" << mesh.numVertices()
            << " |E|=" << mesh.numEdges() << ", " << workers
            << " workers (paper: 1e8 vertices, 63 blades; scaled per docs/DESIGN.md)\n";

  pregel::EngineOptions options;
  options.numWorkers = workers;
  options.adaptive = true;
  options.partitioner.seed = seed;
  options.threads = threads;
  pregel::Engine<apps::CardiacProgram> engine(
      mesh, bench::initialAssignment(mesh, "HSH", workers, 1.1, seed), options);

  util::CsvWriter csv(bench::resultsDir() + "/fig7_biomedical.csv",
                      {"phase", "iteration", "cuts", "migrations",
                       "time_per_iteration"});

  // Static-hash baseline: the first superstep runs before any migration.
  const pregel::SuperstepStats first = engine.runSuperstep();
  const double t0 = first.modeledTime;
  const double commShare = options.cost.commShare(first);
  std::cout << "Static hash baseline: cuts=" << first.cutEdges << " ("
            << util::fmt(100.0 * static_cast<double>(first.cutEdges) /
                             static_cast<double>(mesh.numEdges()),
                         1)
            << "% of edges), message share of iteration time = "
            << util::fmt(100.0 * commShare, 1) << "% (paper: >80%)\n";

  std::cout << "\n(a) Re-arrangement of the hash partitioning\n";
  csv.addRow({"a", "0", std::to_string(first.cutEdges), "0", "1.0000"});
  const PhaseSummary a = runPhase(engine, t0, maxSupersteps, printEvery, csv, "a");

  std::cout << "\n(b) Absorption of a +10% forest-fire load peak\n";
  graph::DynamicGraph grown = engine.graph();
  util::Rng fireRng(seed + 1);
  const std::size_t newVertices = grown.numVertices() / 10;
  const auto events = gen::forestFireExtension(grown, newVertices, {}, fireRng);
  std::size_t newEdges = 0;
  for (const auto& e : events) {
    newEdges += e.kind == graph::UpdateEvent::Kind::kAddEdge;
  }
  std::cout << "  injected " << newVertices << " vertices / " << newEdges
            << " edges in one batch\n";
  engine.ingest(events);
  engine.rescalePartitionerCapacity();
  const PhaseSummary b = runPhase(engine, t0, maxSupersteps, printEvery, csv, "b");

  std::cout << "\nSummary (paper expectations in parentheses)\n";
  util::TablePrinter table({"metric", "phase a", "phase b"});
  table.addRow({"cuts start", std::to_string(a.startCuts), std::to_string(b.startCuts)});
  table.addRow({"cuts end", std::to_string(a.endCuts), std::to_string(b.endCuts)});
  table.addRow({"cut reduction",
                util::fmt(100.0 * (1.0 - static_cast<double>(a.endCuts) /
                                             static_cast<double>(a.startCuts)),
                          1) + "% (~50%)",
                util::fmt(100.0 * (1.0 - static_cast<double>(b.endCuts) /
                                             static_cast<double>(b.startCuts)),
                          1) + "%"});
  table.addRow({"peak time/iter", util::fmt(a.peakTime, 2) + "x (21x at 1e8)",
                util::fmt(b.peakTime, 2) + "x (4.6x at 1e8)"});
  table.addRow({"settled time/iter", util::fmt(a.endTime, 2) + "x (~0.5x)",
                util::fmt(b.endTime, 2) + "x"});
  table.addRow({"total migrations", std::to_string(a.totalMigrations),
                std::to_string(b.totalMigrations)});
  table.addRow({"iterations", std::to_string(a.iterations),
                std::to_string(b.iterations)});
  table.print(std::cout);
  std::cout << "\nCSV: " << bench::resultsDir() << "/fig7_biomedical.csv\n"
            << "wall time: " << util::fmt(wall.seconds(), 1) << "s\n";
  return 0;
}
