// Elastic-k benchmark: the Spinner-style LPA engine resizing its partition
// set live, mid-stream. A CHURN workload streams window by window; at 1/3
// of the windows the partition set grows k -> grow_to, at 2/3 it shrinks
// grow_to -> shrink_to (retiring the top ids), all under a bounded
// per-window migration budget. Per-window rows record k, activeK,
// migrations, cut ratio, imbalance, and the residual load still stranded on
// retired partitions; fresh-partitioning baselines (a from-scratch LPA run
// at the target k over the same graph state) anchor the recovery claim —
// the elastic trajectory's cut ratio should land within ~10% of fresh.
//
// A second phase runs the greedy engine and LPA head-to-head over the full
// CDR and TWEET streams, same seed and knobs, for the quality comparison
// the committed BENCH_lpa.json carries.
//
//   build/bench/elastic_k [--vertices=4000] [--ticks=12] [--rate=400]
//                         [--k=8] [--grow-to=12] [--shrink-to=6]
//                         [--budget=800] [--threads=1] [--seed=42]
//                         [--cdr-subscribers=3000] [--cdr-weeks=2]
//                         [--tweet-users=2000] [--tweet-hours=2]
//                         [--out=<json path>]

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/stream.h"
#include "bench_common.h"
#include "lpa/lpa_engine.h"
#include "util/timer.h"

using namespace xdgp;

namespace {

/// One streamed window of the elastic phase, as recorded for the JSON rows.
struct WindowRow {
  std::size_t index = 0;
  std::size_t k = 0;        ///< total partition ids (retired included)
  std::size_t activeK = 0;  ///< live partitions
  std::size_t migrations = 0;
  double cutRatio = 0.0;
  double imbalance = 0.0;
  std::size_t residual = 0;  ///< load still stranded on retired partitions
};

/// Residual load on the engine's retired partitions (0 once drained).
std::size_t retiredResidual(const core::Engine& engine) {
  std::size_t residual = 0;
  for (const graph::PartitionId p : engine.retiredPartitions()) {
    residual += engine.state().load(p);
  }
  return residual;
}

/// Fresh-partitioning baseline: a from-scratch LPA run at `k` over a copy
/// of `g`, same seed/knobs as the elastic run. Returns the converged cut
/// ratio — the quality an operator would get by re-partitioning instead of
/// resizing in place.
double freshCutRatio(const graph::DynamicGraph& g, std::size_t k,
                     const core::AdaptiveOptions& knobs) {
  core::AdaptiveOptions options = knobs;
  options.k = k;
  options.lpaMigrationBudget = 0;  // convergence quality, not churn cost
  return bench::runAdaptive(g, "HSH", options).finalCutRatio;
}

/// One full-stream run for the head-to-head phase.
struct HeadToHead {
  std::string workload;
  std::string engine;
  std::size_t windows = 0;
  std::size_t migrations = 0;
  double finalCutRatio = 0.0;
  double imbalance = 0.0;
  double seconds = 0.0;
};

HeadToHead runHeadToHead(const std::string& code, core::EngineKind kind,
                         const api::WorkloadConfig& config,
                         const core::AdaptiveOptions& knobs) {
  api::Workload workload = api::WorkloadRegistry::instance().make(code, config);
  core::AdaptiveOptions options = knobs;
  options.engine = kind;
  const util::WallTimer timer;
  api::Session session = api::Pipeline::fromGraph(std::move(workload.initial))
                             .initial("HSH")
                             .k(options.k)
                             .capacityFactor(options.capacityFactor)
                             .seed(options.seed)
                             .adaptive(options)
                             .start();
  const api::TimelineReport timeline =
      session.stream(std::move(workload.stream), workload.suggested);
  HeadToHead row;
  row.workload = code;
  row.engine = core::engineKindCode(kind);
  row.windows = timeline.windows.size();
  for (const api::WindowReport& w : timeline.windows) row.migrations += w.migrations;
  row.finalCutRatio = timeline.back().cutRatio;
  row.imbalance = timeline.back().balance.imbalance;
  row.seconds = timer.seconds();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto vertices = static_cast<std::size_t>(flags.getInt("vertices", 4'000));
  const auto ticks = static_cast<std::size_t>(flags.getInt("ticks", 12));
  const auto rate = static_cast<std::size_t>(flags.getInt("rate", 400));
  const auto k = static_cast<std::size_t>(flags.getInt("k", 8));
  const auto growTo = static_cast<std::size_t>(flags.getInt("grow-to", 12));
  const auto shrinkTo = static_cast<std::size_t>(flags.getInt("shrink-to", 6));
  const auto budget = static_cast<std::size_t>(flags.getInt("budget", 800));
  const auto threads = static_cast<std::size_t>(flags.getInt("threads", 1));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  const auto cdrSubscribers =
      static_cast<std::size_t>(flags.getInt("cdr-subscribers", 3'000));
  const auto cdrWeeks = static_cast<std::size_t>(flags.getInt("cdr-weeks", 2));
  const auto tweetUsers =
      static_cast<std::size_t>(flags.getInt("tweet-users", 2'000));
  const double tweetHours = flags.getDouble("tweet-hours", 2.0);
  const std::string outPath =
      flags.getString("out", bench::resultsDir() + "/elastic_k.json");
  flags.finish();
  if (growTo <= k || shrinkTo >= growTo || shrinkTo == 0) {
    std::cerr << "elastic_k: need shrink-to < k < grow-to (and shrink-to > 0)\n";
    return 1;
  }

  // ----------------------------------------------------- elastic phase
  api::WorkloadConfig churn;
  churn.seed = seed;
  churn.overrides = {{"vertices", static_cast<double>(vertices)},
                     {"ticks", static_cast<double>(ticks)},
                     {"rate", static_cast<double>(rate)}};
  api::Workload workload = api::WorkloadRegistry::instance().make("CHURN", churn);
  const api::StreamOptions stream = workload.suggested;

  // Count the windows up front so the grow/shrink points land at 1/3 and
  // 2/3 regardless of the windowing mode the workload suggested.
  std::size_t totalWindows = 0;
  {
    api::Streamer counter(graph::UpdateStream(workload.stream.events()), stream);
    while (counter.next()) ++totalWindows;
  }
  if (totalWindows < 3) {
    std::cerr << "elastic_k: stream too short (" << totalWindows << " windows)\n";
    return 2;
  }
  const std::size_t growWindow = totalWindows / 3;
  const std::size_t shrinkWindow = 2 * totalWindows / 3;

  core::AdaptiveOptions knobs;
  knobs.k = k;
  knobs.seed = seed;
  knobs.threads = threads;
  knobs.engine = core::EngineKind::kLpa;
  knobs.lpaMigrationBudget = budget;

  api::Session session = api::Pipeline::fromGraph(workload.initial)
                             .initial("HSH")
                             .k(k)
                             .capacityFactor(knobs.capacityFactor)
                             .seed(seed)
                             .adaptive(knobs)
                             .start();

  std::vector<graph::PartitionId> retire;
  for (std::size_t p = shrinkTo; p < growTo; ++p) {
    retire.push_back(static_cast<graph::PartitionId>(p));
  }

  std::vector<WindowRow> rows;
  double cutAtPeakEnd = 0.0;  ///< cut ratio just before the shrink fires
  graph::DynamicGraph graphAtPeakEnd;
  api::Streamer streamer(graph::UpdateStream(workload.stream.events()), stream);
  while (std::optional<api::WindowBatch> batch = streamer.next()) {
    if (batch->index == growWindow) session.engine().growPartitions(growTo - k);
    if (batch->index == shrinkWindow) {
      cutAtPeakEnd = session.engine().cutRatio();
      graphAtPeakEnd = session.engine().graph();
      session.engine().shrinkPartitions(retire);
    }
    const api::WindowReport window = session.streamWindow(*batch, stream);
    WindowRow row;
    row.index = window.index;
    row.k = session.engine().k();
    row.activeK = session.engine().activeK();
    row.migrations = window.migrations;
    row.cutRatio = window.cutRatio;
    row.imbalance = window.balance.imbalance;
    row.residual = retiredResidual(session.engine());
    rows.push_back(row);
  }

  // Recovery metrics. Fresh baselines re-partition the same graph state
  // from scratch at the target k; the drain count is how many windows the
  // retired partitions needed to empty under the migration budget.
  const double freshAtGrown = freshCutRatio(graphAtPeakEnd, growTo, knobs);
  const double freshAtFinal =
      freshCutRatio(session.engine().graph(), shrinkTo, knobs);
  const double finalCut = rows.back().cutRatio;
  std::size_t windowsToDrain = 0;
  for (const WindowRow& row : rows) {
    if (row.index < shrinkWindow) continue;
    windowsToDrain = row.index - shrinkWindow + 1;
    if (row.residual == 0) break;
  }
  // Max per-window migration bill, excluding window 0: the warmup window
  // converges the initial HSH partitioning from scratch and would dwarf the
  // resize costs this bench is actually about.
  std::size_t maxMigrations = 0;
  std::size_t totalMigrations = 0;
  for (const WindowRow& row : rows) {
    if (row.index > 0) maxMigrations = std::max(maxMigrations, row.migrations);
    totalMigrations += row.migrations;
  }

  util::TablePrinter table(
      {"window", "k", "activeK", "migr", "cut", "imbal", "residual"});
  for (const WindowRow& row : rows) {
    table.addRow({std::to_string(row.index), std::to_string(row.k),
                  std::to_string(row.activeK), std::to_string(row.migrations),
                  util::fmt(row.cutRatio, 3), util::fmt(row.imbalance, 3),
                  std::to_string(row.residual)});
  }
  table.print(std::cout);
  std::cout << "grow@" << growWindow << " " << k << "->" << growTo
            << ", shrink@" << shrinkWindow << " " << growTo << "->" << shrinkTo
            << "; cut before shrink " << util::fmt(cutAtPeakEnd, 3)
            << " (fresh k=" << growTo << ": " << util::fmt(freshAtGrown, 3)
            << "), final " << util::fmt(finalCut, 3) << " (fresh k=" << shrinkTo
            << ": " << util::fmt(freshAtFinal, 3) << "), drained in "
            << windowsToDrain << " window(s), max migrations/window (post-warmup) "
            << maxMigrations << "\n";

  // ------------------------------------------------ head-to-head phase
  core::AdaptiveOptions hh;
  hh.k = k;
  hh.seed = seed;
  hh.threads = threads;
  std::vector<HeadToHead> headToHead;
  api::WorkloadConfig cdr;
  cdr.seed = seed;
  cdr.overrides = {{"subscribers", static_cast<double>(cdrSubscribers)},
                   {"weeks", static_cast<double>(cdrWeeks)}};
  api::WorkloadConfig tweet;
  tweet.seed = seed;
  tweet.overrides = {{"users", static_cast<double>(tweetUsers)},
                     {"hours", tweetHours}};
  for (const core::EngineKind kind :
       {core::EngineKind::kGreedy, core::EngineKind::kLpa}) {
    headToHead.push_back(runHeadToHead("CDR", kind, cdr, hh));
    headToHead.push_back(runHeadToHead("TWEET", kind, tweet, hh));
  }
  util::TablePrinter hhTable(
      {"workload", "engine", "windows", "migr", "cut", "imbal", "seconds"});
  for (const HeadToHead& row : headToHead) {
    hhTable.addRow({row.workload, row.engine, std::to_string(row.windows),
                    std::to_string(row.migrations),
                    util::fmt(row.finalCutRatio, 3), util::fmt(row.imbalance, 3),
                    util::fmt(row.seconds, 2)});
  }
  hhTable.print(std::cout);

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "elastic_k: cannot open " << outPath << "\n";
    return 1;
  }
  out << "{\"bench\": \"elastic_k\", \"workload\": \"CHURN\""
      << ", \"vertices\": " << vertices << ", \"ticks\": " << ticks
      << ", \"rate\": " << rate << ", \"seed\": " << seed
      << ", \"k\": " << k << ", \"grow_to\": " << growTo
      << ", \"shrink_to\": " << shrinkTo << ", \"budget\": " << budget
      << ", \"grow_window\": " << growWindow
      << ", \"shrink_window\": " << shrinkWindow
      << ", \"windows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WindowRow& row = rows[i];
    out << (i ? ", " : "") << "{\"window\": " << row.index
        << ", \"k\": " << row.k << ", \"active_k\": " << row.activeK
        << ", \"migrations\": " << row.migrations
        << ", \"cut_ratio\": " << util::fmt(row.cutRatio, 6)
        << ", \"imbalance\": " << util::fmt(row.imbalance, 6)
        << ", \"retired_residual\": " << row.residual << "}";
  }
  out << "], \"cut_before_shrink\": " << util::fmt(cutAtPeakEnd, 6)
      << ", \"fresh_cut_at_grow_k\": " << util::fmt(freshAtGrown, 6)
      << ", \"final_cut_ratio\": " << util::fmt(finalCut, 6)
      << ", \"fresh_cut_at_shrink_k\": " << util::fmt(freshAtFinal, 6)
      << ", \"windows_to_drain\": " << windowsToDrain
      << ", \"max_migrations_per_window\": " << maxMigrations
      << ", \"total_migrations\": " << totalMigrations
      << ", \"head_to_head\": [";
  for (std::size_t i = 0; i < headToHead.size(); ++i) {
    const HeadToHead& row = headToHead[i];
    out << (i ? ", " : "") << "{\"workload\": \"" << row.workload
        << "\", \"engine\": \"" << row.engine
        << "\", \"windows\": " << row.windows
        << ", \"migrations\": " << row.migrations
        << ", \"final_cut_ratio\": " << util::fmt(row.finalCutRatio, 6)
        << ", \"imbalance\": " << util::fmt(row.imbalance, 6)
        << ", \"seconds\": " << util::fmt(row.seconds, 3) << "}";
  }
  out << "], \"peak_rss_bytes\": " << bench::PeakRss() << "}\n";
  std::cout << "elastic_k: wrote " << outPath << "\n";
  return 0;
}
