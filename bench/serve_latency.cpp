// Serving-layer latency harness: one PartitionService ingests CHURN windows
// (churn + convergence + snapshot swaps) while N query threads hammer the
// published AssignmentSnapshot, timing every query. Reports p50/p99/max
// query latency and aggregate throughput, and writes one JSON object for
// the CI bench artifact (BENCH_serve.json at the repo root comes from
// scripts/run_bench.sh invoking this with --out).
//
//   build/bench/serve_latency [--vertices=2000] [--ticks=8] [--rate=300]
//                             [--k=9] [--query-threads=4] [--seed=42]
//                             [--out=<json path>]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/service.h"

using namespace xdgp;

namespace {

/// Per-thread query log: latencies in nanoseconds (capped so a fast machine
/// cannot eat memory; counting continues past the cap) plus the total count.
struct QueryLog {
  std::vector<double> latenciesNs;
  std::size_t queries = 0;
  std::uint64_t sink = 0;  ///< defeats dead-code elimination
};

constexpr std::size_t kMaxSamplesPerThread = 1'000'000;

/// The same deterministic id walk xdgp_serve's readers run, with each
/// four-query bundle timed individually.
void queryLoop(const serve::SnapshotBoard& board, const std::atomic<bool>& stop,
               QueryLog& log) {
  using Clock = std::chrono::steady_clock;
  log.latenciesNs.reserve(1 << 16);
  std::uint64_t local = 0;
  graph::VertexId v = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const auto begin = Clock::now();
    const serve::SnapshotBoard::Ref snap = board.current();
    if (!snap || snap->idBound() == 0) continue;
    const auto bound = static_cast<graph::VertexId>(snap->idBound());
    v = static_cast<graph::VertexId>((v + 1) % bound);
    const graph::VertexId u = static_cast<graph::VertexId>((v * 7 + 3) % bound);
    local += snap->partitionOf(v);
    local += static_cast<std::uint64_t>(snap->routeCost(u, v) + 1);
    local += snap->cutDegree(v);
    for (const graph::VertexId nbr : snap->neighbors(v)) local += nbr;
    const auto end = Clock::now();
    log.queries += 4;
    if (log.latenciesNs.size() < kMaxSamplesPerThread) {
      // One sample per bundle: the per-query cost is the bundle over four.
      log.latenciesNs.push_back(
          std::chrono::duration<double, std::nano>(end - begin).count() / 4.0);
    }
  }
  log.sink = local;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto vertices = static_cast<std::size_t>(flags.getInt("vertices", 2'000));
  const auto ticks = static_cast<std::size_t>(flags.getInt("ticks", 8));
  const auto rate = static_cast<std::size_t>(flags.getInt("rate", 300));
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const auto queryThreads =
      static_cast<std::size_t>(flags.getInt("query-threads", 4));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  const std::string outPath =
      flags.getString("out", bench::resultsDir() + "/serve_latency.json");
  flags.finish();

  api::WorkloadConfig config;
  config.seed = seed;
  config.overrides = {{"vertices", static_cast<double>(vertices)},
                      {"ticks", static_cast<double>(ticks)},
                      {"rate", static_cast<double>(rate)}};
  api::Workload workload =
      api::WorkloadRegistry::instance().make("CHURN", config);
  serve::ServeOptions options;
  options.stream = workload.suggested;
  core::AdaptiveOptions adaptive;
  adaptive.k = k;
  adaptive.seed = seed;
  serve::PartitionService service(std::move(workload), "HSH", adaptive,
                                  std::move(options));

  std::atomic<bool> stop{false};
  std::vector<QueryLog> logs(queryThreads);
  std::vector<std::thread> readers;
  readers.reserve(queryThreads);
  for (std::size_t t = 0; t < queryThreads; ++t) {
    readers.emplace_back(
        [&, t] { queryLoop(service.board(), stop, logs[t]); });
  }

  const util::WallTimer timer;
  const api::TimelineReport& timeline = service.run();
  const double ingestSeconds = timer.seconds();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  std::vector<double> samples;
  std::size_t totalQueries = 0;
  for (const QueryLog& log : logs) {
    samples.insert(samples.end(), log.latenciesNs.begin(),
                   log.latenciesNs.end());
    totalQueries += log.queries;
  }
  std::sort(samples.begin(), samples.end());
  const double p50 = percentile(samples, 0.50);
  const double p99 = percentile(samples, 0.99);
  const double maxNs = samples.empty() ? 0.0 : samples.back();
  const double qps =
      ingestSeconds > 0.0 ? static_cast<double>(totalQueries) / ingestSeconds : 0.0;
  std::size_t migrations = 0;
  for (const api::WindowReport& w : timeline.windows) migrations += w.migrations;
  // Publication cost: construction publish + one per window, all through the
  // delta path (SnapshotBuilder). residentBytes is the last snapshot's
  // marginal footprint beyond the shared base CSR.
  const double publishSeconds = service.totalPublishSeconds();
  const std::size_t snapshotResidentBytes =
      service.snapshot() ? service.snapshot()->stats().residentBytes : 0;

  util::TablePrinter table({"windows", "migrations", "queries", "qps",
                            "p50 ns", "p99 ns", "max ns", "publish ms"});
  table.addRow({std::to_string(timeline.windows.size()),
                std::to_string(migrations), std::to_string(totalQueries),
                util::fmt(qps, 0), util::fmt(p50, 0), util::fmt(p99, 0),
                util::fmt(maxNs, 0), util::fmt(publishSeconds * 1e3, 3)});
  table.print(std::cout);

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "serve_latency: cannot open " << outPath << "\n";
    return 1;
  }
  out << "{\"bench\": \"serve_latency\", \"workload\": \"CHURN\""
      << ", \"vertices\": " << vertices << ", \"ticks\": " << ticks
      << ", \"rate\": " << rate << ", \"k\": " << k
      << ", \"query_threads\": " << queryThreads
      << ", \"windows\": " << timeline.windows.size()
      << ", \"migrations\": " << migrations
      << ", \"final_cut_ratio\": " << util::fmt(timeline.back().cutRatio, 6)
      << ", \"ingest_seconds\": " << util::fmt(ingestSeconds, 6)
      << ", \"publish_seconds\": " << util::fmt(publishSeconds, 6)
      << ", \"publishes\": " << timeline.windows.size() + 1
      << ", \"snapshot_resident_bytes\": " << snapshotResidentBytes
      << ", \"queries\": " << totalQueries << ", \"qps\": " << util::fmt(qps, 1)
      << ", \"latency_ns\": {\"p50\": " << util::fmt(p50, 1)
      << ", \"p99\": " << util::fmt(p99, 1)
      << ", \"max\": " << util::fmt(maxNs, 1)
      << ", \"samples\": " << samples.size()
      << "}, \"peak_rss_bytes\": " << bench::PeakRss() << "}\n";
  std::cout << "serve_latency: wrote " << outPath << "\n";
  return timeline.empty() ? 2 : 0;
}
