// Sharded-runtime scaling micro-harness: PageRank supersteps on a >=100k-
// vertex mesh at increasing EngineOptions::threads, reporting measured
// compute-phase wall seconds per superstep (Runtime::lastPhaseSeconds). The
// trajectory is bit-identical at every thread count — the lockstep suite
// asserts it, this bench quantifies the wall-clock payoff — and the JSONL
// series accumulates in XDGP_BENCH_DIR across commits the way
// stream_windows' per-window files do (wired into scripts/run_bench.sh).
//
//   build/bench/superstep_scaling [--vertices=120000] [--workers=16]
//                                 [--supersteps=6] [--max-threads=8]

#include <fstream>
#include <iostream>
#include <thread>

#include "apps/pagerank.h"
#include "bench_common.h"
#include "gen/mesh3d.h"
#include "pregel/engine.h"
#include "util/csv.h"

using namespace xdgp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto vertices = static_cast<std::size_t>(flags.getInt("vertices", 120'000));
  const auto workers = static_cast<std::size_t>(flags.getInt("workers", 16));
  const auto supersteps = static_cast<std::size_t>(flags.getInt("supersteps", 6));
  const auto maxThreads = static_cast<std::size_t>(flags.getInt(
      "max-threads",
      std::max<std::size_t>(4, std::thread::hardware_concurrency())));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();

  const graph::DynamicGraph mesh = gen::mesh3dApprox(vertices);
  const metrics::Assignment initial =
      bench::initialAssignment(mesh, "HSH", workers, 1.1, seed);
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "superstep scaling: PageRank, |V|=" << mesh.numVertices()
            << " |E|=" << mesh.numEdges() << ", " << workers << " workers, "
            << supersteps << " supersteps per point, host concurrency "
            << cores << "\n";
  if (cores <= 1) {
    std::cout << "(single-core host: thread counts > 1 cannot speed the "
                 "barrier up here — the series still records the overhead)\n";
  }
  std::cout << "\n";

  std::ofstream jsonl(bench::resultsDir() + "/superstep_scaling.jsonl");
  util::TablePrinter table({"threads", "compute s/superstep", "superstep s",
                            "compute speedup", "cut ratio"});

  double computeBaseline = 0.0;
  for (std::size_t threads = 1; threads <= maxThreads; threads *= 2) {
    pregel::EngineOptions options;
    options.numWorkers = workers;
    options.adaptive = true;
    options.partitioner.seed = seed;
    options.threads = threads;
    apps::PageRankProgram program;
    program.setNumVertices(mesh.numVertices());
    pregel::Engine<apps::PageRankProgram> engine(mesh, initial, options, program);

    engine.runSuperstep();  // warm-up: first touch of lanes and inboxes
    double computeSeconds = 0.0, totalSeconds = 0.0;
    for (std::size_t s = 0; s < supersteps; ++s) {
      engine.runSuperstep();
      const pregel::Runtime::PhaseSeconds& phases =
          engine.runtime().lastPhaseSeconds();
      computeSeconds += phases.compute;
      totalSeconds += phases.total();
    }
    const double perStep = computeSeconds / static_cast<double>(supersteps);
    if (threads == 1) computeBaseline = perStep;
    const double speedup = computeBaseline > 0.0 ? computeBaseline / perStep : 0.0;

    table.addRow({std::to_string(threads), util::fmt(perStep, 5),
                  util::fmt(totalSeconds / static_cast<double>(supersteps), 5),
                  util::fmt(speedup, 2) + "x", util::fmt(engine.cutRatio(), 3)});
    jsonl << "{\"threads\":" << threads << ",\"vertices\":" << mesh.numVertices()
          << ",\"edges\":" << mesh.numEdges() << ",\"workers\":" << workers
          << ",\"supersteps\":" << supersteps
          << ",\"compute_s_per_superstep\":" << util::fmt(perStep, 6)
          << ",\"superstep_s\":"
          << util::fmt(totalSeconds / static_cast<double>(supersteps), 6)
          << ",\"compute_speedup\":" << util::fmt(speedup, 3) << "}\n";
  }
  table.print(std::cout);
  std::cout << "\nJSONL: " << bench::resultsDir() << "/superstep_scaling.jsonl\n"
            << "(trajectories are bit-identical across thread counts; "
               "tests/pregel_shard_test.cpp asserts it)\n";
  return 0;
}
