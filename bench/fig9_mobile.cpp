// Figure 9 — "Evolution of the number of cuts normalised to the total number
// of edges (left) and average iteration (step) time (right) during the 4
// weeks of available data", mobile-call-graph clique mining, dynamic
// (adaptive) vs static partitioning.
//
// The CDR stream reproduces the paper's churn exactly (8% weekly additions,
// 4% deletions); the clique workload freezes the topology during each
// computation and the buffered changes land in batches, as §4.3 requires.
// Subscribers are scaled from the paper's 21M (docs/DESIGN.md §2).
//
// Expected shape (paper): the dynamic system holds the cut ratio flat and
// runs at <50% of the static time per iteration; the static system degrades
// week over week.

#include <iostream>

#include "apps/max_clique.h"
#include "bench_common.h"
#include "gen/cdr_stream.h"
#include "pregel/engine.h"
#include "util/csv.h"

using namespace xdgp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto subscribers =
      static_cast<std::size_t>(flags.getInt("subscribers", 20'000));
  const auto workers = static_cast<std::size_t>(flags.getInt("workers", 5));
  const auto batchesPerWeek =
      static_cast<std::size_t>(flags.getInt("batches", 5));
  const auto roundsPerBatch = static_cast<std::size_t>(flags.getInt("rounds", 3));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();

  gen::CdrStreamParams params;
  params.initialSubscribers = subscribers;
  gen::CdrStreamGenerator cdr(params, util::Rng(seed));
  const graph::DynamicGraph& base = cdr.initialGraph();

  std::cout << "Figure 9: mobile CDR clique mining, " << base.numVertices()
            << " subscribers (paper: 21M, scaled), mean degree "
            << util::fmt(base.averageDegree(), 1) << ", " << workers
            << " workers (the paper's 5-node cluster), weekly churn +8%/-4%\n\n";

  pregel::EngineOptions staticOptions;
  staticOptions.numWorkers = workers;
  pregel::EngineOptions adaptiveOptions = staticOptions;
  adaptiveOptions.adaptive = true;
  adaptiveOptions.partitioner.seed = seed;

  // Both clusters load the initial graph with the *same settled* partitioning
  // (adapted offline to convergence). From there the static cluster keeps it
  // frozen — and the churn erodes it — while the dynamic one keeps adapting.
  std::cerr << "[fig9] computing the load-time partitioning...\n";
  core::AdaptiveOptions loadOptions;
  loadOptions.k = workers;
  loadOptions.seed = seed;
  loadOptions.recordSeries = false;
  core::AdaptiveEngine loader(
      base, bench::initialAssignment(base, "HSH", workers, 1.1, seed), loadOptions);
  loader.runToConvergence();
  const metrics::Assignment loaded = loader.state().assignment();

  pregel::Engine<apps::MaxCliqueProgram> staticEngine(base, loaded, staticOptions);
  pregel::Engine<apps::MaxCliqueProgram> adaptiveEngine(base, loaded,
                                                        adaptiveOptions);
  double timeNorm = 0.0;  // static week-1 mean, the unit of the right panel

  util::CsvWriter csv(bench::resultsDir() + "/fig9_mobile.csv",
                      {"week", "static_cut_ratio", "dynamic_cut_ratio",
                       "static_time", "dynamic_time", "max_clique"});
  util::TablePrinter table({"week", "cuts static", "cuts dynamic", "time static",
                            "time dynamic", "max clique"});

  for (std::size_t week = 0; week < 4; ++week) {
    const gen::CdrWeek batch = cdr.nextWeek();
    // Split the week's events into batches, mimicking the x15 speed-up
    // buffering: each computation round sees a sizeable buffered batch.
    std::vector<std::vector<graph::UpdateEvent>> slices(batchesPerWeek);
    for (std::size_t i = 0; i < batch.events.size(); ++i) {
      slices[i * batchesPerWeek / batch.events.size()].push_back(batch.events[i]);
    }

    util::RunningStat staticTime, adaptiveTime;
    for (std::size_t slice = 0; slice < batchesPerWeek; ++slice) {
      staticEngine.freezeTopology();
      adaptiveEngine.freezeTopology();
      staticEngine.ingest(slices[slice]);
      adaptiveEngine.ingest(slices[slice]);
      for (std::size_t step = 0; step < 2 * roundsPerBatch; ++step) {
        staticTime.add(staticEngine.runSuperstep().modeledTime);
        adaptiveTime.add(adaptiveEngine.runSuperstep().modeledTime);
      }
      staticEngine.thawTopology();
      adaptiveEngine.thawTopology();
      adaptiveEngine.rescalePartitionerCapacity();  // +4% net growth per week
    }

    if (week == 0) timeNorm = staticTime.mean();
    const std::size_t maxClique = adaptiveEngine.reduceValues(
        std::size_t{0},
        [](std::size_t acc, graph::VertexId, const apps::MaxCliqueProgram::State& s) {
          return std::max(acc, s.cliqueSize);
        });
    const std::string weekName = "week" + std::to_string(week + 1);
    table.addRow({weekName, util::fmt(staticEngine.cutRatio(), 3),
                  util::fmt(adaptiveEngine.cutRatio(), 3),
                  util::fmt(staticTime.mean() / timeNorm, 3),
                  util::fmt(adaptiveTime.mean() / timeNorm, 3),
                  std::to_string(maxClique)});
    csv.addRow({weekName, util::fmt(staticEngine.cutRatio(), 4),
                util::fmt(adaptiveEngine.cutRatio(), 4),
                util::fmt(staticTime.mean() / timeNorm, 4),
                util::fmt(adaptiveTime.mean() / timeNorm, 4),
                std::to_string(maxClique)});
    std::cerr << "[fig9] " << weekName << " done (+" << batch.verticesAdded
              << "/-" << batch.verticesRemoved << " vertices)\n";
  }
  table.print(std::cout);
  std::cout << "\n(times normalised to the static system's week-1 average;\n"
            << " paper: dynamic <50% of static, static degrading over weeks)\n"
            << "CSV: " << bench::resultsDir() << "/fig9_mobile.csv\n";
  return 0;
}
