// Figure 9 — "Evolution of the number of cuts normalised to the total number
// of edges (left) and average iteration (step) time (right) during the 4
// weeks of available data", mobile-call-graph clique mining, dynamic
// (adaptive) vs static partitioning.
//
// The CDR workload comes from api::WorkloadRegistry (weekly churn matching
// the paper: 8% additions, 4% deletions) and the buffered-batch windowing
// from api::Streamer; the clique workload freezes the topology during each
// computation and the buffered changes land in batches, as §4.3 requires.
// Subscribers are scaled from the paper's 21M (docs/DESIGN.md §2).
//
// Expected shape (paper): the dynamic system holds the cut ratio flat and
// runs at <50% of the static time per iteration; the static system degrades
// week over week.

#include <iostream>

#include "apps/max_clique.h"
#include "bench_common.h"
#include "pregel/engine.h"
#include "util/csv.h"

using namespace xdgp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto workers = static_cast<std::size_t>(flags.getInt("workers", 5));
  const auto batchesPerWeek =
      static_cast<std::size_t>(flags.getInt("batches", 5));
  const auto roundsPerBatch = static_cast<std::size_t>(flags.getInt("rounds", 3));
  api::WorkloadConfig config = api::workloadConfigFromFlags(
      flags, api::WorkloadRegistry::instance().info("CDR"));
  flags.finish();
  const std::uint64_t seed = config.seed;

  api::Workload workload = api::WorkloadRegistry::instance().make("CDR", config);
  const graph::DynamicGraph& base = workload.initial;

  std::cout << "Figure 9: mobile CDR clique mining, " << base.numVertices()
            << " subscribers (paper: 21M, scaled), mean degree "
            << util::fmt(base.averageDegree(), 1) << ", " << workers
            << " workers (the paper's 5-node cluster), weekly churn +8%/-4%\n\n";

  pregel::EngineOptions staticOptions;
  staticOptions.numWorkers = workers;
  pregel::EngineOptions adaptiveOptions = staticOptions;
  adaptiveOptions.adaptive = true;
  adaptiveOptions.partitioner.seed = seed;

  // Both clusters load the initial graph with the *same settled* partitioning
  // (adapted offline to convergence). From there the static cluster keeps it
  // frozen — and the churn erodes it — while the dynamic one keeps adapting.
  std::cerr << "[fig9] computing the load-time partitioning...\n";
  core::AdaptiveOptions loadOptions;
  loadOptions.k = workers;
  loadOptions.seed = seed;
  loadOptions.recordSeries = false;
  core::AdaptiveEngine loader(
      base, bench::initialAssignment(base, "HSH", workers, 1.1, seed), loadOptions);
  loader.runToConvergence();
  const metrics::Assignment loaded = loader.state().assignment();

  pregel::Engine<apps::MaxCliqueProgram> staticEngine(base, loaded, staticOptions);
  pregel::Engine<apps::MaxCliqueProgram> adaptiveEngine(base, loaded,
                                                        adaptiveOptions);
  double timeNorm = 0.0;  // static week-1 mean, the unit of the right panel

  util::CsvWriter csv(bench::resultsDir() + "/fig9_mobile.csv",
                      {"week", "static_cut_ratio", "dynamic_cut_ratio",
                       "static_time", "dynamic_time", "max_clique"});
  util::TablePrinter table({"week", "cuts static", "cuts dynamic", "time static",
                            "time dynamic", "max clique"});

  // One window per buffered batch, mimicking the x15 speed-up buffering:
  // each computation round sees a sizeable batch of the week's churn.
  api::StreamOptions streamOptions = workload.suggested;
  streamOptions.windowSpan = 1.0 / static_cast<double>(batchesPerWeek);
  api::Streamer streamer(std::move(workload.stream), streamOptions);

  util::RunningStat staticTime, adaptiveTime;
  std::size_t weekAdds = 0, weekRemoves = 0;
  while (auto batch = streamer.next()) {
    for (const graph::UpdateEvent& e : batch->events) {
      weekAdds += e.kind == graph::UpdateEvent::Kind::kAddVertex ? 1 : 0;
      weekRemoves += e.kind == graph::UpdateEvent::Kind::kRemoveVertex ? 1 : 0;
    }
    staticEngine.freezeTopology();
    adaptiveEngine.freezeTopology();
    staticEngine.ingest(batch->events);
    adaptiveEngine.ingest(batch->events);
    for (std::size_t step = 0; step < 2 * roundsPerBatch; ++step) {
      staticTime.add(staticEngine.runSuperstep().modeledTime);
      adaptiveTime.add(adaptiveEngine.runSuperstep().modeledTime);
    }
    staticEngine.thawTopology();
    adaptiveEngine.thawTopology();
    adaptiveEngine.rescalePartitionerCapacity();  // +4% net growth per week

    const bool weekClosed = (batch->index + 1) % batchesPerWeek == 0;
    if (!weekClosed && !batch->streamExhausted) continue;

    const std::size_t week = batch->index / batchesPerWeek;
    if (week == 0) timeNorm = staticTime.mean();
    const std::size_t maxClique = adaptiveEngine.reduceValues(
        std::size_t{0},
        [](std::size_t acc, graph::VertexId, const apps::MaxCliqueProgram::State& s) {
          return std::max(acc, s.cliqueSize);
        });
    const std::string weekName = "week" + std::to_string(week + 1);
    table.addRow({weekName, util::fmt(staticEngine.cutRatio(), 3),
                  util::fmt(adaptiveEngine.cutRatio(), 3),
                  util::fmt(staticTime.mean() / timeNorm, 3),
                  util::fmt(adaptiveTime.mean() / timeNorm, 3),
                  std::to_string(maxClique)});
    csv.addRow({weekName, util::fmt(staticEngine.cutRatio(), 4),
                util::fmt(adaptiveEngine.cutRatio(), 4),
                util::fmt(staticTime.mean() / timeNorm, 4),
                util::fmt(adaptiveTime.mean() / timeNorm, 4),
                std::to_string(maxClique)});
    std::cerr << "[fig9] " << weekName << " done (+" << weekAdds << "/-"
              << weekRemoves << " vertices)\n";
    staticTime = util::RunningStat{};
    adaptiveTime = util::RunningStat{};
    weekAdds = weekRemoves = 0;
  }
  table.print(std::cout);
  std::cout << "\n(times normalised to the static system's week-1 average;\n"
            << " paper: dynamic <50% of static, static degrading over weeks)\n"
            << "CSV: " << bench::resultsDir() << "/fig9_mobile.csv\n";
  return 0;
}
