// Figure 5 — "Average cuts for each graph after running the iterative
// heuristic over four different initial partitioning strategies."
//
// Graphs (the paper's x axis): 1e4, 3elt, 4elt, 64kcube, plc1000, plc10000,
// epinion, wikivote. One bar per initial strategy (DGR, HSH, MNN, RND).
//
// Expected shape (paper): FEMs end lower than high-average-degree synthetic
// power-law graphs; final quality is largely independent of the initial
// strategy.

#include <iostream>

#include "bench_common.h"
#include "util/csv.h"

using namespace xdgp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto reps = static_cast<std::size_t>(flags.getInt("reps", 3));
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();

  const std::vector<std::string> graphs{"1e4",     "3elt",     "4elt",
                                        "64kcube", "plc1000",  "plc10000",
                                        "epinion", "wikivote"};

  std::cout << "Figure 5: iterative-algorithm cut ratio per graph x initial "
               "strategy (k = "
            << k << ", reps = " << reps << ")\n\n";
  util::TablePrinter table({"Graph", "DGR", "HSH", "MNN", "RND"});
  util::CsvWriter csv(bench::resultsDir() + "/fig5_graph_types.csv",
                      {"graph", "strategy", "cut_ratio_mean", "cut_ratio_stderr"});

  for (const std::string& name : graphs) {
    const gen::DatasetSpec& spec = gen::datasetByName(name);
    std::vector<std::string> row{name};
    for (const std::string& code : partition::initialStrategyCodes()) {
      util::RunningStat cuts;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        util::Rng genRng(seed + rep);
        core::AdaptiveOptions options;
        options.k = k;
        options.seed = seed + rep * 1'000;
        cuts.add(
            bench::runAdaptive(spec.make(genRng), code, options).finalCutRatio);
      }
      row.push_back(util::fmtPm(cuts.mean(), cuts.stderror(), 3));
      csv.addRow({name, code, util::fmt(cuts.mean(), 4),
                  util::fmt(cuts.stderror(), 4)});
    }
    table.addRow(std::move(row));
    std::cerr << "[fig5] " << name << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nCSV: " << bench::resultsDir() << "/fig5_graph_types.csv\n";
  return 0;
}
