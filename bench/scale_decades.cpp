// Decade-scaling harness: the 10M-vertex scale pass in one committed
// trajectory. Walks the vertex ladder 10k -> 100k -> 1M -> 10M (capped by
// --max-vertices) and, per decade, records
//   - generation wall-seconds through the parallel generators (plus a
//     threads=1 reference run up to --serial-compare-max, so the
//     multi-threaded speedup is visible in the output),
//   - initial-partition and convergence wall-seconds through the
//     api::Pipeline front door (HSH initial, the adaptive engine's frontier
//     mode, iteration-capped by --converge-iters),
//   - steady-state churn throughput: remove/re-add edge events pushed
//     through Session::streamWindow after convergence, in events/second,
//   - publication cost per window, both paths timed back-to-back over the
//     same engine state: the delta path (serve::SnapshotBuilder — shared
//     base CSR + O(changed) overlay) vs the full-rebuild path (the
//     five-argument AssignmentSnapshot constructor). publish_seconds is the
//     steady-state (non-compacting) per-window mean; compaction epochs are
//     counted and reported separately plus folded into the amortised mean,
//   - memory: the engine's core::MemoryReport (adjacency arena live/slack/
//     free, graph bookkeeping, partition state, engine scratch) next to the
//     process peak RSS (bench::PeakRss).
//
// scripts/run_bench.sh runs this with a small cap for CI and copies the
// JSON to BENCH_scale.json at the repo root — the committed baseline comes
// from a full --max-vertices=10000000 run, so scale regressions are visible
// PR-over-PR. A decade above the cap is logged as skipped, never silently
// dropped.
//
//   build/bench/scale_decades [--family=plawp|mesh|er|rmat]
//                             [--max-vertices=1000000] [--k=9] [--seed=42]
//                             [--threads=0] [--converge-iters=200]
//                             [--serial-compare-max=1000000]
//                             [--churn-events=100000] [--churn-window=10000]
//                             [--out=<json path>]

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/touch_tracker.h"
#include "gen/parallel.h"
#include "serve/snapshot_builder.h"
#include "util/table.h"
#include "util/timer.h"

using namespace xdgp;

namespace {

struct DecadeRow {
  std::size_t requestedVertices = 0;
  std::size_t vertices = 0;
  std::size_t edges = 0;
  double genSeconds = 0.0;
  double genSerialSeconds = 0.0;  ///< 0 when the reference run was skipped
  double partitionSeconds = 0.0;
  double convergeSeconds = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  double cutRatio = 0.0;
  std::size_t churnEvents = 0;
  double churnSeconds = 0.0;
  double churnEventsPerSec = 0.0;
  std::size_t publishWindows = 0;     ///< churn windows published (both paths)
  std::size_t publishCompactions = 0; ///< delta builds that compacted
  double publishDeltaTotal = 0.0;     ///< Σ delta publish, non-compacting
  double publishCompactTotal = 0.0;   ///< Σ delta publish, compaction epochs
  double publishFullTotal = 0.0;      ///< Σ full-rebuild publish
  core::MemoryReport memory;
  std::size_t peakRssBytes = 0;  ///< process-cumulative at row end
};

graph::DynamicGraph makeGraph(const std::string& family, std::size_t n,
                              std::uint64_t seed, std::size_t threads) {
  if (family == "mesh") return gen::mesh3dApproxParallel(n, threads);
  if (family == "er") return gen::erdosRenyiParallel(n, 8 * n, seed, threads);
  if (family == "rmat") {
    gen::RmatParams params;
    params.scale = static_cast<std::size_t>(
        std::llround(std::log2(static_cast<double>(n))));
    return gen::rmatParallel(params, seed, threads);
  }
  // plawp: the paper's power-law parameterisation (D = log2 |V|, m = D/2,
  // p = 0.1) through the stateless copy-model generator.
  const auto m = static_cast<std::size_t>(
      std::max(2.0, std::round(std::log2(static_cast<double>(n)) / 2.0)));
  return gen::powerlawClusterParallel(n, m, 0.1, seed, threads);
}

/// Steady-state churn: remove a live edge, then re-add it — every event does
/// real structural work through applyEvents + frontier re-convergence.
graph::UpdateStream makeChurn(const graph::DynamicGraph& g, std::size_t events,
                              std::uint64_t seed) {
  graph::UpdateStream stream;
  const std::size_t bound = g.idBound();
  double ts = 0.0;
  std::size_t emitted = 0;
  for (std::uint64_t i = 0; emitted + 1 < events; ++i) {
    const auto u = static_cast<graph::VertexId>(
        util::Rng::splitmix64(seed ^ (0x51ed2701afed6a3bULL + i)) % bound);
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) continue;
    const graph::VertexId v =
        nbrs[util::Rng::splitmix64(seed ^ (0xd6e8feb86659fd93ULL + i)) %
             nbrs.size()];
    stream.push(graph::UpdateEvent::removeEdge(u, v, ts));
    ts += 1.0;
    stream.push(graph::UpdateEvent::addEdge(u, v, ts));
    ts += 1.0;
    emitted += 2;
  }
  return stream;
}

/// Amortised per-window delta publish (compaction epochs folded in).
double amortizedPublishSeconds(const DecadeRow& row) {
  return row.publishWindows > 0
             ? (row.publishDeltaTotal + row.publishCompactTotal) /
                   static_cast<double>(row.publishWindows)
             : 0.0;
}

/// Steady-state per-window delta publish: compaction epochs excluded. When
/// every window compacted (the per-window churn exceeds the overlay
/// fraction of the whole graph — the small decades under the default 100k
/// churn events), the amortised mean IS the steady state at that scale.
double steadyPublishSeconds(const DecadeRow& row) {
  const std::size_t steady = row.publishWindows - row.publishCompactions;
  if (steady > 0) return row.publishDeltaTotal / static_cast<double>(steady);
  return amortizedPublishSeconds(row);
}

double fullPublishSeconds(const DecadeRow& row) {
  return row.publishWindows > 0
             ? row.publishFullTotal / static_cast<double>(row.publishWindows)
             : 0.0;
}

void appendJson(std::ostringstream& out, const DecadeRow& row) {
  const core::MemoryReport& m = row.memory;
  const double steady = steadyPublishSeconds(row);
  const double full = fullPublishSeconds(row);
  out << "{\"requested_vertices\": " << row.requestedVertices
      << ", \"vertices\": " << row.vertices << ", \"edges\": " << row.edges
      << ", \"gen_seconds\": " << util::fmt(row.genSeconds, 3)
      << ", \"gen_serial_seconds\": " << util::fmt(row.genSerialSeconds, 3)
      << ", \"partition_seconds\": " << util::fmt(row.partitionSeconds, 3)
      << ", \"converge_seconds\": " << util::fmt(row.convergeSeconds, 3)
      << ", \"iterations\": " << row.iterations
      << ", \"converged\": " << (row.converged ? "true" : "false")
      << ", \"cut_ratio\": " << util::fmt(row.cutRatio, 6)
      << ", \"churn_events\": " << row.churnEvents
      << ", \"churn_seconds\": " << util::fmt(row.churnSeconds, 3)
      << ", \"churn_events_per_sec\": " << util::fmt(row.churnEventsPerSec, 1)
      << ", \"publish_windows\": " << row.publishWindows
      << ", \"publish_seconds\": " << util::fmt(steady, 6)
      << ", \"publish_amortized_seconds\": "
      << util::fmt(amortizedPublishSeconds(row), 6)
      << ", \"publish_full_seconds\": " << util::fmt(full, 6)
      << ", \"publish_compactions\": " << row.publishCompactions
      << ", \"publish_speedup\": "
      << util::fmt(steady > 0.0 ? full / steady : 0.0, 1)
      << ", \"memory\":{\"adjacency_arena_bytes\": " << m.adjacencyArenaBytes
      << ", \"adjacency_live_bytes\": " << m.adjacencyLiveBytes
      << ", \"adjacency_slack_bytes\": " << m.adjacencySlackBytes
      << ", \"adjacency_free_bytes\": " << m.adjacencyFreeBytes
      << ", \"adjacency_meta_bytes\": " << m.adjacencyMetaBytes
      << ", \"graph_bookkeeping_bytes\": " << m.graphBookkeepingBytes
      << ", \"partition_state_bytes\": " << m.partitionStateBytes
      << ", \"engine_bytes\": " << m.engineBytes
      << ", \"total_bytes\": " << m.totalBytes()
      << "}, \"peak_rss_bytes\": " << row.peakRssBytes << "}";
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string family = flags.getString("family", "plawp");
  const auto maxVertices =
      static_cast<std::size_t>(flags.getInt("max-vertices", 1'000'000));
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  const std::size_t threads =
      gen::resolveThreads(static_cast<std::size_t>(flags.getInt("threads", 0)));
  const auto convergeIters =
      static_cast<std::size_t>(flags.getInt("converge-iters", 200));
  const auto serialCompareMax =
      static_cast<std::size_t>(flags.getInt("serial-compare-max", 1'000'000));
  const auto churnEvents =
      static_cast<std::size_t>(flags.getInt("churn-events", 100'000));
  const auto churnWindow =
      static_cast<std::size_t>(flags.getInt("churn-window", 10'000));
  const std::string outPath =
      flags.getString("out", bench::resultsDir() + "/BENCH_scale.json");
  flags.finish();

  const std::vector<std::size_t> decades{10'000, 100'000, 1'000'000, 10'000'000};

  std::cout << "scale_decades: family=" << family << " k=" << k
            << " threads=" << threads << " converge-iters=" << convergeIters
            << "\n";
  if (threads == 1) {
    std::cout << "note: 1 hardware thread visible — parallel and serial "
                 "generation timings will coincide on this host.\n";
  }

  std::vector<DecadeRow> rows;
  std::vector<std::size_t> skipped;
  util::TablePrinter table({"|V| req", "|V|", "|E|", "gen s", "gen s (1T)",
                            "part s", "conv s", "iters", "cut", "churn ev/s",
                            "pub ms", "full ms", "pub x", "mem MB", "rss MB"});

  for (const std::size_t n : decades) {
    if (n > maxVertices) {
      skipped.push_back(n);
      std::cerr << "[scale] n=" << n << " skipped (--max-vertices="
                << maxVertices << ")\n";
      continue;
    }
    DecadeRow row;
    row.requestedVertices = n;

    util::WallTimer genTimer;
    graph::DynamicGraph g = makeGraph(family, n, seed, threads);
    row.genSeconds = genTimer.seconds();
    row.vertices = g.numVertices();
    row.edges = g.numEdges();
    if (threads > 1 && n <= serialCompareMax) {
      util::WallTimer serialTimer;
      const graph::DynamicGraph reference = makeGraph(family, n, seed, 1);
      row.genSerialSeconds = serialTimer.seconds();
      if (reference.numEdges() != row.edges) {
        std::cerr << "[scale] WARNING: serial/parallel generation diverged at n="
                  << n << " (" << reference.numEdges() << " vs " << row.edges
                  << " edges)\n";
      }
    } else if (threads == 1) {
      row.genSerialSeconds = row.genSeconds;  // same run, by definition
    }

    core::AdaptiveOptions options;
    options.k = k;
    options.seed = seed;
    options.recordSeries = false;  // the bench keeps its own series
    util::WallTimer partitionTimer;
    api::Session session = api::Pipeline::fromGraph(std::move(g))
                               .initial("HSH")
                               .k(k)
                               .seed(seed)
                               .adaptive(options)
                               .maxIterations(convergeIters)
                               .start();
    row.partitionSeconds = partitionTimer.seconds();

    util::WallTimer convergeTimer;
    const core::ConvergenceResult result = session.runToConvergence();
    row.convergeSeconds = convergeTimer.seconds();
    row.iterations = result.iterationsRun;
    row.converged = result.converged;
    row.cutRatio = session.cutRatio();

    graph::UpdateStream churn =
        makeChurn(session.engine().graph(), churnEvents, seed);
    api::StreamOptions streamOptions;
    streamOptions.windowEvents = churnWindow;
    streamOptions.maxIterationsPerWindow = 50;
    // Publication rides the churn loop: warm the delta builder's base CSR
    // once (the full rebuild every epoch used to pay), then after each
    // window time the delta publish and a full-rebuild publish back-to-back
    // over the same engine state. churnSeconds counts only streamWindow
    // work, so churn_events_per_sec stays a pure ingest metric.
    serve::SnapshotBuilder builder;
    serve::SnapshotBoard board;
    std::uint64_t epoch = 0;
    std::uint64_t publishSink = 0;
    board.publish(builder.build(++epoch, session.engine().graph(),
                                session.engine().state().assignment(),
                                session.engine().k(), serve::SnapshotStats{}));
    api::Streamer streamer(std::move(churn), streamOptions);
    while (std::optional<api::WindowBatch> batch = streamer.next()) {
      core::TouchSet touched;
      const api::WindowReport w =
          session.streamWindow(*batch, streamOptions, &touched);
      row.churnSeconds += w.wallSeconds;
      row.churnEvents += w.eventsDrained;
      builder.note(touched);
      serve::AssignmentSnapshot delta = builder.build(
          ++epoch, session.engine().graph(),
          session.engine().state().assignment(), session.engine().k(),
          serve::SnapshotStats{});
      const double deltaSeconds = delta.stats().publishSeconds;
      if (builder.lastBuildCompacted()) {
        ++row.publishCompactions;
        row.publishCompactTotal += deltaSeconds;
      } else {
        row.publishDeltaTotal += deltaSeconds;
      }
      board.publish(std::move(delta));
      util::WallTimer fullTimer;
      const serve::AssignmentSnapshot full(
          epoch, session.engine().graph(),
          session.engine().state().assignment(), session.engine().k(),
          serve::SnapshotStats{});
      row.publishFullTotal += fullTimer.seconds();
      publishSink += full.idBound();  // keep the comparison arm observable
      ++row.publishWindows;
    }
    if (publishSink == 0 && row.publishWindows > 0) {
      std::cerr << "[scale] WARNING: empty full-rebuild snapshots\n";
    }
    row.churnEventsPerSec = row.churnSeconds > 0.0
                                ? static_cast<double>(row.churnEvents) /
                                      row.churnSeconds
                                : 0.0;

    row.memory = session.engine().memoryReport();
    row.peakRssBytes = bench::PeakRss();
    rows.push_back(row);

    table.addRow({std::to_string(n), std::to_string(row.vertices),
                  std::to_string(row.edges), util::fmt(row.genSeconds, 2),
                  util::fmt(row.genSerialSeconds, 2),
                  util::fmt(row.partitionSeconds, 2),
                  util::fmt(row.convergeSeconds, 2),
                  std::to_string(row.iterations), util::fmt(row.cutRatio, 3),
                  util::fmt(row.churnEventsPerSec, 0),
                  util::fmt(steadyPublishSeconds(row) * 1e3, 2),
                  util::fmt(fullPublishSeconds(row) * 1e3, 2),
                  util::fmt(steadyPublishSeconds(row) > 0.0
                                ? fullPublishSeconds(row) / steadyPublishSeconds(row)
                                : 0.0,
                            1),
                  util::fmt(static_cast<double>(row.memory.totalBytes()) / 1e6, 1),
                  util::fmt(static_cast<double>(row.peakRssBytes) / 1e6, 1)});
    std::cerr << "[scale] n=" << n << " done: gen=" << util::fmt(row.genSeconds, 2)
              << "s converge=" << util::fmt(row.convergeSeconds, 2)
              << "s churn=" << util::fmt(row.churnEventsPerSec, 0) << " ev/s\n";
  }
  table.print(std::cout);

  std::ostringstream json;
  json << "{\"bench\": \"scale_decades\", \"family\": \"" << family
       << "\", \"k\": " << k << ", \"seed\": " << seed
       << ", \"threads\": " << threads
       << ", \"converge_iters\": " << convergeIters
       << ", \"max_vertices\": " << maxVertices << ", \"skipped_decades\": [";
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    json << (i ? ", " : "") << skipped[i];
  }
  json << "], \"decades\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) json << ", ";
    appendJson(json, rows[i]);
  }
  json << "]}";

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "scale_decades: cannot open " << outPath << "\n";
    return 1;
  }
  out << json.str() << "\n";
  std::cout << "scale_decades: wrote " << outPath << "\n";
  return rows.empty() ? 2 : 0;
}
