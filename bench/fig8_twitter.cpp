// Figure 8 — "Throughput and performance obtained by processing the incoming
// stream of tweets from London. Each point represents the average of 10 min
// of streaming data."
//
// Two systems consume the identical synthetic mention stream (docs/DESIGN.md §2):
// one with static hash partitioning, one with the adaptive algorithm,
// running TunkRank continuously on the sharded pregel runtime
// (EngineOptions::threads shards the compute phase; the trajectory is
// thread-count-invariant). The TWEET workload comes from
// api::WorkloadRegistry and the 10-minute bucketing + sliding mention-window
// expiry from api::Streamer (graph::EdgeExpiryWindow) — this driver only
// interleaves the application supersteps and the fault injection. A worker
// failure is injected mid-afternoon, reproducing the paper's sudden drop in
// throughput and superstep time.
//
// Besides the figure CSV, each arm emits an api::TimelineReport window CSV
// (fig8_twitter_{hash,iter}_windows.csv) whose rows carry the per-bucket
// migrationsExecuted and lostMessages — the failure injection's losses used
// to be visible only in Engine::history().
//
// Expected shape (paper): adaptive superstep time ~5x below hash (0.5s vs
// 2.5s) with visibly lower variance. Times here are normalised to the
// static system's day average.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <span>

#include "apps/tunkrank.h"
#include "bench_common.h"
#include "graph/edge_expiry_window.h"
#include "pregel/engine.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace xdgp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double hours = flags.getDouble("hours", 24.0);  // the measured day
  const auto workers = static_cast<std::size_t>(flags.getInt("workers", 9));
  const auto threads = static_cast<std::size_t>(flags.getInt("threads", 1));
  const auto stepsPerBucket = static_cast<std::size_t>(flags.getInt("steps", 3));
  api::WorkloadConfig config = api::workloadConfigFromFlags(
      flags, api::WorkloadRegistry::instance().info("TWEET"));
  flags.finish();
  const std::uint64_t seed = config.seed;

  // Fig-8 scale when the flags do not say otherwise (the registry defaults
  // to an example-sized stream), and a warm-up day in front of the measured
  // one: the paper's system had run continuously for 4 days, so the
  // recurrent mention structure is in place.
  config.overrides.try_emplace("users", 20'000.0);
  config.overrides.try_emplace("rate", 8.0);
  config.overrides["hours"] = 24.0 + hours;
  api::Workload workload = api::WorkloadRegistry::instance().make("TWEET", config);

  const std::size_t users = workload.initial.numVertices();
  const double meanRate = config.overrides.at("rate");
  const double windowHours = workload.suggested.expirySpan / 3600.0;
  const double bucketSec = workload.suggested.windowSpan;

  pregel::EngineOptions staticOptions;
  staticOptions.numWorkers = workers;
  staticOptions.threads = threads;
  pregel::EngineOptions adaptiveOptions = staticOptions;
  adaptiveOptions.adaptive = true;
  adaptiveOptions.partitioner.seed = seed;

  pregel::Engine<apps::TunkRankProgram> staticEngine(
      workload.initial, bench::initialAssignment(workload.initial, "HSH", workers,
                                                 1.1, seed),
      staticOptions);
  pregel::Engine<apps::TunkRankProgram> adaptiveEngine(
      workload.initial, bench::initialAssignment(workload.initial, "HSH", workers,
                                                 1.1, seed),
      adaptiveOptions);

  const auto warmupBuckets = static_cast<std::size_t>(24.0 * 3600.0 / bucketSec);
  const auto buckets = static_cast<std::size_t>(hours * 3600.0 / bucketSec);
  api::StreamOptions streamOptions = workload.suggested;
  streamOptions.maxWindows = warmupBuckets + buckets;
  // The mention window is applied here rather than via StreamOptions: the
  // fault injection below must drop a failed bucket's mentions *before* the
  // expiry tracker sees them (a lost mention must not reset an edge's
  // expiry clock), so expiry runs after the drop.
  streamOptions.expirySpan = 0.0;
  graph::EdgeExpiryWindow mentionWindow(workload.suggested.expirySpan);
  api::Streamer streamer(std::move(workload.stream), streamOptions);

  // --- Warm-up day: same pipeline, unmeasured; a couple of supersteps per
  // bucket keep the adaptive partitioner tracking the graph.
  std::cerr << "[fig8] warming up over one simulated day...\n";
  while (streamer.windowsEmitted() < warmupBuckets) {
    auto batch = streamer.next();
    if (!batch) break;
    const auto events = mentionWindow.advance(std::move(batch->events), batch->end);
    staticEngine.ingest(events);
    adaptiveEngine.ingest(events);
    staticEngine.runSupersteps(2);
    adaptiveEngine.runSupersteps(2);
  }

  // --- The measured day, in 10-minute buckets.
  const std::size_t failureBucket = buckets * 5 / 8;  // mid-afternoon failure

  struct Bucket {
    double hour;
    double tweetsPerSec;
    double staticTime;
    double adaptiveTime;
  };
  std::vector<Bucket> series;
  double staticSum = 0.0, adaptiveSum = 0.0;
  util::RunningStat staticSpread, adaptiveSpread;

  // Per-bucket timeline rows for both arms: the api machinery that carries
  // migrations and lost messages into CSV.
  api::TimelineReport staticTimeline{"TWEET", "HSH", workers, {}};
  api::TimelineReport adaptiveTimeline{"TWEET", "HSH", workers, {}};

  while (auto batch = streamer.next()) {
    const std::size_t b = batch->index - warmupBuckets;
    double throughput = static_cast<double>(batch->drained) / bucketSec;
    std::size_t drainedKept = batch->drained;

    double recoveryPenalty = 0.0;
    if (b == failureBucket || b == failureBucket + 1) {
      // Worker failure: ingestion stalls — the bucket's fresh mentions are
      // dropped before the mention window tracks them, which keeps sliding
      // while the worker is down. The recovery superstep re-loads the
      // failed worker's partition (one vertex transfer per hosted vertex,
      // in cost-model terms).
      batch->events.clear();
      throughput = 0.0;
      drainedKept = 0;
      if (b == failureBucket) {
        recoveryPenalty =
            staticOptions.cost.gamma *
            static_cast<double>(staticEngine.graph().numVertices() / workers);
      }
    }
    const auto events = mentionWindow.advance(std::move(batch->events), batch->end);
    const std::size_t staticHistoryFrom = staticEngine.history().size();
    const std::size_t adaptiveHistoryFrom = adaptiveEngine.history().size();
    // Each arm's wall_s must cover only its own ingest + supersteps, so the
    // two window CSVs stay comparable.
    double staticWall = 0.0, adaptiveWall = 0.0;
    util::WallTimer armTimer;
    const std::size_t staticApplied = staticEngine.ingest(events);
    staticWall += armTimer.seconds();
    armTimer.reset();
    const std::size_t adaptiveApplied = adaptiveEngine.ingest(events);
    adaptiveWall += armTimer.seconds();

    double staticTime = 0.0, adaptiveTime = 0.0;
    for (std::size_t s = 0; s < stepsPerBucket; ++s) {
      armTimer.reset();
      staticTime += staticEngine.runSuperstep().modeledTime;
      staticWall += armTimer.seconds();
      armTimer.reset();
      adaptiveTime += adaptiveEngine.runSuperstep().modeledTime;
      adaptiveWall += armTimer.seconds();
    }
    staticTime = staticTime / static_cast<double>(stepsPerBucket) + recoveryPenalty;
    adaptiveTime =
        adaptiveTime / static_cast<double>(stepsPerBucket) + recoveryPenalty;

    // Timeline rows, re-indexed to the measured day (warm-up excluded).
    api::WindowBatch meta;
    meta.index = b;
    meta.start = batch->start;
    meta.end = batch->end;
    meta.drained = drainedKept;
    meta.expired = events.size() - drainedKept;
    staticTimeline.windows.push_back(api::windowReportFromSupersteps(
        meta, staticApplied,
        std::span(staticEngine.history()).subspan(staticHistoryFrom),
        staticEngine.graph(), staticEngine.state(), workers,
        staticEngine.partitionerConverged(), staticWall));
    adaptiveTimeline.windows.push_back(api::windowReportFromSupersteps(
        meta, adaptiveApplied,
        std::span(adaptiveEngine.history()).subspan(adaptiveHistoryFrom),
        adaptiveEngine.graph(), adaptiveEngine.state(), workers,
        adaptiveEngine.partitionerConverged(), adaptiveWall));

    series.push_back({static_cast<double>(b) * bucketSec / 3600.0, throughput,
                      staticTime, adaptiveTime});
    staticSum += staticTime;
    adaptiveSum += adaptiveTime;
    staticSpread.add(staticTime);
    adaptiveSpread.add(adaptiveTime);
  }

  // Normalise to the static system's day average, as the figure's scale.
  const double norm = staticSum / static_cast<double>(series.size());
  util::CsvWriter csv(bench::resultsDir() + "/fig8_twitter.csv",
                      {"hour", "tweets_per_sec", "hash_superstep_time",
                       "iter_superstep_time"});
  std::cout << "Figure 8: tweet stream, " << users << " users, mean "
            << util::fmt(meanRate, 1) << " tweets/s, " << workers
            << " workers, " << util::fmt(windowHours, 0)
            << "h mention window; times normalised to the static-hash day "
               "average\n\n";
  util::TablePrinter table(
      {"hour", "tweets/s", "hash superstep time", "iter superstep time"});
  for (std::size_t b = 0; b < series.size(); ++b) {
    const Bucket& point = series[b];
    csv.addRow({util::fmt(point.hour, 2), util::fmt(point.tweetsPerSec, 2),
                util::fmt(point.staticTime / norm, 4),
                util::fmt(point.adaptiveTime / norm, 4)});
    if (b % 6 == 0) {  // print hourly, CSV has every bucket
      table.addRow({util::fmt(point.hour, 0), util::fmt(point.tweetsPerSec, 1),
                    util::fmt(point.staticTime / norm, 3),
                    util::fmt(point.adaptiveTime / norm, 3)});
    }
  }
  table.print(std::cout);

  // Per-bucket timelines with migrations + lost messages per window.
  std::size_t lostStatic = 0, lostAdaptive = 0;
  for (const api::WindowReport& w : staticTimeline.windows) lostStatic += w.lostMessages;
  for (const api::WindowReport& w : adaptiveTimeline.windows) {
    lostAdaptive += w.lostMessages;
  }
  {
    std::ofstream hashWindows(bench::resultsDir() + "/fig8_twitter_hash_windows.csv");
    staticTimeline.renderCsv(hashWindows);
    std::ofstream iterWindows(bench::resultsDir() + "/fig8_twitter_iter_windows.csv");
    adaptiveTimeline.renderCsv(iterWindows);
  }

  std::cout << "\nDay average (hash = 1.000): adaptive = "
            << util::fmt(adaptiveSum / staticSum, 3)
            << "  (paper: 0.5s vs 2.5s => 0.2)\n"
            << "Std dev of superstep time: hash = "
            << util::fmt(staticSpread.stddev() / norm, 3)
            << ", adaptive = " << util::fmt(adaptiveSpread.stddev() / norm, 3)
            << "  (adaptive visibly steadier)\n"
            << "Final cut ratio: hash = " << util::fmt(staticEngine.cutRatio(), 3)
            << ", adaptive = " << util::fmt(adaptiveEngine.cutRatio(), 3) << "\n"
            << "Messages lost across the day (failure window): hash = "
            << lostStatic << ", adaptive = " << lostAdaptive << "\n"
            << "CSV: " << bench::resultsDir() << "/fig8_twitter.csv\n"
            << "Window timelines: " << bench::resultsDir()
            << "/fig8_twitter_{hash,iter}_windows.csv (migrations + lost "
               "messages per bucket)\n";
  return 0;
}
