// Figure 8 — "Throughput and performance obtained by processing the incoming
// stream of tweets from London. Each point represents the average of 10 min
// of streaming data."
//
// Two systems consume the identical synthetic mention stream (docs/DESIGN.md §2):
// one with static hash partitioning, one with the adaptive algorithm,
// running TunkRank continuously. Mentions older than a sliding window expire
// (real-time influence tracks *recent* mentions, which keeps the live graph
// following the diurnal load as in the paper's day-long plot). A worker
// failure is injected mid-afternoon, reproducing the paper's sudden drop in
// throughput and superstep time.
//
// Expected shape (paper): adaptive superstep time ~5x below hash (0.5s vs
// 2.5s) with visibly lower variance. Times here are normalised to the
// static system's day average.

#include <algorithm>
#include <deque>
#include <iostream>
#include <unordered_map>

#include "apps/tunkrank.h"
#include "bench_common.h"
#include "gen/tweet_stream.h"
#include "graph/update_stream.h"
#include "pregel/engine.h"
#include "util/csv.h"

using namespace xdgp;

namespace {

/// Sliding-window maintainer for the mention graph: an edge expires when its
/// most recent observation falls out of the window.
class MentionWindow {
 public:
  explicit MentionWindow(double windowSec) : windowSec_(windowSec) {}

  /// Folds a batch of AddEdge events in and returns it extended with the
  /// RemoveEdge events that expired as of `now`.
  std::vector<graph::UpdateEvent> advance(std::vector<graph::UpdateEvent> adds,
                                          double now) {
    for (const auto& e : adds) {
      lastSeen_[key(e.u, e.v)] = e.timestamp;
      fifo_.push_back(e);
    }
    std::vector<graph::UpdateEvent> batch = std::move(adds);
    while (!fifo_.empty() && fifo_.front().timestamp < now - windowSec_) {
      const graph::UpdateEvent e = fifo_.front();
      fifo_.pop_front();
      const auto it = lastSeen_.find(key(e.u, e.v));
      // Only expire if the edge was not re-observed inside the window.
      if (it != lastSeen_.end() && it->second == e.timestamp) {
        batch.push_back(graph::UpdateEvent::removeEdge(e.u, e.v, now));
        lastSeen_.erase(it);
      }
    }
    return batch;
  }

 private:
  static std::uint64_t key(graph::VertexId u, graph::VertexId v) {
    const auto [a, b] = std::minmax(u, v);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  double windowSec_;
  std::deque<graph::UpdateEvent> fifo_;
  std::unordered_map<std::uint64_t, double> lastSeen_;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto users = static_cast<std::size_t>(flags.getInt("users", 20'000));
  const double meanRate = flags.getDouble("rate", 8.0);
  const double hours = flags.getDouble("hours", 24.0);
  const double windowHours = flags.getDouble("window-hours", 6.0);
  const auto workers = static_cast<std::size_t>(flags.getInt("workers", 9));
  const auto stepsPerBucket = static_cast<std::size_t>(flags.getInt("steps", 3));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();

  // The measured day plus a warm-up day: the paper's system had run
  // continuously for 4 days, so the recurrent mention structure is in place.
  gen::TweetStreamParams streamParams;
  streamParams.users = users;
  streamParams.meanRate = meanRate;
  streamParams.hours = 24.0 + hours;
  const auto allEvents =
      gen::TweetStreamGenerator(streamParams, util::Rng(seed)).generate();

  graph::DynamicGraph base;
  for (graph::VertexId v = 0; v < users; ++v) base.ensureVertex(v);

  pregel::EngineOptions staticOptions;
  staticOptions.numWorkers = workers;
  pregel::EngineOptions adaptiveOptions = staticOptions;
  adaptiveOptions.adaptive = true;
  adaptiveOptions.partitioner.seed = seed;

  pregel::Engine<apps::TunkRankProgram> staticEngine(
      base, bench::initialAssignment(base, "HSH", workers, 1.1, seed),
      staticOptions);
  pregel::Engine<apps::TunkRankProgram> adaptiveEngine(
      base, bench::initialAssignment(base, "HSH", workers, 1.1, seed),
      adaptiveOptions);

  const double bucketSec = 600.0;
  MentionWindow window(windowHours * 3600.0);
  graph::UpdateStream feed(allEvents);

  // --- Warm-up day: same pipeline, unmeasured; a couple of supersteps per
  // bucket keep the adaptive partitioner tracking the graph.
  std::cerr << "[fig8] warming up over one simulated day...\n";
  for (double now = bucketSec; now <= 24.0 * 3600.0; now += bucketSec) {
    const auto batch = window.advance(feed.drainUntil(now), now);
    staticEngine.ingest(batch);
    adaptiveEngine.ingest(batch);
    staticEngine.runSupersteps(2);
    adaptiveEngine.runSupersteps(2);
  }

  // --- The measured day, in 10-minute buckets.
  const auto buckets = static_cast<std::size_t>(hours * 3600.0 / bucketSec);
  const std::size_t failureBucket = buckets * 5 / 8;  // mid-afternoon failure
  const double dayStart = 24.0 * 3600.0;

  struct Bucket {
    double hour;
    double tweetsPerSec;
    double staticTime;
    double adaptiveTime;
  };
  std::vector<Bucket> series;
  double staticSum = 0.0, adaptiveSum = 0.0;
  util::RunningStat staticSpread, adaptiveSpread;

  for (std::size_t b = 0; b < buckets; ++b) {
    const double now = dayStart + static_cast<double>(b + 1) * bucketSec;
    auto incoming = feed.drainUntil(now);
    double throughput = static_cast<double>(incoming.size()) / bucketSec;

    double recoveryPenalty = 0.0;
    if (b == failureBucket || b == failureBucket + 1) {
      // Worker failure: ingestion stalls; the recovery superstep re-loads
      // the failed worker's partition (one vertex transfer per hosted
      // vertex, in cost-model terms).
      incoming.clear();
      throughput = 0.0;
      if (b == failureBucket) {
        recoveryPenalty =
            staticOptions.cost.gamma *
            static_cast<double>(staticEngine.graph().numVertices() / workers);
      }
    }
    const auto batch = window.advance(std::move(incoming), now);
    staticEngine.ingest(batch);
    adaptiveEngine.ingest(batch);

    double staticTime = 0.0, adaptiveTime = 0.0;
    for (std::size_t s = 0; s < stepsPerBucket; ++s) {
      staticTime += staticEngine.runSuperstep().modeledTime;
      adaptiveTime += adaptiveEngine.runSuperstep().modeledTime;
    }
    staticTime = staticTime / static_cast<double>(stepsPerBucket) + recoveryPenalty;
    adaptiveTime =
        adaptiveTime / static_cast<double>(stepsPerBucket) + recoveryPenalty;

    series.push_back({static_cast<double>(b) * bucketSec / 3600.0, throughput,
                      staticTime, adaptiveTime});
    staticSum += staticTime;
    adaptiveSum += adaptiveTime;
    staticSpread.add(staticTime);
    adaptiveSpread.add(adaptiveTime);
  }

  // Normalise to the static system's day average, as the figure's scale.
  const double norm = staticSum / static_cast<double>(buckets);
  util::CsvWriter csv(bench::resultsDir() + "/fig8_twitter.csv",
                      {"hour", "tweets_per_sec", "hash_superstep_time",
                       "iter_superstep_time"});
  std::cout << "Figure 8: tweet stream, " << users << " users, mean "
            << util::fmt(meanRate, 1) << " tweets/s, " << workers
            << " workers, " << util::fmt(windowHours, 0)
            << "h mention window; times normalised to the static-hash day "
               "average\n\n";
  util::TablePrinter table(
      {"hour", "tweets/s", "hash superstep time", "iter superstep time"});
  for (std::size_t b = 0; b < series.size(); ++b) {
    const Bucket& point = series[b];
    csv.addRow({util::fmt(point.hour, 2), util::fmt(point.tweetsPerSec, 2),
                util::fmt(point.staticTime / norm, 4),
                util::fmt(point.adaptiveTime / norm, 4)});
    if (b % 6 == 0) {  // print hourly, CSV has every bucket
      table.addRow({util::fmt(point.hour, 0), util::fmt(point.tweetsPerSec, 1),
                    util::fmt(point.staticTime / norm, 3),
                    util::fmt(point.adaptiveTime / norm, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nDay average (hash = 1.000): adaptive = "
            << util::fmt(adaptiveSum / staticSum, 3)
            << "  (paper: 0.5s vs 2.5s => 0.2)\n"
            << "Std dev of superstep time: hash = "
            << util::fmt(staticSpread.stddev() / norm, 3)
            << ", adaptive = " << util::fmt(adaptiveSpread.stddev() / norm, 3)
            << "  (adaptive visibly steadier)\n"
            << "Final cut ratio: hash = " << util::fmt(staticEngine.cutRatio(), 3)
            << ", adaptive = " << util::fmt(adaptiveEngine.cutRatio(), 3) << "\n"
            << "CSV: " << bench::resultsDir() << "/fig8_twitter.csv\n";
  return 0;
}
