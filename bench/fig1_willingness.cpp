// Figure 1 — "Effect of s into Convergence and Number of Cuts", panels
// A: 64kcube and B: epinions, 9 partitions, hash initial partitioning.
//
// For each willingness-to-move s in {0.1 ... 0.9} the harness runs the
// adaptive algorithm to convergence (30 quiet iterations, as in the paper)
// and reports convergence time (iterations until migrations ceased) and the
// final cut ratio, averaged over `--reps` repetitions with the estimated
// error in the mean.
//
// Expected shape (paper): cut ratio flat in s; convergence time elevated at
// the extremes (slow at low s, neighbour-chasing waste at high s).

#include <iostream>

#include "bench_common.h"
#include "util/csv.h"

using namespace xdgp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto reps = static_cast<std::size_t>(flags.getInt("reps", 3));
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();

  util::CsvWriter csv(bench::resultsDir() + "/fig1_willingness.csv",
                      {"graph", "s", "convergence_mean", "convergence_stderr",
                       "cut_ratio_mean", "cut_ratio_stderr"});

  for (const std::string panel : {"64kcube", "epinion"}) {
    const gen::DatasetSpec& spec = gen::datasetByName(panel);
    std::cout << "Figure 1 (" << (panel == "64kcube" ? "A" : "B") << "): " << panel
              << ", k = " << k << ", hash initial partitioning, reps = " << reps
              << "\n\n";
    util::TablePrinter table(
        {"s", "convergence time (iters)", "cut ratio (|Ec|/|E|)"});
    for (int step = 1; step <= 9; ++step) {
      const double s = 0.1 * step;
      util::RunningStat convergence, cuts;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        util::Rng genRng(seed + rep);
        core::AdaptiveOptions options;
        options.k = k;
        options.willingness = s;
        options.seed = seed + rep * 1'000 + static_cast<std::uint64_t>(step);
        const api::RunReport run =
            bench::runAdaptive(spec.make(genRng), "HSH", options);
        convergence.add(static_cast<double>(run.convergenceIteration));
        cuts.add(run.finalCutRatio);
      }
      table.addRow({util::fmt(s, 1),
                    util::fmtPm(convergence.mean(), convergence.stderror(), 1),
                    util::fmtPm(cuts.mean(), cuts.stderror(), 3)});
      csv.addRow({panel, util::fmt(s, 1), util::fmt(convergence.mean(), 2),
                  util::fmt(convergence.stderror(), 2), util::fmt(cuts.mean(), 4),
                  util::fmt(cuts.stderror(), 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "CSV: " << bench::resultsDir() << "/fig1_willingness.csv\n";
  return 0;
}
