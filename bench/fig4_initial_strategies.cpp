// Figure 4 — "Normalised number of cut edges after applying the iterative
// algorithm, starting from four initial partitioning strategies. 9
// partitions, with maximum capacity equal to 110% of the balanced load. The
// horizontal dashed line represents the results obtained using METIS."
//
// Panels: A = 64kcube (FEM), B = epinions (power law). For each strategy
// (DGR, HSH, MNN, RND) the harness prints the paper's two bars — the cut
// ratio of the initial partitioning and after the iterative algorithm — plus
// the METIS-like multilevel reference line.
//
// Expected shape (paper): iterative improves HSH/MNN/RND by 0.2-0.4, DGR
// only slightly (similar heuristics), and lands near the METIS line.

#include <iostream>

#include "bench_common.h"
#include "util/csv.h"

using namespace xdgp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto reps = static_cast<std::size_t>(flags.getInt("reps", 3));
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();

  util::CsvWriter csv(bench::resultsDir() + "/fig4_initial_strategies.csv",
                      {"graph", "strategy", "initial_mean", "initial_stderr",
                       "iterative_mean", "iterative_stderr", "metis_like"});

  for (const std::string panel : {"64kcube", "epinion"}) {
    const gen::DatasetSpec& spec = gen::datasetByName(panel);
    // The centralised reference (global view, like METIS) on one instance.
    util::Rng metisGenRng(seed);
    const graph::DynamicGraph metisInstance = spec.make(metisGenRng);
    const double metisLine = bench::multilevelCutRatio(metisInstance, k, 1.1, seed);

    std::cout << "Figure 4 (" << (panel == "64kcube" ? "A" : "B") << "): " << panel
              << ", k = " << k << ", capacity 110%, reps = " << reps << "\n"
              << "METIS-like multilevel reference: " << util::fmt(metisLine, 3)
              << " (dashed line)\n\n";
    util::TablePrinter table(
        {"Initial strategy", "initial cut ratio", "after iterative algorithm"});
    for (const std::string& code : partition::initialStrategyCodes()) {
      util::RunningStat initial, iterative;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        util::Rng genRng(seed + rep);
        core::AdaptiveOptions options;
        options.k = k;
        options.seed = seed + rep * 1'000;
        const api::RunReport run =
            bench::runAdaptive(spec.make(genRng), code, options);
        initial.add(run.initialCutRatio);
        iterative.add(run.finalCutRatio);
      }
      table.addRow({code, util::fmtPm(initial.mean(), initial.stderror(), 3),
                    util::fmtPm(iterative.mean(), iterative.stderror(), 3)});
      csv.addRow({panel, code, util::fmt(initial.mean(), 4),
                  util::fmt(initial.stderror(), 4), util::fmt(iterative.mean(), 4),
                  util::fmt(iterative.stderror(), 4), util::fmt(metisLine, 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "CSV: " << bench::resultsDir() << "/fig4_initial_strategies.csv\n";
  return 0;
}
