// Micro-benchmarks (google-benchmark) for the hot kernels of the library:
// one adaptive iteration, the migration decision, incremental cut updates,
// quota admission, CSR construction and the generators. These quantify the
// "lightweight heuristic" claim (§2): a decision is O(deg), an iteration is
// O(|V| + s·Σdeg).

#include <benchmark/benchmark.h>

#include "core/adaptive_engine.h"
#include "core/migration_policy.h"
#include "core/partition_state.h"
#include "core/quota_ledger.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "api/partitioner_registry.h"
#include "graph/csr.h"
#include "util/rng.h"

namespace {

using namespace xdgp;

metrics::Assignment hashAssign(const graph::DynamicGraph& g, std::size_t k) {
  return api::initialAssignment(g, "HSH", k, 1.1, 1);
}

void BM_AdaptiveIterationMesh(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  graph::DynamicGraph g = gen::mesh3d(side, side, side);
  const std::size_t vertices = g.numVertices();
  core::AdaptiveOptions options;
  options.k = 9;
  options.recordSeries = false;
  // Full active sweep: with the frontier on, repeated step() converges and
  // the loop would measure near-empty iterations (see the Converged and
  // LowChurn benchmarks for that regime).
  options.frontier = false;
  core::AdaptiveEngine engine(std::move(g), hashAssign(gen::mesh3d(side, side, side), 9),
                              options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(vertices));
}
BENCHMARK(BM_AdaptiveIterationMesh)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_AdaptiveIterationPowerLaw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  graph::DynamicGraph g = gen::powerlawCluster(n, 8, 0.1, rng);
  const metrics::Assignment a = hashAssign(g, 9);
  core::AdaptiveOptions options;
  options.k = 9;
  options.recordSeries = false;
  options.frontier = false;  // full active sweep, as above
  core::AdaptiveEngine engine(std::move(g), a, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AdaptiveIterationPowerLaw)
    ->Arg(10'000)
    ->Arg(50'000)
    ->Unit(benchmark::kMillisecond);

// Converged-phase iteration cost: the long tail every dynamic deployment
// lives in. Arg 1 toggles AdaptiveOptions::frontier; identical trajectories
// (the equivalence suite proves it), wildly different cost — the frontier
// variant touches only the quota-starved residue instead of every vertex.
void BM_AdaptiveIterationMeshConverged(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  graph::DynamicGraph g = gen::mesh3d(side, side, side);
  const std::size_t vertices = g.numVertices();
  const metrics::Assignment a = hashAssign(g, 9);
  core::AdaptiveOptions options;
  options.k = 9;
  options.recordSeries = false;
  options.frontier = state.range(1) != 0;
  core::AdaptiveEngine engine(std::move(g), a, options);
  engine.runToConvergence(20'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(vertices));
  state.counters["evaluated"] =
      static_cast<double>(engine.lastEvaluatedCount());
}
BENCHMARK(BM_AdaptiveIterationMeshConverged)
    ->ArgsProduct({{16, 32}, {0, 1}})
    ->ArgNames({"side", "frontier"})
    ->Unit(benchmark::kMicrosecond);

void BM_AdaptiveIterationPowerLawConverged(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  graph::DynamicGraph g = gen::powerlawCluster(n, 8, 0.1, rng);
  const metrics::Assignment a = hashAssign(g, 9);
  core::AdaptiveOptions options;
  options.k = 9;
  options.recordSeries = false;
  options.frontier = state.range(1) != 0;
  core::AdaptiveEngine engine(std::move(g), a, options);
  engine.runToConvergence(20'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["evaluated"] =
      static_cast<double>(engine.lastEvaluatedCount());
}
BENCHMARK(BM_AdaptiveIterationPowerLawConverged)
    ->ArgsProduct({{10'000, 50'000}, {0, 1}})
    ->ArgNames({"n", "frontier"})
    ->Unit(benchmark::kMicrosecond);

// Low-churn steady state (fig7/fig8/fig9 shape): a trickle of updates
// between steps re-arms a small neighbourhood; cost should track the churn,
// not the graph.
void BM_AdaptiveIterationLowChurn(benchmark::State& state) {
  graph::DynamicGraph g = gen::mesh3d(24, 24, 24);
  const std::size_t vertices = g.numVertices();
  const metrics::Assignment a = hashAssign(g, 9);
  core::AdaptiveOptions options;
  options.k = 9;
  options.recordSeries = false;
  options.frontier = state.range(0) != 0;
  core::AdaptiveEngine engine(std::move(g), a, options);
  engine.runToConvergence(20'000);
  util::Rng rng(7);
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.index(vertices));
    const auto v = static_cast<graph::VertexId>(rng.index(vertices));
    // Net no-op perturbation either way, so the graph being timed does not
    // drift over the benchmark's millions of iterations.
    if (engine.graph().hasEdge(u, v)) {
      engine.applyUpdates({graph::UpdateEvent::removeEdge(u, v),
                           graph::UpdateEvent::addEdge(u, v)});
    } else {
      engine.applyUpdates({graph::UpdateEvent::addEdge(u, v),
                           graph::UpdateEvent::removeEdge(u, v)});
    }
    benchmark::DoNotOptimize(engine.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdaptiveIterationLowChurn)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"frontier"})
    ->Unit(benchmark::kMicrosecond);

// Streaming sum over every neighbourhood: the access pattern of the
// decision scan, isolating the AdjacencyPool arena layout.
void BM_AdjacencyScan(benchmark::State& state) {
  util::Rng rng(6);
  const graph::DynamicGraph g = gen::powerlawCluster(50'000, 8, 0.1, rng);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    g.forEachVertex([&](graph::VertexId v) {
      for (const graph::VertexId nbr : g.neighbors(v)) sum += nbr;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * g.numEdges()));
}
BENCHMARK(BM_AdjacencyScan)->Unit(benchmark::kMillisecond);

void BM_MigrationDecision(benchmark::State& state) {
  graph::DynamicGraph g = gen::mesh3d(20, 20, 20);
  const metrics::Assignment a = hashAssign(g, 9);
  core::MigrationPolicy policy(9);
  graph::VertexId v = 0;
  std::uint32_t tie = 0;
  for (auto _ : state) {
    v = (v + 1) % static_cast<graph::VertexId>(g.idBound());
    benchmark::DoNotOptimize(policy.target(g.neighbors(v), a, a[v], tie++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MigrationDecision);

void BM_IncrementalCutMove(benchmark::State& state) {
  graph::DynamicGraph g = gen::mesh3d(20, 20, 20);
  core::PartitionState ps(g, hashAssign(g, 9), 9);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto v = static_cast<graph::VertexId>(rng.index(g.idBound()));
    ps.moveVertex(g, v, static_cast<graph::PartitionId>(rng.below(9)));
    benchmark::DoNotOptimize(ps.cutEdges());
  }
}
BENCHMARK(BM_IncrementalCutMove);

void BM_QuotaAdmit(benchmark::State& state) {
  core::QuotaLedger ledger(64);
  const core::CapacityModel capacity(1'000'000, 64, 1.1);
  const std::vector<std::size_t> loads(64, 10'000);
  ledger.beginIteration(capacity, loads);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ledger.tryAdmit(i % 64, (i + 7) % 64));
    if (++i % 100'000 == 0) ledger.beginIteration(capacity, loads);
  }
}
BENCHMARK(BM_QuotaAdmit);

void BM_CsrFromGraph(benchmark::State& state) {
  const graph::DynamicGraph g = gen::mesh3d(32, 32, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CsrGraph::fromGraph(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.numEdges()));
}
BENCHMARK(BM_CsrFromGraph)->Unit(benchmark::kMillisecond);

void BM_Mesh3dGenerate(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::mesh3d(side, side, side));
  }
}
BENCHMARK(BM_Mesh3dGenerate)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_HolmeKimGenerate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::powerlawCluster(n, 8, 0.1, rng));
  }
}
BENCHMARK(BM_HolmeKimGenerate)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_LdgStreamingPass(benchmark::State& state) {
  const graph::CsrGraph csr = graph::CsrGraph::fromGraph(gen::mesh3d(24, 24, 24));
  const auto ldg = api::PartitionerRegistry::instance().create("DGR");
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ldg->partition(csr, 9, 1.1, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csr.numVertices()));
}
BENCHMARK(BM_LdgStreamingPass)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
