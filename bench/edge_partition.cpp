// Cut-vs-replication bench axis: runs every registered edge-partitioning
// strategy plus the HSH *vertex* baseline over the paper's three workload
// families (TWEET mention graph, CDR call graph, RMAT/Graph500 synthetic)
// and reports replication factor, vertex-cut ratio, and both balance axes
// side by side — the vertex-cut numbers the edge-cut figures never show.
// The vertex baseline is bridged through EdgeAssignment::fromVertexAssignment
// so its replication factor is measured by the same code path, and its
// classic edge-cut ratio is printed alongside for the cut-vs-replication
// comparison. Writes one JSON object for the CI bench artifact
// (BENCH_partition.json at the repo root comes from scripts/run_bench.sh
// invoking this with --out).
//
//   build/bench/edge_partition [--k=8] [--balance-cap=1.05] [--seed=42]
//                              [--out=<json path>]

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "api/edge_partitioner_registry.h"
#include "bench_common.h"
#include "epartition/edge_assignment.h"
#include "gen/cdr_stream.h"
#include "gen/rmat.h"
#include "gen/tweet_stream.h"
#include "graph/csr.h"
#include "metrics/replication.h"
#include "util/csv.h"

using namespace xdgp;

namespace {

/// CI-sized stand-ins for the paper's workload families (§4.3): each is a
/// static snapshot of the corresponding stream, big enough for the strategy
/// ordering to be stable and small enough for the bench to run per commit.
graph::DynamicGraph tweetGraph(std::uint64_t seed) {
  gen::TweetStreamParams params;
  params.users = 20'000;
  params.hours = 1.5;
  gen::TweetStreamGenerator generator(params, util::Rng(seed));
  graph::DynamicGraph g(params.users);
  for (const graph::UpdateEvent& e : generator.generate()) {
    if (e.kind == graph::UpdateEvent::Kind::kAddEdge) g.addEdge(e.u, e.v);
  }
  return g;
}

graph::DynamicGraph cdrGraph(std::uint64_t seed) {
  gen::CdrStreamParams params;
  params.initialSubscribers = 20'000;
  gen::CdrStreamGenerator generator(params, util::Rng(seed));
  return generator.initialGraph();
}

graph::DynamicGraph rmatGraph(std::uint64_t seed) {
  gen::RmatParams params;
  params.scale = 12;
  params.edgeFactor = 8;
  util::Rng rng(seed);
  return gen::rmat(params, rng);
}

std::string fmtRow(double value) { return util::fmt(value, 3); }

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto k = static_cast<std::size_t>(flags.getInt("k", 8));
  const double balanceCap = flags.getDouble("balance-cap", 1.05);
  const std::uint64_t seed = flags.getUint64("seed", 42);
  const std::string outPath =
      flags.getString("out", bench::resultsDir() + "/edge_partition.json");
  flags.finish();

  const std::vector<std::pair<std::string, graph::DynamicGraph>> graphs = [&] {
    std::vector<std::pair<std::string, graph::DynamicGraph>> result;
    result.emplace_back("TWEET", tweetGraph(seed));
    result.emplace_back("CDR", cdrGraph(seed + 1));
    result.emplace_back("RMAT", rmatGraph(seed + 2));
    return result;
  }();

  std::cout << "Edge partitioning: cut vs replication (k = " << k
            << ", balance cap = " << balanceCap << ")\n\n";
  util::CsvWriter csv(bench::resultsDir() + "/edge_partition.csv",
                      {"graph", "strategy", "replication_factor",
                       "vertex_cut_ratio", "edge_imbalance", "copy_imbalance"});

  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "edge_partition: cannot open " << outPath << "\n";
    return 1;
  }
  out << "{\"bench\": \"edge_partition\", \"k\": " << k
      << ", \"balance_cap\": " << util::fmt(balanceCap, 3)
      << ", \"seed\": " << seed << ", \"graphs\": [";

  bool firstGraph = true;
  for (const auto& [name, dyn] : graphs) {
    const graph::CsrGraph csr = graph::CsrGraph::fromGraph(dyn);
    util::TablePrinter table({"graph", "strategy", "RF", "vertex cut",
                              "edge imb", "copy imb"});

    out << (firstGraph ? "" : ", ") << "{\"graph\": \"" << name
        << "\", \"vertices\": " << csr.numVertices()
        << ", \"edges\": " << csr.numEdges() << ", \"strategies\": [";
    firstGraph = false;

    // The vertex-partitioning baseline the rest of the system serves from:
    // HSH vertex assignment, edges following their first endpoint. Its
    // edge-cut ratio is the number the paper's figures track; its induced
    // replication factor is what the native edge strategies compete with.
    const metrics::Assignment vertexParts =
        api::initialAssignment(dyn, "HSH", k, 1.1, seed);
    const auto induced =
        epartition::EdgeAssignment::fromVertexAssignment(csr, vertexParts, k);
    const auto inducedReport = metrics::replicationReport(induced);
    const double edgeCut = metrics::cutRatio(csr, vertexParts);
    table.addRow({name, "HSH(v)", fmtRow(inducedReport.replicationFactor),
                  fmtRow(inducedReport.vertexCutRatio),
                  fmtRow(inducedReport.edgeImbalance),
                  fmtRow(inducedReport.copyImbalance)});
    csv.addRow({name, "HSH(v)", fmtRow(inducedReport.replicationFactor),
                fmtRow(inducedReport.vertexCutRatio),
                fmtRow(inducedReport.edgeImbalance),
                fmtRow(inducedReport.copyImbalance)});
    out << "{\"strategy\": \"HSH(v)\", \"kind\": \"vertex\""
        << ", \"cut_ratio\": " << util::fmt(edgeCut, 6)
        << ", \"replication_factor\": "
        << util::fmt(inducedReport.replicationFactor, 6)
        << ", \"vertex_cut_ratio\": "
        << util::fmt(inducedReport.vertexCutRatio, 6)
        << ", \"edge_imbalance\": " << util::fmt(inducedReport.edgeImbalance, 6)
        << ", \"copy_imbalance\": " << util::fmt(inducedReport.copyImbalance, 6)
        << "}";

    for (const std::string& code :
         api::EdgePartitionerRegistry::instance().codes()) {
      const auto assignment = api::edgePartition(dyn, code, k, balanceCap, seed);
      const auto report = metrics::replicationReport(assignment);
      table.addRow({name, code, fmtRow(report.replicationFactor),
                    fmtRow(report.vertexCutRatio), fmtRow(report.edgeImbalance),
                    fmtRow(report.copyImbalance)});
      csv.addRow({name, code, fmtRow(report.replicationFactor),
                  fmtRow(report.vertexCutRatio), fmtRow(report.edgeImbalance),
                  fmtRow(report.copyImbalance)});
      out << ", {\"strategy\": \"" << code << "\", \"kind\": \"edge\""
          << ", \"replication_factor\": "
          << util::fmt(report.replicationFactor, 6)
          << ", \"vertex_cut_ratio\": " << util::fmt(report.vertexCutRatio, 6)
          << ", \"edge_imbalance\": " << util::fmt(report.edgeImbalance, 6)
          << ", \"copy_imbalance\": " << util::fmt(report.copyImbalance, 6)
          << ", \"max_edge_load\": " << report.maxEdgeLoad << "}";
    }
    out << "]}";
    table.print(std::cout);
    std::cout << "  (HSH(v) edge-cut ratio: " << util::fmt(edgeCut, 3)
              << " — the cost axis the edge strategies trade for RF)\n\n";
  }
  out << "]}\n";

  std::cout << "edge_partition: wrote " << outPath << "\n"
            << "CSV: " << bench::resultsDir() << "/edge_partition.csv\n";
  return 0;
}
