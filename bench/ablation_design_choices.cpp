// Ablations — not a paper figure: quantifies the design choices docs/DESIGN.md §5
// calls out, each against the configuration the paper chose.
//
//  1. capacity quotas Q_t(i,j) = C_t(j)/(k-1) on/off  -> densification
//  2. deferred vs instant migration                   -> lost messages
//  3. convergence window (5 / 30 / 60)                -> premature stops
//  4. capacity headroom (1.01 / 1.1 / 1.5)            -> quality vs balance
//  5. vertex- vs edge-balanced capacities (§6 #1)     -> degree-load balance
//  6. hotspot-aware capacity derating (§6 #2)         -> busiest-worker load
//  7. locality sweep (Watts-Strogatz beta)            -> what the heuristic
//                                                        can and cannot exploit

#include <iostream>

#include <numeric>

#include "apps/degree_count.h"
#include "apps/pagerank.h"
#include "bench_common.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "gen/watts_strogatz.h"
#include "metrics/balance.h"
#include "pregel/engine.h"
#include "util/csv.h"

using namespace xdgp;

namespace {

core::AdaptiveOptions baseOptions(std::uint64_t seed) {
  core::AdaptiveOptions options;
  options.k = 9;
  options.seed = seed;
  return options;
}

void quotaAblation(std::uint64_t seed, util::CsvWriter& csv) {
  std::cout << "1) Capacity quotas (64kcube, k=9)\n";
  util::TablePrinter table({"quota", "cut ratio", "imbalance", "densification"});
  for (const bool enforce : {true, false}) {
    core::AdaptiveOptions options = baseOptions(seed);
    options.enforceQuota = enforce;
    graph::DynamicGraph g = gen::mesh3d(40, 40, 40);
    metrics::Assignment a = bench::initialAssignment(g, "RND", 9, 1.1, seed);
    core::AdaptiveEngine engine(std::move(g), std::move(a), options);
    engine.runToConvergence(5'000);
    const auto balance = metrics::balanceReport(engine.state().assignment(), 9);
    table.addRow({enforce ? "on (paper)" : "off",
                  util::fmt(engine.cutRatio(), 3), util::fmt(balance.imbalance, 3),
                  util::fmt(balance.densification, 3)});
    csv.addRow({"quota", enforce ? "on" : "off", util::fmt(engine.cutRatio(), 4),
                util::fmt(balance.imbalance, 4)});
  }
  table.print(std::cout);
  std::cout << "(quota off densifies: imbalance grows past the 1.1 cap)\n\n";
}

void deferredAblation(std::uint64_t seed, std::size_t threads,
                      util::CsvWriter& csv) {
  std::cout << "2) Deferred vs instant migration (mesh 16^3, DegreeCount probe)\n";
  util::TablePrinter table(
      {"migration", "lost messages", "migrations", "delivery errors"});
  for (const bool deferred : {true, false}) {
    graph::DynamicGraph g = gen::mesh3d(16, 16, 16);
    pregel::EngineOptions options;
    options.numWorkers = 9;
    options.adaptive = true;
    options.deferredMigration = deferred;
    options.partitioner.seed = seed;
    options.threads = threads;
    pregel::Engine<apps::DegreeCountProgram> engine(
        g, bench::initialAssignment(g, "HSH", 9, 1.1, seed), options);
    std::size_t lost = 0, migrations = 0, wrongCounts = 0;
    for (int round = 0; round < 30; ++round) {
      lost += engine.runSuperstep().lostMessages;
      const auto odd = engine.runSuperstep();
      lost += odd.lostMessages;
      migrations += odd.migrationsExecuted;
      g.forEachVertex([&](graph::VertexId v) {
        wrongCounts += engine.value(v) != engine.graph().degree(v);
      });
    }
    table.addRow({deferred ? "deferred (paper, Fig. 3 bottom)" : "instant (Fig. 3 top)",
                  std::to_string(lost), std::to_string(migrations),
                  std::to_string(wrongCounts)});
    csv.addRow({"deferred", deferred ? "on" : "off", std::to_string(lost),
                std::to_string(wrongCounts)});
  }
  table.print(std::cout);
  std::cout << "(instant migration loses in-flight messages and corrupts results)\n\n";
}

void windowAblation(std::uint64_t seed, util::CsvWriter& csv) {
  std::cout << "3) Convergence window (plc10000, k=9, 5 reps)\n";
  util::TablePrinter table({"window", "converged at", "cut ratio"});
  for (const std::size_t window : {5ul, 30ul, 60ul}) {
    util::RunningStat when, cuts;
    for (std::uint64_t rep = 0; rep < 5; ++rep) {
      util::Rng genRng(seed + rep);
      core::AdaptiveOptions options = baseOptions(seed + rep * 977);
      options.convergenceWindow = window;
      const auto run = bench::runAdaptive(
          gen::powerlawCluster(10'000, 13, 0.1, genRng), "HSH", options);
      when.add(static_cast<double>(run.convergenceIteration));
      cuts.add(run.finalCutRatio);
    }
    table.addRow({std::to_string(window) + (window == 30 ? " (paper)" : ""),
                  util::fmtPm(when.mean(), when.stderror(), 1),
                  util::fmtPm(cuts.mean(), cuts.stderror(), 3)});
    csv.addRow({"window", std::to_string(window), util::fmt(cuts.mean(), 4),
                util::fmt(when.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "(short windows declare victory during stochastic lulls)\n\n";
}

void headroomAblation(std::uint64_t seed, util::CsvWriter& csv) {
  std::cout << "4) Capacity headroom (64kcube, k=9)\n";
  util::TablePrinter table({"capacity factor", "cut ratio", "imbalance"});
  for (const double factor : {1.01, 1.1, 1.5}) {
    core::AdaptiveOptions options = baseOptions(seed);
    options.capacityFactor = factor;
    graph::DynamicGraph g = gen::mesh3d(40, 40, 40);
    metrics::Assignment a = bench::initialAssignment(g, "RND", 9, factor, seed);
    core::AdaptiveEngine engine(std::move(g), std::move(a), options);
    engine.runToConvergence(5'000);
    const auto balance = metrics::balanceReport(engine.state().assignment(), 9);
    table.addRow({util::fmt(factor, 2) + (factor == 1.1 ? " (paper)" : ""),
                  util::fmt(engine.cutRatio(), 3),
                  util::fmt(balance.imbalance, 3)});
    csv.addRow({"headroom", util::fmt(factor, 2), util::fmt(engine.cutRatio(), 4),
                util::fmt(balance.imbalance, 4)});
  }
  table.print(std::cout);
  std::cout << "(more headroom buys cut quality at the price of imbalance)\n\n";
}

void balanceModeAblation(std::uint64_t seed, util::CsvWriter& csv) {
  std::cout << "5) Vertex- vs edge-balanced capacities (plc10000, k=6; paper §6 #1)\n";
  util::TablePrinter table(
      {"balance mode", "cut ratio", "vertex imbalance", "degree imbalance"});
  util::Rng genRng(seed);
  const graph::DynamicGraph g = gen::powerlawCluster(10'000, 13, 0.1, genRng);
  const metrics::Assignment initial =
      bench::initialAssignment(g, "RND", 6, 1.1, seed);
  for (const core::BalanceMode mode :
       {core::BalanceMode::kVertices, core::BalanceMode::kEdges}) {
    core::AdaptiveOptions options = baseOptions(seed);
    options.k = 6;
    options.balanceMode = mode;
    core::AdaptiveEngine engine(g, initial, options);
    engine.runToConvergence(5'000);
    const auto vertexBalance = metrics::balanceReport(engine.state().assignment(), 6);
    const auto& degLoads = engine.state().degreeLoads();
    const double totalDeg = static_cast<double>(
        std::accumulate(degLoads.begin(), degLoads.end(), std::size_t{0}));
    const double degImbalance =
        static_cast<double>(*std::max_element(degLoads.begin(), degLoads.end())) *
        6.0 / totalDeg;
    const bool edges = mode == core::BalanceMode::kEdges;
    table.addRow({edges ? "edges (sec.6 ext)" : "vertices (paper)",
                  util::fmt(engine.cutRatio(), 3),
                  util::fmt(vertexBalance.imbalance, 3),
                  util::fmt(degImbalance, 3)});
    csv.addRow({"balance", edges ? "edges" : "vertices",
                util::fmt(engine.cutRatio(), 4), util::fmt(degImbalance, 4)});
  }
  table.print(std::cout);
  std::cout << "(edge balancing equalises per-worker message load on skewed "
               "graphs)\n\n";
}

void hotspotAblation(std::uint64_t seed, std::size_t threads,
                     util::CsvWriter& csv) {
  std::cout << "6) Hotspot-aware capacity derating (mesh 10^3, PageRank; paper §6 #2)\n";
  util::TablePrinter table(
      {"hotspot awareness", "max worker compute", "mean worker compute", "cut ratio"});
  const graph::DynamicGraph g = gen::mesh3d(10, 10, 10);
  const metrics::Assignment initial =
      bench::initialAssignment(g, "HSH", 9, 1.1, seed);
  for (const bool aware : {false, true}) {
    pregel::EngineOptions options;
    options.numWorkers = 9;
    options.adaptive = true;
    options.partitioner.hotspotAware = aware;
    options.partitioner.seed = seed;
    options.threads = threads;
    apps::PageRankProgram app;
    app.setNumVertices(g.numVertices());
    pregel::Engine<apps::PageRankProgram> engine(g, initial, options, app);
    double maxUnits = 0.0, totalUnits = 0.0;
    std::size_t samples = 0;
    for (int step = 0; step < 150; ++step) {
      const auto stats = engine.runSuperstep();
      if (step >= 100) {  // settled regime
        maxUnits += stats.maxWorkerComputeUnits;
        totalUnits += stats.computeUnits;
        ++samples;
      }
    }
    const double denominator = static_cast<double>(samples);
    table.addRow({aware ? "on (sec.6 ext)" : "off (paper)",
                  util::fmt(maxUnits / denominator, 1),
                  util::fmt(totalUnits / denominator / 9.0, 1),
                  util::fmt(engine.cutRatio(), 3)});
    csv.addRow({"hotspot", aware ? "on" : "off",
                util::fmt(maxUnits / denominator, 2),
                util::fmt(engine.cutRatio(), 4)});
  }
  table.print(std::cout);
  std::cout << "(derating hot partitions narrows the busiest-worker gap)\n\n";
}

void localityAblation(std::uint64_t seed, util::CsvWriter& csv) {
  std::cout << "7) Locality sweep: Watts-Strogatz rewiring beta (n=5000, k=8)\n";
  util::TablePrinter table({"beta", "initial (RND)", "after iterative"});
  for (const double beta : {0.0, 0.05, 0.2, 0.5, 1.0}) {
    util::Rng genRng(seed);
    graph::DynamicGraph g = gen::wattsStrogatz(5'000, 8, beta, genRng);
    core::AdaptiveOptions options = baseOptions(seed);
    options.k = 8;
    const metrics::Assignment initial =
        bench::initialAssignment(g, "RND", 8, 1.1, seed);
    core::AdaptiveEngine engine(std::move(g), initial, options);
    const double before = engine.cutRatio();
    engine.runToConvergence(5'000);
    table.addRow({util::fmt(beta, 2), util::fmt(before, 3),
                  util::fmt(engine.cutRatio(), 3)});
    csv.addRow({"locality", util::fmt(beta, 2), util::fmt(before, 4),
                util::fmt(engine.cutRatio(), 4)});
  }
  table.print(std::cout);
  std::cout << "(the heuristic recovers exactly as much structure as the graph "
               "has)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.getUint64("seed", 42);
  // Compute-phase threads for the pregel-backed ablations (2 and 6); the
  // sharded runtime's trajectory is thread-count-invariant, so this cannot
  // change any ablation outcome — only its wall time.
  const auto threads = static_cast<std::size_t>(flags.getInt("threads", 1));
  flags.finish();

  std::cout << "Design-choice ablations (docs/DESIGN.md §5)\n\n";
  util::CsvWriter csv(bench::resultsDir() + "/ablation_design_choices.csv",
                      {"ablation", "setting", "metric1", "metric2"});
  quotaAblation(seed, csv);
  deferredAblation(seed, threads, csv);
  windowAblation(seed, csv);
  headroomAblation(seed, csv);
  balanceModeAblation(seed, csv);
  hotspotAblation(seed, threads, csv);
  localityAblation(seed, csv);
  std::cout << "CSV: " << bench::resultsDir() << "/ablation_design_choices.csv\n";
  return 0;
}
