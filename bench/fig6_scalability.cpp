// Figure 6 — "Evolution of cut ratio and convergence time for a family of
// meshes (red) and power law graphs (blue) ranging from 1000 vertices to
// 300000. 9 partitions, with s = 0.5."
//
// Expected shape (paper): mesh convergence time grows ~O(log N) while its
// cut ratio slightly improves with size; power-law convergence grows slower
// and its cut ratio stays nearly constant (slightly degrading).
//
// The ladder now extends past the paper's 300k ceiling to 1M / 3M / 10M,
// gated by --max-vertices (default 300000, so the default run reproduces the
// figure unchanged). Sizes above 300k generate through the parallel
// deterministic generators (gen/parallel.h) — the serial Holme–Kim pool
// would dominate the run there — and report generation seconds alongside the
// partition-quality columns. The full-decade trajectory with memory
// accounting lives in bench/scale_decades.cpp.

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "gen/mesh3d.h"
#include "gen/parallel.h"
#include "gen/powerlaw_cluster.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace xdgp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto reps = static_cast<std::size_t>(flags.getInt("reps", 3));
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const std::uint64_t seed = flags.getUint64("seed", 42);
  const auto maxVertices =
      static_cast<std::size_t>(flags.getInt("max-vertices", 300'000));
  flags.finish();

  // The paper's x axis (its mesh sizes come from near-cubic boxes), extended
  // by the scale-pass sizes behind --max-vertices.
  const std::vector<std::size_t> sizes{1'000,   3'000,     9'900,
                                       29'700,  99'000,    300'000,
                                       1'000'000, 3'000'000, 10'000'000};
  constexpr std::size_t kPaperCeiling = 300'000;

  std::cout << "Figure 6: cut ratio and convergence time vs graph size\n"
            << "(k = " << k << ", s = 0.5, hash initial partitioning, reps <= "
            << reps << ")\n\n";
  util::TablePrinter table(
      {"family", "|V|", "cut ratio", "convergence time", "gen s"});
  util::CsvWriter csv(bench::resultsDir() + "/fig6_scalability.csv",
                      {"family", "vertices", "cut_ratio_mean", "cut_ratio_stderr",
                       "convergence_mean", "convergence_stderr", "gen_seconds"});

  for (const std::string family : {"mesh", "plaw"}) {
    for (const std::size_t n : sizes) {
      if (n > maxVertices) continue;
      // Repetitions shrink for the largest sizes to bound the default run.
      const std::size_t repsHere =
          n >= 100'000 ? std::max<std::size_t>(1, reps / 3) : reps;
      util::RunningStat cuts, convergence, genSeconds;
      for (std::size_t rep = 0; rep < repsHere; ++rep) {
        util::Rng genRng(seed + rep);
        const util::WallTimer genTimer;
        graph::DynamicGraph g;
        if (family == "mesh") {
          g = n > kPaperCeiling ? gen::mesh3dApproxParallel(n)
                                : gen::mesh3dApprox(n);
        } else {
          // Power-law family with the paper's parameters: intended average
          // degree D = log2(|V|) => m = D/2, p = 0.1.
          const auto m = static_cast<std::size_t>(
              std::max(2.0, std::round(std::log2(static_cast<double>(n)) / 2.0)));
          g = n > kPaperCeiling
                  ? gen::powerlawClusterParallel(n, m, 0.1, seed + rep)
                  : gen::powerlawCluster(n, m, 0.1, genRng);
        }
        genSeconds.add(genTimer.seconds());
        core::AdaptiveOptions options;
        options.k = k;
        options.seed = seed + rep * 1'000 + n;
        const api::RunReport run =
            bench::runAdaptive(std::move(g), "HSH", options);
        cuts.add(run.finalCutRatio);
        convergence.add(static_cast<double>(run.convergenceIteration));
      }
      table.addRow({family, std::to_string(n),
                    util::fmtPm(cuts.mean(), cuts.stderror(), 3),
                    util::fmtPm(convergence.mean(), convergence.stderror(), 1),
                    util::fmt(genSeconds.mean(), 2)});
      csv.addRow({family, std::to_string(n), util::fmt(cuts.mean(), 4),
                  util::fmt(cuts.stderror(), 4), util::fmt(convergence.mean(), 2),
                  util::fmt(convergence.stderror(), 2),
                  util::fmt(genSeconds.mean(), 3)});
      std::cerr << "[fig6] " << family << " n=" << n << " done\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV: " << bench::resultsDir() << "/fig6_scalability.csv\n";
  return 0;
}
