// Table 1 — "Summary of the datasets employed in this work."
//
// Regenerates every dataset from the catalog and prints the paper's columns
// next to the generated sizes, flagging substitutions and scaled defaults
// (see docs/DESIGN.md §2). `--full=true` also generates the two paper-scale rows
// at their default scaled size; they are listed either way.

#include <iostream>

#include "bench_common.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace xdgp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bool full = flags.getBool("full", false);
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();

  std::cout << "Table 1: Summary of the datasets employed in this work\n"
            << "(generated sizes from this repository's generators; 'substitute'\n"
            << " marks offline stand-ins for real downloads, docs/DESIGN.md §2)\n\n";

  util::TablePrinter table({"Name", "|V| paper", "|E| paper", "|V| generated",
                            "|E| generated", "Type", "Source"});
  util::CsvWriter csv(bench::resultsDir() + "/table1_datasets.csv",
                      {"name", "v_paper", "e_paper", "v_generated", "e_generated",
                       "type", "source"});

  util::Rng rng(seed);
  for (const auto& spec : gen::datasetCatalog()) {
    // The two paper-scale rows generate multi-million-vertex graphs; skip
    // them in the default quick pass but keep their rows in the table.
    const bool heavy = spec.generatedVertices > 1'500'000 ||
                       spec.paperEdges > 10'000'000;
    std::string vGen = "-", eGen = "-";
    if (!heavy || full) {
      util::WallTimer timer;
      const graph::DynamicGraph g = spec.make(rng);
      vGen = std::to_string(g.numVertices());
      eGen = std::to_string(g.numEdges());
      std::cerr << "[table1] " << spec.name << " generated in "
                << util::fmt(timer.seconds(), 1) << "s\n";
    }
    table.addRow({spec.name, std::to_string(spec.paperVertices),
                  std::to_string(spec.paperEdges), vGen, eGen, spec.type,
                  spec.source});
    csv.addRow({spec.name, std::to_string(spec.paperVertices),
                std::to_string(spec.paperEdges), vGen, eGen, spec.type,
                spec.source});
  }
  table.print(std::cout);
  std::cout << "\nCSV: " << csv.path() << "\n";
  return 0;
}
