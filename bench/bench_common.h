#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>

#include "api/partitioner_registry.h"
#include "api/pipeline.h"
#include "api/workload_registry.h"
#include "core/adaptive_engine.h"
#include "gen/dataset_catalog.h"
#include "metrics/cuts.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace xdgp::bench {

/// Where every harness drops its CSV series (created on demand). Override
/// with the XDGP_BENCH_DIR environment variable to redirect CI or sweep
/// output; defaults to bench_results/ in the working directory.
inline std::string resultsDir() {
  const char* override = std::getenv("XDGP_BENCH_DIR");
  const std::filesystem::path dir =
      (override != nullptr && *override != '\0') ? override : "bench_results";
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Initial assignment by registry strategy code over a dynamic graph.
inline metrics::Assignment initialAssignment(const graph::DynamicGraph& g,
                                             const std::string& code, std::size_t k,
                                             double capacityFactor,
                                             std::uint64_t seed) {
  return api::initialAssignment(g, code, k, capacityFactor, seed);
}

/// METIS-like reference cut ratio (the dashed line in Fig. 4).
inline double multilevelCutRatio(const graph::DynamicGraph& g, std::size_t k,
                                 double capacityFactor, std::uint64_t seed) {
  return metrics::cutRatio(g, initialAssignment(g, "METIS", k, capacityFactor, seed));
}

/// One adaptive run to convergence through the api::Pipeline front door.
/// options.k / capacityFactor / seed configure the whole pipeline (initial
/// partitioning included), exactly as they configured the hand-wired runs.
inline api::RunReport runAdaptive(graph::DynamicGraph g, const std::string& code,
                                  core::AdaptiveOptions options,
                                  std::size_t maxIterations = 20'000) {
  return api::Pipeline::fromGraph(std::move(g))
      .initial(code)
      .k(options.k)
      .capacityFactor(options.capacityFactor)
      .seed(options.seed)
      .adaptive(options)
      .maxIterations(maxIterations)
      .run();
}

}  // namespace xdgp::bench
