#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define XDGP_BENCH_HAS_RUSAGE 1
#endif

#include "api/partitioner_registry.h"
#include "api/pipeline.h"
#include "api/workload_registry.h"
#include "core/adaptive_engine.h"
#include "gen/dataset_catalog.h"
#include "metrics/cuts.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace xdgp::bench {

/// Where every harness drops its CSV series (created on demand). Override
/// with the XDGP_BENCH_DIR environment variable to redirect CI or sweep
/// output; defaults to bench_results/ in the working directory.
inline std::string resultsDir() {
  const char* override = std::getenv("XDGP_BENCH_DIR");
  const std::filesystem::path dir =
      (override != nullptr && *override != '\0') ? override : "bench_results";
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Peak resident set size of this process in bytes, for the memory columns
/// of the scale and serving benches (one shared helper — not a per-bench
/// copy). Primary source is VmHWM from /proc/self/status (Linux); the
/// portable fallback is getrusage's ru_maxrss (kilobytes on Linux, bytes on
/// macOS). Returns 0 when neither source is available.
inline std::size_t PeakRss() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kb = 0;
      fields >> kb;
      return kb * 1024;
    }
  }
#ifdef XDGP_BENCH_HAS_RUSAGE
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#ifdef __APPLE__
    return static_cast<std::size_t>(usage.ru_maxrss);
#else
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

/// Initial assignment by registry strategy code over a dynamic graph.
inline metrics::Assignment initialAssignment(const graph::DynamicGraph& g,
                                             const std::string& code, std::size_t k,
                                             double capacityFactor,
                                             std::uint64_t seed) {
  return api::initialAssignment(g, code, k, capacityFactor, seed);
}

/// METIS-like reference cut ratio (the dashed line in Fig. 4).
inline double multilevelCutRatio(const graph::DynamicGraph& g, std::size_t k,
                                 double capacityFactor, std::uint64_t seed) {
  return metrics::cutRatio(g, initialAssignment(g, "METIS", k, capacityFactor, seed));
}

/// One adaptive run to convergence through the api::Pipeline front door.
/// options.k / capacityFactor / seed configure the whole pipeline (initial
/// partitioning included), exactly as they configured the hand-wired runs.
inline api::RunReport runAdaptive(graph::DynamicGraph g, const std::string& code,
                                  core::AdaptiveOptions options,
                                  std::size_t maxIterations = 20'000) {
  return api::Pipeline::fromGraph(std::move(g))
      .initial(code)
      .k(options.k)
      .capacityFactor(options.capacityFactor)
      .seed(options.seed)
      .adaptive(options)
      .maxIterations(maxIterations)
      .run();
}

}  // namespace xdgp::bench
