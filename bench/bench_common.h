#pragma once

#include <filesystem>
#include <string>

#include "core/adaptive_engine.h"
#include "gen/dataset_catalog.h"
#include "graph/csr.h"
#include "metrics/cuts.h"
#include "partition/multilevel_partitioner.h"
#include "partition/partitioner.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace xdgp::bench {

/// Where every harness drops its CSV series (created on demand).
inline std::string resultsDir() {
  const std::filesystem::path dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Initial assignment by Table-style strategy code over a dynamic graph.
inline metrics::Assignment initialAssignment(const graph::DynamicGraph& g,
                                             const std::string& code, std::size_t k,
                                             double capacityFactor,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  return partition::makePartitioner(code)->partition(graph::CsrGraph::fromGraph(g),
                                                     k, capacityFactor, rng);
}

/// METIS-like reference cut ratio (the dashed line in Fig. 4).
inline double multilevelCutRatio(const graph::DynamicGraph& g, std::size_t k,
                                 double capacityFactor, std::uint64_t seed) {
  util::Rng rng(seed);
  const graph::CsrGraph csr = graph::CsrGraph::fromGraph(g);
  const auto assignment =
      partition::MultilevelPartitioner{}.partition(csr, k, capacityFactor, rng);
  return metrics::cutRatio(csr, assignment);
}

/// One adaptive run to convergence; returns {finalCutRatio, convergenceIteration}.
struct AdaptiveRunResult {
  double cutRatio = 0.0;
  double initialCutRatio = 0.0;
  std::size_t convergenceIteration = 0;
  bool converged = false;
};

inline AdaptiveRunResult runAdaptive(graph::DynamicGraph g, const std::string& code,
                                     core::AdaptiveOptions options,
                                     std::size_t maxIterations = 20'000) {
  metrics::Assignment assignment =
      initialAssignment(g, code, options.k, options.capacityFactor, options.seed);
  options.recordSeries = false;
  core::AdaptiveEngine engine(std::move(g), std::move(assignment), options);
  AdaptiveRunResult result;
  result.initialCutRatio = engine.cutRatio();
  const core::ConvergenceResult conv = engine.runToConvergence(maxIterations);
  result.cutRatio = engine.cutRatio();
  result.convergenceIteration = conv.convergenceIteration;
  result.converged = conv.converged;
  return result;
}

}  // namespace xdgp::bench
