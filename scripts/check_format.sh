#!/usr/bin/env bash
# Checks (default) or fixes (--fix) clang-format conformance for the C++
# tree. Intended as a pre-commit hook and as the CI format gate:
#   scripts/check_format.sh          # exit 1 if any file needs reformatting
#   scripts/check_format.sh --fix    # rewrite files in place
# When clang-format is not installed the check is skipped with exit 0, so
# local workflows on minimal machines are not hard-blocked.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [[ -z "$CLANG_FORMAT" ]]; then
  for candidate in clang-format clang-format-18 clang-format-17 clang-format-16 clang-format-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
      CLANG_FORMAT="$candidate"
      break
    fi
  done
fi
if [[ -z "$CLANG_FORMAT" ]]; then
  echo "check_format: clang-format not found; skipping (set CLANG_FORMAT to override)" >&2
  exit 0
fi

mapfile -t files < <(find src tests bench examples tools -name '*.h' -o -name '*.cpp' | sort)

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "check_format: reformatted ${#files[@]} files"
  exit 0
fi

failed=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" > /dev/null 2>&1; then
    echo "needs formatting: $f"
    failed=1
  fi
done
if [[ "$failed" -ne 0 ]]; then
  echo "check_format: run scripts/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format: ${#files[@]} files clean"
