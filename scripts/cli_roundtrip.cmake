# CTest smoke script: drive the xdgp_cli generate → partition → adapt
# pipeline end-to-end plus a windowed stream run, so the api::Pipeline and
# Session::stream facades behind every subcommand are exercised on each CI
# run. Invoked by the example_cli_roundtrip test:
#   cmake -DXDGP_CLI=<path> -DWORK_DIR=<scratch dir> -P cli_roundtrip.cmake

if(NOT DEFINED XDGP_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "cli_roundtrip.cmake needs -DXDGP_CLI=... and -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli step)
  execute_process(
    COMMAND ${XDGP_CLI} ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE status
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  message(STATUS "${step}:\n${output}")
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${step} failed with exit code ${status}")
  endif()
  # Exposed so callers can assert on the report a step printed.
  set(cli_output "${output}" PARENT_SCOPE)
endfunction()

run_cli("generate" --cmd=generate --dataset=3elt --out=graph.el)
run_cli("partition" --cmd=partition --graph=graph.el --strategy=DGR --k=9
        --out=initial.part)
run_cli("adapt" --cmd=adapt --graph=graph.el --assignment=initial.part --s=0.5
        --out=final.part)

run_cli("stream" --cmd=stream --workload=CDR --subscribers=2000 --weeks=2
        --k=4 --window=0.5 --csv=timeline.csv --jsonl=timeline.jsonl)

# Label-propagation smoke: the same adapt run through --engine=lpa must
# converge and leave an assignment (quality is the bench's concern; the CLI
# contract is that the selector reaches the registry and produces output).
run_cli("adapt (lpa)" --cmd=adapt --graph=graph.el --assignment=initial.part
        --engine=lpa --lpa-budget=2000 --out=lpa.part)

# Edge-partitioning (vertex-cut) smoke: generate → epartition → emetrics.
# Both steps must print a parseable replication-factor report, and the
# persisted .epart file must survive the re-read with the same numbers.
run_cli("epartition" --cmd=epartition --graph=graph.el --strategy=HDRF --k=4
        --out=edges.epart)
if(NOT cli_output MATCHES "replication_factor=[0-9]+\\.[0-9]+")
  message(FATAL_ERROR "epartition printed no parseable replication factor")
endif()
string(REGEX MATCH "replication_factor=[0-9]+\\.[0-9]+" epart_rf "${cli_output}")
run_cli("emetrics" --cmd=emetrics --epart=edges.epart --graph=graph.el)
if(NOT cli_output MATCHES "replication_factor=[0-9]+\\.[0-9]+")
  message(FATAL_ERROR "emetrics printed no parseable replication factor")
endif()
string(REGEX MATCH "replication_factor=[0-9]+\\.[0-9]+" emetrics_rf "${cli_output}")
if(NOT epart_rf STREQUAL emetrics_rf)
  message(FATAL_ERROR
          "replication factor changed across the epart round trip "
          "(${epart_rf} vs ${emetrics_rf})")
endif()

foreach(artifact graph.el initial.part final.part lpa.part timeline.csv
        timeline.jsonl edges.epart)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "round trip left no ${artifact}")
  endif()
endforeach()

# The streamed timeline must cover at least 2 windows (header + 2 rows).
file(STRINGS "${WORK_DIR}/timeline.csv" timeline_rows)
list(LENGTH timeline_rows timeline_row_count)
if(timeline_row_count LESS 3)
  message(FATAL_ERROR
          "stream produced fewer than 2 windows (${timeline_row_count} CSV rows)")
endif()

# Regression guard for the k-mismatch satellite: a --k that disagrees with
# the assignment file must fail loudly, not be silently overwritten.
execute_process(
  COMMAND ${XDGP_CLI} --cmd=adapt --graph=graph.el --assignment=initial.part
          --k=5 --out=should_not_exist.part
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE status
  OUTPUT_QUIET ERROR_QUIET)
if(status EQUAL 0)
  message(FATAL_ERROR "k mismatch against the assignment file was not rejected")
endif()

# ---- serving-layer smoke: serve, crash, restore, verify recovery ----------
# xdgp_serve on CHURN: an unfaulted run records the reference assignment; a
# checkpointing run with an injected crash must die with exit code 3 and
# leave a restorable checkpoint; --restore must finish the stream and land
# on the bit-identical assignment.
if(DEFINED XDGP_SERVE)
  function(run_serve step expect_status)
    execute_process(
      COMMAND ${XDGP_SERVE} ${ARGN}
      WORKING_DIRECTORY "${WORK_DIR}"
      RESULT_VARIABLE status
      OUTPUT_VARIABLE output
      ERROR_VARIABLE output)
    message(STATUS "${step}:\n${output}")
    if(NOT status EQUAL ${expect_status})
      message(FATAL_ERROR "${step} exited ${status}, expected ${expect_status}")
    endif()
  endfunction()

  set(serve_flags --workload=CHURN --vertices=400 --ticks=4 --rate=40 --k=4
      --query-threads=2)
  run_serve("serve (unfaulted)" 0 ${serve_flags} --out=serve_ref.part)
  run_serve("serve (crash@window=2)" 3 ${serve_flags} --checkpoint-dir=serve_ckpt
            "--fault=crash@window=2")
  if(NOT EXISTS "${WORK_DIR}/serve_ckpt/MANIFEST")
    message(FATAL_ERROR "crashed serve run left no committed checkpoint")
  endif()
  run_serve("serve (restore)" 0 --restore=serve_ckpt --out=serve_rec.part)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/serve_ref.part" "${WORK_DIR}/serve_rec.part"
    RESULT_VARIABLE assignments_differ)
  if(NOT assignments_differ EQUAL 0)
    message(FATAL_ERROR
            "recovered assignment differs from the unfaulted run's")
  endif()

  # LPA + elastic k through the serving CLI: grow 4 -> 6 at window 1, retire
  # the grown pair at window 2, crash at window 3, restore from the v2
  # checkpoint (which must carry the engine selector, the live k, and the
  # retired set) and land on the bit-identical final assignment.
  # ',' separates the resize ops (';' would split the CMake list).
  set(lpa_serve_flags ${serve_flags} --engine=lpa
      --resize=grow@1:2,shrink@2:4+5)
  run_serve("serve lpa elastic (unfaulted)" 0 ${lpa_serve_flags}
            --out=lpa_serve_ref.part)
  run_serve("serve lpa elastic (crash@window=3)" 3 ${lpa_serve_flags}
            --checkpoint-dir=lpa_serve_ckpt "--fault=crash@window=3")
  if(NOT EXISTS "${WORK_DIR}/lpa_serve_ckpt/MANIFEST")
    message(FATAL_ERROR "crashed lpa serve run left no committed checkpoint")
  endif()
  run_serve("serve lpa elastic (restore)" 0 --restore=lpa_serve_ckpt
            --out=lpa_serve_rec.part)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/lpa_serve_ref.part" "${WORK_DIR}/lpa_serve_rec.part"
    RESULT_VARIABLE lpa_assignments_differ)
  if(NOT lpa_assignments_differ EQUAL 0)
    message(FATAL_ERROR
            "recovered lpa elastic assignment differs from the unfaulted run's")
  endif()
endif()
