# CTest smoke script: drive the xdgp_cli generate → partition → adapt
# pipeline end-to-end plus a windowed stream run, so the api::Pipeline and
# Session::stream facades behind every subcommand are exercised on each CI
# run. Invoked by the example_cli_roundtrip test:
#   cmake -DXDGP_CLI=<path> -DWORK_DIR=<scratch dir> -P cli_roundtrip.cmake

if(NOT DEFINED XDGP_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "cli_roundtrip.cmake needs -DXDGP_CLI=... and -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli step)
  execute_process(
    COMMAND ${XDGP_CLI} ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE status
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  message(STATUS "${step}:\n${output}")
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${step} failed with exit code ${status}")
  endif()
endfunction()

run_cli("generate" --cmd=generate --dataset=3elt --out=graph.el)
run_cli("partition" --cmd=partition --graph=graph.el --strategy=DGR --k=9
        --out=initial.part)
run_cli("adapt" --cmd=adapt --graph=graph.el --assignment=initial.part --s=0.5
        --out=final.part)

run_cli("stream" --cmd=stream --workload=CDR --subscribers=2000 --weeks=2
        --k=4 --window=0.5 --csv=timeline.csv --jsonl=timeline.jsonl)

foreach(artifact graph.el initial.part final.part timeline.csv timeline.jsonl)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "round trip left no ${artifact}")
  endif()
endforeach()

# The streamed timeline must cover at least 2 windows (header + 2 rows).
file(STRINGS "${WORK_DIR}/timeline.csv" timeline_rows)
list(LENGTH timeline_rows timeline_row_count)
if(timeline_row_count LESS 3)
  message(FATAL_ERROR
          "stream produced fewer than 2 windows (${timeline_row_count} CSV rows)")
endif()

# Regression guard for the k-mismatch satellite: a --k that disagrees with
# the assignment file must fail loudly, not be silently overwritten.
execute_process(
  COMMAND ${XDGP_CLI} --cmd=adapt --graph=graph.el --assignment=initial.part
          --k=5 --out=should_not_exist.part
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE status
  OUTPUT_QUIET ERROR_QUIET)
if(status EQUAL 0)
  message(FATAL_ERROR "k mismatch against the assignment file was not rejected")
endif()
