# CTest smoke script: drive the xdgp_cli generate → partition → adapt
# pipeline end-to-end, so the api::Pipeline facade behind every subcommand is
# exercised on each CI run. Invoked by the example_cli_roundtrip test:
#   cmake -DXDGP_CLI=<path> -DWORK_DIR=<scratch dir> -P cli_roundtrip.cmake

if(NOT DEFINED XDGP_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "cli_roundtrip.cmake needs -DXDGP_CLI=... and -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli step)
  execute_process(
    COMMAND ${XDGP_CLI} ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE status
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  message(STATUS "${step}:\n${output}")
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${step} failed with exit code ${status}")
  endif()
endfunction()

run_cli("generate" --cmd=generate --dataset=3elt --out=graph.el)
run_cli("partition" --cmd=partition --graph=graph.el --strategy=DGR --k=9
        --out=initial.part)
run_cli("adapt" --cmd=adapt --graph=graph.el --assignment=initial.part --s=0.5
        --out=final.part)

foreach(artifact graph.el initial.part final.part)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "round trip left no ${artifact}")
  endif()
endforeach()

# Regression guard for the k-mismatch satellite: a --k that disagrees with
# the assignment file must fail loudly, not be silently overwritten.
execute_process(
  COMMAND ${XDGP_CLI} --cmd=adapt --graph=graph.el --assignment=initial.part
          --k=5 --out=should_not_exist.part
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE status
  OUTPUT_QUIET ERROR_QUIET)
if(status EQUAL 0)
  message(FATAL_ERROR "k mismatch against the assignment file was not rejected")
endif()
