#!/usr/bin/env bash
# Builds Release and runs the micro-kernel suite, writing google-benchmark
# JSON to BENCH_<label>.json, plus the streaming sweep (stream_windows),
# writing per-window JSONL series (stream_<workload>.jsonl) — both into
# XDGP_BENCH_DIR so perf and windowed-quality trajectories accumulate
# across commits.
#
# Usage: scripts/run_bench.sh [label] [extra benchmark args...]
#   label        tag for the output file (default: current git short SHA)
#   XDGP_BENCH_DIR  output directory (default: bench_results, like the fig
#                   drivers)
#   BUILD_DIR    build directory (default: build-bench)
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo local)}"
shift || true
build_dir="${BUILD_DIR:-build-bench}"
out_dir="${XDGP_BENCH_DIR:-bench_results}"

cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
mkdir -p "$out_dir"

# The streaming sweep has no external dependency: always runs.
cmake --build "$build_dir" -j --target stream_windows
XDGP_BENCH_DIR="$out_dir" "$build_dir/bench/stream_windows"

# Sharded-runtime scaling: threads-vs-wall-seconds for the pregel compute
# phase (superstep_scaling.jsonl), CI-sized like the streaming sweep.
cmake --build "$build_dir" -j --target superstep_scaling
XDGP_BENCH_DIR="$out_dir" "$build_dir/bench/superstep_scaling" \
  --vertices=120000 --supersteps=4

# Serving-layer latency: query p50/p99 against the published snapshot while
# the service ingests churn. BENCH_serve.json at the repo root is the
# committed baseline; a labelled copy accumulates in $out_dir like the rest.
cmake --build "$build_dir" -j --target serve_latency
"$build_dir/bench/serve_latency" --out=BENCH_serve.json
cp BENCH_serve.json "$out_dir/BENCH_serve_${label}.json"

# Decade-scaling trajectory: gen/partition/converge wall-seconds, churn
# throughput, MemoryReport bytes, and peak RSS per vertex decade. CI runs a
# small cap (override with SCALE_MAX_VERTICES); the committed BENCH_scale.json
# at the repo root comes from a full --max-vertices=10000000 run.
cmake --build "$build_dir" -j --target scale_decades
"$build_dir/bench/scale_decades" \
  --max-vertices="${SCALE_MAX_VERTICES:-100000}" --out=BENCH_scale.json
cp BENCH_scale.json "$out_dir/BENCH_scale_${label}.json"

# Elastic-k trajectory: the LPA engine grows 8 -> 12 and shrinks 12 -> 6
# mid-stream under a migration budget, recording per-window migration cost,
# windows-to-drain, and cut-ratio recovery against fresh k-sized runs, plus
# the greedy-vs-LPA head-to-head. CI runs small (override via ELASTIC_ARGS);
# the committed BENCH_lpa.json at the repo root comes from full defaults.
cmake --build "$build_dir" -j --target elastic_k
# shellcheck disable=SC2086 — ELASTIC_ARGS is intentionally word-split.
"$build_dir/bench/elastic_k" ${ELASTIC_ARGS:-} --out=BENCH_lpa.json
cp BENCH_lpa.json "$out_dir/BENCH_lpa_${label}.json"

# Edge-partitioning quality: replication factor / vertex-cut / balance for
# every registered edge strategy next to the HSH vertex baseline on the
# TWEET/CDR/RMAT families. BENCH_partition.json at the repo root is the
# committed baseline, same convention as BENCH_serve.json.
cmake --build "$build_dir" -j --target edge_partition
"$build_dir/bench/edge_partition" --out=BENCH_partition.json
cp BENCH_partition.json "$out_dir/BENCH_partition_${label}.json"

# Absent target (Google Benchmark not installed) is a graceful no-op; an
# actual build failure must fail the job, not masquerade as "unavailable".
# find_package(benchmark) is config-mode, so the cache records whether it
# was found — generator-agnostic, unlike probing the Makefiles-only `help`
# target.
if grep -E '^benchmark_DIR:PATH=.*-NOTFOUND$' "$build_dir/CMakeCache.txt" >/dev/null; then
  echo "run_bench: micro_kernels target not configured (Google Benchmark" \
       "not found) — skipping the kernel suite." >&2
  exit 0
fi
cmake --build "$build_dir" -j --target micro_kernels

out_file="$out_dir/BENCH_${label}.json"
"$build_dir/bench/micro_kernels" \
  --benchmark_format=json \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  "$@"
echo "run_bench: wrote $out_file"
