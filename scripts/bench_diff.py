#!/usr/bin/env python3
"""Diff two bench JSON files (BENCH_*.json) on their key numeric fields.

Usage:
    scripts/bench_diff.py BASE.json NEW.json [--fields sub1,sub2,...]
                                             [--all] [--threshold PCT]

Both files are flattened to dot-separated keys (list entries by index, e.g.
``decades.2.publish_seconds``); keys whose path matches one of the field
substrings are compared, printing base value, new value, and % delta. Keys
present on only one side are reported as added/removed rather than hidden —
a renamed metric should be visible in the diff, not silently dropped.

The default field set covers the fields the committed baselines gate on:
throughput (qps, churn_events_per_sec, events/s), tail latency (p50/p99),
publication cost (publish_seconds, publish_full_seconds, publish_speedup,
ingest_seconds), and footprint (peak_rss_bytes, snapshot_resident_bytes).

Exit code is 0 unless a file is missing/unparsable, or --threshold is set
and some compared field regressed by more than PCT percent. CI runs this as
an advisory step (shared runners are too noisy to gate merges on wall
times); the threshold mode exists for local A/B runs.
"""

import argparse
import json
import sys

DEFAULT_FIELDS = [
    "qps",
    "latency_ns.p50",
    "latency_ns.p99",
    "churn_events_per_sec",
    "events_per_sec",
    "publish_seconds",
    "publish_amortized_seconds",
    "publish_full_seconds",
    "publish_speedup",
    "ingest_seconds",
    "partition_seconds",
    "converge_seconds",
    "replication_factor",
    "cut_ratio",
    "final_cut_ratio",
    "peak_rss_bytes",
    "snapshot_resident_bytes",
]

# Fields where a LARGER value is better; everything else (seconds, latency,
# bytes, cut/replication ratios) improves downward.
HIGHER_IS_BETTER = ("qps", "events_per_sec", "per_sec", "speedup")


def flatten(node, prefix=""):
    """Yields (dot.path, leaf) for every scalar leaf of a JSON tree."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from flatten(value, f"{prefix}{key}." if prefix or key else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from flatten(value, f"{prefix}{i}.")
    else:
        yield prefix.rstrip("."), node


def load_flat(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return dict(flatten(json.load(handle)))
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")


def wanted(key, fields):
    return any(field in key for field in fields)


def improved(key, delta_pct):
    if any(marker in key for marker in HIGHER_IS_BETTER):
        return delta_pct >= 0
    return delta_pct <= 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base", help="baseline JSON (e.g. the committed BENCH_*.json)")
    parser.add_argument("new", help="fresh JSON from the current run")
    parser.add_argument(
        "--fields",
        default=",".join(DEFAULT_FIELDS),
        help="comma-separated key substrings to compare (default: the "
        "committed-baseline field set)",
    )
    parser.add_argument(
        "--all", action="store_true", help="compare every numeric field"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 when any compared field regresses by more than PCT%%",
    )
    args = parser.parse_args()

    fields = [f for f in args.fields.split(",") if f]
    base = load_flat(args.base)
    new = load_flat(args.new)

    keys = sorted(set(base) | set(new))
    rows = []
    regressions = []
    for key in keys:
        in_base, in_new = key in base, key in new
        if not args.all and not wanted(key, fields):
            continue
        if in_base != in_new:
            rows.append((key, base.get(key, "—"), new.get(key, "—"), "added" if in_new else "removed"))
            continue
        old_value, new_value = base[key], new[key]
        if not isinstance(old_value, (int, float)) or isinstance(old_value, bool):
            if old_value != new_value:
                rows.append((key, old_value, new_value, "changed"))
            continue
        if old_value == new_value:
            continue
        if old_value == 0:
            rows.append((key, old_value, new_value, "n/a"))
            continue
        delta_pct = 100.0 * (new_value - old_value) / old_value
        rows.append((key, old_value, new_value, f"{delta_pct:+.1f}%"))
        if (
            args.threshold is not None
            and not improved(key, delta_pct)
            and abs(delta_pct) > args.threshold
        ):
            regressions.append((key, delta_pct))

    if not rows:
        print(f"bench_diff: {args.base} vs {args.new}: no differences in "
              f"compared fields")
        return 0

    width = max(len(row[0]) for row in rows)
    print(f"bench_diff: {args.base} -> {args.new}")
    print(f"{'field'.ljust(width)}  {'base':>16}  {'new':>16}  delta")
    for key, old_value, new_value, delta in rows:
        print(f"{key.ljust(width)}  {old_value!s:>16}  {new_value!s:>16}  {delta}")

    if regressions:
        names = ", ".join(f"{key} ({pct:+.1f}%)" for key, pct in regressions)
        print(f"bench_diff: REGRESSION beyond {args.threshold}%: {names}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
