#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "api/edge_partitioner_registry.h"
#include "epartition/edge_assignment.h"
#include "epartition/edge_partitioner.h"
#include "epartition/epart_io.h"
#include "epartition/hdrf_partitioner.h"
#include "epartition/ne_partitioner.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "metrics/replication.h"
#include "partition/partitioner.h"

namespace xdgp::epartition {
namespace {

using api::EdgePartitionerRegistry;
using graph::CsrGraph;
using graph::Edge;
using graph::VertexId;
using metrics::replicationFactor;
using metrics::replicationReport;

CsrGraph meshCsr() { return CsrGraph::fromGraph(gen::mesh3d(12, 12, 12)); }

CsrGraph plawCsr() {
  util::Rng rng(1);
  return CsrGraph::fromGraph(gen::powerlawCluster(2'000, 8, 0.1, rng));
}

EdgeAssignment run(const std::string& code, const CsrGraph& g, std::size_t k,
                   double balanceFactor, std::uint64_t seed) {
  util::Rng rng(seed);
  return EdgePartitionerRegistry::instance().create(code)->partition(
      g, k, balanceFactor, rng);
}

std::set<std::pair<VertexId, VertexId>> canonicalEdgeSet(const CsrGraph& g) {
  std::set<std::pair<VertexId, VertexId>> edges;
  g.forEachEdge([&](VertexId u, VertexId v) { edges.emplace(u, v); });
  return edges;
}

// ------------------------------------------------------------ capacity

TEST(EdgeCapacity, CeilOfBalancedLoadTimesFactor) {
  EXPECT_EQ(edgeCapacity(800, 8, 1.05), 105u);
  EXPECT_EQ(edgeCapacity(10, 3, 1.0), 4u);  // 3.33 rounds *up* or it can't fit
  EXPECT_EQ(edgeCapacity(0, 4, 1.05), 1u);  // floor of 1 keeps k=1 feasible
}

TEST(EdgeCapacity, RejectsZeroK) {
  EXPECT_THROW((void)edgeCapacity(10, 0, 1.05), std::invalid_argument);
}

// ------------------------------------------------------------ EdgeAssignment

TEST(EdgeAssignment, RejectsZeroK) {
  EXPECT_THROW(EdgeAssignment(10, 0), std::invalid_argument);
}

TEST(EdgeAssignment, RejectsOutOfRange) {
  EdgeAssignment a(4, 2);
  EXPECT_THROW(a.assign({0, 1}, 2), std::invalid_argument);  // p >= k
  EXPECT_THROW(a.assign({0, 4}, 0), std::invalid_argument);  // v >= idBound
}

TEST(EdgeAssignment, TracksReplicaSetsIncrementally) {
  EdgeAssignment a(5, 3);
  a.assign({0, 1}, 0);
  a.assign({2, 1}, 1);  // canonicalised to (1, 2)
  a.assign({1, 3}, 1);
  EXPECT_EQ(a.numEdges(), 3u);
  EXPECT_EQ(a.replicaSet(1), (std::vector<graph::PartitionId>{0, 1}));
  EXPECT_EQ(a.replicaCount(1), 2u);
  EXPECT_TRUE(a.hasReplica(1, 0));
  EXPECT_TRUE(a.hasReplica(1, 1));
  EXPECT_FALSE(a.hasReplica(1, 2));
  EXPECT_EQ(a.coveredVertices(), 4u);    // vertex 4 has no edge
  EXPECT_EQ(a.totalReplicas(), 5u);      // 1+2+1+1
  EXPECT_EQ(a.edgeLoads(), (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(a.copyLoads(), (std::vector<std::size_t>{2, 3, 0}));
}

TEST(EdgeAssignment, FromVertexAssignmentFollowsFirstEndpoint) {
  // Path 0-1-2 with vertices on partitions {0, 1, 0}: edge (0,1) follows
  // vertex 0 to partition 0, edge (1,2) follows vertex 1 to partition 1, so
  // vertex 1 is replicated on both — exactly the boundary vertex the vertex
  // cut pays for where the edge cut pays per cut edge.
  graph::DynamicGraph path(3);
  path.addEdge(0, 1);
  path.addEdge(1, 2);
  const CsrGraph g = CsrGraph::fromGraph(path);
  const metrics::Assignment vertexParts{0, 1, 0};
  const auto a = EdgeAssignment::fromVertexAssignment(g, vertexParts, 2);
  EXPECT_EQ(a.numEdges(), 2u);
  EXPECT_EQ(a.replicaSet(1), (std::vector<graph::PartitionId>{0, 1}));
  EXPECT_EQ(a.replicaCount(0), 1u);
  EXPECT_EQ(a.replicaCount(2), 1u);
  EXPECT_NEAR(replicationFactor(a), 4.0 / 3.0, 1e-12);
}

TEST(EdgeAssignment, FromVertexAssignmentSkipsDeadIds) {
  graph::DynamicGraph dyn = gen::mesh2d(4, 4);
  dyn.removeVertex(5);
  const CsrGraph g = CsrGraph::fromGraph(dyn);
  metrics::Assignment parts(dyn.idBound(), 0);
  parts[5] = graph::kNoPartition;
  const auto a = EdgeAssignment::fromVertexAssignment(g, parts, 2);
  EXPECT_EQ(a.numEdges(), g.numEdges());
  EXPECT_EQ(a.replicaCount(5), 0u);
}

// ------------------------------------------------------------ catalog

TEST(EdgeRegistry, CatalogListsAllBuiltins) {
  const auto codes = EdgePartitionerRegistry::instance().codes();
  EXPECT_GE(codes.size(), 5u);
  for (const std::string expected : {"HSH", "DBH", "HDRF", "NE", "SNE"}) {
    EXPECT_TRUE(EdgePartitionerRegistry::instance().has(expected)) << expected;
  }
  EXPECT_TRUE(std::is_sorted(codes.begin(), codes.end()));
}

TEST(EdgeRegistry, UnknownCodeNamesTheMenu) {
  try {
    (void)EdgePartitionerRegistry::instance().info("XYZ");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("XYZ"), std::string::npos);
    EXPECT_NE(what.find("HDRF"), std::string::npos);
  }
}

TEST(EdgeRegistry, RejectsDuplicatesAndEmptyEntries) {
  auto& registry = EdgePartitionerRegistry::instance();
  EXPECT_THROW(registry.add({.code = "DBH",
                             .summary = "dup",
                             .respectsBalanceCap = false,
                             .deterministicGivenSeed = true,
                             .make = [] {
                               return std::make_unique<HashEdgePartitioner>();
                             }}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({.code = "NEW",
                             .summary = "no factory",
                             .respectsBalanceCap = false,
                             .deterministicGivenSeed = true,
                             .make = nullptr}),
               std::invalid_argument);
}

TEST(EdgeRegistry, FactoryNamesMatchCodes) {
  for (const auto* info : EdgePartitionerRegistry::instance().infos()) {
    EXPECT_EQ(info->make()->name(), info->code);
  }
}

// ------------------------------------------------------------ property suite
//
// Registry-driven: every strategy added to EdgePartitionerRegistry — built-in
// or extension — is picked up automatically and held to the contract its own
// metadata promises.

class EdgeStrategyTest : public testing::TestWithParam<std::string> {};

TEST_P(EdgeStrategyTest, AssignsEveryEdgeExactlyOnce) {
  const CsrGraph g = meshCsr();
  const auto a = run(GetParam(), g, 8, 1.05, 7);
  ASSERT_EQ(a.numEdges(), g.numEdges());
  auto expected = canonicalEdgeSet(g);
  for (std::size_t i = 0; i < a.numEdges(); ++i) {
    const Edge e = a.edges()[i];
    ASSERT_LT(a.parts()[i], 8u);
    ASSERT_EQ(expected.erase({e.u, e.v}), 1u)
        << "edge (" << e.u << ", " << e.v << ") missing or duplicated";
  }
  EXPECT_TRUE(expected.empty());
}

TEST_P(EdgeStrategyTest, SameSeedSameResult) {
  const CsrGraph g = plawCsr();
  const auto a = run(GetParam(), g, 8, 1.05, 42);
  const auto b = run(GetParam(), g, 8, 1.05, 42);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.parts(), b.parts());
}

TEST_P(EdgeStrategyTest, KEqualOneIsDegenerate) {
  const CsrGraph g = meshCsr();
  const auto a = run(GetParam(), g, 1, 1.05, 10);
  const auto report = replicationReport(a);
  EXPECT_EQ(report.numEdges, g.numEdges());
  EXPECT_DOUBLE_EQ(report.replicationFactor, 1.0);
  EXPECT_DOUBLE_EQ(report.vertexCutRatio, 0.0);
}

TEST_P(EdgeStrategyTest, BalanceWithinPromisedBound) {
  const CsrGraph g = plawCsr();
  const auto a = run(GetParam(), g, 8, 1.05, 8);
  const std::size_t cap = edgeCapacity(g.numEdges(), 8, 1.05);
  const auto& info = EdgePartitionerRegistry::instance().info(GetParam());
  if (info.respectsBalanceCap) {
    for (const auto load : a.edgeLoads()) EXPECT_LE(load, cap);
  } else {
    // Hashing balances statistically; nothing should be pathological.
    EXPECT_LT(replicationReport(a).edgeImbalance, 1.5);
  }
}

TEST_P(EdgeStrategyTest, ReplicaSetsConsistentWithAssignments) {
  const CsrGraph g = meshCsr();
  const auto a = run(GetParam(), g, 8, 1.05, 11);
  // Recompute every derived quantity independently from the raw edge list
  // and compare with the incrementally maintained state.
  std::vector<std::set<graph::PartitionId>> sets(g.idBound());
  std::vector<std::size_t> loads(8, 0);
  for (std::size_t i = 0; i < a.numEdges(); ++i) {
    const Edge e = a.edges()[i];
    const auto p = a.parts()[i];
    sets[e.u].insert(p);
    sets[e.v].insert(p);
    ++loads[p];
  }
  EXPECT_EQ(a.edgeLoads(), loads);
  std::size_t total = 0, covered = 0;
  std::vector<std::size_t> copies(8, 0);
  for (VertexId v = 0; v < g.idBound(); ++v) {
    EXPECT_EQ(a.replicaCount(v), sets[v].size()) << "vertex " << v;
    EXPECT_EQ(a.replicaSet(v), std::vector<graph::PartitionId>(
                                   sets[v].begin(), sets[v].end()));
    for (graph::PartitionId p = 0; p < 8; ++p) {
      EXPECT_EQ(a.hasReplica(v, p), sets[v].count(p) > 0);
    }
    total += sets[v].size();
    covered += !sets[v].empty();
    for (const auto p : sets[v]) ++copies[p];
  }
  EXPECT_EQ(a.totalReplicas(), total);
  EXPECT_EQ(a.coveredVertices(), covered);
  EXPECT_EQ(a.copyLoads(), copies);
}

TEST_P(EdgeStrategyTest, HandlesGraphWithDeadIds) {
  graph::DynamicGraph dyn = gen::mesh2d(8, 8);
  dyn.removeVertex(10);
  dyn.removeVertex(20);
  const auto a = api::edgePartition(dyn, GetParam(), 4, 1.05, 12);
  EXPECT_EQ(a.numEdges(), dyn.numEdges());
  EXPECT_EQ(a.replicaCount(10), 0u);
  EXPECT_EQ(a.replicaCount(20), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, EdgeStrategyTest,
    testing::ValuesIn(EdgePartitionerRegistry::instance().codes()),
    [](const auto& info) { return info.param; });

// ------------------------------------------------------------ quality
//
// The acceptance ordering from ISSUE.md, on the paper-style skewed graph:
// uncoordinated hashing is the worst vertex cut, degree-based hashing
// improves it by anchoring each edge at its low-degree endpoint, and the
// stateful strategies (HDRF greedy co-location, NE neighbourhood growth)
// improve on blind hashing again.

TEST(EdgeQuality, HdrfAndNeBeatDbhBeatsRandomOnPowerLaw) {
  const CsrGraph g = plawCsr();
  const double hsh = replicationFactor(run("HSH", g, 8, 1.05, 3));
  const double dbh = replicationFactor(run("DBH", g, 8, 1.05, 3));
  const double hdrf = replicationFactor(run("HDRF", g, 8, 1.05, 3));
  const double ne = replicationFactor(run("NE", g, 8, 1.05, 3));
  EXPECT_LT(dbh, hsh);
  // On this family HDRF's greedy co-location and DBH's low-degree anchoring
  // land within noise of each other (which instance wins flips with the
  // fixture seed), both far below blind hashing; asserting a strict HDRF win
  // made the test a coin toss on the generator's output. NE's neighbourhood
  // growth is the one decisively better strategy.
  EXPECT_LT(hdrf, 0.99 * hsh);
  EXPECT_LT(hdrf, 1.02 * dbh);
  EXPECT_LT(ne, dbh);
  EXPECT_LT(ne, hdrf);
}

TEST(EdgeQuality, SneSitsBetweenHdrfAndNe) {
  // With the default 2|V| buffer the streaming variant keeps most of NE's
  // advantage; at minimum it must not regress past plain streaming HDRF by
  // more than noise.
  const CsrGraph g = plawCsr();
  const double hdrf = replicationFactor(run("HDRF", g, 8, 1.05, 3));
  const double sne = replicationFactor(run("SNE", g, 8, 1.05, 3));
  const double ne = replicationFactor(run("NE", g, 8, 1.05, 3));
  EXPECT_LE(ne, sne + 1e-12);
  EXPECT_LT(sne, 1.1 * hdrf);
}

TEST(EdgeQuality, NeExploitsMeshLocality) {
  // On a mesh the neighbourhood expansion should carve near-contiguous
  // blocks, far below the hashing baseline's replication.
  const CsrGraph g = meshCsr();
  const double ne = replicationFactor(run("NE", g, 8, 1.05, 5));
  const double hsh = replicationFactor(run("HSH", g, 8, 1.05, 5));
  EXPECT_LT(ne, 0.6 * hsh);
}

TEST(EdgeQuality, HdrfLambdaTradesReplicationForBalance) {
  // Large λ overwhelms C_REP, approaching round-robin: balance tightens
  // while the replication factor degrades versus the default λ = 1.1.
  const CsrGraph g = plawCsr();
  util::Rng rngA(4), rngB(4);
  const auto mild = HdrfPartitioner(1.1).partition(g, 8, 1.05, rngA);
  const auto harsh = HdrfPartitioner(1e6).partition(g, 8, 1.05, rngB);
  EXPECT_LT(replicationFactor(mild), replicationFactor(harsh));
  EXPECT_LE(replicationReport(harsh).edgeImbalance,
            replicationReport(mild).edgeImbalance + 1e-12);
}

TEST(EdgeQuality, SneBudgetAccessorAndSmallBudgetStillCovers) {
  const SnePartitioner sne(64);
  EXPECT_EQ(sne.maxBufferedEdges(), 64u);
  const CsrGraph g = plawCsr();
  util::Rng rng(6);
  const auto a = sne.partition(g, 8, 1.05, rng);
  EXPECT_EQ(a.numEdges(), g.numEdges());
  const std::size_t cap = edgeCapacity(g.numEdges(), 8, 1.05);
  for (const auto load : a.edgeLoads()) EXPECT_LE(load, cap);
}

// ------------------------------------------------------------ metrics

TEST(ReplicationReport, HandComputedExample) {
  // Triangle 0-1-2 plus pendant 2-3, k = 2: edges (0,1), (1,2) on partition
  // 0 and (0,2), (2,3) on partition 1.
  EdgeAssignment a(4, 2);
  a.assign({0, 1}, 0);
  a.assign({1, 2}, 0);
  a.assign({0, 2}, 1);
  a.assign({2, 3}, 1);
  const auto report = replicationReport(a);
  EXPECT_EQ(report.k, 2u);
  EXPECT_EQ(report.numEdges, 4u);
  EXPECT_EQ(report.coveredVertices, 4u);
  EXPECT_EQ(report.totalReplicas, 6u);  // 0:{0,1} 1:{0} 2:{0,1} 3:{1}
  EXPECT_DOUBLE_EQ(report.replicationFactor, 1.5);
  EXPECT_DOUBLE_EQ(report.vertexCutRatio, 0.5);
  EXPECT_DOUBLE_EQ(report.edgeImbalance, 1.0);
  EXPECT_DOUBLE_EQ(report.copyImbalance, 1.0);
  EXPECT_EQ(report.minEdgeLoad, 2u);
  EXPECT_EQ(report.maxEdgeLoad, 2u);
}

TEST(ReplicationReport, EmptyAssignmentIsFinite) {
  const auto report = replicationReport(EdgeAssignment(0, 4));
  EXPECT_EQ(report.numEdges, 0u);
  EXPECT_DOUBLE_EQ(report.replicationFactor, 0.0);
  EXPECT_DOUBLE_EQ(report.edgeImbalance, 0.0);
}

// ------------------------------------------------------------ IO

class EpartIoTest : public testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  // Unique per test: ctest runs each case in its own process, so a shared
  // name would let one case's garbage race another's round trip.
  std::string path_ =
      testing::TempDir() +
      testing::UnitTest::GetInstance()->current_test_info()->name() +
      std::string(".epart");
};

TEST_F(EpartIoTest, RoundTripsThroughDisk) {
  const CsrGraph g = meshCsr();
  const auto a = run("NE", g, 8, 1.05, 9);
  writeEdgeAssignment(a, path_);
  const auto b = readEdgeAssignment(path_);
  EXPECT_EQ(b.k(), a.k());
  EXPECT_EQ(b.idBound(), a.idBound());
  EXPECT_EQ(b.edges(), a.edges());
  EXPECT_EQ(b.parts(), a.parts());
  EXPECT_EQ(b.totalReplicas(), a.totalReplicas());
}

TEST_F(EpartIoTest, RejectsMissingFile) {
  EXPECT_THROW(readEdgeAssignment(testing::TempDir() + "does_not_exist.epart"),
               std::runtime_error);
}

TEST_F(EpartIoTest, RejectsMalformedHeaderAndRows) {
  {
    std::ofstream out(path_);
    out << "0 1 0\n";  // data before the "# k idBound" header
  }
  EXPECT_THROW(readEdgeAssignment(path_), std::runtime_error);
  {
    std::ofstream out(path_);
    out << "# 2 4\n0 9 1\n";  // endpoint 9 out of the declared idBound 4
  }
  EXPECT_THROW(readEdgeAssignment(path_), std::runtime_error);
  {
    std::ofstream out(path_);
    out << "# 2 4\n0 1 banana\n";
  }
  EXPECT_THROW(readEdgeAssignment(path_), std::runtime_error);
}

}  // namespace
}  // namespace xdgp::epartition
