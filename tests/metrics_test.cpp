#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/series.h"
#include "util/logging.h"

namespace xdgp {
namespace {

// ------------------------------------------------------------ series

metrics::IterationSeries sampleSeries() {
  metrics::IterationSeries series;
  series.add({1, 1'000, 50, 2.0});
  series.add({2, 800, 120, 3.5});
  series.add({3, 600, 10, 1.2});
  return series;
}

TEST(IterationSeries, AccessorsAndReductions) {
  const metrics::IterationSeries series = sampleSeries();
  EXPECT_EQ(series.size(), 3u);
  EXPECT_FALSE(series.empty());
  EXPECT_EQ(series.front().cuts, 1'000u);
  EXPECT_EQ(series.back().iteration, 3u);
  EXPECT_DOUBLE_EQ(series.peakTime(), 3.5);
  EXPECT_EQ(series.totalMigrations(), 180u);
}

TEST(IterationSeries, EmptySeries) {
  const metrics::IterationSeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_DOUBLE_EQ(series.peakTime(), 0.0);
  EXPECT_EQ(series.totalMigrations(), 0u);
}

TEST(IterationSeries, CsvRoundTrip) {
  const std::string path = testing::TempDir() + "/xdgp_series.csv";
  sampleSeries().writeCsv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "iteration,cuts,migrations,time_per_iteration");
  std::getline(in, line);
  EXPECT_EQ(line, "1,1000,50,2.0000");
  int rows = 1;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ logging

TEST(Logging, ThresholdFiltersMessages) {
  const util::LogLevel before = util::logThreshold();
  util::setLogThreshold(util::LogLevel::kWarn);
  testing::internal::CaptureStderr();
  util::logInfo() << "should be filtered";
  util::logWarn() << "should appear " << 42;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("filtered"), std::string::npos);
  EXPECT_NE(out.find("should appear 42"), std::string::npos);
  util::setLogThreshold(before);
}

TEST(Logging, OffSilencesEverything) {
  const util::LogLevel before = util::logThreshold();
  util::setLogThreshold(util::LogLevel::kOff);
  testing::internal::CaptureStderr();
  util::logError() << "even errors";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
  util::setLogThreshold(before);
}

}  // namespace
}  // namespace xdgp
