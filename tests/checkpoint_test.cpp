// Checkpoint/restore property suite.
//
// Round-trip over every registered workload: run a service to completion,
// re-run it with checkpointing plus a mid-stream injected crash, restore
// from disk, finish, and require the final TimelineReport, assignment, and
// engine trajectory state to equal the uninterrupted run's bit-exactly.
// (wallSeconds is the one legitimately nondeterministic field — excluded
// from cross-run comparison, but asserted lossless across write/read.)
//
// Corruption suite: a flipped payload byte, a truncated payload, a missing
// MANIFEST, a missing end sentinel, and a wrong version line must each
// surface as a versioned CheckpointError — never as silently wrong state.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/workload_registry.h"
#include "graph/io.h"
#include "graph/update_stream.h"
#include "serve/checkpoint.h"
#include "serve/service.h"

namespace xdgp::serve {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

/// Small-footprint configs per workload, sized so every case streams at
/// least two windows but the whole matrix stays fast.
api::WorkloadConfig caseConfig(const std::string& code) {
  api::WorkloadConfig config;
  if (code == "TWEET") {
    config.overrides = {{"users", 500}, {"rate", 2}, {"hours", 1}};
  } else if (code == "CDR") {
    config.overrides = {{"subscribers", 800}, {"weeks", 2}};
  } else if (code == "FFIRE") {
    config.overrides = {{"side", 16}, {"batches", 4}, {"burst", 30}};
  } else if (code == "CHURN") {
    config.overrides = {{"vertices", 400}, {"ticks", 4}, {"rate", 40}};
  } else if (code == "REPLAY") {
    // Replay a saved CHURN stream: events + initial graph via the same file
    // formats the checkpoint itself uses.
    const api::Workload source = api::WorkloadRegistry::instance().make(
        "CHURN", caseConfig("CHURN"));
    const std::string eventsPath = testing::TempDir() + "replay_case.evt";
    const std::string graphPath = testing::TempDir() + "replay_case.el";
    graph::writeEvents(source.stream.events(), eventsPath);
    graph::writeEdgeList(source.initial, graphPath);
    config.eventsPath = eventsPath;
    config.graphPath = graphPath;
  }
  return config;
}

PartitionService makeService(const std::string& code, ServeOptions options = {}) {
  api::Workload workload =
      api::WorkloadRegistry::instance().make(code, caseConfig(code));
  options.stream = workload.suggested;
  core::AdaptiveOptions adaptive;
  adaptive.k = 4;
  return PartitionService(std::move(workload), "HSH", adaptive,
                          std::move(options));
}

void expectWindowEq(const api::WindowReport& a, const api::WindowReport& b,
                    const std::string& where, bool includeWall = false) {
  EXPECT_EQ(a.index, b.index) << where;
  EXPECT_EQ(a.start, b.start) << where;
  EXPECT_EQ(a.end, b.end) << where;
  EXPECT_EQ(a.eventsDrained, b.eventsDrained) << where;
  EXPECT_EQ(a.eventsExpired, b.eventsExpired) << where;
  EXPECT_EQ(a.eventsApplied, b.eventsApplied) << where;
  EXPECT_EQ(a.vertices, b.vertices) << where;
  EXPECT_EQ(a.edges, b.edges) << where;
  EXPECT_EQ(a.iterations, b.iterations) << where;
  EXPECT_EQ(a.converged, b.converged) << where;
  EXPECT_EQ(a.migrations, b.migrations) << where;
  EXPECT_EQ(a.lostMessages, b.lostMessages) << where;
  EXPECT_EQ(a.cutRatio, b.cutRatio) << where;
  EXPECT_EQ(a.cutEdges, b.cutEdges) << where;
  EXPECT_EQ(a.balance.k, b.balance.k) << where;
  EXPECT_EQ(a.balance.totalVertices, b.balance.totalVertices) << where;
  EXPECT_EQ(a.balance.minLoad, b.balance.minLoad) << where;
  EXPECT_EQ(a.balance.maxLoad, b.balance.maxLoad) << where;
  EXPECT_EQ(a.balance.imbalance, b.balance.imbalance) << where;
  EXPECT_EQ(a.balance.densification, b.balance.densification) << where;
  if (includeWall) {
    EXPECT_EQ(a.wallSeconds, b.wallSeconds) << where;
  }
}

void expectTimelineEq(const api::TimelineReport& a, const api::TimelineReport& b) {
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    expectWindowEq(a.windows[i], b.windows[i], "window " + std::to_string(i));
  }
}

// -------------------------------------------- round-trip over workloads

class CheckpointRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckpointRoundTrip, CrashRestoreFinishMatchesUninterruptedRun) {
  const std::string code = GetParam();
  const std::string dir = freshDir("ckpt_rt_" + code);

  PartitionService reference = makeService(code);
  reference.run();
  const std::size_t totalWindows = reference.timeline().windows.size();
  ASSERT_GE(totalWindows, 2u) << code << " config streams too few windows";
  const std::size_t crashAt = std::max<std::size_t>(1, totalWindows / 2);

  ServeOptions options;
  options.checkpointDir = dir;
  options.faults =
      FaultPlan::parse("crash@window=" + std::to_string(crashAt));
  PartitionService faulted = makeService(code, std::move(options));
  EXPECT_THROW(faulted.run(), InjectedCrash);
  EXPECT_EQ(faulted.nextWindow(), crashAt);

  PartitionService recovered = PartitionService::restore(dir);
  EXPECT_EQ(recovered.nextWindow(), crashAt);
  recovered.run();

  expectTimelineEq(recovered.timeline(), reference.timeline());
  EXPECT_EQ(recovered.session().engine().state().assignment(),
            reference.session().engine().state().assignment());
  EXPECT_EQ(recovered.session().engine().iteration(),
            reference.session().engine().iteration());
  EXPECT_EQ(recovered.session().engine().quietIterations(),
            reference.session().engine().quietIterations());
  EXPECT_EQ(recovered.session().engine().lastActiveIteration(),
            reference.session().engine().lastActiveIteration());
}

INSTANTIATE_TEST_SUITE_P(Workloads, CheckpointRoundTrip,
                         ::testing::Values("TWEET", "CDR", "FFIRE", "CHURN",
                                           "REPLAY"));

// ------------------------------------ LPA + elastic-k crash round-trip

PartitionService makeLpaService(ServeOptions options) {
  api::Workload workload =
      api::WorkloadRegistry::instance().make("CHURN", caseConfig("CHURN"));
  options.stream = workload.suggested;
  core::AdaptiveOptions adaptive;
  adaptive.k = 8;
  adaptive.engine = core::EngineKind::kLpa;
  adaptive.lpaMigrationBudget = 50;
  return PartitionService(std::move(workload), "HSH", adaptive,
                          std::move(options));
}

TEST(CheckpointElastic, LpaResizedServiceRestoresBitIdentically) {
  // An LPA session that grows 8 -> 10 at window 1 and retires the two grown
  // partitions at window 2, checkpointed every window, crashed at window 3:
  // the restored service must resume over the *resized* partition set (v2
  // manifests carry engine kind, lpa knobs, live k, and the retired set)
  // and finish bit-identically to the uninterrupted run.
  const std::string dir = freshDir("ckpt_lpa_elastic");
  const std::vector<ServeOptions::ResizeOp> resizes =
      parseResizePlan("grow@1:2;shrink@2:8+9");
  const std::vector<graph::PartitionId> retired = {8, 9};

  ServeOptions refOptions;
  refOptions.resizes = resizes;
  PartitionService reference = makeLpaService(std::move(refOptions));
  reference.run();
  ASSERT_GE(reference.timeline().windows.size(), 4u);
  ASSERT_EQ(reference.session().engine().k(), 10u);
  ASSERT_EQ(reference.session().engine().activeK(), 8u);

  ServeOptions options;
  options.resizes = resizes;
  options.checkpointDir = dir;
  options.faults = FaultPlan::parse("crash@window=3");
  PartitionService faulted = makeLpaService(std::move(options));
  EXPECT_THROW(faulted.run(), InjectedCrash);
  EXPECT_EQ(faulted.nextWindow(), 3u);

  PartitionService recovered = PartitionService::restore(dir);
  EXPECT_EQ(recovered.session().engine().kind(), core::EngineKind::kLpa);
  EXPECT_EQ(recovered.session().engine().k(), 10u);
  EXPECT_EQ(recovered.session().engine().activeK(), 8u);
  EXPECT_EQ(recovered.session().engine().retiredPartitions(), retired);
  recovered.run();

  expectTimelineEq(recovered.timeline(), reference.timeline());
  EXPECT_EQ(recovered.session().engine().state().assignment(),
            reference.session().engine().state().assignment());
  EXPECT_EQ(recovered.session().engine().iteration(),
            reference.session().engine().iteration());
  EXPECT_EQ(recovered.session().engine().quietIterations(),
            reference.session().engine().quietIterations());
  EXPECT_EQ(recovered.session().engine().capacity().capacities(),
            reference.session().engine().capacity().capacities());

  // The elastic fields themselves survive a write/read round trip.
  const Checkpoint checkpoint = recovered.makeCheckpoint();
  writeCheckpoint(checkpoint, dir);
  const Checkpoint read = readCheckpoint(dir);
  EXPECT_EQ(read.engine, core::EngineKind::kLpa);
  EXPECT_EQ(read.k, 10u);
  EXPECT_EQ(read.retired, retired);
  EXPECT_EQ(read.lpaBalanceFactor, checkpoint.lpaBalanceFactor);
  EXPECT_EQ(read.lpaScoreEpsilon, checkpoint.lpaScoreEpsilon);
  EXPECT_EQ(read.lpaMigrationBudget, 50u);
}

TEST(CheckpointElastic, GreedyManifestWithRetiredPartitionsIsRejected) {
  // A retired set only makes sense for an elastic engine: hand-editing a
  // greedy manifest to carry one must fail loudly, not half-restore.
  const std::string dir = freshDir("ckpt_greedy_retired");
  PartitionService service = makeService("CHURN");
  service.run();
  Checkpoint checkpoint = service.makeCheckpoint();
  checkpoint.retired = {1};
  writeCheckpoint(checkpoint, dir);
  EXPECT_THROW((void)readCheckpoint(dir), CheckpointError);
}

// ------------------------------------------------- value-level round-trip

TEST(Checkpoint, WriteReadRoundTripsEveryField) {
  const std::string dir = freshDir("ckpt_value");
  PartitionService service = makeService("CHURN");
  service.run();
  const Checkpoint written = service.makeCheckpoint();
  writeCheckpoint(written, dir);
  const Checkpoint read = readCheckpoint(dir);

  EXPECT_EQ(read.workload, written.workload);
  EXPECT_EQ(read.strategy, written.strategy);
  EXPECT_EQ(read.k, written.k);
  EXPECT_EQ(read.seed, written.seed);
  EXPECT_EQ(read.capacityFactor, written.capacityFactor);
  EXPECT_EQ(read.willingness, written.willingness);
  EXPECT_EQ(read.convergenceWindow, written.convergenceWindow);
  EXPECT_EQ(read.enforceQuota, written.enforceQuota);
  EXPECT_EQ(read.balanceMode, written.balanceMode);
  EXPECT_EQ(read.maxIterations, written.maxIterations);
  EXPECT_EQ(read.stream.windowSpan, written.stream.windowSpan);
  EXPECT_EQ(read.stream.windowEvents, written.stream.windowEvents);
  EXPECT_EQ(read.stream.maxWindows, written.stream.maxWindows);
  EXPECT_EQ(read.stream.expirySpan, written.stream.expirySpan);
  EXPECT_EQ(read.stream.adapt, written.stream.adapt);
  EXPECT_EQ(read.stream.rescaleEachWindow, written.stream.rescaleEachWindow);
  EXPECT_EQ(read.stream.maxIterationsPerWindow,
            written.stream.maxIterationsPerWindow);
  EXPECT_EQ(read.nextWindow, written.nextWindow);
  EXPECT_EQ(read.engineIteration, written.engineIteration);
  EXPECT_EQ(read.engineQuiet, written.engineQuiet);
  EXPECT_EQ(read.engineLastActive, written.engineLastActive);
  EXPECT_EQ(read.capacities, written.capacities);
  EXPECT_EQ(read.assignment, written.assignment);
  EXPECT_EQ(read.events, written.events);  // timestamps must be lossless

  EXPECT_EQ(read.graph.numVertices(), written.graph.numVertices());
  EXPECT_EQ(read.graph.numEdges(), written.graph.numEdges());
  EXPECT_EQ(read.graph.idBound(), written.graph.idBound());
  written.graph.forEachVertex([&](graph::VertexId v) {
    EXPECT_TRUE(read.graph.hasVertex(v));
    EXPECT_EQ(read.graph.degree(v), written.graph.degree(v));
  });

  ASSERT_EQ(read.timeline.size(), written.timeline.size());
  for (std::size_t i = 0; i < read.timeline.size(); ++i) {
    // timeline.tsv stores wallSeconds losslessly, so the read-back rows
    // match including the wall column.
    expectWindowEq(read.timeline[i], written.timeline[i],
                   "window " + std::to_string(i), /*includeWall=*/true);
  }
}

// ------------------------------------------------------ corruption suite

/// A valid checkpoint directory to vandalise, one per test.
std::string vandalTarget(const std::string& name) {
  const std::string dir = freshDir("ckpt_bad_" + name);
  PartitionService service = makeService("CHURN");
  service.run();
  writeCheckpoint(service.makeCheckpoint(), dir);
  return dir;
}

void expectCheckpointError(const std::string& dir) {
  try {
    const Checkpoint checkpoint = readCheckpoint(dir);
    FAIL() << "readCheckpoint accepted a damaged checkpoint (nextWindow="
           << checkpoint.nextWindow << ")";
  } catch (const CheckpointError& error) {
    // Every rejection names the format version it was validating against.
    EXPECT_NE(std::string(error.what())
                  .find("checkpoint v" + std::to_string(kCheckpointVersion)),
              std::string::npos)
        << error.what();
  }
}

void flipByteInMiddle(const std::string& path) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file) << path;
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  ASSERT_GT(size, 0);
  const std::streamoff at = size / 2;
  file.seekg(at);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x20);
  file.seekp(at);
  file.write(&byte, 1);
}

TEST(CheckpointCorruption, MissingDirectory) {
  expectCheckpointError(testing::TempDir() + "ckpt_never_written");
}

TEST(CheckpointCorruption, MissingManifestMeansNoCheckpoint) {
  // The MANIFEST is the commit point: without it the payload files are an
  // incomplete write, not a checkpoint.
  const std::string dir = vandalTarget("nomanifest");
  fs::remove(dir + "/MANIFEST");
  expectCheckpointError(dir);
}

TEST(CheckpointCorruption, FlippedPayloadByteFailsChecksum) {
  for (const char* file :
       {"graph.evt", "assignment.part", "events.evt", "timeline.tsv"}) {
    const std::string dir = vandalTarget(std::string("flip_") + file);
    flipByteInMiddle(dir + "/" + file);
    expectCheckpointError(dir);
  }
}

TEST(CheckpointCorruption, TruncatedPayloadFailsChecksum) {
  const std::string dir = vandalTarget("truncate");
  const std::string path = dir + "/events.evt";
  const auto size = static_cast<std::uintmax_t>(fs::file_size(path));
  ASSERT_GT(size, 16u);
  fs::resize_file(path, size / 2);
  expectCheckpointError(dir);
}

TEST(CheckpointCorruption, ManifestWithoutEndSentinelIsTorn) {
  // A manifest that stops mid-file (torn write without the rename commit)
  // must not pass, even if every present key parses.
  const std::string dir = vandalTarget("noend");
  const std::string path = dir + "/MANIFEST";
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 1u);
  ASSERT_EQ(lines.back(), "end");
  lines.pop_back();
  {
    std::ofstream out(path, std::ios::trunc);
    for (const std::string& line : lines) out << line << "\n";
  }
  expectCheckpointError(dir);
}

TEST(CheckpointCorruption, WrongVersionLineIsRejected) {
  const std::string dir = vandalTarget("version");
  const std::string path = dir + "/MANIFEST";
  std::string contents;
  {
    std::ifstream in(path);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
      contents += first ? "# xdgp-checkpoint v999" : line;
      contents += "\n";
      first = false;
    }
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }
  expectCheckpointError(dir);
}

}  // namespace
}  // namespace xdgp::serve
