// Randomised long-run property tests: the invariants the paper's §2-§3
// arguments rest on, exercised under adversarial churn and across graph
// families, partition counts and willingness values.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "apps/degree_count.h"
#include "apps/pagerank.h"
#include "core/adaptive_engine.h"
#include "core/migration_policy.h"
#include "gen/erdos_renyi.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "gen/rmat.h"
#include "gen/watts_strogatz.h"
#include "graph/csr.h"
#include "metrics/balance.h"
#include "partition/multilevel_partitioner.h"
#include "partition/partitioner.h"
#include "pregel/engine.h"

namespace xdgp {
namespace {

using core::AdaptiveEngine;
using core::AdaptiveOptions;
using graph::DynamicGraph;
using graph::UpdateEvent;
using graph::VertexId;

DynamicGraph makeFamily(const std::string& family, std::uint64_t seed) {
  util::Rng rng(seed);
  if (family == "mesh2d") return gen::mesh2d(18, 18);
  if (family == "mesh3d") return gen::mesh3d(7, 7, 7);
  if (family == "plaw") return gen::powerlawCluster(400, 5, 0.2, rng);
  if (family == "rmat") {
    gen::RmatParams params;
    params.scale = 9;
    params.edgeFactor = 5;
    return gen::rmat(params, rng);
  }
  if (family == "smallworld") return gen::wattsStrogatz(400, 6, 0.1, rng);
  return gen::erdosRenyi(400, 1'200, rng);
}

metrics::Assignment initialAssignment(const DynamicGraph& g, std::size_t k,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  return partition::makePartitioner("RND")->partition(graph::CsrGraph::fromGraph(g),
                                                      k, 1.1, rng);
}

// ------------------------------------------------------------ adaptive fuzz

struct FuzzCase {
  std::string family;
  std::size_t k;
  double s;
};

class AdaptiveChurnFuzz : public testing::TestWithParam<FuzzCase> {};

TEST_P(AdaptiveChurnFuzz, InvariantsSurviveArbitraryChurn) {
  const auto& [family, k, s] = GetParam();
  DynamicGraph g = makeFamily(family, 17);
  AdaptiveOptions options;
  options.k = k;
  options.willingness = s;
  options.seed = 23;
  AdaptiveEngine engine(std::move(g), initialAssignment(makeFamily(family, 17), k, 5),
                        options);

  util::Rng churn(31);
  std::vector<std::size_t> bound(k);
  const auto refreshBound = [&] {
    for (std::size_t i = 0; i < k; ++i) {
      bound[i] = std::max(engine.capacity().capacity(i), engine.state().load(i));
    }
  };
  refreshBound();

  for (int round = 0; round < 25; ++round) {
    // A burst of random structural changes...
    std::vector<UpdateEvent> events;
    const std::size_t idSpace = engine.graph().idBound() + 8;
    for (int e = 0; e < 20; ++e) {
      const auto u = static_cast<VertexId>(churn.index(idSpace));
      const auto v = static_cast<VertexId>(churn.index(idSpace));
      switch (churn.below(6)) {
        case 0:
          events.push_back(UpdateEvent::addVertex(u));
          break;
        case 1:
          if (engine.graph().numVertices() > k * 4) {
            events.push_back(UpdateEvent::removeVertex(u));
          }
          break;
        case 2:
        case 3:
          events.push_back(UpdateEvent::addEdge(u, v));
          break;
        default:
          events.push_back(UpdateEvent::removeEdge(u, v));
          break;
      }
    }
    engine.applyUpdates(events);
    engine.rescaleCapacity();
    refreshBound();  // churn moves both loads and capacities

    // ... then a few adaptation iterations, with every invariant checked.
    for (int iter = 0; iter < 4; ++iter) {
      engine.step();
      ASSERT_EQ(engine.state().cutEdges(),
                metrics::cutEdges(engine.graph(), engine.state().assignment()))
          << family << " round " << round;
      std::size_t vertexCount = 0;
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_LE(engine.state().load(i), bound[i]) << family << " round " << round;
        vertexCount += engine.state().load(i);
      }
      ASSERT_EQ(vertexCount, engine.graph().numVertices());
      // Every alive vertex is assigned; every dead id is unassigned.
      const auto& assignment = engine.state().assignment();
      for (VertexId v = 0; v < engine.graph().idBound(); ++v) {
        if (engine.graph().hasVertex(v)) {
          ASSERT_LT(assignment[v], k);
        } else {
          ASSERT_EQ(assignment[v], graph::kNoPartition);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesKsWillingness, AdaptiveChurnFuzz,
    testing::Values(FuzzCase{"mesh2d", 4, 0.5}, FuzzCase{"mesh3d", 9, 0.5},
                    FuzzCase{"plaw", 6, 0.3}, FuzzCase{"rmat", 5, 0.7},
                    FuzzCase{"smallworld", 8, 0.5}, FuzzCase{"er", 3, 0.9}),
    [](const auto& info) {
      return info.param.family + "_k" + std::to_string(info.param.k);
    });

// ------------------------------------------------------------ pregel fuzz

TEST(PregelChurnFuzz, DeliveryOracleSurvivesChurnPlusMigration) {
  // The strongest end-to-end property: under random churn *and* background
  // migration, every odd superstep's received-ping count equals the current
  // degree of every vertex, and no message is ever lost.
  DynamicGraph g = gen::mesh3d(7, 7, 7);
  pregel::EngineOptions options;
  options.numWorkers = 7;
  options.adaptive = true;
  pregel::Engine<apps::DegreeCountProgram> engine(
      g, initialAssignment(g, 7, 3), options);

  util::Rng churn(37);
  for (int round = 0; round < 60; ++round) {
    // Mutations land between rounds (even superstep boundaries), so the
    // ping->count pair always runs on a stable topology.
    std::vector<UpdateEvent> events;
    const std::size_t idSpace = engine.graph().idBound() + 4;
    for (int e = 0; e < 6; ++e) {
      const auto u = static_cast<VertexId>(churn.index(idSpace));
      const auto v = static_cast<VertexId>(churn.index(idSpace));
      switch (churn.below(4)) {
        case 0:
          events.push_back(UpdateEvent::addEdge(u, v));
          break;
        case 1:
          events.push_back(UpdateEvent::removeEdge(u, v));
          break;
        case 2:
          events.push_back(UpdateEvent::addVertex(u));
          break;
        default:
          if (engine.graph().numVertices() > 50) {
            events.push_back(UpdateEvent::removeVertex(u));
          }
          break;
      }
    }
    engine.ingest(events);

    const auto even = engine.runSuperstep();
    const auto odd = engine.runSuperstep();
    ASSERT_EQ(even.lostMessages, 0u) << "round " << round;
    ASSERT_EQ(odd.lostMessages, 0u) << "round " << round;
    engine.graph().forEachVertex([&](VertexId v) {
      ASSERT_EQ(engine.value(v), engine.graph().degree(v))
          << "round " << round << " vertex " << v;
    });
  }
}

TEST(PregelChurnFuzz, FreezeThawUnderRandomBatches) {
  DynamicGraph g = gen::mesh2d(12, 12);
  pregel::EngineOptions options;
  options.numWorkers = 4;
  options.adaptive = true;
  pregel::Engine<apps::DegreeCountProgram> engine(
      g, initialAssignment(g, 4, 7), options);
  util::Rng churn(41);
  for (int round = 0; round < 20; ++round) {
    engine.freezeTopology();
    const auto before = engine.graph().numEdges();
    std::vector<UpdateEvent> events;
    for (int e = 0; e < 10; ++e) {
      events.push_back(UpdateEvent::addEdge(
          static_cast<VertexId>(churn.index(200)),
          static_cast<VertexId>(churn.index(200))));
    }
    engine.ingest(events);
    ASSERT_EQ(engine.graph().numEdges(), before) << "frozen topology mutated";
    engine.runSupersteps(2);
    engine.thawTopology();
    ASSERT_EQ(engine.state().cutEdges(),
              metrics::cutEdges(engine.graph(), engine.state().assignment()));
  }
}

// ------------------------------------------------------------ policy oracle

TEST(MigrationPolicyFuzz, MatchesBruteForceReference) {
  util::Rng rng(43);
  const std::size_t k = 7;
  core::MigrationPolicy policy(k);
  for (int trial = 0; trial < 3'000; ++trial) {
    // Random neighbourhood over a random assignment.
    const std::size_t n = 1 + rng.below(20);
    metrics::Assignment assignment(n + 1);
    for (auto& p : assignment) p = rng.below(k);
    std::vector<VertexId> neighbors;
    for (VertexId v = 1; v <= n; ++v) {
      if (rng.bernoulli(0.7)) neighbors.push_back(v);
    }
    const graph::PartitionId current = assignment[0];

    // Reference: histogram + strict-majority + prefer-stay.
    std::vector<std::size_t> counts(k, 0);
    for (const VertexId v : neighbors) ++counts[assignment[v]];
    const std::size_t best = *std::max_element(counts.begin(), counts.end());

    const graph::PartitionId target =
        policy.target(neighbors, assignment, current, rng.next());
    if (best == 0 || counts[current] == best) {
      ASSERT_EQ(target, graph::kNoPartition) << "trial " << trial;
    } else {
      ASSERT_NE(target, graph::kNoPartition) << "trial " << trial;
      ASSERT_EQ(counts[target], best) << "trial " << trial;
      ASSERT_NE(target, current) << "trial " << trial;
    }
  }
}

// ------------------------------------------------------------ multilevel sweep

class MultilevelSweep
    : public testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(MultilevelSweep, ValidBalancedAndBeatsRandom) {
  const auto& [family, k] = GetParam();
  const graph::CsrGraph csr = graph::CsrGraph::fromGraph(makeFamily(family, 51));
  util::Rng rng(53);
  const auto assignment =
      partition::MultilevelPartitioner{}.partition(csr, k, 1.1, rng);
  csr.forEachVertex([&](VertexId v) { ASSERT_LT(assignment[v], k); });
  const auto caps = partition::makeCapacities(csr.numVertices(), k, 1.1);
  EXPECT_TRUE(metrics::respectsCapacities(assignment, caps)) << family;
  const auto random =
      partition::makePartitioner("RND")->partition(csr, k, 1.1, rng);
  EXPECT_LE(metrics::cutRatio(csr, assignment), metrics::cutRatio(csr, random))
      << family;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesK, MultilevelSweep,
    testing::Combine(testing::Values("mesh2d", "mesh3d", "plaw", "rmat",
                                     "smallworld"),
                     testing::Values(std::size_t{2}, std::size_t{5},
                                     std::size_t{12})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------------ aggregator

/// Every vertex contributes 1.0; values adopt last superstep's global sum.
struct CountingProgram {
  using VertexValue = double;
  using MessageValue = std::uint8_t;
  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& value, std::span<const MessageValue>) {
    value = ctx.previousAggregate();  // what everyone reported last time
    ctx.aggregate(1.0);
    ctx.addComputeUnits(1.0);
  }
};

TEST(Aggregator, SumVisibleNextSuperstep) {
  const DynamicGraph g = gen::mesh2d(5, 5);
  pregel::EngineOptions options;
  options.numWorkers = 3;
  pregel::Engine<CountingProgram> engine(g, initialAssignment(g, 3, 9), options);
  const auto first = engine.runSuperstep();
  EXPECT_DOUBLE_EQ(first.aggregatedValue, 25.0);
  engine.runSuperstep();
  g.forEachVertex([&](VertexId v) { EXPECT_DOUBLE_EQ(engine.value(v), 25.0); });
  EXPECT_DOUBLE_EQ(engine.lastAggregate(), 25.0);
}

/// PageRank variant aggregating the total |Δrank| per superstep.
struct DeltaRank {
  using VertexValue = std::pair<double, double>;  // rank, previous
  using MessageValue = double;
  double n = 1.0;
  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue& value, std::span<const MessageValue> inbox) {
    double sum = 0.0;
    for (const double share : inbox) sum += share;
    const double next = ctx.superstep() == 0 ? 1.0 / n : 0.15 / n + 0.85 * sum;
    ctx.aggregate(std::abs(next - value.first));
    value = {next, value.first};
    if (ctx.degree() > 0) {
      ctx.sendToNeighbors(next / static_cast<double>(ctx.degree()));
    }
    ctx.addComputeUnits(1.0);
  }
};

TEST(Aggregator, PageRankConvergenceSignal) {
  // The canonical aggregator use: total |Δrank| per superstep shrinks, so an
  // operator can watch engine.lastAggregate() to decide the ranking settled.
  const DynamicGraph g = gen::mesh3d(5, 5, 5);
  DeltaRank program;
  program.n = static_cast<double>(g.numVertices());
  pregel::EngineOptions options;
  options.numWorkers = 4;
  pregel::Engine<DeltaRank> engine(g, initialAssignment(g, 4, 11), options,
                                   program);
  engine.runSupersteps(5);
  const double early = engine.lastAggregate();
  engine.runSupersteps(40);
  const double late = engine.lastAggregate();
  EXPECT_LT(late, early / 10.0);
}

}  // namespace
}  // namespace xdgp
