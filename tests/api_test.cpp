// The api layer: PartitionerRegistry metadata + the registry-driven shared
// property suite (every registered strategy is tested for free), and the
// Pipeline/Session builder with its RunReport.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "api/partitioner_registry.h"
#include "api/pipeline.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "graph/io.h"
#include "metrics/balance.h"
#include "partition/assignment_io.h"
#include "partition/partitioner.h"

namespace xdgp::api {
namespace {

using graph::CsrGraph;
using graph::VertexId;

CsrGraph meshCsr() { return CsrGraph::fromGraph(gen::mesh3d(12, 12, 12)); }

CsrGraph plawCsr() {
  util::Rng rng(1);
  return CsrGraph::fromGraph(gen::powerlawCluster(2'000, 8, 0.1, rng));
}

// ------------------------------------------------------------- registry

TEST(Registry, CatalogListsAllBuiltins) {
  const auto codes = PartitionerRegistry::instance().codes();
  EXPECT_GE(codes.size(), 7u);
  for (const std::string expected :
       {"HSH", "RND", "DGR", "MNN", "METIS", "RGR", "FNL"}) {
    EXPECT_TRUE(PartitionerRegistry::instance().has(expected)) << expected;
  }
  EXPECT_TRUE(std::is_sorted(codes.begin(), codes.end()));
}

TEST(Registry, PaperFactoryCodesAreASubset) {
  // The low-level makePartitioner factory and the registry must agree on the
  // paper's four figure strategies.
  for (const std::string& code : partition::initialStrategyCodes()) {
    EXPECT_TRUE(PartitionerRegistry::instance().has(code)) << code;
  }
}

TEST(Registry, StrategyNameMatchesCode) {
  for (const StrategyInfo* info : PartitionerRegistry::instance().infos()) {
    EXPECT_EQ(info->make()->name(), info->code);
    EXPECT_FALSE(info->summary.empty()) << info->code;
  }
}

TEST(Registry, UnknownCodeFailsWithTheMenu) {
  try {
    (void)PartitionerRegistry::instance().create("XYZ");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("XYZ"), std::string::npos);
    EXPECT_NE(what.find("DGR"), std::string::npos);  // menu is in the message
  }
}

TEST(Registry, RejectsDuplicatesAndIncompleteEntries) {
  EXPECT_THROW(PartitionerRegistry::instance().add(
                   {.code = "HSH",
                    .summary = "dup",
                    .make = [] { return PartitionerRegistry::instance().create("HSH"); }}),
               std::invalid_argument);
  EXPECT_THROW(PartitionerRegistry::instance().add(
                   {.code = "NOFACTORY", .summary = "no factory", .make = {}}),
               std::invalid_argument);
}

// ---------------------------------------- registry-driven property suite
//
// Every registered strategy — present and future — must uphold the
// InitialPartitioner contract. New registrations get these tests for free;
// the promises (capacity, determinism) come from the strategy's metadata.

class RegisteredStrategyTest : public testing::TestWithParam<std::string> {
 protected:
  [[nodiscard]] static const StrategyInfo& info() {
    return PartitionerRegistry::instance().info(GetParam());
  }
};

TEST_P(RegisteredStrategyTest, CoversEveryVertexWithValidPartition) {
  const CsrGraph g = meshCsr();
  util::Rng rng(7);
  const auto assignment = info().make()->partition(
      partition::PartitionRequest{g, 9, 1.1, rng});
  ASSERT_EQ(assignment.size(), g.idBound());
  g.forEachVertex([&](VertexId v) {
    ASSERT_NE(assignment[v], graph::kNoPartition);
    ASSERT_LT(assignment[v], 9u);
  });
}

TEST_P(RegisteredStrategyTest, RespectsCapacityWherePromised) {
  const CsrGraph g = plawCsr();
  util::Rng rng(8);
  const auto assignment = info().make()->partition(
      partition::PartitionRequest{g, 9, 1.1, rng});
  const auto caps = partition::makeCapacities(g.numVertices(), 9, 1.1);
  if (info().respectsCapacity) {
    EXPECT_TRUE(metrics::respectsCapacities(assignment, caps));
  } else {
    // Statistical balance only; still nothing pathological.
    EXPECT_LT(metrics::balanceReport(assignment, 9).imbalance, 1.5);
  }
}

TEST_P(RegisteredStrategyTest, UsesAllPartitions) {
  const CsrGraph g = meshCsr();
  util::Rng rng(9);
  const auto assignment = info().make()->partition(
      partition::PartitionRequest{g, 9, 1.1, rng});
  for (const auto load : metrics::partitionLoads(assignment, 9)) {
    EXPECT_GT(load, 0u);
  }
}

TEST_P(RegisteredStrategyTest, SameSeedSameResultWhenPromised) {
  if (!info().deterministicGivenSeed) GTEST_SKIP();
  const CsrGraph g = plawCsr();
  util::Rng rngA(42), rngB(42);
  const auto p = info().make();
  EXPECT_EQ(p->partition(partition::PartitionRequest{g, 9, 1.1, rngA}),
            p->partition(partition::PartitionRequest{g, 9, 1.1, rngB}));
}

TEST_P(RegisteredStrategyTest, WorksForKEqualOne) {
  const CsrGraph g = meshCsr();
  util::Rng rng(10);
  const auto assignment = info().make()->partition(
      partition::PartitionRequest{g, 1, 1.1, rng});
  EXPECT_EQ(metrics::cutRatio(g, assignment), 0.0);
}

TEST_P(RegisteredStrategyTest, HandlesGraphWithDeadIds) {
  graph::DynamicGraph dyn = gen::mesh2d(8, 8);
  dyn.removeVertex(10);
  dyn.removeVertex(20);
  const CsrGraph g = CsrGraph::fromGraph(dyn);
  util::Rng rng(11);
  const auto assignment = info().make()->partition(
      partition::PartitionRequest{g, 4, 1.1, rng});
  EXPECT_EQ(assignment[10], graph::kNoPartition);
  std::size_t assigned = 0;
  for (const auto p : assignment) assigned += p != graph::kNoPartition;
  EXPECT_EQ(assigned, g.numVertices());
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, RegisteredStrategyTest,
                         testing::ValuesIn(PartitionerRegistry::instance().codes()),
                         [](const auto& param_info) { return param_info.param; });

// ------------------------------------------------------------- pipeline

TEST(Pipeline, PartitionOnlyRunReportsCoherently) {
  RunReport report = Pipeline::fromGraph(gen::mesh2d(20, 20))
                         .initial("DGR")
                         .k(4)
                         .seed(5)
                         .run();
  EXPECT_EQ(report.strategy, "DGR");
  EXPECT_EQ(report.k, 4u);
  EXPECT_EQ(report.vertices, 400u);
  EXPECT_FALSE(report.adapted);
  EXPECT_TRUE(report.converged);
  EXPECT_DOUBLE_EQ(report.initialCutRatio, report.finalCutRatio);
  EXPECT_EQ(report.assignment.size(), 400u);
  const auto loads = metrics::partitionLoads(report.assignment, 4);
  std::size_t total = 0;
  for (const auto load : loads) total += load;
  EXPECT_EQ(total, 400u);
}

TEST(Pipeline, AdaptiveRunImprovesHashCut) {
  const RunReport report = Pipeline::fromGraph(gen::mesh2d(30, 30))
                               .initial("HSH")
                               .k(4)
                               .seed(3)
                               .adaptive()
                               .run();
  EXPECT_TRUE(report.adapted);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.finalCutRatio, 0.6 * report.initialCutRatio);
  EXPECT_GT(report.iterationsRun, 0u);
  EXPECT_LE(report.finalBalance.imbalance, 1.1 + 1e-9);
}

TEST(Pipeline, CsvRowMatchesHeader) {
  const RunReport report =
      Pipeline::fromGraph(gen::mesh2d(10, 10)).initial("RND").k(3).run();
  EXPECT_EQ(report.csvRow().size(), RunReport::csvHeader().size());
}

TEST(Pipeline, FromDatasetResolvesTable1Names) {
  const RunReport report =
      Pipeline::fromDataset("3elt").initial("RND").k(9).seed(1).run();
  EXPECT_EQ(report.source, "3elt");
  EXPECT_GT(report.vertices, 4'000u);
  EXPECT_THROW((void)Pipeline::fromDataset("no-such-dataset").run(),
               std::out_of_range);
}

TEST(Pipeline, RejectsZeroKBeforeRunningTheStrategy) {
  // The check must fire before the strategy does arithmetic with k.
  EXPECT_THROW(
      (void)Pipeline::fromGraph(gen::mesh2d(5, 5)).initial("HSH").k(0).run(),
      std::invalid_argument);
}

TEST(Pipeline, StrategyAndAssignmentFileAreMutuallyExclusive) {
  EXPECT_THROW((void)Pipeline::fromGraph(gen::mesh2d(5, 5))
                   .initial("HSH")
                   .initialFromFile("whatever.part")
                   .run(),
               std::invalid_argument);
}

class PipelineAssignmentFile : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "api_test_seed.part";
    const metrics::Assignment seedAssignment =
        initialAssignment(graph(), "RND", 3, 1.1, 7);
    partition::writeAssignment(seedAssignment, 3, path_);
  }

  [[nodiscard]] static graph::DynamicGraph graph() { return gen::mesh2d(12, 12); }

  std::string path_;
};

TEST_F(PipelineAssignmentFile, AdoptsTheFilesK) {
  const RunReport report =
      Pipeline::fromGraph(graph()).initialFromFile(path_).run();
  EXPECT_EQ(report.k, 3u);
  EXPECT_EQ(report.strategy, path_);
}

TEST_F(PipelineAssignmentFile, ExplicitMatchingKIsAccepted) {
  const RunReport report =
      Pipeline::fromGraph(graph()).initialFromFile(path_).k(3).run();
  EXPECT_EQ(report.k, 3u);
}

TEST_F(PipelineAssignmentFile, ExplicitMismatchedKIsAHardError) {
  // The old CLI silently overwrote a user-supplied k with the file's value.
  try {
    (void)Pipeline::fromGraph(graph()).initialFromFile(path_).k(5).run();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("k=5"), std::string::npos);
    EXPECT_NE(what.find("k=3"), std::string::npos);
  }
}

// -------------------------------------------------------------- session

TEST(Session, LiveRunMatchesReport) {
  Session session = Pipeline::fromGraph(gen::mesh2d(20, 20))
                        .initial("HSH")
                        .k(4)
                        .seed(2)
                        .adaptive()
                        .start();
  const double before = session.cutRatio();
  const core::ConvergenceResult result = session.runToConvergence();
  EXPECT_TRUE(result.converged);
  const RunReport report = session.report();
  EXPECT_TRUE(report.adapted);
  EXPECT_TRUE(report.converged);
  EXPECT_DOUBLE_EQ(report.initialCutRatio, before);
  EXPECT_DOUBLE_EQ(report.finalCutRatio, session.cutRatio());
  EXPECT_LE(report.finalCutRatio, before);
  EXPECT_EQ(report.iterationsRun, result.iterationsRun);
}

TEST(Session, ApplyUpdatesDropsTheCachedConvergenceVerdict) {
  Session session = Pipeline::fromGraph(gen::mesh2d(15, 15))
                        .initial("HSH")
                        .k(3)
                        .seed(4)
                        .adaptive()
                        .start();
  (void)session.runToConvergence();
  ASSERT_TRUE(session.report().converged);
  // Structural churn re-arms the engine; the report must not keep claiming
  // convergence from before the change.
  const std::vector<graph::UpdateEvent> events{
      graph::UpdateEvent::addVertex(225), graph::UpdateEvent::addEdge(225, 0)};
  EXPECT_GT(session.applyUpdates(events), 0u);
  EXPECT_FALSE(session.report().converged);
}

TEST(Session, ReportBeforeAnyIterationIsInitialOnly) {
  Session session = Pipeline::fromGraph(gen::mesh2d(10, 10))
                        .initial("RND")
                        .k(3)
                        .adaptive()
                        .start();
  const RunReport report = session.report();
  EXPECT_FALSE(report.adapted);
  EXPECT_DOUBLE_EQ(report.finalCutRatio, report.initialCutRatio);
}

}  // namespace
}  // namespace xdgp::api
