#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/erdos_renyi.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "metrics/balance.h"
#include "metrics/cuts.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/partitioner.h"

namespace xdgp::partition {
namespace {

using graph::CsrGraph;
using graph::VertexId;
using metrics::balanceReport;
using metrics::cutRatio;
using metrics::partitionLoads;
using metrics::respectsCapacities;

CsrGraph meshCsr() { return CsrGraph::fromGraph(gen::mesh3d(12, 12, 12)); }

CsrGraph plawCsr() {
  util::Rng rng(1);
  return CsrGraph::fromGraph(gen::powerlawCluster(2'000, 8, 0.1, rng));
}

// ------------------------------------------------------------ capacities

TEST(MakeCapacities, PaperDefault110Percent) {
  const auto caps = makeCapacities(9'000, 9, 1.1);
  ASSERT_EQ(caps.size(), 9u);
  for (const auto c : caps) EXPECT_EQ(c, 1'100u);
}

TEST(MakeCapacities, CeilGuardsSmallGraphs) {
  const auto caps = makeCapacities(10, 3, 1.0);
  // Balanced load is 3.33; capacity must round *up* or the graph can't fit.
  for (const auto c : caps) EXPECT_EQ(c, 4u);
}

TEST(MakeCapacities, RejectsZeroK) {
  EXPECT_THROW(makeCapacities(10, 0, 1.1), std::invalid_argument);
}

// ------------------------------------------------------------ factory

TEST(Factory, MakesAllFourPaperStrategies) {
  for (const std::string& code : initialStrategyCodes()) {
    const auto p = makePartitioner(code);
    EXPECT_EQ(p->name(), code);
  }
  EXPECT_THROW(makePartitioner("XYZ"), std::invalid_argument);
}

TEST(Factory, PaperFigureOrder) {
  EXPECT_EQ(initialStrategyCodes(),
            (std::vector<std::string>{"DGR", "HSH", "MNN", "RND"}));
}

// ------------------------------------------------------------ shared contract

struct StrategyCase {
  std::string code;
  bool capacityGuaranteed;
};

class InitialStrategyTest : public testing::TestWithParam<StrategyCase> {};

TEST_P(InitialStrategyTest, CoversEveryVertexWithValidPartition) {
  const CsrGraph g = meshCsr();
  util::Rng rng(7);
  const auto assignment = makePartitioner(GetParam().code)->partition(g, 9, 1.1, rng);
  g.forEachVertex([&](VertexId v) {
    ASSERT_NE(assignment[v], graph::kNoPartition);
    ASSERT_LT(assignment[v], 9u);
  });
}

TEST_P(InitialStrategyTest, RespectsCapacityWhenGuaranteed) {
  const CsrGraph g = plawCsr();
  util::Rng rng(8);
  const auto assignment = makePartitioner(GetParam().code)->partition(g, 9, 1.1, rng);
  const auto caps = makeCapacities(g.numVertices(), 9, 1.1);
  if (GetParam().capacityGuaranteed) {
    EXPECT_TRUE(respectsCapacities(assignment, caps));
  } else {
    // HSH only balances statistically; still, nothing should be pathological.
    EXPECT_LT(balanceReport(assignment, 9).imbalance, 1.5);
  }
}

TEST_P(InitialStrategyTest, UsesAllPartitions) {
  const CsrGraph g = meshCsr();
  util::Rng rng(9);
  const auto assignment = makePartitioner(GetParam().code)->partition(g, 9, 1.1, rng);
  const auto loads = partitionLoads(assignment, 9);
  for (const auto load : loads) EXPECT_GT(load, 0u);
}

TEST_P(InitialStrategyTest, SameSeedSameResult) {
  const CsrGraph g = plawCsr();
  util::Rng rngA(42), rngB(42);
  const auto p = makePartitioner(GetParam().code);
  EXPECT_EQ(p->partition(g, 9, 1.1, rngA), p->partition(g, 9, 1.1, rngB));
}

TEST_P(InitialStrategyTest, WorksForKEqualOne) {
  const CsrGraph g = meshCsr();
  util::Rng rng(10);
  const auto assignment = makePartitioner(GetParam().code)->partition(g, 1, 1.1, rng);
  EXPECT_EQ(cutRatio(g, assignment), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, InitialStrategyTest,
                         testing::Values(StrategyCase{"HSH", false},
                                         StrategyCase{"RND", true},
                                         StrategyCase{"DGR", true},
                                         StrategyCase{"MNN", true}),
                         [](const auto& info) { return info.param.code; });

// ------------------------------------------------------------ behaviour

TEST(HashPartitioner, StatelessRuleMatchesAssignment) {
  const CsrGraph g = meshCsr();
  util::Rng rng(3);
  const auto assignment = HashPartitioner{}.partition(g, 9, 1.1, rng);
  g.forEachVertex([&](VertexId v) {
    EXPECT_EQ(assignment[v], HashPartitioner::assign(v, 9));
  });
}

TEST(HashPartitioner, ScattersUniformly) {
  const CsrGraph g = CsrGraph::fromGraph(graph::DynamicGraph(90'000));
  util::Rng rng(4);
  const auto assignment = HashPartitioner{}.partition(g, 9, 1.1, rng);
  const auto loads = partitionLoads(assignment, 9);
  for (const auto load : loads) EXPECT_NEAR(static_cast<double>(load), 10'000.0, 400.0);
}

TEST(RandomPartitioner, LoadsDifferByAtMostOne) {
  const CsrGraph g = meshCsr();  // 1728 vertices over 9 partitions = 192 each
  util::Rng rng(5);
  const auto assignment = makePartitioner("RND")->partition(g, 9, 1.1, rng);
  const auto loads = partitionLoads(assignment, 9);
  const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  EXPECT_LE(*hi - *lo, 1u);
}

TEST(LdgPartitioner, ExploitsMeshLocality) {
  // Stanton & Kliot: LDG cuts far fewer edges than random on meshes.
  const CsrGraph g = meshCsr();
  util::Rng rng(6);
  const double ldg = cutRatio(g, makePartitioner("DGR")->partition(g, 9, 1.1, rng));
  const double rnd = cutRatio(g, makePartitioner("RND")->partition(g, 9, 1.1, rng));
  EXPECT_LT(ldg, 0.6 * rnd);
}

TEST(MnnPartitioner, ScattersNeighboursByDesign) {
  // MNN avoids partitions already holding neighbours, so its cut should be
  // at least as bad as random's on a mesh — it is a *hard* starting point.
  const CsrGraph g = meshCsr();
  util::Rng rng(7);
  const double mnn = cutRatio(g, makePartitioner("MNN")->partition(g, 9, 1.1, rng));
  const double rnd = cutRatio(g, makePartitioner("RND")->partition(g, 9, 1.1, rng));
  EXPECT_GE(mnn, 0.9 * rnd);
}

TEST(FennelPartitioner, BeatsHashOnMeshLocality) {
  // Fennel's convex load penalty only bites past the fair share, so on a
  // mesh it keeps neighbourhoods together like LDG and cuts far fewer
  // edges than uncoordinated hashing.
  const CsrGraph g = meshCsr();
  util::Rng rngA(6), rngB(6);
  const double fnl =
      cutRatio(g, partition::FennelPartitioner().partition(g, 9, 1.1, rngA));
  const double hsh = cutRatio(g, makePartitioner("HSH")->partition(g, 9, 1.1, rngB));
  EXPECT_LT(fnl, 0.6 * hsh);
}

TEST(FennelPartitioner, CapacityBindsOnSkewedGraphs) {
  // The γ = 1.5 cost alone is only soft pressure; the registry promises the
  // hard C(i) cap, which must hold even on a power-law graph whose hubs
  // drag their neighbourhoods toward one partition.
  util::Rng seedRng(1);
  const CsrGraph g =
      CsrGraph::fromGraph(gen::powerlawCluster(2'000, 8, 0.1, seedRng));
  util::Rng rng(2);
  const auto assignment = partition::FennelPartitioner().partition(g, 9, 1.1, rng);
  EXPECT_TRUE(metrics::respectsCapacities(
      assignment, makeCapacities(g.numVertices(), 9, 1.1)));
}

TEST(Partitioners, HandleGraphWithDeadIds) {
  graph::DynamicGraph dyn = gen::mesh2d(8, 8);
  dyn.removeVertex(10);
  dyn.removeVertex(20);
  const CsrGraph g = CsrGraph::fromGraph(dyn);
  util::Rng rng(8);
  for (const std::string& code : initialStrategyCodes()) {
    const auto assignment = makePartitioner(code)->partition(g, 4, 1.1, rng);
    EXPECT_EQ(assignment[10], graph::kNoPartition) << code;
    std::size_t assigned = 0;
    for (const auto p : assignment) assigned += p != graph::kNoPartition;
    EXPECT_EQ(assigned, g.numVertices()) << code;
  }
}

// ------------------------------------------------------------ balance metrics

TEST(BalanceReport, PerfectBalance) {
  metrics::Assignment a{0, 1, 2, 0, 1, 2};
  const auto report = balanceReport(a, 3);
  EXPECT_DOUBLE_EQ(report.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(report.densification, 0.0);
  EXPECT_EQ(report.minLoad, 2u);
  EXPECT_EQ(report.maxLoad, 2u);
}

TEST(BalanceReport, DetectsDensification) {
  metrics::Assignment a{0, 0, 0, 0, 0, 1};
  const auto report = balanceReport(a, 2);
  EXPECT_NEAR(report.imbalance, 5.0 / 3.0, 1e-9);
  EXPECT_GT(report.densification, 0.5);
}

TEST(BalanceReport, IgnoresUnassigned) {
  metrics::Assignment a{0, graph::kNoPartition, 1};
  const auto report = balanceReport(a, 2);
  EXPECT_EQ(report.totalVertices, 2u);
}

TEST(RespectsCapacities, Boundary) {
  metrics::Assignment a{0, 0, 1};
  EXPECT_TRUE(respectsCapacities(a, {2, 1}));
  EXPECT_FALSE(respectsCapacities(a, {1, 1}));
}

// ------------------------------------------------------------ cut metrics

TEST(CutMetrics, BruteForceAgreesAcrossRepresentations) {
  const graph::DynamicGraph dyn = gen::mesh2d(10, 10);
  const CsrGraph csr = CsrGraph::fromGraph(dyn);
  util::Rng rng(9);
  const auto assignment = makePartitioner("RND")->partition(csr, 4, 1.1, rng);
  EXPECT_EQ(metrics::cutEdges(dyn, assignment), metrics::cutEdges(csr, assignment));
  EXPECT_DOUBLE_EQ(metrics::cutRatio(dyn, assignment),
                   metrics::cutRatio(csr, assignment));
}

TEST(CutMetrics, AllSamePartitionIsZero) {
  const graph::DynamicGraph dyn = gen::mesh2d(5, 5);
  metrics::Assignment a(dyn.idBound(), 0);
  EXPECT_EQ(metrics::cutEdges(dyn, a), 0u);
}

TEST(CutMetrics, AlternatingPartitionsCutEverything) {
  graph::DynamicGraph path(4);
  path.addEdge(0, 1);
  path.addEdge(1, 2);
  path.addEdge(2, 3);
  metrics::Assignment a{0, 1, 0, 1};
  EXPECT_EQ(metrics::cutEdges(path, a), 3u);
  EXPECT_DOUBLE_EQ(metrics::cutRatio(path, a), 1.0);
}

}  // namespace
}  // namespace xdgp::partition
