#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/adaptive_engine.h"
#include "gen/erdos_renyi.h"
#include "gen/forest_fire.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "graph/csr.h"
#include "metrics/balance.h"
#include "metrics/cuts.h"
#include "partition/partitioner.h"

namespace xdgp::core {
namespace {

using graph::DynamicGraph;
using graph::UpdateEvent;
using graph::VertexId;

metrics::Assignment initialAssignment(const DynamicGraph& g, const std::string& code,
                                      std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  return partition::makePartitioner(code)->partition(graph::CsrGraph::fromGraph(g),
                                                     k, 1.1, rng);
}

AdaptiveEngine makeEngine(DynamicGraph g, const std::string& code,
                          AdaptiveOptions options) {
  metrics::Assignment a = initialAssignment(g, code, options.k, options.seed);
  return AdaptiveEngine(std::move(g), std::move(a), options);
}

// ------------------------------------------------------------ basics

TEST(AdaptiveEngine, OutOfRangeInitialAssignmentThrows) {
  // PartitionedRuntime validates for both engines: an assignment referencing
  // a partition >= k must be rejected at construction, not index per-worker
  // arrays in-range only by luck.
  DynamicGraph g = gen::mesh2d(4, 4);
  metrics::Assignment bad = initialAssignment(g, "HSH", 4, 1);
  bad[3] = 9;
  AdaptiveOptions options;
  options.k = 4;
  EXPECT_THROW(AdaptiveEngine(DynamicGraph(g), bad, options), std::invalid_argument);
  bad[3] = 2;
  EXPECT_NO_THROW(AdaptiveEngine(std::move(g), bad, options));
}

TEST(AdaptiveEngine, ImprovesHashPartitioningOnMesh) {
  AdaptiveOptions options;
  options.k = 9;
  AdaptiveEngine engine = makeEngine(gen::mesh3d(12, 12, 12), "HSH", options);
  const double before = engine.cutRatio();
  const ConvergenceResult result = engine.runToConvergence(3'000);
  EXPECT_TRUE(result.converged);
  // Fig. 4A: the iterative algorithm improves hash cuts by 0.2-0.4.
  EXPECT_LT(engine.cutRatio(), before - 0.2);
}

TEST(AdaptiveEngine, ConvergesOnPowerLaw) {
  util::Rng seed(3);
  AdaptiveOptions options;
  options.k = 9;
  AdaptiveEngine engine =
      makeEngine(gen::powerlawCluster(2'000, 8, 0.1, seed), "HSH", options);
  const double before = engine.cutRatio();
  const ConvergenceResult result = engine.runToConvergence(3'000);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(engine.cutRatio(), before);
}

TEST(AdaptiveEngine, IncrementalCutsMatchBruteForceAtEveryStage) {
  AdaptiveOptions options;
  options.k = 4;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(10, 10), "RND", options);
  for (int i = 0; i < 30; ++i) {
    engine.step();
    ASSERT_EQ(engine.state().cutEdges(),
              metrics::cutEdges(engine.graph(), engine.state().assignment()));
  }
}

TEST(AdaptiveEngine, SeedsAreReproducible) {
  AdaptiveOptions options;
  options.k = 5;
  options.seed = 99;
  AdaptiveEngine a = makeEngine(gen::mesh2d(12, 12), "HSH", options);
  AdaptiveEngine b = makeEngine(gen::mesh2d(12, 12), "HSH", options);
  a.runToConvergence(500);
  b.runToConvergence(500);
  EXPECT_EQ(a.state().assignment(), b.state().assignment());
  EXPECT_EQ(a.iteration(), b.iteration());
}

TEST(AdaptiveEngine, SeriesRecordsEveryIteration) {
  AdaptiveOptions options;
  options.k = 3;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(8, 8), "HSH", options);
  for (int i = 0; i < 10; ++i) engine.step();
  ASSERT_EQ(engine.series().size(), 10u);
  EXPECT_EQ(engine.series().points().back().iteration, 10u);
  // Wall time is measured, not the hard-coded 0.0 the fig drivers used to
  // plot. Only the first iteration (a full sweep) is guaranteed to outlast
  // a coarse steady_clock tick; converged frontier steps may round to 0.
  EXPECT_GT(engine.series().front().timePerIteration, 0.0);
  for (const auto& point : engine.series().points()) {
    EXPECT_GE(point.timePerIteration, 0.0);
  }
}

TEST(AdaptiveEngine, SeriesCanBeDisabled) {
  AdaptiveOptions options;
  options.k = 3;
  options.recordSeries = false;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(8, 8), "HSH", options);
  engine.step();
  EXPECT_TRUE(engine.series().empty());
}

// ------------------------------------------------------------ willingness s

TEST(AdaptiveEngine, ZeroWillingnessNeverMigrates) {
  AdaptiveOptions options;
  options.k = 4;
  options.willingness = 0.0;  // paper: "s = 0 causes no migration whatsoever"
  AdaptiveEngine engine = makeEngine(gen::mesh2d(10, 10), "HSH", options);
  const double before = engine.cutRatio();
  const ConvergenceResult result = engine.runToConvergence(200);
  EXPECT_TRUE(result.converged);  // trivially quiet
  EXPECT_EQ(result.convergenceIteration, 0u);
  EXPECT_DOUBLE_EQ(engine.cutRatio(), before);
}

TEST(AdaptiveEngine, FullWillingnessChasesNeighbours) {
  // §2.3: two neighbouring vertices in different partitions both jump with
  // s = 1 and swap forever — the chasing pathology the random factor fixes.
  DynamicGraph pair(2);
  pair.addEdge(0, 1);
  metrics::Assignment a{0, 1};
  AdaptiveOptions options;
  options.k = 2;
  options.willingness = 1.0;
  options.capacityFactor = 2.0;  // capacity never the limiting factor
  AdaptiveEngine engine(std::move(pair), std::move(a), options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(engine.step(), 2u) << "both vertices chase at iteration " << i;
  }
  EXPECT_FALSE(engine.converged());
  // The cut edge never heals: they always land apart.
  EXPECT_EQ(engine.state().cutEdges(), 1u);
}

TEST(AdaptiveEngine, IntermediateWillingnessHealsTheChase) {
  DynamicGraph pair(2);
  pair.addEdge(0, 1);
  metrics::Assignment a{0, 1};
  AdaptiveOptions options;
  options.k = 2;
  options.willingness = 0.5;
  options.capacityFactor = 2.0;
  AdaptiveEngine engine(std::move(pair), std::move(a), options);
  const ConvergenceResult result = engine.runToConvergence(500);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(engine.state().cutEdges(), 0u);  // neighbours finally together
}

// ------------------------------------------------------------ capacity

class CapacityInvariantTest
    : public testing::TestWithParam<std::tuple<std::string, std::size_t, double>> {};

TEST_P(CapacityInvariantTest, LoadsNeverExceedCapacityNorWorsen) {
  const auto& [code, k, s] = GetParam();
  AdaptiveOptions options;
  options.k = k;
  options.willingness = s;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(14, 14), code, options);
  std::vector<std::size_t> bound(engine.capacity().capacities());
  // An over-capacity *initial* load (possible with HSH) may only shrink.
  for (std::size_t i = 0; i < k; ++i) {
    bound[i] = std::max(bound[i], engine.state().load(i));
  }
  for (int iter = 0; iter < 60; ++iter) {
    engine.step();
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_LE(engine.state().load(i), bound[i])
          << code << " k=" << k << " s=" << s << " iter=" << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndShapes, CapacityInvariantTest,
    testing::Combine(testing::Values("HSH", "RND", "DGR", "MNN"),
                     testing::Values(std::size_t{2}, std::size_t{9}),
                     testing::Values(0.3, 0.5, 0.9)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
    });

TEST(AdaptiveEngine, QuotaDisabledDensifies) {
  // Ablation: without §2.2 quotas the greedy heuristic concentrates
  // vertices ("node densification").
  AdaptiveOptions with;
  with.k = 6;
  AdaptiveOptions without = with;
  without.enforceQuota = false;
  AdaptiveEngine quotaOn = makeEngine(gen::mesh2d(12, 12), "RND", with);
  AdaptiveEngine quotaOff = makeEngine(gen::mesh2d(12, 12), "RND", without);
  quotaOn.runToConvergence(400);
  quotaOff.runToConvergence(400);
  const auto onBalance =
      metrics::balanceReport(quotaOn.state().assignment(), 6);
  const auto offBalance =
      metrics::balanceReport(quotaOff.state().assignment(), 6);
  EXPECT_GT(offBalance.imbalance, onBalance.imbalance);
  EXPECT_GT(offBalance.imbalance, 1.15);  // clearly beyond the 110% cap
}

// ------------------------------------------------------------ dynamics

TEST(AdaptiveEngine, AbsorbsForestFireInjection) {
  AdaptiveOptions options;
  options.k = 9;
  AdaptiveEngine engine = makeEngine(gen::mesh3d(10, 10, 10), "HSH", options);
  engine.runToConvergence(2'000);
  ASSERT_TRUE(engine.converged());
  const double settled = engine.cutRatio();

  // Fig. 7b: inject +10% vertices at once via forest fire, then re-provision
  // capacity for the grown graph (otherwise quotas freeze all migration).
  DynamicGraph grown = engine.graph();
  util::Rng rng(4);
  const auto events = gen::forestFireExtension(grown, 100, {}, rng);
  engine.applyUpdates(events);
  engine.rescaleCapacity();
  EXPECT_FALSE(engine.converged());  // adaptation re-armed
  ASSERT_EQ(engine.state().cutEdges(),
            metrics::cutEdges(engine.graph(), engine.state().assignment()));

  const ConvergenceResult result = engine.runToConvergence(2'000);
  EXPECT_TRUE(result.converged);
  // The peak is absorbed: quality returns to (in fact below) the settled
  // level even though the graph is 10% larger.
  EXPECT_LT(engine.cutRatio(), settled + 0.05);
}

TEST(AdaptiveEngine, HandlesVertexAndEdgeRemovals) {
  AdaptiveOptions options;
  options.k = 4;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(10, 10), "RND", options);
  engine.runToConvergence(500);
  const std::vector<UpdateEvent> removals{
      UpdateEvent::removeVertex(0), UpdateEvent::removeVertex(11),
      UpdateEvent::removeEdge(22, 23), UpdateEvent::removeEdge(5, 6)};
  engine.applyUpdates(removals);
  EXPECT_EQ(engine.state().cutEdges(),
            metrics::cutEdges(engine.graph(), engine.state().assignment()));
  const ConvergenceResult result = engine.runToConvergence(500);
  EXPECT_TRUE(result.converged);
}

TEST(AdaptiveEngine, StreamedVerticesUseHashPlacementByDefault) {
  AdaptiveOptions options;
  options.k = 5;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(6, 6), "RND", options);
  const VertexId fresh = 1'000;
  engine.applyUpdates({UpdateEvent::addVertex(fresh)});
  EXPECT_EQ(engine.state().partitionOf(fresh),
            static_cast<graph::PartitionId>(util::Rng::splitmix64(fresh) % 5));
}

TEST(AdaptiveEngine, CustomPlacementHonoured) {
  AdaptiveOptions options;
  options.k = 5;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(6, 6), "RND", options);
  engine.setPlacement([](VertexId) { return graph::PartitionId{3}; });
  engine.applyUpdates({UpdateEvent::addEdge(500, 501)});
  EXPECT_EQ(engine.state().partitionOf(500), 3u);
  EXPECT_EQ(engine.state().partitionOf(501), 3u);
}

TEST(AdaptiveEngine, UpdatesReturnAppliedCountAndIgnoreReplays) {
  AdaptiveOptions options;
  options.k = 2;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(4, 4), "RND", options);
  const std::vector<UpdateEvent> batch{UpdateEvent::addEdge(0, 1),   // exists
                                       UpdateEvent::addEdge(0, 100),  // new
                                       UpdateEvent::removeVertex(999)};
  EXPECT_EQ(engine.applyUpdates(batch), 1u);
}

// ------------------------------------------------------------ quality sweep

class ConvergenceQualityTest
    : public testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(ConvergenceQualityTest, ConvergesAndNeverWorsensCuts) {
  const auto& [family, code] = GetParam();
  DynamicGraph g;
  if (family == "mesh") {
    g = gen::mesh3d(8, 8, 8);
  } else {
    util::Rng rng(5);
    g = gen::powerlawCluster(1'000, 7, 0.1, rng);
  }
  AdaptiveOptions options;
  options.k = 9;
  AdaptiveEngine engine = makeEngine(std::move(g), code, options);
  const double before = engine.cutRatio();
  const ConvergenceResult result = engine.runToConvergence(4'000);
  EXPECT_TRUE(result.converged) << family << "/" << code;
  // Fig. 4: the iterative phase ends at or below the initial quality; a
  // small tolerance absorbs stochastic wobble on already-good starts (DGR).
  EXPECT_LE(engine.cutRatio(), before + 0.03) << family << "/" << code;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesStrategies, ConvergenceQualityTest,
    testing::Combine(testing::Values("mesh", "plaw"),
                     testing::Values("HSH", "RND", "DGR", "MNN")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// ------------------------------------------------------- memory report

TEST(MemoryReport, TotalSumsTheTopLevelTerms) {
  AdaptiveOptions options;
  options.k = 4;
  AdaptiveEngine engine = makeEngine(gen::mesh3d(8, 8, 8), "HSH", options);
  const MemoryReport report = engine.memoryReport();
  EXPECT_EQ(report.totalBytes(),
            report.adjacencyArenaBytes + report.adjacencyMetaBytes +
                report.graphBookkeepingBytes + report.partitionStateBytes +
                report.engineBytes);
}

TEST(MemoryReport, ArenaBytesDecomposeExactly) {
  // The arena-level mirror of the AdjacencyPool slot invariant: every carved
  // byte is live, slack, or free.
  AdaptiveOptions options;
  options.k = 4;
  AdaptiveEngine engine = makeEngine(gen::mesh3d(8, 8, 8), "HSH", options);
  const MemoryReport report = engine.memoryReport();
  EXPECT_GT(report.adjacencyArenaBytes, 0u);
  EXPECT_EQ(report.adjacencyArenaBytes,
            report.adjacencyLiveBytes + report.adjacencySlackBytes +
                report.adjacencyFreeBytes);
  EXPECT_EQ(report.adjacencyLiveBytes,
            2 * engine.graph().numEdges() * sizeof(graph::VertexId));
}

TEST(MemoryReport, EngineScratchAppearsAfterRunning) {
  AdaptiveOptions options;
  options.k = 4;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(12, 12), "HSH", options);
  // Frontier mode seeds every vertex dirty at construction, so scratch is
  // non-zero immediately and only grows once iterations run.
  const std::size_t before = engine.memoryReport().engineBytes;
  EXPECT_GT(before, 0u);
  engine.runToConvergence(200);
  const MemoryReport after = engine.memoryReport();
  EXPECT_GE(after.engineBytes, before);
  EXPECT_GT(after.partitionStateBytes, 0u);
  EXPECT_GT(after.graphBookkeepingBytes, 0u);
}

TEST(MemoryReport, TracksStructuralGrowth) {
  AdaptiveOptions options;
  options.k = 2;
  AdaptiveEngine engine = makeEngine(gen::mesh2d(6, 6), "HSH", options);
  const std::size_t before = engine.memoryReport().totalBytes();
  std::vector<UpdateEvent> events;
  for (VertexId v = 36; v < 360; ++v) {
    events.push_back(UpdateEvent::addVertex(v));
    events.push_back(UpdateEvent::addEdge(v, v - 36));
  }
  engine.applyUpdates(events);
  EXPECT_GT(engine.memoryReport().totalBytes(), before);
}

}  // namespace
}  // namespace xdgp::core
