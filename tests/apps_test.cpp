#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/cardiac.h"
#include "apps/ego_clique.h"
#include "apps/max_clique.h"
#include "apps/tunkrank.h"
#include "gen/mesh3d.h"
#include "graph/csr.h"
#include "graph/dynamic_graph.h"
#include "partition/partitioner.h"
#include "pregel/engine.h"

namespace xdgp::apps {
namespace {

using graph::DynamicGraph;
using graph::VertexId;

metrics::Assignment hashAssign(const DynamicGraph& g, std::size_t k) {
  util::Rng rng(1);
  return partition::makePartitioner("HSH")->partition(graph::CsrGraph::fromGraph(g),
                                                      k, 1.1, rng);
}

pregel::EngineOptions plainOptions(std::size_t k) {
  pregel::EngineOptions options;
  options.numWorkers = k;
  return options;
}

/// EgoNet for `center` with full neighbour-list knowledge of `g`.
EgoNet egoOf(const DynamicGraph& g, VertexId center) {
  EgoNet ego;
  ego.center = center;
  for (const VertexId nbr : g.neighbors(center)) {
    ego.neighbors.push_back(nbr);
    const auto list = g.neighbors(nbr);
    ego.neighborLists.emplace_back(list.begin(), list.end());
  }
  return ego;
}

DynamicGraph completeGraph(std::size_t n) {
  DynamicGraph g(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) g.addEdge(i, j);
  }
  return g;
}

// ------------------------------------------------------------ ego clique

TEST(EgoClique, SingletonAndPair) {
  DynamicGraph g(2);
  EXPECT_EQ(maxCliqueInEgoNet(egoOf(g, 0)), 1u);
  g.addEdge(0, 1);
  EXPECT_EQ(maxCliqueInEgoNet(egoOf(g, 0)), 2u);
}

TEST(EgoClique, Triangle) {
  DynamicGraph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(maxCliqueInEgoNet(egoOf(g, v)), 3u);
}

TEST(EgoClique, CompleteGraphK6) {
  const DynamicGraph g = completeGraph(6);
  EXPECT_EQ(maxCliqueInEgoNet(egoOf(g, 0)), 6u);
}

TEST(EgoClique, K4MinusOneEdge) {
  DynamicGraph g = completeGraph(4);
  g.removeEdge(2, 3);
  EXPECT_EQ(maxCliqueInEgoNet(egoOf(g, 0)), 3u);  // {0,1,2} or {0,1,3}
  EXPECT_EQ(maxCliqueInEgoNet(egoOf(g, 2)), 3u);
}

TEST(EgoClique, StarHasNoTriangles) {
  DynamicGraph g(5);
  for (VertexId leaf = 1; leaf < 5; ++leaf) g.addEdge(0, leaf);
  EXPECT_EQ(maxCliqueInEgoNet(egoOf(g, 0)), 2u);  // hub + any leaf
  EXPECT_EQ(maxCliqueInEgoNet(egoOf(g, 1)), 2u);
}

TEST(EgoClique, CliquePlusPendantVertices) {
  DynamicGraph g = completeGraph(5);
  g.addEdge(0, 10);
  g.addEdge(0, 11);
  EXPECT_EQ(maxCliqueInEgoNet(egoOf(g, 0)), 5u);
}

TEST(EgoClique, MembersContainCenterAndFormClique) {
  DynamicGraph g = completeGraph(4);
  g.addEdge(0, 9);
  std::vector<VertexId> members;
  const std::size_t size = maxCliqueInEgoNet(egoOf(g, 0), 24, &members);
  EXPECT_EQ(size, 4u);
  ASSERT_EQ(members.size(), 4u);
  EXPECT_NE(std::find(members.begin(), members.end(), 0u), members.end());
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      EXPECT_TRUE(g.hasEdge(members[i], members[j]));
    }
  }
}

TEST(EgoClique, GreedyFallbackOnHubStillFindsClique) {
  // Hub with 40 neighbours (> exactThreshold) containing a K5.
  DynamicGraph g = completeGraph(5);  // vertices 0..4, hub will be 0
  for (VertexId extra = 5; extra < 41; ++extra) g.addEdge(0, extra);
  const std::size_t size = maxCliqueInEgoNet(egoOf(g, 0), /*exactThreshold=*/8);
  EXPECT_GE(size, 4u);  // greedy may miss by one, never collapses
  EXPECT_LE(size, 5u);
}

TEST(EgoClique, InvalidCenter) {
  EgoNet ego;
  EXPECT_EQ(maxCliqueInEgoNet(ego), 0u);
}

// ------------------------------------------------------------ max clique app

TEST(MaxCliqueProgram, FindsK5ThroughMessageExchange) {
  const DynamicGraph g = completeGraph(5);
  pregel::Engine<MaxCliqueProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.runSupersteps(2);  // list exchange + ego solve
  g.forEachVertex([&](VertexId v) {
    EXPECT_EQ(engine.value(v).cliqueSize, 5u);
    EXPECT_EQ(engine.value(v).round, 1u);
  });
}

TEST(MaxCliqueProgram, CycleHasCliqueSizeTwo) {
  DynamicGraph g(6);
  for (VertexId v = 0; v < 6; ++v) g.addEdge(v, (v + 1) % 6);
  pregel::Engine<MaxCliqueProgram> engine(g, hashAssign(g, 3), plainOptions(3));
  engine.runSupersteps(2);
  g.forEachVertex([&](VertexId v) { EXPECT_EQ(engine.value(v).cliqueSize, 2u); });
}

TEST(MaxCliqueProgram, GlobalMaxViaReduce) {
  DynamicGraph g = completeGraph(4);  // K4 among 0..3
  g.addEdge(3, 7);
  g.addEdge(7, 8);
  pregel::Engine<MaxCliqueProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.runSupersteps(2);
  const std::size_t globalMax = engine.reduceValues(
      std::size_t{0}, [](std::size_t acc, VertexId, const MaxCliqueProgram::State& s) {
        return std::max(acc, s.cliqueSize);
      });
  EXPECT_EQ(globalMax, 4u);
}

TEST(MaxCliqueProgram, RepeatedRoundsTrackTopologyChanges) {
  DynamicGraph g = completeGraph(3);
  pregel::Engine<MaxCliqueProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.runSupersteps(2);
  EXPECT_EQ(engine.value(0).cliqueSize, 3u);
  // Grow the triangle into K4 and run another round.
  engine.ingest({graph::UpdateEvent::addEdge(0, 3), graph::UpdateEvent::addEdge(1, 3),
                 graph::UpdateEvent::addEdge(2, 3)});
  engine.runSupersteps(2);
  EXPECT_EQ(engine.value(0).cliqueSize, 4u);
  EXPECT_EQ(engine.value(0).round, 2u);
}

// ------------------------------------------------------------ cardiac

TEST(Cardiac, RestingTissueStaysAtRest) {
  CardiacProgram program;
  program.stimulusWidth = 0;  // no pacing at all
  const DynamicGraph g = gen::mesh3d(4, 4, 4);
  pregel::Engine<CardiacProgram> engine(g, hashAssign(g, 2), plainOptions(2),
                                        program);
  engine.runSupersteps(100);
  g.forEachVertex([&](VertexId v) {
    // FHN resting state is near (-1.2, -0.6); unstimulated tissue stays put.
    EXPECT_NEAR(engine.value(v).voltage, -1.2, 0.25);
  });
}

TEST(Cardiac, StimulusExcitesAndPropagates) {
  CardiacProgram program;
  program.stimulusWidth = 16;  // pace one face of the slab
  const DynamicGraph g = gen::mesh3d(4, 4, 12);
  pregel::Engine<CardiacProgram> engine(g, hashAssign(g, 3), plainOptions(3),
                                        program);
  const VertexId farVertex = gen::mesh3dId(4, 4, 2, 2, 11);
  double farPeak = -10.0;
  for (int step = 0; step < 700; ++step) {
    engine.runSuperstep();
    farPeak = std::max(farPeak, engine.value(farVertex).voltage);
  }
  // The excitation wave must reach the far end of the slab (upstroke > 0).
  EXPECT_GT(farPeak, 0.0);
}

TEST(Cardiac, NumericallyStableOverLongRuns) {
  CardiacProgram program;
  const DynamicGraph g = gen::mesh3d(5, 5, 5);
  pregel::Engine<CardiacProgram> engine(g, hashAssign(g, 2), plainOptions(2),
                                        program);
  engine.runSupersteps(1'000);
  g.forEachVertex([&](VertexId v) {
    const auto& cell = engine.value(v);
    ASSERT_TRUE(std::isfinite(cell.voltage));
    ASSERT_TRUE(std::isfinite(cell.recovery));
    ASSERT_LT(std::abs(cell.voltage), 5.0);  // FHN orbit is bounded
  });
}

TEST(Cardiac, ComputeUnitsMatchConfiguredEquations) {
  CardiacProgram program;
  program.odeSubsteps = 4;
  program.unitsPerSubstep = 8.0;  // 32 equations, as in the paper
  const DynamicGraph g = gen::mesh3d(3, 3, 3);
  pregel::Engine<CardiacProgram> engine(g, hashAssign(g, 2), plainOptions(2),
                                        program);
  const auto stats = engine.runSuperstep();
  EXPECT_DOUBLE_EQ(stats.computeUnits, 32.0 * static_cast<double>(g.numVertices()));
}

// ------------------------------------------------------------ tunkrank

TEST(TunkRank, CelebrityOutranksLurkers) {
  // Star: vertex 0 mentioned by everyone.
  DynamicGraph g(1);
  for (VertexId fan = 1; fan <= 30; ++fan) g.addEdge(0, fan);
  pregel::Engine<TunkRankProgram> engine(g, hashAssign(g, 3), plainOptions(3));
  engine.runSupersteps(20);
  const double celebrity = engine.value(0);
  for (VertexId fan = 1; fan <= 30; ++fan) EXPECT_GT(celebrity, engine.value(fan));
  EXPECT_NEAR(celebrity, 30.0 * (1.0 + 0.05 * engine.value(1)), 0.5);
}

TEST(TunkRank, InfluenceRespondsToNewMentions) {
  DynamicGraph g(3);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  pregel::Engine<TunkRankProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.runSupersteps(15);
  const double before = engine.value(0);
  for (VertexId fan = 10; fan < 20; ++fan) {
    engine.ingest({graph::UpdateEvent::addEdge(0, fan)});
  }
  engine.runSupersteps(15);
  EXPECT_GT(engine.value(0), before * 2.0);  // near-real-time adaptation (§1)
}

TEST(TunkRank, BoundedOnRegularGraphs) {
  const DynamicGraph g = gen::mesh3d(5, 5, 5);
  pregel::Engine<TunkRankProgram> engine(g, hashAssign(g, 3), plainOptions(3));
  engine.runSupersteps(50);
  g.forEachVertex([&](VertexId v) {
    ASSERT_TRUE(std::isfinite(engine.value(v)));
    ASSERT_LT(engine.value(v), 10.0);
  });
}

}  // namespace
}  // namespace xdgp::apps
