// Frontier equivalence suite: AdaptiveOptions::frontier must be a pure
// performance knob. For every registered initial strategy, several graph
// families, both balance modes, threaded evaluation, and adversarial update
// streams, a frontier-on engine and a frontier-off engine stepped in
// lockstep must report identical migrations, identical incremental cuts,
// and identical assignments at every single iteration. A second group pins
// the point of the frontier: once converged, step() evaluates (almost) no
// vertices.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "api/partitioner_registry.h"
#include "core/adaptive_engine.h"
#include "gen/erdos_renyi.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "gen/watts_strogatz.h"
#include "graph/update_stream.h"
#include "util/rng.h"

namespace xdgp::core {
namespace {

using graph::DynamicGraph;
using graph::UpdateEvent;
using graph::VertexId;

DynamicGraph makeFamily(const std::string& family) {
  util::Rng rng(7);
  if (family == "mesh2d") return gen::mesh2d(16, 16);
  if (family == "mesh3d") return gen::mesh3d(6, 6, 6);
  if (family == "plaw") return gen::powerlawCluster(500, 6, 0.15, rng);
  if (family == "smallworld") return gen::wattsStrogatz(400, 6, 0.1, rng);
  return gen::erdosRenyi(400, 1'400, rng);
}

/// Twin engines over the same graph/initial/options, differing only in the
/// frontier flag (and optionally the thread count, which must not matter).
struct Twins {
  AdaptiveEngine on;
  AdaptiveEngine off;

  Twins(const DynamicGraph& g, const metrics::Assignment& initial,
        AdaptiveOptions options, std::size_t frontierThreads = 1)
      : on(DynamicGraph(g), initial, withFrontier(options, true, frontierThreads)),
        off(DynamicGraph(g), initial, withFrontier(options, false, 1)) {}

  static AdaptiveOptions withFrontier(AdaptiveOptions options, bool frontier,
                                      std::size_t threads) {
    options.frontier = frontier;
    options.threads = threads;
    return options;
  }

  /// One lockstep iteration; asserts every observable matches.
  void stepBoth(const std::string& context, int iter) {
    const std::size_t migrationsOn = on.step();
    const std::size_t migrationsOff = off.step();
    ASSERT_EQ(migrationsOn, migrationsOff) << context << " iter " << iter;
    ASSERT_EQ(on.state().cutEdges(), off.state().cutEdges())
        << context << " iter " << iter;
    ASSERT_EQ(on.state().assignment(), off.state().assignment())
        << context << " iter " << iter;
    ASSERT_EQ(on.state().loads(), off.state().loads()) << context << " iter " << iter;
  }
};

std::vector<UpdateEvent> churnBatch(const DynamicGraph& g, util::Rng& rng,
                                    std::size_t count) {
  std::vector<UpdateEvent> events;
  const std::size_t idSpace = g.idBound() + 6;
  for (std::size_t e = 0; e < count; ++e) {
    const auto u = static_cast<VertexId>(rng.index(idSpace));
    const auto v = static_cast<VertexId>(rng.index(idSpace));
    switch (rng.below(6)) {
      case 0:
        events.push_back(UpdateEvent::addVertex(u));
        break;
      case 1:
        if (g.numVertices() > 60) events.push_back(UpdateEvent::removeVertex(u));
        break;
      case 2:
      case 3:
        events.push_back(UpdateEvent::addEdge(u, v));
        break;
      default:
        events.push_back(UpdateEvent::removeEdge(u, v));
        break;
    }
  }
  return events;
}

// --------------------------------------------- strategies x families

class FrontierEquivalence
    : public testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(FrontierEquivalence, LockstepTrajectoriesIdenticalUnderChurn) {
  const auto& [code, family] = GetParam();
  const DynamicGraph g = makeFamily(family);
  const metrics::Assignment initial = api::initialAssignment(g, code, 6, 1.1, 11);
  AdaptiveOptions options;
  options.k = 6;
  options.seed = 29;
  Twins twins(g, initial, options);

  const std::string context = code + "/" + family;
  util::Rng churn(59);
  int iter = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 8; ++i) {
      twins.stepBoth(context, iter++);
      if (testing::Test::HasFatalFailure()) return;
    }
    // Identical fuzzed structural churn hits both engines between rounds.
    const auto events = churnBatch(twins.on.graph(), churn, 18);
    ASSERT_EQ(twins.on.applyUpdates(events), twins.off.applyUpdates(events));
    twins.on.rescaleCapacity();
    twins.off.rescaleCapacity();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistryStrategies, FrontierEquivalence,
    testing::Combine(testing::ValuesIn(api::PartitionerRegistry::instance().codes()),
                     testing::Values("mesh2d", "plaw")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// --------------------------------------------- modes and threading

TEST(FrontierEquivalence, HoldsInEdgeBalanceMode) {
  const DynamicGraph g = makeFamily("smallworld");
  const metrics::Assignment initial = api::initialAssignment(g, "RND", 5, 1.1, 13);
  AdaptiveOptions options;
  options.k = 5;
  options.balanceMode = BalanceMode::kEdges;
  Twins twins(g, initial, options);
  for (int iter = 0; iter < 40; ++iter) {
    twins.stepBoth("edge-balance", iter);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(FrontierEquivalence, HoldsWithoutQuotaEnforcement) {
  const DynamicGraph g = makeFamily("er");
  const metrics::Assignment initial = api::initialAssignment(g, "HSH", 4, 1.1, 17);
  AdaptiveOptions options;
  options.k = 4;
  options.enforceQuota = false;
  Twins twins(g, initial, options);
  for (int iter = 0; iter < 40; ++iter) {
    twins.stepBoth("no-quota", iter);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(FrontierEquivalence, ShardedFrontierMatchesSerialFullScan) {
  const DynamicGraph g = makeFamily("mesh3d");
  const metrics::Assignment initial = api::initialAssignment(g, "HSH", 9, 1.1, 19);
  AdaptiveOptions options;
  options.k = 9;
  Twins twins(g, initial, options, /*frontierThreads=*/4);
  for (int iter = 0; iter < 50; ++iter) {
    twins.stepBoth("threads", iter);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(FrontierEquivalence, ExtremeWillingnessValues) {
  for (const double s : {0.0, 1.0}) {
    const DynamicGraph g = makeFamily("mesh2d");
    const metrics::Assignment initial = api::initialAssignment(g, "RND", 3, 1.1, 23);
    AdaptiveOptions options;
    options.k = 3;
    options.willingness = s;
    Twins twins(g, initial, options);
    for (int iter = 0; iter < 20; ++iter) {
      twins.stepBoth("s=" + std::to_string(s), iter);
      if (testing::Test::HasFatalFailure()) return;
    }
  }
}

// --------------------------------------------- the point of the frontier

TEST(FrontierCost, ConvergedStepsEvaluateAlmostNothing) {
  AdaptiveOptions options;
  options.k = 9;
  const DynamicGraph g = gen::mesh3d(8, 8, 8);
  AdaptiveEngine engine(DynamicGraph(g), api::initialAssignment(g, "HSH", 9, 1.1, 3),
                        options);
  ASSERT_TRUE(engine.runToConvergence(5'000).converged);
  engine.step();
  // Converged means 30 quiet iterations: the frontier has drained to at most
  // a handful of permanently quota-starved desires (usually none).
  EXPECT_LE(engine.lastEvaluatedCount(), engine.graph().numVertices() / 100);
}

TEST(FrontierCost, FullScanEvaluatesEverythingForever) {
  AdaptiveOptions options;
  options.k = 9;
  options.frontier = false;
  const DynamicGraph g = gen::mesh3d(6, 6, 6);
  AdaptiveEngine engine(DynamicGraph(g), api::initialAssignment(g, "HSH", 9, 1.1, 3),
                        options);
  ASSERT_TRUE(engine.runToConvergence(5'000).converged);
  engine.step();
  EXPECT_EQ(engine.lastEvaluatedCount(), engine.graph().numVertices());
}

TEST(FrontierCost, ChurnReactivatesOnlyTheNeighbourhood) {
  AdaptiveOptions options;
  options.k = 4;
  const DynamicGraph g = gen::mesh2d(20, 20);
  AdaptiveEngine engine(DynamicGraph(g), api::initialAssignment(g, "HSH", 4, 1.1, 5),
                        options);
  ASSERT_TRUE(engine.runToConvergence(5'000).converged);
  engine.step();
  const std::size_t quiescent = engine.lastEvaluatedCount();
  // One edge flips: the next step examines its endpoints and re-tries any
  // parked quota-starved desires (the degree loads shifted), not the whole
  // 400-vertex mesh.
  const std::size_t parked = engine.parkedCount();
  engine.applyUpdates({UpdateEvent::addEdge(0, 399)});
  engine.step();
  EXPECT_LE(engine.lastEvaluatedCount(), quiescent + parked + 2);
  EXPECT_GE(engine.lastEvaluatedCount(), 2u);
}

TEST(FrontierCost, FirstIterationSweepsEveryVertex) {
  AdaptiveOptions options;
  options.k = 5;
  const DynamicGraph g = gen::mesh2d(10, 10);
  AdaptiveEngine engine(DynamicGraph(g), api::initialAssignment(g, "RND", 5, 1.1, 7),
                        options);
  engine.step();
  EXPECT_EQ(engine.lastEvaluatedCount(), engine.graph().numVertices());
}

}  // namespace
}  // namespace xdgp::core
