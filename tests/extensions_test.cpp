// Tests for the library's extensions beyond the paper's core algorithm:
// §6 future work (edge balancing, hotspot awareness), stateless-draw
// parallel decisions, the extra generators/apps, and assignment IO.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "apps/bfs_distance.h"
#include "apps/pagerank.h"
#include "apps/triangle_count.h"
#include "core/adaptive_engine.h"
#include "core/draws.h"
#include "core/hotspot.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "gen/rmat.h"
#include "gen/watts_strogatz.h"
#include "graph/csr.h"
#include "metrics/balance.h"
#include "partition/assignment_io.h"
#include "partition/partitioner.h"
#include "pregel/engine.h"

namespace xdgp {
namespace {

using core::AdaptiveEngine;
using core::AdaptiveOptions;
using core::BalanceMode;
using graph::DynamicGraph;
using graph::VertexId;

metrics::Assignment initialAssignment(const DynamicGraph& g, const std::string& code,
                                      std::size_t k, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return partition::makePartitioner(code)->partition(graph::CsrGraph::fromGraph(g),
                                                     k, 1.1, rng);
}

std::vector<std::size_t> bruteDegreeLoads(const DynamicGraph& g,
                                          const metrics::Assignment& a,
                                          std::size_t k) {
  std::vector<std::size_t> loads(k, 0);
  g.forEachVertex([&](VertexId v) { loads[a[v]] += g.degree(v); });
  return loads;
}

// ------------------------------------------------------- degree loads

TEST(DegreeLoads, InitialStateMatchesBruteForce) {
  util::Rng rng(2);
  const DynamicGraph g = gen::powerlawCluster(800, 5, 0.2, rng);
  const auto a = initialAssignment(g, "RND", 4);
  core::PartitionState state(g, a, 4);
  const auto expected = bruteDegreeLoads(g, state.assignment(), 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(state.degreeLoad(i), expected[i]);
}

TEST(DegreeLoads, TrackedThroughMovesAndChurn) {
  util::Rng rng(3);
  DynamicGraph g = gen::mesh2d(10, 10);
  core::PartitionState state(g, initialAssignment(g, "RND", 3), 3);
  for (int step = 0; step < 600; ++step) {
    switch (rng.below(4)) {
      case 0: {  // move a random vertex
        const auto v = static_cast<VertexId>(rng.index(g.idBound()));
        if (g.hasVertex(v)) state.moveVertex(g, v, rng.below(3));
        break;
      }
      case 1: {  // add an edge
        const auto u = static_cast<VertexId>(rng.index(g.idBound()));
        const auto v = static_cast<VertexId>(rng.index(g.idBound()));
        if (g.hasVertex(u) && g.hasVertex(v) && u != v && !g.hasEdge(u, v)) {
          g.addEdge(u, v);
          state.onEdgeAdded(u, v);
        }
        break;
      }
      case 2: {  // remove an edge
        const auto u = static_cast<VertexId>(rng.index(g.idBound()));
        if (g.hasVertex(u) && g.degree(u) > 0) {
          const auto nbrs = g.neighbors(u);
          const VertexId v = nbrs[rng.index(nbrs.size())];
          g.removeEdge(u, v);
          state.onEdgeRemoved(u, v);
        }
        break;
      }
      case 3: {  // remove a vertex entirely
        const auto v = static_cast<VertexId>(rng.index(g.idBound()));
        if (g.hasVertex(v) && g.numVertices() > 5) {
          state.onVertexRemoving(g, v);
          g.removeVertex(v);
        }
        break;
      }
    }
    const auto expected = bruteDegreeLoads(g, state.assignment(), 3);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_EQ(state.degreeLoad(i), expected[i]) << "step " << step;
    }
  }
}

// ------------------------------------------------------- quota units

TEST(QuotaUnits, MultiUnitAdmission) {
  core::QuotaLedger ledger(3);
  const core::CapacityModel cap(30, 3, 1.0);  // 10 each
  ledger.beginIteration(cap, {10, 10, 2});    // remaining 8 at j=2 -> Q=4
  EXPECT_TRUE(ledger.tryAdmit(0, 2, 3));
  EXPECT_FALSE(ledger.tryAdmit(0, 2, 2));  // 3+2 > 4
  EXPECT_TRUE(ledger.tryAdmit(0, 2, 1));   // exactly fills the pair quota
  EXPECT_TRUE(ledger.tryAdmit(1, 2, 4));   // other source, own quota
  EXPECT_FALSE(ledger.tryAdmit(0, 2, 1));
}

TEST(QuotaUnits, ZeroUnitsRejected) {
  core::QuotaLedger ledger(2);
  const core::CapacityModel cap(20, 2, 2.0);
  ledger.beginIteration(cap, {10, 10});
  EXPECT_FALSE(ledger.tryAdmit(0, 1, 0));
}

TEST(QuotaUnits, WorstCaseHoldsInDegreeUnits) {
  core::QuotaLedger ledger(4);
  const core::CapacityModel cap(4000, 4, 1.1);  // 1100 degree units each
  std::vector<std::size_t> loads{1100, 900, 800, 200};
  ledger.beginIteration(cap, loads);
  util::Rng rng(4);
  std::vector<std::size_t> incoming(4, 0);
  for (graph::PartitionId i = 0; i < 4; ++i) {
    for (graph::PartitionId j = 0; j < 4; ++j) {
      // Vertices of random degree 1..7 arrive until the quota rejects.
      for (int guard = 0; guard < 10'000; ++guard) {
        const std::size_t degree = 1 + rng.below(7);
        if (!ledger.tryAdmit(i, j, degree)) break;
        incoming[j] += degree;
      }
    }
  }
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_LE(loads[j] + incoming[j], cap.capacity(j)) << "partition " << j;
  }
}

// ------------------------------------------------------- edge balance

TEST(EdgeBalance, DegreeLoadsRespectCapacity) {
  util::Rng rng(5);
  DynamicGraph g = gen::powerlawCluster(3'000, 8, 0.1, rng);
  AdaptiveOptions options;
  options.k = 6;
  options.balanceMode = BalanceMode::kEdges;
  const auto initial = initialAssignment(g, "RND", 6);
  AdaptiveEngine engine(std::move(g), initial, options);
  // Bound: capacity, or the initial degree load where it already exceeds it.
  std::vector<std::size_t> bound(6);
  for (std::size_t i = 0; i < 6; ++i) {
    bound[i] = std::max(engine.capacity().capacity(i), engine.state().degreeLoad(i));
  }
  for (int iter = 0; iter < 80; ++iter) {
    engine.step();
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_LE(engine.state().degreeLoad(i), bound[i]) << "iter " << iter;
    }
  }
}

TEST(EdgeBalance, BalancesDegreesBetterThanVertexModeOnPowerLaw) {
  // The §6 motivation: on skewed graphs, vertex balancing leaves degree sums
  // (=> per-worker message load) unbalanced; edge balancing fixes that.
  const auto degreeImbalance = [](const AdaptiveEngine& engine) {
    const auto& loads = engine.state().degreeLoads();
    const std::size_t total = std::accumulate(loads.begin(), loads.end(), 0ul);
    const std::size_t peak = *std::max_element(loads.begin(), loads.end());
    return static_cast<double>(peak) * static_cast<double>(loads.size()) /
           static_cast<double>(total);
  };
  util::Rng rng(6);
  const DynamicGraph g = gen::powerlawCluster(3'000, 8, 0.1, rng);
  const auto initial = initialAssignment(g, "RND", 6);

  AdaptiveOptions vertexMode;
  vertexMode.k = 6;
  AdaptiveOptions edgeMode = vertexMode;
  edgeMode.balanceMode = BalanceMode::kEdges;
  AdaptiveEngine vertexEngine(g, initial, vertexMode);
  AdaptiveEngine edgeEngine(g, initial, edgeMode);
  vertexEngine.runToConvergence(2'000);
  edgeEngine.runToConvergence(2'000);

  EXPECT_LT(degreeImbalance(edgeEngine), degreeImbalance(vertexEngine));
  // Edge balancing must not wreck cut quality.
  EXPECT_LT(edgeEngine.cutRatio(), vertexEngine.cutRatio() + 0.1);
}

TEST(EdgeBalance, PregelEngineHonoursDegreeCapacity) {
  util::Rng rng(7);
  DynamicGraph g = gen::powerlawCluster(1'500, 6, 0.1, rng);
  pregel::EngineOptions options;
  options.numWorkers = 5;
  options.adaptive = true;
  options.partitioner.balanceMode = BalanceMode::kEdges;
  pregel::Engine<apps::PageRankProgram> engine(g, initialAssignment(g, "RND", 5),
                                               options);
  const auto capacity = static_cast<std::size_t>(
      std::ceil(2.0 * static_cast<double>(g.numEdges()) / 5.0 * 1.1));
  std::vector<std::size_t> bound(5);
  for (std::size_t i = 0; i < 5; ++i) {
    bound[i] = std::max(capacity, engine.state().degreeLoad(i));
  }
  for (int step = 0; step < 60; ++step) {
    engine.runSuperstep();
    for (std::size_t i = 0; i < 5; ++i) {
      ASSERT_LE(engine.state().degreeLoad(i), bound[i]) << "step " << step;
    }
  }
}

// ------------------------------------------------------- stateless draws

TEST(StatelessDraws, ExtremesAreExact) {
  const core::StatelessDraws never(1, 0.0);
  const core::StatelessDraws always(1, 1.0);
  for (std::size_t iter = 0; iter < 50; ++iter) {
    for (VertexId v = 0; v < 50; ++v) {
      EXPECT_FALSE(never.willing(iter, v));
      EXPECT_TRUE(always.willing(iter, v));
    }
  }
}

TEST(StatelessDraws, FrequencyMatchesProbability) {
  const core::StatelessDraws draws(9, 0.3);
  std::size_t hits = 0;
  for (std::size_t iter = 0; iter < 100; ++iter) {
    for (VertexId v = 0; v < 500; ++v) hits += draws.willing(iter, v);
  }
  EXPECT_NEAR(static_cast<double>(hits) / 50'000.0, 0.3, 0.01);
}

TEST(StatelessDraws, IndependentAcrossIterationsAndVertices) {
  const core::StatelessDraws draws(11, 0.5);
  // Neighbouring vertices and consecutive iterations must not correlate.
  std::size_t bothWilling = 0;
  for (std::size_t iter = 0; iter < 200; ++iter) {
    for (VertexId v = 0; v < 200; v += 2) {
      bothWilling += draws.willing(iter, v) && draws.willing(iter, v + 1);
    }
  }
  EXPECT_NEAR(static_cast<double>(bothWilling) / 20'000.0, 0.25, 0.02);
}

TEST(ParallelDecisions, AnyThreadCountSameRun) {
  const DynamicGraph g = gen::mesh3d(8, 8, 8);
  const auto initial = initialAssignment(g, "HSH", 9);
  std::vector<metrics::Assignment> results;
  std::vector<std::size_t> iterations;
  for (const std::size_t threads : {1ul, 2ul, 4ul}) {
    AdaptiveOptions options;
    options.k = 9;
    options.threads = threads;
    AdaptiveEngine engine(g, initial, options);
    engine.runToConvergence(2'000);
    results.push_back(engine.state().assignment());
    iterations.push_back(engine.iteration());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  EXPECT_EQ(iterations[0], iterations[1]);
  EXPECT_EQ(iterations[0], iterations[2]);
}

TEST(ParallelDecisions, ParallelRunKeepsInvariants) {
  util::Rng rng(8);
  DynamicGraph g = gen::powerlawCluster(2'000, 6, 0.1, rng);
  AdaptiveOptions options;
  options.k = 7;
  options.threads = 4;
  const auto initial = initialAssignment(g, "RND", 7);
  AdaptiveEngine engine(std::move(g), initial, options);
  for (int i = 0; i < 40; ++i) {
    engine.step();
    ASSERT_EQ(engine.state().cutEdges(),
              metrics::cutEdges(engine.graph(), engine.state().assignment()));
  }
}

// ------------------------------------------------------- hotspot model

TEST(HotspotModel, EwmaTracksActivity) {
  core::HotspotModel model(3, {.ewmaAlpha = 0.5, .maxShrink = 0.3});
  model.observe({10.0, 0.0, 0.0});
  model.observe({10.0, 0.0, 0.0});
  EXPECT_NEAR(model.heat()[0], 10.0, 1e-9);
  model.observe({0.0, 0.0, 0.0});
  EXPECT_NEAR(model.heat()[0], 5.0, 1e-9);
}

TEST(HotspotModel, DeratesOnlyHotPartitions) {
  core::HotspotModel model(4, {.ewmaAlpha = 1.0, .maxShrink = 0.2});
  const core::CapacityModel base(std::vector<std::size_t>{100, 100, 100, 100});
  model.observe({40.0, 10.0, 10.0, 10.0});  // partition 0 is the hotspot
  const auto effective = model.effectiveCapacities(base);
  EXPECT_EQ(effective[0], 80u);   // full maxShrink on the peak
  EXPECT_EQ(effective[1], 100u);  // cool partitions untouched
  EXPECT_EQ(effective[2], 100u);
  EXPECT_EQ(effective[3], 100u);
}

TEST(HotspotModel, UniformHeatChangesNothing) {
  core::HotspotModel model(3, {});
  const core::CapacityModel base(std::vector<std::size_t>{50, 60, 70});
  model.observe({5.0, 5.0, 5.0});
  EXPECT_EQ(model.effectiveCapacities(base), base.capacities());
}

TEST(HotspotModel, UnprimedIsIdentity) {
  const core::HotspotModel model(2, {});
  const core::CapacityModel base(std::vector<std::size_t>{10, 20});
  EXPECT_EQ(model.effectiveCapacities(base), base.capacities());
}

/// Worker 0 is a permanent hotspot: hosting any vertex there costs 10x the
/// compute of every other worker (an overloaded machine, not a heavy app).
struct WorkerSkewProgram {
  using VertexValue = std::uint8_t;
  using MessageValue = std::uint8_t;
  template <typename Ctx>
  void compute(Ctx& ctx, VertexValue&, std::span<const MessageValue>) {
    ctx.addComputeUnits(ctx.worker() == 0 ? 10.0 : 1.0);
  }
};

TEST(HotspotAware, HotPartitionShedsLoad) {
  // With the §6 extension, worker 0's sustained heat derates its effective
  // capacity, the inbound quotas dry up, and normal greedy departures drain
  // it; the plain version keeps feeding it.
  const DynamicGraph g = gen::mesh3d(10, 10, 10);
  const auto initial = initialAssignment(g, "HSH", 9);
  const auto runWith = [&](bool hotspotAware) {
    pregel::EngineOptions options;
    options.numWorkers = 9;
    options.adaptive = true;
    options.partitioner.hotspotAware = hotspotAware;
    options.partitioner.hotspot.maxShrink = 0.3;
    pregel::Engine<WorkerSkewProgram> engine(g, initial, options);
    for (int i = 0; i < 120; ++i) engine.runSuperstep();
    return engine.state().load(0);
  };
  // Direction is forced by the mechanism (probed stable across seeds:
  // hotspot-aware lands 66-79 vertices vs 88-116 plain); the margin only
  // absorbs draw-stream wobble.
  EXPECT_LT(runWith(true), runWith(false));
}

// ------------------------------------------------------- new generators

TEST(Rmat, ExactSizeAndSkew) {
  util::Rng rng(9);
  gen::RmatParams params;
  params.scale = 9;  // 512 vertices
  params.edgeFactor = 6;
  const DynamicGraph g = gen::rmat(params, rng);
  EXPECT_EQ(g.idBound(), 512u);
  EXPECT_EQ(g.numEdges(), 6u * 512u);
  std::size_t maxDeg = 0;
  g.forEachVertex([&](VertexId v) { maxDeg = std::max(maxDeg, g.degree(v)); });
  EXPECT_GT(maxDeg, 40u);  // Graph500 parameters are strongly skewed
}

TEST(Rmat, DeterministicBySeed) {
  gen::RmatParams params;
  params.scale = 8;
  util::Rng a(10), b(10);
  const DynamicGraph g1 = gen::rmat(params, a);
  const DynamicGraph g2 = gen::rmat(params, b);
  EXPECT_EQ(g1.numEdges(), g2.numEdges());
  g1.forEachEdge([&](VertexId u, VertexId v) { EXPECT_TRUE(g2.hasEdge(u, v)); });
}

TEST(WattsStrogatz, PureRingStructure) {
  util::Rng rng(11);
  const DynamicGraph g = gen::wattsStrogatz(100, 4, 0.0, rng);
  EXPECT_EQ(g.numEdges(), 200u);  // n * k/2
  g.forEachVertex([&](VertexId v) { EXPECT_EQ(g.degree(v), 4u); });
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(0, 2));
  EXPECT_TRUE(g.hasEdge(0, 99));
}

TEST(WattsStrogatz, RewiringDestroysLocality) {
  // Partition quality must degrade monotonically-ish with beta.
  const auto cutAfterAdaptation = [](double beta) {
    util::Rng rng(12);
    DynamicGraph g = gen::wattsStrogatz(2'000, 8, beta, rng);
    AdaptiveOptions options;
    options.k = 8;
    AdaptiveEngine engine(std::move(g),
                          initialAssignment(gen::wattsStrogatz(2'000, 8, beta, rng),
                                            "RND", 8),
                          options);
    engine.runToConvergence(2'000);
    return engine.cutRatio();
  };
  const double ring = cutAfterAdaptation(0.0);
  const double random = cutAfterAdaptation(0.9);
  // Greedy label propagation stabilises the ring as several contiguous arcs
  // (tied boundaries never merge), so it does not reach the tiny optimum —
  // but it must still clearly beat the no-locality case.
  EXPECT_LT(ring, 0.5 * random);
}

// ------------------------------------------------------- new apps

TEST(BfsDistance, MatchesSerialBfsUnderMigration) {
  util::Rng rng(13);
  DynamicGraph g = gen::powerlawCluster(600, 3, 0.2, rng);
  pregel::EngineOptions options;
  options.numWorkers = 4;
  options.adaptive = true;
  pregel::Engine<apps::BfsDistanceProgram> engine(
      g, initialAssignment(g, "HSH", 4), options);
  engine.runSupersteps(40);

  // Serial reference BFS from vertex 0.
  std::vector<std::uint32_t> dist(g.idBound(), apps::BfsDistanceProgram::kUnreached);
  std::vector<VertexId> frontier{0};
  dist[0] = 0;
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (const VertexId u : frontier) {
      for (const VertexId v : g.neighbors(u)) {
        if (dist[v] == apps::BfsDistanceProgram::kUnreached) {
          dist[v] = dist[u] + 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  g.forEachVertex([&](VertexId v) {
    ASSERT_EQ(engine.value(v).hops, dist[v]) << "vertex " << v;
  });
}

TEST(BfsDistance, DistancesImproveWhenShortcutArrives) {
  DynamicGraph path(6);
  for (VertexId v = 0; v + 1 < 6; ++v) path.addEdge(v, v + 1);
  pregel::EngineOptions options;
  options.numWorkers = 2;
  pregel::Engine<apps::BfsDistanceProgram> engine(
      path, initialAssignment(path, "HSH", 2), options);
  engine.runSupersteps(10);
  EXPECT_EQ(engine.value(5).hops, 5u);
  engine.ingest({graph::UpdateEvent::addEdge(0, 4)});  // shortcut
  engine.runSupersteps(12);  // covers a soft-state refresh cycle
  EXPECT_EQ(engine.value(5).hops, 2u);
}

std::size_t triangleTotal(pregel::Engine<apps::TriangleCountProgram>& engine) {
  return engine.reduceValues(
      std::size_t{0},
      [](std::size_t acc, VertexId, const apps::TriangleCountProgram::State& s) {
        return acc + s.triangles;
      });
}

TEST(TriangleCount, KnownSmallGraphs) {
  // K4 has 4 triangles; C5 has none; two triangles sharing an edge: 2.
  DynamicGraph k4(4);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) k4.addEdge(i, j);
  }
  pregel::EngineOptions options;
  options.numWorkers = 2;
  pregel::Engine<apps::TriangleCountProgram> engine(
      k4, initialAssignment(k4, "HSH", 2), options);
  engine.runSupersteps(2);
  EXPECT_EQ(triangleTotal(engine), 4u);

  DynamicGraph bowtie(4);
  bowtie.addEdge(0, 1);
  bowtie.addEdge(1, 2);
  bowtie.addEdge(0, 2);
  bowtie.addEdge(2, 3);
  bowtie.addEdge(0, 3);
  pregel::Engine<apps::TriangleCountProgram> engine2(
      bowtie, initialAssignment(bowtie, "HSH", 2), options);
  engine2.runSupersteps(2);
  EXPECT_EQ(triangleTotal(engine2), 2u);
}

TEST(TriangleCount, MatchesBruteForceUnderMigration) {
  util::Rng rng(14);
  DynamicGraph g = gen::powerlawCluster(300, 4, 0.4, rng);
  std::size_t expected = 0;
  g.forEachVertex([&](VertexId v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (nbrs[i] > v && nbrs[j] > v && g.hasEdge(nbrs[i], nbrs[j])) ++expected;
      }
    }
  });
  pregel::EngineOptions options;
  options.numWorkers = 3;
  options.adaptive = true;
  pregel::Engine<apps::TriangleCountProgram> engine(
      g, initialAssignment(g, "HSH", 3), options);
  engine.runSupersteps(8);  // several rounds while vertices migrate
  EXPECT_EQ(triangleTotal(engine), expected);
}

// ------------------------------------------------------- assignment io

TEST(AssignmentIo, RoundTrips) {
  metrics::Assignment original{0, 2, 1, graph::kNoPartition, 2};
  const std::string path = testing::TempDir() + "/xdgp_assignment.part";
  partition::writeAssignment(original, 3, path);
  const auto loaded = partition::readAssignment(path);
  EXPECT_EQ(loaded.k, 3u);
  ASSERT_EQ(loaded.assignment.size(), 5u);
  EXPECT_EQ(loaded.assignment, original);
  std::remove(path.c_str());
}

TEST(AssignmentIo, RejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "/xdgp_assignment_bad.part";
  {
    std::ofstream out(path);
    out << "# 2\n0 5\n";  // partition 5 out of range for k=2
  }
  EXPECT_THROW(partition::readAssignment(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(partition::readAssignment("/nonexistent/x.part"), std::runtime_error);
}

TEST(AssignmentIo, FeedsAdaptiveEngine) {
  const DynamicGraph g = gen::mesh2d(8, 8);
  const auto initial = initialAssignment(g, "DGR", 4);
  const std::string path = testing::TempDir() + "/xdgp_assignment_seed.part";
  partition::writeAssignment(initial, 4, path);
  auto loaded = partition::readAssignment(path);
  loaded.assignment.resize(g.idBound(), graph::kNoPartition);
  AdaptiveOptions options;
  options.k = loaded.k;
  AdaptiveEngine engine(g, loaded.assignment, options);
  EXPECT_DOUBLE_EQ(engine.cutRatio(), metrics::cutRatio(g, initial));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xdgp
