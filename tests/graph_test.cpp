#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "graph/adjacency_pool.h"
#include "graph/csr.h"
#include "graph/dynamic_graph.h"
#include "graph/id_mapper.h"
#include "graph/io.h"
#include "graph/update_stream.h"
#include "util/rng.h"

namespace xdgp::graph {
namespace {

/// Checks the documented invariants: symmetry, no self-loops/duplicates,
/// edge count == sum of degrees / 2.
void expectInvariants(const DynamicGraph& g) {
  std::size_t degreeSum = 0;
  g.forEachVertex([&](VertexId u) {
    const auto nbrs = g.neighbors(u);
    degreeSum += nbrs.size();
    std::set<VertexId> seen;
    for (const VertexId v : nbrs) {
      EXPECT_NE(u, v) << "self-loop at " << u;
      EXPECT_TRUE(seen.insert(v).second) << "duplicate edge " << u << "-" << v;
      EXPECT_TRUE(g.hasVertex(v));
      const auto back = g.neighbors(v);
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end())
          << "asymmetric edge " << u << "-" << v;
    }
  });
  EXPECT_EQ(degreeSum, 2 * g.numEdges());
}

// ------------------------------------------------------------ DynamicGraph

TEST(DynamicGraph, StartsEmpty) {
  DynamicGraph g;
  EXPECT_EQ(g.numVertices(), 0u);
  EXPECT_EQ(g.numEdges(), 0u);
  EXPECT_EQ(g.idBound(), 0u);
}

TEST(DynamicGraph, PreSizedConstructor) {
  DynamicGraph g(5);
  EXPECT_EQ(g.numVertices(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_TRUE(g.hasVertex(v));
  EXPECT_FALSE(g.hasVertex(5));
}

TEST(DynamicGraph, AddEdgeCreatesEndpoints) {
  DynamicGraph g;
  EXPECT_TRUE(g.addEdge(3, 7));
  EXPECT_TRUE(g.hasVertex(3));
  EXPECT_TRUE(g.hasVertex(7));
  EXPECT_TRUE(g.hasEdge(3, 7));
  EXPECT_TRUE(g.hasEdge(7, 3));
  EXPECT_EQ(g.numEdges(), 1u);
}

TEST(DynamicGraph, RejectsSelfLoopsAndDuplicates) {
  DynamicGraph g(2);
  EXPECT_FALSE(g.addEdge(0, 0));
  EXPECT_TRUE(g.addEdge(0, 1));
  EXPECT_FALSE(g.addEdge(0, 1));
  EXPECT_FALSE(g.addEdge(1, 0));
  EXPECT_EQ(g.numEdges(), 1u);
}

TEST(DynamicGraph, RemoveEdge) {
  DynamicGraph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  EXPECT_TRUE(g.removeEdge(0, 1));
  EXPECT_FALSE(g.removeEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_EQ(g.numEdges(), 1u);
  expectInvariants(g);
}

TEST(DynamicGraph, RemoveVertexCascadesEdges) {
  DynamicGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(0, 3);
  g.addEdge(1, 2);
  g.removeVertex(0);
  EXPECT_FALSE(g.hasVertex(0));
  EXPECT_EQ(g.numVertices(), 3u);
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_TRUE(g.hasEdge(1, 2));
  expectInvariants(g);
}

TEST(DynamicGraph, RemovedIdIsRecycled) {
  DynamicGraph g(3);
  g.removeVertex(1);
  const VertexId recycled = g.addVertex();
  EXPECT_EQ(recycled, 1u);
  EXPECT_TRUE(g.hasVertex(1));
  EXPECT_EQ(g.degree(1), 0u);  // fresh vertex, no stale adjacency
}

TEST(DynamicGraph, EnsureVertexGrowsIdSpace) {
  DynamicGraph g;
  g.ensureVertex(10);
  EXPECT_TRUE(g.hasVertex(10));
  EXPECT_FALSE(g.hasVertex(9));
  EXPECT_EQ(g.numVertices(), 1u);
  EXPECT_EQ(g.idBound(), 11u);
}

TEST(DynamicGraph, EnsureVertexReclaimsFreedId) {
  DynamicGraph g(3);
  g.removeVertex(1);
  g.ensureVertex(1);
  EXPECT_TRUE(g.hasVertex(1));
  // Freed id must not be handed out twice.
  const VertexId next = g.addVertex();
  EXPECT_EQ(next, 3u);
}

TEST(DynamicGraph, DegreeAndAverage) {
  DynamicGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(99), 0u);
  EXPECT_DOUBLE_EQ(g.averageDegree(), 1.5);
}

TEST(DynamicGraph, ForEachEdgeVisitsOncePerEdge) {
  DynamicGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  std::size_t count = 0;
  g.forEachEdge([&](VertexId u, VertexId v) {
    EXPECT_LT(u, v);
    ++count;
  });
  EXPECT_EQ(count, 3u);
}

TEST(DynamicGraph, VerticesSnapshotAscending) {
  DynamicGraph g(5);
  g.removeVertex(2);
  const auto ids = g.vertices();
  EXPECT_EQ(ids, (std::vector<VertexId>{0, 1, 3, 4}));
}

TEST(DynamicGraph, RandomMutationFuzzKeepsInvariants) {
  util::Rng rng(99);
  DynamicGraph g(20);
  for (int step = 0; step < 2000; ++step) {
    const auto u = static_cast<VertexId>(rng.index(25));
    const auto v = static_cast<VertexId>(rng.index(25));
    switch (rng.below(5)) {
      case 0:
        g.ensureVertex(u);
        break;
      case 1:
        if (g.hasVertex(u)) g.removeVertex(u);
        break;
      case 2:
      case 3:
        g.addEdge(u, v);
        break;
      case 4:
        g.removeEdge(u, v);
        break;
    }
  }
  expectInvariants(g);
}

TEST(DynamicGraph, BulkRemoveThenReaddRecyclesWithoutScans) {
  // The remove-then-readd stream that made the old eager free-list filter
  // quadratic: every readd via ensureVertex leaves a stale entry that
  // addVertex must skip, exactly once, and fresh ids never collide.
  DynamicGraph g(100);
  for (VertexId v = 0; v < 100; v += 2) g.removeVertex(v);
  for (VertexId v = 0; v < 100; v += 2) g.ensureVertex(v);  // all stale now
  EXPECT_EQ(g.numVertices(), 100u);
  const VertexId fresh = g.addVertex();  // pops 50 stale entries, then grows
  EXPECT_EQ(fresh, 100u);
  g.removeVertex(7);
  EXPECT_EQ(g.addVertex(), 7u);  // genuine free entries still recycle
  expectInvariants(g);
}

// ------------------------------------------------------------ AdjacencyPool

TEST(AdjacencyPool, GrowsBlocksByDoublingWithinOneArena) {
  AdjacencyPool pool(2);
  for (VertexId x = 0; x < 9; ++x) pool.push(0, x);
  EXPECT_EQ(pool.size(0), 9u);
  EXPECT_EQ(pool.capacity(0), 16u);  // 4 -> 8 -> 16
  const auto view = pool.view(0);
  for (VertexId x = 0; x < 9; ++x) EXPECT_EQ(view[x], x);
  // The outgrown 4- and 8-blocks are parked for reuse, not leaked.
  EXPECT_EQ(pool.freeSlots(), 4u + 8u);
  EXPECT_EQ(pool.arenaSlots(), 4u + 8u + 16u);
}

TEST(AdjacencyPool, RecyclesFreedBlocksBeforeGrowingArena) {
  AdjacencyPool pool(3);
  for (VertexId x = 0; x < 4; ++x) pool.push(0, x);
  const std::size_t arenaAfterFirst = pool.arenaSlots();
  pool.clear(0);
  EXPECT_EQ(pool.freeSlots(), 4u);
  for (VertexId x = 0; x < 4; ++x) pool.push(1, x);  // reuses list 0's block
  EXPECT_EQ(pool.arenaSlots(), arenaAfterFirst);
  EXPECT_EQ(pool.freeSlots(), 0u);
}

TEST(AdjacencyPool, EraseUnorderedKeepsRemainderIntact) {
  AdjacencyPool pool(1);
  for (VertexId x = 10; x < 15; ++x) pool.push(0, x);
  EXPECT_TRUE(pool.eraseUnordered(0, 11));
  EXPECT_FALSE(pool.eraseUnordered(0, 11));
  EXPECT_EQ(pool.size(0), 4u);
  const auto view = pool.view(0);
  const std::set<VertexId> remaining(view.begin(), view.end());
  EXPECT_EQ(remaining, (std::set<VertexId>{10, 12, 13, 14}));
}

TEST(AdjacencyPool, ArenaStaysBoundedUnderChurn) {
  // Steady-state add/remove cycles must recycle blocks rather than grow the
  // arena without bound.
  DynamicGraph g(64);
  util::Rng rng(5);
  for (int warm = 0; warm < 2'000; ++warm) {
    g.addEdge(static_cast<VertexId>(rng.index(64)),
              static_cast<VertexId>(rng.index(64)));
  }
  const std::size_t warmSlots = g.adjacencyPool().arenaSlots();
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (VertexId v = 0; v < 64; ++v) {
      if (rng.bernoulli(0.3)) g.removeVertex(v);
    }
    for (int e = 0; e < 500; ++e) {
      g.addEdge(static_cast<VertexId>(rng.index(64)),
                static_cast<VertexId>(rng.index(64)));
    }
  }
  expectInvariants(g);
  // Loose bound: churn may fragment across size classes, but must not grow
  // the arena linearly with the number of cycles.
  EXPECT_LE(g.adjacencyPool().arenaSlots(), 4 * warmSlots + 1'024);
}

// ------------------------------------------------------------ bulk ingest

TEST(DynamicGraphBulk, FromEdgesMatchesIncrementalBuild) {
  util::Rng rng(23);
  std::vector<Edge> edges;
  for (int i = 0; i < 2'000; ++i) {
    edges.push_back({static_cast<VertexId>(rng.index(300)),
                     static_cast<VertexId>(rng.index(300))});
  }
  // Replays and self-loops must be dropped exactly like addEdge drops them.
  edges.push_back(edges.front());
  edges.push_back({7, 7});

  const DynamicGraph bulk = DynamicGraph::fromEdges(300, edges);
  DynamicGraph incremental(300);
  for (const Edge& e : edges) incremental.addEdge(e.u, e.v);

  expectInvariants(bulk);
  EXPECT_EQ(bulk.numVertices(), incremental.numVertices());
  EXPECT_EQ(bulk.numEdges(), incremental.numEdges());
  incremental.forEachEdge(
      [&](VertexId u, VertexId v) { EXPECT_TRUE(bulk.hasEdge(u, v)); });
}

TEST(DynamicGraphBulk, FromEdgesSortsAdjacency) {
  const std::vector<Edge> edges{{4, 1}, {4, 3}, {4, 0}, {4, 2}, {2, 0}};
  const DynamicGraph g = DynamicGraph::fromEdges(5, edges);
  const auto nbrs = g.neighbors(4);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(DynamicGraphBulk, FromEdgesRejectsOutOfRangeEndpoints) {
  const std::vector<Edge> edges{{0, 5}};
  EXPECT_THROW((void)DynamicGraph::fromEdges(5, edges), std::invalid_argument);
}

TEST(DynamicGraphBulk, FromEdgesEmptyAndIsolated) {
  const DynamicGraph g = DynamicGraph::fromEdges(10, {});
  EXPECT_EQ(g.numVertices(), 10u);
  EXPECT_EQ(g.numEdges(), 0u);
  expectInvariants(g);
}

TEST(DynamicGraphBulk, FromEdgesGraphStaysMutable) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  DynamicGraph g = DynamicGraph::fromEdges(4, edges);
  g.addEdge(2, 3);
  g.removeEdge(0, 1);
  EXPECT_EQ(g.numEdges(), 2u);
  expectInvariants(g);
}

// ----------------------------------------------------- arena accounting

/// The documented ArenaStats invariant: every carved slot is live, slack,
/// or parked on a free list — nothing leaks, nothing is double-counted.
void expectStatsInvariant(const AdjacencyPool& pool) {
  const AdjacencyPool::ArenaStats s = pool.stats();
  EXPECT_EQ(s.arenaSlots, s.liveSlots + s.slackSlots + s.freeSlots);
  EXPECT_EQ(s.arenaSlots, pool.arenaSlots());
  EXPECT_GE(s.reservedBytes, s.arenaSlots * sizeof(VertexId));
  EXPECT_GT(s.metaBytes, 0u);
}

TEST(AdjacencyPoolStats, FreshPoolIsAllZeros) {
  const AdjacencyPool pool(8);
  const AdjacencyPool::ArenaStats s = pool.stats();
  EXPECT_EQ(s.arenaSlots, 0u);
  EXPECT_EQ(s.liveSlots, 0u);
  EXPECT_EQ(s.slackSlots, 0u);
  EXPECT_EQ(s.freeSlots, 0u);
  expectStatsInvariant(pool);
}

TEST(AdjacencyPoolStats, BulkReserveAccountsLiveAndSlack) {
  AdjacencyPool pool;
  const std::vector<std::uint32_t> counts{3, 0, 5, 1};
  pool.bulkReserve(counts);
  // Blocks are power-of-two sized with a 1 << kMinLog floor: 4 + 0 + 8 + 4.
  EXPECT_EQ(pool.arenaSlots(), 16u);
  for (std::size_t list = 0; list < counts.size(); ++list) {
    for (std::uint32_t i = 0; i < counts[list]; ++i) {
      pool.pushWithinCapacity(list, static_cast<VertexId>(i));
    }
  }
  AdjacencyPool::ArenaStats s = pool.stats();
  EXPECT_EQ(s.liveSlots, 9u);
  EXPECT_EQ(s.slackSlots, 7u);
  EXPECT_EQ(s.freeSlots, 0u);
  expectStatsInvariant(pool);

  // Dedup truncation converts live slots into slack, never loses them.
  pool.truncate(2, 2);
  s = pool.stats();
  EXPECT_EQ(s.liveSlots, 6u);
  EXPECT_EQ(s.slackSlots, 10u);
  expectStatsInvariant(pool);
}

TEST(AdjacencyPoolStats, BulkReserveRequiresFreshPool) {
  AdjacencyPool pool(2);
  pool.push(0, 9);
  const std::vector<std::uint32_t> counts{4, 4};
  EXPECT_THROW(pool.bulkReserve(counts), std::logic_error);
}

TEST(AdjacencyPoolStats, InvariantHoldsAcrossMutation) {
  DynamicGraph g(64);
  util::Rng rng(29);
  for (int i = 0; i < 1'500; ++i) {
    g.addEdge(static_cast<VertexId>(rng.index(64)),
              static_cast<VertexId>(rng.index(64)));
    if (i % 7 == 0) g.removeVertex(static_cast<VertexId>(rng.index(64)));
    expectStatsInvariant(g.adjacencyPool());
  }
  // Clearing lists parks their blocks: slots migrate live -> free.
  const std::size_t before = g.adjacencyPool().stats().freeSlots;
  for (VertexId v = 0; v < 64; ++v) g.removeVertex(v);
  const AdjacencyPool::ArenaStats s = g.adjacencyPool().stats();
  EXPECT_EQ(s.liveSlots, 0u);
  EXPECT_GE(s.freeSlots, before);
  expectStatsInvariant(g.adjacencyPool());
}

TEST(AdjacencyPoolStats, BulkGraphAccountsBookkeeping) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  const DynamicGraph g = DynamicGraph::fromEdges(4, edges);
  EXPECT_GE(g.bookkeepingBytes(), g.idBound() * sizeof(std::uint8_t));
  expectStatsInvariant(g.adjacencyPool());
}

// ------------------------------------------------------------ CSR

TEST(CsrGraph, MirrorsDynamicGraph) {
  DynamicGraph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);
  const CsrGraph csr = CsrGraph::fromGraph(g);
  EXPECT_EQ(csr.numVertices(), 5u);
  EXPECT_EQ(csr.numEdges(), 3u);
  EXPECT_EQ(csr.degree(1), 2u);
  const auto nbrs = csr.neighbors(1);
  std::set<VertexId> s(nbrs.begin(), nbrs.end());
  EXPECT_EQ(s, (std::set<VertexId>{0, 2}));
}

TEST(CsrGraph, PreservesDeadIdsAsEmpty) {
  DynamicGraph g(4);
  g.addEdge(0, 1);
  g.removeVertex(2);
  const CsrGraph csr = CsrGraph::fromGraph(g);
  EXPECT_EQ(csr.idBound(), 4u);
  EXPECT_EQ(csr.numVertices(), 3u);
  EXPECT_FALSE(csr.alive(2));
  EXPECT_TRUE(csr.neighbors(2).empty());
}

TEST(CsrGraph, FromEdgesMatchesFromGraph) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const CsrGraph csr = CsrGraph::fromEdges(3, edges);
  EXPECT_EQ(csr.numEdges(), 3u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.maxDegree(), 2u);
  EXPECT_DOUBLE_EQ(csr.averageDegree(), 2.0);
}

TEST(CsrGraph, ForEachEdgeOncePerEdge) {
  DynamicGraph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  const CsrGraph csr = CsrGraph::fromGraph(g);
  std::size_t count = 0;
  csr.forEachEdge([&](VertexId u, VertexId v) {
    EXPECT_LT(u, v);
    ++count;
  });
  EXPECT_EQ(count, 2u);
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph csr = CsrGraph::fromGraph(DynamicGraph{});
  EXPECT_EQ(csr.numVertices(), 0u);
  EXPECT_EQ(csr.numEdges(), 0u);
  EXPECT_TRUE(csr.neighbors(0).empty());
}

// ------------------------------------------------------------ IO

TEST(GraphIo, RoundTrips) {
  DynamicGraph g(6);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  g.addEdge(4, 5);
  g.addEdge(0, 5);
  const std::string path = testing::TempDir() + "/xdgp_graph.txt";
  writeEdgeList(g, path);
  const DynamicGraph back = readEdgeList(path);
  EXPECT_EQ(back.numVertices(), g.numVertices());
  EXPECT_EQ(back.numEdges(), g.numEdges());
  g.forEachEdge([&](VertexId u, VertexId v) { EXPECT_TRUE(back.hasEdge(u, v)); });
  std::remove(path.c_str());
}

TEST(GraphIo, HeaderPreservesIsolatedVertices) {
  DynamicGraph g(4);
  g.addEdge(0, 1);  // vertices 2, 3 isolated
  const std::string path = testing::TempDir() + "/xdgp_graph_iso.txt";
  writeEdgeList(g, path);
  const DynamicGraph back = readEdgeList(path);
  EXPECT_EQ(back.numVertices(), 4u);
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(readEdgeList("/nonexistent/missing.txt"), std::runtime_error);
}

// ------------------------------------------------------------ updates

TEST(UpdateStream, DrainRespectsTimestamps) {
  UpdateStream stream({UpdateEvent::addEdge(0, 1, 1.0),
                       UpdateEvent::addEdge(1, 2, 2.0),
                       UpdateEvent::addEdge(2, 3, 3.0)});
  EXPECT_EQ(stream.drainUntil(0.5).size(), 0u);
  EXPECT_EQ(stream.drainUntil(2.0).size(), 2u);
  EXPECT_EQ(stream.remaining(), 1u);
  EXPECT_EQ(stream.drainUntil(10.0).size(), 1u);
  EXPECT_TRUE(stream.exhausted());
  EXPECT_EQ(stream.drainUntil(99.0).size(), 0u);  // exactly-once
}

TEST(UpdateStream, ConstructorSortsByTime) {
  UpdateStream stream({UpdateEvent::addEdge(2, 3, 3.0),
                       UpdateEvent::addEdge(0, 1, 1.0)});
  const auto batch = stream.drainUntil(5.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0].timestamp, 1.0);
}

TEST(UpdateStream, PushClampsLateEvents) {
  UpdateStream stream({UpdateEvent::addEdge(0, 1, 5.0)});
  stream.push(UpdateEvent::addEdge(1, 2, 1.0));  // arrives late
  const auto batch = stream.drainUntil(5.0);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(ApplyUpdates, AppliesAllKinds) {
  DynamicGraph g(3);
  g.addEdge(0, 1);
  const std::size_t applied = applyUpdates(
      g, {UpdateEvent::addVertex(5), UpdateEvent::addEdge(1, 2),
          UpdateEvent::removeEdge(0, 1), UpdateEvent::removeVertex(0)});
  EXPECT_EQ(applied, 4u);
  EXPECT_TRUE(g.hasVertex(5));
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_FALSE(g.hasVertex(0));
}

TEST(ApplyUpdates, ReplaysAreNoops) {
  DynamicGraph g(3);
  g.addEdge(0, 1);
  const std::vector<UpdateEvent> events{UpdateEvent::addEdge(0, 1),
                                        UpdateEvent::removeVertex(9)};
  EXPECT_EQ(applyUpdates(g, events), 0u);
  EXPECT_EQ(g.numEdges(), 1u);
}

// ------------------------------------------------------------ IdMapper

TEST(IdMapper, InternsDensely) {
  IdMapper mapper;
  EXPECT_EQ(mapper.intern(1'000'000'007ULL), 0u);
  EXPECT_EQ(mapper.intern(42ULL), 1u);
  EXPECT_EQ(mapper.intern(1'000'000'007ULL), 0u);  // idempotent
  EXPECT_EQ(mapper.size(), 2u);
  EXPECT_EQ(mapper.external(1), 42ULL);
  EXPECT_EQ(mapper.lookup(42ULL), 1u);
  EXPECT_EQ(mapper.lookup(7ULL), kInvalidVertex);
}

}  // namespace
}  // namespace xdgp::graph
