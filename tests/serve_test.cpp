// Serving-layer suite: deterministic fault injection and recovery.
//
// The fault matrix covers every FaultPlan kind at thread counts {1, 2, 8}:
//   - kill@worker/superstep and drop@lane/superstep target the pregel
//     runtime's injection points: losses land in lostMessages with exact
//     accounting, the faulted trajectory is thread-invariant, and a clean
//     replay from the same inputs (= restart-from-checkpoint recovery) is
//     bit-identical to a run that never faulted;
//   - crash@window targets the serving loop: PartitionService::run throws
//     InjectedCrash after the window's work but before the snapshot swap
//     and checkpoint, and restore() + run() must reproduce the unfaulted
//     timeline and assignment bit-exactly.
//
// The concurrent-reader tests hammer SnapshotBoard::current across swaps
// from 8 threads (the TSan CI job runs this suite), asserting no torn
// epoch and monotone freshness.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/workload_registry.h"
#include "apps/degree_count.h"
#include "gen/mesh2d.h"
#include "graph/csr.h"
#include "partition/partitioner.h"
#include "pregel/engine.h"
#include "serve/fault.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace xdgp::serve {
namespace {

using apps::DegreeCountProgram;
using graph::DynamicGraph;
using graph::VertexId;

constexpr std::size_t kThreadMatrix[] = {1, 2, 8};

metrics::Assignment hashAssign(const DynamicGraph& g, std::size_t k) {
  util::Rng rng(1);
  return partition::makePartitioner("HSH")->partition(graph::CsrGraph::fromGraph(g),
                                                      k, 1.1, rng);
}

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParsesEveryKind) {
  const FaultPlan plan = FaultPlan::parse(
      "kill@worker=1,superstep=3;drop@lane=0:2,superstep=4;crash@window=2");
  ASSERT_EQ(plan.faults().size(), 3u);
  EXPECT_TRUE(plan.killsWorker(1, 3));
  EXPECT_FALSE(plan.killsWorker(1, 2));
  EXPECT_FALSE(plan.killsWorker(0, 3));
  EXPECT_TRUE(plan.dropsLane(0, 2, 4));
  EXPECT_FALSE(plan.dropsLane(2, 0, 4));  // lanes are directed
  EXPECT_FALSE(plan.dropsLane(0, 2, 3));
  EXPECT_TRUE(plan.crashesBeforeSwap(2));
  EXPECT_FALSE(plan.crashesBeforeSwap(3));
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_FALSE(FaultPlan::parse("crash@window=0").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode@window=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill@worker=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop@lane=0,superstep=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@worker=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill@worker=x,superstep=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill"), std::invalid_argument);
}

// --------------------------------------- pregel faults: kill / drop matrix

pregel::EngineOptions workerOptions(std::size_t k, std::size_t threads,
                                    const FaultPlan& plan) {
  pregel::EngineOptions options;
  options.numWorkers = k;
  options.threads = threads;
  options.faults = pregelFaultHooks(plan);
  return options;
}

std::vector<pregel::SuperstepStats> runDegreeCount(std::size_t threads,
                                                   const FaultPlan& plan) {
  const DynamicGraph g = gen::mesh2d(8, 8);
  pregel::Engine<DegreeCountProgram> engine(g, hashAssign(g, 4),
                                            workerOptions(4, threads, plan));
  engine.runSupersteps(4);
  return engine.history();
}

std::size_t totalLost(const std::vector<pregel::SuperstepStats>& history) {
  std::size_t lost = 0;
  for (const pregel::SuperstepStats& s : history) lost += s.lostMessages;
  return lost;
}

class PregelFaultMatrix : public ::testing::TestWithParam<const char*> {};

TEST_P(PregelFaultMatrix, LossesAccountedAndRecoveryIsCleanReplay) {
  const FaultPlan plan = FaultPlan::parse(GetParam());
  const std::vector<pregel::SuperstepStats> unfaulted =
      runDegreeCount(1, FaultPlan{});
  ASSERT_EQ(totalLost(unfaulted), 0u);
  const std::vector<pregel::SuperstepStats> faultedRef = runDegreeCount(1, plan);
  EXPECT_GT(totalLost(faultedRef), 0u) << "fault '" << GetParam() << "' was a no-op";

  for (const std::size_t threads : kThreadMatrix) {
    // The faulted trajectory is deterministic and thread-invariant: the
    // injected failure is a function of its coordinate, not a race.
    const std::vector<pregel::SuperstepStats> faulted = runDegreeCount(threads, plan);
    ASSERT_EQ(faulted.size(), faultedRef.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < faulted.size(); ++i) {
      EXPECT_EQ(faulted[i], faultedRef[i])
          << "threads=" << threads << " superstep " << i;
    }
    // Recovery = restart from the same inputs with no fault scheduled: the
    // replay must be bit-identical to the run that never faulted.
    const std::vector<pregel::SuperstepStats> replay =
        runDegreeCount(threads, FaultPlan{});
    ASSERT_EQ(replay.size(), unfaulted.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < replay.size(); ++i) {
      EXPECT_EQ(replay[i], unfaulted[i])
          << "threads=" << threads << " superstep " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KillAndDrop, PregelFaultMatrix,
                         ::testing::Values("kill@worker=1,superstep=1",
                                           "drop@lane=0:1,superstep=0"),
                         [](const auto& info) {
                           return std::string(info.param).substr(0, 4);
                         });

TEST(PregelFaults, KilledWorkerLosesItsWholeInbox) {
  const DynamicGraph g = gen::mesh2d(8, 8);
  const metrics::Assignment assignment = hashAssign(g, 4);
  // Superstep 0 pings every neighbour; killing worker 1 at superstep 1
  // forfeits exactly the messages addressed to its vertices.
  std::size_t expected = 0;
  g.forEachVertex([&](VertexId v) {
    if (assignment[v] == 1) expected += g.degree(v);
  });
  ASSERT_GT(expected, 0u);
  const FaultPlan plan = FaultPlan::parse("kill@worker=1,superstep=1");
  pregel::Engine<DegreeCountProgram> engine(g, assignment,
                                            workerOptions(4, 1, plan));
  engine.runSupersteps(2);
  EXPECT_EQ(engine.history()[1].lostMessages, expected);
}

TEST(PregelFaults, DroppedLaneLosesExactlyItsTraffic) {
  const DynamicGraph g = gen::mesh2d(8, 8);
  const metrics::Assignment assignment = hashAssign(g, 4);
  // Pings cross the 0→1 lane once per cut edge between those partitions
  // (the 1-side endpoint's reply rides the untouched 1→0 lane).
  std::size_t laneTraffic = 0;
  g.forEachEdge([&](VertexId u, VertexId v) {
    if (assignment[u] == 0 && assignment[v] == 1) ++laneTraffic;
    if (assignment[v] == 0 && assignment[u] == 1) ++laneTraffic;
  });
  ASSERT_GT(laneTraffic, 0u);
  const FaultPlan plan = FaultPlan::parse("drop@lane=0:1,superstep=0");
  pregel::Engine<DegreeCountProgram> engine(g, assignment,
                                            workerOptions(4, 1, plan));
  const pregel::SuperstepStats stats = engine.runSuperstep();
  EXPECT_EQ(stats.lostMessages, laneTraffic);
}

// ------------------------------------------- serving: crash/recover matrix

api::Workload churnWorkload() {
  api::WorkloadConfig config;
  config.overrides = {{"vertices", 400}, {"ticks", 4}, {"rate", 40}};
  return api::WorkloadRegistry::instance().make("CHURN", config);
}

core::AdaptiveOptions churnAdaptive(std::size_t threads) {
  core::AdaptiveOptions adaptive;
  adaptive.k = 4;
  adaptive.threads = threads;
  return adaptive;
}

/// A service over the small CHURN workload, windowed per the workload's
/// suggestion. PartitionService is immovable (the board's atomics), so the
/// return relies on guaranteed copy elision end to end.
PartitionService churnService(std::size_t threads, ServeOptions options = {}) {
  api::Workload workload = churnWorkload();
  options.stream = workload.suggested;
  return PartitionService(std::move(workload), "HSH", churnAdaptive(threads),
                          std::move(options));
}

void expectWindowEq(const api::WindowReport& a, const api::WindowReport& b,
                    const std::string& where) {
  EXPECT_EQ(a.index, b.index) << where;
  EXPECT_EQ(a.start, b.start) << where;
  EXPECT_EQ(a.end, b.end) << where;
  EXPECT_EQ(a.eventsDrained, b.eventsDrained) << where;
  EXPECT_EQ(a.eventsExpired, b.eventsExpired) << where;
  EXPECT_EQ(a.eventsApplied, b.eventsApplied) << where;
  EXPECT_EQ(a.vertices, b.vertices) << where;
  EXPECT_EQ(a.edges, b.edges) << where;
  EXPECT_EQ(a.iterations, b.iterations) << where;
  EXPECT_EQ(a.converged, b.converged) << where;
  EXPECT_EQ(a.migrations, b.migrations) << where;
  EXPECT_EQ(a.lostMessages, b.lostMessages) << where;
  EXPECT_EQ(a.cutRatio, b.cutRatio) << where;
  EXPECT_EQ(a.cutEdges, b.cutEdges) << where;
  EXPECT_EQ(a.balance.k, b.balance.k) << where;
  EXPECT_EQ(a.balance.totalVertices, b.balance.totalVertices) << where;
  EXPECT_EQ(a.balance.minLoad, b.balance.minLoad) << where;
  EXPECT_EQ(a.balance.maxLoad, b.balance.maxLoad) << where;
  EXPECT_EQ(a.balance.imbalance, b.balance.imbalance) << where;
  EXPECT_EQ(a.balance.densification, b.balance.densification) << where;
  // wallSeconds is real time and legitimately differs between runs.
}

void expectTimelineEq(const api::TimelineReport& a, const api::TimelineReport& b) {
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    expectWindowEq(a.windows[i], b.windows[i], "window " + std::to_string(i));
  }
}

std::string freshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

class CrashRecoverMatrix : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrashRecoverMatrix, RecoveredRunMatchesUnfaultedBitExactly) {
  const std::size_t threads = GetParam();
  const std::string dir = freshDir("serve_crash_t" + std::to_string(threads));

  PartitionService reference = churnService(1);
  reference.run();

  ServeOptions faultedOptions;
  faultedOptions.checkpointDir = dir;
  faultedOptions.faults = FaultPlan::parse("crash@window=2");
  PartitionService faulted = churnService(1, std::move(faultedOptions));
  EXPECT_THROW(faulted.run(), InjectedCrash);
  // The crash lost window 2's work: the checkpoint stops before it.
  EXPECT_EQ(faulted.nextWindow(), 2u);

  // The decision-phase thread count is trajectory-invariant, so the
  // restored service may converge on any number of threads.
  PartitionService recovered = PartitionService::restore(dir, threads);
  EXPECT_EQ(recovered.nextWindow(), 2u);
  const api::TimelineReport& timeline = recovered.run();

  expectTimelineEq(timeline, reference.timeline());
  EXPECT_EQ(recovered.session().engine().state().assignment(),
            reference.session().engine().state().assignment());
  EXPECT_EQ(recovered.session().engine().iteration(),
            reference.session().engine().iteration());
  EXPECT_EQ(recovered.session().engine().quietIterations(),
            reference.session().engine().quietIterations());
}

INSTANTIATE_TEST_SUITE_P(Threads, CrashRecoverMatrix,
                         ::testing::ValuesIn(kThreadMatrix));

TEST(CrashRecover, CrashAtEveryWindowRecovers) {
  PartitionService reference = churnService(1);
  reference.run();
  const std::size_t totalWindows = reference.timeline().windows.size();
  ASSERT_GE(totalWindows, 3u);
  // Window 0's crash has no prior checkpoint to restore from (the service
  // checkpoints after each applied window), so the matrix starts at 1.
  for (std::size_t window = 1; window < totalWindows; ++window) {
    const std::string dir = freshDir("serve_crash_w" + std::to_string(window));
    ServeOptions options;
    options.checkpointDir = dir;
    options.faults = FaultPlan::parse("crash@window=" + std::to_string(window));
    PartitionService faulted = churnService(1, std::move(options));
    EXPECT_THROW(faulted.run(), InjectedCrash);
    EXPECT_EQ(faulted.nextWindow(), window);
    PartitionService recovered = PartitionService::restore(dir);
    recovered.run();
    expectTimelineEq(recovered.timeline(), reference.timeline());
    EXPECT_EQ(recovered.session().engine().state().assignment(),
              reference.session().engine().state().assignment())
        << "crash at window " << window;
  }
}

// -------------------------------------------------- lockstep equivalence

TEST(Serving, ServiceTimelineEqualsSessionStream) {
  // Serving enabled (snapshots published every window) must not perturb the
  // trajectory: PartitionService::run is Session::stream plus publication.
  PartitionService service = churnService(1);
  const api::TimelineReport& served = service.run();
  ASSERT_FALSE(served.empty());

  api::Workload workload = churnWorkload();
  const api::StreamOptions stream = workload.suggested;
  api::Session session = api::Pipeline::fromGraph(std::move(workload.initial))
                             .initial("HSH")
                             .k(4)
                             .adaptive(churnAdaptive(1))
                             .start();
  const api::TimelineReport batch =
      session.stream(std::move(workload.stream), stream);

  expectTimelineEq(served, batch);
  EXPECT_EQ(service.session().engine().state().assignment(),
            session.engine().state().assignment());
  // One snapshot per window plus the construction epoch.
  EXPECT_EQ(service.board().publishedEpoch(), served.windows.size() + 1);
}

TEST(Serving, SnapshotsTrackLiveKAcrossElasticResizes) {
  // An LPA service that grows 4 -> 6 at window 1 and retires the two grown
  // partitions at window 2. Snapshots must surface the LIVE partition-set
  // shape — k() is the id space (grown, never shrunk back), stats().activeK
  // the serving set — and the board's epoch must keep strictly advancing
  // across both resizes (publish() throws on any regression, so a completed
  // run is itself the monotonicity proof; the counts pin it exactly).
  api::Workload workload = churnWorkload();
  ServeOptions options;
  options.stream = workload.suggested;
  options.resizes = parseResizePlan("grow@1:2;shrink@2:4+5");
  core::AdaptiveOptions adaptive = churnAdaptive(1);
  adaptive.engine = core::EngineKind::kLpa;
  PartitionService service(std::move(workload), "HSH", adaptive,
                           std::move(options));

  // Construction epoch: the pre-resize shape.
  const SnapshotBoard::Ref before = service.snapshot();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->epoch(), 1u);
  EXPECT_EQ(before->k(), 4u);
  EXPECT_EQ(before->stats().activeK, 4u);

  const api::TimelineReport& report = service.run();
  ASSERT_FALSE(report.empty());

  const core::Engine& engine = service.session().engine();
  EXPECT_EQ(engine.k(), 6u);
  EXPECT_EQ(engine.activeK(), 4u);

  const SnapshotBoard::Ref after = service.snapshot();
  ASSERT_NE(after, nullptr);
  // Epochs advanced strictly through the grow and shrink windows: one
  // publication per window on top of the construction epoch.
  EXPECT_EQ(after->epoch(), report.windows.size() + 1);
  EXPECT_EQ(service.board().publishedEpoch(), report.windows.size() + 1);
  EXPECT_GT(after->epoch(), before->epoch());
  // The snapshot mirrors the live engine, not the frozen options.
  EXPECT_EQ(after->k(), engine.k());
  EXPECT_EQ(after->stats().activeK, engine.activeK());
  EXPECT_EQ(after->stats().window, report.windows.size());
  // No vertex is served from a retired partition once the drain completed.
  const metrics::Assignment& assignment = engine.state().assignment();
  for (VertexId v = 0; v < assignment.size(); ++v) {
    if (!engine.graph().hasVertex(v)) continue;
    EXPECT_EQ(after->partitionOf(v), assignment[v]);
    EXPECT_LT(assignment[v], 4u) << "vertex " << v << " on retired partition";
  }
}

// ---------------------------------------------- snapshot queries & board

AssignmentSnapshot meshSnapshot(std::uint64_t epoch, std::size_t k) {
  const DynamicGraph g = gen::mesh2d(4, 4);
  return AssignmentSnapshot(epoch, g, hashAssign(g, k), k, SnapshotStats{});
}

TEST(Snapshot, AnswersQueriesAgainstItsFrozenState) {
  const DynamicGraph g = gen::mesh2d(4, 4);
  const metrics::Assignment assignment = hashAssign(g, 2);
  const AssignmentSnapshot snap(1, g, assignment, 2, SnapshotStats{});
  EXPECT_EQ(snap.epoch(), 1u);
  EXPECT_FALSE(snap.torn());
  EXPECT_EQ(snap.k(), 2u);
  EXPECT_EQ(snap.idBound(), g.idBound());
  g.forEachVertex([&](VertexId v) {
    EXPECT_TRUE(snap.hasVertex(v));
    EXPECT_EQ(snap.partitionOf(v), assignment[v]);
    EXPECT_EQ(snap.degree(v), g.degree(v));
    std::size_t cut = 0;
    for (const VertexId nbr : snap.neighbors(v)) {
      if (assignment[nbr] != assignment[v]) ++cut;
    }
    EXPECT_EQ(snap.cutDegree(v), cut);
  });
  g.forEachEdge([&](VertexId u, VertexId v) {
    EXPECT_EQ(snap.routeCost(u, v), assignment[u] == assignment[v]
                                        ? AssignmentSnapshot::kRouteLocal
                                        : AssignmentSnapshot::kRouteRemote);
  });
  const auto unknown = static_cast<VertexId>(g.idBound() + 7);
  EXPECT_EQ(snap.partitionOf(unknown), graph::kNoPartition);
  EXPECT_EQ(snap.routeCost(0, unknown), AssignmentSnapshot::kRouteUnknown);
}

TEST(SnapshotBoardTest, RejectsNonAdvancingEpochs) {
  SnapshotBoard board;
  EXPECT_EQ(board.current(), nullptr);
  EXPECT_EQ(board.publishedEpoch(), 0u);
  board.publish(meshSnapshot(3, 2));
  EXPECT_EQ(board.publishedEpoch(), 3u);
  EXPECT_THROW(board.publish(meshSnapshot(3, 2)), std::logic_error);
  EXPECT_THROW(board.publish(meshSnapshot(2, 2)), std::logic_error);
  board.publish(meshSnapshot(4, 2));
  EXPECT_EQ(board.current()->epoch(), 4u);
}

TEST(SnapshotBoardTest, EightReadersAcrossSwapsSeeNoTornEpochs) {
  // The concurrent-publication contract, hammered: 8 readers spin on
  // current() while the writer swaps hundreds of epochs. Every observed
  // snapshot must be internally consistent (head epoch == tail epoch,
  // payload matching the epoch's assignment) and epochs must never regress
  // within a reader. The TSan CI job runs this test for the memory-order
  // proof; the assertions here catch logical tearing on any build.
  const DynamicGraph g = gen::mesh2d(8, 8);
  constexpr std::size_t kReaders = 8;
  constexpr std::uint64_t kEpochs = 400;

  SnapshotBoard board;
  // Seed epoch 1 with partition 1 so the seed itself satisfies the
  // payload-matches-epoch invariant the readers assert below.
  board.publish(AssignmentSnapshot(1, g, metrics::Assignment(g.idBound(), 1), 2,
                                   SnapshotStats{}));
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t lastSeen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotBoard::Ref snap = board.current();
        if (!snap) continue;
        const bool torn = snap->torn();
        const bool regressed = snap->epoch() < lastSeen;
        // Epoch e published assignment (e % 2) everywhere: the payload must
        // match the stamp, or the reader caught a half-built snapshot.
        const bool mismatched =
            snap->partitionOf(0) !=
            static_cast<graph::PartitionId>(snap->epoch() % 2);
        if (torn || regressed || mismatched) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        lastSeen = snap->epoch();
      }
    });
  }
  for (std::uint64_t epoch = 2; epoch <= kEpochs; ++epoch) {
    board.publish(AssignmentSnapshot(
        epoch, g,
        metrics::Assignment(g.idBound(),
                            static_cast<graph::PartitionId>(epoch % 2)),
        2, SnapshotStats{}));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(board.publishedEpoch(), kEpochs);
}

TEST(Serving, QueriesDuringLiveIngestMatchTheFinalState) {
  // End-to-end concurrency: 8 readers query while the service ingests and
  // swaps. Afterwards the last snapshot must agree with the engine.
  PartitionService service = churnService(1);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> tornSeen{0};
  std::vector<std::thread> readers;
  readers.reserve(8);
  for (std::size_t r = 0; r < 8; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotBoard::Ref snap = service.board().current();
        if (snap && snap->torn()) tornSeen.fetch_add(1);
      }
    });
  }
  service.run();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(tornSeen.load(), 0u);

  const SnapshotBoard::Ref last = service.snapshot();
  ASSERT_NE(last, nullptr);
  const metrics::Assignment& assignment =
      service.session().engine().state().assignment();
  for (VertexId v = 0; v < assignment.size(); ++v) {
    EXPECT_EQ(last->partitionOf(v), assignment[v]);
  }
  EXPECT_EQ(last->stats().window, service.nextWindow());
}

}  // namespace
}  // namespace xdgp::serve
