// The streaming workload layer: WorkloadRegistry metadata + the
// registry-driven property suite (every registered workload is tested for
// free), the REPLAY round trip through the event-file format, and the
// Session::stream lockstep against the hand-driven drain/apply/converge
// sequence it replaces.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "api/partitioner_registry.h"
#include "api/pipeline.h"
#include "api/workload_registry.h"
#include "core/adaptive_engine.h"
#include "graph/io.h"

namespace xdgp::api {
namespace {

/// Small-scale overrides so the whole suite stays fast.
WorkloadConfig smallConfig(const std::string& code) {
  WorkloadConfig config;
  config.seed = 7;
  if (code == "TWEET") {
    config.overrides = {{"users", 800}, {"rate", 1.0}, {"hours", 1.0}};
  } else if (code == "CDR") {
    config.overrides = {{"subscribers", 1'500}, {"weeks", 2}};
  } else if (code == "FFIRE") {
    config.overrides = {{"side", 20}, {"batches", 4}, {"burst", 40}};
  } else if (code == "CHURN") {
    config.overrides = {{"vertices", 600}, {"ticks", 4}, {"rate", 120}};
  } else if (code == "REPLAY") {
    // REPLAY is file-driven: a canned CHURN run provides the fixture. The
    // paths are per-process: ctest runs each test of this binary as its own
    // process, and siblings truncating/rewriting a shared path while another
    // reads it is a race (it surfaced as a parallel-ctest flake).
    static const std::string suffix = std::to_string(::getpid());
    static const std::string eventsPath =
        testing::TempDir() + "workload_test_replay_events." + suffix + ".txt";
    static const std::string graphPath =
        testing::TempDir() + "workload_test_replay_graph." + suffix + ".el";
    static const bool written = [] {
      const Workload seed =
          WorkloadRegistry::instance().make("CHURN", smallConfig("CHURN"));
      graph::writeEvents(seed.stream.events(), eventsPath);
      graph::writeEdgeList(seed.initial, graphPath);
      return true;
    }();
    (void)written;
    config.eventsPath = eventsPath;
    config.graphPath = graphPath;
  }
  return config;
}

std::vector<std::pair<graph::VertexId, graph::VertexId>> edgesOf(
    const graph::DynamicGraph& g) {
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    edges.emplace_back(u, v);
  });
  std::sort(edges.begin(), edges.end());
  return edges;
}

// ------------------------------------------------------------- registry

TEST(WorkloadRegistry, CatalogListsAllBuiltins) {
  const auto codes = WorkloadRegistry::instance().codes();
  EXPECT_GE(codes.size(), 5u);
  for (const std::string expected : {"TWEET", "CDR", "FFIRE", "CHURN", "REPLAY"}) {
    EXPECT_TRUE(WorkloadRegistry::instance().has(expected)) << expected;
  }
  EXPECT_TRUE(std::is_sorted(codes.begin(), codes.end()));
}

TEST(WorkloadRegistry, UnknownCodeFailsWithTheMenu) {
  try {
    (void)WorkloadRegistry::instance().make("XYZ");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("XYZ"), std::string::npos);
    EXPECT_NE(what.find("CDR"), std::string::npos);  // menu is in the message
  }
}

TEST(WorkloadRegistry, UnknownParamOverrideFailsWithTheParamMenu) {
  WorkloadConfig config;
  config.overrides["user"] = 10.0;  // typo for "users"
  try {
    (void)WorkloadRegistry::instance().make("TWEET", config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("user"), std::string::npos);
    EXPECT_NE(what.find("users"), std::string::npos);  // the real knob
  }
}

TEST(WorkloadRegistry, ReplayWithoutAnEventFileIsRejected) {
  EXPECT_THROW((void)WorkloadRegistry::instance().make("REPLAY"),
               std::invalid_argument);
}

TEST(WorkloadRegistry, RejectsDuplicatesAndIncompleteEntries) {
  const auto nullFactory = [](const WorkloadConfig&, const WorkloadParams&) {
    return Workload{};
  };
  WorkloadInfo duplicate;
  duplicate.code = "TWEET";
  duplicate.summary = "dup";
  duplicate.make = nullFactory;
  EXPECT_THROW(WorkloadRegistry::instance().add(duplicate), std::invalid_argument);

  WorkloadInfo noFactory;
  noFactory.code = "NOFACTORY";
  noFactory.summary = "x";
  EXPECT_THROW(WorkloadRegistry::instance().add(noFactory), std::invalid_argument);

  WorkloadInfo dupParam;
  dupParam.code = "DUPPARAM";
  dupParam.summary = "x";
  dupParam.params = {{"n", "a", 1}, {"n", "b", 2}};
  dupParam.make = nullFactory;
  EXPECT_THROW(WorkloadRegistry::instance().add(dupParam), std::invalid_argument);
}

TEST(WorkloadRegistry, FactoriesCannotReadUndeclaredParams) {
  const WorkloadParams params({{"declared", 1.0}});
  EXPECT_DOUBLE_EQ(params.get("declared"), 1.0);
  EXPECT_THROW((void)params.get("undeclared"), std::invalid_argument);
}

// ---------------------------------------- registry-driven property suite
//
// Every registered workload — present and future — must uphold the stream
// source contract. New registrations get these tests for free.

class RegisteredWorkloadTest : public testing::TestWithParam<std::string> {
 protected:
  [[nodiscard]] static const WorkloadInfo& info() {
    return WorkloadRegistry::instance().info(GetParam());
  }
  [[nodiscard]] static Workload make() {
    return WorkloadRegistry::instance().make(GetParam(), smallConfig(GetParam()));
  }
};

TEST_P(RegisteredWorkloadTest, HasMetadataAndANonEmptyStream) {
  EXPECT_FALSE(info().summary.empty());
  Workload workload = make();
  EXPECT_EQ(workload.code, GetParam());
  EXPECT_GT(workload.stream.size(), 0u);
}

TEST_P(RegisteredWorkloadTest, StreamIsTimeOrdered) {
  const Workload workload = make();
  const auto& events = workload.stream.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].timestamp, events[i].timestamp) << "at event " << i;
  }
}

TEST_P(RegisteredWorkloadTest, SameSeedSameWorkloadWherePromised) {
  if (!info().deterministicGivenSeed) GTEST_SKIP();
  const Workload a = make();
  const Workload b = make();
  EXPECT_EQ(a.stream.events(), b.stream.events());
  EXPECT_EQ(a.initial.numVertices(), b.initial.numVertices());
  EXPECT_EQ(edgesOf(a.initial), edgesOf(b.initial));
}

TEST_P(RegisteredWorkloadTest, InitialGraphAndStreamAreConsistent) {
  Workload workload = make();
  graph::DynamicGraph g = workload.initial;
  const std::size_t applied = graph::applyUpdates(g, workload.stream.events());
  EXPECT_GT(applied, 0u);
  EXPECT_GT(g.numVertices(), 0u);
  // The stream must talk about the same id universe as the initial graph:
  // every surviving endpoint is a real vertex.
  g.forEachEdge([&](graph::VertexId u, graph::VertexId v) {
    ASSERT_TRUE(g.hasVertex(u));
    ASSERT_TRUE(g.hasVertex(v));
  });
}

TEST_P(RegisteredWorkloadTest, SuggestedOptionsSelectExactlyOneWindowMode) {
  const Workload workload = make();
  const bool byTime = workload.suggested.windowSpan > 0.0;
  const bool byCount = workload.suggested.windowEvents > 0;
  EXPECT_NE(byTime, byCount);
}

TEST_P(RegisteredWorkloadTest, SuggestedWindowingYieldsAtLeastTwoWindows) {
  Workload workload = make();
  Streamer streamer(std::move(workload.stream), workload.suggested);
  std::size_t windows = 0;
  std::size_t delivered = 0;
  while (const auto batch = streamer.next()) {
    ++windows;
    delivered += batch->drained;
  }
  EXPECT_GE(windows, 2u);
  EXPECT_EQ(delivered, make().stream.size());  // every event lands somewhere
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, RegisteredWorkloadTest,
                         testing::ValuesIn(WorkloadRegistry::instance().codes()),
                         [](const auto& param_info) { return param_info.param; });

// ------------------------------------------------------- REPLAY round trip

TEST(Replay, RoundTripsAWorkloadThroughTheEventFile) {
  const Workload original =
      WorkloadRegistry::instance().make("TWEET", smallConfig("TWEET"));

  const std::string eventsPath = testing::TempDir() + "replay_roundtrip_events.txt";
  const std::string graphPath = testing::TempDir() + "replay_roundtrip_graph.el";
  graph::writeEvents(original.stream.events(), eventsPath);
  graph::writeEdgeList(original.initial, graphPath);

  WorkloadConfig config;
  config.eventsPath = eventsPath;
  config.graphPath = graphPath;
  const Workload replayed = WorkloadRegistry::instance().make("REPLAY", config);

  EXPECT_EQ(replayed.stream.events(), original.stream.events());
  EXPECT_EQ(replayed.initial.numVertices(), original.initial.numVertices());
  EXPECT_EQ(edgesOf(replayed.initial), edgesOf(original.initial));
}

// --------------------------------------------------- Session::stream

/// Session::stream on one window must equal the hand-driven sequence it
/// replaced: drainUntil + applyUpdates + rescale + runToConvergence.
TEST(SessionStream, LockstepWithManualDrainApplyConverge) {
  const std::size_t k = 4;
  const std::uint64_t seed = 9;
  Workload forSession = WorkloadRegistry::instance().make("CHURN", smallConfig("CHURN"));
  Workload forManual = WorkloadRegistry::instance().make("CHURN", smallConfig("CHURN"));

  // Manual arm: exactly what repartition_live used to hand-wire.
  core::AdaptiveOptions manualOptions;
  manualOptions.k = k;
  manualOptions.seed = seed;
  core::AdaptiveEngine manual(
      forManual.initial,
      initialAssignment(forManual.initial, "HSH", k, 1.1, seed), manualOptions);
  const auto batch = forManual.stream.drainUntil(1.0);
  (void)manual.applyUpdates(batch);
  manual.rescaleCapacity();
  const core::ConvergenceResult manualResult = manual.runToConvergence(20'000);

  // API arm: one time window of the same span.
  Session session = Pipeline::fromGraph(std::move(forSession.initial))
                        .initial("HSH")
                        .k(k)
                        .seed(seed)
                        .adaptive()
                        .start();
  StreamOptions options;
  options.windowSpan = 1.0;
  options.maxWindows = 1;
  const TimelineReport timeline =
      session.stream(std::move(forSession.stream), options);

  ASSERT_EQ(timeline.windows.size(), 1u);
  const WindowReport& window = timeline.windows.front();
  EXPECT_EQ(window.eventsDrained, batch.size());
  EXPECT_EQ(window.iterations, manualResult.iterationsRun);
  EXPECT_EQ(window.converged, manualResult.converged);
  EXPECT_EQ(window.migrations, manual.totalMigrations());
  EXPECT_EQ(window.cutEdges, manual.state().cutEdges());
  EXPECT_DOUBLE_EQ(window.cutRatio, manual.cutRatio());
  EXPECT_EQ(session.engine().state().assignment(), manual.state().assignment());
}

TEST(SessionStream, TimelineCoversTheWholeStreamAndImprovesTheCut) {
  Workload workload = WorkloadRegistry::instance().make("FFIRE", smallConfig("FFIRE"));
  Session session = Pipeline::fromGraph(std::move(workload.initial))
                        .initial("HSH")
                        .k(4)
                        .seed(3)
                        .adaptive()
                        .start();
  const double initialCut = session.cutRatio();
  const TimelineReport timeline =
      session.stream(std::move(workload.stream), workload.suggested);

  ASSERT_GE(timeline.windows.size(), 2u);
  for (std::size_t i = 0; i < timeline.windows.size(); ++i) {
    EXPECT_EQ(timeline.windows[i].index, i);
    EXPECT_GE(timeline.windows[i].cutRatio, 0.0);
    EXPECT_LE(timeline.windows[i].cutRatio, 1.0);
  }
  EXPECT_GT(timeline.totalApplied(), 0u);
  EXPECT_LT(timeline.back().cutRatio, 0.6 * initialCut);
  // The session's cumulative report reflects the streamed run.
  const RunReport report = session.report();
  EXPECT_TRUE(report.adapted);
  EXPECT_DOUBLE_EQ(report.finalCutRatio, timeline.back().cutRatio);
}

TEST(SessionStream, StaticArmAppliesButNeverAdapts) {
  Workload workload = WorkloadRegistry::instance().make("CHURN", smallConfig("CHURN"));
  Session session = Pipeline::fromGraph(std::move(workload.initial))
                        .initial("HSH")
                        .k(4)
                        .seed(3)
                        .adaptive()
                        .start();
  StreamOptions options = workload.suggested;
  options.adapt = false;
  const TimelineReport timeline =
      session.stream(std::move(workload.stream), options);
  ASSERT_GE(timeline.windows.size(), 2u);
  for (const WindowReport& window : timeline.windows) {
    EXPECT_EQ(window.iterations, 0u);
    EXPECT_EQ(window.migrations, 0u);
    EXPECT_FALSE(window.converged);
  }
}

// ------------------------------------------------------- TimelineReport

TEST(TimelineReport, RenderersAgreeWithTheHeaderAndTheWindows) {
  Workload workload = WorkloadRegistry::instance().make("CHURN", smallConfig("CHURN"));
  Session session = Pipeline::fromGraph(std::move(workload.initial))
                        .initial("HSH")
                        .k(3)
                        .seed(1)
                        .adaptive()
                        .start();
  TimelineReport timeline =
      session.stream(std::move(workload.stream), workload.suggested);
  timeline.workload = "CHURN";

  for (const WindowReport& window : timeline.windows) {
    EXPECT_EQ(window.csvRow().size(), WindowReport::csvHeader().size());
  }

  std::ostringstream csv;
  timeline.renderCsv(csv);
  std::ostringstream jsonl;
  timeline.renderJsonl(jsonl);
  std::ostringstream text;
  timeline.renderText(text);

  const auto lines = [](const std::string& s) {
    return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
  };
  EXPECT_EQ(lines(csv.str()), timeline.windows.size() + 1);  // header + rows
  EXPECT_EQ(lines(jsonl.str()), timeline.windows.size());
  EXPECT_NE(text.str().find("CHURN"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"cut_ratio\":"), std::string::npos);
}

}  // namespace
}  // namespace xdgp::api
