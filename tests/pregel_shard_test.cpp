// Sharded-runtime equivalence suite: EngineOptions::threads must be a pure
// performance knob, the pregel analogue of tests/frontier_test.cpp. Engines
// at threads = 1, 2, 8 over the same graph/initial/seed, stepped in lockstep
// under fuzzed churn, must produce *bit-identical* SuperstepStats rows
// (float sums included — per-worker accumulation in vertex order, reduced in
// worker order), identical assignments and loads, and identical vertex
// values at every superstep. A second group pins the runtime's structural
// invariants: shard membership always equals the partition assignment, in
// ascending id order.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "apps/degree_count.h"
#include "apps/pagerank.h"
#include "apps/tunkrank.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "graph/csr.h"
#include "graph/update_stream.h"
#include "partition/partitioner.h"
#include "pregel/engine.h"

namespace xdgp::pregel {
namespace {

using graph::DynamicGraph;
using graph::UpdateEvent;
using graph::VertexId;

metrics::Assignment hashAssign(const DynamicGraph& g, std::size_t k) {
  util::Rng rng(1);
  return partition::makePartitioner("HSH")->partition(graph::CsrGraph::fromGraph(g),
                                                      k, 1.1, rng);
}

EngineOptions shardedOptions(std::size_t k, std::size_t threads, bool adaptive) {
  EngineOptions options;
  options.numWorkers = k;
  options.threads = threads;
  options.adaptive = adaptive;
  options.partitioner.seed = 97;
  return options;
}

/// Triplet of engines differing only in thread count.
template <typename Program>
struct Trio {
  Engine<Program> t1, t2, t8;

  Trio(const DynamicGraph& g, const metrics::Assignment& initial, std::size_t k,
       bool adaptive, Program program = Program{})
      : t1(DynamicGraph(g), initial, shardedOptions(k, 1, adaptive), program),
        t2(DynamicGraph(g), initial, shardedOptions(k, 2, adaptive), program),
        t8(DynamicGraph(g), initial, shardedOptions(k, 8, adaptive), program) {}

  void ingestAll(const std::vector<UpdateEvent>& events) {
    t1.ingest(events);
    t2.ingest(events);
    t8.ingest(events);
  }

  /// One lockstep superstep; asserts every observable is bit-identical.
  void stepAll(int step) {
    const SuperstepStats s1 = t1.runSuperstep();
    const SuperstepStats s2 = t2.runSuperstep();
    const SuperstepStats s8 = t8.runSuperstep();
    ASSERT_EQ(s1, s2) << "threads=2 diverged at superstep " << step;
    ASSERT_EQ(s1, s8) << "threads=8 diverged at superstep " << step;
    ASSERT_EQ(t1.state().assignment(), t2.state().assignment()) << "step " << step;
    ASSERT_EQ(t1.state().assignment(), t8.state().assignment()) << "step " << step;
    ASSERT_EQ(t1.state().loads(), t8.state().loads()) << "step " << step;
  }

  /// Exact (bitwise for doubles) vertex-value comparison.
  template <typename Fn>
  void compareValues(Fn&& extract) {
    t1.graph().forEachVertex([&](VertexId v) {
      ASSERT_EQ(extract(t1.value(v)), extract(t2.value(v))) << "vertex " << v;
      ASSERT_EQ(extract(t1.value(v)), extract(t8.value(v))) << "vertex " << v;
    });
  }
};

std::vector<UpdateEvent> churnBatch(const DynamicGraph& g, util::Rng& rng,
                                    std::size_t count) {
  std::vector<UpdateEvent> events;
  const std::size_t idSpace = g.idBound() + 8;
  for (std::size_t e = 0; e < count; ++e) {
    const auto u = static_cast<VertexId>(rng.index(idSpace));
    const auto v = static_cast<VertexId>(rng.index(idSpace));
    switch (rng.below(6)) {
      case 0:
        events.push_back(UpdateEvent::addVertex(u));
        break;
      case 1:
        if (g.numVertices() > 80) events.push_back(UpdateEvent::removeVertex(u));
        break;
      case 2:
      case 3:
        events.push_back(UpdateEvent::addEdge(u, v));
        break;
      default:
        events.push_back(UpdateEvent::removeEdge(u, v));
        break;
    }
  }
  return events;
}

// --------------------------------------------- thread-count invariance

TEST(ShardedRuntime, PageRankLockstepUnderChurn) {
  util::Rng genRng(5);
  const DynamicGraph g = gen::powerlawCluster(500, 4, 0.2, genRng);
  apps::PageRankProgram program;
  program.setNumVertices(g.numVertices());
  Trio<apps::PageRankProgram> trio(g, hashAssign(g, 6), 6, /*adaptive=*/true,
                                   program);

  util::Rng churn(23);
  int step = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 5; ++i) {
      trio.stepAll(step++);
      if (testing::Test::HasFatalFailure()) return;
    }
    trio.ingestAll(churnBatch(trio.t1.graph(), churn, 30));
    trio.compareValues([](double rank) { return rank; });
    if (testing::Test::HasFatalFailure()) return;
  }
  // Full stats histories must be element-wise identical, floats included.
  EXPECT_EQ(trio.t1.history(), trio.t8.history());
}

TEST(ShardedRuntime, TunkRankLockstepUnderChurn) {
  util::Rng genRng(11);
  const DynamicGraph g = gen::powerlawCluster(400, 5, 0.3, genRng);
  Trio<apps::TunkRankProgram> trio(g, hashAssign(g, 9), 9, /*adaptive=*/true);

  util::Rng churn(41);
  int step = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 6; ++i) {
      trio.stepAll(step++);
      if (testing::Test::HasFatalFailure()) return;
    }
    trio.ingestAll(churnBatch(trio.t1.graph(), churn, 40));
    trio.compareValues([](double influence) { return influence; });
    if (testing::Test::HasFatalFailure()) return;
  }
  EXPECT_EQ(trio.t1.history(), trio.t8.history());
}

TEST(ShardedRuntime, InstantMigrationAblationIsAlsoInvariant) {
  // Lost messages (Fig. 3 top) must be counted identically at any thread
  // count: the loss condition depends only on the frozen ledger and state.
  const DynamicGraph g = gen::mesh3d(7, 7, 7);
  const auto initial = hashAssign(g, 9);
  const auto run = [&](std::size_t threads) {
    EngineOptions options = shardedOptions(9, threads, /*adaptive=*/true);
    options.deferredMigration = false;
    Engine<apps::DegreeCountProgram> engine(g, initial, options);
    for (int i = 0; i < 30; ++i) engine.runSuperstep();
    return engine.history();
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(4));
  std::size_t lost = 0;
  for (const SuperstepStats& s : serial) lost += s.lostMessages;
  EXPECT_GT(lost, 0u) << "the ablation must actually lose messages";
}

TEST(ShardedRuntime, FreezeThawTrajectoryMatchesAcrossThreads) {
  const DynamicGraph g = gen::mesh3d(6, 6, 6);
  Trio<apps::DegreeCountProgram> trio(g, hashAssign(g, 5), 5, /*adaptive=*/true);
  util::Rng churn(7);
  int step = 0;
  for (int round = 0; round < 4; ++round) {
    trio.t1.freezeTopology();
    trio.t2.freezeTopology();
    trio.t8.freezeTopology();
    trio.ingestAll(churnBatch(trio.t1.graph(), churn, 25));
    for (int i = 0; i < 4; ++i) {
      trio.stepAll(step++);
      if (testing::Test::HasFatalFailure()) return;
    }
    const std::size_t applied = trio.t1.thawTopology();
    EXPECT_EQ(applied, trio.t2.thawTopology());
    EXPECT_EQ(applied, trio.t8.thawTopology());
  }
  EXPECT_EQ(trio.t1.history(), trio.t8.history());
}

// --------------------------------------------- runtime structural invariants

TEST(ShardedRuntime, ShardsPartitionTheAliveVertices) {
  util::Rng genRng(3);
  const DynamicGraph g = gen::powerlawCluster(300, 4, 0.2, genRng);
  Engine<apps::DegreeCountProgram> engine(g, hashAssign(g, 6),
                                          shardedOptions(6, 2, true));
  util::Rng churn(13);
  for (int round = 0; round < 5; ++round) {
    engine.runSupersteps(4);
    engine.ingest(churnBatch(engine.graph(), churn, 50));
    engine.runSuperstep();
    // Membership invariant: shards partition the alive vertices exactly as
    // the assignment says. (Ascending *order* is only re-established at the
    // next superstep's start — migrations at the end of a superstep may
    // disturb it until then; the lockstep suites above prove the compute
    // phase always sees the normalised order.)
    std::vector<std::uint8_t> seen(engine.graph().idBound(), 0);
    std::size_t total = 0;
    for (WorkerId w = 0; w < 6; ++w) {
      const auto shard = engine.runtime().shard(w);
      for (const VertexId v : shard) {
        ASSERT_TRUE(engine.graph().hasVertex(v)) << "dead vertex in shard " << w;
        ASSERT_EQ(engine.state().partitionOf(v), w) << "vertex " << v;
        ASSERT_FALSE(seen[v]) << "vertex " << v << " in two shards";
        seen[v] = 1;
      }
      total += shard.size();
    }
    ASSERT_EQ(total, engine.graph().numVertices());
  }
}

// --------------------------------------------- satellite guarantees

TEST(ShardedRuntime, OutOfRangeInitialAssignmentThrows) {
  DynamicGraph g = gen::mesh3d(3, 3, 3);
  metrics::Assignment bad = hashAssign(g, 4);
  bad[5] = 7;  // references a worker that does not exist with numWorkers=4
  EngineOptions options;
  options.numWorkers = 4;
  EXPECT_THROW((Engine<apps::DegreeCountProgram>(g, bad, options)),
               std::invalid_argument);
  // In range again: constructing must succeed.
  bad[5] = 3;
  EXPECT_NO_THROW((Engine<apps::DegreeCountProgram>(g, bad, options)));
}

TEST(ShardedRuntime, RunSuperstepsZeroReturnsNullopt) {
  DynamicGraph g = gen::mesh3d(3, 3, 3);
  Engine<apps::DegreeCountProgram> engine(g, hashAssign(g, 2),
                                          shardedOptions(2, 1, false));
  EXPECT_EQ(engine.runSupersteps(0), std::nullopt);
  EXPECT_EQ(engine.superstepIndex(), 0u);
  EXPECT_TRUE(engine.history().empty());

  const std::optional<SuperstepStats> last = engine.runSupersteps(3);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->superstep, 2u);
  EXPECT_EQ(engine.history().back(), *last);
}

}  // namespace
}  // namespace xdgp::pregel
