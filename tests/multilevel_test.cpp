#include <gtest/gtest.h>

#include <numeric>

#include "gen/erdos_renyi.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "metrics/balance.h"
#include "metrics/cuts.h"
#include "partition/coarsen.h"
#include "partition/fm_refine.h"
#include "partition/multilevel_partitioner.h"
#include "partition/partitioner.h"
#include "partition/region_growing.h"
#include "partition/weighted_graph.h"

namespace xdgp::partition {
namespace {

using graph::CsrGraph;
using graph::VertexId;

WeightedGraph meshWeighted(std::vector<VertexId>& ids) {
  const CsrGraph csr = CsrGraph::fromGraph(gen::mesh2d(16, 16));
  return WeightedGraph::fromCsr(csr, ids);
}

// ------------------------------------------------------------ lift

TEST(WeightedGraph, UnitLiftFromCsr) {
  std::vector<VertexId> ids;
  const WeightedGraph wg = meshWeighted(ids);
  EXPECT_EQ(wg.numVertices(), 256u);
  EXPECT_EQ(wg.totalVertexWeight, 256);
  EXPECT_EQ(ids.size(), 256u);
  std::size_t dirEdges = 0;
  for (const auto& row : wg.adjacency) dirEdges += row.size();
  EXPECT_EQ(dirEdges, 2 * gen::mesh2d(16, 16).numEdges());
}

TEST(WeightedGraph, SkipsDeadIds) {
  graph::DynamicGraph dyn = gen::mesh2d(6, 6);
  dyn.removeVertex(7);
  std::vector<VertexId> ids;
  const WeightedGraph wg =
      WeightedGraph::fromCsr(CsrGraph::fromGraph(dyn), ids);
  EXPECT_EQ(wg.numVertices(), 35u);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 7u), 0);
}

// ------------------------------------------------------------ matching

TEST(HeavyEdgeMatching, ProducesValidMatching) {
  std::vector<VertexId> ids;
  const WeightedGraph wg = meshWeighted(ids);
  util::Rng rng(1);
  const auto match = heavyEdgeMatching(wg, rng);
  for (VertexId v = 0; v < wg.numVertices(); ++v) {
    EXPECT_EQ(match[match[v]], v) << "matching must be an involution";
  }
}

TEST(HeavyEdgeMatching, PrefersHeavyEdges) {
  // Triangle with one heavy edge. The random visit order can occasionally
  // start at the light vertex and steal an endpoint, so the heavy pair must
  // match in a clear majority of seeds (it matches whenever either heavy
  // endpoint is visited first: probability 2/3 at minimum).
  WeightedGraph wg;
  wg.vertexWeights = {1, 1, 1};
  wg.totalVertexWeight = 3;
  wg.adjacency = {{{1, 100}, {2, 1}}, {{0, 100}, {2, 1}}, {{0, 1}, {1, 1}}};
  int heavyMatched = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    util::Rng rng(seed);
    const auto match = heavyEdgeMatching(wg, rng);
    heavyMatched += match[0] == 1u;
  }
  EXPECT_GE(heavyMatched, 15);
}

TEST(HeavyEdgeMatching, MatchesMostOfAMesh) {
  std::vector<VertexId> ids;
  const WeightedGraph wg = meshWeighted(ids);
  util::Rng rng(3);
  const auto match = heavyEdgeMatching(wg, rng);
  std::size_t matched = 0;
  for (VertexId v = 0; v < wg.numVertices(); ++v) matched += match[v] != v;
  EXPECT_GT(matched, wg.numVertices() / 2);  // meshes match densely
}

// ------------------------------------------------------------ contraction

TEST(Contract, PreservesTotalVertexWeight) {
  std::vector<VertexId> ids;
  const WeightedGraph wg = meshWeighted(ids);
  util::Rng rng(4);
  const CoarseLevel level = contract(wg, heavyEdgeMatching(wg, rng));
  std::int64_t total = 0;
  for (const auto w : level.graph.vertexWeights) total += w;
  EXPECT_EQ(total, wg.totalVertexWeight);
  EXPECT_LT(level.graph.numVertices(), wg.numVertices());
}

TEST(Contract, ProjectionCoversAllFineVertices) {
  std::vector<VertexId> ids;
  const WeightedGraph wg = meshWeighted(ids);
  util::Rng rng(5);
  const CoarseLevel level = contract(wg, heavyEdgeMatching(wg, rng));
  for (const VertexId coarse : level.fineToCoarse) {
    ASSERT_LT(coarse, level.graph.numVertices());
  }
}

TEST(Contract, CutIsInvariantUnderProjection) {
  std::vector<VertexId> ids;
  const WeightedGraph wg = meshWeighted(ids);
  util::Rng rng(6);
  const CoarseLevel level = contract(wg, heavyEdgeMatching(wg, rng));
  // Random 3-way coarse assignment projected to fine must give equal cuts.
  std::vector<graph::PartitionId> coarse(level.graph.numVertices());
  for (auto& p : coarse) p = static_cast<graph::PartitionId>(rng.below(3));
  std::vector<graph::PartitionId> fine(wg.numVertices());
  for (VertexId v = 0; v < wg.numVertices(); ++v) {
    fine[v] = coarse[level.fineToCoarse[v]];
  }
  EXPECT_EQ(weightedCut(level.graph, coarse), weightedCut(wg, fine));
}

// ------------------------------------------------------------ region growing

TEST(RegionGrowing, CoversAndBalances) {
  std::vector<VertexId> ids;
  const WeightedGraph wg = meshWeighted(ids);
  util::Rng rng(7);
  const auto assignment = growRegions(wg, 4, rng);
  std::vector<std::int64_t> loads(4, 0);
  for (VertexId v = 0; v < wg.numVertices(); ++v) {
    ASSERT_LT(assignment[v], 4u);
    loads[assignment[v]] += wg.vertexWeights[v];
  }
  const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  EXPECT_LT(static_cast<double>(*hi), 1.6 * static_cast<double>(*lo));
}

TEST(RegionGrowing, HandlesDisconnectedComponents) {
  WeightedGraph wg;
  wg.vertexWeights.assign(6, 1);
  wg.totalVertexWeight = 6;
  wg.adjacency.resize(6);
  // Two triangles, no bridge.
  const auto link = [&](VertexId a, VertexId b) {
    wg.adjacency[a].emplace_back(b, 1);
    wg.adjacency[b].emplace_back(a, 1);
  };
  link(0, 1);
  link(1, 2);
  link(0, 2);
  link(3, 4);
  link(4, 5);
  link(3, 5);
  util::Rng rng(8);
  const auto assignment = growRegions(wg, 2, rng);
  for (const auto p : assignment) ASSERT_LT(p, 2u);
}

TEST(RegionGrowing, MorePartitionsThanVertices) {
  WeightedGraph wg;
  wg.vertexWeights.assign(3, 1);
  wg.totalVertexWeight = 3;
  wg.adjacency.resize(3);
  util::Rng rng(9);
  const auto assignment = growRegions(wg, 8, rng);
  for (const auto p : assignment) ASSERT_LT(p, 8u);
}

// ------------------------------------------------------------ FM refinement

TEST(FmRefine, NeverIncreasesCut) {
  std::vector<VertexId> ids;
  const WeightedGraph wg = meshWeighted(ids);
  util::Rng rng(10);
  std::vector<graph::PartitionId> assignment(wg.numVertices());
  for (auto& p : assignment) p = static_cast<graph::PartitionId>(rng.below(4));
  const std::int64_t before = weightedCut(wg, assignment);
  RefineOptions options;
  options.capacities.assign(4, 80);  // 256/4 = 64, some headroom
  fmRefine(wg, assignment, options);
  EXPECT_LE(weightedCut(wg, assignment), before);
}

TEST(FmRefine, RepairsCapacityViolation) {
  std::vector<VertexId> ids;
  const WeightedGraph wg = meshWeighted(ids);
  std::vector<graph::PartitionId> assignment(wg.numVertices(), 0);  // all in 0
  RefineOptions options;
  options.capacities.assign(4, 80);
  fmRefine(wg, assignment, options);
  std::vector<std::int64_t> loads(4, 0);
  for (VertexId v = 0; v < wg.numVertices(); ++v) {
    loads[assignment[v]] += wg.vertexWeights[v];
  }
  for (const auto load : loads) EXPECT_LE(load, 80);
}

TEST(FmRefine, FindsObviousImprovement) {
  // Two cliques joined by one edge, split across the cliques: optimal.
  // Start with the split straddling both cliques instead.
  WeightedGraph wg;
  const std::size_t half = 6;
  wg.vertexWeights.assign(2 * half, 1);
  wg.totalVertexWeight = 2 * half;
  wg.adjacency.resize(2 * half);
  const auto link = [&](VertexId a, VertexId b) {
    wg.adjacency[a].emplace_back(b, 1);
    wg.adjacency[b].emplace_back(a, 1);
  };
  for (VertexId i = 0; i < half; ++i) {
    for (VertexId j = i + 1; j < half; ++j) {
      link(i, j);
      link(half + i, half + j);
    }
  }
  link(0, half);
  std::vector<graph::PartitionId> assignment(2 * half);
  for (VertexId v = 0; v < 2 * half; ++v) assignment[v] = v % 2;  // awful split
  RefineOptions options;
  options.capacities.assign(2, half + 1);
  fmRefine(wg, assignment, options);
  EXPECT_EQ(weightedCut(wg, assignment), 1);  // only the bridge remains cut
}

// ------------------------------------------------------------ full V-cycle

TEST(Multilevel, ValidCoveringAssignment) {
  const CsrGraph g = CsrGraph::fromGraph(gen::mesh3d(12, 12, 12));
  util::Rng rng(11);
  const auto assignment = MultilevelPartitioner{}.partition(g, 9, 1.1, rng);
  g.forEachVertex([&](VertexId v) {
    ASSERT_NE(assignment[v], graph::kNoPartition);
    ASSERT_LT(assignment[v], 9u);
  });
  const auto caps = makeCapacities(g.numVertices(), 9, 1.1);
  EXPECT_TRUE(metrics::respectsCapacities(assignment, caps));
}

TEST(Multilevel, BeatsRandomByALotOnMeshes) {
  const CsrGraph g = CsrGraph::fromGraph(gen::mesh3d(12, 12, 12));
  util::Rng rng(12);
  const double ml =
      metrics::cutRatio(g, MultilevelPartitioner{}.partition(g, 9, 1.1, rng));
  const double rnd =
      metrics::cutRatio(g, makePartitioner("RND")->partition(g, 9, 1.1, rng));
  EXPECT_LT(ml, 0.35 * rnd);
  EXPECT_LT(ml, 0.25);  // mesh 9-way cuts are a small fraction of edges
}

TEST(Multilevel, CompetitiveOnPowerLaw) {
  util::Rng seedRng(13);
  const CsrGraph g =
      CsrGraph::fromGraph(gen::powerlawCluster(3'000, 8, 0.1, seedRng));
  util::Rng rng(14);
  const double ml =
      metrics::cutRatio(g, MultilevelPartitioner{}.partition(g, 9, 1.1, rng));
  const double rnd =
      metrics::cutRatio(g, makePartitioner("RND")->partition(g, 9, 1.1, rng));
  // Power-law graphs are "very difficult to partition" (§4.2.2); still the
  // centralised baseline must clearly beat random.
  EXPECT_LT(ml, 0.9 * rnd);
}

TEST(Multilevel, SmallGraphsAndEdgeCases) {
  util::Rng rng(15);
  // Tiny graph: fewer vertices than the coarsest target.
  const CsrGraph tiny = CsrGraph::fromGraph(gen::mesh2d(3, 3));
  const auto a1 = MultilevelPartitioner{}.partition(tiny, 3, 1.2, rng);
  tiny.forEachVertex([&](VertexId v) { ASSERT_LT(a1[v], 3u); });
  // k = 1 collapses to the trivial partition.
  const auto a2 = MultilevelPartitioner{}.partition(tiny, 1, 1.1, rng);
  EXPECT_EQ(metrics::cutRatio(tiny, a2), 0.0);
  // Empty graph.
  const CsrGraph empty;
  const auto a3 = MultilevelPartitioner{}.partition(empty, 4, 1.1, rng);
  EXPECT_TRUE(a3.empty());
}

TEST(Multilevel, DisconnectedGraph) {
  graph::DynamicGraph dyn(0);
  // Three disjoint 4x4 meshes.
  for (int block = 0; block < 3; ++block) {
    const auto base = static_cast<VertexId>(block * 16);
    for (VertexId x = 0; x < 4; ++x) {
      for (VertexId y = 0; y < 4; ++y) {
        const VertexId id = base + y * 4 + x;
        dyn.ensureVertex(id);
        if (x + 1 < 4) dyn.addEdge(id, id + 1);
        if (y + 1 < 4) dyn.addEdge(id, id + 4);
      }
    }
  }
  const CsrGraph g = CsrGraph::fromGraph(dyn);
  util::Rng rng(16);
  const auto assignment = MultilevelPartitioner{}.partition(g, 3, 1.1, rng);
  // A perfect partitioner puts one component per partition: zero cut.
  EXPECT_LE(metrics::cutEdges(g, assignment), 6u);
}

}  // namespace
}  // namespace xdgp::partition
