#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/cardiac.h"
#include "apps/max_clique.h"
#include "apps/tunkrank.h"
#include "gen/cdr_stream.h"
#include "gen/forest_fire.h"
#include "gen/mesh3d.h"
#include "gen/tweet_stream.h"
#include "graph/csr.h"
#include "metrics/cuts.h"
#include "partition/partitioner.h"
#include "pregel/engine.h"

namespace xdgp {
namespace {

using graph::DynamicGraph;
using graph::VertexId;
using pregel::EngineOptions;
using pregel::SuperstepStats;

metrics::Assignment hashAssign(const DynamicGraph& g, std::size_t k) {
  util::Rng rng(1);
  return partition::makePartitioner("HSH")->partition(graph::CsrGraph::fromGraph(g),
                                                      k, 1.1, rng);
}

EngineOptions adaptiveOptions(std::size_t k) {
  EngineOptions options;
  options.numWorkers = k;
  options.adaptive = true;
  return options;
}

/// Mini Fig. 7: the whole biomedical story on a laptop-size mesh — initial
/// hash re-arrangement, then absorption of a forest-fire load peak.
TEST(Integration, BiomedicalRearrangementAndPeakAbsorption) {
  DynamicGraph mesh = gen::mesh3d(10, 10, 10);
  pregel::Engine<apps::CardiacProgram> engine(mesh, hashAssign(mesh, 9),
                                              adaptiveOptions(9));

  // Phase 1: rearrange the poor hash partitioning.
  const double initialTime = engine.runSuperstep().modeledTime;
  const std::size_t initialCuts = engine.state().cutEdges();
  double peakTime = initialTime;
  std::size_t steps = 1;
  while (!engine.partitionerConverged() && steps < 800) {
    const SuperstepStats stats = engine.runSuperstep();
    peakTime = std::max(peakTime, stats.modeledTime);
    ++steps;
  }
  ASSERT_TRUE(engine.partitionerConverged());
  const SuperstepStats settled = engine.runSuperstep();

  // Fig. 7a shape: cuts roughly halve; the migration burst makes some early
  // iteration far more expensive than steady state; the converged iteration
  // is cheaper than the initial hash-partitioned one.
  EXPECT_LT(engine.state().cutEdges(), (initialCuts * 6) / 10);
  EXPECT_GT(peakTime, 1.2 * initialTime);
  EXPECT_LT(settled.modeledTime, initialTime);
  EXPECT_EQ(settled.migrationsExecuted, 0u);
  EXPECT_EQ(settled.lostMessages, 0u);

  // Phase 2: inject ~10% new vertices as one forest fire (the worst case).
  DynamicGraph grown = engine.graph();
  util::Rng fireRng(2);
  const auto events = gen::forestFireExtension(grown, 100, {}, fireRng);
  engine.ingest(events);
  engine.rescalePartitionerCapacity();  // re-provision for the grown graph
  const std::size_t cutsAtPeak = engine.runSuperstep().cutEdges;
  // The injection immediately worsens the cut (Fig. 7b's spike).
  EXPECT_GT(cutsAtPeak, settled.cutEdges);

  std::size_t recoverySteps = 0;
  while (!engine.partitionerConverged() && recoverySteps < 800) {
    engine.runSuperstep();
    ++recoverySteps;
  }
  ASSERT_TRUE(engine.partitionerConverged());
  // Absorbed: the cut ratio returns close to the settled level even though
  // the graph is 10% bigger.
  const double settledRatio =
      static_cast<double>(settled.cutEdges) /
      static_cast<double>(mesh.numEdges());
  EXPECT_LT(engine.cutRatio(), settledRatio + 0.1);
}

/// Mini Fig. 8: the same tweet stream drives a static-hash system and an
/// adaptive one; the adaptive system must finish the day with cheaper and
/// steadier supersteps.
TEST(Integration, TwitterStreamAdaptiveBeatsStaticHash) {
  gen::TweetStreamParams params;
  params.users = 2'000;
  params.meanRate = 4.0;
  params.hours = 2.0;
  gen::TweetStreamGenerator streamGen(params, util::Rng(3));
  const auto events = streamGen.generate();
  ASSERT_GT(events.size(), 1'000u);

  // Warm-up graph so both systems start from the same loaded state.
  DynamicGraph seed;
  for (std::size_t i = 0; i < events.size() / 4; ++i) {
    seed.addEdge(events[i].u, events[i].v);
  }
  for (VertexId v = 0; v < params.users; ++v) seed.ensureVertex(v);

  EngineOptions staticOptions;
  staticOptions.numWorkers = 9;
  pregel::Engine<apps::TunkRankProgram> staticEngine(seed, hashAssign(seed, 9),
                                                     staticOptions);
  pregel::Engine<apps::TunkRankProgram> adaptiveEngine(seed, hashAssign(seed, 9),
                                                       adaptiveOptions(9));

  graph::UpdateStream staticStream(
      {events.begin() + static_cast<std::ptrdiff_t>(events.size() / 4), events.end()});
  graph::UpdateStream adaptiveStream(
      {events.begin() + static_cast<std::ptrdiff_t>(events.size() / 4), events.end()});

  const double bucket = 600.0;  // 10 minutes, as in Fig. 8
  double staticTail = 0.0, adaptiveTail = 0.0;
  const std::size_t buckets =
      static_cast<std::size_t>(params.hours * 3600.0 / bucket);
  for (std::size_t b = 0; b < buckets; ++b) {
    const double now = static_cast<double>(b + 1) * bucket;
    staticEngine.ingest(staticStream.drainUntil(now));
    adaptiveEngine.ingest(adaptiveStream.drainUntil(now));
    double staticTime = 0.0, adaptiveTime = 0.0;
    for (int s = 0; s < 3; ++s) {
      staticTime += staticEngine.runSuperstep().modeledTime;
      adaptiveTime += adaptiveEngine.runSuperstep().modeledTime;
    }
    if (b + 3 >= buckets) {  // the settled tail of the day
      staticTail += staticTime;
      adaptiveTail += adaptiveTime;
    }
  }
  EXPECT_LT(adaptiveTail, staticTail);
  EXPECT_LT(adaptiveEngine.cutRatio(), staticEngine.cutRatio());
}

/// Mini Fig. 9: four weeks of CDR churn; the adaptive system holds the cut
/// ratio flat while the static one degrades.
TEST(Integration, MobileCdrDynamicStaysAheadOfStatic) {
  gen::CdrStreamParams params;
  params.initialSubscribers = 3'000;
  gen::CdrStreamGenerator gen(params, util::Rng(4));
  const DynamicGraph& base = gen.initialGraph();

  EngineOptions staticOptions;
  staticOptions.numWorkers = 5;  // the paper's 5-worker cluster
  pregel::Engine<apps::MaxCliqueProgram> staticEngine(base, hashAssign(base, 5),
                                                      staticOptions);
  pregel::Engine<apps::MaxCliqueProgram> adaptiveEngine(base, hashAssign(base, 5),
                                                        adaptiveOptions(5));

  double staticLastWeekTime = 0.0, adaptiveLastWeekTime = 0.0;
  for (std::size_t week = 0; week < 4; ++week) {
    const gen::CdrWeek batch = gen.nextWeek();
    for (auto* engine : {&staticEngine, &adaptiveEngine}) {
      // Freeze during the clique rounds, as the workload requires.
      engine->freezeTopology();
      engine->ingest(batch.events);  // buffered
    }
    // A week of continuous clique rounds; the steady-state tail is what the
    // paper's per-iteration averages are dominated by (its weeks hold far
    // more iterations than the adaptation burst).
    double staticTime = 0.0, adaptiveTime = 0.0;
    for (int step = 0; step < 30; ++step) {
      const double st = staticEngine.runSuperstep().modeledTime;
      const double at = adaptiveEngine.runSuperstep().modeledTime;
      if (step >= 20) {
        staticTime += st;
        adaptiveTime += at;
      }
    }
    staticEngine.thawTopology();
    adaptiveEngine.thawTopology();
    adaptiveEngine.rescalePartitionerCapacity();  // +4% net subscribers/week
    if (week == 3) {
      staticLastWeekTime = staticTime;
      adaptiveLastWeekTime = adaptiveTime;
    }
  }
  EXPECT_LT(adaptiveEngine.cutRatio(), staticEngine.cutRatio());
  EXPECT_LT(adaptiveLastWeekTime, staticLastWeekTime);
  // Cliques computed on both systems agree (correctness under migration).
  const std::size_t staticMax = staticEngine.reduceValues(
      std::size_t{0},
      [](std::size_t acc, VertexId, const apps::MaxCliqueProgram::State& s) {
        return std::max(acc, s.cliqueSize);
      });
  const std::size_t adaptiveMax = adaptiveEngine.reduceValues(
      std::size_t{0},
      [](std::size_t acc, VertexId, const apps::MaxCliqueProgram::State& s) {
        return std::max(acc, s.cliqueSize);
      });
  EXPECT_EQ(staticMax, adaptiveMax);
}

/// The quota rule must keep the biomedical peak within capacity even while
/// 10% of the graph lands at once.
TEST(Integration, CapacityHeldThroughLoadPeak) {
  DynamicGraph mesh = gen::mesh3d(9, 9, 9);
  pregel::Engine<apps::CardiacProgram> engine(mesh, hashAssign(mesh, 9),
                                              adaptiveOptions(9));
  for (int i = 0; i < 120; ++i) engine.runSuperstep();

  DynamicGraph grown = engine.graph();
  util::Rng rng(5);
  engine.ingest(gen::forestFireExtension(grown, 73, {}, rng));

  std::vector<std::size_t> bound(9);
  const auto balanced = static_cast<std::size_t>(std::ceil(
      static_cast<double>(engine.graph().numVertices()) / 9.0 * 1.1));
  for (std::size_t i = 0; i < 9; ++i) {
    bound[i] = std::max(balanced, engine.state().load(i));
  }
  for (int step = 0; step < 150; ++step) {
    engine.runSuperstep();
    for (std::size_t i = 0; i < 9; ++i) {
      ASSERT_LE(engine.state().load(i), bound[i]) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace xdgp
