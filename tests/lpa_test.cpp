// The Spinner-style label-propagation engine and its elastic-k surface:
// seed determinism, thread-count lockstep, convergence quality next to the
// greedy engine, live grow/shrink invariants (drain, capacities, masks),
// the migration budget, the makeEngine front door, and a churn fuzz with
// brute-force cut cross-checks.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_engine.h"
#include "gen/mesh2d.h"
#include "gen/powerlaw_cluster.h"
#include "graph/csr.h"
#include "lpa/lpa_engine.h"
#include "metrics/balance.h"
#include "metrics/cuts.h"
#include "partition/partitioner.h"

namespace xdgp::lpa {
namespace {

using graph::DynamicGraph;
using graph::PartitionId;
using graph::UpdateEvent;
using graph::VertexId;

metrics::Assignment initialAssignment(const DynamicGraph& g,
                                      const std::string& code, std::size_t k,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  return partition::makePartitioner(code)->partition(
      graph::CsrGraph::fromGraph(g), k, 1.1, rng);
}

LpaEngine makeLpa(DynamicGraph g, core::AdaptiveOptions options,
                  const std::string& code = "HSH") {
  options.engine = core::EngineKind::kLpa;
  metrics::Assignment a = initialAssignment(g, code, options.k, options.seed);
  return LpaEngine(std::move(g), std::move(a), options);
}

/// Heap variant for containers: Engine is pinned (non-copyable, non-movable).
std::unique_ptr<LpaEngine> makeLpaPtr(DynamicGraph g,
                                      core::AdaptiveOptions options,
                                      const std::string& code = "HSH") {
  options.engine = core::EngineKind::kLpa;
  metrics::Assignment a = initialAssignment(g, code, options.k, options.seed);
  return std::make_unique<LpaEngine>(std::move(g), std::move(a), options);
}

DynamicGraph plc2000(std::uint64_t seed = 3) {
  util::Rng rng(seed);
  return gen::powerlawCluster(2'000, 8, 0.1, rng);
}

/// Every alive vertex sits on an *active* partition < k; retired partitions
/// hold exactly `residual` load in vertex mode.
void expectAssignmentSane(const LpaEngine& engine) {
  const metrics::Assignment& assignment = engine.state().assignment();
  std::vector<std::size_t> loads(engine.k(), 0);
  engine.graph().forEachVertex([&](VertexId v) {
    ASSERT_LT(assignment[v], engine.k());
    ++loads[assignment[v]];
  });
  for (std::size_t p = 0; p < engine.k(); ++p) {
    EXPECT_EQ(loads[p], engine.state().load(p)) << "partition " << p;
  }
}

// ------------------------------------------------------------ determinism

TEST(LpaEngine, SeedsAreReproducible) {
  core::AdaptiveOptions options;
  options.k = 6;
  options.seed = 99;
  LpaEngine a = makeLpa(plc2000(), options);
  LpaEngine b = makeLpa(plc2000(), options);
  a.runToConvergence(500);
  b.runToConvergence(500);
  EXPECT_EQ(a.state().assignment(), b.state().assignment());
  EXPECT_EQ(a.iteration(), b.iteration());
}

TEST(LpaEngine, ThreadCountIsTrajectoryInvariant) {
  // Decisions are pure functions of the iteration-start snapshot plus the
  // stateless draws, so 1, 2, and 8 threads must produce the identical
  // assignment after every single step — not just at convergence.
  core::AdaptiveOptions base;
  base.k = 7;
  base.seed = 11;
  std::vector<std::unique_ptr<LpaEngine>> engines;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::AdaptiveOptions options = base;
    options.threads = threads;
    engines.push_back(makeLpaPtr(plc2000(), options));
  }
  for (int i = 0; i < 25; ++i) {
    const std::size_t moved = engines[0]->step();
    for (std::size_t e = 1; e < engines.size(); ++e) {
      ASSERT_EQ(engines[e]->step(), moved) << "iteration " << i;
      ASSERT_EQ(engines[e]->state().assignment(),
                engines[0]->state().assignment())
          << "iteration " << i;
    }
  }
}

// ------------------------------------------------------------ quality

TEST(LpaEngine, ImprovesHashPartitioningAndConverges) {
  core::AdaptiveOptions options;
  options.k = 8;
  LpaEngine engine = makeLpa(plc2000(), options);
  const double before = engine.cutRatio();
  const core::ConvergenceResult result = engine.runToConvergence(3'000);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(engine.cutRatio(), before);
  expectAssignmentSane(engine);
}

TEST(LpaEngine, LandsInTheGreedyEnginesQualityBand) {
  // Head-to-head on the same graph, initial partitioning, and seed: LPA is
  // a different heuristic, not a worse one — its converged cut must land
  // within striking distance of greedy's (generous 1.5x band; the benches
  // track the real margin).
  core::AdaptiveOptions options;
  options.k = 8;
  options.seed = 5;
  LpaEngine spinner = makeLpa(plc2000(), options);
  metrics::Assignment a = initialAssignment(plc2000(), "HSH", options.k, options.seed);
  core::AdaptiveEngine greedy(plc2000(), std::move(a), options);
  spinner.runToConvergence(3'000);
  greedy.runToConvergence(3'000);
  EXPECT_LT(spinner.cutRatio(), greedy.cutRatio() * 1.5 + 0.05);
}

TEST(LpaEngine, IncrementalCutsMatchBruteForceAtEveryStage) {
  core::AdaptiveOptions options;
  options.k = 4;
  LpaEngine engine = makeLpa(gen::mesh2d(10, 10), options, "RND");
  for (int i = 0; i < 30; ++i) {
    engine.step();
    ASSERT_EQ(engine.state().cutEdges(),
              metrics::cutEdges(engine.graph(), engine.state().assignment()));
  }
}

// ------------------------------------------------------------ elastic k

TEST(LpaEngine, GrowAddsEmptyProvisionedPartitions) {
  core::AdaptiveOptions options;
  options.k = 4;
  LpaEngine engine = makeLpa(plc2000(), options);
  engine.runToConvergence(500);
  ASSERT_EQ(engine.growPartitions(3), 7u);
  EXPECT_EQ(engine.k(), 7u);
  EXPECT_EQ(engine.activeK(), 7u);
  EXPECT_FALSE(engine.converged());  // growth re-opens adaptation
  // Grow seeds the fresh partitions Spinner-style (label propagation never
  // scores a label no neighbour holds, so empty partitions would stay
  // empty): each gets roughly its fair share, within its capacity.
  for (std::size_t p = 4; p < 7; ++p) {
    EXPECT_GT(engine.state().load(p), 0u) << "unseeded partition";
    EXPECT_LE(engine.state().load(p), engine.capacity().capacity(p));
  }
  // Propagation then refines the seeded boundary and the grown partitions
  // keep holding real load at the new convergence point.
  engine.runToConvergence(2'000);
  std::size_t grownLoad = 0;
  for (std::size_t p = 4; p < 7; ++p) grownLoad += engine.state().load(p);
  EXPECT_GT(grownLoad, 0u);
  expectAssignmentSane(engine);
}

TEST(LpaEngine, ShrinkDrainsRetiredPartitionsCompletely) {
  core::AdaptiveOptions options;
  options.k = 8;
  LpaEngine engine = makeLpa(plc2000(), options);
  engine.runToConvergence(500);
  const std::vector<PartitionId> retire = {5, 6, 7};
  ASSERT_EQ(engine.shrinkPartitions(retire), 5u);
  EXPECT_EQ(engine.k(), 8u);  // ids stay stable
  EXPECT_EQ(engine.activeK(), 5u);
  EXPECT_EQ(engine.retiredPartitions(), retire);
  for (const PartitionId p : retire) {
    EXPECT_FALSE(engine.isActive(p));
    EXPECT_EQ(engine.capacity().capacity(p), 0u);
  }
  engine.runToConvergence(2'000);
  EXPECT_EQ(engine.displacedCount(), 0u);
  for (const PartitionId p : retire) EXPECT_EQ(engine.state().load(p), 0u);
  // Survivors carry everything, within their re-derived capacities.
  for (std::size_t p = 0; p < 5; ++p) {
    EXPECT_LE(engine.state().load(p), engine.capacity().capacity(p));
  }
  expectAssignmentSane(engine);
}

TEST(LpaEngine, ElasticBalanceReportCoversActivePartitionsOnly) {
  core::AdaptiveOptions options;
  options.k = 6;
  LpaEngine engine = makeLpa(plc2000(), options);
  engine.runToConvergence(500);
  engine.shrinkPartitions(std::vector<PartitionId>{4, 5});
  engine.runToConvergence(2'000);
  const metrics::BalanceReport report =
      metrics::balanceReport(engine.state().assignment(), engine.activeMask());
  EXPECT_EQ(report.k, 6u);
  EXPECT_GT(report.minLoad, 0u);  // drained zeros must not drag the minimum
  EXPECT_GE(report.imbalance, 1.0);
}

TEST(LpaEngine, ShrinkValidationIsAtomic) {
  core::AdaptiveOptions options;
  options.k = 4;
  LpaEngine engine = makeLpa(gen::mesh2d(8, 8), options);
  // Unknown id, duplicate id, retire-everything: all rejected atomically —
  // the active set is untouched afterwards.
  EXPECT_THROW(engine.shrinkPartitions(std::vector<PartitionId>{9}),
               std::invalid_argument);
  EXPECT_THROW(engine.shrinkPartitions(std::vector<PartitionId>{1, 1}),
               std::invalid_argument);
  EXPECT_THROW(engine.shrinkPartitions(std::vector<PartitionId>{0, 1, 2, 3}),
               std::invalid_argument);
  EXPECT_EQ(engine.activeK(), 4u);
  engine.shrinkPartitions(std::vector<PartitionId>{3});
  EXPECT_THROW(engine.shrinkPartitions(std::vector<PartitionId>{3}),
               std::invalid_argument);  // already retired
  EXPECT_EQ(engine.activeK(), 3u);
}

TEST(LpaEngine, GreedyEngineRejectsElasticOps) {
  core::AdaptiveOptions options;
  options.k = 4;
  DynamicGraph g = gen::mesh2d(8, 8);
  metrics::Assignment a = initialAssignment(g, "HSH", options.k, options.seed);
  core::AdaptiveEngine greedy(std::move(g), std::move(a), options);
  EXPECT_THROW(greedy.growPartitions(2), std::logic_error);
  EXPECT_THROW(greedy.shrinkPartitions(std::vector<PartitionId>{1}),
               std::logic_error);
  EXPECT_THROW(greedy.restoreRetired(std::vector<PartitionId>{1}),
               std::logic_error);
  EXPECT_NO_THROW(greedy.restoreRetired(std::vector<PartitionId>{}));
}

TEST(LpaEngine, MigrationBudgetBoundsEveryStep) {
  core::AdaptiveOptions options;
  options.k = 8;
  options.lpaMigrationBudget = 25;
  LpaEngine engine = makeLpa(plc2000(), options);
  engine.shrinkPartitions(std::vector<PartitionId>{6, 7});
  std::size_t total = 0;
  for (int i = 0; i < 200; ++i) {
    const std::size_t moved = engine.step();
    ASSERT_LE(moved, 25u) << "iteration " << i;
    total += moved;
    if (engine.displacedCount() == 0 && moved == 0) break;
  }
  EXPECT_EQ(engine.displacedCount(), 0u);  // bounded, but the drain finishes
  EXPECT_GT(total, 0u);
}

// ------------------------------------------------------------ front door

TEST(LpaEngine, MakeEngineSelectsByOptions) {
  DynamicGraph g = gen::mesh2d(8, 8);
  core::AdaptiveOptions options;
  options.k = 4;
  metrics::Assignment a = initialAssignment(g, "HSH", options.k, options.seed);
  options.engine = core::EngineKind::kLpa;
  const auto spinner = core::makeEngine(DynamicGraph(g), a, options);
  EXPECT_EQ(spinner->kind(), core::EngineKind::kLpa);
  options.engine = core::EngineKind::kGreedy;
  const auto greedy = core::makeEngine(std::move(g), std::move(a), options);
  EXPECT_EQ(greedy->kind(), core::EngineKind::kGreedy);
}

TEST(LpaEngine, EngineKindCodesRoundTrip) {
  EXPECT_STREQ(core::engineKindCode(core::EngineKind::kGreedy), "greedy");
  EXPECT_STREQ(core::engineKindCode(core::EngineKind::kLpa), "lpa");
  EXPECT_EQ(core::engineKindFromCode("lpa"), core::EngineKind::kLpa);
  EXPECT_EQ(core::engineKindFromCode("greedy"), core::EngineKind::kGreedy);
  try {
    (void)core::engineKindFromCode("spinner");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("spinner"), std::string::npos);
    EXPECT_NE(what.find("lpa"), std::string::npos);  // the menu
  }
}

// ------------------------------------------------------------ churn fuzz

TEST(LpaEngine, FuzzChurnWithElasticResizesKeepsEveryInvariant) {
  core::AdaptiveOptions options;
  options.k = 6;
  options.seed = 1234;
  LpaEngine engine = makeLpa(gen::mesh2d(12, 12), options);
  util::Rng rng(777);
  for (int round = 0; round < 40; ++round) {
    // A burst of random structural churn over a slowly growing id space.
    std::vector<UpdateEvent> events;
    const auto bound = static_cast<VertexId>(150 + round * 2);
    for (int i = 0; i < 12; ++i) {
      const auto u = static_cast<VertexId>(rng.below(bound));
      const auto v = static_cast<VertexId>(rng.below(bound));
      if (u == v) continue;
      events.push_back(rng.bernoulli(0.7) ? UpdateEvent::addEdge(u, v)
                                          : UpdateEvent::removeEdge(u, v));
    }
    engine.applyUpdates(events);
    if (round == 12) engine.growPartitions(3);     // 6 -> 9
    if (round == 26) {
      engine.shrinkPartitions(std::vector<PartitionId>{7, 8});  // 9 -> 7
    }
    for (int s = 0; s < 3; ++s) engine.step();
    ASSERT_EQ(engine.state().cutEdges(),
              metrics::cutEdges(engine.graph(), engine.state().assignment()))
        << "round " << round;
    expectAssignmentSane(engine);
  }
  engine.runToConvergence(2'000);
  EXPECT_EQ(engine.displacedCount(), 0u);
  expectAssignmentSane(engine);
}

}  // namespace
}  // namespace xdgp::lpa
