// The streaming substrate: UpdateStream's push-after-drain contract, the
// event-file round trip behind the REPLAY workload, the EdgeExpiryWindow
// promoted from fig8's MentionWindow, and the api::Streamer windowing loop.

#include <gtest/gtest.h>

#include <fstream>

#include "api/stream.h"
#include "graph/edge_expiry_window.h"
#include "graph/update_stream.h"

namespace xdgp {
namespace {

using graph::EdgeExpiryWindow;
using graph::UpdateEvent;
using graph::UpdateStream;

// ---------------------------------------------------- UpdateStream::push

TEST(UpdateStreamPush, InOrderPushKeepsTimestamp) {
  UpdateStream stream;
  stream.push(UpdateEvent::addEdge(0, 1, 1.0));
  stream.push(UpdateEvent::addEdge(1, 2, 2.0));
  const auto batch = stream.drainUntil(2.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0].timestamp, 1.0);
  EXPECT_DOUBLE_EQ(batch[1].timestamp, 2.0);
}

TEST(UpdateStreamPush, LateEventIsClampedToTheTailTimestamp) {
  // The documented stamp-on-arrival behaviour: a late event adopts the tail
  // timestamp so global order is preserved.
  UpdateStream stream;
  stream.push(UpdateEvent::addEdge(0, 1, 5.0));
  stream.push(UpdateEvent::addEdge(2, 3, 1.0));  // late by 4 time units
  const auto batch = stream.drainUntil(10.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[1].timestamp, 5.0);  // clamped, not 1.0
  EXPECT_EQ(batch[1].u, 2u);
}

TEST(UpdateStreamPush, PushAfterDrainDeliversExactlyOnceInOrder) {
  UpdateStream stream;
  stream.push(UpdateEvent::addEdge(0, 1, 1.0));
  stream.push(UpdateEvent::addEdge(1, 2, 3.0));
  ASSERT_EQ(stream.drainUntil(3.0).size(), 2u);
  ASSERT_TRUE(stream.exhausted());

  // An event arriving after its window was drained: clamped to the tail
  // timestamp (3.0), delivered by the next drain that reaches it — never
  // lost behind the cursor, never re-ordered, never delivered twice.
  stream.push(UpdateEvent::addEdge(4, 5, 0.5));
  EXPECT_FALSE(stream.exhausted());
  EXPECT_TRUE(stream.drainUntil(2.0).empty());  // still ahead of the cursor
  const auto late = stream.drainUntil(3.0);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].u, 4u);
  EXPECT_DOUBLE_EQ(late[0].timestamp, 3.0);
  EXPECT_TRUE(stream.drainUntil(100.0).empty());
  EXPECT_TRUE(stream.exhausted());
}

TEST(UpdateStreamPush, PushOntoEmptyStreamKeepsItsTimestamp) {
  UpdateStream stream;
  stream.push(UpdateEvent::addVertex(7, 2.5));
  const auto batch = stream.drainUntil(3.0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch[0].timestamp, 2.5);
}

TEST(UpdateStream, DrainCountTakesEventsRegardlessOfTimestamp) {
  UpdateStream stream({UpdateEvent::addEdge(0, 1, 1.0),
                       UpdateEvent::addEdge(1, 2, 2.0),
                       UpdateEvent::addEdge(2, 3, 9.0)});
  EXPECT_EQ(stream.drainCount(2).size(), 2u);
  const auto tail = stream.drainCount(5);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_DOUBLE_EQ(tail[0].timestamp, 9.0);
  EXPECT_TRUE(stream.exhausted());
}

// -------------------------------------------------------- event-file IO

TEST(EventIo, RoundTripsEveryKindBitExactly) {
  const std::vector<UpdateEvent> events{
      UpdateEvent::addVertex(7, 0.0),
      UpdateEvent::removeVertex(3, 1.25),
      UpdateEvent::addEdge(1, 2, 2.000000001),
      UpdateEvent::removeEdge(2, 1, 1e9 + 0.5),
  };
  const std::string path = testing::TempDir() + "stream_test_events.txt";
  graph::writeEvents(events, path);
  const auto loaded = graph::readEvents(path);
  EXPECT_EQ(loaded, events);
}

TEST(EventIo, TruncatedFileIsRejectedByTheHeaderCount) {
  const std::vector<UpdateEvent> events{UpdateEvent::addEdge(0, 1, 1.0),
                                        UpdateEvent::addEdge(1, 2, 2.0),
                                        UpdateEvent::addEdge(2, 3, 3.0)};
  const std::string path = testing::TempDir() + "stream_test_truncated.txt";
  graph::writeEvents(events, path);
  // Chop the last line off, as an interrupted copy would.
  std::string contents;
  {
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) contents += lines[i] + "\n";
  }
  {
    std::ofstream out(path);
    out << contents;
  }
  EXPECT_THROW((void)graph::readEvents(path), std::runtime_error);
}

TEST(EventIo, MissingFileAndMalformedLinesThrow) {
  EXPECT_THROW((void)graph::readEvents("/no/such/dir/events.txt"),
               std::runtime_error);
  const std::string path = testing::TempDir() + "stream_test_bad_events.txt";
  {
    std::ofstream out(path);
    out << "AE 1 not-a-number 3\n";
  }
  EXPECT_THROW((void)graph::readEvents(path), std::runtime_error);
}

// ------------------------------------------------------ EdgeExpiryWindow

TEST(EdgeExpiryWindow, ExpiresAnEdgeAfterTheWindowStampedAtDrainTime) {
  EdgeExpiryWindow window(10.0);
  auto batch = window.advance({UpdateEvent::addEdge(0, 1, 0.0)}, 0.0);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(window.tracked(), 1u);

  batch = window.advance({}, 9.0);  // still inside the window
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(window.tracked(), 1u);

  batch = window.advance({}, 11.0);  // 0.0 < 11.0 - 10.0: expired
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].kind, UpdateEvent::Kind::kRemoveEdge);
  EXPECT_EQ(batch[0].u, 0u);
  EXPECT_EQ(batch[0].v, 1u);
  EXPECT_DOUBLE_EQ(batch[0].timestamp, 11.0);  // stamped at drain time
  EXPECT_EQ(window.tracked(), 0u);
}

TEST(EdgeExpiryWindow, ReObservationInsideTheWindowPreventsExpiry) {
  EdgeExpiryWindow window(10.0);
  (void)window.advance({UpdateEvent::addEdge(0, 1, 0.0)}, 0.0);
  (void)window.advance({UpdateEvent::addEdge(0, 1, 5.0)}, 5.0);

  // The first observation leaves the window, but the edge was re-observed
  // at t=5: no removal yet.
  auto batch = window.advance({}, 11.0);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(window.tracked(), 1u);

  // The re-observation's own clock runs out at 5 + 10.
  batch = window.advance({}, 16.0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].kind, UpdateEvent::Kind::kRemoveEdge);
  EXPECT_DOUBLE_EQ(batch[0].timestamp, 16.0);
}

TEST(EdgeExpiryWindow, EndpointOrderDoesNotSplitTheEdge) {
  EdgeExpiryWindow window(10.0);
  (void)window.advance({UpdateEvent::addEdge(0, 1, 0.0)}, 0.0);
  (void)window.advance({UpdateEvent::addEdge(1, 0, 5.0)}, 5.0);  // same edge
  EXPECT_EQ(window.tracked(), 1u);
  EXPECT_TRUE(window.advance({}, 11.0).empty());  // re-observed as {1,0}
}

TEST(EdgeExpiryWindow, NonEdgeEventsPassThroughUntracked) {
  EdgeExpiryWindow window(10.0);
  const std::vector<UpdateEvent> batch{UpdateEvent::addVertex(3, 0.0),
                                       UpdateEvent::removeVertex(4, 0.0)};
  EXPECT_EQ(window.advance(batch, 0.0), batch);
  EXPECT_EQ(window.tracked(), 0u);
}

// --------------------------------------------------------- api::Streamer

std::vector<UpdateEvent> eventsAt(std::initializer_list<double> times) {
  std::vector<UpdateEvent> events;
  graph::VertexId next = 0;
  for (const double t : times) {
    events.push_back(UpdateEvent::addEdge(next, next + 1, t));
    ++next;
  }
  return events;
}

TEST(Streamer, RequiresExactlyOneWindowingMode) {
  EXPECT_THROW(api::Streamer(UpdateStream{}, api::StreamOptions{}),
               std::invalid_argument);
  api::StreamOptions both;
  both.windowSpan = 1.0;
  both.windowEvents = 5;
  EXPECT_THROW(api::Streamer(UpdateStream{}, both), std::invalid_argument);
}

TEST(Streamer, TimeWindowsPartitionTheStream) {
  api::StreamOptions options;
  options.windowSpan = 1.0;
  api::Streamer streamer(UpdateStream(eventsAt({0.5, 1.5, 2.5})), options);

  for (std::size_t i = 0; i < 3; ++i) {
    const auto batch = streamer.next();
    ASSERT_TRUE(batch.has_value()) << i;
    EXPECT_EQ(batch->index, i);
    EXPECT_DOUBLE_EQ(batch->start, static_cast<double>(i));
    EXPECT_DOUBLE_EQ(batch->end, static_cast<double>(i + 1));
    EXPECT_EQ(batch->events.size(), 1u);
    EXPECT_EQ(batch->drained, 1u);
  }
  EXPECT_FALSE(streamer.next().has_value());
}

TEST(Streamer, TimeWindowsAnchorAtTheFirstEventsWindow) {
  // Epoch-style timestamps must not pay for an empty prefix of windows;
  // boundaries stay at multiples of the span.
  api::StreamOptions options;
  options.windowSpan = 1.0;
  api::Streamer streamer(UpdateStream({UpdateEvent::addEdge(0, 1, 1000.3),
                                       UpdateEvent::addEdge(1, 2, 1000.8)}),
                         options);
  const auto batch = streamer.next();
  ASSERT_TRUE(batch.has_value());
  EXPECT_DOUBLE_EQ(batch->start, 1000.0);
  EXPECT_DOUBLE_EQ(batch->end, 1001.0);
  EXPECT_EQ(batch->events.size(), 2u);
  EXPECT_FALSE(streamer.next().has_value());
}

TEST(Streamer, EmptyWindowsAreEmittedAcrossTimeGaps) {
  api::StreamOptions options;
  options.windowSpan = 1.0;
  api::Streamer streamer(UpdateStream(eventsAt({0.5, 3.5})), options);
  std::vector<std::size_t> sizes;
  while (const auto batch = streamer.next()) sizes.push_back(batch->events.size());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 0, 0, 1}));
}

TEST(Streamer, CountWindowsChunkTheStream) {
  api::StreamOptions options;
  options.windowEvents = 2;
  api::Streamer streamer(UpdateStream(eventsAt({0.1, 0.2, 0.3, 0.4, 0.5})),
                         options);
  std::vector<std::size_t> sizes;
  double lastEnd = 0.0;
  while (const auto batch = streamer.next()) {
    sizes.push_back(batch->events.size());
    EXPECT_GE(batch->end, lastEnd);
    lastEnd = batch->end;
  }
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 1}));
  EXPECT_DOUBLE_EQ(lastEnd, 0.5);
}

TEST(Streamer, TrailingEmptyWindowsRunToTheMaxWindowsHorizon) {
  // Time mode with an explicit horizon: the quiet tail after the last event
  // still produces (empty) windows — fig8's fixed bucket count.
  api::StreamOptions options;
  options.windowSpan = 1.0;
  options.maxWindows = 3;
  api::Streamer streamer(UpdateStream(eventsAt({0.5})), options);
  std::vector<std::size_t> sizes;
  std::vector<bool> exhausted;
  while (const auto batch = streamer.next()) {
    sizes.push_back(batch->events.size());
    exhausted.push_back(batch->streamExhausted);
  }
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 0, 0}));
  EXPECT_EQ(exhausted, (std::vector<bool>{false, false, true}));
}

TEST(Streamer, ExpiryStillFiresInTrailingEmptyWindows) {
  api::StreamOptions options;
  options.windowSpan = 1.0;
  options.maxWindows = 4;
  options.expirySpan = 1.0;
  api::Streamer streamer(
      UpdateStream({UpdateEvent::addEdge(0, 1, 0.5)}), options);
  std::vector<UpdateEvent> removals;
  while (const auto batch = streamer.next()) {
    for (const UpdateEvent& e : batch->events) {
      if (e.kind == UpdateEvent::Kind::kRemoveEdge) removals.push_back(e);
    }
  }
  // 0.5 leaves the 1.0-wide window as of the window ending at t=2.
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_DOUBLE_EQ(removals[0].timestamp, 2.0);
}

TEST(Streamer, MaxWindowsCapsTheRun) {
  api::StreamOptions options;
  options.windowSpan = 1.0;
  options.maxWindows = 2;
  api::Streamer streamer(UpdateStream(eventsAt({0.5, 1.5, 2.5, 3.5})), options);
  EXPECT_TRUE(streamer.next().has_value());
  EXPECT_TRUE(streamer.next().has_value());
  EXPECT_FALSE(streamer.next().has_value());
  EXPECT_EQ(streamer.windowsEmitted(), 2u);
}

TEST(Streamer, ExpiryRemovalsAreFoldedIntoLaterWindows) {
  api::StreamOptions options;
  options.windowSpan = 1.0;
  options.expirySpan = 1.5;
  // Edge {0,1} observed at 0.5 only; edge {10,11} re-observed every window.
  std::vector<UpdateEvent> events{UpdateEvent::addEdge(0, 1, 0.5),
                                  UpdateEvent::addEdge(10, 11, 0.6),
                                  UpdateEvent::addEdge(10, 11, 1.6),
                                  UpdateEvent::addEdge(10, 11, 2.6),
                                  UpdateEvent::addEdge(10, 11, 3.6)};
  api::Streamer streamer(UpdateStream(std::move(events)), options);

  std::vector<UpdateEvent> removals;
  while (const auto batch = streamer.next()) {
    for (const UpdateEvent& e : batch->events) {
      if (e.kind == UpdateEvent::Kind::kRemoveEdge) removals.push_back(e);
    }
    EXPECT_EQ(batch->expired,
              static_cast<std::size_t>(batch->events.size() - batch->drained));
  }
  // Only the one-shot edge expires; the recurrent one never does.
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_EQ(removals[0].u, 0u);
  EXPECT_EQ(removals[0].v, 1u);
  EXPECT_DOUBLE_EQ(removals[0].timestamp, 3.0);  // drained at window end
}

}  // namespace
}  // namespace xdgp
