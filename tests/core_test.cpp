#include <gtest/gtest.h>

#include <algorithm>

#include "core/capacity.h"
#include "core/convergence.h"
#include "core/migration_policy.h"
#include "core/partition_state.h"
#include "core/quota_ledger.h"
#include "gen/mesh2d.h"
#include "metrics/cuts.h"
#include "util/rng.h"

namespace xdgp::core {
namespace {

using graph::DynamicGraph;
using graph::kNoPartition;
using graph::PartitionId;
using graph::VertexId;

// ------------------------------------------------------------ capacity

TEST(CapacityModel, PaperDefault) {
  const CapacityModel cap(9'000, 9, 1.1);
  EXPECT_EQ(cap.k(), 9u);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(cap.capacity(i), 1'100u);
}

TEST(CapacityModel, RemainingClampsAtZero) {
  const CapacityModel cap(100, 4, 1.0);  // capacity 25 each
  EXPECT_EQ(cap.remaining(0, 10), 15u);
  EXPECT_EQ(cap.remaining(0, 25), 0u);
  EXPECT_EQ(cap.remaining(0, 40), 0u);  // over-full partition
}

TEST(CapacityModel, ExplicitHeterogeneous) {
  const CapacityModel cap(std::vector<std::size_t>{10, 20, 30});
  EXPECT_EQ(cap.k(), 3u);
  EXPECT_EQ(cap.capacity(2), 30u);
}

TEST(CapacityModel, RescaleOnlyGrows) {
  CapacityModel cap(100, 4, 1.1);  // 28 each
  cap.rescale(50, 1.1);            // smaller graph: capacities keep their size
  EXPECT_EQ(cap.capacity(0), 28u);
  cap.rescale(400, 1.1);  // larger graph: 110 each
  EXPECT_EQ(cap.capacity(0), 110u);
}

TEST(CapacityModel, RejectsBadArguments) {
  EXPECT_THROW(CapacityModel(10, 0, 1.1), std::invalid_argument);
  EXPECT_THROW(CapacityModel(10, 2, 0.5), std::invalid_argument);
  EXPECT_THROW(CapacityModel(std::vector<std::size_t>{}), std::invalid_argument);
}

// ------------------------------------------------------------ partition state

PartitionState stripeState(const DynamicGraph& g, std::size_t k) {
  metrics::Assignment a(g.idBound(), kNoPartition);
  g.forEachVertex([&](VertexId v) { a[v] = static_cast<PartitionId>(v % k); });
  return PartitionState(g, std::move(a), k);
}

TEST(PartitionState, InitialLoadsAndCuts) {
  const DynamicGraph g = gen::mesh2d(4, 4);
  const PartitionState state = stripeState(g, 2);
  EXPECT_EQ(state.load(0) + state.load(1), 16u);
  EXPECT_EQ(state.cutEdges(), metrics::cutEdges(g, state.assignment()));
}

TEST(PartitionState, MoveUpdatesLoadsAndCuts) {
  const DynamicGraph g = gen::mesh2d(6, 6);
  PartitionState state = stripeState(g, 3);
  state.moveVertex(g, 7, 0);
  EXPECT_EQ(state.partitionOf(7), 0u);
  EXPECT_EQ(state.cutEdges(), metrics::cutEdges(g, state.assignment()));
}

TEST(PartitionState, SelfMoveIsNoop) {
  const DynamicGraph g = gen::mesh2d(4, 4);
  PartitionState state = stripeState(g, 2);
  const std::size_t cuts = state.cutEdges();
  state.moveVertex(g, 5, state.partitionOf(5));
  EXPECT_EQ(state.cutEdges(), cuts);
}

TEST(PartitionState, RandomMoveFuzzMatchesBruteForce) {
  const DynamicGraph g = gen::mesh2d(8, 8);
  PartitionState state = stripeState(g, 4);
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<VertexId>(rng.index(g.idBound()));
    state.moveVertex(g, v, static_cast<PartitionId>(rng.below(4)));
    ASSERT_EQ(state.cutEdges(), metrics::cutEdges(g, state.assignment()));
  }
}

TEST(PartitionState, VertexLifecycle) {
  DynamicGraph g = gen::mesh2d(4, 4);
  PartitionState state = stripeState(g, 2);

  // Add an isolated vertex, wire it up, then remove it again.
  const VertexId fresh = g.addVertex();
  state.onVertexAdded(fresh, 1);
  EXPECT_EQ(state.partitionOf(fresh), 1u);
  g.addEdge(fresh, 0);
  state.onEdgeAdded(fresh, 0);
  g.addEdge(fresh, 1);
  state.onEdgeAdded(fresh, 1);
  EXPECT_EQ(state.cutEdges(), metrics::cutEdges(g, state.assignment()));

  state.onVertexRemoving(g, fresh);
  g.removeVertex(fresh);
  EXPECT_EQ(state.partitionOf(fresh), kNoPartition);
  EXPECT_EQ(state.cutEdges(), metrics::cutEdges(g, state.assignment()));
}

TEST(PartitionState, EdgeRemoval) {
  DynamicGraph g = gen::mesh2d(4, 4);
  PartitionState state = stripeState(g, 2);
  ASSERT_TRUE(g.hasEdge(0, 1));
  g.removeEdge(0, 1);
  state.onEdgeRemoved(0, 1);
  EXPECT_EQ(state.cutEdges(), metrics::cutEdges(g, state.assignment()));
}

TEST(PartitionState, RejectsUnassignedVertices) {
  const DynamicGraph g = gen::mesh2d(3, 3);
  metrics::Assignment a(g.idBound(), kNoPartition);  // nobody assigned
  EXPECT_THROW(PartitionState(g, std::move(a), 2), std::invalid_argument);
}

// ------------------------------------------------------------ quota ledger

TEST(QuotaLedger, PaperFormula) {
  // C_t(j)/(k-1): remaining 60 split across 3 possible sources = 20 each.
  QuotaLedger ledger(4);
  const CapacityModel cap(400, 4, 1.0);  // 100 each
  ledger.beginIteration(cap, {40, 100, 100, 100});
  EXPECT_EQ(ledger.quota(0), 20u);
  EXPECT_EQ(ledger.quota(1), 0u);
}

TEST(QuotaLedger, AdmitsUpToQuotaPerPair) {
  QuotaLedger ledger(3);
  const CapacityModel cap(30, 3, 1.0);  // 10 each
  ledger.beginIteration(cap, {10, 10, 6});  // partition 2 has room 4 -> Q=2
  EXPECT_TRUE(ledger.tryAdmit(0, 2));
  EXPECT_TRUE(ledger.tryAdmit(0, 2));
  EXPECT_FALSE(ledger.tryAdmit(0, 2));  // pair quota exhausted
  EXPECT_TRUE(ledger.tryAdmit(1, 2));   // distinct source, own quota
  EXPECT_EQ(ledger.used(0, 2), 2u);
}

TEST(QuotaLedger, RejectsSelfMoves) {
  QuotaLedger ledger(3);
  const CapacityModel cap(30, 3, 2.0);
  ledger.beginIteration(cap, {10, 10, 10});
  EXPECT_FALSE(ledger.tryAdmit(1, 1));
}

TEST(QuotaLedger, WorstCaseNeverExceedsCapacity) {
  // Even if every source exhausts its quota to every destination, no
  // destination can overflow — the §2.2 safety argument.
  const std::size_t k = 5;
  QuotaLedger ledger(k);
  const CapacityModel cap(500, k, 1.1);  // 110 each
  util::Rng rng(2);
  std::vector<std::size_t> loads{110, 90, 70, 50, 10};
  ledger.beginIteration(cap, loads);
  std::vector<std::size_t> incoming(k, 0);
  for (PartitionId i = 0; i < k; ++i) {
    for (PartitionId j = 0; j < k; ++j) {
      while (ledger.tryAdmit(i, j)) ++incoming[j];
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_LE(loads[j] + incoming[j], cap.capacity(j)) << "partition " << j;
  }
}

TEST(QuotaLedger, BeginIterationResetsUsage) {
  QuotaLedger ledger(2);
  const CapacityModel cap(20, 2, 1.5);
  ledger.beginIteration(cap, {10, 10});
  while (ledger.tryAdmit(0, 1)) {
  }
  ledger.beginIteration(cap, {10, 10});
  EXPECT_TRUE(ledger.tryAdmit(0, 1));
}

// ------------------------------------------------------------ migration policy

TEST(MigrationPolicy, MovesToMajorityPartition) {
  MigrationPolicy policy(3);
  // v in partition 0; neighbours: two in 1, one in 2.
  metrics::Assignment a{0, 1, 1, 2};
  const std::vector<VertexId> nbrs{1, 2, 3};
  EXPECT_EQ(policy.target(nbrs, a, 0), 1u);
}

TEST(MigrationPolicy, PrefersToStayOnTies) {
  MigrationPolicy policy(3);
  // Current partition holds as many neighbours as the best foreign one.
  metrics::Assignment a{0, 0, 1, 1, 2};
  const std::vector<VertexId> nbrs{1, 2, 3};  // one in 0, two in 1... adjust:
  // counts: P0 = {1}, P1 = {2,3} -> majority 1, must move.
  EXPECT_EQ(policy.target(nbrs, a, 0), 1u);
  // counts equal: P0 = {1}, P2 = {4}: stay.
  const std::vector<VertexId> tied{1, 4};
  EXPECT_EQ(policy.target(tied, a, 0), graph::kNoPartition);
}

TEST(MigrationPolicy, StaysWithNoNeighbors) {
  MigrationPolicy policy(4);
  metrics::Assignment a{0};
  EXPECT_EQ(policy.target({}, a, 0), graph::kNoPartition);
}

TEST(MigrationPolicy, TieBreakerSelectsAmongArgmax) {
  MigrationPolicy policy(3);
  metrics::Assignment a{0, 1, 2};
  const std::vector<VertexId> nbrs{1, 2};  // one each in P1 and P2
  const PartitionId t0 = policy.target(nbrs, a, 0, 0);
  const PartitionId t1 = policy.target(nbrs, a, 0, 1);
  EXPECT_NE(t0, graph::kNoPartition);
  EXPECT_NE(t1, graph::kNoPartition);
  EXPECT_NE(t0, t1);  // both argmax partitions reachable via the tiebreaker
}

TEST(MigrationPolicy, IgnoresUnassignedNeighbors) {
  MigrationPolicy policy(2);
  metrics::Assignment a{0, kNoPartition, 1};
  const std::vector<VertexId> nbrs{1, 2};  // one mid-removal, one in P1
  EXPECT_EQ(policy.target(nbrs, a, 0), 1u);
}

TEST(MigrationPolicy, CandidatesIncludeSelfPartition) {
  MigrationPolicy policy(4);
  metrics::Assignment a{3, 1, 1, 2};
  const std::vector<VertexId> nbrs{1, 2, 3};
  const auto cand = policy.candidates(nbrs, a, 3);
  // cand(v,t) over Γ(v,t) = {v} ∪ N(v): partitions 1, 2 and v's own 3.
  EXPECT_EQ(cand, (std::vector<PartitionId>{1, 2, 3}));
}

TEST(MigrationPolicy, ScratchStateDoesNotLeakBetweenCalls) {
  MigrationPolicy policy(3);
  metrics::Assignment a{0, 1, 1, 2, 2};
  const std::vector<VertexId> first{1, 2};
  EXPECT_EQ(policy.target(first, a, 0), 1u);
  // If counts leaked, partition 1 would still look loaded here.
  const std::vector<VertexId> second{3, 4};
  EXPECT_EQ(policy.target(second, a, 0), 2u);
}

// ------------------------------------------------------------ convergence

TEST(ConvergenceTracker, PaperWindowOf30) {
  ConvergenceTracker tracker;  // default window 30
  for (int i = 0; i < 29; ++i) tracker.record(0);
  EXPECT_FALSE(tracker.converged());
  tracker.record(0);
  EXPECT_TRUE(tracker.converged());
}

TEST(ConvergenceTracker, MigrationResetsQuietRun) {
  ConvergenceTracker tracker(5);
  for (int i = 0; i < 4; ++i) tracker.record(0);
  tracker.record(3);
  EXPECT_EQ(tracker.quietIterations(), 0u);
  for (int i = 0; i < 5; ++i) tracker.record(0);
  EXPECT_TRUE(tracker.converged());
}

TEST(ConvergenceTracker, ManualReset) {
  ConvergenceTracker tracker(2);
  tracker.record(0);
  tracker.record(0);
  EXPECT_TRUE(tracker.converged());
  tracker.reset();
  EXPECT_FALSE(tracker.converged());
}

}  // namespace
}  // namespace xdgp::core
