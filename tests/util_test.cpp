#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace xdgp::util {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(7);
  const auto first = rng.next();
  rng.next();
  rng.reseed(7);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const auto x = rng.below(13);
    ASSERT_LT(x, 13u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(5);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7'000; ++i) ++seen[rng.below(7)];
  for (const int count : seen) EXPECT_GT(count, 700);  // ~1000 expected
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20'000, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 50'000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 50'000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.geometric(0.5);
  // Mean of successes-before-failure with p = 0.5 is p/(1-p) = 1.
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  rng.shuffle(items);
  auto sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(31);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  rng.shuffle(items);
  int inPlace = 0;
  for (int i = 0; i < 100; ++i) inPlace += items[i] == i;
  EXPECT_LT(inPlace, 15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += parent.next() == child.next();
  EXPECT_LT(same, 5);
}

TEST(Rng, IndexHandlesLargeBounds) {
  Rng rng(41);
  const std::size_t bound = std::size_t{1} << 40;
  for (int i = 0; i < 100; ++i) ASSERT_LT(rng.index(bound), bound);
}

TEST(Rng, SplitMix64IsDeterministic) {
  EXPECT_EQ(Rng::splitmix64(42), Rng::splitmix64(42));
  EXPECT_NE(Rng::splitmix64(42), Rng::splitmix64(43));
}

// ---------------------------------------------------------------- stats

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, StdErrorShrinksWithSamples) {
  RunningStat small, large;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.stderror(), large.stderror());
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderror(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesCombined) {
  Rng rng(2);
  RunningStat a, b, combined;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    combined.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Summarize, VectorHelper) {
  const RunningStat s = summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Ema, ConvergesToConstant) {
  Ema ema(0.2);
  for (int i = 0; i < 100; ++i) ema.update(5.0);
  EXPECT_NEAR(ema.value(), 5.0, 1e-6);
}

TEST(Ema, FirstSamplePrimes) {
  Ema ema(0.1);
  EXPECT_FALSE(ema.primed());
  ema.update(42.0);
  EXPECT_TRUE(ema.primed());
  EXPECT_DOUBLE_EQ(ema.value(), 42.0);
}

// ---------------------------------------------------------------- table

TEST(TablePrinter, AlignsAndCounts) {
  TablePrinter table({"name", "value"});
  table.addRow({"alpha", "1"});
  table.addRow({"b", "22"});
  EXPECT_EQ(table.rowCount(), 2u);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TablePrinter, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.addRow({"x"});
  std::ostringstream out;
  EXPECT_NO_THROW(table.print(out));
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmtPm(1.0, 0.25, 2), "1.00 +/- 0.25");
}

// ---------------------------------------------------------------- csv

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/xdgp_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.addRow({"1", "2"});
    csv.addRow({"with,comma", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWidthMismatch) {
  const std::string path = testing::TempDir() + "/xdgp_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.addRow({"only-one"}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

// ---------------------------------------------------------------- flags

TEST(Flags, ParsesTypedValues) {
  const char* argv[] = {"prog", "--reps=5", "--scale=2.5", "--name=mesh",
                        "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.getInt("reps", 0), 5);
  EXPECT_DOUBLE_EQ(flags.getDouble("scale", 0.0), 2.5);
  EXPECT_EQ(flags.getString("name", ""), "mesh");
  EXPECT_TRUE(flags.getBool("verbose", false));
  EXPECT_NO_THROW(flags.finish());
}

TEST(Flags, GetUint64CarriesFullSeedRange) {
  // 0xDEADBEEFCAFEBABE > INT64_MAX: the old getInt path threw or truncated.
  const char* argv[] = {"prog", "--seed=16045690984833335998"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.getUint64("seed", 0), 16045690984833335998ULL);
  EXPECT_NO_THROW(flags.finish());
}

TEST(Flags, GetUint64DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.getUint64("seed", 99), 99u);
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.getInt("missing", 7), 7);
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, RejectsUnconsumed) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_THROW(flags.finish(), std::runtime_error);
}

TEST(Flags, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Flags(2, const_cast<char**>(argv)), std::runtime_error);
}

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.parallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 1u);
}

// ---------------------------------------------------------------- timer

TEST(WallTimer, MeasuresForwardTime) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100'000; ++i) sink = sink + 1.0;
  EXPECT_GE(timer.seconds(), 0.0);
  EXPECT_GE(timer.millis(), timer.seconds());
}

}  // namespace
}  // namespace xdgp::util
